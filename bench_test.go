// Package scidive_test holds the benchmark harness that regenerates every
// table and figure of the paper's evaluation (see DESIGN.md's experiment
// index). Each benchmark reports the reproduced quantity as a custom
// metric next to the usual time/op:
//
//	go test -bench=. -benchmem
//
// Table 1 -> BenchmarkTable1_*        (detect_ms = detection delay)
// Fig 1   -> BenchmarkFig1_NormalCall (false_alarms must stay 0)
// Fig 5-8 -> BenchmarkFig{5,6,7,8}_*
// §4.3    -> BenchmarkSec43_*         (delay_ms, pm, pf)
// §3.2    -> BenchmarkSec32_BillingFraud
// §3.3    -> BenchmarkSec33_Stateful  (false-alarm comparison)
// Ablations -> BenchmarkAblation_*    (event layer, reassembly)
package scidive_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"net/netip"
	"scidive/internal/core"
	"scidive/internal/eval"
	"scidive/internal/experiments"

	"scidive/internal/netsim"
	"scidive/internal/packet"
	"scidive/internal/rtp"
	"scidive/internal/sip"
)

// benchOutcome runs a scenario per iteration and reports the detection
// delay; it fails the benchmark if the attack is ever missed.
func benchOutcome(b *testing.B, run func(seed int64) (experiments.Outcome, error)) {
	b.Helper()
	var total time.Duration
	for i := 0; i < b.N; i++ {
		o, err := run(int64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		if !o.Detected {
			b.Fatalf("iteration %d: attack missed (%s)", i, o.Impact)
		}
		total += o.DetectDelay
	}
	b.ReportMetric(float64(total.Milliseconds())/float64(b.N), "detect_ms")
}

func BenchmarkTable1_ByeAttack(b *testing.B) {
	benchOutcome(b, func(seed int64) (experiments.Outcome, error) {
		return experiments.RunByeAttack(seed, core.Config{})
	})
}

func BenchmarkTable1_FakeIM(b *testing.B) {
	benchOutcome(b, func(seed int64) (experiments.Outcome, error) {
		return experiments.RunFakeIM(seed)
	})
}

func BenchmarkTable1_CallHijack(b *testing.B) {
	benchOutcome(b, func(seed int64) (experiments.Outcome, error) {
		return experiments.RunCallHijack(seed)
	})
}

func BenchmarkTable1_RTPAttack(b *testing.B) {
	benchOutcome(b, func(seed int64) (experiments.Outcome, error) {
		return experiments.RunRTPAttack(seed, true)
	})
}

// BenchmarkFig1_NormalCall regenerates the Figure 1 flow and asserts the
// false-alarm count stays zero.
func BenchmarkFig1_NormalCall(b *testing.B) {
	falseAlarms := 0
	for i := 0; i < b.N; i++ {
		o, err := experiments.RunBenign(int64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		falseAlarms += len(o.Alerts)
	}
	b.ReportMetric(float64(falseAlarms), "false_alarms")
}

// Figures 5-8 are the same runs as Table 1 rows; aliases keep the
// experiment index 1:1 with the paper's figures.
func BenchmarkFig5_ByeAttack(b *testing.B)  { BenchmarkTable1_ByeAttack(b) }
func BenchmarkFig6_FakeIM(b *testing.B)     { BenchmarkTable1_FakeIM(b) }
func BenchmarkFig7_CallHijack(b *testing.B) { BenchmarkTable1_CallHijack(b) }
func BenchmarkFig8_RTPAttack(b *testing.B)  { BenchmarkTable1_RTPAttack(b) }

// BenchmarkSec43_DetectionDelay reproduces the E[D] = 10ms analysis.
func BenchmarkSec43_DetectionDelay(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := eval.Model{} // paper baseline
	var mean time.Duration
	for i := 0; i < b.N; i++ {
		res := m.SimulateDetection(rng, 10000)
		mean = res.MeanDelay
	}
	b.ReportMetric(mean.Seconds()*1000, "delay_ms")
}

// BenchmarkSec43_MissedAlarm reproduces Pm at a tight window with loss.
func BenchmarkSec43_MissedAlarm(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := eval.Model{
		Nrtp:       netsim.Exponential{MeanD: 5 * time.Millisecond},
		Nsip:       netsim.Exponential{MeanD: 5 * time.Millisecond},
		Window:     25 * time.Millisecond,
		Loss:       0.2,
		MaxPackets: 3,
	}
	var pm float64
	for i := 0; i < b.N; i++ {
		pm = m.SimulateDetection(rng, 10000).Pm
	}
	b.ReportMetric(pm, "pm")
}

// BenchmarkSec43_FalseAlarm reproduces Pf -> 1/2 for iid delays.
func BenchmarkSec43_FalseAlarm(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := eval.Model{
		Nrtp: netsim.Exponential{MeanD: 5 * time.Millisecond},
		Nsip: netsim.Exponential{MeanD: 5 * time.Millisecond},
	}
	var pf float64
	for i := 0; i < b.N; i++ {
		pf = m.SimulateFalseAlarm(rng, 10000)
	}
	b.ReportMetric(pf, "pf")
}

func BenchmarkSec32_BillingFraud(b *testing.B) {
	benchOutcome(b, func(seed int64) (experiments.Outcome, error) {
		return experiments.RunBillingFraud(seed)
	})
}

// BenchmarkSec33_Stateful reports the false-alarm comparison between
// SCIDIVE and the stateless baseline.
func BenchmarkSec33_Stateful(b *testing.B) {
	var cmp experiments.StatefulComparison
	for i := 0; i < b.N; i++ {
		var err error
		cmp, err = experiments.RunStatefulComparison(int64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(cmp.BenignSCIDIVEAlerts), "scidive_benign_alerts")
	b.ReportMetric(float64(cmp.BenignBaselineAlerts), "baseline_benign_alerts")
}

// --- Ablations and microbenchmarks ---

// recordedWorkload captures all frames of one BYE-attack run for replay
// benchmarks.
func recordedWorkload(b *testing.B) []struct {
	at    time.Duration
	frame []byte
} {
	b.Helper()
	var frames []struct {
		at    time.Duration
		frame []byte
	}
	_, err := experiments.RunByeAttack(1, core.Config{}, func(at time.Duration, frame []byte) {
		frames = append(frames, struct {
			at    time.Duration
			frame []byte
		}{at, frame})
	})
	if err != nil {
		b.Fatal(err)
	}
	return frames
}

// BenchmarkAblation_EventLayer measures per-frame IDS cost with the event
// generator in place (the paper's architecture).
func BenchmarkAblation_EventLayer(b *testing.B) {
	frames := recordedWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := core.NewEngine(core.Config{})
		for _, f := range frames {
			eng.HandleFrame(f.at, f.frame)
		}
		if len(eng.AlertsFor(core.RuleByeAttack)) != 1 {
			b.Fatal("event-layer engine missed the attack")
		}
	}
	b.ReportMetric(float64(len(frames)), "frames/op")
}

// BenchmarkAblation_DirectMatching measures the same workload with the
// event layer bypassed: rules re-scan raw trails on every media packet.
// The gap versus BenchmarkAblation_EventLayer is what the Event Generator
// abstraction buys (paper Section 3.1).
func BenchmarkAblation_DirectMatching(b *testing.B) {
	frames := recordedWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := core.NewEngine(core.Config{DirectTrailMatching: true})
		for _, f := range frames {
			eng.HandleFrame(f.at, f.frame)
		}
		if len(eng.AlertsFor(core.RuleByeAttack)) != 1 {
			b.Fatal("direct-matching engine missed the attack")
		}
	}
	b.ReportMetric(float64(len(frames)), "frames/op")
}

// buildRTPFrame builds one representative media frame.
func buildRTPFrame(b *testing.B) []byte {
	b.Helper()
	pkt := rtp.Packet{
		Header:  rtp.Header{PayloadType: rtp.PayloadTypePCMU, Seq: 100, Timestamp: 16000, SSRC: 7},
		Payload: make([]byte, 160),
	}
	buf, err := pkt.Marshal()
	if err != nil {
		b.Fatal(err)
	}
	frames, err := packet.BuildUDPFrames(packet.UDPFrameSpec{
		SrcMAC: packet.MAC{2, 0, 0, 0, 0, 1}, DstMAC: packet.MAC{2, 0, 0, 0, 0, 2},
		SrcIP: mustAddr("10.0.0.1"), DstIP: mustAddr("10.0.0.2"),
		SrcPort: 40000, DstPort: 40000, IPID: 1, Payload: buf,
	}, 0)
	if err != nil {
		b.Fatal(err)
	}
	return frames[0]
}

// BenchmarkDistiller_RTPFrame measures raw distillation throughput.
func BenchmarkDistiller_RTPFrame(b *testing.B) {
	frame := buildRTPFrame(b)
	d := core.NewDistiller()
	b.SetBytes(int64(len(frame)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if fp := d.Distill(time.Duration(i)*20*time.Millisecond, frame); fp == nil {
			b.Fatal("no footprint")
		}
	}
}

// BenchmarkEngine_RTPFrame measures full-pipeline cost per media frame.
func BenchmarkEngine_RTPFrame(b *testing.B) {
	frame := buildRTPFrame(b)
	eng := core.NewEngine(core.Config{})
	b.SetBytes(int64(len(frame)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.HandleFrame(time.Duration(i)*20*time.Millisecond, frame)
	}
}

// --- Hot-path steady state (see DESIGN.md "Memory model of the hot path") ---

// buildUDPFrame builds one UDP frame carrying payload between fixed hosts.
func buildUDPFrame(b *testing.B, srcPort, dstPort uint16, payload []byte) []byte {
	b.Helper()
	frames, err := packet.BuildUDPFrames(packet.UDPFrameSpec{
		SrcMAC: packet.MAC{2, 0, 0, 0, 0, 1}, DstMAC: packet.MAC{2, 0, 0, 0, 0, 2},
		SrcIP: mustAddr("10.0.0.1"), DstIP: mustAddr("10.0.0.2"),
		SrcPort: srcPort, DstPort: dstPort, IPID: 1, Payload: payload,
	}, 0)
	if err != nil {
		b.Fatal(err)
	}
	return frames[0]
}

// buildRTCPFrame builds one receiver-report frame (no BYE, so replaying
// it generates no events).
func buildRTCPFrame(b *testing.B) []byte {
	b.Helper()
	buf, err := rtp.MarshalCompound([]rtp.RTCPPacket{
		&rtp.ReceiverReport{SSRC: 7, Reports: []rtp.ReportBlock{{SSRC: 9}}},
	})
	if err != nil {
		b.Fatal(err)
	}
	return buildUDPFrame(b, 40001, 40001, buf)
}

// buildSIPFrame builds an in-dialog INVITE; after the first sighting every
// replay is a retransmission that changes no dialog state.
func buildSIPFrame(b *testing.B) []byte {
	b.Helper()
	from, err := sip.ParseAddress("<sip:alice@10.0.0.1>;tag=t1")
	if err != nil {
		b.Fatal(err)
	}
	to, err := sip.ParseAddress("<sip:bob@10.0.0.2>")
	if err != nil {
		b.Fatal(err)
	}
	m := sip.NewRequest(sip.RequestSpec{
		Method:     sip.MethodInvite,
		RequestURI: "sip:bob@10.0.0.2",
		From:       from, To: to,
		CallID: "steady@bench",
		CSeq:   sip.CSeq{Seq: 1, Method: sip.MethodInvite},
		Via:    sip.Via{Transport: "UDP", SentBy: "10.0.0.1:5060", Params: map[string]string{"branch": "z9hG4bKb"}},
	})
	return buildUDPFrame(b, 5060, 5060, m.Marshal())
}

// benchHotPath measures the steady-state per-frame cost of a warmed
// pipeline: the trail ring is saturated (appends overwrite in place) and
// every pool, interner and session table is populated before the clock
// starts. Run with -benchmem; RTP and RTCP must report 0 allocs/op, SIP
// its documented budget (see internal/core/allocs_test.go).
func benchHotPath(b *testing.B, feed func(at time.Duration, frame []byte), frame []byte) {
	b.Helper()
	at, step := time.Duration(0), 20*time.Millisecond
	for i := 0; i < 5000; i++ { // past the 4096-entry trail bound
		feed(at, frame)
		at += step
	}
	b.SetBytes(int64(len(frame)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		feed(at, frame)
		at += step
	}
}

func BenchmarkHotPath_RTPFrame(b *testing.B) {
	eng := core.NewEngine(core.Config{})
	benchHotPath(b, eng.HandleFrame, buildRTPFrame(b))
}

func BenchmarkHotPath_RTCPFrame(b *testing.B) {
	eng := core.NewEngine(core.Config{})
	benchHotPath(b, eng.HandleFrame, buildRTCPFrame(b))
}

func BenchmarkHotPath_SIPFrame(b *testing.B) {
	eng := core.NewEngine(core.Config{})
	benchHotPath(b, eng.HandleFrame, buildSIPFrame(b))
}

// BenchmarkHotPath_ShardedRTPFrame is the sharded counterpart: router
// classification plus batch shipping to a shard worker. Replaying one
// immutable frame is safe despite the router retaining shipped frames.
func BenchmarkHotPath_ShardedRTPFrame(b *testing.B) {
	eng := core.NewShardedEngine(core.Config{}, 2)
	defer eng.Close()
	benchHotPath(b, eng.HandleFrame, buildRTPFrame(b))
}

// BenchmarkAblation_Reassembly compares SIP distillation with and without
// IP fragmentation on the wire.
func BenchmarkAblation_Reassembly(b *testing.B) {
	from, _ := sip.ParseAddress("<sip:a@10.0.0.1>;tag=t")
	to, _ := sip.ParseAddress("<sip:b@10.0.0.2>")
	msg := sip.NewRequest(sip.RequestSpec{
		Method: sip.MethodMessage, RequestURI: "sip:b@10.0.0.2",
		From: from, To: to, CallID: "reasm@bench",
		CSeq:     sip.CSeq{Seq: 1, Method: sip.MethodMessage},
		Via:      sip.Via{Transport: "UDP", SentBy: "10.0.0.1:5060", Params: map[string]string{"branch": "z9hG4bKr"}},
		Body:     make([]byte, 2400),
		BodyType: "text/plain",
	})
	spec := packet.UDPFrameSpec{
		SrcMAC: packet.MAC{2, 0, 0, 0, 0, 1}, DstMAC: packet.MAC{2, 0, 0, 0, 0, 2},
		SrcIP: mustAddr("10.0.0.1"), DstIP: mustAddr("10.0.0.2"),
		SrcPort: 5060, DstPort: 5060, IPID: 1, Payload: msg.Marshal(),
	}
	whole, err := packet.BuildUDPFrames(spec, 4000)
	if err != nil {
		b.Fatal(err)
	}
	fragged, err := packet.BuildUDPFrames(spec, 576)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("unfragmented", func(b *testing.B) {
		d := core.NewDistiller()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if fp := d.Distill(0, whole[0]); fp == nil {
				b.Fatal("no footprint")
			}
		}
	})
	b.Run("fragmented", func(b *testing.B) {
		d := core.NewDistiller()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var got bool
			for _, f := range fragged {
				if fp := d.Distill(0, f); fp != nil {
					got = true
				}
			}
			if !got {
				b.Fatal("reassembly failed")
			}
		}
	})
}

// BenchmarkRuleEngine_Feed measures pure rule-matching cost.
func BenchmarkRuleEngine_Feed(b *testing.B) {
	re := core.NewRuleEngine(core.DefaultRuleset())
	ev := core.Event{Type: core.EvRTPNewFlow, Session: "s"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.At = time.Duration(i)
		re.Feed(ev)
	}
}

// BenchmarkRuleEngine_FeedWideRuleset measures matching cost when the
// ruleset is much wider than the set of rules any one event can advance.
// The engine's event-type index keeps per-event cost proportional to the
// rules that can actually consume the event, not to the ruleset size, so
// this should stay close to BenchmarkRuleEngine_Feed despite 64 extra
// rules that never match.
func BenchmarkRuleEngine_FeedWideRuleset(b *testing.B) {
	rules := core.DefaultRuleset()
	for i := 0; i < 64; i++ {
		rules = append(rules, core.Rule{
			Name:     fmt.Sprintf("synthetic-%d", i),
			Severity: core.SeverityInfo,
			Steps:    []core.Step{{Type: core.EvAcctStart}, {Type: core.EvAcctStop}},
		})
	}
	re := core.NewRuleEngine(rules)
	ev := core.Event{Type: core.EvRTPNewFlow, Session: "s"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.At = time.Duration(i)
		re.Feed(ev)
	}
}

// mustAddr parses an IPv4 address for benchmark fixtures.
func mustAddr(s string) netip.Addr { return netip.MustParseAddr(s) }

// --- Sharded engine scaling (see DESIGN.md "Scaling") ---

// mixedCalls/mixedRounds size the shared scaling workload: enough
// concurrent sessions that per-packet attribution dominates.
const (
	mixedCalls  = 256
	mixedRounds = 24
)

// checkMixedAlerts asserts the exact expected outcome on the mixed
// workload: one bye-attack alert per call and no false alarms.
func checkMixedAlerts(tb testing.TB, alerts []core.Alert) {
	tb.Helper()
	if len(alerts) != mixedCalls {
		tb.Fatalf("got %d alerts, want %d", len(alerts), mixedCalls)
	}
	for _, a := range alerts {
		if a.Rule != core.RuleByeAttack {
			tb.Fatalf("false alarm: %v", a)
		}
	}
}

// BenchmarkSerial_MixedCalls is the single-engine baseline for the
// BenchmarkSharded_* family, on the identical workload.
func BenchmarkSerial_MixedCalls(b *testing.B) {
	recs := experiments.MixedCallWorkload(mixedCalls, mixedRounds, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := core.NewEngine(core.Config{})
		for _, r := range recs {
			eng.HandleFrame(r.Time, r.Frame)
		}
		checkMixedAlerts(b, eng.Alerts())
	}
	b.ReportMetric(float64(len(recs))*float64(b.N)/b.Elapsed().Seconds(), "frames/sec")
}

func benchSharded(b *testing.B, shards int) {
	recs := experiments.MixedCallWorkload(mixedCalls, mixedRounds, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := core.NewShardedEngine(core.Config{}, shards)
		for _, r := range recs {
			eng.HandleFrame(r.Time, r.Frame)
		}
		eng.Close() // drain; alerts must be complete afterwards
		checkMixedAlerts(b, eng.Alerts())
	}
	b.ReportMetric(float64(len(recs))*float64(b.N)/b.Elapsed().Seconds(), "frames/sec")
}

func BenchmarkSharded_1(b *testing.B) { benchSharded(b, 1) }
func BenchmarkSharded_2(b *testing.B) { benchSharded(b, 2) }
func BenchmarkSharded_8(b *testing.B) { benchSharded(b, 8) }

// BenchmarkSec43_WireDelay measures the BYE-attack detection delay on the
// simulated wire (the empirical counterpart of the Section 4.3 model).
func BenchmarkSec43_WireDelay(b *testing.B) {
	var mean time.Duration
	for i := 0; i < b.N; i++ {
		res, err := experiments.MeasureWireByeDelay(10, nil)
		if err != nil {
			b.Fatal(err)
		}
		if res.Detected != res.Runs {
			b.Fatalf("missed %d of %d wire runs", res.Runs-res.Detected, res.Runs)
		}
		mean = res.Mean
	}
	b.ReportMetric(mean.Seconds()*1000, "wire_delay_ms")
}
