// Quickstart: build the simulated VoIP testbed, deploy a SCIDIVE engine
// on the hub tap, run a normal call, and show that benign traffic raises
// no alarms while the engine's trails fill with correlated SIP, RTP, and
// accounting footprints.
package main

import (
	"fmt"
	"log"
	"time"

	"scidive/internal/core"
	"scidive/internal/scenario"
)

func main() {
	// 1. Assemble the paper's Figure 4 testbed: two softphones, a SIP
	//    proxy/registrar, an accounting service, and a hub everything
	//    hangs off.
	tb, err := scenario.New(scenario.Config{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Deploy SCIDIVE: the engine taps the hub like an IDS appliance.
	ids := core.NewEngine(core.Config{}, core.WithEventLog())
	ids.AttachTap(tb.Net)

	// 3. Drive a normal day: register, call, talk for 10 seconds, hang up.
	if err := tb.RegisterAll(); err != nil {
		log.Fatal(err)
	}
	call, err := tb.EstablishCall()
	if err != nil {
		log.Fatal(err)
	}
	tb.Run(10 * time.Second)
	tb.Sim.Schedule(0, func() {
		if err := tb.Alice.Hangup(call); err != nil {
			log.Fatal(err)
		}
	})
	tb.Run(2 * time.Second)

	// 4. Inspect what the IDS saw.
	st := ids.Stats()
	fmt.Printf("frames observed:      %d\n", st.Frames)
	fmt.Printf("footprints distilled: %d\n", st.Footprints)
	fmt.Printf("events generated:     %d\n", st.Events)
	fmt.Printf("sessions tracked:     %d (%d trails)\n", ids.Trails().Sessions(), ids.Trails().Trails())
	fmt.Printf("alerts raised:        %d  <- zero: benign traffic\n", len(ids.Alerts()))

	fmt.Println("\nfirst few events:")
	for i, ev := range ids.Events() {
		if i == 8 {
			break
		}
		fmt.Println(" ", ev)
	}

	fmt.Printf("\ncall quality at bob: %d RTP received, jitter %v, playout %+v\n",
		tb.Bob.ActiveCallOrLast().RTPReceived,
		tb.Bob.ActiveCallOrLast().Jitter(),
		tb.Bob.ActiveCallOrLast().BufferStats())
}
