// Cooperative demonstrates the paper's Section 6 future-work idea:
// SCIDIVE detectors on both endpoints exchanging event objects. The
// attack is the hardened fake-IM the paper concedes defeats a single
// endpoint: the forged message spoofs the impersonated sender's source
// IP, so the victim-local source-stability rule sees nothing wrong — but
// bob's own detector never observed a matching outgoing message, and
// that absence convicts the message.
package main

import (
	"fmt"
	"log"
	"net/netip"
	"time"

	"scidive/internal/coop"
	"scidive/internal/scenario"
	"scidive/internal/sip"
)

func main() {
	tb, err := scenario.New(scenario.Config{Seed: 21})
	if err != nil {
		log.Fatal(err)
	}
	// One detector per endpoint, each peering with the other.
	da, err := coop.NewDetector(coop.Config{
		Host: tb.Net.HostByIP(scenario.AddrClientA), User: "alice",
		Peers: []netip.AddrPort{netip.AddrPortFrom(scenario.AddrClientB, coop.DefaultPort)},
	})
	if err != nil {
		log.Fatal(err)
	}
	db, err := coop.NewDetector(coop.Config{
		Host: tb.Net.HostByIP(scenario.AddrClientB), User: "bob",
		Peers: []netip.AddrPort{netip.AddrPortFrom(scenario.AddrClientA, coop.DefaultPort)},
	})
	if err != nil {
		log.Fatal(err)
	}

	if err := tb.RegisterAll(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("detectors deployed on both endpoints; phones registered")

	// Legitimate IM: bob -> alice via the proxy. Bob's detector vouches.
	tb.Sim.Schedule(0, func() { tb.Bob.SendIM("alice", "genuine hello") })
	tb.Run(2 * time.Second)
	fmt.Printf("after legit IM: alice has %d peer events, %d cooperative alerts\n",
		len(da.PeerEvents()), len(da.Alerts()))

	// The hardened attack: forged From AND spoofed source IP (bob's own).
	tb.Sim.Schedule(0, func() {
		fmt.Printf("[%8.3fs] attacker sends IM impersonating bob WITH bob's spoofed source IP\n",
			tb.Sim.Now().Seconds())
		err := tb.Attacker.FakeIMSpoofed(
			netip.AddrPortFrom(scenario.AddrClientA, sip.DefaultPort),
			sip.URI{User: "bob", Host: scenario.AddrProxy.String()},
			netip.AddrPortFrom(scenario.AddrClientB, sip.DefaultPort),
			"urgent: send gift cards",
		)
		if err != nil {
			log.Fatal(err)
		}
	})
	tb.Run(2 * time.Second)

	fmt.Println("\nalice's cooperative alerts:")
	for _, a := range da.Alerts() {
		fmt.Printf("  [%8.3fs] %-14s %s\n", a.At.Seconds(), a.Rule, a.Detail)
	}
	fmt.Println("bob's cooperative alerts (the forged frame crossed his NIC too):")
	for _, a := range db.Alerts() {
		fmt.Printf("  [%8.3fs] %-14s %s\n", a.At.Seconds(), a.Rule, a.Detail)
	}
	fmt.Printf("\nexchange overhead: bob sent %d control message(s) for the whole run\n", db.ControlSent)
}
