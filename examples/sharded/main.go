// Sharded scaling: replay one mixed workload of hundreds of concurrent
// calls — every one ending in a Figure 5 BYE attack — through the serial
// engine and through the sharded parallel engine, and show that the
// sharded engine reaches the same verdict on every call while processing
// frames several times faster.
package main

import (
	"fmt"
	"log"
	"time"

	"scidive/internal/core"
	"scidive/internal/experiments"
)

func main() {
	// 1. Synthesize the workload: 256 simultaneous calls exchanging
	//    interleaved media, each torn down with a BYE followed by orphan
	//    RTP from the hung-up party's socket.
	const calls = 256
	recs := experiments.MixedCallWorkload(calls, 24, 1)
	fmt.Printf("workload: %d frames across %d concurrent calls\n\n", len(recs), calls)

	// 2. Serial baseline: one engine owns every session.
	serial := core.NewEngine(core.Config{})
	start := time.Now()
	for _, r := range recs {
		serial.HandleFrame(r.Time, r.Frame)
	}
	serialDur := time.Since(start)

	// 3. Sharded: a router hashes each frame's session onto 8 workers,
	//    keeping a call's SIP and RTP on the same shard so cross-protocol
	//    rules still see the whole dialog.
	sharded := core.NewShardedEngine(core.Config{}, 8)
	start = time.Now()
	for _, r := range recs {
		sharded.HandleFrame(r.Time, r.Frame)
	}
	sharded.Close() // drain the shards; results are final afterwards
	shardedDur := time.Since(start)

	// 4. Same alerts, in the same deterministic order.
	sa, ga := serial.Alerts(), sharded.Alerts()
	if len(sa) != calls || len(ga) != calls {
		log.Fatalf("expected %d bye-attack alerts from each engine, got serial=%d sharded=%d",
			calls, len(sa), len(ga))
	}
	for i := range sa {
		if sa[i].Session != ga[i].Session || sa[i].Rule != ga[i].Rule || sa[i].At != ga[i].At {
			log.Fatalf("alert %d diverged: serial %v, sharded %v", i, sa[i], ga[i])
		}
	}

	fps := func(d time.Duration) float64 { return float64(len(recs)) / d.Seconds() }
	fmt.Printf("serial engine:  %8.0f frames/sec, %d alerts\n", fps(serialDur), len(sa))
	fmt.Printf("sharded engine: %8.0f frames/sec, %d alerts (identical, %.1fx)\n",
		fps(shardedDur), len(ga), fps(shardedDur)/fps(serialDur))
	fmt.Printf("\nevery one of the %d calls was flagged by the %s rule on both engines\n",
		calls, core.RuleByeAttack)
}
