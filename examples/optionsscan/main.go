// Optionsscan demonstrates the pluggable-correlator architecture with
// the options-scan module: an attacker sweeps the proxy with OPTIONS
// probes, each under a fresh Call-ID, so no single dialog looks
// suspicious — only the cross-dialog view the correlator keeps per
// source reveals the capability scan. The same traffic is then replayed
// with the correlator disabled (the -correlators mechanism) to show the
// detection is carried entirely by that one pluggable module.
package main

import (
	"fmt"
	"log"
	"time"

	"scidive/internal/attack"
	"scidive/internal/core"
	"scidive/internal/scenario"
)

// runSweep drives the OPTIONS sweep against a testbed watched by an
// engine built from the given correlator registry.
func runSweep(correlators []core.Registration) (*core.Engine, error) {
	tb, err := scenario.New(scenario.Config{Seed: 7})
	if err != nil {
		return nil, err
	}
	ids := core.NewEngine(core.Config{Correlators: correlators}, core.WithEventLog())
	ids.AttachTap(tb.Net)
	if err := tb.RegisterAll(); err != nil {
		return nil, err
	}
	tb.Attacker.OptionsScan(tb.Proxy.Addr(), scenario.AddrProxy.String(), 8,
		attack.FixedInterval(300*time.Millisecond))
	tb.Run(5 * time.Second)
	return ids, nil
}

func main() {
	// Full registry: the options-scan correlator is registered last and
	// fires once the source crosses the dialog threshold.
	ids, err := runSweep(nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== full correlator registry ===")
	for _, ev := range ids.Events() {
		if ev.Type == core.EvOptionsScan {
			fmt.Println("event:", ev)
		}
	}
	for _, a := range ids.Alerts() {
		fmt.Println("ALERT:", a)
	}
	if len(ids.Alerts()) == 0 {
		fmt.Println("(no alert: scan missed)")
	}

	// Same traffic, registry without options-scan: every probe is an
	// unremarkable out-of-dialog request and the sweep goes unseen.
	var subset []core.Registration
	for _, reg := range core.DefaultCorrelators() {
		if reg.Name != "options-scan" {
			subset = append(subset, reg)
		}
	}
	quiet, err := runSweep(subset)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== registry without options-scan ===")
	fmt.Printf("alerts: %d (the sweep is invisible without the correlator)\n",
		len(quiet.Alerts()))
}
