// Byeattack demonstrates the paper's Figure 5 scenario end to end: an
// attacker on the hub sniffs a live dialog, forges a BYE that tears down
// the victim's side of the call, and SCIDIVE's cross-protocol rule
// catches the orphan RTP flow that keeps arriving from the unaware peer.
package main

import (
	"fmt"
	"log"
	"time"

	"scidive/internal/core"
	"scidive/internal/endpoint"
	"scidive/internal/scenario"
)

func main() {
	tb, err := scenario.New(scenario.Config{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	ids := core.NewEngine(core.Config{}, core.WithEventLog())
	ids.AttachTap(tb.Net)
	ids.OnAlert(func(a core.Alert) {
		fmt.Println("ALERT:", a)
	})

	if err := tb.RegisterAll(); err != nil {
		log.Fatal(err)
	}
	aliceCall, err := tb.EstablishCall()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("call established between alice and bob")
	tb.Run(3 * time.Second)

	// The attacker learned the dialog off the hub; now the forged BYE.
	dlg := tb.Sniffer.ConfirmedDialog()
	if dlg == nil {
		log.Fatal("attacker sniffed no dialog")
	}
	fmt.Printf("attacker sniffed dialog %s (tags %s/%s)\n", dlg.CallID, dlg.CallerTag, dlg.CalleeTag)
	tb.Sim.Schedule(0, func() {
		fmt.Printf("[%8.3fs] attacker sends forged BYE to alice, impersonating bob\n", tb.Sim.Now().Seconds())
		if err := tb.Attacker.ForgedBye(dlg, true); err != nil {
			log.Fatal(err)
		}
	})
	tb.Run(3 * time.Second)

	fmt.Printf("\nvictim state: call established = %v, orphan RTP packets seen = %d\n",
		aliceCall.Established(), tb.Alice.OrphanRTP)
	fmt.Println("\nalice's phone log:")
	for _, e := range tb.Alice.Events() {
		fmt.Printf("  [%8.3fs] %-16s %s\n", e.At.Seconds(), e.Kind, e.Detail)
	}
	if len(tb.Alice.EventsOf(endpoint.EvCallEnded)) == 0 {
		fmt.Println("(attack failed: call still up)")
	}
	fmt.Printf("\nIDS summary: %d footprints, %d events, %d alert(s)\n",
		ids.Stats().Footprints, ids.Stats().Events, len(ids.Alerts()))
}
