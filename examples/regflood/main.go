// Regflood demonstrates the paper's Section 3.3 stateful-detection
// argument by running the same two workloads past SCIDIVE and a
// stateless Snort-like baseline:
//
//  1. benign re-registrations (each naturally drawing a 401 challenge)
//  2. an actual REGISTER flood ignoring the 401s
//
// The stateless 4XX-threshold rule cannot tell them apart: it false-fires
// on the benign rounds. SCIDIVE isolates sessions and correlates requests
// with responses, flagging only the flood.
package main

import (
	"fmt"
	"log"
	"time"

	"scidive/internal/attack"
	"scidive/internal/baseline"
	"scidive/internal/core"
	"scidive/internal/scenario"
	"scidive/internal/sip"
)

func run(label string, seed int64, drive func(tb *scenario.Testbed)) {
	tb, err := scenario.New(scenario.Config{Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	scidive := core.NewEngine(core.Config{})
	scidive.AttachTap(tb.Net)
	base := baseline.NewEngine(baseline.SnortLikeRuleset(4, 60*time.Second))
	base.AttachTap(tb.Net)

	drive(tb)

	fmt.Printf("%-28s SCIDIVE alerts: %-3d stateless baseline alerts: %d\n",
		label, len(scidive.Alerts()), len(base.Alerts()))
	for _, a := range scidive.Alerts() {
		fmt.Println("    SCIDIVE:", a)
	}
	for i, a := range base.Alerts() {
		if i == 3 {
			fmt.Printf("    baseline: ... and %d more\n", len(base.Alerts())-3)
			break
		}
		fmt.Printf("    baseline: [%8.3fs] %s\n", a.At.Seconds(), a.Rule)
	}
}

func main() {
	run("benign re-registrations", 1, func(tb *scenario.Testbed) {
		for i := 0; i < 3; i++ {
			tb.Alice.Register(nil)
			tb.Bob.Register(nil)
			tb.Run(2 * time.Second)
		}
	})
	fmt.Println()
	run("REGISTER flood (40 reqs)", 2, func(tb *scenario.Testbed) {
		aor := sip.URI{User: "mallory", Host: scenario.AddrProxy.String()}
		tb.Attacker.RegisterFlood(tb.Proxy.Addr(), aor, 40, attack.FixedInterval(100*time.Millisecond))
		tb.Run(8 * time.Second)
	})
	fmt.Println()
	run("password guessing (6 tries)", 3, func(tb *scenario.Testbed) {
		aor := sip.URI{User: "alice", Host: scenario.AddrProxy.String()}
		guesses := []string{"123456", "password", "letmein", "hunter2", "qwerty", "secret"}
		tb.Attacker.PasswordGuess(tb.Proxy.Addr(), aor, "scidive.test", guesses, attack.FixedInterval(200*time.Millisecond))
		tb.Run(5 * time.Second)
	})
}
