// Billingfraud demonstrates the paper's Section 3.2 synthetic scenario:
// the attacker sends a carefully crafted INVITE through the proxy that
// impersonates alice, the proxy bills alice for the attacker's call to
// bob, and SCIDIVE's three-event cross-protocol rule (malformed SIP +
// unmatched accounting transaction + media away from the caller's
// registered location) raises a single correlated alarm.
package main

import (
	"fmt"
	"log"
	"time"

	"scidive/internal/attack"
	"scidive/internal/core"
	"scidive/internal/scenario"
	"scidive/internal/sip"
)

func main() {
	tb, err := scenario.New(scenario.Config{Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	ids := core.NewEngine(core.Config{}, core.WithEventLog())
	ids.AttachTap(tb.Net)

	if err := tb.RegisterAll(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("alice and bob registered; attacker prepares the crafted INVITE")

	fraud := attack.NewBillingFraud(
		tb.Attacker,
		tb.Proxy.Addr(),
		sip.URI{User: "alice", Host: scenario.AddrProxy.String()},
		sip.URI{User: "bob", Host: scenario.AddrProxy.String()},
		40600,
	)
	tb.Sim.Schedule(0, func() {
		if err := fraud.Launch(5 * time.Second); err != nil {
			log.Fatal(err)
		}
	})
	tb.Run(8 * time.Second)

	fmt.Printf("fraud call established: %v; attacker sent %d media packets\n",
		fraud.Established, fraud.RTPSent)
	fmt.Println("\naccounting records (who gets billed):")
	for _, r := range tb.Acct.Records() {
		fmt.Printf("  call %s: %s -> %s, from IP %v, duration %v\n",
			r.CallID, r.From, r.To, r.FromIP, r.Duration())
	}

	fmt.Println("\nthe three correlated events behind the alarm:")
	for _, ev := range ids.Events() {
		switch ev.Type {
		case core.EvSIPBadFormat, core.EvAcctUnmatched, core.EvRTPUnmatchedMedia:
			fmt.Println(" ", ev)
		}
	}
	fmt.Println("\nalerts:")
	for _, a := range ids.Alerts() {
		fmt.Println(" ", a)
	}
}
