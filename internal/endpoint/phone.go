// Package endpoint implements a simulated SIP softphone (user agent),
// standing in for the Kphone / Windows Messenger / X-Lite clients of the
// SCIDIVE paper's testbed. A Phone registers with the proxy using digest
// authentication, places and answers calls with SDP-negotiated G.711
// media over RTP, exchanges instant messages (SIP MESSAGE), handles
// re-INVITE-based call migration, and emulates the client behaviours the
// paper observed under the RTP attack (X-Lite crashes, Messenger gets
// intermittent audio).
package endpoint

import (
	"fmt"
	"net/netip"
	"time"

	"scidive/internal/netsim"
	"scidive/internal/sip"
)

// EventKind classifies phone events.
type EventKind int

// Phone event kinds.
const (
	EvRegistered EventKind = iota + 1
	EvRegisterFailed
	EvIncomingCall
	EvCallEstablished
	EvCallEnded
	EvCallRedirected
	EvIMReceived
	EvMediaGlitch
	EvCrashed
)

// String returns the event kind name.
func (k EventKind) String() string {
	switch k {
	case EvRegistered:
		return "registered"
	case EvRegisterFailed:
		return "register-failed"
	case EvIncomingCall:
		return "incoming-call"
	case EvCallEstablished:
		return "call-established"
	case EvCallEnded:
		return "call-ended"
	case EvCallRedirected:
		return "call-redirected"
	case EvIMReceived:
		return "im-received"
	case EvMediaGlitch:
		return "media-glitch"
	case EvCrashed:
		return "crashed"
	default:
		return "unknown"
	}
}

// Event is one entry in the phone's event log.
type Event struct {
	At     time.Duration
	Kind   EventKind
	CallID string
	Detail string
}

// IM is a received instant message.
type IM struct {
	At       time.Duration
	From     string // From header AOR
	SourceIP netip.Addr
	Body     string
}

// Config configures a Phone.
type Config struct {
	Host     *netsim.Host
	Username string
	Password string
	// Proxy is the SIP proxy address; its IP doubles as the SIP domain.
	Proxy netip.AddrPort
	// SIPPort defaults to sip.DefaultPort; RTPPort to 40000 (RTCP on +1).
	SIPPort uint16
	RTPPort uint16
	// AnswerDelay is the ring time before auto-answer (default 500ms).
	AnswerDelay time.Duration
	// RejectCalls makes the phone answer every INVITE with 486 Busy Here
	// after ringing, instead of accepting.
	RejectCalls bool
	// CrashOnCorrupt emulates X-Lite: the client process dies when garbage
	// corrupts its jitter buffer. When false the phone behaves like
	// Messenger: audio glitches but the client survives.
	CrashOnCorrupt bool
	// ToneHz is the "voice" tone frequency (default 440).
	ToneHz float64
}

// Phone is a simulated softphone.
type Phone struct {
	cfg     Config
	sipPort uint16
	rtpPort uint16
	tx      *sip.TxLayer
	idgen   *sip.IDGen
	sim     *netsim.Simulator

	registered bool
	crashed    bool
	regCallID  string
	regCSeq    uint32

	calls  map[string]*Call // by Call-ID
	events []Event
	ims    []IM

	// OrphanRTP counts RTP packets that arrived with no active call, e.g.
	// the continuing flow after a forged BYE.
	OrphanRTP int
}

// New creates a phone and binds its SIP, RTP, and RTCP ports.
func New(cfg Config) (*Phone, error) {
	if cfg.Host == nil {
		return nil, fmt.Errorf("endpoint: nil host")
	}
	if cfg.Username == "" {
		return nil, fmt.Errorf("endpoint: empty username")
	}
	p := &Phone{
		cfg:     cfg,
		sipPort: cfg.SIPPort,
		rtpPort: cfg.RTPPort,
		idgen:   sip.NewIDGen(cfg.Host.Sim().Rand()),
		sim:     cfg.Host.Sim(),
		calls:   make(map[string]*Call),
	}
	if p.sipPort == 0 {
		p.sipPort = sip.DefaultPort
	}
	if p.rtpPort == 0 {
		p.rtpPort = 40000
	}
	if p.cfg.AnswerDelay == 0 {
		p.cfg.AnswerDelay = 500 * time.Millisecond
	}
	if p.cfg.ToneHz == 0 {
		p.cfg.ToneHz = 440
	}
	p.tx = sip.NewTxLayer(p.sim, func(dst netip.AddrPort, m *sip.Message) {
		if p.crashed {
			return
		}
		_ = cfg.Host.SendUDP(p.sipPort, dst, m.Marshal())
	})
	p.tx.OnRequest(p.handleRequest)
	if err := cfg.Host.BindUDP(p.sipPort, p.handleSIP); err != nil {
		return nil, fmt.Errorf("endpoint: %w", err)
	}
	if err := cfg.Host.BindUDP(p.rtpPort, p.handleRTP); err != nil {
		return nil, fmt.Errorf("endpoint: %w", err)
	}
	if err := cfg.Host.BindUDP(p.rtpPort+1, p.handleRTCP); err != nil {
		return nil, fmt.Errorf("endpoint: %w", err)
	}
	return p, nil
}

// AOR returns the phone's address-of-record (user@proxy-ip).
func (p *Phone) AOR() string { return p.cfg.Username + "@" + p.cfg.Proxy.Addr().String() }

// URI returns the phone's public SIP URI.
func (p *Phone) URI() sip.URI {
	return sip.URI{User: p.cfg.Username, Host: p.cfg.Proxy.Addr().String()}
}

// ContactURI returns the phone's contact (its own host and port).
func (p *Phone) ContactURI() sip.URI {
	return sip.URI{User: p.cfg.Username, Host: p.cfg.Host.IP().String(), Port: p.sipPort}
}

// RTPAddr returns the phone's media address.
func (p *Phone) RTPAddr() netip.AddrPort {
	return netip.AddrPortFrom(p.cfg.Host.IP(), p.rtpPort)
}

// Registered reports whether the last registration succeeded.
func (p *Phone) Registered() bool { return p.registered }

// Crashed reports whether the client has crashed (X-Lite emulation).
func (p *Phone) Crashed() bool { return p.crashed }

// Events returns the phone's event log.
func (p *Phone) Events() []Event { return append([]Event(nil), p.events...) }

// EventsOf returns the logged events of one kind.
func (p *Phone) EventsOf(kind EventKind) []Event {
	var out []Event
	for _, e := range p.events {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// Messages returns received instant messages.
func (p *Phone) Messages() []IM { return append([]IM(nil), p.ims...) }

// Calls returns the phone's calls (any state), keyed by Call-ID.
func (p *Phone) Calls() map[string]*Call {
	out := make(map[string]*Call, len(p.calls))
	for k, v := range p.calls {
		out[k] = v
	}
	return out
}

// ActiveCall returns the first confirmed call, or nil.
func (p *Phone) ActiveCall() *Call {
	for _, c := range p.calls {
		if c.Dialog != nil && c.Dialog.State == sip.DialogConfirmed {
			return c
		}
	}
	return nil
}

// ActiveCallOrLast returns the active call, or — after teardown — any
// call the phone has state for. Useful for post-run inspection.
func (p *Phone) ActiveCallOrLast() *Call {
	if c := p.ActiveCall(); c != nil {
		return c
	}
	for _, c := range p.calls {
		return c
	}
	return nil
}

func (p *Phone) logEvent(kind EventKind, callID, detail string) {
	p.events = append(p.events, Event{At: p.sim.Now(), Kind: kind, CallID: callID, Detail: detail})
}

func (p *Phone) via() sip.Via {
	return sip.Via{
		Transport: "UDP",
		SentBy:    fmt.Sprintf("%s:%d", p.cfg.Host.IP(), p.sipPort),
		Params:    map[string]string{"branch": p.idgen.Branch()},
	}
}

// Register sends a REGISTER to the proxy, answering a digest challenge
// automatically. done (optional) is invoked with the outcome.
func (p *Phone) Register(done func(ok bool)) {
	p.regCallID = p.idgen.CallID(p.cfg.Host.IP().String())
	p.regCSeq = 0
	p.sendRegister("", done)
}

func (p *Phone) sendRegister(authz string, done func(ok bool)) {
	p.regCSeq++
	contact := sip.Address{URI: p.ContactURI()}
	me := sip.Address{URI: p.URI()}
	req := sip.NewRequest(sip.RequestSpec{
		Method:     sip.MethodRegister,
		RequestURI: sip.URI{Host: p.cfg.Proxy.Addr().String(), Port: p.cfg.Proxy.Port()}.String(),
		From:       me.WithTag(p.idgen.Tag()),
		To:         me,
		CallID:     p.regCallID,
		CSeq:       sip.CSeq{Seq: p.regCSeq, Method: sip.MethodRegister},
		Via:        p.via(),
		Contact:    &contact,
	})
	req.Headers.Add(sip.HdrExpires, "3600")
	if authz != "" {
		req.Headers.Add(sip.HdrAuthorization, authz)
	}
	p.tx.Request(p.cfg.Proxy, req, func(resp *sip.Message) {
		switch {
		case resp.StatusCode == sip.StatusOK:
			p.registered = true
			p.logEvent(EvRegistered, p.regCallID, p.AOR())
			if done != nil {
				done(true)
			}
		case resp.StatusCode == sip.StatusUnauthorized && authz == "":
			chal, err := sip.ParseChallenge(resp.Headers.Get(sip.HdrWWWAuth))
			if err != nil {
				p.logEvent(EvRegisterFailed, p.regCallID, "bad challenge")
				if done != nil {
					done(false)
				}
				return
			}
			uri := sip.URI{Host: p.cfg.Proxy.Addr().String(), Port: p.cfg.Proxy.Port()}.String()
			creds := sip.Credentials{
				Username: p.cfg.Username,
				Realm:    chal.Realm,
				Nonce:    chal.Nonce,
				URI:      uri,
				Response: sip.DigestResponse(p.cfg.Username, chal.Realm, p.cfg.Password, chal.Nonce, sip.MethodRegister, uri),
			}
			p.sendRegister(creds.String(), done)
		case resp.StatusCode >= 300:
			p.logEvent(EvRegisterFailed, p.regCallID, resp.ReasonPhrase)
			if done != nil {
				done(false)
			}
		}
	}, func() {
		p.logEvent(EvRegisterFailed, p.regCallID, "timeout")
		if done != nil {
			done(false)
		}
	})
}

// SendIM sends an instant message (SIP MESSAGE) to another user via the
// proxy.
func (p *Phone) SendIM(toUser, text string) {
	to := sip.Address{URI: sip.URI{User: toUser, Host: p.cfg.Proxy.Addr().String()}}
	req := sip.NewRequest(sip.RequestSpec{
		Method:     sip.MethodMessage,
		RequestURI: to.URI.String(),
		From:       sip.Address{URI: p.URI()}.WithTag(p.idgen.Tag()),
		To:         to,
		CallID:     p.idgen.CallID(p.cfg.Host.IP().String()),
		CSeq:       sip.CSeq{Seq: 1, Method: sip.MethodMessage},
		Via:        p.via(),
		Body:       []byte(text),
		BodyType:   "text/plain",
	})
	p.tx.Request(p.cfg.Proxy, req, nil, nil)
}

// handleSIP is the raw UDP handler for the SIP port.
func (p *Phone) handleSIP(src netip.AddrPort, payload []byte) {
	if p.crashed {
		return
	}
	m, err := sip.ParseMessage(payload)
	if err != nil {
		return
	}
	p.tx.HandleMessage(src, m)
}
