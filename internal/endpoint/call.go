package endpoint

import (
	"fmt"
	"net/netip"
	"time"

	"scidive/internal/rtp"
	"scidive/internal/sdp"
	"scidive/internal/sip"
)

// Call is one SIP call (dialog plus media session).
type Call struct {
	CallID string
	Dialog *sip.Dialog

	phone       *Phone
	remoteMedia netip.AddrPort
	routeSet    []string // Route values for in-dialog requests
	outgoing    bool
	mediaPort   uint16        // local RTP source/receive port (moves on Migrate)
	invite      *sip.Message  // the dialog-forming INVITE (for CANCEL)
	inviteTx    *sip.ServerTx // pending incoming INVITE awaiting our answer
	cancelled   bool

	// Media sender state.
	sending bool
	ssrc    uint32
	seq     uint16
	rtpTime uint32
	tone    *rtp.ToneGenerator

	// Media receiver state.
	buf       *rtp.JitterBuffer
	jitterEst *rtp.JitterEstimator

	// Stats.
	RTPSent     int
	RTPReceived int
	RTCPSent    int
	RTCPRecv    int
	Glitches    int
}

// RemoteMedia returns where this call currently sends its RTP.
func (c *Call) RemoteMedia() netip.AddrPort { return c.remoteMedia }

// Established reports whether the call is confirmed and not torn down.
func (c *Call) Established() bool {
	return c.Dialog != nil && c.Dialog.State == sip.DialogConfirmed
}

// Jitter returns the receiver's current interarrival jitter estimate.
func (c *Call) Jitter() time.Duration {
	if c.jitterEst == nil {
		return 0
	}
	return c.jitterEst.JitterDuration()
}

// BufferStats returns the playout buffer statistics.
func (c *Call) BufferStats() rtp.JitterBufferStats {
	if c.buf == nil {
		return rtp.JitterBufferStats{}
	}
	return c.buf.Stats()
}

// newCall initializes call media state.
func (p *Phone) newCall(callID string, outgoing bool) *Call {
	buf, err := rtp.NewJitterBuffer(64)
	if err != nil {
		panic(fmt.Sprintf("endpoint: jitter buffer: %v", err)) // window is a constant; unreachable
	}
	c := &Call{
		CallID:    callID,
		phone:     p,
		outgoing:  outgoing,
		mediaPort: p.rtpPort,
		ssrc:      p.sim.Rand().Uint32(),
		seq:       uint16(p.sim.Rand().Intn(1 << 16)),
		tone:      rtp.NewToneGenerator(p.cfg.ToneHz, 8000, 12000),
		buf:       buf,
		jitterEst: rtp.NewJitterEstimator(8000),
	}
	p.calls[callID] = c
	return c
}

// localSDP builds this phone's media description.
func (p *Phone) localSDP() []byte {
	return sdp.NewAudioSession(p.cfg.Username, p.cfg.Host.IP(), p.rtpPort).Marshal()
}

// Call places a call to another user through the proxy. done (optional)
// fires when the call is established or fails.
func (p *Phone) Call(toUser string, done func(c *Call, err error)) {
	callID := p.idgen.CallID(p.cfg.Host.IP().String())
	c := p.newCall(callID, true)
	to := sip.Address{URI: sip.URI{User: toUser, Host: p.cfg.Proxy.Addr().String()}}
	contact := sip.Address{URI: p.ContactURI()}
	invite := sip.NewRequest(sip.RequestSpec{
		Method:     sip.MethodInvite,
		RequestURI: to.URI.String(),
		From:       sip.Address{URI: p.URI()}.WithTag(p.idgen.Tag()),
		To:         to,
		CallID:     callID,
		CSeq:       sip.CSeq{Seq: 1, Method: sip.MethodInvite},
		Via:        p.via(),
		Contact:    &contact,
		Body:       p.localSDP(),
		BodyType:   "application/sdp",
	})
	c.invite = invite
	p.tx.Request(p.cfg.Proxy, invite, func(resp *sip.Message) {
		switch {
		case resp.StatusCode < 200:
			// 100/180: ringing; nothing to do.
		case resp.StatusCode == sip.StatusOK && !c.cancelled:
			p.completeOutgoingCall(c, invite, resp, done)
		default:
			delete(p.calls, callID)
			if done != nil {
				done(nil, fmt.Errorf("endpoint: call rejected: %d %s", resp.StatusCode, resp.ReasonPhrase))
			}
		}
	}, func() {
		delete(p.calls, callID)
		if done != nil {
			done(nil, fmt.Errorf("endpoint: call timed out"))
		}
	})
}

func (p *Phone) completeOutgoingCall(c *Call, invite, resp *sip.Message, done func(*Call, error)) {
	dlg, err := sip.NewDialogUAC(invite, resp)
	if err != nil {
		if done != nil {
			done(nil, err)
		}
		return
	}
	c.Dialog = dlg
	sess, err := sdp.Parse(resp.Body)
	if err != nil {
		if done != nil {
			done(nil, fmt.Errorf("endpoint: answer SDP: %w", err))
		}
		return
	}
	media, ok := sess.MediaEndpoint("audio")
	if !ok {
		if done != nil {
			done(nil, fmt.Errorf("endpoint: answer SDP has no audio"))
		}
		return
	}
	c.remoteMedia = media
	c.routeSet = resp.Headers.Values(sip.HdrRecordRoute)
	p.sendAck(c, resp)
	p.startMedia(c)
	p.logEvent(EvCallEstablished, c.CallID, c.remoteMedia.String())
	if done != nil {
		done(c, nil)
	}
}

// inDialogDst returns the destination and Route header for an in-dialog
// request: through the proxy when a route set was recorded, else direct
// to the remote target.
func (c *Call) inDialogDst() (netip.AddrPort, string, error) {
	target := c.Dialog.RemoteTarget
	if len(c.routeSet) > 0 {
		route, err := sip.ParseAddress(c.routeSet[0])
		if err != nil {
			return netip.AddrPort{}, "", fmt.Errorf("endpoint: bad route %q: %w", c.routeSet[0], err)
		}
		ip, err := netip.ParseAddr(route.URI.Host)
		if err != nil {
			return netip.AddrPort{}, "", fmt.Errorf("endpoint: route host %q: %w", route.URI.Host, err)
		}
		return netip.AddrPortFrom(ip, route.URI.EffectivePort()), c.routeSet[0], nil
	}
	ip, err := netip.ParseAddr(target.Host)
	if err != nil {
		return netip.AddrPort{}, "", fmt.Errorf("endpoint: remote target %q: %w", target.Host, err)
	}
	return netip.AddrPortFrom(ip, target.EffectivePort()), "", nil
}

// sendAck acknowledges a 2xx to INVITE.
func (p *Phone) sendAck(c *Call, resp *sip.Message) {
	dst, route, err := c.inDialogDst()
	if err != nil {
		return
	}
	cseq, err := resp.CSeq()
	if err != nil {
		return
	}
	from := sip.Address{URI: c.Dialog.LocalURI}.WithTag(c.Dialog.ID.LocalTag)
	to := sip.Address{URI: c.Dialog.RemoteURI}.WithTag(c.Dialog.ID.RemoteTag)
	ack := sip.NewRequest(sip.RequestSpec{
		Method:     sip.MethodAck,
		RequestURI: c.Dialog.RemoteTarget.String(),
		From:       from,
		To:         to,
		CallID:     c.CallID,
		CSeq:       sip.CSeq{Seq: cseq.Seq, Method: sip.MethodAck},
		Via:        p.via(),
	})
	if route != "" {
		ack.Headers.Add(sip.HdrRoute, route)
	}
	_ = p.cfg.Host.SendUDP(p.sipPort, dst, ack.Marshal())
}

// newInDialogRequest builds an in-dialog request for call c.
func (p *Phone) newInDialogRequest(c *Call, method sip.Method, body []byte, bodyType string) (*sip.Message, netip.AddrPort, error) {
	dst, route, err := c.inDialogDst()
	if err != nil {
		return nil, netip.AddrPort{}, err
	}
	from := sip.Address{URI: c.Dialog.LocalURI}.WithTag(c.Dialog.ID.LocalTag)
	to := sip.Address{URI: c.Dialog.RemoteURI}.WithTag(c.Dialog.ID.RemoteTag)
	contact := sip.Address{URI: p.ContactURI()}
	req := sip.NewRequest(sip.RequestSpec{
		Method:     method,
		RequestURI: c.Dialog.RemoteTarget.String(),
		From:       from,
		To:         to,
		CallID:     c.CallID,
		CSeq:       sip.CSeq{Seq: c.Dialog.NextLocalSeq(), Method: method},
		Via:        p.via(),
		Contact:    &contact,
		Body:       body,
		BodyType:   bodyType,
	})
	if route != "" {
		req.Headers.Add(sip.HdrRoute, route)
	}
	return req, dst, nil
}

// Cancel abandons an outgoing call that has not been answered yet
// (RFC 3261 section 9): a CANCEL with the INVITE's identifiers travels
// the same path, and the callee answers the INVITE with 487.
func (p *Phone) Cancel(c *Call) error {
	if !c.outgoing || c.invite == nil {
		return fmt.Errorf("endpoint: no outgoing INVITE to cancel")
	}
	if c.Dialog != nil && c.Dialog.State == sip.DialogConfirmed {
		return fmt.Errorf("endpoint: call already answered; use Hangup")
	}
	c.cancelled = true
	cancel := &sip.Message{Method: sip.MethodCancel, RequestURI: c.invite.RequestURI}
	// RFC 3261 9.1: CANCEL copies the INVITE's Via (same branch), From,
	// To, Call-ID, and CSeq number with method CANCEL.
	cancel.Headers.Add(sip.HdrVia, c.invite.Headers.Get(sip.HdrVia))
	cancel.Headers.Add(sip.HdrMaxForwards, "70")
	cancel.Headers.Add(sip.HdrFrom, c.invite.Headers.Get(sip.HdrFrom))
	cancel.Headers.Add(sip.HdrTo, c.invite.Headers.Get(sip.HdrTo))
	cancel.Headers.Add(sip.HdrCallID, c.CallID)
	if cseq, err := c.invite.CSeq(); err == nil {
		cancel.Headers.Add(sip.HdrCSeq, sip.CSeq{Seq: cseq.Seq, Method: sip.MethodCancel}.String())
	}
	_ = p.cfg.Host.SendUDP(p.sipPort, p.cfg.Proxy, cancel.Marshal())
	return nil
}

// Hangup tears the call down with BYE.
func (p *Phone) Hangup(c *Call) error {
	if c.Dialog == nil || c.Dialog.State != sip.DialogConfirmed {
		return fmt.Errorf("endpoint: no confirmed dialog to hang up")
	}
	req, dst, err := p.newInDialogRequest(c, sip.MethodBye, nil, "")
	if err != nil {
		return err
	}
	p.stopMedia(c, true)
	c.Dialog.Terminate()
	p.logEvent(EvCallEnded, c.CallID, "local hangup")
	p.tx.Request(dst, req, nil, nil)
	return nil
}

// Migrate sends a re-INVITE that moves this phone's media session to a
// new local port (legitimate call migration). Both the receive socket and
// the transmit source move, as they would when the call hops devices: the
// old media address goes completely silent afterwards, which is what
// distinguishes legitimate migration from a hijack in SCIDIVE's rule.
func (p *Phone) Migrate(c *Call, newMedia netip.AddrPort) error {
	if c.Dialog == nil || c.Dialog.State != sip.DialogConfirmed {
		return fmt.Errorf("endpoint: no confirmed dialog to migrate")
	}
	if newMedia.Addr() != p.cfg.Host.IP() {
		return fmt.Errorf("endpoint: migration target %v is not on this host", newMedia.Addr())
	}
	if err := p.cfg.Host.BindUDP(newMedia.Port(), p.handleRTP); err != nil {
		return fmt.Errorf("endpoint: migrate: %w", err)
	}
	if err := p.cfg.Host.BindUDP(newMedia.Port()+1, p.handleRTCP); err != nil {
		return fmt.Errorf("endpoint: migrate: %w", err)
	}
	sess := sdp.NewAudioSession(p.cfg.Username, newMedia.Addr(), newMedia.Port())
	req, dst, err := p.newInDialogRequest(c, sip.MethodInvite, sess.Marshal(), "application/sdp")
	if err != nil {
		return err
	}
	p.tx.Request(dst, req, func(resp *sip.Message) {
		if resp.StatusCode == sip.StatusOK {
			c.mediaPort = newMedia.Port()
			p.sendAck(c, resp)
		}
	}, nil)
	return nil
}

// handleRequest dispatches incoming requests from the transaction layer.
func (p *Phone) handleRequest(tx *sip.ServerTx, req *sip.Message) {
	if p.crashed {
		return
	}
	switch req.Method {
	case sip.MethodInvite:
		if c := p.findDialogCall(req); c != nil {
			p.handleReinvite(tx, req, c)
			return
		}
		p.handleInvite(tx, req)
	case sip.MethodAck:
		if c, ok := p.calls[req.CallID()]; ok && c.Dialog != nil && c.Dialog.State == sip.DialogEarly {
			c.Dialog.Confirm()
			p.startMedia(c)
			p.logEvent(EvCallEstablished, c.CallID, c.remoteMedia.String())
		}
	case sip.MethodBye:
		p.handleBye(tx, req)
	case sip.MethodCancel:
		p.handleCancel(tx, req)
	case sip.MethodMessage:
		p.handleMessage(tx, req)
	default:
		tx.Respond(sip.NewResponse(req, sip.StatusNotImplemented, p.idgen.Tag()))
	}
}

// findDialogCall returns the call whose dialog matches an in-dialog request.
func (p *Phone) findDialogCall(req *sip.Message) *Call {
	c, ok := p.calls[req.CallID()]
	if !ok || c.Dialog == nil {
		return nil
	}
	if c.Dialog.MatchesRequest(req) {
		return c
	}
	return nil
}

// handleInvite answers a new incoming call (after ringing).
func (p *Phone) handleInvite(tx *sip.ServerTx, req *sip.Message) {
	sess, err := sdp.Parse(req.Body)
	if err != nil {
		tx.Respond(sip.NewResponse(req, sip.StatusBadRequest, p.idgen.Tag()))
		return
	}
	media, ok := sess.MediaEndpoint("audio")
	if !ok {
		tx.Respond(sip.NewResponse(req, sip.StatusNotImplemented, p.idgen.Tag()))
		return
	}
	localTag := p.idgen.Tag()
	dlg, err := sip.NewDialogUAS(req, localTag)
	if err != nil {
		tx.Respond(sip.NewResponse(req, sip.StatusBadRequest, p.idgen.Tag()))
		return
	}
	c := p.newCall(req.CallID(), false)
	c.Dialog = dlg
	c.remoteMedia = media
	c.routeSet = req.Headers.Values(sip.HdrRecordRoute)
	c.inviteTx = tx
	from, _ := req.From()
	p.logEvent(EvIncomingCall, c.CallID, from.URI.AOR())
	tx.Respond(sip.NewResponse(req, sip.StatusRinging, localTag))
	p.sim.Schedule(p.cfg.AnswerDelay, func() {
		if p.crashed || c.Dialog.State != sip.DialogEarly {
			return
		}
		if p.cfg.RejectCalls {
			c.Dialog.Terminate()
			delete(p.calls, c.CallID)
			p.logEvent(EvCallEnded, c.CallID, "rejected busy")
			tx.Respond(sip.NewResponse(req, sip.StatusBusyHere, localTag))
			return
		}
		ok200 := sip.NewResponse(req, sip.StatusOK, localTag)
		// RFC 3261 12.1.1: the UAS copies Record-Route into the 2xx so the
		// caller learns the route set (keeps in-dialog requests on the proxy).
		for _, rr := range req.Headers.Values(sip.HdrRecordRoute) {
			ok200.Headers.Add(sip.HdrRecordRoute, rr)
		}
		contact := sip.Address{URI: p.ContactURI()}
		ok200.Headers.Add(sip.HdrContact, contact.String())
		ok200.Headers.Add(sip.HdrContentType, "application/sdp")
		ok200.Body = p.localSDP()
		tx.Respond(ok200)
	})
}

// handleReinvite processes an in-dialog INVITE: the remote side (or an
// attacker forging one) is redirecting its media.
func (p *Phone) handleReinvite(tx *sip.ServerTx, req *sip.Message, c *Call) {
	sess, err := sdp.Parse(req.Body)
	if err != nil {
		tx.Respond(sip.NewResponse(req, sip.StatusBadRequest, p.idgen.Tag()))
		return
	}
	media, ok := sess.MediaEndpoint("audio")
	if !ok {
		tx.Respond(sip.NewResponse(req, sip.StatusNotImplemented, p.idgen.Tag()))
		return
	}
	old := c.remoteMedia
	c.remoteMedia = media
	if contact, err := req.Contact(); err == nil {
		c.Dialog.RemoteTarget = contact.URI
	}
	if cseq, err := req.CSeq(); err == nil {
		c.Dialog.RemoteSeq = cseq.Seq
	}
	p.logEvent(EvCallRedirected, c.CallID, fmt.Sprintf("%s -> %s", old, media))
	ok200 := sip.NewResponse(req, sip.StatusOK, c.Dialog.ID.LocalTag)
	contact := sip.Address{URI: p.ContactURI()}
	ok200.Headers.Add(sip.HdrContact, contact.String())
	ok200.Headers.Add(sip.HdrContentType, "application/sdp")
	ok200.Body = p.localSDP()
	tx.Respond(ok200)
}

// handleCancel abandons a ringing incoming call: 200 for the CANCEL,
// 487 for the pending INVITE.
func (p *Phone) handleCancel(tx *sip.ServerTx, req *sip.Message) {
	c, ok := p.calls[req.CallID()]
	if !ok || c.Dialog == nil || c.Dialog.State != sip.DialogEarly || c.inviteTx == nil {
		tx.Respond(sip.NewResponse(req, sip.StatusNotFound, p.idgen.Tag()))
		return
	}
	tx.Respond(sip.NewResponse(req, sip.StatusOK, c.Dialog.ID.LocalTag))
	c.inviteTx.Respond(sip.NewResponse(c.inviteTx.Request, sip.StatusRequestTerminated, c.Dialog.ID.LocalTag))
	c.Dialog.Terminate()
	delete(p.calls, c.CallID)
	p.logEvent(EvCallEnded, c.CallID, "cancelled by caller")
}

// handleBye tears down a call on remote (or forged) BYE.
func (p *Phone) handleBye(tx *sip.ServerTx, req *sip.Message) {
	c := p.findDialogCall(req)
	if c == nil {
		tx.Respond(sip.NewResponse(req, sip.StatusNotFound, p.idgen.Tag()))
		return
	}
	p.stopMedia(c, false)
	c.Dialog.Terminate()
	p.logEvent(EvCallEnded, c.CallID, "remote BYE")
	tx.Respond(sip.NewResponse(req, sip.StatusOK, c.Dialog.ID.LocalTag))
}

// handleMessage receives an instant message.
func (p *Phone) handleMessage(tx *sip.ServerTx, req *sip.Message) {
	from, err := req.From()
	if err != nil {
		tx.Respond(sip.NewResponse(req, sip.StatusBadRequest, p.idgen.Tag()))
		return
	}
	p.ims = append(p.ims, IM{
		At:       p.sim.Now(),
		From:     from.URI.AOR(),
		SourceIP: tx.Src.Addr(),
		Body:     string(req.Body),
	})
	p.logEvent(EvIMReceived, req.CallID(), from.URI.AOR())
	tx.Respond(sip.NewResponse(req, sip.StatusOK, p.idgen.Tag()))
}
