package endpoint_test

import (
	"net/netip"
	"strings"
	"testing"
	"time"

	"scidive/internal/accounting"
	"scidive/internal/endpoint"
	"scidive/internal/netsim"
	"scidive/internal/proxy"
	"scidive/internal/sip"
)

// testbed is the paper's Figure 4 topology: two clients and a proxy on a
// hub, plus an accounting service.
type testbed struct {
	sim   *netsim.Simulator
	net   *netsim.Network
	proxy *proxy.Server
	acct  *accounting.Service
	a, b  *endpoint.Phone
}

func newTestbed(t *testing.T, seed int64) *testbed {
	t.Helper()
	sim := netsim.NewSimulator(seed)
	n := netsim.NewNetwork(sim)
	hostA := n.MustAddHost("client-a", netip.MustParseAddr("10.0.0.1"))
	hostB := n.MustAddHost("client-b", netip.MustParseAddr("10.0.0.2"))
	hostP := n.MustAddHost("proxy", netip.MustParseAddr("10.0.0.10"))
	hostAcct := n.MustAddHost("acct", netip.MustParseAddr("10.0.0.20"))

	acct, err := accounting.NewService(hostAcct, 0)
	if err != nil {
		t.Fatalf("accounting: %v", err)
	}
	prx, err := proxy.New(proxy.Config{
		Host:        hostP,
		Realm:       "scidive.test",
		Users:       map[string]string{"alice": "wonderland", "bob": "builder"},
		RequireAuth: true,
		Accounting:  accounting.NewClient(hostP, netip.AddrPortFrom(hostAcct.IP(), accounting.DefaultPort), 7010),
	})
	if err != nil {
		t.Fatalf("proxy: %v", err)
	}
	a, err := endpoint.New(endpoint.Config{
		Host: hostA, Username: "alice", Password: "wonderland", Proxy: prx.Addr(),
	})
	if err != nil {
		t.Fatalf("phone a: %v", err)
	}
	b, err := endpoint.New(endpoint.Config{
		Host: hostB, Username: "bob", Password: "builder", Proxy: prx.Addr(),
	})
	if err != nil {
		t.Fatalf("phone b: %v", err)
	}
	return &testbed{sim: sim, net: n, proxy: prx, acct: acct, a: a, b: b}
}

// register registers both phones and asserts success.
func (tb *testbed) register(t *testing.T) {
	t.Helper()
	tb.a.Register(nil)
	tb.b.Register(nil)
	tb.sim.RunUntil(2 * time.Second)
	if !tb.a.Registered() || !tb.b.Registered() {
		t.Fatalf("registration failed: a=%v b=%v", tb.a.Registered(), tb.b.Registered())
	}
}

// call places a call from a to b and returns a's call.
func (tb *testbed) call(t *testing.T) *endpoint.Call {
	t.Helper()
	var call *endpoint.Call
	var callErr error
	tb.sim.Schedule(0, func() {
		tb.a.Call("bob", func(c *endpoint.Call, err error) { call, callErr = c, err })
	})
	tb.sim.RunUntil(tb.sim.Now() + 3*time.Second)
	if callErr != nil {
		t.Fatalf("call failed: %v", callErr)
	}
	if call == nil || !call.Established() {
		t.Fatal("call not established")
	}
	return call
}

func TestRegistrationWithDigestAuth(t *testing.T) {
	tb := newTestbed(t, 1)
	tb.register(t)
	st := tb.proxy.Stats()
	if st.Challenges != 2 {
		t.Errorf("Challenges = %d, want 2 (one per phone)", st.Challenges)
	}
	if st.Registers != 2 {
		t.Errorf("Registers = %d, want 2", st.Registers)
	}
	if b := tb.proxy.BindingFor("alice@10.0.0.10"); b == nil {
		t.Error("no binding for alice")
	} else if b.Source.Addr() != netip.MustParseAddr("10.0.0.1") {
		t.Errorf("alice binding source = %v", b.Source)
	}
}

func TestRegistrationWrongPassword(t *testing.T) {
	tb := newTestbed(t, 2)
	hostM := tb.net.MustAddHost("mallory", netip.MustParseAddr("10.0.0.66"))
	m, err := endpoint.New(endpoint.Config{
		Host: hostM, Username: "alice", Password: "WRONG", Proxy: tb.proxy.Addr(),
	})
	if err != nil {
		t.Fatal(err)
	}
	var outcome *bool
	m.Register(func(ok bool) { outcome = &ok })
	// The phone answers the challenge once with bad credentials, gets
	// re-challenged, and does not loop: the second 401 arrives with
	// authz=="" false, so it reports failure.
	tb.sim.RunUntil(5 * time.Second)
	if m.Registered() {
		t.Error("phone with wrong password registered")
	}
	if tb.proxy.Stats().AuthFailures == 0 {
		t.Error("proxy recorded no auth failures")
	}
	_ = outcome // outcome may be nil if the phone is still mid-retry at cutoff
}

func TestCallSetupMediaAndTeardown(t *testing.T) {
	tb := newTestbed(t, 3)
	tb.register(t)
	call := tb.call(t)

	// Media should point at bob's advertised RTP address.
	if call.RemoteMedia() != tb.b.RTPAddr() {
		t.Errorf("a's remote media = %v, want %v", call.RemoteMedia(), tb.b.RTPAddr())
	}
	// Let the call run 10 seconds: ~500 RTP packets each way.
	end := tb.sim.Now() + 10*time.Second
	tb.sim.RunUntil(end)
	bCall := tb.b.ActiveCall()
	if bCall == nil {
		t.Fatal("bob has no active call")
	}
	if call.RTPSent < 450 || bCall.RTPReceived < 450 {
		t.Errorf("RTP counts: a sent %d, b received %d, want ≈500", call.RTPSent, bCall.RTPReceived)
	}
	if call.RTPReceived < 400 {
		t.Errorf("a received %d RTP, want ≈475 (b answers after ring delay)", call.RTPReceived)
	}
	if call.RTCPSent == 0 || bCall.RTCPRecv == 0 {
		t.Errorf("RTCP did not flow: sent=%d recv=%d", call.RTCPSent, bCall.RTCPRecv)
	}
	// Playout should be healthy: no significant underruns on a lossless LAN.
	if st := bCall.BufferStats(); st.Played < 400 || st.Underruns > 5 {
		t.Errorf("bob playout stats = %+v", st)
	}

	// Hang up from a; b should see the BYE through the proxy (Record-Route).
	tb.sim.Schedule(0, func() {
		if err := tb.a.Hangup(call); err != nil {
			t.Errorf("Hangup: %v", err)
		}
	})
	tb.sim.RunUntil(tb.sim.Now() + 2*time.Second)
	if call.Established() {
		t.Error("a's call still established after hangup")
	}
	if bCall.Established() {
		t.Error("b's call still established after BYE")
	}
	if len(tb.b.EventsOf(endpoint.EvCallEnded)) != 1 {
		t.Error("b did not log call-ended")
	}
	aSent := call.RTPSent
	bSent := bCall.RTPSent
	tb.sim.RunUntil(tb.sim.Now() + 2*time.Second)
	if call.RTPSent != aSent || bCall.RTPSent != bSent {
		t.Error("RTP continued after teardown")
	}
}

func TestAccountingRecordsCall(t *testing.T) {
	tb := newTestbed(t, 4)
	tb.register(t)
	call := tb.call(t)
	tb.sim.RunUntil(tb.sim.Now() + 30*time.Second)
	tb.sim.Schedule(0, func() { _ = tb.a.Hangup(call) })
	tb.sim.RunUntil(tb.sim.Now() + 2*time.Second)

	recs := tb.acct.Records()
	if len(recs) != 1 {
		t.Fatalf("CDRs = %d, want 1", len(recs))
	}
	r := recs[0]
	if r.From != "alice@10.0.0.10" || r.To != "bob@10.0.0.10" {
		t.Errorf("CDR parties = %s -> %s", r.From, r.To)
	}
	if r.FromIP != netip.MustParseAddr("10.0.0.1") {
		t.Errorf("CDR from-ip = %v", r.FromIP)
	}
	if !r.Stopped {
		t.Error("CDR not stopped after BYE")
	}
	if d := r.Duration(); d < 25*time.Second || d > 35*time.Second {
		t.Errorf("CDR duration = %v, want ≈30s", d)
	}
}

func TestInstantMessaging(t *testing.T) {
	tb := newTestbed(t, 5)
	tb.register(t)
	tb.sim.Schedule(0, func() { tb.b.SendIM("alice", "hello from bob") })
	tb.sim.RunUntil(tb.sim.Now() + 2*time.Second)
	msgs := tb.a.Messages()
	if len(msgs) != 1 {
		t.Fatalf("alice has %d IMs, want 1", len(msgs))
	}
	if msgs[0].From != "bob@10.0.0.10" || msgs[0].Body != "hello from bob" {
		t.Errorf("IM = %+v", msgs[0])
	}
	// Source IP is the proxy's (the message was relayed).
	if msgs[0].SourceIP != netip.MustParseAddr("10.0.0.10") {
		t.Errorf("IM source = %v, want proxy", msgs[0].SourceIP)
	}
}

func TestCallMigrationViaReinvite(t *testing.T) {
	tb := newTestbed(t, 6)
	tb.register(t)
	call := tb.call(t)
	tb.sim.RunUntil(tb.sim.Now() + 2*time.Second)

	// Alice migrates her media to a new port (e.g. a different device
	// behind the same address).
	newMedia := netip.AddrPortFrom(netip.MustParseAddr("10.0.0.1"), 42000)
	tb.sim.Schedule(0, func() {
		if err := tb.a.Migrate(call, newMedia); err != nil {
			t.Errorf("Migrate: %v", err)
		}
	})
	tb.sim.RunUntil(tb.sim.Now() + 2*time.Second)
	bCall := tb.b.ActiveCall()
	if bCall == nil {
		t.Fatal("bob lost the call during migration")
	}
	if bCall.RemoteMedia() != newMedia {
		t.Errorf("bob's remote media = %v, want %v", bCall.RemoteMedia(), newMedia)
	}
	if len(tb.b.EventsOf(endpoint.EvCallRedirected)) != 1 {
		t.Error("bob did not log call-redirected")
	}
	if call.Established() != true || bCall.Established() != true {
		t.Error("call dropped during migration")
	}
}

func TestCallToUnregisteredUser(t *testing.T) {
	tb := newTestbed(t, 7)
	tb.a.Register(nil)
	tb.sim.RunUntil(2 * time.Second) // bob never registers
	var gotErr error
	done := false
	tb.sim.Schedule(0, func() {
		tb.a.Call("bob", func(_ *endpoint.Call, err error) { gotErr, done = err, true })
	})
	tb.sim.RunUntil(tb.sim.Now() + 2*time.Second)
	if !done || gotErr == nil {
		t.Fatalf("call to unregistered user: done=%v err=%v, want rejection", done, gotErr)
	}
	if tb.proxy.Stats().NotFound != 1 {
		t.Errorf("proxy NotFound = %d, want 1", tb.proxy.Stats().NotFound)
	}
}

func TestPhoneConfigValidation(t *testing.T) {
	if _, err := endpoint.New(endpoint.Config{}); err == nil {
		t.Error("New with nil host: want error")
	}
	sim := netsim.NewSimulator(1)
	n := netsim.NewNetwork(sim)
	h := n.MustAddHost("x", netip.MustParseAddr("10.0.0.1"))
	if _, err := endpoint.New(endpoint.Config{Host: h}); err == nil {
		t.Error("New with empty username: want error")
	}
}

func TestProxyConfigValidation(t *testing.T) {
	if _, err := proxy.New(proxy.Config{}); err == nil {
		t.Error("proxy.New with nil host: want error")
	}
}

func TestDeterministicCallReplay(t *testing.T) {
	run := func() (int, int) {
		tb := newTestbed(t, 77)
		tb.register(t)
		call := tb.call(t)
		tb.sim.RunUntil(tb.sim.Now() + 5*time.Second)
		b := tb.b.ActiveCall()
		if b == nil {
			t.Fatal("no call at b")
		}
		return call.RTPSent, b.RTPReceived
	}
	s1, r1 := run()
	s2, r2 := run()
	if s1 != s2 || r1 != r2 {
		t.Errorf("replay diverged: (%d,%d) vs (%d,%d)", s1, r1, s2, r2)
	}
}

func TestEventKindString(t *testing.T) {
	kinds := []endpoint.EventKind{
		endpoint.EvRegistered, endpoint.EvRegisterFailed, endpoint.EvIncomingCall,
		endpoint.EvCallEstablished, endpoint.EvCallEnded, endpoint.EvCallRedirected,
		endpoint.EvIMReceived, endpoint.EvMediaGlitch, endpoint.EvCrashed,
	}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "unknown" || seen[s] {
			t.Errorf("EventKind %d has bad/duplicate name %q", k, s)
		}
		seen[s] = true
	}
	if endpoint.EventKind(0).String() != "unknown" {
		t.Error("zero EventKind should be unknown")
	}
}

var _ = sip.MethodInvite // keep the sip import for helper visibility

func TestRejectedCallReturnsBusy(t *testing.T) {
	sim := netsim.NewSimulator(42)
	n := netsim.NewNetwork(sim)
	hostA := n.MustAddHost("a", netip.MustParseAddr("10.0.1.1"))
	hostB := n.MustAddHost("b", netip.MustParseAddr("10.0.1.2"))
	hostP := n.MustAddHost("p", netip.MustParseAddr("10.0.1.10"))
	prx, err := proxy.New(proxy.Config{Host: hostP, Realm: "t", Users: map[string]string{"a": "x", "b": "y"}})
	if err != nil {
		t.Fatal(err)
	}
	a, err := endpoint.New(endpoint.Config{Host: hostA, Username: "a", Password: "x", Proxy: prx.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	b, err := endpoint.New(endpoint.Config{Host: hostB, Username: "b", Password: "y", Proxy: prx.Addr(), RejectCalls: true})
	if err != nil {
		t.Fatal(err)
	}
	a.Register(nil)
	b.Register(nil)
	sim.RunUntil(2 * time.Second)
	var gotErr error
	done := false
	sim.Schedule(0, func() {
		a.Call("b", func(_ *endpoint.Call, err error) { gotErr, done = err, true })
	})
	sim.RunUntil(sim.Now() + 3*time.Second)
	if !done {
		t.Fatal("call callback never fired")
	}
	if gotErr == nil || !strings.Contains(gotErr.Error(), "486") {
		t.Errorf("err = %v, want 486 Busy Here", gotErr)
	}
	if len(b.EventsOf(endpoint.EvCallEnded)) != 1 {
		t.Error("busy phone did not log the rejection")
	}
	if a.ActiveCall() != nil || b.ActiveCall() != nil {
		t.Error("a call remained active after rejection")
	}
}

func TestCancelRingingCall(t *testing.T) {
	tb := newTestbed(t, 9)
	tb.register(t)
	var call *endpoint.Call
	var callErr error
	done := false
	// Bob's ring time is the default 500ms; cancel at 200ms.
	tb.sim.Schedule(0, func() {
		tb.a.Call("bob", func(c *endpoint.Call, err error) { call, callErr, done = c, err, true })
	})
	tb.sim.Schedule(200*time.Millisecond, func() {
		for _, c := range tb.a.Calls() {
			if err := tb.a.Cancel(c); err != nil {
				t.Errorf("Cancel: %v", err)
			}
		}
	})
	tb.sim.RunUntil(tb.sim.Now() + 3*time.Second)
	if !done {
		t.Fatal("call callback never fired")
	}
	if callErr == nil || !strings.Contains(callErr.Error(), "487") {
		t.Errorf("err = %v, want 487 Request Terminated", callErr)
	}
	if call != nil {
		t.Error("cancelled call returned a live call")
	}
	if len(tb.b.EventsOf(endpoint.EvCallEnded)) != 1 {
		t.Error("bob did not log the cancellation")
	}
	if tb.a.ActiveCall() != nil || tb.b.ActiveCall() != nil {
		t.Error("calls remained after cancel")
	}
	// No media ever flowed.
	for _, c := range tb.b.Calls() {
		if c.RTPSent > 0 || c.RTPReceived > 0 {
			t.Error("media flowed for a cancelled call")
		}
	}
}

func TestCancelAfterAnswerFails(t *testing.T) {
	tb := newTestbed(t, 10)
	tb.register(t)
	call := tb.call(t)
	if err := tb.a.Cancel(call); err == nil {
		t.Error("Cancel after answer: want error")
	}
}
