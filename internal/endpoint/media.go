package endpoint

import (
	"errors"
	"net/netip"
	"time"

	"scidive/internal/rtp"
)

// Media timing constants: G.711 at 8 kHz with 20 ms packetization.
const (
	ptime            = 20 * time.Millisecond
	samplesPerPacket = 160
	rtcpInterval     = 2500 * time.Millisecond
)

// startMedia begins the send and playout loops for a confirmed call.
func (p *Phone) startMedia(c *Call) {
	if c.sending {
		return
	}
	c.sending = true
	p.sim.Every(0, ptime, func() bool {
		if p.crashed || !c.sending {
			return false
		}
		p.sendRTP(c)
		return true
	})
	p.sim.Every(ptime, ptime, func() bool {
		if p.crashed || !c.sending {
			return false
		}
		c.buf.Pop() // playout tick; underruns are counted by the buffer
		return true
	})
	p.sim.Every(rtcpInterval, rtcpInterval, func() bool {
		if p.crashed || !c.sending {
			return false
		}
		p.sendRTCP(c)
		return true
	})
}

// stopMedia halts transmission for a call. When announce is true (local
// hangup) the departure is announced with an RTCP BYE as RFC 3550
// section 6.3.7 prescribes; on remote-initiated teardown the peer
// already knows and period clients sent nothing.
func (p *Phone) stopMedia(c *Call, announce bool) {
	if !c.sending {
		return
	}
	c.sending = false
	if !announce {
		return
	}
	bye := &rtp.Bye{SSRCs: []uint32{c.ssrc}, Reason: "session ended"}
	buf, err := rtp.MarshalCompound([]rtp.RTCPPacket{bye})
	if err != nil {
		return
	}
	dst := netip.AddrPortFrom(c.remoteMedia.Addr(), c.remoteMedia.Port()+1)
	if err := p.cfg.Host.SendUDP(c.mediaPort+1, dst, buf); err == nil {
		c.RTCPSent++
	}
}

// sendRTP emits one tone packet.
func (p *Phone) sendRTP(c *Call) {
	payload := rtp.EncodePCMU(c.tone.Next(samplesPerPacket))
	pkt := rtp.Packet{
		Header: rtp.Header{
			PayloadType: rtp.PayloadTypePCMU,
			Seq:         c.seq,
			Timestamp:   c.rtpTime,
			SSRC:        c.ssrc,
		},
		Payload: payload,
	}
	c.seq++
	c.rtpTime += samplesPerPacket
	buf, err := pkt.Marshal()
	if err != nil {
		return
	}
	if err := p.cfg.Host.SendUDP(c.mediaPort, c.remoteMedia, buf); err != nil {
		return
	}
	c.RTPSent++
}

// sendRTCP emits a sender report with an SDES CNAME.
func (p *Phone) sendRTCP(c *Call) {
	now := p.sim.Now()
	sr := &rtp.SenderReport{
		SSRC:        c.ssrc,
		NTPSec:      uint32(now / time.Second),
		NTPFrac:     uint32(uint64(now%time.Second) << 32 / uint64(time.Second)),
		RTPTime:     c.rtpTime,
		PacketCount: uint32(c.RTPSent),
		OctetCount:  uint32(c.RTPSent * samplesPerPacket),
	}
	sdes := &rtp.SourceDescription{SSRC: c.ssrc, CNAME: p.AOR()}
	buf, err := rtp.MarshalCompound([]rtp.RTCPPacket{sr, sdes})
	if err != nil {
		return
	}
	dst := netip.AddrPortFrom(c.remoteMedia.Addr(), c.remoteMedia.Port()+1)
	if err := p.cfg.Host.SendUDP(c.mediaPort+1, dst, buf); err != nil {
		return
	}
	c.RTCPSent++
}

// handleRTP processes an incoming packet on the RTP port. Garbage or
// wildly out-of-window packets corrupt the jitter buffer: depending on
// configuration the client crashes (X-Lite) or glitches (Messenger).
func (p *Phone) handleRTP(src netip.AddrPort, payload []byte) {
	if p.crashed {
		return
	}
	c := p.mediaCall()
	if c == nil {
		p.OrphanRTP++
		return
	}
	pkt, err := rtp.Unmarshal(payload)
	if err != nil {
		p.corruptMedia(c, "undecodable RTP: "+err.Error())
		return
	}
	c.RTPReceived++
	c.jitterEst.Observe(pkt.Header.Timestamp, p.sim.Now())
	if err := c.buf.Insert(pkt); err != nil {
		if errors.Is(err, rtp.ErrBufferCorrupted) {
			p.corruptMedia(c, err.Error())
		}
		return
	}
	_ = src // the endpoint accepts media from any source: RTP has no auth
}

// mediaCall returns the call whose media session is active.
func (p *Phone) mediaCall() *Call {
	for _, c := range p.calls {
		if c.sending {
			return c
		}
	}
	return nil
}

// corruptMedia applies the configured client behaviour to a jitter-buffer
// corruption.
func (p *Phone) corruptMedia(c *Call, detail string) {
	c.Glitches++
	if p.cfg.CrashOnCorrupt {
		p.crash(c.CallID, detail)
		return
	}
	// Messenger behaviour: audio glitches, buffer resets, client survives.
	p.logEvent(EvMediaGlitch, c.CallID, detail)
	if buf, err := rtp.NewJitterBuffer(64); err == nil {
		c.buf = buf
	}
}

// crash emulates the X-Lite process dying: all activity stops.
func (p *Phone) crash(callID, detail string) {
	p.crashed = true
	p.logEvent(EvCrashed, callID, detail)
	for _, c := range p.calls {
		c.sending = false
	}
}

// handleRTCP processes incoming RTCP compound packets. A BYE makes the
// phone believe the remote participant left the media session, so it
// stops transmitting — the behaviour the RTCP BYE spoofing attack
// exploits (the SIP dialog stays up, but the audio dies).
func (p *Phone) handleRTCP(_ netip.AddrPort, payload []byte) {
	if p.crashed {
		return
	}
	c := p.mediaCall()
	if c == nil {
		return
	}
	pkts, err := rtp.UnmarshalCompound(payload)
	if err != nil {
		return
	}
	c.RTCPRecv++
	for _, pkt := range pkts {
		if _, isBye := pkt.(*rtp.Bye); isBye && c.Established() {
			c.sending = false // remote "left": stop our stream, dialog stays up
			p.logEvent(EvMediaGlitch, c.CallID, "remote sent RTCP BYE; transmission stopped")
		}
	}
}
