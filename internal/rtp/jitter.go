package rtp

import "time"

// JitterEstimator implements the RFC 3550 Appendix A.8 interarrival
// jitter estimator: J(i) = J(i−1) + (|D(i−1,i)| − J(i−1))/16, where D is
// the difference in relative transit times measured in RTP timestamp
// units.
type JitterEstimator struct {
	clockRate uint32 // RTP timestamp ticks per second
	jitter    float64
	transit   int64
	primed    bool
}

// NewJitterEstimator returns an estimator for a media clock of the given
// rate (8000 for G.711).
func NewJitterEstimator(clockRate uint32) *JitterEstimator {
	return &JitterEstimator{clockRate: clockRate}
}

// Observe feeds one packet arrival: its RTP timestamp and the local
// arrival time. It returns the updated jitter estimate in timestamp units.
func (j *JitterEstimator) Observe(rtpTimestamp uint32, arrival time.Duration) float64 {
	arrivalTicks := int64(arrival) * int64(j.clockRate) / int64(time.Second)
	transit := arrivalTicks - int64(rtpTimestamp)
	if !j.primed {
		j.primed = true
		j.transit = transit
		return j.jitter
	}
	d := transit - j.transit
	j.transit = transit
	if d < 0 {
		d = -d
	}
	j.jitter += (float64(d) - j.jitter) / 16
	return j.jitter
}

// Jitter returns the current estimate in timestamp units.
func (j *JitterEstimator) Jitter() float64 { return j.jitter }

// JitterDuration returns the current estimate as wall time.
func (j *JitterEstimator) JitterDuration() time.Duration {
	if j.clockRate == 0 {
		return 0
	}
	return time.Duration(j.jitter * float64(time.Second) / float64(j.clockRate))
}
