package rtp

import "math"

// G.711 µ-law codec (ITU-T G.711). The VoIP endpoints encode a generated
// tone with it so the media stream carries realistic PCMU payloads.

const (
	muLawBias = 0x84
	muLawClip = 32635
)

// MuLawEncode compresses one 16-bit linear PCM sample to 8-bit µ-law.
func MuLawEncode(sample int16) byte {
	s := int32(sample)
	sign := byte(0)
	if s < 0 {
		s = -s
		sign = 0x80
	}
	if s > muLawClip {
		s = muLawClip
	}
	s += muLawBias
	exponent := byte(7)
	for mask := int32(0x4000); mask != 0 && s&mask == 0; mask >>= 1 {
		exponent--
	}
	mantissa := byte((s >> (exponent + 3)) & 0x0f)
	return ^(sign | exponent<<4 | mantissa)
}

// MuLawDecode expands one 8-bit µ-law byte to a 16-bit linear PCM sample.
func MuLawDecode(b byte) int16 {
	b = ^b
	sign := b & 0x80
	exponent := (b >> 4) & 0x07
	mantissa := b & 0x0f
	s := (int32(mantissa)<<3 + muLawBias) << exponent
	s -= muLawBias
	if sign != 0 {
		s = -s
	}
	return int16(s)
}

// EncodePCMU µ-law-encodes a slice of linear samples.
func EncodePCMU(samples []int16) []byte {
	out := make([]byte, len(samples))
	for i, s := range samples {
		out[i] = MuLawEncode(s)
	}
	return out
}

// DecodePCMU decodes µ-law bytes to linear samples.
func DecodePCMU(data []byte) []int16 {
	out := make([]int16, len(data))
	for i, b := range data {
		out[i] = MuLawDecode(b)
	}
	return out
}

// ToneGenerator produces a fixed-frequency sine tone, the simulated
// "voice" the endpoints transmit.
type ToneGenerator struct {
	freq       float64
	sampleRate float64
	amplitude  float64
	phase      float64
}

// NewToneGenerator returns a generator for freq Hz at sampleRate Hz with
// the given peak amplitude (0..32767).
func NewToneGenerator(freq, sampleRate float64, amplitude int16) *ToneGenerator {
	return &ToneGenerator{freq: freq, sampleRate: sampleRate, amplitude: float64(amplitude)}
}

// Next returns the next n samples of the tone.
func (g *ToneGenerator) Next(n int) []int16 {
	out := make([]int16, n)
	step := 2 * math.Pi * g.freq / g.sampleRate
	for i := range out {
		out[i] = int16(g.amplitude * math.Sin(g.phase))
		g.phase += step
		if g.phase > 2*math.Pi {
			g.phase -= 2 * math.Pi
		}
	}
	return out
}
