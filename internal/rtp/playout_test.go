package rtp

import (
	"errors"
	"testing"
	"time"
)

func pkt(seq uint16) Packet {
	return Packet{Header: Header{Seq: seq, PayloadType: PayloadTypePCMU, SSRC: 1}}
}

func TestJitterBufferInOrderPlayout(t *testing.T) {
	b, err := NewJitterBuffer(50)
	if err != nil {
		t.Fatal(err)
	}
	for s := uint16(100); s < 110; s++ {
		if err := b.Insert(pkt(s)); err != nil {
			t.Fatalf("Insert(%d): %v", s, err)
		}
	}
	for s := uint16(100); s < 110; s++ {
		p, ok := b.Pop()
		if !ok || p.Header.Seq != s {
			t.Fatalf("Pop: got seq %d ok=%v, want %d", p.Header.Seq, ok, s)
		}
	}
	st := b.Stats()
	if st.Played != 10 || st.Underruns != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestJitterBufferReordering(t *testing.T) {
	b, _ := NewJitterBuffer(50)
	for _, s := range []uint16{3, 1, 2, 0, 4} {
		if err := b.Insert(pkt(s + 1000)); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	// Playout point primed at 1003 (first arrival); 1000-1002 are "late"
	// relative to it? No: diff(1003, 1001) < 0 → late. Playout yields 1003, 1004.
	got := []uint16{}
	for {
		p, ok := b.Pop()
		if !ok {
			break
		}
		got = append(got, p.Header.Seq)
	}
	if len(got) != 2 || got[0] != 1003 || got[1] != 1004 {
		t.Errorf("playout = %v, want [1003 1004]", got)
	}
	if b.Stats().Late != 3 {
		t.Errorf("Late = %d, want 3", b.Stats().Late)
	}
}

func TestJitterBufferUnderrunAdvances(t *testing.T) {
	b, _ := NewJitterBuffer(50)
	_ = b.Insert(pkt(10))
	_ = b.Insert(pkt(12)) // 11 missing
	if p, ok := b.Pop(); !ok || p.Header.Seq != 10 {
		t.Fatalf("first pop: %v %v", p.Header.Seq, ok)
	}
	if _, ok := b.Pop(); ok {
		t.Fatal("missing slot returned a packet")
	}
	if p, ok := b.Pop(); !ok || p.Header.Seq != 12 {
		t.Fatalf("third pop: %v %v", p.Header.Seq, ok)
	}
	if b.Stats().Underruns != 1 {
		t.Errorf("Underruns = %d", b.Stats().Underruns)
	}
}

func TestJitterBufferDuplicates(t *testing.T) {
	b, _ := NewJitterBuffer(50)
	_ = b.Insert(pkt(5))
	_ = b.Insert(pkt(5))
	if b.Stats().Duplicates != 1 || b.Depth() != 1 {
		t.Errorf("stats=%+v depth=%d", b.Stats(), b.Depth())
	}
}

func TestJitterBufferCorruptionOnSeqJump(t *testing.T) {
	b, _ := NewJitterBuffer(100)
	_ = b.Insert(pkt(1000))
	// The paper's RTP attack: a garbage packet with a wildly wrong sequence
	// number lands far outside the playout window.
	err := b.Insert(pkt(42000))
	if !errors.Is(err, ErrBufferCorrupted) {
		t.Fatalf("err = %v, want ErrBufferCorrupted", err)
	}
}

func TestJitterBufferSeqWrap(t *testing.T) {
	b, _ := NewJitterBuffer(50)
	for _, s := range []uint16{0xfffe, 0xffff, 0, 1} {
		if err := b.Insert(pkt(s)); err != nil {
			t.Fatalf("Insert(%d): %v", s, err)
		}
	}
	want := []uint16{0xfffe, 0xffff, 0, 1}
	for _, w := range want {
		p, ok := b.Pop()
		if !ok || p.Header.Seq != w {
			t.Fatalf("pop got %d ok=%v, want %d", p.Header.Seq, ok, w)
		}
	}
}

func TestJitterBufferWindowValidation(t *testing.T) {
	for _, w := range []int{0, -1, 1 << 15} {
		if _, err := NewJitterBuffer(w); err == nil {
			t.Errorf("NewJitterBuffer(%d): want error", w)
		}
	}
}

func TestPopBeforePrimed(t *testing.T) {
	b, _ := NewJitterBuffer(10)
	if _, ok := b.Pop(); ok {
		t.Error("Pop on empty unprimed buffer returned a packet")
	}
	if b.Stats().Underruns != 0 {
		t.Error("unprimed Pop counted an underrun")
	}
}

func TestJitterEstimatorSteadyStream(t *testing.T) {
	// Perfectly periodic arrivals: jitter converges to zero.
	j := NewJitterEstimator(8000)
	for i := 0; i < 100; i++ {
		j.Observe(uint32(i*160), time.Duration(i)*20*time.Millisecond)
	}
	if j.Jitter() != 0 {
		t.Errorf("jitter = %f for perfectly periodic stream", j.Jitter())
	}
}

func TestJitterEstimatorDetectsVariance(t *testing.T) {
	j := NewJitterEstimator(8000)
	// Alternate arrival offsets of ±5 ms around the nominal 20 ms period.
	for i := 0; i < 200; i++ {
		at := time.Duration(i) * 20 * time.Millisecond
		if i%2 == 1 {
			at += 5 * time.Millisecond
		}
		j.Observe(uint32(i*160), at)
	}
	// |D| is a constant 40 ticks (5 ms at 8 kHz), so the EWMA converges to 40.
	if j.Jitter() < 35 || j.Jitter() > 45 {
		t.Errorf("jitter = %.1f ticks, want ≈40", j.Jitter())
	}
	d := j.JitterDuration()
	if d < 4*time.Millisecond || d > 6*time.Millisecond {
		t.Errorf("JitterDuration = %v, want ≈5ms", d)
	}
}

func TestJitterEstimatorZeroRate(t *testing.T) {
	j := NewJitterEstimator(0)
	if j.JitterDuration() != 0 {
		t.Error("zero clock rate should yield zero duration")
	}
}
