package rtp

import (
	"encoding/binary"
	"fmt"
)

// RTCP packet types.
const (
	RTCPSenderReport   = 200
	RTCPReceiverReport = 201
	RTCPSourceDesc     = 202
	RTCPBye            = 203
)

// ReportBlock is one reception report block (RFC 3550 section 6.4.1).
type ReportBlock struct {
	SSRC           uint32
	FractionLost   uint8
	CumulativeLost uint32 // 24 bits on the wire
	HighestSeq     uint32
	Jitter         uint32
	LSR            uint32
	DLSR           uint32
}

const reportBlockLen = 24

func (b *ReportBlock) marshalTo(buf []byte) {
	binary.BigEndian.PutUint32(buf[0:4], b.SSRC)
	binary.BigEndian.PutUint32(buf[4:8], b.CumulativeLost&0x00ffffff)
	buf[4] = b.FractionLost
	binary.BigEndian.PutUint32(buf[8:12], b.HighestSeq)
	binary.BigEndian.PutUint32(buf[12:16], b.Jitter)
	binary.BigEndian.PutUint32(buf[16:20], b.LSR)
	binary.BigEndian.PutUint32(buf[20:24], b.DLSR)
}

func unmarshalReportBlock(buf []byte) ReportBlock {
	return ReportBlock{
		SSRC:           binary.BigEndian.Uint32(buf[0:4]),
		FractionLost:   buf[4],
		CumulativeLost: binary.BigEndian.Uint32(buf[4:8]) & 0x00ffffff,
		HighestSeq:     binary.BigEndian.Uint32(buf[8:12]),
		Jitter:         binary.BigEndian.Uint32(buf[12:16]),
		LSR:            binary.BigEndian.Uint32(buf[16:20]),
		DLSR:           binary.BigEndian.Uint32(buf[20:24]),
	}
}

// RTCPPacket is one packet inside a compound RTCP datagram.
type RTCPPacket interface {
	rtcpPacketType() uint8
}

// SenderReport is an RTCP SR.
type SenderReport struct {
	SSRC        uint32
	NTPSec      uint32
	NTPFrac     uint32
	RTPTime     uint32
	PacketCount uint32
	OctetCount  uint32
	Reports     []ReportBlock
}

func (*SenderReport) rtcpPacketType() uint8 { return RTCPSenderReport }

// ReceiverReport is an RTCP RR.
type ReceiverReport struct {
	SSRC    uint32
	Reports []ReportBlock
}

func (*ReceiverReport) rtcpPacketType() uint8 { return RTCPReceiverReport }

// SourceDescription is an RTCP SDES carrying a single CNAME item.
type SourceDescription struct {
	SSRC  uint32
	CNAME string
}

func (*SourceDescription) rtcpPacketType() uint8 { return RTCPSourceDesc }

// Bye is an RTCP BYE.
type Bye struct {
	SSRCs  []uint32
	Reason string
}

func (*Bye) rtcpPacketType() uint8 { return RTCPBye }

// writeHeader fills the 4-byte RTCP common header. length is the packet
// length in bytes including the header (must be a multiple of 4).
func writeHeader(buf []byte, count int, pt uint8, length int) {
	buf[0] = Version<<6 | uint8(count&0x1f)
	buf[1] = pt
	binary.BigEndian.PutUint16(buf[2:4], uint16(length/4-1))
}

// MarshalCompound serializes RTCP packets into one compound datagram.
func MarshalCompound(pkts []RTCPPacket) ([]byte, error) {
	var out []byte
	for _, p := range pkts {
		switch v := p.(type) {
		case *SenderReport:
			if len(v.Reports) > 31 {
				return nil, fmt.Errorf("rtcp: %d report blocks exceeds 31", len(v.Reports))
			}
			n := 28 + reportBlockLen*len(v.Reports)
			buf := make([]byte, n)
			writeHeader(buf, len(v.Reports), RTCPSenderReport, n)
			binary.BigEndian.PutUint32(buf[4:8], v.SSRC)
			binary.BigEndian.PutUint32(buf[8:12], v.NTPSec)
			binary.BigEndian.PutUint32(buf[12:16], v.NTPFrac)
			binary.BigEndian.PutUint32(buf[16:20], v.RTPTime)
			binary.BigEndian.PutUint32(buf[20:24], v.PacketCount)
			binary.BigEndian.PutUint32(buf[24:28], v.OctetCount)
			for i := range v.Reports {
				v.Reports[i].marshalTo(buf[28+reportBlockLen*i:])
			}
			out = append(out, buf...)
		case *ReceiverReport:
			if len(v.Reports) > 31 {
				return nil, fmt.Errorf("rtcp: %d report blocks exceeds 31", len(v.Reports))
			}
			n := 8 + reportBlockLen*len(v.Reports)
			buf := make([]byte, n)
			writeHeader(buf, len(v.Reports), RTCPReceiverReport, n)
			binary.BigEndian.PutUint32(buf[4:8], v.SSRC)
			for i := range v.Reports {
				v.Reports[i].marshalTo(buf[8+reportBlockLen*i:])
			}
			out = append(out, buf...)
		case *SourceDescription:
			if len(v.CNAME) > 255 {
				return nil, fmt.Errorf("rtcp: CNAME of %d bytes too long", len(v.CNAME))
			}
			// chunk: SSRC + item(type=1,len,cname) + null terminator, padded.
			itemLen := 4 + 2 + len(v.CNAME) + 1
			padded := (itemLen + 3) &^ 3
			buf := make([]byte, 4+padded)
			writeHeader(buf, 1, RTCPSourceDesc, len(buf))
			binary.BigEndian.PutUint32(buf[4:8], v.SSRC)
			buf[8] = 1 // CNAME item type
			buf[9] = uint8(len(v.CNAME))
			copy(buf[10:], v.CNAME)
			out = append(out, buf...)
		case *Bye:
			if len(v.SSRCs) == 0 || len(v.SSRCs) > 31 {
				return nil, fmt.Errorf("rtcp: BYE must carry 1..31 SSRCs, got %d", len(v.SSRCs))
			}
			if len(v.Reason) > 255 {
				return nil, fmt.Errorf("rtcp: BYE reason of %d bytes too long", len(v.Reason))
			}
			n := 4 + 4*len(v.SSRCs)
			if v.Reason != "" {
				n += (1 + len(v.Reason) + 3) &^ 3
			}
			buf := make([]byte, n)
			writeHeader(buf, len(v.SSRCs), RTCPBye, n)
			for i, s := range v.SSRCs {
				binary.BigEndian.PutUint32(buf[4+4*i:8+4*i], s)
			}
			if v.Reason != "" {
				off := 4 + 4*len(v.SSRCs)
				buf[off] = uint8(len(v.Reason))
				copy(buf[off+1:], v.Reason)
			}
			out = append(out, buf...)
		default:
			return nil, fmt.Errorf("rtcp: unsupported packet type %T", p)
		}
	}
	return out, nil
}

// CompoundView is the allocation-free projection of a compound RTCP
// datagram that PeekCompound produces: how many packets it holds and
// whether any of them is a BYE — everything the detection hot path
// consumes — instead of materialized packet structs.
type CompoundView struct {
	Packets int
	HasBye  bool
}

// PeekCompound scans a compound RTCP datagram into v without allocating.
// It applies exactly the validation UnmarshalCompound applies (per-packet
// header, length, and body-layout checks), so a buffer is accepted by one
// iff it is accepted by the other; errors carry the same text.
func PeekCompound(buf []byte, v *CompoundView) error {
	v.Packets, v.HasBye = 0, false
	for len(buf) > 0 {
		if len(buf) < 4 {
			return fmt.Errorf("rtcp: trailing %d bytes shorter than header", len(buf))
		}
		if ver := buf[0] >> 6; ver != Version {
			return fmt.Errorf("rtcp: bad version %d", ver)
		}
		count := int(buf[0] & 0x1f)
		pt := buf[1]
		length := (int(binary.BigEndian.Uint16(buf[2:4])) + 1) * 4
		if length > len(buf) {
			return fmt.Errorf("rtcp: packet length %d exceeds buffer of %d", length, len(buf))
		}
		body := buf[4:length]
		switch pt {
		case RTCPSenderReport:
			if len(body) < 24+reportBlockLen*count {
				return fmt.Errorf("rtcp: SR too short for %d blocks", count)
			}
		case RTCPReceiverReport:
			if len(body) < 4+reportBlockLen*count {
				return fmt.Errorf("rtcp: RR too short for %d blocks", count)
			}
		case RTCPSourceDesc:
			if len(body) < 6 || body[4] != 1 {
				return fmt.Errorf("rtcp: unsupported SDES layout")
			}
			if n := int(body[5]); len(body) < 6+n {
				return fmt.Errorf("rtcp: SDES CNAME overruns packet")
			}
		case RTCPBye:
			if len(body) < 4*count {
				return fmt.Errorf("rtcp: BYE too short for %d SSRCs", count)
			}
			if rest := body[4*count:]; len(rest) > 0 {
				if n := int(rest[0]); len(rest) < 1+n {
					return fmt.Errorf("rtcp: BYE reason overruns packet")
				}
			}
			v.HasBye = true
		default:
			return fmt.Errorf("rtcp: unknown packet type %d", pt)
		}
		v.Packets++
		buf = buf[length:]
	}
	return nil
}

// UnmarshalCompound parses a compound RTCP datagram.
func UnmarshalCompound(buf []byte) ([]RTCPPacket, error) {
	var pkts []RTCPPacket
	for len(buf) > 0 {
		if len(buf) < 4 {
			return nil, fmt.Errorf("rtcp: trailing %d bytes shorter than header", len(buf))
		}
		if v := buf[0] >> 6; v != Version {
			return nil, fmt.Errorf("rtcp: bad version %d", v)
		}
		count := int(buf[0] & 0x1f)
		pt := buf[1]
		length := (int(binary.BigEndian.Uint16(buf[2:4])) + 1) * 4
		if length > len(buf) {
			return nil, fmt.Errorf("rtcp: packet length %d exceeds buffer of %d", length, len(buf))
		}
		body := buf[4:length]
		switch pt {
		case RTCPSenderReport:
			if len(body) < 24+reportBlockLen*count {
				return nil, fmt.Errorf("rtcp: SR too short for %d blocks", count)
			}
			sr := &SenderReport{
				SSRC:        binary.BigEndian.Uint32(body[0:4]),
				NTPSec:      binary.BigEndian.Uint32(body[4:8]),
				NTPFrac:     binary.BigEndian.Uint32(body[8:12]),
				RTPTime:     binary.BigEndian.Uint32(body[12:16]),
				PacketCount: binary.BigEndian.Uint32(body[16:20]),
				OctetCount:  binary.BigEndian.Uint32(body[20:24]),
			}
			for i := 0; i < count; i++ {
				sr.Reports = append(sr.Reports, unmarshalReportBlock(body[24+reportBlockLen*i:]))
			}
			pkts = append(pkts, sr)
		case RTCPReceiverReport:
			if len(body) < 4+reportBlockLen*count {
				return nil, fmt.Errorf("rtcp: RR too short for %d blocks", count)
			}
			rr := &ReceiverReport{SSRC: binary.BigEndian.Uint32(body[0:4])}
			for i := 0; i < count; i++ {
				rr.Reports = append(rr.Reports, unmarshalReportBlock(body[4+reportBlockLen*i:]))
			}
			pkts = append(pkts, rr)
		case RTCPSourceDesc:
			if len(body) < 6 || body[4] != 1 {
				return nil, fmt.Errorf("rtcp: unsupported SDES layout")
			}
			n := int(body[5])
			if len(body) < 6+n {
				return nil, fmt.Errorf("rtcp: SDES CNAME overruns packet")
			}
			pkts = append(pkts, &SourceDescription{
				SSRC:  binary.BigEndian.Uint32(body[0:4]),
				CNAME: string(body[6 : 6+n]),
			})
		case RTCPBye:
			if len(body) < 4*count {
				return nil, fmt.Errorf("rtcp: BYE too short for %d SSRCs", count)
			}
			bye := &Bye{}
			for i := 0; i < count; i++ {
				bye.SSRCs = append(bye.SSRCs, binary.BigEndian.Uint32(body[4*i:4*i+4]))
			}
			if rest := body[4*count:]; len(rest) > 0 {
				n := int(rest[0])
				if len(rest) < 1+n {
					return nil, fmt.Errorf("rtcp: BYE reason overruns packet")
				}
				bye.Reason = string(rest[1 : 1+n])
			}
			pkts = append(pkts, bye)
		default:
			return nil, fmt.Errorf("rtcp: unknown packet type %d", pt)
		}
		buf = buf[length:]
	}
	return pkts, nil
}
