package rtp

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMuLawRoundTripAccuracy(t *testing.T) {
	// µ-law is lossy; verify the quantization error is within the
	// segment-dependent bound for a sweep of values.
	for s := -32000; s <= 32000; s += 97 {
		in := int16(s)
		out := MuLawDecode(MuLawEncode(in))
		err := math.Abs(float64(out) - float64(in))
		// Error bound grows with magnitude: half a quantization step of the
		// containing segment (max step is 256 at the top segment).
		bound := math.Max(16, math.Abs(float64(in))/16)
		if err > bound {
			t.Fatalf("sample %d -> %d: error %.0f exceeds bound %.0f", in, out, err, bound)
		}
	}
}

func TestMuLawIdempotentOnCodewords(t *testing.T) {
	// decode(encode(decode(b))) == decode(b) for every codeword.
	for b := 0; b < 256; b++ {
		s := MuLawDecode(byte(b))
		if again := MuLawDecode(MuLawEncode(s)); again != s {
			t.Fatalf("codeword %#x: decode %d re-encodes to %d", b, s, again)
		}
	}
}

func TestMuLawSignSymmetry(t *testing.T) {
	f := func(s int16) bool {
		if s == math.MinInt16 {
			return true // -s overflows
		}
		a := MuLawDecode(MuLawEncode(s))
		b := MuLawDecode(MuLawEncode(-s))
		return a == -b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMuLawClipping(t *testing.T) {
	top := MuLawEncode(32767)
	if MuLawEncode(muLawClip) != top {
		t.Error("values above clip do not saturate")
	}
}

func TestEncodeDecodePCMUSlices(t *testing.T) {
	in := []int16{0, 1000, -1000, 32000, -32000}
	enc := EncodePCMU(in)
	if len(enc) != len(in) {
		t.Fatalf("encoded length %d", len(enc))
	}
	dec := DecodePCMU(enc)
	for i := range in {
		if MuLawDecode(MuLawEncode(in[i])) != dec[i] {
			t.Errorf("slice codec disagrees with scalar at %d", i)
		}
	}
}

func TestToneGenerator(t *testing.T) {
	g := NewToneGenerator(440, 8000, 10000)
	samples := g.Next(8000) // one second
	if len(samples) != 8000 {
		t.Fatalf("got %d samples", len(samples))
	}
	var maxAmp int16
	crossings := 0
	for i := 1; i < len(samples); i++ {
		if samples[i] > maxAmp {
			maxAmp = samples[i]
		}
		if samples[i-1] < 0 && samples[i] >= 0 {
			crossings++
		}
	}
	if maxAmp < 9000 || maxAmp > 10000 {
		t.Errorf("peak amplitude %d, want ≈10000", maxAmp)
	}
	// A 440 Hz tone has 440 rising zero crossings per second.
	if crossings < 435 || crossings > 445 {
		t.Errorf("zero crossings = %d, want ≈440", crossings)
	}
}

func TestToneGeneratorContinuity(t *testing.T) {
	g1 := NewToneGenerator(440, 8000, 10000)
	whole := g1.Next(320)
	g2 := NewToneGenerator(440, 8000, 10000)
	parts := append(g2.Next(160), g2.Next(160)...)
	for i := range whole {
		if whole[i] != parts[i] {
			t.Fatalf("sample %d differs between whole and chunked generation", i)
		}
	}
}
