package rtp

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestPacketRoundTrip(t *testing.T) {
	p := Packet{
		Header: Header{
			Marker:      true,
			PayloadType: PayloadTypePCMU,
			Seq:         0xfffe,
			Timestamp:   160000,
			SSRC:        0xdeadbeef,
			CSRC:        []uint32{1, 2, 3},
		},
		Payload: []byte("audio-bytes"),
	}
	buf, err := p.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	got, err := Unmarshal(buf)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	h := got.Header
	if !h.Marker || h.PayloadType != PayloadTypePCMU || h.Seq != 0xfffe ||
		h.Timestamp != 160000 || h.SSRC != 0xdeadbeef {
		t.Errorf("header = %+v", h)
	}
	if len(h.CSRC) != 3 || h.CSRC[0] != 1 || h.CSRC[2] != 3 {
		t.Errorf("CSRC = %v", h.CSRC)
	}
	if !bytes.Equal(got.Payload, p.Payload) {
		t.Errorf("payload = %q", got.Payload)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	tests := []struct {
		name string
		buf  []byte
	}{
		{"too short", make([]byte, 11)},
		{"bad version", append([]byte{0x00}, make([]byte, 11)...)},
		{"csrc overrun", append([]byte{0x82}, make([]byte, 11)...)}, // CC=2 but no CSRC bytes
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Unmarshal(tt.buf); err == nil {
				t.Error("want error")
			}
		})
	}
}

func TestGarbageOftenRejected(t *testing.T) {
	// A random byte has a 3/4 chance of a wrong version; verify the decoder
	// rejects version!=2 deterministically.
	buf := make([]byte, 20)
	for v := 0; v < 4; v++ {
		buf[0] = byte(v << 6)
		_, err := Unmarshal(buf)
		if v == Version && err != nil {
			t.Errorf("version 2 rejected: %v", err)
		}
		if v != Version && err == nil {
			t.Errorf("version %d accepted", v)
		}
	}
}

func TestPaddingHandling(t *testing.T) {
	p := Packet{Header: Header{PayloadType: 0, Seq: 1, SSRC: 9}, Payload: []byte("abc")}
	buf, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	// Append 3 padding bytes and set the P bit.
	buf = append(buf, 0, 0, 3)
	buf[0] |= 1 << 5
	got, err := Unmarshal(buf)
	if err != nil {
		t.Fatalf("Unmarshal padded: %v", err)
	}
	if !bytes.Equal(got.Payload, []byte("abc")) {
		t.Errorf("padded payload = %q", got.Payload)
	}
	// Invalid padding count.
	buf[len(buf)-1] = 200
	if _, err := Unmarshal(buf); err == nil {
		t.Error("bad padding accepted")
	}
}

func TestTooManyCSRCs(t *testing.T) {
	p := Packet{Header: Header{CSRC: make([]uint32, 16)}}
	if _, err := p.Marshal(); err == nil {
		t.Error("16 CSRCs accepted")
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(marker bool, pt uint8, seq uint16, ts, ssrc uint32, payload []byte) bool {
		p := Packet{
			Header:  Header{Marker: marker, PayloadType: pt & 0x7f, Seq: seq, Timestamp: ts, SSRC: ssrc},
			Payload: payload,
		}
		buf, err := p.Marshal()
		if err != nil {
			return false
		}
		got, err := Unmarshal(buf)
		return err == nil &&
			got.Header.Marker == marker &&
			got.Header.PayloadType == pt&0x7f &&
			got.Header.Seq == seq &&
			got.Header.Timestamp == ts &&
			got.Header.SSRC == ssrc &&
			bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSeqArithmetic(t *testing.T) {
	tests := []struct {
		a, b uint16
		less bool
		diff int
	}{
		{0, 1, true, 1},
		{1, 0, false, -1},
		{5, 5, false, 0},
		{0xffff, 0, true, 1},   // wrap forward
		{0, 0xffff, false, -1}, // wrap backward
		{0xff00, 0x0100, true, 512},
		{100, 300, true, 200},
	}
	for _, tt := range tests {
		if got := SeqLess(tt.a, tt.b); got != tt.less {
			t.Errorf("SeqLess(%d, %d) = %v, want %v", tt.a, tt.b, got, tt.less)
		}
		if got := SeqDiff(tt.a, tt.b); got != tt.diff {
			t.Errorf("SeqDiff(%d, %d) = %d, want %d", tt.a, tt.b, got, tt.diff)
		}
	}
}

func TestSeqDiffAntisymmetryProperty(t *testing.T) {
	f := func(a, b uint16) bool {
		d := SeqDiff(a, b)
		if a == b {
			return d == 0 && !SeqLess(a, b) && !SeqLess(b, a)
		}
		// Except at the antipode (diff == -32768), diff is antisymmetric and
		// exactly one direction compares less.
		if d == -32768 {
			return SeqDiff(b, a) == -32768
		}
		return SeqDiff(b, a) == -d && (SeqLess(a, b) == (d > 0))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
