package rtp

import (
	"testing"
	"time"
)

func BenchmarkPacketUnmarshal(b *testing.B) {
	p := Packet{
		Header:  Header{PayloadType: PayloadTypePCMU, Seq: 7, Timestamp: 1120, SSRC: 9},
		Payload: make([]byte, 160),
	}
	buf, err := p.Marshal()
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMuLawEncodeFrame(b *testing.B) {
	g := NewToneGenerator(440, 8000, 12000)
	samples := g.Next(160)
	b.SetBytes(160)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EncodePCMU(samples)
	}
}

func BenchmarkJitterBufferInsertPop(b *testing.B) {
	buf, err := NewJitterBuffer(64)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = buf.Insert(Packet{Header: Header{Seq: uint16(i)}})
		buf.Pop()
	}
}

func BenchmarkJitterEstimatorObserve(b *testing.B) {
	j := NewJitterEstimator(8000)
	for i := 0; i < b.N; i++ {
		j.Observe(uint32(i*160), time.Duration(i)*20*time.Millisecond)
	}
}

func BenchmarkRTCPCompoundRoundTrip(b *testing.B) {
	pkts := []RTCPPacket{
		&SenderReport{SSRC: 1, Reports: []ReportBlock{{SSRC: 2}}},
		&SourceDescription{SSRC: 1, CNAME: "alice@10.0.0.1"},
	}
	for i := 0; i < b.N; i++ {
		buf, err := MarshalCompound(pkts)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := UnmarshalCompound(buf); err != nil {
			b.Fatal(err)
		}
	}
}
