package rtp

import (
	"reflect"
	"testing"
)

func TestCompoundRoundTrip(t *testing.T) {
	in := []RTCPPacket{
		&SenderReport{
			SSRC: 0x11223344, NTPSec: 100, NTPFrac: 200, RTPTime: 4800,
			PacketCount: 300, OctetCount: 48000,
			Reports: []ReportBlock{{
				SSRC: 0x55667788, FractionLost: 12, CumulativeLost: 34,
				HighestSeq: 5000, Jitter: 77, LSR: 1, DLSR: 2,
			}},
		},
		&SourceDescription{SSRC: 0x11223344, CNAME: "alice@10.0.0.1"},
	}
	buf, err := MarshalCompound(in)
	if err != nil {
		t.Fatalf("MarshalCompound: %v", err)
	}
	if len(buf)%4 != 0 {
		t.Errorf("compound length %d not 32-bit aligned", len(buf))
	}
	out, err := UnmarshalCompound(buf)
	if err != nil {
		t.Fatalf("UnmarshalCompound: %v", err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip mismatch:\n in=%+v\nout=%+v", in, out)
	}
}

func TestReceiverReportRoundTrip(t *testing.T) {
	in := []RTCPPacket{&ReceiverReport{
		SSRC: 42,
		Reports: []ReportBlock{
			{SSRC: 1, FractionLost: 255, CumulativeLost: 0xffffff, HighestSeq: 9, Jitter: 3},
			{SSRC: 2},
		},
	}}
	buf, err := MarshalCompound(in)
	if err != nil {
		t.Fatalf("MarshalCompound: %v", err)
	}
	out, err := UnmarshalCompound(buf)
	if err != nil {
		t.Fatalf("UnmarshalCompound: %v", err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip mismatch: %+v vs %+v", in, out)
	}
}

func TestByeRoundTrip(t *testing.T) {
	tests := []*Bye{
		{SSRCs: []uint32{7}},
		{SSRCs: []uint32{7, 8, 9}, Reason: "teardown"},
	}
	for _, in := range tests {
		buf, err := MarshalCompound([]RTCPPacket{in})
		if err != nil {
			t.Fatalf("MarshalCompound: %v", err)
		}
		out, err := UnmarshalCompound(buf)
		if err != nil {
			t.Fatalf("UnmarshalCompound: %v", err)
		}
		got, ok := out[0].(*Bye)
		if !ok || !reflect.DeepEqual(got, in) {
			t.Errorf("round trip: got %+v, want %+v", out[0], in)
		}
	}
}

func TestMarshalErrors(t *testing.T) {
	tests := []struct {
		name string
		pkt  RTCPPacket
	}{
		{"too many SR blocks", &SenderReport{Reports: make([]ReportBlock, 32)}},
		{"too many RR blocks", &ReceiverReport{Reports: make([]ReportBlock, 32)}},
		{"empty BYE", &Bye{}},
		{"long cname", &SourceDescription{CNAME: string(make([]byte, 300))}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := MarshalCompound([]RTCPPacket{tt.pkt}); err == nil {
				t.Error("want error")
			}
		})
	}
}

func TestUnmarshalCompoundErrors(t *testing.T) {
	tests := []struct {
		name string
		buf  []byte
	}{
		{"short header", []byte{0x80, 200}},
		{"bad version", []byte{0x40, 200, 0, 0}},
		{"length overrun", []byte{0x80, 200, 0, 20}},
		{"unknown type", []byte{0x80, 99, 0, 0}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := UnmarshalCompound(tt.buf); err == nil {
				t.Error("want error")
			}
		})
	}
}
