package rtp

import (
	"errors"
	"fmt"
)

// ErrBufferCorrupted is returned by JitterBuffer.Insert when an incoming
// packet's sequence number is so far ahead of the playout point that the
// buffer state is effectively destroyed. This models the real-world
// behaviour the paper describes for the RTP attack: garbage packets with
// random sequence numbers "corrupt the jitter buffer in the IP Phone
// client", crashing some clients (X-Lite) and garbling audio on others.
var ErrBufferCorrupted = errors.New("rtp: jitter buffer corrupted by out-of-window packet")

// JitterBufferStats counts playout buffer activity.
type JitterBufferStats struct {
	Inserted   int // packets accepted into the buffer
	Duplicates int // packets dropped as duplicates
	Late       int // packets that arrived after their playout slot
	Played     int // packets handed to the decoder
	Underruns  int // playout ticks with no packet available
}

// JitterBuffer is a playout buffer ordered by RTP sequence number. The
// receiving endpoint inserts packets as they arrive and pops one per
// packetization interval.
type JitterBuffer struct {
	window  int // how far ahead of the playout point a packet may be
	packets map[uint16]Packet
	next    uint16 // next sequence number to play
	primed  bool
	stats   JitterBufferStats
}

// NewJitterBuffer returns a buffer accepting packets up to window
// sequence numbers ahead of the playout point. window must be positive.
func NewJitterBuffer(window int) (*JitterBuffer, error) {
	if window <= 0 || window >= 1<<15 {
		return nil, fmt.Errorf("rtp: jitter buffer window %d out of range", window)
	}
	return &JitterBuffer{window: window, packets: make(map[uint16]Packet, window)}, nil
}

// Stats returns a snapshot of the buffer counters.
func (b *JitterBuffer) Stats() JitterBufferStats { return b.stats }

// Depth returns the number of packets currently buffered.
func (b *JitterBuffer) Depth() int { return len(b.packets) }

// Insert adds an arriving packet. Packets behind the playout point are
// counted late and dropped; duplicates are dropped; packets more than the
// window ahead return ErrBufferCorrupted.
func (b *JitterBuffer) Insert(p Packet) error {
	if !b.primed {
		b.primed = true
		b.next = p.Header.Seq
	}
	d := SeqDiff(b.next, p.Header.Seq)
	switch {
	case d < -b.window:
		// So far "behind" the playout point that it cannot be a late
		// arrival — a wild sequence number (e.g. a garbage packet).
		return fmt.Errorf("%w: seq %d is %d behind playout point %d (window %d)",
			ErrBufferCorrupted, p.Header.Seq, -d, b.next, b.window)
	case d < 0:
		b.stats.Late++
		return nil
	case d >= b.window:
		return fmt.Errorf("%w: seq %d is %d ahead of playout point %d (window %d)",
			ErrBufferCorrupted, p.Header.Seq, d, b.next, b.window)
	}
	if _, dup := b.packets[p.Header.Seq]; dup {
		b.stats.Duplicates++
		return nil
	}
	b.packets[p.Header.Seq] = p
	b.stats.Inserted++
	return nil
}

// Pop removes and returns the packet at the playout point, advancing it.
// When the slot is empty (loss or delay) it records an underrun, advances
// anyway, and returns ok=false — the decoder plays comfort noise.
func (b *JitterBuffer) Pop() (Packet, bool) {
	if !b.primed {
		return Packet{}, false
	}
	p, ok := b.packets[b.next]
	if ok {
		delete(b.packets, b.next)
		b.stats.Played++
	} else {
		b.stats.Underruns++
	}
	b.next++
	return p, ok
}
