// Package rtp implements the Real-time Transport Protocol (RFC 3550)
// subset the SCIDIVE reproduction needs: RTP packet encoding/decoding,
// wrap-aware sequence number arithmetic, the interarrival jitter
// estimator, RTCP sender/receiver reports and BYE, a G.711 µ-law codec,
// and a playout jitter buffer.
package rtp

import (
	"encoding/binary"
	"fmt"
)

// Version is the RTP protocol version.
const Version = 2

// HeaderLen is the fixed RTP header length (without CSRCs).
const HeaderLen = 12

// PayloadTypePCMU is the static payload type for G.711 µ-law.
const PayloadTypePCMU = 0

// Header is a decoded RTP fixed header.
type Header struct {
	Padding     bool
	Extension   bool
	Marker      bool
	PayloadType uint8
	Seq         uint16
	Timestamp   uint32
	SSRC        uint32
	CSRC        []uint32
}

// Packet is an RTP packet.
type Packet struct {
	Header  Header
	Payload []byte
}

// Marshal serializes the packet.
func (p *Packet) Marshal() ([]byte, error) {
	if len(p.Header.CSRC) > 15 {
		return nil, fmt.Errorf("rtp: %d CSRCs exceeds maximum of 15", len(p.Header.CSRC))
	}
	buf := make([]byte, HeaderLen+4*len(p.Header.CSRC)+len(p.Payload))
	buf[0] = Version << 6
	if p.Header.Padding {
		buf[0] |= 1 << 5
	}
	if p.Header.Extension {
		buf[0] |= 1 << 4
	}
	buf[0] |= uint8(len(p.Header.CSRC))
	buf[1] = p.Header.PayloadType & 0x7f
	if p.Header.Marker {
		buf[1] |= 1 << 7
	}
	binary.BigEndian.PutUint16(buf[2:4], p.Header.Seq)
	binary.BigEndian.PutUint32(buf[4:8], p.Header.Timestamp)
	binary.BigEndian.PutUint32(buf[8:12], p.Header.SSRC)
	for i, c := range p.Header.CSRC {
		binary.BigEndian.PutUint32(buf[12+4*i:16+4*i], c)
	}
	copy(buf[HeaderLen+4*len(p.Header.CSRC):], p.Payload)
	return buf, nil
}

// Unmarshal decodes an RTP packet. The returned payload aliases buf.
func Unmarshal(buf []byte) (Packet, error) {
	if len(buf) < HeaderLen {
		return Packet{}, fmt.Errorf("rtp: packet of %d bytes shorter than header", len(buf))
	}
	if v := buf[0] >> 6; v != Version {
		return Packet{}, fmt.Errorf("rtp: bad version %d", v)
	}
	var p Packet
	p.Header.Padding = buf[0]&(1<<5) != 0
	p.Header.Extension = buf[0]&(1<<4) != 0
	cc := int(buf[0] & 0x0f)
	p.Header.Marker = buf[1]&(1<<7) != 0
	p.Header.PayloadType = buf[1] & 0x7f
	p.Header.Seq = binary.BigEndian.Uint16(buf[2:4])
	p.Header.Timestamp = binary.BigEndian.Uint32(buf[4:8])
	p.Header.SSRC = binary.BigEndian.Uint32(buf[8:12])
	end := HeaderLen + 4*cc
	if len(buf) < end {
		return Packet{}, fmt.Errorf("rtp: packet of %d bytes too short for %d CSRCs", len(buf), cc)
	}
	for i := 0; i < cc; i++ {
		p.Header.CSRC = append(p.Header.CSRC, binary.BigEndian.Uint32(buf[HeaderLen+4*i:HeaderLen+4*i+4]))
	}
	p.Payload = buf[end:]
	if p.Header.Padding && len(p.Payload) > 0 {
		pad := int(p.Payload[len(p.Payload)-1])
		if pad == 0 || pad > len(p.Payload) {
			return Packet{}, fmt.Errorf("rtp: bad padding count %d", pad)
		}
		p.Payload = p.Payload[:len(p.Payload)-pad]
	}
	return p, nil
}

// HeaderView is the allocation-free projection of an RTP packet that
// PeekHeader produces: the fixed header fields plus the CSRC count and
// payload length instead of materialized slices.
type HeaderView struct {
	Padding     bool
	Extension   bool
	Marker      bool
	PayloadType uint8
	Seq         uint16
	Timestamp   uint32
	SSRC        uint32
	CSRCCount   int
	PayloadLen  int
}

// PeekHeader decodes an RTP packet into v without allocating. It applies
// exactly the validation Unmarshal applies (version, CSRC bounds, padding
// count), so a buffer is accepted by one iff it is accepted by the other;
// errors carry the same text. Nothing in v aliases buf.
func PeekHeader(buf []byte, v *HeaderView) error {
	if len(buf) < HeaderLen {
		return fmt.Errorf("rtp: packet of %d bytes shorter than header", len(buf))
	}
	if ver := buf[0] >> 6; ver != Version {
		return fmt.Errorf("rtp: bad version %d", ver)
	}
	v.Padding = buf[0]&(1<<5) != 0
	v.Extension = buf[0]&(1<<4) != 0
	cc := int(buf[0] & 0x0f)
	v.Marker = buf[1]&(1<<7) != 0
	v.PayloadType = buf[1] & 0x7f
	v.Seq = binary.BigEndian.Uint16(buf[2:4])
	v.Timestamp = binary.BigEndian.Uint32(buf[4:8])
	v.SSRC = binary.BigEndian.Uint32(buf[8:12])
	end := HeaderLen + 4*cc
	if len(buf) < end {
		return fmt.Errorf("rtp: packet of %d bytes too short for %d CSRCs", len(buf), cc)
	}
	v.CSRCCount = cc
	payload := buf[end:]
	if v.Padding && len(payload) > 0 {
		pad := int(payload[len(payload)-1])
		if pad == 0 || pad > len(payload) {
			return fmt.Errorf("rtp: bad padding count %d", pad)
		}
		payload = payload[:len(payload)-pad]
	}
	v.PayloadLen = len(payload)
	return nil
}

// SeqLess reports whether a precedes b in wrap-aware RFC 1982 order.
func SeqLess(a, b uint16) bool {
	return a != b && int16(b-a) > 0
}

// SeqDiff returns the signed distance b−a, treating the 16-bit sequence
// space as circular. A positive result means b is ahead of a.
func SeqDiff(a, b uint16) int {
	return int(int16(b - a))
}
