// Package sdp implements the subset of the Session Description Protocol
// (RFC 4566) that SIP call setup needs: session origin, connection
// addresses, and audio media descriptions. SCIDIVE's cross-protocol
// correlation depends on SDP to learn which RTP endpoint a SIP dialog
// negotiated.
package sdp

import (
	"fmt"
	"net/netip"
	"strconv"
	"strings"
)

// Origin is the o= line.
type Origin struct {
	Username    string
	SessID      uint64
	SessVersion uint64
	Addr        netip.Addr
}

// Connection is the c= line (IN IP4 only).
type Connection struct {
	Addr netip.Addr
}

// Media is one m= section with its section-level connection and attributes.
type Media struct {
	Type       string // "audio", "video", ...
	Port       uint16
	Proto      string // "RTP/AVP"
	Formats    []string
	Connection *Connection // overrides the session-level c= when present
	Attributes []string
}

// Session is a parsed SDP body.
type Session struct {
	Version    int
	Origin     Origin
	Name       string
	Connection *Connection
	Attributes []string
	Media      []Media
}

// NewAudioSession builds a minimal audio offer/answer: one audio media
// line carrying PCMU (payload type 0) at addr:port.
func NewAudioSession(username string, addr netip.Addr, port uint16) *Session {
	return &Session{
		Version:    0,
		Origin:     Origin{Username: username, SessID: 1, SessVersion: 1, Addr: addr},
		Name:       "call",
		Connection: &Connection{Addr: addr},
		Media: []Media{{
			Type:       "audio",
			Port:       port,
			Proto:      "RTP/AVP",
			Formats:    []string{"0"},
			Attributes: []string{"rtpmap:0 PCMU/8000"},
		}},
	}
}

// MediaEndpoint resolves the transport address of the first media section
// of the given type, combining the media port with the effective
// connection address.
func (s *Session) MediaEndpoint(mediaType string) (netip.AddrPort, bool) {
	for _, m := range s.Media {
		if m.Type != mediaType {
			continue
		}
		conn := m.Connection
		if conn == nil {
			conn = s.Connection
		}
		if conn == nil {
			return netip.AddrPort{}, false
		}
		return netip.AddrPortFrom(conn.Addr, m.Port), true
	}
	return netip.AddrPort{}, false
}

// Marshal serializes the session in canonical line order.
func (s *Session) Marshal() []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "v=%d\r\n", s.Version)
	fmt.Fprintf(&b, "o=%s %d %d IN IP4 %s\r\n", orDash(s.Origin.Username), s.Origin.SessID, s.Origin.SessVersion, s.Origin.Addr)
	fmt.Fprintf(&b, "s=%s\r\n", orDash(s.Name))
	if s.Connection != nil {
		fmt.Fprintf(&b, "c=IN IP4 %s\r\n", s.Connection.Addr)
	}
	b.WriteString("t=0 0\r\n")
	for _, a := range s.Attributes {
		fmt.Fprintf(&b, "a=%s\r\n", a)
	}
	for _, m := range s.Media {
		fmt.Fprintf(&b, "m=%s %d %s %s\r\n", m.Type, m.Port, m.Proto, strings.Join(m.Formats, " "))
		if m.Connection != nil {
			fmt.Fprintf(&b, "c=IN IP4 %s\r\n", m.Connection.Addr)
		}
		for _, a := range m.Attributes {
			fmt.Fprintf(&b, "a=%s\r\n", a)
		}
	}
	return []byte(b.String())
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

// Parse decodes an SDP body. Unknown line types are ignored, per the
// robustness principle; structurally invalid known lines are errors.
func Parse(body []byte) (*Session, error) {
	s := &Session{}
	var cur *Media // nil while in the session section
	sawVersion := false
	for lineNo, raw := range strings.Split(string(body), "\n") {
		line := strings.TrimRight(raw, "\r")
		if line == "" {
			continue
		}
		if len(line) < 2 || line[1] != '=' {
			return nil, fmt.Errorf("sdp: line %d: malformed %q", lineNo+1, line)
		}
		typ, val := line[0], line[2:]
		switch typ {
		case 'v':
			v, err := strconv.Atoi(val)
			if err != nil {
				return nil, fmt.Errorf("sdp: line %d: bad version %q", lineNo+1, val)
			}
			s.Version = v
			sawVersion = true
		case 'o':
			o, err := parseOrigin(val)
			if err != nil {
				return nil, fmt.Errorf("sdp: line %d: %w", lineNo+1, err)
			}
			s.Origin = o
		case 's':
			s.Name = val
		case 'c':
			c, err := parseConnection(val)
			if err != nil {
				return nil, fmt.Errorf("sdp: line %d: %w", lineNo+1, err)
			}
			if cur != nil {
				cur.Connection = &c
			} else {
				s.Connection = &c
			}
		case 'a':
			if cur != nil {
				cur.Attributes = append(cur.Attributes, val)
			} else {
				s.Attributes = append(s.Attributes, val)
			}
		case 'm':
			m, err := parseMedia(val)
			if err != nil {
				return nil, fmt.Errorf("sdp: line %d: %w", lineNo+1, err)
			}
			s.Media = append(s.Media, m)
			cur = &s.Media[len(s.Media)-1]
		default:
			// t=, b=, k=, etc.: tolerated and ignored.
		}
	}
	if !sawVersion {
		return nil, fmt.Errorf("sdp: missing v= line")
	}
	return s, nil
}

func parseOrigin(val string) (Origin, error) {
	f := strings.Fields(val)
	if len(f) != 6 {
		return Origin{}, fmt.Errorf("origin: want 6 fields, got %d", len(f))
	}
	id, err := strconv.ParseUint(f[1], 10, 64)
	if err != nil {
		return Origin{}, fmt.Errorf("origin: bad sess-id %q", f[1])
	}
	ver, err := strconv.ParseUint(f[2], 10, 64)
	if err != nil {
		return Origin{}, fmt.Errorf("origin: bad sess-version %q", f[2])
	}
	if f[3] != "IN" || f[4] != "IP4" {
		return Origin{}, fmt.Errorf("origin: unsupported nettype/addrtype %s %s", f[3], f[4])
	}
	addr, err := netip.ParseAddr(f[5])
	if err != nil {
		return Origin{}, fmt.Errorf("origin: bad address %q", f[5])
	}
	return Origin{Username: f[0], SessID: id, SessVersion: ver, Addr: addr}, nil
}

func parseConnection(val string) (Connection, error) {
	f := strings.Fields(val)
	if len(f) != 3 || f[0] != "IN" || f[1] != "IP4" {
		return Connection{}, fmt.Errorf("connection: unsupported %q", val)
	}
	addr, err := netip.ParseAddr(f[2])
	if err != nil {
		return Connection{}, fmt.Errorf("connection: bad address %q", f[2])
	}
	return Connection{Addr: addr}, nil
}

func parseMedia(val string) (Media, error) {
	f := strings.Fields(val)
	if len(f) < 4 {
		return Media{}, fmt.Errorf("media: want >= 4 fields, got %d", len(f))
	}
	port, err := strconv.ParseUint(f[1], 10, 16)
	if err != nil {
		return Media{}, fmt.Errorf("media: bad port %q", f[1])
	}
	return Media{
		Type:    f[0],
		Port:    uint16(port),
		Proto:   f[2],
		Formats: f[3:],
	}, nil
}
