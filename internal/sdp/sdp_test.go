package sdp

import (
	"net/netip"
	"reflect"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	addr := netip.MustParseAddr("10.0.0.1")
	s := NewAudioSession("alice", addr, 40000)
	parsed, err := Parse(s.Marshal())
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if parsed.Origin.Username != "alice" || parsed.Origin.Addr != addr {
		t.Errorf("origin = %+v", parsed.Origin)
	}
	if parsed.Connection == nil || parsed.Connection.Addr != addr {
		t.Errorf("connection = %+v", parsed.Connection)
	}
	if len(parsed.Media) != 1 {
		t.Fatalf("media count = %d, want 1", len(parsed.Media))
	}
	m := parsed.Media[0]
	if m.Type != "audio" || m.Port != 40000 || m.Proto != "RTP/AVP" || !reflect.DeepEqual(m.Formats, []string{"0"}) {
		t.Errorf("media = %+v", m)
	}
	if !reflect.DeepEqual(m.Attributes, []string{"rtpmap:0 PCMU/8000"}) {
		t.Errorf("media attributes = %v", m.Attributes)
	}
}

func TestMediaEndpoint(t *testing.T) {
	sessAddr := netip.MustParseAddr("10.0.0.1")
	mediaAddr := netip.MustParseAddr("10.0.0.9")
	tests := []struct {
		name string
		s    *Session
		want netip.AddrPort
		ok   bool
	}{
		{
			name: "session-level connection",
			s:    NewAudioSession("a", sessAddr, 1234),
			want: netip.AddrPortFrom(sessAddr, 1234),
			ok:   true,
		},
		{
			name: "media-level connection overrides",
			s: &Session{
				Connection: &Connection{Addr: sessAddr},
				Media: []Media{{
					Type: "audio", Port: 555, Proto: "RTP/AVP", Formats: []string{"0"},
					Connection: &Connection{Addr: mediaAddr},
				}},
			},
			want: netip.AddrPortFrom(mediaAddr, 555),
			ok:   true,
		},
		{
			name: "no matching media",
			s:    &Session{Connection: &Connection{Addr: sessAddr}},
			ok:   false,
		},
		{
			name: "no connection anywhere",
			s:    &Session{Media: []Media{{Type: "audio", Port: 1}}},
			ok:   false,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, ok := tt.s.MediaEndpoint("audio")
			if ok != tt.ok {
				t.Fatalf("ok = %v, want %v", ok, tt.ok)
			}
			if ok && got != tt.want {
				t.Errorf("endpoint = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestParseRealWorldBody(t *testing.T) {
	body := "v=0\r\n" +
		"o=bob 2890844527 2890844527 IN IP4 10.0.0.2\r\n" +
		"s=-\r\n" +
		"c=IN IP4 10.0.0.2\r\n" +
		"b=AS:64\r\n" + // ignored line type
		"t=0 0\r\n" +
		"a=sendrecv\r\n" +
		"m=audio 49172 RTP/AVP 0 8 97\r\n" +
		"a=rtpmap:0 PCMU/8000\r\n" +
		"a=rtpmap:8 PCMA/8000\r\n" +
		"m=video 51372 RTP/AVP 31\r\n" +
		"c=IN IP4 10.0.0.3\r\n"
	s, err := Parse([]byte(body))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(s.Media) != 2 {
		t.Fatalf("media count = %d, want 2", len(s.Media))
	}
	if got := len(s.Media[0].Formats); got != 3 {
		t.Errorf("audio formats = %d, want 3", got)
	}
	if !reflect.DeepEqual(s.Attributes, []string{"sendrecv"}) {
		t.Errorf("session attributes = %v", s.Attributes)
	}
	audio, ok := s.MediaEndpoint("audio")
	if !ok || audio != netip.MustParseAddrPort("10.0.0.2:49172") {
		t.Errorf("audio endpoint = %v ok=%v", audio, ok)
	}
	video, ok := s.MediaEndpoint("video")
	if !ok || video != netip.MustParseAddrPort("10.0.0.3:51372") {
		t.Errorf("video endpoint = %v ok=%v", video, ok)
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name string
		body string
	}{
		{"empty", ""},
		{"missing version", "s=call\r\n"},
		{"malformed line", "v=0\r\nxyz\r\n"},
		{"bad version", "v=abc\r\n"},
		{"bad origin fields", "v=0\r\no=alice 1 IN IP4 10.0.0.1\r\n"},
		{"bad origin addr", "v=0\r\no=alice 1 1 IN IP4 notanip\r\n"},
		{"ipv6 connection", "v=0\r\nc=IN IP6 ::1\r\n"},
		{"bad media port", "v=0\r\nm=audio notaport RTP/AVP 0\r\n"},
		{"short media", "v=0\r\nm=audio 49170\r\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Parse([]byte(tt.body)); err == nil {
				t.Errorf("Parse(%q): want error", tt.body)
			}
		})
	}
}

func TestParseToleratesLFOnly(t *testing.T) {
	body := "v=0\no=a 1 1 IN IP4 10.0.0.1\ns=x\nc=IN IP4 10.0.0.1\nm=audio 4000 RTP/AVP 0\n"
	s, err := Parse([]byte(body))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if _, ok := s.MediaEndpoint("audio"); !ok {
		t.Error("audio endpoint not found in LF-only body")
	}
}
