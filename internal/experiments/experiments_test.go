package experiments

import (
	"strings"
	"testing"
	"time"

	"scidive/internal/core"
)

func TestBenignRunIsClean(t *testing.T) {
	o, err := RunBenign(1)
	if err != nil {
		t.Fatal(err)
	}
	if o.Detected || len(o.Alerts) != 0 {
		t.Errorf("benign run raised alerts: %v", o.Alerts)
	}
}

func TestTable1AllAttacksDetected(t *testing.T) {
	rows, err := Table1(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("Table 1 has %d rows, want 4", len(rows))
	}
	wantRules := map[string]string{
		"Bye attack":             core.RuleByeAttack,
		"Fake Instant Messaging": core.RuleFakeIM,
		"Call Hijacking":         core.RuleCallHijack,
		"RTP Attack":             core.RuleRTPGarbage,
	}
	for _, r := range rows {
		if !r.Outcome.Detected {
			t.Errorf("%s: not detected (%s)", r.Attack, r.Outcome.Impact)
			continue
		}
		want := wantRules[r.Attack]
		found := false
		for _, rule := range r.Outcome.RulesFired {
			if rule == want {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: fired %v, want %s among them", r.Attack, r.Outcome.RulesFired, want)
		}
		if r.Outcome.DetectDelay < 0 || r.Outcome.DetectDelay > time.Second {
			t.Errorf("%s: detection delay %v out of range", r.Attack, r.Outcome.DetectDelay)
		}
	}
	text := FormatTable1(rows)
	for _, want := range []string{"Bye attack", "RTP Attack", "DETECTED", "in "} {
		if !strings.Contains(text, want) && !strings.Contains(text, "in ") {
			t.Errorf("formatted table missing %q:\n%s", want, text)
		}
	}
}

func TestFig1LadderShowsCallFlow(t *testing.T) {
	ladder, err := Fig1Ladder(2)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's Figure 1 sequence: INVITE, 180 Ringing, 200 OK, ACK,
	// BYE, 200 — in order.
	wantInOrder := []string{"REGISTER", "401", "INVITE", "180 Ringing", "200 OK", "ACK", "BYE"}
	pos := 0
	for _, want := range wantInOrder {
		idx := strings.Index(ladder[pos:], want)
		if idx < 0 {
			t.Fatalf("ladder missing %q after position %d:\n%s", want, pos, ladder)
		}
		pos += idx
	}
	if !strings.Contains(ladder, "Alice") || !strings.Contains(ladder, "Proxy") {
		t.Error("ladder missing participant names")
	}
}

func TestRunRTPAttackBothClientBehaviours(t *testing.T) {
	crash, err := RunRTPAttack(3, true)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(crash.Impact, "crashed") {
		t.Errorf("X-Lite run impact = %q", crash.Impact)
	}
	glitch, err := RunRTPAttack(3, false)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(glitch.Impact, "intermittent") {
		t.Errorf("Messenger run impact = %q", glitch.Impact)
	}
	if !crash.Detected || !glitch.Detected {
		t.Error("RTP attack undetected in one of the behaviours")
	}
}

func TestSyntheticScenarioOutcomes(t *testing.T) {
	flood, err := RunRegisterFlood(4)
	if err != nil {
		t.Fatal(err)
	}
	if !flood.Detected || flood.RulesFired[0] != core.RuleRegisterFlood {
		t.Errorf("flood outcome = %+v", flood)
	}
	guess, err := RunPasswordGuess(5)
	if err != nil {
		t.Fatal(err)
	}
	if !guess.Detected {
		t.Errorf("guess outcome = %+v", guess)
	}
	fraud, err := RunBillingFraud(6)
	if err != nil {
		t.Fatal(err)
	}
	if !fraud.Detected {
		t.Errorf("fraud outcome = %+v", fraud)
	}
	foundBilling := false
	for _, r := range fraud.RulesFired {
		if r == core.RuleBillingFraud {
			foundBilling = true
		}
	}
	if !foundBilling {
		t.Errorf("fraud fired %v, want billing-fraud", fraud.RulesFired)
	}
}

func TestDelaySweepShape(t *testing.T) {
	rows := DelaySweep(7, 20000)
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Ideal LAN: E[D] = 10ms exactly, measured matches.
	ideal := rows[0]
	if ideal.Analytic != 10*time.Millisecond {
		t.Errorf("ideal analytic = %v", ideal.Analytic)
	}
	if d := ideal.Measured.MeanDelay - ideal.Analytic; d < -300*time.Microsecond || d > 300*time.Microsecond {
		t.Errorf("ideal measured = %v", ideal.Measured.MeanDelay)
	}
	// WAN case has a larger mean than the LAN cases.
	if rows[4].Measured.MeanDelay <= rows[0].Measured.MeanDelay {
		t.Error("WAN delay not larger than LAN delay")
	}
	if s := FormatDelaySweep(rows); !strings.Contains(s, "10.00ms") {
		t.Errorf("formatted sweep missing analytic value:\n%s", s)
	}
}

func TestPmSweepMonotonicity(t *testing.T) {
	rows := PmSweep(8, 10000)
	// Within one loss level, Pm must not increase with the window.
	byLoss := map[float64][]PmRow{}
	for _, r := range rows {
		byLoss[r.Loss] = append(byLoss[r.Loss], r)
	}
	for loss, rs := range byLoss {
		for i := 1; i < len(rs); i++ {
			if rs[i].Window > rs[i-1].Window && rs[i].Pm > rs[i-1].Pm+0.01 {
				t.Errorf("loss=%v: Pm grew with window: %v", loss, rs)
			}
		}
	}
	// Zero loss + widest window: essentially no misses.
	for _, r := range rows {
		if r.Loss == 0 && r.Window == 500*time.Millisecond && r.Pm > 0.001 {
			t.Errorf("Pm = %v at zero loss, 500ms window", r.Pm)
		}
	}
	if s := FormatPmSweep(rows); !strings.Contains(s, "Pm") {
		t.Error("bad Pm format")
	}
}

func TestPfSweepShape(t *testing.T) {
	rows := PfSweep(9, 50000)
	byLabel := map[string]float64{}
	for _, r := range rows {
		byLabel[r.Label] = r.Pf
	}
	if pf := byLabel["iid exponential 5ms"]; pf < 0.45 || pf > 0.55 {
		t.Errorf("iid Pf = %v, want ≈0.5", pf)
	}
	if pf := byLabel["deterministic equal"]; pf != 0 {
		t.Errorf("deterministic Pf = %v", pf)
	}
	if pf := byLabel["SIP slower by 5ms"]; pf > 0.01 {
		t.Errorf("slow-SIP Pf = %v", pf)
	}
	if pf := byLabel["SIP faster by 5ms"]; pf < 0.95 {
		t.Errorf("fast-SIP Pf = %v", pf)
	}
	if s := FormatPfSweep(rows); !strings.Contains(s, "Pf") {
		t.Error("bad Pf format")
	}
}

func TestStatefulComparisonShape(t *testing.T) {
	cmp, err := RunStatefulComparison(11)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.BenignSCIDIVEAlerts != 0 {
		t.Errorf("SCIDIVE benign alerts = %d", cmp.BenignSCIDIVEAlerts)
	}
	if cmp.BenignBaselineAlerts == 0 {
		t.Error("baseline raised no benign false alarms — comparison premise broken")
	}
	if cmp.FloodSCIDIVEAlerts != 1 {
		t.Errorf("SCIDIVE flood alerts = %d, want 1 (deduped)", cmp.FloodSCIDIVEAlerts)
	}
	if cmp.FloodBaselineAlerts == 0 {
		t.Error("baseline missed the flood")
	}
	if s := FormatStatefulComparison(cmp); !strings.Contains(s, "false alarms") {
		t.Error("bad comparison format")
	}
}

func TestOutcomeString(t *testing.T) {
	o := Outcome{Name: "x", Detected: true, DetectDelay: 12 * time.Millisecond, RulesFired: []string{"r"}, Impact: "i"}
	if s := o.String(); !strings.Contains(s, "DETECTED") || !strings.Contains(s, "12.0ms") {
		t.Errorf("Outcome.String = %q", s)
	}
	o.Detected = false
	if s := o.String(); !strings.Contains(s, "MISSED") {
		t.Errorf("Outcome.String = %q", s)
	}
}

func TestRTCPByeSpoofExtension(t *testing.T) {
	o, err := RunRTCPByeSpoof(12)
	if err != nil {
		t.Fatal(err)
	}
	if !o.Detected {
		t.Fatalf("rtcp bye spoof missed: %+v", o)
	}
	found := false
	for _, r := range o.RulesFired {
		if r == core.RuleRTCPByeSpoof {
			found = true
		}
	}
	if !found {
		t.Errorf("fired %v, want rtcp-bye-spoof", o.RulesFired)
	}
	if !strings.Contains(o.Impact, "silenced") {
		t.Errorf("impact = %q", o.Impact)
	}
}

// TestRestartLoss pins the experiment's claim: every mid-dialog IDS
// death makes the cold restart miss the BYE attack, and every one of
// them is recovered by resuming from the kill-point checkpoint.
func TestRestartLoss(t *testing.T) {
	res, err := RunRestartLoss(1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !res.BaselineDetected {
		t.Fatal("uninterrupted baseline missed the bye attack")
	}
	if len(res.KillPoints) != 8 {
		t.Fatalf("got %d kill points, want 8", len(res.KillPoints))
	}
	for _, kp := range res.KillPoints {
		if kp.At >= res.AttackAt {
			t.Errorf("kill point at %v is not before the attack at %v", kp.At, res.AttackAt)
		}
		if kp.Resumed == false {
			t.Errorf("resumed restart at frame %d missed the attack", kp.Frame)
		}
	}
	if res.ResumedMissed != 0 {
		t.Errorf("resumed restarts missed %d alarms, want 0", res.ResumedMissed)
	}
	// The dialog arms early (INVITE/200); once armed, a cold restart
	// forgets it and the attack goes unseen. At least the later kill
	// points (established dialog) must demonstrate the miss.
	if res.ColdMissed == 0 {
		t.Error("no cold restart missed the attack; the experiment demonstrates nothing")
	}
	text := FormatRestartLoss(res)
	for _, want := range []string{"Restart loss", "cold restart", "missed alarms:"} {
		if !strings.Contains(text, want) {
			t.Errorf("report lacks %q:\n%s", want, text)
		}
	}
}
