// The restart-loss experiment quantifies what checkpoint/restore buys:
// an IDS process that dies mid-dialog forgets the SIP state its rules
// were armed with, so a stateful cross-protocol attack completed after
// the restart is missed. It is the operational companion to the paper's
// Section 4.3 Pm analysis — there the missed-alarm probability comes
// from packet loss inside the monitoring window; here it comes from the
// detector losing its own memory, and a checkpoint eliminates it.

package experiments

import (
	"fmt"
	"strings"
	"time"

	"scidive/internal/core"
)

// RestartKillPoint is one simulated IDS death during the BYE-attack
// dialog: the process dies after Frame, restarts, and replays the rest
// of the capture either cold (no checkpoint) or resumed (restored from
// a checkpoint taken at the instant of death).
type RestartKillPoint struct {
	Frame   int           // last frame the dying process saw
	At      time.Duration // virtual time of the death
	Cold    bool          // bye-attack detected after a cold restart
	Resumed bool          // bye-attack detected after a checkpoint resume
}

// RestartLossResult is the outcome of the restart-loss experiment.
type RestartLossResult struct {
	Scenario         string
	TotalFrames      int
	AttackAt         time.Duration // when the forged BYE hits the wire
	BaselineDetected bool          // uninterrupted run detects the attack
	KillPoints       []RestartKillPoint
	ColdMissed       int // kill points where the cold restart misses
	ResumedMissed    int // kill points where the resumed restart misses
}

// RunRestartLoss records the Figure 5 BYE attack, then replays it
// through an IDS that is killed at a sweep of points inside the dialog
// — after the INVITE armed the bye-attack rule, before the forged BYE
// completes it. Each death is replayed twice: a cold restart (detection
// state gone) and a -resume restart (state restored from a checkpoint
// written at the kill point).
func RunRestartLoss(seed int64, points int) (RestartLossResult, error) {
	if points <= 0 {
		points = 8
	}
	var frames []struct {
		at    time.Duration
		frame []byte
	}
	tap := func(at time.Duration, frame []byte) {
		frames = append(frames, struct {
			at    time.Duration
			frame []byte
		}{at, append([]byte(nil), frame...)})
	}
	o, err := RunByeAttack(seed, core.Config{}, tap)
	if err != nil {
		return RestartLossResult{}, err
	}
	if !o.Detected {
		return RestartLossResult{}, fmt.Errorf("experiments: restartloss needs a detectable bye attack, got %s", o)
	}
	// The attack instant, recovered from the testbed outcome: the first
	// firing alert minus its detection delay.
	attackAt := o.Alerts[0].At - o.DetectDelay
	res := RestartLossResult{
		Scenario:    "bye",
		TotalFrames: len(frames),
		AttackAt:    attackAt,
	}

	detects := func(alerts []core.Alert) bool {
		for _, a := range alerts {
			if a.Rule == core.RuleByeAttack {
				return true
			}
		}
		return false
	}
	baseline := core.NewEngine(core.Config{})
	for _, r := range frames {
		baseline.HandleFrame(r.at, r.frame)
	}
	res.BaselineDetected = detects(baseline.Alerts())

	// Kill points sweep the window the paper's Pm analysis cares about:
	// the dialog is armed (INVITE seen) but the attack has not landed.
	preAttack := 0
	for i, r := range frames {
		if r.at < attackAt {
			preAttack = i
		}
	}
	for p := 1; p <= points; p++ {
		k := preAttack * p / (points + 1)
		if k < 1 {
			k = 1
		}
		dying := core.NewEngine(core.Config{})
		for _, r := range frames[:k] {
			dying.HandleFrame(r.at, r.frame)
		}
		ckpt, err := dying.Snapshot()
		if err != nil {
			return res, err
		}

		cold := core.NewEngine(core.Config{})
		for _, r := range frames[k:] {
			cold.HandleFrame(r.at, r.frame)
		}
		resumed := core.NewEngine(core.Config{})
		if err := resumed.RestoreSnapshot(ckpt); err != nil {
			return res, err
		}
		for _, r := range frames[k:] {
			resumed.HandleFrame(r.at, r.frame)
		}

		kp := RestartKillPoint{
			Frame:   k,
			At:      frames[k-1].at,
			Cold:    detects(cold.Alerts()),
			Resumed: detects(resumed.Alerts()),
		}
		if !kp.Cold {
			res.ColdMissed++
		}
		if !kp.Resumed {
			res.ResumedMissed++
		}
		res.KillPoints = append(res.KillPoints, kp)
	}
	return res, nil
}

// FormatRestartLoss renders the experiment as a report table.
func FormatRestartLoss(r RestartLossResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Restart loss (BYE attack, %d frames, forged BYE at %.3fs):\n",
		r.TotalFrames, r.AttackAt.Seconds())
	fmt.Fprintf(&b, "uninterrupted IDS: detected=%s\n", yesNo(r.BaselineDetected))
	fmt.Fprintf(&b, "%-12s %-10s %-14s %s\n", "kill frame", "kill at", "cold restart", "resumed restart")
	for _, kp := range r.KillPoints {
		fmt.Fprintf(&b, "%-12d %-10s %-14s %s\n",
			kp.Frame, fmt.Sprintf("%.3fs", kp.At.Seconds()), detStr(kp.Cold), detStr(kp.Resumed))
	}
	n := len(r.KillPoints)
	fmt.Fprintf(&b, "missed alarms: cold %d/%d, resumed %d/%d\n", r.ColdMissed, n, r.ResumedMissed, n)
	return b.String()
}

func detStr(detected bool) string {
	if detected {
		return "DETECTED"
	}
	return "MISSED"
}
