package experiments

import (
	"fmt"
	"math/rand"
	"net/netip"
	"strings"
	"time"

	"scidive/internal/baseline"
	"scidive/internal/core"
	"scidive/internal/eval"
	"scidive/internal/netsim"
	"scidive/internal/packet"
	"scidive/internal/scenario"
	"scidive/internal/sip"
)

// Table1Row mirrors one row of the paper's Table 1, extended with the
// measured outcome of the reproduced run.
type Table1Row struct {
	Attack        string
	Protocols     string
	CrossProtocol string
	Stateful      string
	RuleSnippet   string
	Outcome       Outcome
}

// Table1 runs the four demonstrated attacks and returns the reproduction
// of the paper's Table 1 with measured detection results.
func Table1(seed int64) ([]Table1Row, error) {
	bye, err := RunByeAttack(seed, core.Config{})
	if err != nil {
		return nil, fmt.Errorf("bye attack: %w", err)
	}
	im, err := RunFakeIM(seed + 1)
	if err != nil {
		return nil, fmt.Errorf("fake im: %w", err)
	}
	hijack, err := RunCallHijack(seed + 2)
	if err != nil {
		return nil, fmt.Errorf("call hijack: %w", err)
	}
	rtpAtk, err := RunRTPAttack(seed+3, true)
	if err != nil {
		return nil, fmt.Errorf("rtp attack: %w", err)
	}
	return []Table1Row{
		{
			Attack:        "Bye attack",
			Protocols:     "SIP, RTP",
			CrossProtocol: "Yes: no RTP once SIP BYE seen",
			Stateful:      "Yes: session teardown tracked",
			RuleSnippet:   "No RTP traffic after a SIP BYE from that agent",
			Outcome:       bye,
		},
		{
			Attack:        "Fake Instant Messaging",
			Protocols:     "SIP, IP",
			CrossProtocol: "Yes: source IP of SIP MESSAGE checked",
			Stateful:      "No: per-sender IP stability window",
			RuleSnippet:   "IM source IP must stay stable within a period",
			Outcome:       im,
		},
		{
			Attack:        "Call Hijacking",
			Protocols:     "SIP, RTP",
			CrossProtocol: "Yes: no RTP from old addr once REINVITE seen",
			Stateful:      "Yes: session redirection tracked",
			RuleSnippet:   "No RTP from the old address after a REINVITE",
			Outcome:       hijack,
		},
		{
			Attack:        "RTP Attack",
			Protocols:     "RTP, IP",
			CrossProtocol: "Yes: RTP source IP checked",
			Stateful:      "Yes: sequence continuity tracked",
			RuleSnippet:   "RTP from legitimate address; seq delta <= 100",
			Outcome:       rtpAtk,
		},
	}, nil
}

// FormatTable1 renders the table as text.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	b.WriteString("Table 1: attacks, classification, and measured detection\n")
	fmt.Fprintf(&b, "%-24s %-10s %-8s %-9s %-12s %s\n",
		"Attack", "Protocols", "Cross?", "Stateful?", "Detected", "Rules fired / impact")
	for _, r := range rows {
		det := "MISSED"
		if r.Outcome.Detected {
			det = fmt.Sprintf("in %.1fms", r.Outcome.DetectDelay.Seconds()*1000)
		}
		fmt.Fprintf(&b, "%-24s %-10s %-8s %-9s %-12s %s\n",
			r.Attack, r.Protocols,
			yesNo(strings.HasPrefix(r.CrossProtocol, "Yes")),
			yesNo(strings.HasPrefix(r.Stateful, "Yes")),
			det,
			strings.Join(r.Outcome.RulesFired, ",")+" | "+r.Outcome.Impact)
	}
	return b.String()
}

func yesNo(v bool) string {
	if v {
		return "Yes"
	}
	return "No"
}

// Fig1Ladder reproduces Figure 1: the SIP message exchange of a normal
// call setup and teardown, rendered as a message ladder.
func Fig1Ladder(seed int64) (string, error) {
	tb, err := scenario.New(scenario.Config{Seed: seed})
	if err != nil {
		return "", err
	}
	names := map[netip.Addr]string{
		scenario.AddrClientA:  "Alice",
		scenario.AddrClientB:  "Bob",
		scenario.AddrProxy:    "Proxy",
		scenario.AddrAcct:     "Acct",
		scenario.AddrAttacker: "Attacker",
	}
	var lines []string
	tb.Net.AddTap(func(at time.Duration, frame []byte) {
		ef, err := packet.UnmarshalEthernet(frame)
		if err != nil || ef.Type != packet.EtherTypeIPv4 {
			return
		}
		iph, ipp, err := packet.UnmarshalIPv4(ef.Payload)
		if err != nil || iph.Protocol != packet.ProtoUDP {
			return
		}
		uh, up, err := packet.UnmarshalUDP(iph.Src, iph.Dst, ipp)
		if err != nil || (uh.SrcPort != sip.DefaultPort && uh.DstPort != sip.DefaultPort) {
			return
		}
		m, err := sip.ParseMessage(up)
		if err != nil {
			return
		}
		var what string
		if m.IsRequest() {
			what = string(m.Method)
		} else {
			what = fmt.Sprintf("%d %s", m.StatusCode, m.ReasonPhrase)
		}
		lines = append(lines, fmt.Sprintf("[%8.3fs] %-8s -> %-8s  %s",
			at.Seconds(), names[iph.Src], names[iph.Dst], what))
	})
	if err := tb.RegisterAll(); err != nil {
		return "", err
	}
	call, err := tb.EstablishCall()
	if err != nil {
		return "", err
	}
	tb.Run(time.Second)
	tb.Sim.Schedule(0, func() { _ = tb.Alice.Hangup(call) })
	tb.Run(2 * time.Second)
	return "Figure 1: SIP message exchange (registration, call setup, teardown)\n" +
		strings.Join(lines, "\n") + "\n", nil
}

// DelayRow is one row of the Section 4.3 detection-delay table.
type DelayRow struct {
	Label    string
	Analytic time.Duration
	Measured eval.Result
}

// DelaySweep reproduces the Section 4.3.1 detection-delay analysis: the
// analytic E[D] next to Monte Carlo results for several network-delay
// regimes.
func DelaySweep(seed int64, trials int) []DelayRow {
	rng := rand.New(rand.NewSource(seed))
	cases := []struct {
		label      string
		nrtp, nsip netsim.Dist
	}{
		{"ideal LAN (no delay)", netsim.Deterministic{}, netsim.Deterministic{}},
		{"fixed 2ms both", netsim.Deterministic{D: 2 * time.Millisecond}, netsim.Deterministic{D: 2 * time.Millisecond}},
		{"uniform 1-5ms both", netsim.Uniform{Min: time.Millisecond, Max: 5 * time.Millisecond}, netsim.Uniform{Min: time.Millisecond, Max: 5 * time.Millisecond}},
		{"exponential mean 3ms", netsim.Exponential{MeanD: 3 * time.Millisecond}, netsim.Exponential{MeanD: 3 * time.Millisecond}},
		{"WAN: 20ms+exp(10ms)", netsim.Shifted{Base: netsim.Exponential{MeanD: 10 * time.Millisecond}, Offset: 20 * time.Millisecond}, netsim.Shifted{Base: netsim.Exponential{MeanD: 10 * time.Millisecond}, Offset: 20 * time.Millisecond}},
	}
	rows := make([]DelayRow, 0, len(cases))
	for _, c := range cases {
		m := eval.Model{Nrtp: c.nrtp, Nsip: c.nsip}
		rows = append(rows, DelayRow{
			Label:    c.label,
			Analytic: m.ExpectedDelayAnalytic(),
			Measured: m.SimulateDetection(rng, trials),
		})
	}
	return rows
}

// FormatDelaySweep renders the delay table.
func FormatDelaySweep(rows []DelayRow) string {
	var b strings.Builder
	b.WriteString("Section 4.3.1: detection delay D (paper: E[D] = 10ms under uniform Gsip, iid delays)\n")
	fmt.Fprintf(&b, "%-24s %-14s %s\n", "Network delay", "analytic E[D]", "Monte Carlo")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-24s %-14s %s\n",
			r.Label, fmt.Sprintf("%.2fms", r.Analytic.Seconds()*1000), r.Measured)
	}
	return b.String()
}

// PmRow is one row of the missed-alarm sweep.
type PmRow struct {
	Window time.Duration
	Loss   float64
	Pm     float64
}

// PmSweep reproduces the Section 4.3 Pm analysis: missed-alarm
// probability as a function of the monitoring window m and packet loss.
func PmSweep(seed int64, trials int) []PmRow {
	rng := rand.New(rand.NewSource(seed))
	var rows []PmRow
	for _, loss := range []float64{0, 0.05, 0.2, 0.5} {
		for _, w := range []time.Duration{
			10 * time.Millisecond, 25 * time.Millisecond, 50 * time.Millisecond,
			100 * time.Millisecond, 500 * time.Millisecond,
		} {
			m := eval.Model{
				Nrtp:   netsim.Exponential{MeanD: 5 * time.Millisecond},
				Nsip:   netsim.Exponential{MeanD: 5 * time.Millisecond},
				Window: w,
				Loss:   loss,
				// A short orphan burst makes the window bite: the sender
				// stops quickly, so late windows miss.
				MaxPackets: 3,
			}
			rows = append(rows, PmRow{Window: w, Loss: loss, Pm: m.SimulateDetection(rng, trials).Pm})
		}
	}
	return rows
}

// FormatPmSweep renders the Pm table.
func FormatPmSweep(rows []PmRow) string {
	var b strings.Builder
	b.WriteString("Section 4.3: missed alarm probability Pm = Pr{no orphan RTP within m}\n")
	b.WriteString("(3-packet orphan burst, exponential 5ms network delays)\n")
	fmt.Fprintf(&b, "%-10s %-12s %s\n", "loss", "window m", "Pm")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10.2f %-12s %.4f\n", r.Loss, r.Window, r.Pm)
	}
	return b.String()
}

// PfRow is one row of the false-alarm sweep.
type PfRow struct {
	Label    string
	Pf       float64
	Analytic string
}

// PfSweep reproduces the Section 4.3 Pf analysis: probability that a
// legitimate BYE overtakes the final RTP packet.
func PfSweep(seed int64, trials int) []PfRow {
	rng := rand.New(rand.NewSource(seed))
	cases := []struct {
		label      string
		nrtp, nsip netsim.Dist
		analytic   string
	}{
		{"iid exponential 5ms", netsim.Exponential{MeanD: 5 * time.Millisecond}, netsim.Exponential{MeanD: 5 * time.Millisecond}, "1/2 (paper integral)"},
		{"iid uniform 1-5ms", netsim.Uniform{Min: time.Millisecond, Max: 5 * time.Millisecond}, netsim.Uniform{Min: time.Millisecond, Max: 5 * time.Millisecond}, "1/2 (paper integral)"},
		{"deterministic equal", netsim.Deterministic{D: 2 * time.Millisecond}, netsim.Deterministic{D: 2 * time.Millisecond}, "0 (no overtaking)"},
		{"SIP slower by 5ms", netsim.Deterministic{D: 2 * time.Millisecond}, netsim.Shifted{Base: netsim.Exponential{MeanD: time.Millisecond}, Offset: 5 * time.Millisecond}, "≈0"},
		{"SIP faster by 5ms", netsim.Shifted{Base: netsim.Exponential{MeanD: time.Millisecond}, Offset: 5 * time.Millisecond}, netsim.Deterministic{D: 2 * time.Millisecond}, "≈1"},
	}
	rows := make([]PfRow, 0, len(cases))
	for _, c := range cases {
		m := eval.Model{Nrtp: c.nrtp, Nsip: c.nsip}
		rows = append(rows, PfRow{Label: c.label, Pf: m.SimulateFalseAlarm(rng, trials), Analytic: c.analytic})
	}
	return rows
}

// FormatPfSweep renders the Pf table.
func FormatPfSweep(rows []PfRow) string {
	var b strings.Builder
	b.WriteString("Section 4.3: false alarm probability Pf = Pr{valid BYE overtakes last RTP packet}\n")
	fmt.Fprintf(&b, "%-24s %-10s %s\n", "delay regime", "Pf", "expected")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-24s %-10.4f %s\n", r.Label, r.Pf, r.Analytic)
	}
	return b.String()
}

// StatefulComparison runs the Section 3.3 comparison: benign
// re-registration traffic plus a REGISTER flood, observed side by side by
// SCIDIVE and the stateless baseline.
type StatefulComparison struct {
	BenignSCIDIVEAlerts  int
	BenignBaselineAlerts int
	FloodSCIDIVEAlerts   int
	FloodBaselineAlerts  int
}

// RunStatefulComparison performs both runs.
func RunStatefulComparison(seed int64) (StatefulComparison, error) {
	var cmp StatefulComparison

	// Benign: several registration rounds.
	tb, err := scenario.New(scenario.Config{Seed: seed})
	if err != nil {
		return cmp, err
	}
	scidive := core.NewEngine(core.Config{})
	scidive.AttachTap(tb.Net)
	base := baseline.NewEngine(baseline.SnortLikeRuleset(4, 60*time.Second))
	base.AttachTap(tb.Net)
	for i := 0; i < 3; i++ {
		tb.Alice.Register(nil)
		tb.Bob.Register(nil)
		tb.Run(2 * time.Second)
	}
	cmp.BenignSCIDIVEAlerts = len(scidive.Alerts())
	cmp.BenignBaselineAlerts = len(base.Alerts())

	// Attack: REGISTER flood.
	tb2, err := scenario.New(scenario.Config{Seed: seed + 1})
	if err != nil {
		return cmp, err
	}
	scidive2 := core.NewEngine(core.Config{})
	scidive2.AttachTap(tb2.Net)
	base2 := baseline.NewEngine(baseline.SnortLikeRuleset(4, 60*time.Second))
	base2.AttachTap(tb2.Net)
	aor := sip.URI{User: "mallory", Host: scenario.AddrProxy.String()}
	tb2.Attacker.RegisterFlood(tb2.Proxy.Addr(), aor, 40, fixedInterval(100*time.Millisecond))
	tb2.Run(8 * time.Second)
	cmp.FloodSCIDIVEAlerts = len(scidive2.AlertsFor(core.RuleRegisterFlood))
	cmp.FloodBaselineAlerts = len(base2.AlertsFor(baseline.Rule4XXFlood))
	return cmp, nil
}

// fixedInterval mirrors attack.FixedInterval without importing it here.
func fixedInterval(d time.Duration) func(int) time.Duration {
	return func(i int) time.Duration { return time.Duration(i) * d }
}

// FormatStatefulComparison renders the comparison.
func FormatStatefulComparison(c StatefulComparison) string {
	var b strings.Builder
	b.WriteString("Section 3.3: stateful (SCIDIVE) vs stateless (Snort-like 4XX threshold)\n")
	fmt.Fprintf(&b, "%-28s %-10s %s\n", "workload", "SCIDIVE", "stateless baseline")
	fmt.Fprintf(&b, "%-28s %-10d %d   <- baseline false alarms\n",
		"benign re-registrations", c.BenignSCIDIVEAlerts, c.BenignBaselineAlerts)
	fmt.Fprintf(&b, "%-28s %-10d %d\n",
		"REGISTER flood (40 reqs)", c.FloodSCIDIVEAlerts, c.FloodBaselineAlerts)
	return b.String()
}
