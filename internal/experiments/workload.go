package experiments

import (
	"fmt"
	"math/rand"
	"net/netip"
	"time"

	"scidive/internal/capture"
	"scidive/internal/packet"
	"scidive/internal/rtp"
	"scidive/internal/sdp"
	"scidive/internal/sip"
)

// MixedCallWorkload synthesizes a deterministic capture of `calls`
// concurrent established calls exchanging interleaved RTP, each torn down
// by a caller BYE followed by orphan media from the caller's socket — the
// Figure 5 attack, once per call. An engine with the default ruleset must
// raise exactly `calls` bye-attack alerts on it and nothing else.
//
// The workload is the scaling benchmark shared by bench_test.go and
// cmd/benchreport: with every call live at once, per-packet session
// attribution is the dominant cost, which is precisely what the sharded
// engine's flow index and session-affinity routing attack.
func MixedCallWorkload(calls, rtpRounds int, seed int64) []capture.Record {
	rng := rand.New(rand.NewSource(seed))
	var recs []capture.Record
	now := time.Duration(0)
	emit := func(srcIP, dstIP netip.Addr, srcPort, dstPort uint16, ipid uint16, payload []byte) {
		frames, err := packet.BuildUDPFrames(packet.UDPFrameSpec{
			SrcMAC: packet.MAC{2, 0, 0, 0, 0, 1}, DstMAC: packet.MAC{2, 0, 0, 0, 0, 2},
			SrcIP: srcIP, DstIP: dstIP, SrcPort: srcPort, DstPort: dstPort,
			IPID: ipid, Payload: payload,
		}, 0)
		if err != nil {
			panic(err) // deterministic inputs; cannot fail
		}
		for _, f := range frames {
			recs = append(recs, capture.Record{Time: now, Frame: f})
			now += 200 * time.Microsecond
		}
	}

	type call struct {
		id                       string
		callerIP, calleeIP       netip.Addr
		callerMedia, calleeMedia netip.AddrPort
		seqA, seqB               uint16
		inv                      *sip.Message
	}
	cs := make([]*call, calls)
	proxyIP := netip.AddrFrom4([4]byte{10, 0, 0, 1})
	for i := range cs {
		c := &call{
			id:       fmt.Sprintf("mix-%d@pbx", i),
			callerIP: netip.AddrFrom4([4]byte{10, 0, 1, byte(1 + i%200)}),
			calleeIP: netip.AddrFrom4([4]byte{10, 0, 2, byte(1 + i%200)}),
			seqA:     uint16(rng.Intn(1 << 15)),
			seqB:     uint16(rng.Intn(1 << 15)),
		}
		c.callerMedia = netip.AddrPortFrom(c.callerIP, uint16(10000+2*i))
		c.calleeMedia = netip.AddrPortFrom(c.calleeIP, uint16(30000+2*i))
		cs[i] = c
	}

	// Phase 1: every call sets up; all dialogs end up concurrently live.
	for i, c := range cs {
		c.inv = sip.NewRequest(sip.RequestSpec{
			Method:     sip.MethodInvite,
			RequestURI: fmt.Sprintf("sip:bob%d@pbx", i),
			From:       sip.Address{URI: sip.URI{User: fmt.Sprintf("alice%d", i), Host: "pbx"}}.WithTag(fmt.Sprintf("at%d", i)),
			To:         sip.Address{URI: sip.URI{User: fmt.Sprintf("bob%d", i), Host: "pbx"}},
			CallID:     c.id,
			CSeq:       sip.CSeq{Seq: 1, Method: sip.MethodInvite},
			Via:        sip.Via{Transport: "UDP", SentBy: c.callerIP.String()},
			Body:       sdp.NewAudioSession("caller", c.callerMedia.Addr(), c.callerMedia.Port()).Marshal(),
			BodyType:   "application/sdp",
		})
		emit(c.callerIP, proxyIP, sip.DefaultPort, sip.DefaultPort, uint16(i), c.inv.Marshal())
		ok := sip.NewResponse(c.inv, sip.StatusOK, fmt.Sprintf("bt%d", i))
		ok.Headers.Add(sip.HdrContentType, "application/sdp")
		ok.Body = sdp.NewAudioSession("callee", c.calleeMedia.Addr(), c.calleeMedia.Port()).Marshal()
		emit(c.calleeIP, c.callerIP, sip.DefaultPort, sip.DefaultPort, uint16(i), ok.Marshal())
	}

	rtpFrame := func(c *call, fromCaller bool) []byte {
		seq, ssrc := c.seqA, uint32(0xA0000000)
		if !fromCaller {
			seq, ssrc = c.seqB, 0xB0000000
		}
		p := rtp.Packet{
			Header:  rtp.Header{PayloadType: rtp.PayloadTypePCMU, Seq: seq, Timestamp: uint32(now / time.Millisecond), SSRC: ssrc},
			Payload: make([]byte, 160),
		}
		buf, err := p.Marshal()
		if err != nil {
			panic(err)
		}
		return buf
	}

	// Phase 2: interleaved two-way media across all live calls. Visiting
	// calls round-robin maximizes per-packet session-attribution churn.
	for round := 0; round < rtpRounds; round++ {
		for i, c := range cs {
			c.seqA++
			emit(c.callerMedia.Addr(), c.calleeMedia.Addr(), c.callerMedia.Port(), c.calleeMedia.Port(),
				uint16(round*calls+i), rtpFrame(c, true))
			c.seqB++
			emit(c.calleeMedia.Addr(), c.callerMedia.Addr(), c.calleeMedia.Port(), c.callerMedia.Port(),
				uint16(round*calls+i), rtpFrame(c, false))
		}
	}

	// Phase 3: caller BYE, then orphan media from the caller's socket
	// while other calls keep talking — one bye-attack per call.
	for i, c := range cs {
		bye := sip.NewRequest(sip.RequestSpec{
			Method:     sip.MethodBye,
			RequestURI: fmt.Sprintf("sip:bob%d@pbx", i),
			From:       sip.Address{URI: sip.URI{User: fmt.Sprintf("alice%d", i), Host: "pbx"}}.WithTag(fmt.Sprintf("at%d", i)),
			To:         sip.Address{URI: sip.URI{User: fmt.Sprintf("bob%d", i), Host: "pbx"}}.WithTag(fmt.Sprintf("bt%d", i)),
			CallID:     c.id,
			CSeq:       sip.CSeq{Seq: 2, Method: sip.MethodBye},
			Via:        sip.Via{Transport: "UDP", SentBy: c.callerIP.String()},
		})
		emit(c.callerIP, c.calleeIP, sip.DefaultPort, sip.DefaultPort, uint16(i), bye.Marshal())
		for k := 0; k < 2; k++ {
			c.seqA++
			emit(c.callerMedia.Addr(), c.calleeMedia.Addr(), c.callerMedia.Port(), c.calleeMedia.Port(),
				uint16(i), rtpFrame(c, true))
		}
		// Calls not yet torn down continue talking in the gaps.
		for _, j := range []int{i + 1, i + calls/2} {
			if j < len(cs) && j > i {
				o := cs[j]
				o.seqB++
				emit(o.calleeMedia.Addr(), o.callerMedia.Addr(), o.calleeMedia.Port(), o.callerMedia.Port(),
					uint16(j), rtpFrame(o, false))
			}
		}
	}
	return recs
}
