package experiments

import (
	"fmt"
	"net/netip"
	"time"

	"scidive/internal/attack"
	"scidive/internal/core"
	"scidive/internal/netsim"
	"scidive/internal/scenario"
	"scidive/internal/sip"
)

// The flood scenarios target the IDS itself rather than a victim phone:
// each one grows a different category of detection state (dialogs,
// reassembly buffers, sequence trackers) to exercise the engine's state
// budgets and overload behaviour. Run with core.Limits set they
// demonstrate bounded-memory survival; run unbounded they are ordinary
// scenarios and the sharded differential harness holds both engines to
// identical output on them.

// RunInviteFlood floods the proxy with never-completed INVITEs, each
// carrying a fresh Call-ID, while a legitimate call rides through and is
// then BYE-attacked. Detection of the real attack amid the flood is the
// outcome that matters.
func RunInviteFlood(seed int64, ecfg core.Config, taps ...netsim.Tap) (Outcome, error) {
	d, err := deploy(seed, scenario.Config{}, ecfg, taps...)
	if err != nil {
		return Outcome{}, err
	}
	if err := d.tb.RegisterAll(); err != nil {
		return Outcome{}, err
	}
	if _, err := d.tb.EstablishCall(); err != nil {
		return Outcome{}, err
	}
	d.tb.Run(2 * time.Second)
	dlg := d.tb.Sniffer.ConfirmedDialog()
	if dlg == nil {
		return Outcome{}, fmt.Errorf("experiments: sniffer learned no dialog")
	}
	target := sip.URI{User: "alice", Host: scenario.AddrProxy.String()}
	attackAt := d.tb.Sim.Now()
	d.tb.Attacker.InviteFlood(d.tb.Proxy.Addr(), target, 150, attack.FixedInterval(10*time.Millisecond))
	// Mid-flood, the real attack the flood is trying to hide.
	d.tb.Sim.Schedule(800*time.Millisecond, func() { _ = d.tb.Attacker.ForgedBye(dlg, true) })
	d.tb.Run(4 * time.Second)
	impact := fmt.Sprintf("proxy absorbed a %d-INVITE setup flood", 150)
	return d.outcome("invite-flood", attackAt, impact), nil
}

// RunFragmentFlood floods the wire with orphan first-fragments, each
// opening a reassembly buffer that never completes, then runs a fake-IM
// attack the IDS must still catch.
func RunFragmentFlood(seed int64, ecfg core.Config, taps ...netsim.Tap) (Outcome, error) {
	d, err := deploy(seed, scenario.Config{}, ecfg, taps...)
	if err != nil {
		return Outcome{}, err
	}
	if err := d.tb.RegisterAll(); err != nil {
		return Outcome{}, err
	}
	dst := netip.AddrPortFrom(scenario.AddrClientA, sip.DefaultPort)
	attackAt := d.tb.Sim.Now()
	if err := d.tb.Attacker.FragmentFlood(dst, 200, 128, attack.FixedInterval(5*time.Millisecond)); err != nil {
		return Outcome{}, err
	}
	d.tb.Sim.Schedule(500*time.Millisecond, func() { d.tb.Bob.SendIM("alice", "pre-attack baseline") })
	d.tb.Sim.Schedule(1200*time.Millisecond, func() {
		_ = d.tb.Attacker.FakeIM(
			dst,
			sip.URI{User: "bob", Host: scenario.AddrProxy.String()},
			"wire transfer please",
		)
	})
	d.tb.Run(3 * time.Second)
	impact := "200 orphan fragments held reassembly buffers open"
	return d.outcome("fragment-flood", attackAt, impact), nil
}

// RunRTPBlast sprays decodable RTP across a spread of media ports, each
// new port costing the IDS a sequence tracker and session entry, with a
// call hijack launched mid-blast.
func RunRTPBlast(seed int64, ecfg core.Config, taps ...netsim.Tap) (Outcome, error) {
	d, err := deploy(seed, scenario.Config{}, ecfg, taps...)
	if err != nil {
		return Outcome{}, err
	}
	if err := d.tb.RegisterAll(); err != nil {
		return Outcome{}, err
	}
	if _, err := d.tb.EstablishCall(); err != nil {
		return Outcome{}, err
	}
	d.tb.Run(2 * time.Second)
	dlg := d.tb.Sniffer.ConfirmedDialog()
	if dlg == nil {
		return Outcome{}, fmt.Errorf("experiments: sniffer learned no dialog")
	}
	attackAt := d.tb.Sim.Now()
	d.tb.Attacker.RTPBlast(scenario.AddrClientA, 30000, 40, 4, attack.FixedInterval(5*time.Millisecond))
	sink := netip.AddrPortFrom(scenario.AddrAttacker, 46000)
	d.tb.Sim.Schedule(500*time.Millisecond, func() { _ = d.tb.Attacker.Hijack(dlg, true, sink) })
	d.tb.Run(3 * time.Second)
	impact := "160 RTP packets sprayed over 40 ports"
	return d.outcome("rtp-blast", attackAt, impact), nil
}
