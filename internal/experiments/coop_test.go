package experiments

import (
	"testing"

	"scidive/internal/core"
)

// crossRules extracts the distinct rule names among cross-point alerts
// raised at or after the attack.
func crossRules(o CoopOutcome) map[string]int {
	rules := map[string]int{}
	for _, a := range o.CrossAlerts {
		if a.At >= o.AttackAt {
			rules[a.Rule]++
		}
	}
	return rules
}

func TestCoopByeSplitOnlyAggregatorDetects(t *testing.T) {
	o, err := RunCoopByeSplit(7)
	if err != nil {
		t.Fatal(err)
	}
	if !o.Detected {
		t.Fatalf("combined aggregator missed the split BYE attack: %+v", o)
	}
	if got := crossRules(o); got[core.RuleByeTeardownSplit] == 0 {
		t.Errorf("expected %s, got rules %v", core.RuleByeTeardownSplit, got)
	}
	if o.SoloDetected {
		for _, p := range o.Probes {
			t.Logf("probe %s: local=%v solo-cross=%v", p.Point, p.LocalAlerts, p.SoloCrossAlerts)
		}
		t.Error("a single probe detected the attack alone; the scenario must require the merge")
	}
	// The probes really shipped evidence as control traffic.
	for _, p := range o.Probes {
		if p.Stats.Sent == 0 || p.Stats.Acked == 0 {
			t.Errorf("probe %s shipped nothing (sent=%d acked=%d)", p.Point, p.Stats.Sent, p.Stats.Acked)
		}
	}
	if o.AggStats.DigestsAccepted == 0 {
		t.Error("combined aggregator accepted no digests")
	}
}

func TestCoopRegHijackOnlyAggregatorDetects(t *testing.T) {
	o, err := RunCoopRegHijack(7)
	if err != nil {
		t.Fatal(err)
	}
	if !o.Detected {
		t.Fatalf("combined aggregator missed the registration hijack: %+v", o)
	}
	if got := crossRules(o); got[core.RuleRegisterHijackSplit] == 0 {
		t.Errorf("expected %s, got rules %v", core.RuleRegisterHijackSplit, got)
	}
	if o.SoloDetected {
		t.Error("a single probe detected the hijack alone; the scenario must require the merge")
	}
}

func TestCoopFakeIMSplitDetectedCooperatively(t *testing.T) {
	o, err := RunCoopFakeIMSplit(7)
	if err != nil {
		t.Fatal(err)
	}
	if !o.Detected {
		t.Fatalf("cooperative detectors missed the spoofed fake IM: %+v", o)
	}
	if o.SoloDetected {
		t.Error("a local engine caught the spoofed IM alone; the spoof should defeat single-point rules")
	}
}

func TestCoopBenignNoFalseAlarms(t *testing.T) {
	o, err := RunCoopBenign(7)
	if err != nil {
		t.Fatal(err)
	}
	if o.Detected || len(o.CrossAlerts) != 0 {
		t.Errorf("benign multi-point run raised cross-point alerts: %v", o.CrossAlerts)
	}
	for _, p := range o.Probes {
		if len(p.SoloCrossAlerts) != 0 {
			t.Errorf("solo aggregator %s raised alerts on benign traffic: %v", p.Point, p.SoloCrossAlerts)
		}
		if len(p.LocalAlerts) != 0 {
			t.Errorf("probe %s local engine raised alerts on benign traffic: %v", p.Point, p.LocalAlerts)
		}
	}
}
