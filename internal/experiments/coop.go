package experiments

// Multi-point (cooperative) experiments: several probes with partial
// vantages ship event digests to aggregators running the cross-point
// ruleset. Each scenario here is built so that every single probe stays
// silent — the attack's evidence only exists in the merged stream. The
// benchreport `-exp coop` gate quantifies exactly that: solo aggregators
// (fed one probe each) detect 0/N, the combined aggregator detects N/N.

import (
	"fmt"
	"net/netip"
	"time"

	"scidive/internal/coop"
	"scidive/internal/core"
	"scidive/internal/netsim"
	"scidive/internal/packet"
	"scidive/internal/scenario"
	"scidive/internal/sip"
)

// Cooperative-deployment addresses: monitor (probe) hosts and the
// aggregator appliances live outside the client/proxy address range so
// vantage filters never confuse control traffic with monitored traffic.
var (
	AddrAggregator = netip.MustParseAddr("10.0.0.40")
	addrMonBase    = netip.MustParseAddr("10.0.0.30") // probes: .30, .31, ...
	addrSoloBase   = netip.MustParseAddr("10.0.0.41") // solo aggregators
)

// coopVantage describes one observation point: which frames its tap
// sees, how its engine is tuned, and which event types its probe exports.
type coopVantage struct {
	point  string
	sees   func(src, dst netip.Addr) bool
	cfg    core.Config
	export []core.EventType
}

// CoopProbeReport is one probe's view after a cooperative run.
type CoopProbeReport struct {
	Point string
	// LocalAlerts are the probe's own engine's alerts — the single-point
	// detection capability at this vantage.
	LocalAlerts []core.Alert
	// SoloCrossAlerts are the cross-point alerts of an aggregator fed by
	// this probe ALONE — what the cross-point rules can do with one
	// vantage's evidence.
	SoloCrossAlerts []core.Alert
	// Stats counts the probe's control-plane activity.
	Stats coop.ProbeStats
}

// CoopOutcome is the result of one multi-point scenario run.
type CoopOutcome struct {
	Name     string
	AttackAt time.Duration
	Probes   []CoopProbeReport
	// CrossAlerts are the combined aggregator's alerts (all probes merged).
	CrossAlerts []core.Alert
	// Detected reports whether the combined aggregator fired a cross-point
	// rule at or after AttackAt. SoloDetected reports whether ANY
	// single-probe aggregator (or, for detector deployments, any local
	// engine) did — the paper's claim is Detected && !SoloDetected.
	Detected     bool
	SoloDetected bool
	Impact       string
	AggStats     coop.AggregatorStats
}

// String formats the outcome as a report line.
func (o CoopOutcome) String() string {
	status := "MISSED"
	if o.Detected {
		var rules []string
		seen := map[string]bool{}
		for _, a := range o.CrossAlerts {
			if a.At >= o.AttackAt && !seen[a.Rule] {
				seen[a.Rule] = true
				rules = append(rules, a.Rule)
			}
		}
		status = fmt.Sprintf("DETECTED cross-point via %v", rules)
	}
	solo := "all probes silent alone"
	if o.SoloDetected {
		solo = "a single probe also detected it"
	}
	return fmt.Sprintf("%-18s %s (%s); impact: %s", o.Name, status, solo, o.Impact)
}

// frameAddrs extracts the IPv4 endpoints of a wire frame.
func frameAddrs(frame []byte) (src, dst netip.Addr, ok bool) {
	ef, err := packet.UnmarshalEthernet(frame)
	if err != nil || ef.Type != packet.EtherTypeIPv4 {
		return src, dst, false
	}
	iph, _, err := packet.UnmarshalIPv4(ef.Payload)
	if err != nil {
		return src, dst, false
	}
	return iph.Src, iph.Dst, true
}

// coopDeployment is a set of vantage-filtered probes plus a combined
// aggregator and one solo aggregator per probe.
type coopDeployment struct {
	engines  []*core.Engine
	probes   []*coop.Probe
	combined *coop.Aggregator
	solos    []*coop.Aggregator
	points   []string
}

// deployCoop attaches one engine+probe per vantage to the testbed's hub
// and stands up the aggregators. Every probe ships its digests to both
// the combined aggregator and its own solo aggregator, so a single run
// yields the merged and the per-probe detection answers.
func deployCoop(tb *scenario.Testbed, vantages []coopVantage) (*coopDeployment, error) {
	d := &coopDeployment{}
	aggHost, err := tb.Net.AddHost("aggregator", AddrAggregator)
	if err != nil {
		return nil, err
	}
	d.combined = coop.NewAggregator(coop.AggregatorConfig{
		Host: aggHost, Rules: core.CrossPointRuleset(), Immediate: true,
	})
	if err := coop.Bind(aggHost, 0, nil, d.combined); err != nil {
		return nil, err
	}
	combinedAddr := netip.AddrPortFrom(AddrAggregator, coop.DefaultPort)

	mon := addrMonBase.As4()
	solo := addrSoloBase.As4()
	for i, v := range vantages {
		monAddr := netip.AddrFrom4([4]byte{mon[0], mon[1], mon[2], mon[3] + byte(i)})
		soloAddr := netip.AddrFrom4([4]byte{solo[0], solo[1], solo[2], solo[3] + byte(i)})
		monHost, err := tb.Net.AddHost("mon-"+v.point, monAddr)
		if err != nil {
			return nil, err
		}
		soloHost, err := tb.Net.AddHost("agg-"+v.point, soloAddr)
		if err != nil {
			return nil, err
		}
		soloAgg := coop.NewAggregator(coop.AggregatorConfig{
			Host: soloHost, Rules: core.CrossPointRuleset(), Immediate: true,
		})
		if err := coop.Bind(soloHost, 0, nil, soloAgg); err != nil {
			return nil, err
		}
		eng := core.NewEngine(v.cfg, core.WithEventLog())
		probe, err := coop.NewProbe(coop.ProbeConfig{
			Host:        monHost,
			Point:       v.point,
			Aggregators: []netip.AddrPort{combinedAddr, netip.AddrPortFrom(soloAddr, coop.DefaultPort)},
			Export:      v.export,
			Limits:      v.cfg.Limits,
		})
		if err != nil {
			return nil, err
		}
		if err := coop.Bind(monHost, 0, probe, nil); err != nil {
			return nil, err
		}
		probe.AttachEngine(eng)
		sees := v.sees
		tb.Net.AddTap(func(at time.Duration, frame []byte) {
			src, dst, ok := frameAddrs(frame)
			if !ok || !sees(src, dst) {
				return
			}
			eng.HandleFrame(at, frame)
		})
		d.engines = append(d.engines, eng)
		d.probes = append(d.probes, probe)
		d.solos = append(d.solos, soloAgg)
		d.points = append(d.points, v.point)
	}
	return d, nil
}

// outcome assembles the cooperative run's result.
func (d *coopDeployment) outcome(name string, attackAt time.Duration, impact string) CoopOutcome {
	o := CoopOutcome{
		Name:        name,
		AttackAt:    attackAt,
		CrossAlerts: d.combined.Alerts(),
		Impact:      impact,
		AggStats:    d.combined.Stats(),
	}
	for _, a := range o.CrossAlerts {
		if a.At >= attackAt {
			o.Detected = true
		}
	}
	for i, eng := range d.engines {
		rep := CoopProbeReport{
			Point:           d.points[i],
			LocalAlerts:     eng.Alerts(),
			SoloCrossAlerts: d.solos[i].Alerts(),
			Stats:           d.probes[i].Stats(),
		}
		for _, a := range rep.SoloCrossAlerts {
			if a.At >= attackAt {
				o.SoloDetected = true
			}
		}
		for _, a := range rep.LocalAlerts {
			if a.At >= attackAt {
				o.SoloDetected = true
			}
		}
		o.Probes = append(o.Probes, rep)
	}
	return o
}

// Vantage filter helpers over the standard topology.
func isProxy(a netip.Addr) bool  { return a == scenario.AddrProxy }
func isClient(a netip.Addr) bool { return a == scenario.AddrClientA || a == scenario.AddrClientB }

// edgeVantage sees every frame touching the proxy: all signaling legs,
// but never the endpoint-to-endpoint media path.
func edgeVantage() coopVantage {
	return coopVantage{
		point:  core.PointEdge,
		sees:   func(src, dst netip.Addr) bool { return isProxy(src) || isProxy(dst) },
		export: []core.EventType{core.EvSIPBye},
	}
}

// gatewayVantage sees every frame touching a client: the media trunk and
// the client-side signaling legs (so its engine can map media flows to
// Call-IDs) — but not traffic between third parties and the proxy, such
// as a forged BYE injected straight at the proxy.
func gatewayVantage() coopVantage {
	return coopVantage{
		point: core.PointGateway,
		sees:  func(src, dst netip.Addr) bool { return isClient(src) || isClient(dst) },
		cfg: core.Config{
			Gen: core.GenConfig{RTPActivityEvery: 500 * time.Millisecond},
		},
		export: []core.EventType{core.EvRTPActivity},
	}
}

// accessVantage sees one access network's frames: the named endpoints'
// traffic only.
func accessVantage(point string, members ...netip.Addr) coopVantage {
	in := func(a netip.Addr) bool {
		for _, m := range members {
			if a == m {
				return true
			}
		}
		return false
	}
	return coopVantage{
		point:  point,
		sees:   func(src, dst netip.Addr) bool { return in(src) || in(dst) },
		export: []core.EventType{core.EvSIPRegisterOK},
	}
}

// RunCoopByeSplit runs the split-vantage BYE attack: a forged BYE with
// the live call's identifiers is sent straight to the proxy with an
// unroutable target, so the proxy 404s it and the endpoints keep
// streaming. The edge probe sees a teardown but never media; the gateway
// probe sees media flowing but never the forged BYE. Only the aggregator,
// holding both, can prove the teardown never happened
// (bye-teardown-split).
func RunCoopByeSplit(seed int64, taps ...netsim.Tap) (CoopOutcome, error) {
	tb, err := scenario.New(scenario.Config{Seed: seed})
	if err != nil {
		return CoopOutcome{}, err
	}
	d, err := deployCoop(tb, []coopVantage{edgeVantage(), gatewayVantage()})
	if err != nil {
		return CoopOutcome{}, err
	}
	for _, tap := range taps {
		tb.Net.AddTap(tap)
	}
	if err := tb.RegisterAll(); err != nil {
		return CoopOutcome{}, err
	}
	call, err := tb.EstablishCall()
	if err != nil {
		return CoopOutcome{}, err
	}
	tb.Run(2 * time.Second)
	dlg := tb.Sniffer.ConfirmedDialog()
	if dlg == nil {
		return CoopOutcome{}, fmt.Errorf("experiments: sniffer learned no dialog")
	}
	var attackAt time.Duration
	tb.Sim.Schedule(0, func() {
		attackAt = tb.Sim.Now()
		_ = tb.Attacker.ForgedByeToProxy(dlg, tb.Proxy.Addr())
	})
	tb.Run(4 * time.Second)
	impact := "proxy absorbed the forged BYE"
	if call.Established() {
		impact = fmt.Sprintf("proxy absorbed the forged BYE (%d not-found); call still streaming",
			tb.Proxy.Stats().NotFound)
	}
	return d.outcome("coop-bye-split", attackAt, impact), nil
}

// RunCoopRegHijack runs the split-vantage registration hijack: the
// attacker, holding stolen credentials, re-registers the victim's AOR
// from the other access network. Each access probe sees one perfectly
// valid registration; only the aggregator sees the same AOR bound from
// two networks within the window (register-hijack-split).
func RunCoopRegHijack(seed int64, taps ...netsim.Tap) (CoopOutcome, error) {
	tb, err := scenario.New(scenario.Config{Seed: seed})
	if err != nil {
		return CoopOutcome{}, err
	}
	d, err := deployCoop(tb, []coopVantage{
		accessVantage(core.PointAccessA, scenario.AddrClientA),
		accessVantage(core.PointAccessB, scenario.AddrClientB, scenario.AddrAttacker),
	})
	if err != nil {
		return CoopOutcome{}, err
	}
	for _, tap := range taps {
		tb.Net.AddTap(tap)
	}
	if err := tb.RegisterAll(); err != nil {
		return CoopOutcome{}, err
	}
	var attackAt time.Duration
	tb.Sim.Schedule(0, func() {
		attackAt = tb.Sim.Now()
		tb.Attacker.HijackRegister(tb.Proxy.Addr(),
			sip.URI{User: "alice", Host: scenario.AddrProxy.String()},
			scenario.Users["alice"])
	})
	tb.Run(3 * time.Second)
	impact := "registrar still points at the victim"
	if b := tb.Proxy.BindingFor("alice@" + scenario.AddrProxy.String()); b != nil && b.Source.Addr() == scenario.AddrAttacker {
		impact = "victim's AOR rebound to the attacker's address; their calls now route to the attacker"
	}
	return d.outcome("coop-reg-hijack", attackAt, impact), nil
}

// RunCoopBenign runs the full four-point deployment over benign traffic —
// registrations, a call, a legitimate hangup — and reports any (false)
// cross-point alarms. The legitimate BYE is seen at the edge, but the
// media gateway also witnesses the teardown, so no liveness heartbeats
// follow it and bye-teardown-split stays quiet.
func RunCoopBenign(seed int64, taps ...netsim.Tap) (CoopOutcome, error) {
	tb, err := scenario.New(scenario.Config{Seed: seed})
	if err != nil {
		return CoopOutcome{}, err
	}
	d, err := deployCoop(tb, []coopVantage{
		edgeVantage(),
		gatewayVantage(),
		accessVantage(core.PointAccessA, scenario.AddrClientA),
		accessVantage(core.PointAccessB, scenario.AddrClientB),
	})
	if err != nil {
		return CoopOutcome{}, err
	}
	for _, tap := range taps {
		tb.Net.AddTap(tap)
	}
	if err := tb.RegisterAll(); err != nil {
		return CoopOutcome{}, err
	}
	call, err := tb.EstablishCall()
	if err != nil {
		return CoopOutcome{}, err
	}
	tb.Run(10 * time.Second)
	tb.Sim.Schedule(0, func() { _ = tb.Alice.Hangup(call) })
	tb.Run(3 * time.Second)
	o := d.outcome("coop-benign", 0, "normal call completed across four vantages")
	o.Detected = len(o.CrossAlerts) > 0 // any cross-point alert on benign traffic is a false alarm
	return o, nil
}

// RunCoopFakeIMSplit runs the endpoint-detector deployment (the
// Probe/Aggregator machinery at the endpoints themselves) against the
// source-spoofed fake-IM attack: the forged message carries the
// impersonated sender's own IP, so the victim's local engine sees nothing
// wrong — only the absence of a matching send event from the real
// sender's detector exposes it (coop-fake-im).
func RunCoopFakeIMSplit(seed int64, taps ...netsim.Tap) (CoopOutcome, error) {
	tb, err := scenario.New(scenario.Config{Seed: seed})
	if err != nil {
		return CoopOutcome{}, err
	}
	da, err := coop.NewDetector(coop.Config{
		Host: tb.Net.HostByIP(scenario.AddrClientA), User: "alice",
		Peers: []netip.AddrPort{netip.AddrPortFrom(scenario.AddrClientB, coop.DefaultPort)},
	})
	if err != nil {
		return CoopOutcome{}, err
	}
	db, err := coop.NewDetector(coop.Config{
		Host: tb.Net.HostByIP(scenario.AddrClientB), User: "bob",
		Peers: []netip.AddrPort{netip.AddrPortFrom(scenario.AddrClientA, coop.DefaultPort)},
	})
	if err != nil {
		return CoopOutcome{}, err
	}
	for _, tap := range taps {
		tb.Net.AddTap(tap)
	}
	if err := tb.RegisterAll(); err != nil {
		return CoopOutcome{}, err
	}
	tb.Run(2 * time.Second)
	var attackAt time.Duration
	tb.Sim.Schedule(0, func() {
		attackAt = tb.Sim.Now()
		_ = tb.Attacker.FakeIMSpoofed(
			netip.AddrPortFrom(scenario.AddrClientA, sip.DefaultPort),
			sip.URI{User: "bob", Host: scenario.AddrProxy.String()},
			netip.AddrPortFrom(scenario.AddrClientB, sip.DefaultPort),
			"please wire $5k to acct 12345",
		)
	})
	tb.Run(2 * time.Second)

	o := CoopOutcome{
		Name:     "coop-fakeim-split",
		AttackAt: attackAt,
		Impact:   fmt.Sprintf("victim accepted %d instant messages claiming to be bob", len(tb.Alice.Messages())),
		AggStats: da.Aggregator().Stats(),
	}
	for _, a := range da.Alerts() {
		o.CrossAlerts = append(o.CrossAlerts, core.Alert{At: a.At, Rule: a.Rule, Detail: a.Detail})
		if a.At >= attackAt {
			o.Detected = true
		}
	}
	// "Solo" here means the endpoints' local engines: the spoofed source
	// defeats the single-point fake-im rule, so any local firing counts as
	// solo detection.
	for _, dp := range []struct {
		point string
		det   *coop.Detector
	}{{"alice", da}, {"bob", db}} {
		rep := CoopProbeReport{Point: dp.point, LocalAlerts: dp.det.Engine().Alerts()}
		for _, a := range dp.det.Engine().AlertsFor(core.RuleFakeIM) {
			if a.At >= attackAt {
				o.SoloDetected = true
			}
		}
		o.Probes = append(o.Probes, rep)
	}
	return o, nil
}

// coopOutcomeAsOutcome adapts a cooperative result to the standard
// Outcome shape so RunScenario (goldens, differential harnesses, capture)
// can drive multi-point scenarios like any other.
func coopOutcomeAsOutcome(co CoopOutcome, err error) (Outcome, error) {
	if err != nil {
		return Outcome{}, err
	}
	o := Outcome{Name: co.Name, Alerts: co.CrossAlerts, Impact: co.Impact, Detected: co.Detected}
	seen := map[string]bool{}
	for _, a := range co.CrossAlerts {
		if a.At >= co.AttackAt && !seen[a.Rule] {
			seen[a.Rule] = true
			o.RulesFired = append(o.RulesFired, a.Rule)
			if !o.Detected || a.At-co.AttackAt < o.DetectDelay {
				o.DetectDelay = a.At - co.AttackAt
			}
		}
	}
	return o, nil
}
