// Package experiments reproduces the SCIDIVE paper's evaluation artifacts
// (Table 1, the Figure 1 message exchange, the Figure 5-8 attack
// demonstrations, and the Section 4.3 delay/miss/false-alarm analysis) as
// runnable experiments over the simulated testbed. The benchreport
// command, the repository benchmarks, and EXPERIMENTS.md are all driven
// by these functions.
package experiments

import (
	"fmt"
	"net/netip"
	"strings"
	"time"

	"scidive/internal/attack"
	"scidive/internal/core"
	"scidive/internal/endpoint"
	"scidive/internal/netsim"
	"scidive/internal/scenario"
	"scidive/internal/sip"
)

// Outcome is the result of one attack-scenario run with the IDS deployed.
type Outcome struct {
	Name        string
	RulesFired  []string
	Detected    bool
	DetectDelay time.Duration // alert time − attack launch time
	Impact      string        // what happened to the victim
	Alerts      []core.Alert
	Stats       core.EngineStats
	Distill     core.DistillerStats // classification ledger (incl. mismatches)
}

// String formats the outcome as a report line.
func (o Outcome) String() string {
	status := "MISSED"
	if o.Detected {
		status = fmt.Sprintf("DETECTED in %.1fms via %s",
			o.DetectDelay.Seconds()*1000, strings.Join(o.RulesFired, ","))
	}
	return fmt.Sprintf("%-18s %s; impact: %s", o.Name, status, o.Impact)
}

// deployed bundles a testbed with a tapped engine.
type deployed struct {
	tb  *scenario.Testbed
	eng *core.Engine
}

func deploy(seed int64, scfg scenario.Config, ecfg core.Config, taps ...netsim.Tap) (*deployed, error) {
	scfg.Seed = seed
	tb, err := scenario.New(scfg)
	if err != nil {
		return nil, err
	}
	eng := core.NewEngine(ecfg)
	eng.AttachTap(tb.Net)
	for _, tap := range taps {
		tb.Net.AddTap(tap)
	}
	return &deployed{tb: tb, eng: eng}, nil
}

// outcome collects rule firings after a run.
func (d *deployed) outcome(name string, attackAt time.Duration, impact string) Outcome {
	o := Outcome{Name: name, Impact: impact, Alerts: d.eng.Alerts(), Stats: d.eng.Stats(), Distill: d.eng.DistillerStats()}
	seen := map[string]bool{}
	for _, a := range o.Alerts {
		if a.At >= attackAt && !seen[a.Rule] {
			seen[a.Rule] = true
			o.RulesFired = append(o.RulesFired, a.Rule)
			if !o.Detected || a.At-attackAt < o.DetectDelay {
				o.Detected = true
				o.DetectDelay = a.At - attackAt
			}
		}
	}
	return o
}

// RunBenign runs registration + a 30s call + teardown and reports any
// (false) alarms.
func RunBenign(seed int64, taps ...netsim.Tap) (Outcome, error) {
	d, err := deploy(seed, scenario.Config{}, core.Config{}, taps...)
	if err != nil {
		return Outcome{}, err
	}
	if err := d.tb.RegisterAll(); err != nil {
		return Outcome{}, err
	}
	call, err := d.tb.EstablishCall()
	if err != nil {
		return Outcome{}, err
	}
	d.tb.Run(30 * time.Second)
	d.tb.Sim.Schedule(0, func() { _ = d.tb.Alice.Hangup(call) })
	d.tb.Run(3 * time.Second)
	o := d.outcome("benign-call", 0, "normal call completed")
	o.Detected = len(o.Alerts) > 0 // any alert on benign traffic is a false alarm
	return o, nil
}

// RunByeAttack reproduces Figure 5.
func RunByeAttack(seed int64, ecfg core.Config, taps ...netsim.Tap) (Outcome, error) {
	d, err := deploy(seed, scenario.Config{}, ecfg, taps...)
	if err != nil {
		return Outcome{}, err
	}
	if err := d.tb.RegisterAll(); err != nil {
		return Outcome{}, err
	}
	aliceCall, err := d.tb.EstablishCall()
	if err != nil {
		return Outcome{}, err
	}
	d.tb.Run(2 * time.Second)
	dlg := d.tb.Sniffer.ConfirmedDialog()
	if dlg == nil {
		return Outcome{}, fmt.Errorf("experiments: sniffer learned no dialog")
	}
	var attackAt time.Duration
	d.tb.Sim.Schedule(0, func() {
		attackAt = d.tb.Sim.Now()
		_ = d.tb.Attacker.ForgedBye(dlg, true)
	})
	d.tb.Run(3 * time.Second)
	impact := "call survived"
	if !aliceCall.Established() {
		impact = fmt.Sprintf("victim torn down; %d orphan RTP packets arrived", d.tb.Alice.OrphanRTP)
	}
	return d.outcome("bye-attack", attackAt, impact), nil
}

// RunFakeIM reproduces Figure 6.
func RunFakeIM(seed int64, taps ...netsim.Tap) (Outcome, error) {
	d, err := deploy(seed, scenario.Config{}, core.Config{}, taps...)
	if err != nil {
		return Outcome{}, err
	}
	if err := d.tb.RegisterAll(); err != nil {
		return Outcome{}, err
	}
	d.tb.Sim.Schedule(0, func() { d.tb.Bob.SendIM("alice", "lunch at noon?") })
	d.tb.Run(2 * time.Second)
	var attackAt time.Duration
	d.tb.Sim.Schedule(0, func() {
		attackAt = d.tb.Sim.Now()
		_ = d.tb.Attacker.FakeIM(
			netip.AddrPortFrom(scenario.AddrClientA, sip.DefaultPort),
			sip.URI{User: "bob", Host: scenario.AddrProxy.String()},
			"please wire $5k to acct 12345",
		)
	})
	d.tb.Run(2 * time.Second)
	impact := fmt.Sprintf("victim accepted %d instant messages claiming to be bob", len(d.tb.Alice.Messages()))
	return d.outcome("fake-im", attackAt, impact), nil
}

// RunCallHijack reproduces Figure 7.
func RunCallHijack(seed int64, taps ...netsim.Tap) (Outcome, error) {
	d, err := deploy(seed, scenario.Config{}, core.Config{}, taps...)
	if err != nil {
		return Outcome{}, err
	}
	if err := d.tb.RegisterAll(); err != nil {
		return Outcome{}, err
	}
	aliceCall, err := d.tb.EstablishCall()
	if err != nil {
		return Outcome{}, err
	}
	d.tb.Run(2 * time.Second)
	dlg := d.tb.Sniffer.ConfirmedDialog()
	if dlg == nil {
		return Outcome{}, fmt.Errorf("experiments: sniffer learned no dialog")
	}
	sink := netip.AddrPortFrom(scenario.AddrAttacker, 46000)
	var attackAt time.Duration
	d.tb.Sim.Schedule(0, func() {
		attackAt = d.tb.Sim.Now()
		_ = d.tb.Attacker.Hijack(dlg, true, sink)
	})
	d.tb.Run(3 * time.Second)
	impact := "media unaffected"
	if aliceCall.RemoteMedia() == sink {
		impact = "victim's outgoing audio redirected to the attacker (callee hears silence)"
	}
	return d.outcome("call-hijack", attackAt, impact), nil
}

// RunRTPAttack reproduces Figure 8. crashVictim selects the X-Lite-like
// (true) or Messenger-like (false) client behaviour the paper observed.
func RunRTPAttack(seed int64, crashVictim bool, taps ...netsim.Tap) (Outcome, error) {
	d, err := deploy(seed, scenario.Config{CrashOnCorrupt: crashVictim}, core.Config{}, taps...)
	if err != nil {
		return Outcome{}, err
	}
	if err := d.tb.RegisterAll(); err != nil {
		return Outcome{}, err
	}
	aliceCall, err := d.tb.EstablishCall()
	if err != nil {
		return Outcome{}, err
	}
	d.tb.Run(2 * time.Second)
	var attackAt time.Duration
	d.tb.Sim.Schedule(0, func() {
		attackAt = d.tb.Sim.Now()
		_ = d.tb.Attacker.InjectGarbageRTP(d.tb.Alice.RTPAddr(), 20, 172)
	})
	d.tb.Run(2 * time.Second)
	var impact string
	switch {
	case d.tb.Alice.Crashed():
		impact = "client crashed (X-Lite behaviour)"
	case aliceCall.Glitches > 0:
		impact = fmt.Sprintf("intermittent audio: %d jitter-buffer corruptions (Messenger behaviour)", aliceCall.Glitches)
	default:
		impact = "no observable impact"
	}
	return d.outcome("rtp-attack", attackAt, impact), nil
}

// RunRegisterFlood reproduces the Section 3.3 DoS scenario.
func RunRegisterFlood(seed int64, taps ...netsim.Tap) (Outcome, error) {
	d, err := deploy(seed, scenario.Config{}, core.Config{}, taps...)
	if err != nil {
		return Outcome{}, err
	}
	aor := sip.URI{User: "mallory", Host: scenario.AddrProxy.String()}
	attackAt := d.tb.Sim.Now()
	d.tb.Attacker.RegisterFlood(d.tb.Proxy.Addr(), aor, 40, attack.FixedInterval(100*time.Millisecond))
	d.tb.Run(8 * time.Second)
	impact := fmt.Sprintf("proxy served %d challenges to the flood", d.tb.Proxy.Stats().Challenges)
	return d.outcome("register-flood", attackAt, impact), nil
}

// RunPasswordGuess reproduces the Section 3.3 brute-force scenario.
func RunPasswordGuess(seed int64, taps ...netsim.Tap) (Outcome, error) {
	d, err := deploy(seed, scenario.Config{}, core.Config{}, taps...)
	if err != nil {
		return Outcome{}, err
	}
	aor := sip.URI{User: "alice", Host: scenario.AddrProxy.String()}
	guesses := []string{"123456", "password", "letmein", "alice1", "qwerty", "secret"}
	attackAt := d.tb.Sim.Now()
	d.tb.Attacker.PasswordGuess(d.tb.Proxy.Addr(), aor, "scidive.test", guesses, attack.FixedInterval(200*time.Millisecond))
	d.tb.Run(5 * time.Second)
	impact := fmt.Sprintf("%d wrong credentials rejected", d.tb.Proxy.Stats().AuthFailures)
	return d.outcome("password-guess", attackAt, impact), nil
}

// RunBillingFraud reproduces the Section 3.2 scenario.
func RunBillingFraud(seed int64, taps ...netsim.Tap) (Outcome, error) {
	d, err := deploy(seed, scenario.Config{}, core.Config{}, taps...)
	if err != nil {
		return Outcome{}, err
	}
	if err := d.tb.RegisterAll(); err != nil {
		return Outcome{}, err
	}
	fraud := attack.NewBillingFraud(
		d.tb.Attacker,
		d.tb.Proxy.Addr(),
		sip.URI{User: "alice", Host: scenario.AddrProxy.String()},
		sip.URI{User: "bob", Host: scenario.AddrProxy.String()},
		40600,
	)
	var attackAt time.Duration
	d.tb.Sim.Schedule(0, func() {
		attackAt = d.tb.Sim.Now()
		_ = fraud.Launch(5 * time.Second)
	})
	d.tb.Run(8 * time.Second)
	impact := "fraud call failed"
	if fraud.Established {
		impact = "attacker's call billed to the victim"
		if recs := d.tb.Acct.Records(); len(recs) == 1 {
			impact = fmt.Sprintf("CDR bills %s for the attacker's %d media packets", recs[0].From, fraud.RTPSent)
		}
	}
	return d.outcome("billing-fraud", attackAt, impact), nil
}

// RunOptionsScan runs the extension attack detected by the options-scan
// correlator: one source probes many invented users with OPTIONS, each
// under a fresh Call-ID, sweeping the proxy for capabilities. No single
// dialog is suspicious; only the cross-dialog view raises the alert.
func RunOptionsScan(seed int64, taps ...netsim.Tap) (Outcome, error) {
	d, err := deploy(seed, scenario.Config{}, core.Config{}, taps...)
	if err != nil {
		return Outcome{}, err
	}
	if err := d.tb.RegisterAll(); err != nil {
		return Outcome{}, err
	}
	const probes = 8
	attackAt := d.tb.Sim.Now()
	d.tb.Attacker.OptionsScan(d.tb.Proxy.Addr(), scenario.AddrProxy.String(), probes, attack.FixedInterval(300*time.Millisecond))
	d.tb.Run(5 * time.Second)
	impact := fmt.Sprintf("%d capability probes swept the proxy across distinct dialogs", probes)
	return d.outcome("options-scan", attackAt, impact), nil
}

// PhoneEventSummary renders a phone's event log (for example programs).
func PhoneEventSummary(p *endpoint.Phone) string {
	var b strings.Builder
	for _, e := range p.Events() {
		fmt.Fprintf(&b, "  [%8.3fs] %-16s %s\n", e.At.Seconds(), e.Kind, e.Detail)
	}
	return b.String()
}

// ScenarioNames lists the scenarios runnable via RunScenario.
func ScenarioNames() []string {
	return []string{"benign", "bye", "fakeim", "hijack", "rtp", "rtp-crash", "flood", "guess", "billing", "rtcpbye",
		"inviteflood", "fragflood", "rtpblast", "optionsscan",
		"tcptrunk", "tcptrunk-split", "tcptrunk-coalesce", "tcptrunk-rst", "udptrunk",
		"evasion-rtptunnel", "evasion-rtptunnel-tcp", "evasion-sipinrtp", "evasion-sipinrtp-tcp",
		"evasion-torture", "evasion-torture-tcp",
		"coop-bye-split", "coop-reg-hijack", "coop-fakeim-split", "coop-benign"}
}

// RunScenario dispatches a named scenario, attaching taps (e.g. a capture
// writer) to the hub before any traffic flows.
func RunScenario(name string, seed int64, taps ...netsim.Tap) (Outcome, error) {
	switch name {
	case "benign":
		return RunBenign(seed, taps...)
	case "bye":
		return RunByeAttack(seed, core.Config{}, taps...)
	case "fakeim":
		return RunFakeIM(seed, taps...)
	case "hijack":
		return RunCallHijack(seed, taps...)
	case "rtp":
		return RunRTPAttack(seed, false, taps...)
	case "rtp-crash":
		return RunRTPAttack(seed, true, taps...)
	case "flood":
		return RunRegisterFlood(seed, taps...)
	case "guess":
		return RunPasswordGuess(seed, taps...)
	case "billing":
		return RunBillingFraud(seed, taps...)
	case "rtcpbye":
		return RunRTCPByeSpoof(seed, taps...)
	case "inviteflood":
		return RunInviteFlood(seed, core.Config{}, taps...)
	case "fragflood":
		return RunFragmentFlood(seed, core.Config{}, taps...)
	case "rtpblast":
		return RunRTPBlast(seed, core.Config{}, taps...)
	case "optionsscan":
		return RunOptionsScan(seed, taps...)
	case "tcptrunk":
		return RunTCPTrunk(seed, "whole", taps...)
	case "tcptrunk-split":
		return RunTCPTrunk(seed, "split", taps...)
	case "tcptrunk-coalesce":
		return RunTCPTrunk(seed, "coalesce", taps...)
	case "tcptrunk-rst":
		return RunTCPTrunk(seed, "rst", taps...)
	case "udptrunk":
		return RunTCPTrunk(seed, "udp", taps...)
	case "evasion-rtptunnel":
		return RunEvasion(seed, "rtptunnel", false, taps...)
	case "evasion-rtptunnel-tcp":
		return RunEvasion(seed, "rtptunnel", true, taps...)
	case "evasion-sipinrtp":
		return RunEvasion(seed, "sipinrtp", false, taps...)
	case "evasion-sipinrtp-tcp":
		return RunEvasion(seed, "sipinrtp", true, taps...)
	case "evasion-torture":
		return RunEvasion(seed, "torture", false, taps...)
	case "evasion-torture-tcp":
		return RunEvasion(seed, "torture", true, taps...)
	case "coop-bye-split":
		return coopOutcomeAsOutcome(RunCoopByeSplit(seed, taps...))
	case "coop-reg-hijack":
		return coopOutcomeAsOutcome(RunCoopRegHijack(seed, taps...))
	case "coop-fakeim-split":
		return coopOutcomeAsOutcome(RunCoopFakeIMSplit(seed, taps...))
	case "coop-benign":
		return coopOutcomeAsOutcome(RunCoopBenign(seed, taps...))
	default:
		return Outcome{}, fmt.Errorf("experiments: unknown scenario %q (have %v)", name, ScenarioNames())
	}
}

// RunRTCPByeSpoof runs the extension attack: a forged RTCP BYE silences
// the victim's stream while the SIP dialog stays up (three-protocol
// chain: SIP state x RTP media x RTCP control).
func RunRTCPByeSpoof(seed int64, taps ...netsim.Tap) (Outcome, error) {
	d, err := deploy(seed, scenario.Config{}, core.Config{}, taps...)
	if err != nil {
		return Outcome{}, err
	}
	if err := d.tb.RegisterAll(); err != nil {
		return Outcome{}, err
	}
	aliceCall, err := d.tb.EstablishCall()
	if err != nil {
		return Outcome{}, err
	}
	d.tb.Run(2 * time.Second)
	dlg := d.tb.Sniffer.ConfirmedDialog()
	if dlg == nil || dlg.CalleeSSRC == 0 {
		return Outcome{}, fmt.Errorf("experiments: sniffer lacks dialog/SSRC state")
	}
	var attackAt time.Duration
	d.tb.Sim.Schedule(0, func() {
		attackAt = d.tb.Sim.Now()
		_ = d.tb.Attacker.SpoofedRTCPBye(dlg, true)
	})
	d.tb.Run(2 * time.Second)
	// Probe: if alice's transmit counter is frozen while the dialog is
	// still confirmed, the attack silenced her.
	sentBefore := aliceCall.RTPSent
	d.tb.Run(time.Second)
	impact := "no impact"
	if aliceCall.Established() && aliceCall.RTPSent == sentBefore {
		impact = "victim silenced (media stopped, SIP dialog still up)"
	}
	return d.outcome("rtcp-bye-spoof", attackAt, impact), nil
}
