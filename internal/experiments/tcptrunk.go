package experiments

import (
	"fmt"
	"net/netip"
	"time"

	"scidive/internal/attack"
	"scidive/internal/core"
	"scidive/internal/netsim"
	"scidive/internal/rtp"
	"scidive/internal/scenario"
	"scidive/internal/sdp"
	"scidive/internal/sip"
)

// The TCP-trunk scenarios replay the paper's Figure 5 forged-BYE attack
// over a SIP trunk that signals over TCP while media stays on UDP/RTP —
// the deployment the stream-transport layer exists for. The dialog is
// fully scripted (no phone endpoints; the simulator has no TCP stack), so
// the same message exchange can be driven over TCP in several framings or
// over UDP, and the IDS must raise the same alerts regardless of
// transport:
//
//	whole     one SIP message per TCP segment
//	split     every message cut mid-header across two segments
//	coalesce  the 180 Ringing and 200 OK delivered in one segment
//	rst       the trunk connection RST mid-dialog and re-established
//	          before the attack
//	udp       the identical dialog as UDP datagrams (the equivalence
//	          baseline)
var (
	addrTrunkA = netip.MustParseAddr("10.0.0.21")
	addrTrunkB = netip.MustParseAddr("10.0.0.22")
)

// trunkWire abstracts how the scripted dialog's SIP messages reach the
// wire. Messages passed together in one call are a same-direction burst:
// the coalesce variant ships them in a single TCP segment.
type trunkWire struct {
	variant string // "whole", "split", "coalesce", "rst", "udp"
	flow    *netsim.TCPFlow
}

func (w *trunkWire) send(from *netsim.Host, to *netsim.Host, msgs ...*sip.Message) error {
	if w.variant == "udp" {
		for _, m := range msgs {
			dst := netip.AddrPortFrom(to.IP(), sip.DefaultPort)
			if err := from.SendUDP(sip.DefaultPort, dst, m.Marshal()); err != nil {
				return err
			}
		}
		return nil
	}
	switch w.variant {
	case "split":
		for _, m := range msgs {
			b := m.Marshal()
			cut := len(b) / 3 // lands mid-header: neither segment parses alone
			if err := w.flow.Send(from, b[:cut]); err != nil {
				return err
			}
			if err := w.flow.Send(from, b[cut:]); err != nil {
				return err
			}
		}
		return nil
	case "coalesce":
		var burst []byte
		for _, m := range msgs {
			burst = append(burst, m.Marshal()...)
		}
		return w.flow.Send(from, burst)
	default: // whole, rst
		for _, m := range msgs {
			if err := w.flow.Send(from, m.Marshal()); err != nil {
				return err
			}
		}
		return nil
	}
}

// RunTCPTrunk runs the scripted trunk dialog with the given SIP framing
// variant ("whole", "split", "coalesce", "rst", or "udp" for the
// datagram baseline) and reports whether the forged trunk BYE was
// detected.
func RunTCPTrunk(seed int64, variant string, taps ...netsim.Tap) (Outcome, error) {
	sim := netsim.NewSimulator(seed)
	net := netsim.NewNetwork(sim)
	pbxA := net.MustAddHost("pbx-a", addrTrunkA)
	pbxB := net.MustAddHost("pbx-b", addrTrunkB)
	atkHost := net.MustAddHost("attacker", scenario.AddrAttacker)
	atk, err := attack.NewAttacker(atkHost, net)
	if err != nil {
		return Outcome{}, err
	}
	eng := core.NewEngine(core.Config{})
	eng.AttachTap(net)
	for _, tap := range taps {
		net.AddTap(tap)
	}

	wire := &trunkWire{variant: variant}
	if variant != "udp" {
		wire.flow = netsim.NewTCPFlow(net, pbxA, sip.DefaultPort, pbxB, sip.DefaultPort)
	}

	mediaA := netip.AddrPortFrom(addrTrunkA, 41000)
	mediaB := netip.AddrPortFrom(addrTrunkB, 42000)
	from := sip.Address{URI: sip.URI{User: "alice", Host: "trunk"}}.WithTag("a-tag-1")
	to := sip.Address{URI: sip.URI{User: "bob", Host: "trunk"}}
	const callID = "trunk-call-1@trunk"
	via := func(ip netip.Addr) sip.Via {
		return sip.Via{Transport: "TCP", SentBy: ip.String()}
	}

	inv := sip.NewRequest(sip.RequestSpec{
		Method:     sip.MethodInvite,
		RequestURI: "sip:bob@trunk",
		From:       from, To: to,
		CallID:   callID,
		CSeq:     sip.CSeq{Seq: 1, Method: sip.MethodInvite},
		Via:      via(addrTrunkA),
		Body:     sdp.NewAudioSession("caller", mediaA.Addr(), mediaA.Port()).Marshal(),
		BodyType: "application/sdp",
	})
	ringing := sip.NewResponse(inv, sip.StatusRinging, "b-tag-1")
	ok200 := sip.NewResponse(inv, sip.StatusOK, "b-tag-1")
	ok200.Headers.Add(sip.HdrContentType, "application/sdp")
	ok200.Body = sdp.NewAudioSession("callee", mediaB.Addr(), mediaB.Port()).Marshal()
	ack := sip.NewRequest(sip.RequestSpec{
		Method:     sip.MethodAck,
		RequestURI: "sip:bob@trunk",
		From:       from, To: to.WithTag("b-tag-1"),
		CallID: callID,
		CSeq:   sip.CSeq{Seq: 1, Method: sip.MethodAck},
		Via:    via(addrTrunkA),
	})
	forgedBye := sip.NewRequest(sip.RequestSpec{
		Method:     sip.MethodBye,
		RequestURI: "sip:bob@trunk",
		From:       from, To: to.WithTag("b-tag-1"),
		CallID: callID,
		CSeq:   sip.CSeq{Seq: 2, Method: sip.MethodBye},
		Via:    via(addrTrunkA),
	})

	seqA, seqB := uint16(100), uint16(5000)
	rtpPkt := func(seq uint16, ssrc uint32) []byte {
		p := rtp.Packet{
			Header:  rtp.Header{PayloadType: rtp.PayloadTypePCMU, Seq: seq, Timestamp: uint32(sim.Now() / time.Millisecond), SSRC: ssrc},
			Payload: make([]byte, 160),
		}
		buf, err := p.Marshal()
		if err != nil {
			panic(err) // deterministic inputs; cannot fail
		}
		return buf
	}
	var scriptErr error
	step := func(fn func() error) func() {
		return func() {
			if err := fn(); err != nil && scriptErr == nil {
				scriptErr = err
			}
		}
	}

	if variant != "udp" {
		sim.Schedule(0, step(wire.flow.Open))
	}
	sim.Schedule(10*time.Millisecond, step(func() error { return wire.send(pbxA, pbxB, inv) }))
	// The callee's 180 and 200 are a same-direction burst: one segment in
	// the coalesce variant, separate sends otherwise.
	sim.Schedule(50*time.Millisecond, step(func() error { return wire.send(pbxB, pbxA, ringing, ok200) }))
	sim.Schedule(70*time.Millisecond, step(func() error { return wire.send(pbxA, pbxB, ack) }))
	// Two-way media.
	for i := 0; i < 25; i++ {
		at := 100*time.Millisecond + time.Duration(i)*20*time.Millisecond
		sim.Schedule(at, step(func() error {
			seqA++
			if err := pbxA.SendUDP(mediaA.Port(), mediaB, rtpPkt(seqA, 0xAAAA0001)); err != nil {
				return err
			}
			seqB++
			return pbxB.SendUDP(mediaB.Port(), mediaA, rtpPkt(seqB, 0xBBBB0001))
		}))
	}
	if variant == "rst" {
		// Mid-dialog the trunk connection aborts and is re-established:
		// the IDS must tear down stream state on the RST and adopt the
		// fresh connection, keeping the dialog's detection state.
		sim.Schedule(620*time.Millisecond, step(func() error { return wire.flow.Reset(pbxA) }))
		sim.Schedule(640*time.Millisecond, step(wire.flow.Open))
	}
	// The attack: a forged BYE continuing the caller's side of the trunk,
	// then media keeps flowing from the "hung-up" caller — Figure 5 over
	// a stream transport.
	sim.Schedule(700*time.Millisecond, step(func() error {
		payload := forgedBye.Marshal()
		if variant == "udp" {
			return atk.SendSpoofed(
				netip.AddrPortFrom(addrTrunkA, sip.DefaultPort),
				netip.AddrPortFrom(addrTrunkB, sip.DefaultPort), payload)
		}
		if err := atk.SendSpoofedTCP(
			netip.AddrPortFrom(addrTrunkA, sip.DefaultPort),
			netip.AddrPortFrom(addrTrunkB, sip.DefaultPort),
			wire.flow.Seq(pbxA), payload); err != nil {
			return err
		}
		wire.flow.SkipSeq(pbxA, len(payload))
		return nil
	}))
	attackAt := 700 * time.Millisecond
	for i := 0; i < 5; i++ {
		at := 720*time.Millisecond + time.Duration(i)*20*time.Millisecond
		sim.Schedule(at, step(func() error {
			seqA++
			return pbxA.SendUDP(mediaA.Port(), mediaB, rtpPkt(seqA, 0xAAAA0001))
		}))
	}
	sim.RunUntil(2 * time.Second)
	if scriptErr != nil {
		return Outcome{}, fmt.Errorf("experiments: tcp trunk script: %w", scriptErr)
	}

	name := "tcptrunk-" + variant
	o := Outcome{Name: name, Impact: "trunk peer tore down the dialog; caller media orphaned",
		Alerts: eng.Alerts(), Stats: eng.Stats(), Distill: eng.DistillerStats()}
	seen := map[string]bool{}
	for _, a := range o.Alerts {
		if a.At >= attackAt && !seen[a.Rule] {
			seen[a.Rule] = true
			o.RulesFired = append(o.RulesFired, a.Rule)
			if !o.Detected || a.At-attackAt < o.DetectDelay {
				o.Detected = true
				o.DetectDelay = a.At - attackAt
			}
		}
	}
	return o, nil
}
