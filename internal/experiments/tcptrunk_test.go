package experiments

import (
	"reflect"
	"testing"
)

// TestTrunkTransportEquivalence is the acceptance test for the stream
// transport layer: the identical forged-BYE dialog must produce the same
// detection outcome whether SIP rides UDP datagrams or a TCP stream, and
// regardless of how the stream slices messages into segments. The UDP
// run is the baseline; every TCP framing variant must match its fired
// rule set and detection delay.
func TestTrunkTransportEquivalence(t *testing.T) {
	base, err := RunTCPTrunk(7, "udp")
	if err != nil {
		t.Fatalf("udp baseline: %v", err)
	}
	if !base.Detected {
		t.Fatalf("udp baseline did not detect the forged BYE: %+v", base)
	}
	if len(base.RulesFired) == 0 {
		t.Fatal("udp baseline fired no rules")
	}
	for _, variant := range []string{"whole", "split", "coalesce", "rst"} {
		o, err := RunTCPTrunk(7, variant)
		if err != nil {
			t.Fatalf("%s: %v", variant, err)
		}
		if !o.Detected {
			t.Errorf("%s: forged BYE over TCP not detected", variant)
			continue
		}
		if !reflect.DeepEqual(o.RulesFired, base.RulesFired) {
			t.Errorf("%s: rules fired %v over TCP, want %v as over UDP",
				variant, o.RulesFired, base.RulesFired)
		}
		if o.DetectDelay != base.DetectDelay {
			t.Errorf("%s: detection delay %v over TCP, want %v as over UDP",
				variant, o.DetectDelay, base.DetectDelay)
		}
		if len(o.Alerts) != len(base.Alerts) {
			t.Errorf("%s: %d alerts over TCP, want %d as over UDP",
				variant, len(o.Alerts), len(base.Alerts))
		}
	}
}

// TestTrunkBenignPrefixIsClean confirms the scripted dialog itself is
// unremarkable: every alert the scenarios raise comes at or after the
// forged BYE, so the stream framing (splits, coalescing, even the RST
// and reconnect) introduces no false positives.
func TestTrunkBenignPrefixIsClean(t *testing.T) {
	for _, variant := range []string{"whole", "split", "coalesce", "rst", "udp"} {
		o, err := RunTCPTrunk(7, variant)
		if err != nil {
			t.Fatalf("%s: %v", variant, err)
		}
		for _, a := range o.Alerts {
			if a.At < 700e6 { // attack is scheduled at 700ms
				t.Errorf("%s: alert %q at %v precedes the attack", variant, a.Rule, a.At)
			}
		}
	}
}
