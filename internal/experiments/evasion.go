package experiments

import (
	"fmt"
	"net/netip"
	"time"

	"scidive/internal/attack"
	"scidive/internal/core"
	"scidive/internal/netsim"
	"scidive/internal/rtp"
	"scidive/internal/scenario"
	"scidive/internal/sdp"
	"scidive/internal/sip"
)

// The evasion scenarios attack the classifier itself: traffic shaped so
// a port-only protocol classifier files it under the wrong decoder and
// the rules that would match it never see it. Each runs over a scripted
// trunk dialog (the tcptrunk.go deployment) in both transports, and the
// IDS's content-confirmed classification must raise protocol-mismatch /
// evasion-suspect self-alerts identically on the serial and sharded
// engines:
//
//	rtptunnel  RTP media sent at the SIP signaling port (UDP datagrams,
//	           or injected into the TCP trunk stream) — the media flow a
//	           port-only classifier would hand to the SIP parser and drop
//	sipinrtp   a forged BYE smuggled as the payload of well-formed RTP
//	           packets on the media path — the outer header decodes
//	           cleanly, so only payload inspection sees the signaling
//	torture    the RFC 4475-style torture corpus (internal/sip) fired at
//	           the signaling port AND at the media port — hostile input
//	           the pipeline must classify, account, and survive exactly

// RunEvasion runs one evasion scenario. kind selects the attack family
// ("rtptunnel", "sipinrtp", "torture"); stream selects the trunk's
// signaling transport (true = TCP with the evasion payloads injected
// into the stream, false = UDP datagrams).
func RunEvasion(seed int64, kind string, stream bool, taps ...netsim.Tap) (Outcome, error) {
	sim := netsim.NewSimulator(seed)
	net := netsim.NewNetwork(sim)
	pbxA := net.MustAddHost("pbx-a", addrTrunkA)
	pbxB := net.MustAddHost("pbx-b", addrTrunkB)
	atkHost := net.MustAddHost("attacker", scenario.AddrAttacker)
	atk, err := attack.NewAttacker(atkHost, net)
	if err != nil {
		return Outcome{}, err
	}
	eng := core.NewEngine(core.Config{})
	eng.AttachTap(net)
	for _, tap := range taps {
		net.AddTap(tap)
	}

	wire := &trunkWire{variant: "udp"}
	if stream {
		wire.variant = "whole"
		wire.flow = netsim.NewTCPFlow(net, pbxA, sip.DefaultPort, pbxB, sip.DefaultPort)
	}
	sigA := netip.AddrPortFrom(addrTrunkA, sip.DefaultPort)
	sigB := netip.AddrPortFrom(addrTrunkB, sip.DefaultPort)
	mediaA := netip.AddrPortFrom(addrTrunkA, 41000)
	mediaB := netip.AddrPortFrom(addrTrunkB, 42000)
	from := sip.Address{URI: sip.URI{User: "alice", Host: "trunk"}}.WithTag("a-tag-1")
	to := sip.Address{URI: sip.URI{User: "bob", Host: "trunk"}}
	const callID = "evasion-call-1@trunk"
	via := sip.Via{Transport: "TCP", SentBy: addrTrunkA.String()}

	inv := sip.NewRequest(sip.RequestSpec{
		Method:     sip.MethodInvite,
		RequestURI: "sip:bob@trunk",
		From:       from, To: to,
		CallID:   callID,
		CSeq:     sip.CSeq{Seq: 1, Method: sip.MethodInvite},
		Via:      via,
		Body:     sdp.NewAudioSession("caller", mediaA.Addr(), mediaA.Port()).Marshal(),
		BodyType: "application/sdp",
	})
	ringing := sip.NewResponse(inv, sip.StatusRinging, "b-tag-1")
	ok200 := sip.NewResponse(inv, sip.StatusOK, "b-tag-1")
	ok200.Headers.Add(sip.HdrContentType, "application/sdp")
	ok200.Body = sdp.NewAudioSession("callee", mediaB.Addr(), mediaB.Port()).Marshal()
	ack := sip.NewRequest(sip.RequestSpec{
		Method:     sip.MethodAck,
		RequestURI: "sip:bob@trunk",
		From:       from, To: to.WithTag("b-tag-1"),
		CallID: callID,
		CSeq:   sip.CSeq{Seq: 1, Method: sip.MethodAck},
		Via:    via,
	})
	// The signaling a sipinrtp attacker smuggles: an in-dialog BYE the
	// monitor must never see as SIP.
	smuggledBye := sip.NewRequest(sip.RequestSpec{
		Method:     sip.MethodBye,
		RequestURI: "sip:bob@trunk",
		From:       from, To: to.WithTag("b-tag-1"),
		CallID: callID,
		CSeq:   sip.CSeq{Seq: 2, Method: sip.MethodBye},
		Via:    via,
	}).Marshal()

	seqA, seqB := uint16(100), uint16(5000)
	rtpPkt := func(seq uint16, ssrc uint32) []byte {
		p := rtp.Packet{
			Header:  rtp.Header{PayloadType: rtp.PayloadTypePCMU, Seq: seq, Timestamp: uint32(sim.Now() / time.Millisecond), SSRC: ssrc},
			Payload: make([]byte, 160),
		}
		buf, err := p.Marshal()
		if err != nil {
			panic(err) // deterministic inputs; cannot fail
		}
		return buf
	}
	var scriptErr error
	step := func(fn func() error) func() {
		return func() {
			if err := fn(); err != nil && scriptErr == nil {
				scriptErr = err
			}
		}
	}
	// inject places attacker bytes on the signaling path: spoofed UDP
	// datagrams at the trunk's SIP port, or spoofed in-sequence TCP
	// segments continuing the caller's side of the stream.
	inject := func(payload []byte) error {
		if !stream {
			return atk.SendSpoofed(sigA, sigB, payload)
		}
		if err := atk.SendSpoofedTCP(sigA, sigB, wire.flow.Seq(pbxA), payload); err != nil {
			return err
		}
		wire.flow.SkipSeq(pbxA, len(payload))
		return nil
	}

	if stream {
		sim.Schedule(0, step(wire.flow.Open))
	}
	sim.Schedule(10*time.Millisecond, step(func() error { return wire.send(pbxA, pbxB, inv) }))
	sim.Schedule(50*time.Millisecond, step(func() error { return wire.send(pbxB, pbxA, ringing, ok200) }))
	sim.Schedule(70*time.Millisecond, step(func() error { return wire.send(pbxA, pbxB, ack) }))
	// Two-way media establishes the legitimate flows the evasion traffic
	// hides amongst.
	for i := 0; i < 25; i++ {
		at := 100*time.Millisecond + time.Duration(i)*20*time.Millisecond
		sim.Schedule(at, step(func() error {
			seqA++
			if err := pbxA.SendUDP(mediaA.Port(), mediaB, rtpPkt(seqA, 0xAAAA0001)); err != nil {
				return err
			}
			seqB++
			return pbxB.SendUDP(mediaB.Port(), mediaA, rtpPkt(seqB, 0xBBBB0001))
		}))
	}

	const attackAt = 700 * time.Millisecond
	var impact string
	switch kind {
	case "rtptunnel":
		// Six RTP packets on the signaling path: datagrams at port 5060, or
		// in-sequence segments on the TCP trunk the framer would otherwise
		// swallow as garbled SIP.
		for i := 0; i < 6; i++ {
			seq := uint16(9000 + i)
			at := attackAt + time.Duration(i)*20*time.Millisecond
			sim.Schedule(at, step(func() error {
				return inject(attack.TunnelRTPPacket(seq, sim.Now(), 0xDEAD0001, 160))
			}))
		}
		impact = "covert media rode the signaling port past a port-only classifier"
	case "sipinrtp":
		// Three well-formed RTP packets on the media path, each carrying the
		// smuggled BYE as its payload. Over the TCP trunk the same wrapped
		// packets are injected into the signaling stream.
		for i := 0; i < 3; i++ {
			seq := uint16(9100 + i)
			at := attackAt + time.Duration(i)*20*time.Millisecond
			if stream {
				sim.Schedule(at, step(func() error {
					buf, err := attack.SmuggledSIPInRTP(seq, sim.Now(), 0xBEEF0001, smuggledBye)
					if err != nil {
						return err
					}
					return inject(buf)
				}))
			} else {
				sim.Schedule(at, step(func() error {
					return atk.SmuggleSIPInRTP(mediaA, mediaB, seq, 0xBEEF0001, smuggledBye)
				}))
			}
		}
		impact = "signaling smuggled inside RTP payloads dodged the signaling monitor"
	case "torture":
		// The full torture corpus at the signaling path, then the same
		// corpus at the media port — hostile signaling aimed wherever a
		// port-only classifier least expects it.
		corpus := sip.TortureCorpus()
		for i, e := range corpus {
			raw := e.Raw
			at := attackAt + time.Duration(i)*10*time.Millisecond
			sim.Schedule(at, step(func() error { return inject(raw) }))
		}
		mediaAt := attackAt + time.Duration(len(corpus))*10*time.Millisecond
		sim.Schedule(mediaAt, step(func() error {
			raws := make([][]byte, len(corpus))
			for i, e := range corpus {
				raws[i] = e.Raw
			}
			return atk.TortureReplay(mediaA, mediaB, raws)
		}))
		impact = "torture corpus replayed at signaling and media ports; pipeline survived"
	default:
		return Outcome{}, fmt.Errorf("experiments: unknown evasion kind %q", kind)
	}

	sim.RunUntil(2 * time.Second)
	if scriptErr != nil {
		return Outcome{}, fmt.Errorf("experiments: evasion script: %w", scriptErr)
	}

	name := "evasion-" + kind
	if stream {
		name += "-tcp"
	}
	o := Outcome{Name: name, Impact: impact, Alerts: eng.Alerts(), Stats: eng.Stats(), Distill: eng.DistillerStats()}
	seen := map[string]bool{}
	for _, a := range o.Alerts {
		if a.At >= attackAt && !seen[a.Rule] {
			seen[a.Rule] = true
			o.RulesFired = append(o.RulesFired, a.Rule)
			if !o.Detected || a.At-attackAt < o.DetectDelay {
				o.Detected = true
				o.DetectDelay = a.At - attackAt
			}
		}
	}
	return o, nil
}
