package experiments

import (
	"fmt"
	"time"

	"scidive/internal/core"
	"scidive/internal/netsim"
	"scidive/internal/scenario"
)

// WireDelayResult is a wire-level measurement of BYE-attack detection
// delay, the empirical counterpart of the Section 4.3 model.
type WireDelayResult struct {
	Runs     int
	Detected int
	Mean     time.Duration
	Min      time.Duration
	Max      time.Duration
}

// String formats the result.
func (r WireDelayResult) String() string {
	return fmt.Sprintf("runs=%d detected=%d mean=%.2fms min=%.2fms max=%.2fms",
		r.Runs, r.Detected, r.Mean.Seconds()*1000, r.Min.Seconds()*1000, r.Max.Seconds()*1000)
}

// MeasureWireByeDelay runs the BYE attack n times with different seeds on
// links with the given characteristics and measures detection delay on
// the wire (alert timestamp minus attack launch). Across seeds the attack
// lands at varying phases of the 20 ms RTP cycle, so the sample
// approximates the model's uniform Gsip; with symmetric link delays the
// model predicts a mean of ≈ half the RTP period.
func MeasureWireByeDelay(n int, link *netsim.Link) (WireDelayResult, error) {
	res := WireDelayResult{Runs: n, Min: time.Hour}
	var sum time.Duration
	for i := 0; i < n; i++ {
		cfg := core.Config{}
		o, err := runByeWithLink(int64(i+1), cfg, link)
		if err != nil {
			return res, err
		}
		if !o.Detected {
			continue
		}
		res.Detected++
		sum += o.DetectDelay
		if o.DetectDelay < res.Min {
			res.Min = o.DetectDelay
		}
		if o.DetectDelay > res.Max {
			res.Max = o.DetectDelay
		}
	}
	if res.Detected > 0 {
		res.Mean = sum / time.Duration(res.Detected)
	}
	return res, nil
}

// runByeWithLink is RunByeAttack with custom client link characteristics
// and a randomized attack phase within one RTP period.
func runByeWithLink(seed int64, ecfg core.Config, link *netsim.Link) (Outcome, error) {
	d, err := deploy(seed, scenario.Config{Link: link}, ecfg)
	if err != nil {
		return Outcome{}, err
	}
	if err := d.tb.RegisterAll(); err != nil {
		return Outcome{}, err
	}
	if _, err := d.tb.EstablishCall(); err != nil {
		return Outcome{}, err
	}
	d.tb.Run(2 * time.Second)
	dlg := d.tb.Sniffer.ConfirmedDialog()
	if dlg == nil {
		return Outcome{}, fmt.Errorf("experiments: sniffer learned no dialog")
	}
	// Launch at a random phase within the RTP period, matching the
	// model's Gsip ~ U(0, 20ms).
	phase := time.Duration(d.tb.Sim.Rand().Int63n(int64(20 * time.Millisecond)))
	var attackAt time.Duration
	d.tb.Sim.Schedule(phase, func() {
		attackAt = d.tb.Sim.Now()
		_ = d.tb.Attacker.ForgedBye(dlg, true)
	})
	d.tb.Run(3 * time.Second)
	return d.outcome("bye-attack-wire", attackAt, ""), nil
}
