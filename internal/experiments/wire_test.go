package experiments

import (
	"testing"
	"time"

	"scidive/internal/netsim"
)

func TestWireDelayMatchesModelPrediction(t *testing.T) {
	// Symmetric links: the Section 4.3 model predicts mean detection delay
	// ≈ RTPperiod/2 = 10 ms (network delay terms cancel in expectation
	// when Nrtp and Nsip are identically distributed).
	res, err := MeasureWireByeDelay(30, nil) // default 0.5 ms LAN links
	if err != nil {
		t.Fatal(err)
	}
	if res.Detected != res.Runs {
		t.Fatalf("detected %d of %d wire runs", res.Detected, res.Runs)
	}
	if res.Mean < 6*time.Millisecond || res.Mean > 14*time.Millisecond {
		t.Errorf("wire mean delay = %v, model predicts ≈10ms", res.Mean)
	}
	// No single detection should exceed one RTP period plus network slack.
	if res.Max > 25*time.Millisecond {
		t.Errorf("wire max delay = %v", res.Max)
	}
}

func TestWireDelayGrowsWithRTPPathDelay(t *testing.T) {
	// Slower client links increase the RTP packet's transit (Nrtp) while
	// the attacker's BYE keeps its fast path — wait: the forged BYE also
	// traverses the victim's downlink, but the orphan RTP crosses two slow
	// client links vs the BYE's one. Net effect: mean delay grows.
	fast, err := MeasureWireByeDelay(15, nil)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := MeasureWireByeDelay(15, &netsim.Link{
		Delay: netsim.Deterministic{D: 8 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if slow.Detected != slow.Runs {
		t.Fatalf("slow-link runs detected %d of %d", slow.Detected, slow.Runs)
	}
	if slow.Mean <= fast.Mean {
		t.Errorf("slow-link mean %v not above fast-link mean %v", slow.Mean, fast.Mean)
	}
}
