package sip

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"sync"
)

// This file is the allocation-lean SIP parser behind ParseMessage. The
// naive parser materialized a [][]byte line list, converted every header
// line to a fresh string, and grew the header slice from nil on every
// message; on the detection hot path that churn dominated per-frame cost
// (the sipgo parser demonstrates the pooled-parser idiom this follows).
// A Parser walks the raw bytes line by line, keeps header names and
// values as byte-slice views until the moment they are stored, interns
// the values that repeat across messages of a dialog (Call-ID, From/To
// with tags, URIs, CSeq), and can parse into a caller-owned Message so
// a router that only peeks at a message reuses one Message's storage
// forever.

// parserInternCap bounds a Parser's intern table. When the table fills
// (an adversary cycling unique values), it is cleared and re-warms; a
// cleared table only costs fresh string copies, never correctness.
const parserInternCap = 4096

// sepCRLFCRLF and sepLFLF are the header/body separators.
var (
	sepCRLFCRLF = []byte("\r\n\r\n")
	sepLFLF     = []byte("\n\n")
	sipVersion  = []byte("SIP/2.0")
	respPrefix  = []byte("SIP/2.0 ")
)

// Parser is a reusable SIP message parser. It is not safe for concurrent
// use; either own one per goroutine (a Distiller owns one) or borrow from
// the package pool via AcquireParser/ReleaseParser. The zero value is
// ready to use.
type Parser struct {
	intern map[string]string
	fold   []byte // scratch for unfolding header continuation lines
}

// NewParser returns a Parser with a warm-ready intern table.
func NewParser() *Parser {
	return &Parser{intern: make(map[string]string, 64)}
}

var parserPool = sync.Pool{New: func() any { return NewParser() }}

// AcquireParser borrows a Parser from the package pool.
func AcquireParser() *Parser { return parserPool.Get().(*Parser) }

// ReleaseParser returns a Parser to the package pool. The parser's intern
// table survives, which is the point: values that repeat across messages
// (Call-ID, URIs, tags) are shared instead of re-copied.
func ReleaseParser(p *Parser) { parserPool.Put(p) }

// str interns b: repeated values return the same string with no copy.
func (p *Parser) str(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if p.intern == nil {
		p.intern = make(map[string]string, 64)
	}
	if s, ok := p.intern[string(b)]; ok { // no-alloc map lookup
		return s
	}
	if len(p.intern) >= parserInternCap {
		clear(p.intern)
	}
	s := string(b)
	p.intern[s] = s
	return s
}

// canonName canonicalizes a header name held as bytes, allocation-free
// for every spelling in the canonNames table.
func (p *Parser) canonName(b []byte) string {
	if full, ok := canonNames[string(b)]; ok { // no-alloc map lookup
		return full
	}
	return CanonicalHeaderName(p.str(b))
}

// Parse parses a SIP message into a freshly allocated Message the caller
// owns and may retain indefinitely. Unlike the raw input, nothing in the
// returned Message aliases raw: the body is copied and header values are
// interned copies. Semantics (accepted inputs, field values, error text)
// are identical to the historical ParseMessage.
func (p *Parser) Parse(raw []byte) (*Message, error) {
	m := &Message{}
	m.Headers.fields = make([]headerField, 0, 12)
	if err := p.parse(raw, m, true); err != nil {
		return nil, err
	}
	return m, nil
}

// ParseInto parses a SIP message into m, reusing m's header storage.
// The body ALIASES raw — the caller must not retain m.Body past raw's
// lifetime, and must not retain m itself across the next ParseInto. This
// is the zero-steady-state-allocation form for callers that only inspect
// a message and move on (the sharded router's classify pass).
func (p *Parser) ParseInto(raw []byte, m *Message) error {
	return p.parse(raw, m, false)
}

func (p *Parser) parse(raw []byte, m *Message, copyBody bool) error {
	m.Method, m.RequestURI = "", ""
	m.StatusCode, m.ReasonPhrase = 0, ""
	m.Headers.fields = m.Headers.fields[:0]
	m.Body = nil

	headerEnd := bytes.Index(raw, sepCRLFCRLF)
	sepLen := 4
	if headerEnd < 0 {
		headerEnd = bytes.Index(raw, sepLFLF)
		sepLen = 2
	}
	var head, body []byte
	if headerEnd < 0 {
		head = raw
	} else {
		head = raw[:headerEnd]
		body = raw[headerEnd+sepLen:]
	}
	if len(head) == 0 {
		return fmt.Errorf("sip: empty message")
	}
	// Start line.
	first, rest := nextLine(head)
	if len(bytes.TrimSpace(first)) == 0 {
		return fmt.Errorf("sip: empty message")
	}
	if err := p.parseStartLineBytes(m, first); err != nil {
		return err
	}
	// Header lines, unfolding continuations.
	var nameB, valueB []byte
	havePending, folded := false, false
	for len(rest) > 0 {
		var line []byte
		line, rest = nextLine(rest)
		if len(line) == 0 {
			continue
		}
		if line[0] == ' ' || line[0] == '\t' {
			if !havePending {
				return fmt.Errorf("sip: continuation line %q without preceding header", line)
			}
			if !folded {
				p.fold = append(p.fold[:0], valueB...)
				folded = true
			}
			p.fold = append(p.fold, ' ')
			p.fold = append(p.fold, bytes.TrimSpace(line)...)
			valueB = p.fold
			continue
		}
		if havePending {
			p.addHeader(&m.Headers, nameB, valueB)
		}
		colon := bytes.IndexByte(line, ':')
		if colon <= 0 {
			return fmt.Errorf("sip: malformed header line %q", line)
		}
		nameB, valueB = line[:colon], line[colon+1:]
		havePending, folded = true, false
	}
	if havePending {
		p.addHeader(&m.Headers, nameB, valueB)
	}
	if clv := m.Headers.Get(HdrContentLength); clv != "" {
		cl, err := strconv.Atoi(strings.TrimSpace(clv))
		if err != nil || cl < 0 {
			return fmt.Errorf("sip: bad Content-Length %q", clv)
		}
		if cl > len(body) {
			return fmt.Errorf("sip: Content-Length %d exceeds body of %d bytes", cl, len(body))
		}
		body = body[:cl]
	}
	if copyBody && body != nil {
		m.Body = append(make([]byte, 0, len(body)), body...)
	} else {
		m.Body = body
	}
	return validateMandatory(m)
}

// addHeader stores one unfolded header line. Values of headers that are
// unique per message by construction (Via branches, auth nonces) are
// copied fresh; everything else is interned because dialogs repeat them.
func (p *Parser) addHeader(h *Headers, nameB, valueB []byte) {
	name := p.canonName(nameB)
	trimmed := bytes.TrimSpace(valueB)
	var value string
	switch name {
	case HdrVia, HdrAuthorization, HdrWWWAuth:
		value = string(trimmed)
	default:
		value = p.str(trimmed)
	}
	h.fields = append(h.fields, headerField{name: name, value: value})
}

// nextLine cuts the first line (CRLF or LF terminated, terminator and
// trailing CR stripped) off b.
func nextLine(b []byte) (line, rest []byte) {
	i := bytes.IndexByte(b, '\n')
	if i < 0 {
		return b, nil
	}
	line = b[:i]
	if n := len(line); n > 0 && line[n-1] == '\r' {
		line = line[:n-1]
	}
	return line, b[i+1:]
}

// parseStartLineBytes is parseStartLine operating on a byte view.
func (p *Parser) parseStartLineBytes(m *Message, line []byte) error {
	if bytes.HasPrefix(line, respPrefix) {
		rest := line[len(respPrefix):]
		sp := bytes.IndexByte(rest, ' ')
		codeB, reasonB := rest, []byte(nil)
		if sp >= 0 {
			codeB, reasonB = rest[:sp], rest[sp+1:]
		}
		code, err := atoiBytes(codeB)
		if err != nil || code < 100 || code > 699 {
			return fmt.Errorf("sip: bad status code %q", codeB)
		}
		m.StatusCode = code
		m.ReasonPhrase = p.str(reasonB)
		return nil
	}
	// Request line: METHOD SP Request-URI SP SIP/2.0 (the historical
	// SplitN(line, " ", 3) shape: exactly two separating spaces).
	i1 := bytes.IndexByte(line, ' ')
	if i1 < 0 {
		return fmt.Errorf("sip: bad start line %q", line)
	}
	rest := line[i1+1:]
	i2 := bytes.IndexByte(rest, ' ')
	if i2 < 0 {
		return fmt.Errorf("sip: bad start line %q", line)
	}
	f0, f1, f2 := line[:i1], rest[:i2], rest[i2+1:]
	if !bytes.Equal(f2, sipVersion) {
		return fmt.Errorf("sip: bad start line %q", line)
	}
	if len(f0) == 0 || len(f1) == 0 {
		return fmt.Errorf("sip: bad start line %q", line)
	}
	if !isTokenBytes(f0) {
		return fmt.Errorf("sip: method %q is not a valid token", f0)
	}
	m.Method = Method(p.str(f0))
	m.RequestURI = p.str(f1)
	return nil
}

// atoiBytes is strconv.Atoi for a byte view, matching its accept set for
// the 3-digit status codes SIP uses (sign included for error parity).
func atoiBytes(b []byte) (int, error) {
	if len(b) == 0 {
		return 0, strconv.ErrSyntax
	}
	i, neg := 0, false
	if b[0] == '+' || b[0] == '-' {
		neg = b[0] == '-'
		i++
		if len(b) == 1 {
			return 0, strconv.ErrSyntax
		}
	}
	n := 0
	for ; i < len(b); i++ {
		c := b[i]
		if c < '0' || c > '9' {
			return 0, strconv.ErrSyntax
		}
		n = n*10 + int(c-'0')
		if n > 1<<30 {
			return 0, strconv.ErrRange
		}
	}
	if neg {
		n = -n
	}
	return n, nil
}

// isTokenBytes is isToken for a byte view.
func isTokenBytes(s []byte) bool {
	if len(s) == 0 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case strings.IndexByte("-.!%*_+`'~", c) >= 0:
		default:
			return false
		}
	}
	return true
}
