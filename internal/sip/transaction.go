package sip

import (
	"net/netip"
	"time"
)

// Clock abstracts the virtual clock the transaction timers run on.
// netsim.Simulator satisfies it.
type Clock interface {
	Now() time.Duration
	Schedule(delay time.Duration, fn func())
}

// SendFunc transmits a message to a destination. The transaction layer
// calls it for initial sends and retransmissions.
type SendFunc func(dst netip.AddrPort, msg *Message)

// RFC 3261 timer values.
const (
	TimerT1 = 500 * time.Millisecond // RTT estimate
	TimerT2 = 4 * time.Second        // maximum retransmit interval
	// TimerB/F fire after 64*T1 and terminate the transaction.
	timerBMultiple = 64
)

// TxState is the state of a transaction.
type TxState int

// Transaction states (simplified superset of the RFC 3261 machines).
const (
	TxCalling TxState = iota + 1
	TxProceeding
	TxCompleted
	TxTerminated
)

// String returns the state name.
func (s TxState) String() string {
	switch s {
	case TxCalling:
		return "calling"
	case TxProceeding:
		return "proceeding"
	case TxCompleted:
		return "completed"
	case TxTerminated:
		return "terminated"
	default:
		return "unknown"
	}
}

// ClientTx is a client transaction: one request awaiting responses, with
// retransmission over the unreliable UDP transport.
type ClientTx struct {
	Request *Message
	Dst     netip.AddrPort

	layer      *TxLayer
	key        string
	state      TxState
	interval   time.Duration
	deadline   time.Duration
	onResponse func(*Message)
	onTimeout  func()
	isInvite   bool
}

// State returns the transaction state.
func (tx *ClientTx) State() TxState { return tx.state }

// ServerTx is a server transaction: absorbs request retransmissions and
// replays the last response.
type ServerTx struct {
	Request *Message
	Src     netip.AddrPort

	layer    *TxLayer
	key      string
	state    TxState
	lastResp *Message
}

// State returns the transaction state.
func (tx *ServerTx) State() TxState { return tx.state }

// Respond sends a response through the server transaction, remembering
// final responses for retransmission replay.
func (tx *ServerTx) Respond(resp *Message) {
	tx.lastResp = resp
	if resp.StatusCode >= 200 {
		tx.state = TxCompleted
		// Linger briefly to absorb retransmissions, then terminate.
		tx.layer.clock.Schedule(timerBMultiple*TimerT1, func() {
			tx.state = TxTerminated
			delete(tx.layer.server, tx.key)
		})
	} else {
		tx.state = TxProceeding
	}
	tx.layer.send(tx.Src, resp)
}

// RequestHandler receives new (non-retransmitted) requests.
type RequestHandler func(tx *ServerTx, req *Message)

// TxLayer manages client and server transactions over one transport.
type TxLayer struct {
	clock     Clock
	send      SendFunc
	client    map[string]*ClientTx
	server    map[string]*ServerTx
	onRequest RequestHandler

	// Stats
	Retransmits int
	Timeouts    int
}

// NewTxLayer creates a transaction layer sending through send and timing
// against clock.
func NewTxLayer(clock Clock, send SendFunc) *TxLayer {
	return &TxLayer{
		clock:  clock,
		send:   send,
		client: make(map[string]*ClientTx),
		server: make(map[string]*ServerTx),
	}
}

// OnRequest registers the handler invoked for each new incoming request.
func (t *TxLayer) OnRequest(fn RequestHandler) { t.onRequest = fn }

// txKey builds the RFC 3261 17.1.3/17.2.3 matching key: top Via branch
// plus CSeq method (so ACK and CANCEL match their INVITE separately).
func txKey(m *Message) string {
	via, err := m.TopVia()
	if err != nil {
		return ""
	}
	method := string(m.Method)
	if m.IsResponse() {
		if cseq, err := m.CSeq(); err == nil {
			method = string(cseq.Method)
		}
	}
	return via.Branch() + "|" + method
}

// Request starts a client transaction for req towards dst. onResponse is
// called for every response (provisional and final); onTimeout fires if
// no response arrives within 64*T1. Either callback may be nil.
func (t *TxLayer) Request(dst netip.AddrPort, req *Message, onResponse func(*Message), onTimeout func()) *ClientTx {
	tx := &ClientTx{
		Request:    req,
		Dst:        dst,
		layer:      t,
		key:        txKey(req),
		state:      TxCalling,
		interval:   TimerT1,
		deadline:   t.clock.Now() + timerBMultiple*TimerT1,
		onResponse: onResponse,
		onTimeout:  onTimeout,
		isInvite:   req.Method == MethodInvite,
	}
	t.client[tx.key] = tx
	t.send(dst, req)
	if req.Method != MethodAck { // ACK is fire-and-forget
		t.scheduleRetransmit(tx)
		// Timer B/F: terminate the transaction 64*T1 after the first send,
		// independently of the retransmission schedule.
		t.clock.Schedule(timerBMultiple*TimerT1, func() {
			if tx.state != TxCalling {
				return
			}
			tx.state = TxTerminated
			delete(t.client, tx.key)
			t.Timeouts++
			if tx.onTimeout != nil {
				tx.onTimeout()
			}
		})
	}
	return tx
}

func (t *TxLayer) scheduleRetransmit(tx *ClientTx) {
	interval := tx.interval
	t.clock.Schedule(interval, func() {
		if tx.state != TxCalling || t.clock.Now() >= tx.deadline {
			return
		}
		t.Retransmits++
		t.send(tx.Dst, tx.Request)
		tx.interval *= 2
		if !tx.isInvite && tx.interval > TimerT2 {
			tx.interval = TimerT2
		}
		t.scheduleRetransmit(tx)
	})
}

// HandleMessage feeds an incoming message into the layer. Responses are
// dispatched to their client transaction; requests are deduplicated and
// delivered to the request handler. It returns false for messages that
// matched nothing (e.g. a stray response).
func (t *TxLayer) HandleMessage(src netip.AddrPort, m *Message) bool {
	key := txKey(m)
	if m.IsResponse() {
		tx, ok := t.client[key]
		if !ok {
			return false
		}
		switch {
		case m.StatusCode < 200:
			tx.state = TxProceeding
		default:
			tx.state = TxCompleted
			delete(t.client, key)
		}
		if tx.onResponse != nil {
			tx.onResponse(m)
		}
		return true
	}
	// Request path. ACK completes a server INVITE transaction silently:
	// per RFC 3261 17.2.3 it matches the INVITE transaction by branch.
	if m.Method == MethodAck {
		if via, err := m.TopVia(); err == nil {
			key = via.Branch() + "|" + string(MethodInvite)
		}
		if tx, ok := t.server[key]; ok {
			tx.state = TxTerminated
			delete(t.server, key)
		}
		// ACKs for 200 OK have a new branch and are passed to the app.
		if t.onRequest != nil {
			t.onRequest(&ServerTx{Request: m, Src: src, layer: t, state: TxTerminated}, m)
		}
		return true
	}
	if tx, ok := t.server[key]; ok {
		// Retransmission: replay the last response if we have one.
		if tx.lastResp != nil {
			t.send(tx.Src, tx.lastResp)
		}
		return true
	}
	tx := &ServerTx{Request: m, Src: src, layer: t, key: key, state: TxProceeding}
	t.server[key] = tx
	if t.onRequest != nil {
		t.onRequest(tx, m)
	}
	return true
}

// ActiveClient returns the number of live client transactions.
func (t *TxLayer) ActiveClient() int { return len(t.client) }

// ActiveServer returns the number of live server transactions.
func (t *TxLayer) ActiveServer() int { return len(t.server) }
