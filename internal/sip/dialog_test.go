package sip

import (
	"math/rand"
	"testing"
)

func TestDialogLifecycleUAC(t *testing.T) {
	invite := sampleInvite()
	ringing := NewResponse(invite, StatusRinging, "remote1")
	d, err := NewDialogUAC(invite, ringing)
	if err != nil {
		t.Fatalf("NewDialogUAC: %v", err)
	}
	if d.State != DialogEarly {
		t.Errorf("state after 180 = %v, want early", d.State)
	}
	if d.ID.LocalTag != "fromtag" || d.ID.RemoteTag != "remote1" {
		t.Errorf("tags = %+v", d.ID)
	}
	ok := NewResponse(invite, StatusOK, "remote1")
	d2, err := NewDialogUAC(invite, ok)
	if err != nil {
		t.Fatalf("NewDialogUAC(200): %v", err)
	}
	if d2.State != DialogConfirmed {
		t.Errorf("state after 200 = %v, want confirmed", d2.State)
	}
	d2.Terminate()
	if d2.State != DialogTerminated {
		t.Errorf("state after Terminate = %v", d2.State)
	}
}

func TestDialogLifecycleUAS(t *testing.T) {
	invite := sampleInvite()
	d, err := NewDialogUAS(invite, "localtag9")
	if err != nil {
		t.Fatalf("NewDialogUAS: %v", err)
	}
	if d.ID.LocalTag != "localtag9" || d.ID.RemoteTag != "fromtag" {
		t.Errorf("tags = %+v", d.ID)
	}
	if d.RemoteSeq != 1 {
		t.Errorf("RemoteSeq = %d", d.RemoteSeq)
	}
	// Remote target tracks the INVITE's Contact.
	if d.RemoteTarget.String() != "sip:alice@10.0.0.1:5060" {
		t.Errorf("RemoteTarget = %v", d.RemoteTarget)
	}
	d.Confirm()
	if d.State != DialogConfirmed {
		t.Errorf("state = %v", d.State)
	}
}

func TestDialogMatching(t *testing.T) {
	invite := sampleInvite()
	ok := NewResponse(invite, StatusOK, "remote1")
	d, err := NewDialogUAC(invite, ok)
	if err != nil {
		t.Fatal(err)
	}
	if !d.MatchesResponse(ok) {
		t.Error("dialog does not match its own 200")
	}
	other := NewResponse(sampleInvite(), StatusOK, "different")
	other.Headers.Set(HdrCallID, "another@call")
	if d.MatchesResponse(other) {
		t.Error("dialog matched a response from another call")
	}

	// In-dialog BYE from the remote side: From tag = remote, To tag = local.
	from, _ := ParseAddress("<sip:bob@10.0.0.2>")
	to, _ := ParseAddress("<sip:alice@10.0.0.1>")
	bye := NewRequest(RequestSpec{
		Method: MethodBye, RequestURI: "sip:alice@10.0.0.1",
		From:   from.WithTag("remote1"),
		To:     to.WithTag("fromtag"),
		CallID: invite.CallID(),
		CSeq:   CSeq{Seq: 2, Method: MethodBye},
		Via:    Via{Transport: "UDP", SentBy: "10.0.0.2:5060", Params: map[string]string{"branch": MagicBranchPrefix + "bye1"}},
	})
	if !d.MatchesRequest(bye) {
		t.Error("dialog does not match in-dialog BYE")
	}
	forged := NewRequest(RequestSpec{
		Method: MethodBye, RequestURI: "sip:alice@10.0.0.1",
		From:   from.WithTag("WRONG"),
		To:     to.WithTag("fromtag"),
		CallID: invite.CallID(),
		CSeq:   CSeq{Seq: 2, Method: MethodBye},
		Via:    Via{Transport: "UDP", SentBy: "10.0.0.66:5060", Params: map[string]string{"branch": MagicBranchPrefix + "bye2"}},
	})
	if d.MatchesRequest(forged) {
		t.Error("dialog matched a BYE with a wrong tag")
	}
}

func TestDialogSeqCounters(t *testing.T) {
	invite := sampleInvite()
	d, err := NewDialogUAC(invite, NewResponse(invite, StatusOK, "r"))
	if err != nil {
		t.Fatal(err)
	}
	if d.LocalSeq != 1 {
		t.Fatalf("LocalSeq = %d, want 1 (from INVITE)", d.LocalSeq)
	}
	if got := d.NextLocalSeq(); got != 2 {
		t.Errorf("NextLocalSeq = %d, want 2", got)
	}
}

func TestDialogStateString(t *testing.T) {
	want := map[DialogState]string{
		DialogInit: "init", DialogEarly: "early",
		DialogConfirmed: "confirmed", DialogTerminated: "terminated", DialogState(0): "unknown",
	}
	for s, str := range want {
		if s.String() != str {
			t.Errorf("%d.String() = %q, want %q", int(s), s.String(), str)
		}
	}
}

func TestIDGenDeterminism(t *testing.T) {
	s1 := netsimRand(42)
	s2 := netsimRand(42)
	g1, g2 := NewIDGen(s1), NewIDGen(s2)
	if g1.Branch() != g2.Branch() || g1.Tag() != g2.Tag() || g1.CallID("h") != g2.CallID("h") {
		t.Error("IDGen not deterministic for equal seeds")
	}
	g3 := NewIDGen(netsimRand(43))
	if g3.Branch() == NewIDGen(netsimRand(42)).Branch() {
		t.Error("different seeds produced identical branches")
	}
}

func TestIDGenFormats(t *testing.T) {
	g := NewIDGen(netsimRand(1))
	if b := g.Branch(); len(b) != len(MagicBranchPrefix)+16 || b[:len(MagicBranchPrefix)] != MagicBranchPrefix {
		t.Errorf("Branch() = %q", b)
	}
	if id := g.CallID("host.example"); id[len(id)-13:] != "@host.example" {
		t.Errorf("CallID() = %q", id)
	}
}

// netsimRand returns a deterministic rand source for tests.
func netsimRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
