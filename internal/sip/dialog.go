package sip

import "fmt"

// DialogState is the lifecycle state of a SIP dialog.
type DialogState int

// Dialog states.
const (
	DialogInit DialogState = iota + 1
	DialogEarly
	DialogConfirmed
	DialogTerminated
)

// String returns the state name.
func (s DialogState) String() string {
	switch s {
	case DialogInit:
		return "init"
	case DialogEarly:
		return "early"
	case DialogConfirmed:
		return "confirmed"
	case DialogTerminated:
		return "terminated"
	default:
		return "unknown"
	}
}

// DialogID identifies a dialog: Call-ID plus the two tags. From the UAC's
// perspective LocalTag is the From tag; the UAS swaps them.
type DialogID struct {
	CallID    string
	LocalTag  string
	RemoteTag string
}

// String formats the ID for logs and map keys.
func (id DialogID) String() string {
	return fmt.Sprintf("%s;local=%s;remote=%s", id.CallID, id.LocalTag, id.RemoteTag)
}

// Dialog is the state a user agent keeps per established SIP dialog
// (RFC 3261 section 12).
type Dialog struct {
	ID           DialogID
	State        DialogState
	LocalURI     URI
	RemoteURI    URI
	RemoteTarget URI // from Contact; REINVITE updates it
	LocalSeq     uint32
	RemoteSeq    uint32
}

// NewDialogUAC creates a dialog from the UAC side after a dialog-forming
// response (18x or 2xx) to an INVITE.
func NewDialogUAC(invite *Message, resp *Message) (*Dialog, error) {
	from, err := invite.From()
	if err != nil {
		return nil, fmt.Errorf("sip: dialog from INVITE: %w", err)
	}
	to, err := resp.To()
	if err != nil {
		return nil, fmt.Errorf("sip: dialog from response: %w", err)
	}
	cseq, err := invite.CSeq()
	if err != nil {
		return nil, err
	}
	d := &Dialog{
		ID: DialogID{
			CallID:    invite.CallID(),
			LocalTag:  from.Tag(),
			RemoteTag: to.Tag(),
		},
		State:     DialogEarly,
		LocalURI:  from.URI,
		RemoteURI: to.URI,
		LocalSeq:  cseq.Seq,
	}
	if contact, err := resp.Contact(); err == nil {
		d.RemoteTarget = contact.URI
	} else {
		d.RemoteTarget = to.URI
	}
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		d.State = DialogConfirmed
	}
	return d, nil
}

// NewDialogUAS creates a dialog from the UAS side upon sending a
// dialog-forming response with localTag.
func NewDialogUAS(invite *Message, localTag string) (*Dialog, error) {
	from, err := invite.From()
	if err != nil {
		return nil, fmt.Errorf("sip: dialog from INVITE: %w", err)
	}
	to, err := invite.To()
	if err != nil {
		return nil, err
	}
	cseq, err := invite.CSeq()
	if err != nil {
		return nil, err
	}
	d := &Dialog{
		ID: DialogID{
			CallID:    invite.CallID(),
			LocalTag:  localTag,
			RemoteTag: from.Tag(),
		},
		State:     DialogEarly,
		LocalURI:  to.URI,
		RemoteURI: from.URI,
		RemoteSeq: cseq.Seq,
	}
	if contact, err := invite.Contact(); err == nil {
		d.RemoteTarget = contact.URI
	} else {
		d.RemoteTarget = from.URI
	}
	return d, nil
}

// Confirm moves the dialog to the confirmed state (2xx sent/received and,
// on the UAS side, ACK received).
func (d *Dialog) Confirm() { d.State = DialogConfirmed }

// Terminate moves the dialog to the terminated state (BYE exchanged).
func (d *Dialog) Terminate() { d.State = DialogTerminated }

// NextLocalSeq increments and returns the local CSeq counter for a new
// in-dialog request.
func (d *Dialog) NextLocalSeq() uint32 {
	d.LocalSeq++
	return d.LocalSeq
}

// MatchesResponse reports whether a response belongs to this dialog.
func (d *Dialog) MatchesResponse(m *Message) bool {
	if m.CallID() != d.ID.CallID {
		return false
	}
	from, err1 := m.From()
	to, err2 := m.To()
	if err1 != nil || err2 != nil {
		return false
	}
	return from.Tag() == d.ID.LocalTag && (d.ID.RemoteTag == "" || to.Tag() == d.ID.RemoteTag)
}

// MatchesRequest reports whether an in-dialog request (e.g. BYE,
// re-INVITE) belongs to this dialog, seen from this side.
func (d *Dialog) MatchesRequest(m *Message) bool {
	if m.CallID() != d.ID.CallID {
		return false
	}
	from, err1 := m.From()
	to, err2 := m.To()
	if err1 != nil || err2 != nil {
		return false
	}
	return from.Tag() == d.ID.RemoteTag && to.Tag() == d.ID.LocalTag
}
