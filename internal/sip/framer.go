package sip

import (
	"bytes"
	"strconv"
	"strings"
)

// Framer buffer bounds. A header block larger than framerMaxHeader with
// no separator, or a framed message larger than framerMaxMessage, marks
// the stream position unframeable: the buffered bytes are dropped and
// framing re-synchronizes on whatever follows.
const (
	framerMaxHeader  = 16 << 10
	framerMaxMessage = 256 << 10
)

// StreamFramer extracts complete SIP messages from a reassembled byte
// stream, as SIP over TCP requires (RFC 3261 §18.3: the message ends
// where Content-Length says it does). It is incremental: Push feeds it
// the next chunk of in-order stream bytes and emits zero or more complete
// messages, tolerating messages split across segments and several
// messages coalesced into one segment. CRLF keep-alives between messages
// are skipped.
//
// Framing never invents data: an emitted message is always a verbatim
// byte range of the stream, delimited by the header/body separator and
// the declared Content-Length (absent or unparsable Content-Length
// frames a zero-length body and leaves the dispute to the parser).
type StreamFramer struct {
	buf     []byte
	off     int // consumed prefix of buf, compacted on the next Push
	dropped int // unframeable stretches discarded (buffer overflows)
}

// PendingBytes reports how many buffered bytes await completion.
func (f *StreamFramer) PendingBytes() int { return len(f.buf) - f.off }

// Dropped reports how many unframeable buffer stretches were discarded.
func (f *StreamFramer) Dropped() int { return f.dropped }

// Push appends data to the framing buffer and emits every complete
// message now available, in stream order. Emitted slices alias the
// internal buffer and are only valid until the next Push; callers that
// retain bytes must copy.
func (f *StreamFramer) Push(data []byte, emit func(msg []byte)) {
	if f.off > 0 {
		// Compact the consumed prefix (invalidates previously emitted
		// slices, per the contract).
		n := copy(f.buf, f.buf[f.off:])
		f.buf = f.buf[:n]
		f.off = 0
	}
	f.buf = append(f.buf, data...)
	for {
		// Skip leading CRLF keep-alives.
		for f.off < len(f.buf) && (f.buf[f.off] == '\r' || f.buf[f.off] == '\n') {
			f.off++
		}
		rest := f.buf[f.off:]
		if len(rest) == 0 {
			return
		}
		headerEnd, sepLen := findSeparator(rest)
		if headerEnd < 0 {
			if len(rest) > framerMaxHeader {
				f.dropped++
				f.off = len(f.buf)
			}
			return
		}
		cl, ok := scanContentLength(rest[:headerEnd])
		if !ok || headerEnd+sepLen+cl > framerMaxMessage {
			// Unframeable at this position; drop through the separator
			// and re-synchronize.
			f.dropped++
			f.off += headerEnd + sepLen
			continue
		}
		total := headerEnd + sepLen + cl
		if len(rest) < total {
			return
		}
		f.off += total
		emit(rest[:total])
	}
}

// findSeparator locates the earliest header/body separator, returning its
// offset and length, or (-1, 0) when none is present yet.
func findSeparator(b []byte) (int, int) {
	iCRLF := bytes.Index(b, sepCRLFCRLF)
	iLF := bytes.Index(b, sepLFLF)
	switch {
	case iCRLF < 0 && iLF < 0:
		return -1, 0
	case iCRLF < 0 || (iLF >= 0 && iLF < iCRLF):
		return iLF, len(sepLFLF)
	default:
		return iCRLF, len(sepCRLFCRLF)
	}
}

// scanContentLength extracts the first Content-Length (canonical or
// compact "l") value from a raw header block. It returns (0, true) when
// the header is absent — a zero-length body, matching the parser — and
// (0, false) when a value is present but unusable for framing (negative,
// non-numeric, or folded beyond recognition).
func scanContentLength(head []byte) (int, bool) {
	for len(head) > 0 {
		line := head
		if i := bytes.IndexByte(head, '\n'); i >= 0 {
			line = head[:i]
			head = head[i+1:]
		} else {
			head = nil
		}
		line = bytes.TrimRight(line, "\r")
		colon := bytes.IndexByte(line, ':')
		if colon <= 0 {
			continue
		}
		name := strings.TrimSpace(string(line[:colon]))
		if !strings.EqualFold(name, HdrContentLength) && !strings.EqualFold(name, "l") {
			continue
		}
		cl, err := strconv.Atoi(strings.TrimSpace(string(line[colon+1:])))
		if err != nil || cl < 0 {
			return 0, false
		}
		return cl, true
	}
	return 0, true
}

// State returns the framer's buffered bytes (the incomplete message
// prefix) for checkpointing. The slice is a copy.
func (f *StreamFramer) State() []byte {
	return append([]byte(nil), f.buf[f.off:]...)
}

// SetState replaces the framer's buffered bytes from a checkpoint.
func (f *StreamFramer) SetState(b []byte) {
	f.buf = append(f.buf[:0], b...)
	f.off = 0
	f.dropped = 0
}
