package sip

import (
	"testing"
)

func TestParseURI(t *testing.T) {
	tests := []struct {
		name    string
		in      string
		want    URI
		wantErr bool
	}{
		{
			name: "full",
			in:   "sip:alice@10.0.0.1:5070;transport=udp",
			want: URI{User: "alice", Host: "10.0.0.1", Port: 5070, Params: map[string]string{"transport": "udp"}},
		},
		{
			name: "no port",
			in:   "sip:bob@example.com",
			want: URI{User: "bob", Host: "example.com"},
		},
		{
			name: "no user",
			in:   "sip:proxy.example.com:5060",
			want: URI{Host: "proxy.example.com", Port: 5060},
		},
		{
			name: "valueless param",
			in:   "sip:a@b;lr",
			want: URI{User: "a", Host: "b", Params: map[string]string{"lr": ""}},
		},
		{name: "bad scheme", in: "http://x", wantErr: true},
		{name: "empty user", in: "sip:@host", wantErr: true},
		{name: "empty host", in: "sip:user@", wantErr: true},
		{name: "bad port", in: "sip:a@b:99999", wantErr: true},
		{name: "empty param name", in: "sip:a@b;=v", wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := ParseURI(tt.in)
			if tt.wantErr {
				if err == nil {
					t.Fatalf("ParseURI(%q): want error, got %+v", tt.in, got)
				}
				return
			}
			if err != nil {
				t.Fatalf("ParseURI(%q): %v", tt.in, err)
			}
			if got.User != tt.want.User || got.Host != tt.want.Host || got.Port != tt.want.Port {
				t.Errorf("got %+v, want %+v", got, tt.want)
			}
			for k, v := range tt.want.Params {
				if got.Params[k] != v {
					t.Errorf("param %q = %q, want %q", k, got.Params[k], v)
				}
			}
		})
	}
}

func TestURIStringRoundTrip(t *testing.T) {
	for _, s := range []string{
		"sip:alice@10.0.0.1:5070;transport=udp",
		"sip:bob@example.com",
		"sip:proxy:5060",
	} {
		u, err := ParseURI(s)
		if err != nil {
			t.Fatalf("ParseURI(%q): %v", s, err)
		}
		again, err := ParseURI(u.String())
		if err != nil {
			t.Fatalf("re-parse %q: %v", u.String(), err)
		}
		if again.String() != u.String() {
			t.Errorf("round trip changed: %q -> %q", u.String(), again.String())
		}
	}
}

func TestURIHelpers(t *testing.T) {
	u := URI{User: "alice", Host: "atlanta.com"}
	if got := u.AOR(); got != "alice@atlanta.com" {
		t.Errorf("AOR = %q", got)
	}
	if got := u.EffectivePort(); got != DefaultPort {
		t.Errorf("EffectivePort = %d, want %d", got, DefaultPort)
	}
	u.Port = 5080
	if got := u.EffectivePort(); got != 5080 {
		t.Errorf("EffectivePort = %d, want 5080", got)
	}
	host := URI{Host: "proxy"}
	if got := host.AOR(); got != "proxy" {
		t.Errorf("host-only AOR = %q", got)
	}
}

func TestParseAddress(t *testing.T) {
	tests := []struct {
		name        string
		in          string
		wantDisplay string
		wantURI     string
		wantTag     string
		wantErr     bool
	}{
		{
			name:        "name-addr with tag",
			in:          `"Alice" <sip:alice@10.0.0.1>;tag=88sja8x`,
			wantDisplay: "Alice",
			wantURI:     "sip:alice@10.0.0.1",
			wantTag:     "88sja8x",
		},
		{
			name:    "bare addr-spec",
			in:      "sip:bob@b.com",
			wantURI: "sip:bob@b.com",
		},
		{
			name:    "addr-spec with tag",
			in:      "sip:bob@b.com;tag=xyz",
			wantURI: "sip:bob@b.com",
			wantTag: "xyz",
		},
		{
			name:        "unquoted display",
			in:          "Bob <sip:bob@b.com>",
			wantDisplay: "Bob",
			wantURI:     "sip:bob@b.com",
		},
		{name: "unbalanced brackets", in: ">sip:x@y<", wantErr: true},
		{name: "bad inner uri", in: "<mailto:x@y>", wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := ParseAddress(tt.in)
			if tt.wantErr {
				if err == nil {
					t.Fatalf("want error, got %+v", got)
				}
				return
			}
			if err != nil {
				t.Fatalf("ParseAddress(%q): %v", tt.in, err)
			}
			if got.Display != tt.wantDisplay {
				t.Errorf("Display = %q, want %q", got.Display, tt.wantDisplay)
			}
			if got.URI.String() != tt.wantURI {
				t.Errorf("URI = %q, want %q", got.URI.String(), tt.wantURI)
			}
			if got.Tag() != tt.wantTag {
				t.Errorf("Tag = %q, want %q", got.Tag(), tt.wantTag)
			}
		})
	}
}

func TestAddressWithTag(t *testing.T) {
	a, err := ParseAddress("<sip:alice@a.com>")
	if err != nil {
		t.Fatal(err)
	}
	b := a.WithTag("t1")
	if a.Tag() != "" {
		t.Error("WithTag mutated the original")
	}
	if b.Tag() != "t1" {
		t.Errorf("tag = %q, want t1", b.Tag())
	}
	reparsed, err := ParseAddress(b.String())
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if reparsed.Tag() != "t1" {
		t.Errorf("round-tripped tag = %q", reparsed.Tag())
	}
}
