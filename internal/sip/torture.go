package sip

// Torture corpus in the spirit of RFC 4475: wire messages that are legal
// but unusual (a conforming parser must accept them) and messages that
// are subtly broken (a conforming parser must reject them, never panic,
// never silently mangle). The parser's own torture tests run against
// this set, and the IDS replays it end to end — over UDP datagrams and
// TCP trunks — to prove the whole pipeline survives hostile signaling
// with exact accounting (internal/experiments evasion-torture scenarios,
// the core fuzz seeds, and the chaoscore hostile-replay suite).

// TortureEntry is one torture message: its raw wire bytes and whether a
// conforming parser must accept it.
type TortureEntry struct {
	Name  string
	Raw   []byte
	Legal bool
}

// TortureCorpus returns the torture message set. The returned entries
// are freshly allocated on each call, so callers may mutate the Raw
// slices freely (fuzz seeds do).
func TortureCorpus() []TortureEntry {
	legal := []struct{ name, raw string }{
		{
			"exotic display name and spacing",
			"INVITE sip:bob@b.example SIP/2.0\r\n" +
				"Via: SIP/2.0/UDP 10.0.0.1:5060;branch=z9hG4bKa\r\n" +
				"Max-Forwards:    68   \r\n" +
				"From:    \"J. \\\"Rock\\\" Star\"   <sip:jrs@a.example>;tag=12\r\n" +
				"To: <sip:bob@b.example>\r\n" +
				"Call-ID: oddspace@a\r\n" +
				"CSeq:    1     INVITE\r\n\r\n",
		},
		{
			"all compact headers",
			"MESSAGE sip:u@h SIP/2.0\r\n" +
				"v: SIP/2.0/UDP 10.0.0.1;branch=z9hG4bKb\r\n" +
				"f: <sip:x@y>;tag=c\r\n" +
				"t: <sip:u@h>\r\n" +
				"i: compact2@t\r\n" +
				"CSeq: 9 MESSAGE\r\n" +
				"s: Greetings\r\n" +
				"l: 2\r\n\r\nok",
		},
		{
			"unknown method passes through",
			"NEWFANGLED sip:u@h SIP/2.0\r\n" +
				"Via: SIP/2.0/UDP 10.0.0.1;branch=z9hG4bKc\r\nFrom: <sip:x@y>;tag=q\r\n" +
				"To: <sip:u@h>\r\nCall-ID: nf@t\r\nCSeq: 1 NEWFANGLED\r\n\r\n",
		},
		{
			"response with empty reason phrase",
			"SIP/2.0 200 \r\n" +
				"Via: SIP/2.0/UDP 10.0.0.1;branch=z9hG4bKd\r\nFrom: <sip:x@y>;tag=q\r\n" +
				"To: <sip:u@h>;tag=r\r\nCall-ID: er@t\r\nCSeq: 2 BYE\r\n\r\n",
		},
		{
			"uri with many params",
			"OPTIONS sip:u@h;transport=udp;lr;maddr=10.0.0.9 SIP/2.0\r\n" +
				"Via: SIP/2.0/UDP 10.0.0.1;branch=z9hG4bKe\r\nFrom: <sip:x@y>;tag=q\r\n" +
				"To: <sip:u@h>\r\nCall-ID: up@t\r\nCSeq: 3 OPTIONS\r\n\r\n",
		},
		{
			"multiple via hops",
			"INVITE sip:b@h SIP/2.0\r\n" +
				"Via: SIP/2.0/UDP proxy2:5060;branch=z9hG4bKf2\r\n" +
				"Via: SIP/2.0/UDP proxy1:5060;branch=z9hG4bKf1\r\n" +
				"Via: SIP/2.0/UDP ua:5060;branch=z9hG4bKf0\r\n" +
				"From: <sip:x@y>;tag=q\r\nTo: <sip:b@h>\r\nCall-ID: mv@t\r\nCSeq: 1 INVITE\r\n\r\n",
		},
	}
	broken := []struct{ name, raw string }{
		{"null bytes in start line", "INV\x00ITE sip:a@b SIP/2.0\r\nVia: SIP/2.0/UDP h\r\nFrom: <sip:x@y>\r\nTo: <sip:a@b>\r\nCall-ID: n@t\r\nCSeq: 1 INV\x00ITE\r\n\r\n"},
		{"negative content length", "OPTIONS sip:a@b SIP/2.0\r\nVia: SIP/2.0/UDP h\r\nFrom: <sip:x@y>\r\nTo: <sip:a@b>\r\nCall-ID: ncl@t\r\nCSeq: 1 OPTIONS\r\nContent-Length: -5\r\n\r\n"},
		{"response code overflow", "SIP/2.0 2000000 OK\r\nVia: SIP/2.0/UDP h\r\nFrom: <sip:x@y>\r\nTo: <sip:a@b>\r\nCall-ID: o@t\r\nCSeq: 1 INVITE\r\n\r\n"},
		{"missing via entirely", "OPTIONS sip:a@b SIP/2.0\r\nFrom: <sip:x@y>\r\nTo: <sip:a@b>\r\nCall-ID: nv@t\r\nCSeq: 1 OPTIONS\r\n\r\n"},
		{"via garbage", "OPTIONS sip:a@b SIP/2.0\r\nVia: %%%%\r\nFrom: <sip:x@y>\r\nTo: <sip:a@b>\r\nCall-ID: vg@t\r\nCSeq: 1 OPTIONS\r\n\r\n"},
	}
	out := make([]TortureEntry, 0, len(legal)+len(broken))
	for _, e := range legal {
		out = append(out, TortureEntry{Name: e.name, Raw: []byte(e.raw), Legal: true})
	}
	for _, e := range broken {
		out = append(out, TortureEntry{Name: e.name, Raw: []byte(e.raw), Legal: false})
	}
	return out
}
