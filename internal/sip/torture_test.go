package sip

import (
	"strings"
	"testing"
	"testing/quick"
)

// Torture tests in the spirit of RFC 4475: messages that are legal but
// unusual must parse; messages that are subtly broken must be rejected or
// surfaced faithfully. The IDS depends on this parser never panicking and
// never silently mangling header values.

func TestTortureLegalButUnusual(t *testing.T) {
	tests := []struct {
		name  string
		raw   string
		check func(t *testing.T, m *Message)
	}{
		{
			name: "exotic display name and spacing",
			raw: "INVITE sip:bob@b.example SIP/2.0\r\n" +
				"Via: SIP/2.0/UDP 10.0.0.1:5060;branch=z9hG4bKa\r\n" +
				"Max-Forwards:    68   \r\n" +
				"From:    \"J. \\\"Rock\\\" Star\"   <sip:jrs@a.example>;tag=12\r\n" +
				"To: <sip:bob@b.example>\r\n" +
				"Call-ID: oddspace@a\r\n" +
				"CSeq:    1     INVITE\r\n\r\n",
			check: func(t *testing.T, m *Message) {
				if got := m.Headers.Get(HdrMaxForwards); got != "68" {
					t.Errorf("Max-Forwards = %q", got)
				}
				cseq, err := m.CSeq()
				if err != nil || cseq.Seq != 1 {
					t.Errorf("CSeq = %+v err=%v", cseq, err)
				}
			},
		},
		{
			name: "all compact headers",
			raw: "MESSAGE sip:u@h SIP/2.0\r\n" +
				"v: SIP/2.0/UDP 10.0.0.1;branch=z9hG4bKb\r\n" +
				"f: <sip:x@y>;tag=c\r\n" +
				"t: <sip:u@h>\r\n" +
				"i: compact2@t\r\n" +
				"CSeq: 9 MESSAGE\r\n" +
				"s: Greetings\r\n" +
				"l: 2\r\n\r\nok",
			check: func(t *testing.T, m *Message) {
				if m.Headers.Get("Subject") != "Greetings" {
					t.Errorf("Subject = %q", m.Headers.Get("Subject"))
				}
				if string(m.Body) != "ok" {
					t.Errorf("Body = %q", m.Body)
				}
			},
		},
		{
			name: "unknown method passes through",
			raw: "NEWFANGLED sip:u@h SIP/2.0\r\n" +
				"Via: SIP/2.0/UDP 10.0.0.1;branch=z9hG4bKc\r\nFrom: <sip:x@y>;tag=q\r\n" +
				"To: <sip:u@h>\r\nCall-ID: nf@t\r\nCSeq: 1 NEWFANGLED\r\n\r\n",
			check: func(t *testing.T, m *Message) {
				if m.Method != "NEWFANGLED" {
					t.Errorf("Method = %q", m.Method)
				}
			},
		},
		{
			name: "response with empty reason phrase",
			raw: "SIP/2.0 200 \r\n" +
				"Via: SIP/2.0/UDP 10.0.0.1;branch=z9hG4bKd\r\nFrom: <sip:x@y>;tag=q\r\n" +
				"To: <sip:u@h>;tag=r\r\nCall-ID: er@t\r\nCSeq: 2 BYE\r\n\r\n",
			check: func(t *testing.T, m *Message) {
				if m.StatusCode != 200 || m.ReasonPhrase != "" {
					t.Errorf("status = %d %q", m.StatusCode, m.ReasonPhrase)
				}
			},
		},
		{
			name: "uri with many params",
			raw: "OPTIONS sip:u@h;transport=udp;lr;maddr=10.0.0.9 SIP/2.0\r\n" +
				"Via: SIP/2.0/UDP 10.0.0.1;branch=z9hG4bKe\r\nFrom: <sip:x@y>;tag=q\r\n" +
				"To: <sip:u@h>\r\nCall-ID: up@t\r\nCSeq: 3 OPTIONS\r\n\r\n",
			check: func(t *testing.T, m *Message) {
				u, err := ParseURI(m.RequestURI)
				if err != nil {
					t.Fatal(err)
				}
				if u.Params["transport"] != "udp" || u.Params["maddr"] != "10.0.0.9" {
					t.Errorf("params = %v", u.Params)
				}
				if _, ok := u.Params["lr"]; !ok {
					t.Error("lr param lost")
				}
			},
		},
		{
			name: "multiple via hops",
			raw: "INVITE sip:b@h SIP/2.0\r\n" +
				"Via: SIP/2.0/UDP proxy2:5060;branch=z9hG4bKf2\r\n" +
				"Via: SIP/2.0/UDP proxy1:5060;branch=z9hG4bKf1\r\n" +
				"Via: SIP/2.0/UDP ua:5060;branch=z9hG4bKf0\r\n" +
				"From: <sip:x@y>;tag=q\r\nTo: <sip:b@h>\r\nCall-ID: mv@t\r\nCSeq: 1 INVITE\r\n\r\n",
			check: func(t *testing.T, m *Message) {
				vias := m.Headers.Values(HdrVia)
				if len(vias) != 3 {
					t.Fatalf("via count = %d", len(vias))
				}
				top, err := m.TopVia()
				if err != nil || top.SentBy != "proxy2:5060" {
					t.Errorf("top via = %+v err=%v", top, err)
				}
			},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m, err := ParseMessage([]byte(tt.raw))
			if err != nil {
				t.Fatalf("ParseMessage: %v", err)
			}
			tt.check(t, m)
		})
	}
}

func TestTortureBroken(t *testing.T) {
	tests := []struct {
		name string
		raw  string
	}{
		{"null bytes in start line", "INV\x00ITE sip:a@b SIP/2.0\r\nVia: SIP/2.0/UDP h\r\nFrom: <sip:x@y>\r\nTo: <sip:a@b>\r\nCall-ID: n@t\r\nCSeq: 1 INV\x00ITE\r\n\r\n"},
		{"negative content length", "OPTIONS sip:a@b SIP/2.0\r\nVia: SIP/2.0/UDP h\r\nFrom: <sip:x@y>\r\nTo: <sip:a@b>\r\nCall-ID: ncl@t\r\nCSeq: 1 OPTIONS\r\nContent-Length: -5\r\n\r\n"},
		{"response code overflow", "SIP/2.0 2000000 OK\r\nVia: SIP/2.0/UDP h\r\nFrom: <sip:x@y>\r\nTo: <sip:a@b>\r\nCall-ID: o@t\r\nCSeq: 1 INVITE\r\n\r\n"},
		{"missing via entirely", "OPTIONS sip:a@b SIP/2.0\r\nFrom: <sip:x@y>\r\nTo: <sip:a@b>\r\nCall-ID: nv@t\r\nCSeq: 1 OPTIONS\r\n\r\n"},
		{"via garbage", "OPTIONS sip:a@b SIP/2.0\r\nVia: %%%%\r\nFrom: <sip:x@y>\r\nTo: <sip:a@b>\r\nCall-ID: vg@t\r\nCSeq: 1 OPTIONS\r\n\r\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ParseMessage([]byte(tt.raw)); err == nil {
				t.Errorf("parser accepted %s", tt.name)
			}
		})
	}
}

func TestMethodTokenCharset(t *testing.T) {
	// Extension methods with legal token characters are accepted...
	if !isToken("NEW-FANGLED.v2") {
		t.Error("legal token rejected")
	}
	// ...control characters, spaces, and separators are not.
	for _, bad := range []string{"", "INV\x00ITE", "IN VITE", "INVITE;x", "INVITE<"} {
		if isToken(bad) {
			t.Errorf("isToken(%q) = true", bad)
		}
	}
}

func TestParseNeverPanicsProperty(t *testing.T) {
	f := func(raw []byte) bool {
		_, _ = ParseMessage(raw) // must not panic
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseNeverPanicsOnMutations(t *testing.T) {
	// Take a valid message and corrupt single bytes at every position.
	base := sampleInvite().Marshal()
	for i := range base {
		mut := append([]byte(nil), base...)
		mut[i] ^= 0xff
		_, _ = ParseMessage(mut)
	}
	// And truncate at every length.
	for i := 0; i <= len(base); i++ {
		_, _ = ParseMessage(base[:i])
	}
}

func TestMarshalParseIdempotent(t *testing.T) {
	// marshal(parse(marshal(m))) == marshal(m) for a representative set.
	msgs := []*Message{
		sampleInvite(),
		NewResponse(sampleInvite(), StatusRinging, "tag9"),
		NewResponse(sampleInvite(), StatusUnauthorized, "tag10"),
	}
	for i, m := range msgs {
		first := m.Marshal()
		parsed, err := ParseMessage(first)
		if err != nil {
			t.Fatalf("msg %d: %v", i, err)
		}
		second := parsed.Marshal()
		if !strings.EqualFold(string(first), string(second)) {
			t.Errorf("msg %d not idempotent:\n%q\nvs\n%q", i, first, second)
		}
	}
}
