package sip

import (
	"strings"
	"testing"
	"testing/quick"
)

// Torture tests in the spirit of RFC 4475: messages that are legal but
// unusual must parse; messages that are subtly broken must be rejected or
// surfaced faithfully. The IDS depends on this parser never panicking and
// never silently mangling header values. The raw messages live in the
// exported TortureCorpus (torture.go) so the full pipeline can replay the
// same set; the per-message semantic checks stay here.

// tortureEntry fetches one corpus entry by name.
func tortureEntry(t *testing.T, name string) TortureEntry {
	t.Helper()
	for _, e := range TortureCorpus() {
		if e.Name == name {
			return e
		}
	}
	t.Fatalf("torture corpus has no entry %q", name)
	return TortureEntry{}
}

func TestTortureLegalButUnusual(t *testing.T) {
	checks := map[string]func(t *testing.T, m *Message){
		"exotic display name and spacing": func(t *testing.T, m *Message) {
			if got := m.Headers.Get(HdrMaxForwards); got != "68" {
				t.Errorf("Max-Forwards = %q", got)
			}
			cseq, err := m.CSeq()
			if err != nil || cseq.Seq != 1 {
				t.Errorf("CSeq = %+v err=%v", cseq, err)
			}
		},
		"all compact headers": func(t *testing.T, m *Message) {
			if m.Headers.Get("Subject") != "Greetings" {
				t.Errorf("Subject = %q", m.Headers.Get("Subject"))
			}
			if string(m.Body) != "ok" {
				t.Errorf("Body = %q", m.Body)
			}
		},
		"unknown method passes through": func(t *testing.T, m *Message) {
			if m.Method != "NEWFANGLED" {
				t.Errorf("Method = %q", m.Method)
			}
		},
		"response with empty reason phrase": func(t *testing.T, m *Message) {
			if m.StatusCode != 200 || m.ReasonPhrase != "" {
				t.Errorf("status = %d %q", m.StatusCode, m.ReasonPhrase)
			}
		},
		"uri with many params": func(t *testing.T, m *Message) {
			u, err := ParseURI(m.RequestURI)
			if err != nil {
				t.Fatal(err)
			}
			if u.Params["transport"] != "udp" || u.Params["maddr"] != "10.0.0.9" {
				t.Errorf("params = %v", u.Params)
			}
			if _, ok := u.Params["lr"]; !ok {
				t.Error("lr param lost")
			}
		},
		"multiple via hops": func(t *testing.T, m *Message) {
			vias := m.Headers.Values(HdrVia)
			if len(vias) != 3 {
				t.Fatalf("via count = %d", len(vias))
			}
			top, err := m.TopVia()
			if err != nil || top.SentBy != "proxy2:5060" {
				t.Errorf("top via = %+v err=%v", top, err)
			}
		},
	}
	seen := 0
	for _, e := range TortureCorpus() {
		if !e.Legal {
			continue
		}
		seen++
		check, ok := checks[e.Name]
		if !ok {
			t.Errorf("legal corpus entry %q has no semantic check", e.Name)
			continue
		}
		t.Run(e.Name, func(t *testing.T) {
			m, err := ParseMessage(e.Raw)
			if err != nil {
				t.Fatalf("ParseMessage: %v", err)
			}
			check(t, m)
		})
	}
	if seen != len(checks) {
		t.Errorf("corpus has %d legal entries, checks cover %d", seen, len(checks))
	}
}

func TestTortureBroken(t *testing.T) {
	seen := 0
	for _, e := range TortureCorpus() {
		if e.Legal {
			continue
		}
		seen++
		t.Run(e.Name, func(t *testing.T) {
			if _, err := ParseMessage(e.Raw); err == nil {
				t.Errorf("parser accepted %s", e.Name)
			}
		})
	}
	if seen == 0 {
		t.Fatal("torture corpus has no broken entries")
	}
}

func TestMethodTokenCharset(t *testing.T) {
	// Extension methods with legal token characters are accepted...
	if !isToken("NEW-FANGLED.v2") {
		t.Error("legal token rejected")
	}
	// ...control characters, spaces, and separators are not.
	for _, bad := range []string{"", "INV\x00ITE", "IN VITE", "INVITE;x", "INVITE<"} {
		if isToken(bad) {
			t.Errorf("isToken(%q) = true", bad)
		}
	}
}

func TestParseNeverPanicsProperty(t *testing.T) {
	f := func(raw []byte) bool {
		_, _ = ParseMessage(raw) // must not panic
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseNeverPanicsOnMutations(t *testing.T) {
	// Take a valid message and corrupt single bytes at every position.
	base := sampleInvite().Marshal()
	for i := range base {
		mut := append([]byte(nil), base...)
		mut[i] ^= 0xff
		_, _ = ParseMessage(mut)
	}
	// And truncate at every length.
	for i := 0; i <= len(base); i++ {
		_, _ = ParseMessage(base[:i])
	}
}

func TestMarshalParseIdempotent(t *testing.T) {
	// marshal(parse(marshal(m))) == marshal(m) for a representative set.
	msgs := []*Message{
		sampleInvite(),
		NewResponse(sampleInvite(), StatusRinging, "tag9"),
		NewResponse(sampleInvite(), StatusUnauthorized, "tag10"),
	}
	for i, m := range msgs {
		first := m.Marshal()
		parsed, err := ParseMessage(first)
		if err != nil {
			t.Fatalf("msg %d: %v", i, err)
		}
		second := parsed.Marshal()
		if !strings.EqualFold(string(first), string(second)) {
			t.Errorf("msg %d not idempotent:\n%q\nvs\n%q", i, first, second)
		}
	}
}
