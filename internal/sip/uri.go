package sip

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// URI is a SIP URI of the form sip:user@host:port;param=value.
// Only the sip scheme is supported.
type URI struct {
	User   string
	Host   string
	Port   uint16 // 0 means the default port (5060)
	Params map[string]string
}

// DefaultPort is the standard SIP UDP port.
const DefaultPort = 5060

// ParseURI parses a SIP URI.
func ParseURI(s string) (URI, error) {
	rest, ok := strings.CutPrefix(s, "sip:")
	if !ok {
		return URI{}, fmt.Errorf("sip: uri %q: unsupported scheme", s)
	}
	var u URI
	if at := strings.IndexByte(rest, '@'); at >= 0 {
		u.User = rest[:at]
		rest = rest[at+1:]
		if u.User == "" {
			return URI{}, fmt.Errorf("sip: uri %q: empty user part", s)
		}
	}
	hostport := rest
	if semi := strings.IndexByte(rest, ';'); semi >= 0 {
		hostport = rest[:semi]
		params, err := parseParams(rest[semi+1:])
		if err != nil {
			return URI{}, fmt.Errorf("sip: uri %q: %w", s, err)
		}
		u.Params = params
	}
	host, port, err := splitHostPort(hostport)
	if err != nil {
		return URI{}, fmt.Errorf("sip: uri %q: %w", s, err)
	}
	if host == "" {
		return URI{}, fmt.Errorf("sip: uri %q: empty host", s)
	}
	u.Host, u.Port = host, port
	return u, nil
}

// splitHostPort splits "host[:port]". Unlike net.SplitHostPort it accepts
// a missing port.
func splitHostPort(s string) (string, uint16, error) {
	colon := strings.LastIndexByte(s, ':')
	if colon < 0 {
		return s, 0, nil
	}
	p, err := strconv.ParseUint(s[colon+1:], 10, 16)
	if err != nil {
		return "", 0, fmt.Errorf("bad port %q", s[colon+1:])
	}
	return s[:colon], uint16(p), nil
}

// parseParams parses ";"-separated param[=value] lists.
func parseParams(s string) (map[string]string, error) {
	params := make(map[string]string)
	for _, part := range strings.Split(s, ";") {
		if part == "" {
			continue
		}
		if eq := strings.IndexByte(part, '='); eq >= 0 {
			key := strings.TrimSpace(part[:eq])
			if key == "" {
				return nil, fmt.Errorf("empty parameter name in %q", s)
			}
			params[strings.ToLower(key)] = strings.TrimSpace(part[eq+1:])
		} else {
			params[strings.ToLower(strings.TrimSpace(part))] = ""
		}
	}
	return params, nil
}

// formatParams serializes params deterministically (sorted by key).
func formatParams(params map[string]string) string {
	if len(params) == 0 {
		return ""
	}
	keys := make([]string, 0, len(params))
	for k := range params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteByte(';')
		b.WriteString(k)
		if v := params[k]; v != "" {
			b.WriteByte('=')
			b.WriteString(v)
		}
	}
	return b.String()
}

// String serializes the URI.
func (u URI) String() string {
	var b strings.Builder
	b.WriteString("sip:")
	if u.User != "" {
		b.WriteString(u.User)
		b.WriteByte('@')
	}
	b.WriteString(u.Host)
	if u.Port != 0 {
		fmt.Fprintf(&b, ":%d", u.Port)
	}
	b.WriteString(formatParams(u.Params))
	return b.String()
}

// EffectivePort returns the URI port or the SIP default.
func (u URI) EffectivePort() uint16 {
	if u.Port != 0 {
		return u.Port
	}
	return DefaultPort
}

// AOR returns the address-of-record "user@host" without port or params,
// the key registrars and location services use.
func (u URI) AOR() string {
	if u.User == "" {
		return u.Host
	}
	return u.User + "@" + u.Host
}

// Address is a name-addr or addr-spec header value (From, To, Contact):
// an optional display name, a URI, and header parameters such as tag.
type Address struct {
	Display string
	URI     URI
	Params  map[string]string
}

// ParseAddress parses a name-addr ("Alice" <sip:alice@a.com>;tag=1) or a
// bare addr-spec (sip:alice@a.com).
func ParseAddress(s string) (Address, error) {
	s = strings.TrimSpace(s)
	var a Address
	if lt := strings.IndexByte(s, '<'); lt >= 0 {
		gt := strings.IndexByte(s, '>')
		if gt < lt {
			return Address{}, fmt.Errorf("sip: address %q: unbalanced angle brackets", s)
		}
		a.Display = strings.Trim(strings.TrimSpace(s[:lt]), `"`)
		uri, err := ParseURI(s[lt+1 : gt])
		if err != nil {
			return Address{}, err
		}
		a.URI = uri
		rest := strings.TrimSpace(s[gt+1:])
		if rest != "" {
			rest = strings.TrimPrefix(rest, ";")
			params, err := parseParams(rest)
			if err != nil {
				return Address{}, fmt.Errorf("sip: address %q: %w", s, err)
			}
			a.Params = params
		}
		return a, nil
	}
	// Bare addr-spec: header params follow the URI's own params; without
	// brackets the split is ambiguous, so treat everything after the first
	// ';' as header params (the common interpretation for From/To).
	uriPart := s
	if semi := strings.IndexByte(s, ';'); semi >= 0 {
		uriPart = s[:semi]
		params, err := parseParams(s[semi+1:])
		if err != nil {
			return Address{}, fmt.Errorf("sip: address %q: %w", s, err)
		}
		a.Params = params
	}
	uri, err := ParseURI(uriPart)
	if err != nil {
		return Address{}, err
	}
	a.URI = uri
	return a, nil
}

// String serializes the address in name-addr form.
func (a Address) String() string {
	var b strings.Builder
	if a.Display != "" {
		fmt.Fprintf(&b, "%q ", a.Display)
	}
	b.WriteByte('<')
	b.WriteString(a.URI.String())
	b.WriteByte('>')
	b.WriteString(formatParams(a.Params))
	return b.String()
}

// Tag returns the tag parameter, or "".
func (a Address) Tag() string { return a.Params["tag"] }

// WithTag returns a copy of the address with the tag parameter set.
func (a Address) WithTag(tag string) Address {
	params := make(map[string]string, len(a.Params)+1)
	for k, v := range a.Params {
		params[k] = v
	}
	params["tag"] = tag
	a.Params = params
	return a
}
