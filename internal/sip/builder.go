package sip

import (
	"fmt"
	"math/rand"
)

// MagicBranchPrefix is the RFC 3261 branch cookie.
const MagicBranchPrefix = "z9hG4bK"

// IDGen produces the random identifiers SIP needs (branches, tags,
// Call-IDs) from a deterministic source, so simulations replay exactly.
type IDGen struct {
	rng *rand.Rand
}

// NewIDGen returns an IDGen drawing from rng.
func NewIDGen(rng *rand.Rand) *IDGen { return &IDGen{rng: rng} }

func (g *IDGen) hex(n int) string {
	const digits = "0123456789abcdef"
	b := make([]byte, n)
	for i := range b {
		b[i] = digits[g.rng.Intn(16)]
	}
	return string(b)
}

// Branch returns a new Via branch parameter with the RFC 3261 cookie.
func (g *IDGen) Branch() string { return MagicBranchPrefix + g.hex(16) }

// Tag returns a new From/To tag.
func (g *IDGen) Tag() string { return g.hex(10) }

// CallID returns a new Call-ID scoped to host.
func (g *IDGen) CallID(host string) string { return g.hex(16) + "@" + host }

// Nonce returns a new authentication nonce.
func (g *IDGen) Nonce() string { return g.hex(24) }

// RequestSpec collects the fields needed to build a well-formed request.
type RequestSpec struct {
	Method     Method
	RequestURI string
	From       Address
	To         Address
	CallID     string
	CSeq       CSeq
	Via        Via
	Contact    *Address
	MaxFwd     int // 0 means 70
	Body       []byte
	BodyType   string // Content-Type when Body is set
}

// NewRequest builds a request with the mandatory header set.
func NewRequest(spec RequestSpec) *Message {
	m := &Message{Method: spec.Method, RequestURI: spec.RequestURI}
	m.Headers.Add(HdrVia, spec.Via.String())
	maxFwd := spec.MaxFwd
	if maxFwd == 0 {
		maxFwd = 70
	}
	m.Headers.Add(HdrMaxForwards, fmt.Sprintf("%d", maxFwd))
	m.Headers.Add(HdrFrom, spec.From.String())
	m.Headers.Add(HdrTo, spec.To.String())
	m.Headers.Add(HdrCallID, spec.CallID)
	m.Headers.Add(HdrCSeq, spec.CSeq.String())
	if spec.Contact != nil {
		m.Headers.Add(HdrContact, spec.Contact.String())
	}
	if len(spec.Body) > 0 && spec.BodyType != "" {
		m.Headers.Add(HdrContentType, spec.BodyType)
	}
	m.Body = spec.Body
	return m
}

// NewResponse builds a response to req with the given status code,
// copying the headers RFC 3261 requires (Via, From, To, Call-ID, CSeq).
// toTag, when non-empty, is added to the To header unless one is present.
func NewResponse(req *Message, code int, toTag string) *Message {
	m := &Message{StatusCode: code, ReasonPhrase: ReasonFor(code)}
	for _, via := range req.Headers.Values(HdrVia) {
		m.Headers.Add(HdrVia, via)
	}
	m.Headers.Add(HdrFrom, req.Headers.Get(HdrFrom))
	to := req.Headers.Get(HdrTo)
	if toTag != "" {
		if addr, err := ParseAddress(to); err == nil && addr.Tag() == "" {
			to = addr.WithTag(toTag).String()
		}
	}
	m.Headers.Add(HdrTo, to)
	m.Headers.Add(HdrCallID, req.Headers.Get(HdrCallID))
	m.Headers.Add(HdrCSeq, req.Headers.Get(HdrCSeq))
	return m
}
