package sip

import (
	"net/netip"
	"testing"
	"time"

	"scidive/internal/netsim"
)

var txDst = netip.MustParseAddrPort("10.0.0.2:5060")

// txFixture wires a TxLayer to a recording transport over a simulator clock.
type txFixture struct {
	sim   *netsim.Simulator
	layer *TxLayer
	sent  []*Message
	// drop, when set, swallows outgoing messages (models total loss).
	drop bool
}

func newTxFixture(t *testing.T) *txFixture {
	t.Helper()
	f := &txFixture{sim: netsim.NewSimulator(1)}
	f.layer = NewTxLayer(f.sim, func(dst netip.AddrPort, m *Message) {
		if !f.drop {
			f.sent = append(f.sent, m)
		}
	})
	return f
}

func TestClientTxResponseDispatch(t *testing.T) {
	f := newTxFixture(t)
	req := sampleInvite()
	var responses []int
	f.layer.Request(txDst, req, func(m *Message) { responses = append(responses, m.StatusCode) }, nil)
	if len(f.sent) != 1 {
		t.Fatalf("initial send count = %d", len(f.sent))
	}
	ringing := NewResponse(req, StatusRinging, "tt")
	ok := NewResponse(req, StatusOK, "tt")
	if !f.layer.HandleMessage(txDst, ringing) {
		t.Error("provisional response not matched")
	}
	if !f.layer.HandleMessage(txDst, ok) {
		t.Error("final response not matched")
	}
	if len(responses) != 2 || responses[0] != StatusRinging || responses[1] != StatusOK {
		t.Errorf("responses = %v", responses)
	}
	if f.layer.ActiveClient() != 0 {
		t.Errorf("ActiveClient = %d after final response", f.layer.ActiveClient())
	}
}

func TestClientTxRetransmitsUntilResponse(t *testing.T) {
	f := newTxFixture(t)
	req := sampleInvite()
	f.layer.Request(txDst, req, nil, nil)
	// Let two retransmit timers fire (at T1 and 3*T1).
	f.sim.RunUntil(4 * TimerT1)
	if len(f.sent) < 3 {
		t.Fatalf("sent %d copies, want >= 3 (initial + 2 retransmits)", len(f.sent))
	}
	got := f.layer.Retransmits
	f.layer.HandleMessage(txDst, NewResponse(req, StatusOK, "t"))
	f.sim.RunUntil(10 * time.Minute)
	if f.layer.Retransmits != got {
		t.Error("retransmissions continued after final response")
	}
}

func TestClientTxTimeout(t *testing.T) {
	f := newTxFixture(t)
	req := sampleInvite()
	timedOut := false
	f.layer.Request(txDst, req, nil, func() { timedOut = true })
	f.sim.RunUntil(time.Duration(timerBMultiple+2) * TimerT1)
	if !timedOut {
		t.Fatal("transaction did not time out")
	}
	if f.layer.Timeouts != 1 {
		t.Errorf("Timeouts = %d", f.layer.Timeouts)
	}
	if f.layer.ActiveClient() != 0 {
		t.Errorf("ActiveClient = %d after timeout", f.layer.ActiveClient())
	}
}

func TestNonInviteRetransmitCapsAtT2(t *testing.T) {
	f := newTxFixture(t)
	from, _ := ParseAddress("<sip:a@x>")
	to, _ := ParseAddress("<sip:b@y>")
	req := NewRequest(RequestSpec{
		Method: MethodRegister, RequestURI: "sip:y",
		From: from, To: to, CallID: "reg@x",
		CSeq: CSeq{Seq: 1, Method: MethodRegister},
		Via:  Via{Transport: "UDP", SentBy: "x:5060", Params: map[string]string{"branch": MagicBranchPrefix + "r1"}},
	})
	var tx *ClientTx
	tx = f.layer.Request(txDst, req, nil, nil)
	f.sim.RunUntil(20 * time.Second)
	if tx.interval > TimerT2 {
		t.Errorf("retransmit interval %v exceeds T2", tx.interval)
	}
}

func TestServerTxDedupAndReplay(t *testing.T) {
	f := newTxFixture(t)
	var delivered int
	f.layer.OnRequest(func(tx *ServerTx, req *Message) {
		delivered++
		tx.Respond(NewResponse(req, StatusOK, "s1"))
	})
	req := sampleInvite()
	src := netip.MustParseAddrPort("10.0.0.1:5060")
	f.layer.HandleMessage(src, req)
	if delivered != 1 || len(f.sent) != 1 {
		t.Fatalf("after first rx: delivered=%d sent=%d", delivered, len(f.sent))
	}
	// Retransmission of the same request: handler NOT called again, the
	// response is replayed.
	f.layer.HandleMessage(src, req)
	if delivered != 1 {
		t.Errorf("handler called %d times for retransmission", delivered)
	}
	if len(f.sent) != 2 {
		t.Errorf("response not replayed: sent=%d", len(f.sent))
	}
}

func TestAckTerminatesServerTx(t *testing.T) {
	f := newTxFixture(t)
	f.layer.OnRequest(func(tx *ServerTx, req *Message) {
		if req.Method == MethodInvite {
			tx.Respond(NewResponse(req, StatusOK, "s1"))
		}
	})
	invite := sampleInvite()
	src := netip.MustParseAddrPort("10.0.0.1:5060")
	f.layer.HandleMessage(src, invite)
	if f.layer.ActiveServer() != 1 {
		t.Fatalf("ActiveServer = %d", f.layer.ActiveServer())
	}
	ack := &Message{Method: MethodAck, RequestURI: invite.RequestURI}
	ack.Headers = invite.Headers.Clone()
	ack.Headers.Set(HdrCSeq, CSeq{Seq: 1, Method: MethodAck}.String())
	f.layer.HandleMessage(src, ack)
	if f.layer.ActiveServer() != 0 {
		t.Errorf("ActiveServer = %d after ACK", f.layer.ActiveServer())
	}
}

func TestStrayResponseNotMatched(t *testing.T) {
	f := newTxFixture(t)
	resp := NewResponse(sampleInvite(), StatusOK, "x")
	if f.layer.HandleMessage(txDst, resp) {
		t.Error("stray response reported as handled")
	}
}

func TestTxStateString(t *testing.T) {
	want := map[TxState]string{
		TxCalling: "calling", TxProceeding: "proceeding",
		TxCompleted: "completed", TxTerminated: "terminated", TxState(0): "unknown",
	}
	for s, str := range want {
		if s.String() != str {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), str)
		}
	}
}
