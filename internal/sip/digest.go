package sip

import (
	"crypto/md5"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
)

// Challenge is a Digest WWW-Authenticate challenge.
type Challenge struct {
	Realm string
	Nonce string
}

// String serializes the challenge as a WWW-Authenticate value.
func (c Challenge) String() string {
	return fmt.Sprintf(`Digest realm=%q, nonce=%q, algorithm=MD5`, c.Realm, c.Nonce)
}

// Credentials is a Digest Authorization header value.
type Credentials struct {
	Username string
	Realm    string
	Nonce    string
	URI      string
	Response string
}

// String serializes the credentials as an Authorization value.
func (c Credentials) String() string {
	return fmt.Sprintf(`Digest username=%q, realm=%q, nonce=%q, uri=%q, response=%q`,
		c.Username, c.Realm, c.Nonce, c.URI, c.Response)
}

// parseDigestParams parses the comma-separated key="value" list after the
// Digest keyword.
func parseDigestParams(v string) (map[string]string, error) {
	rest, ok := strings.CutPrefix(strings.TrimSpace(v), "Digest ")
	if !ok {
		return nil, fmt.Errorf("sip: not a Digest header: %q", v)
	}
	params := make(map[string]string)
	for _, part := range strings.Split(rest, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		eq := strings.IndexByte(part, '=')
		if eq <= 0 {
			return nil, fmt.Errorf("sip: bad digest parameter %q", part)
		}
		key := strings.ToLower(strings.TrimSpace(part[:eq]))
		val := strings.Trim(strings.TrimSpace(part[eq+1:]), `"`)
		params[key] = val
	}
	return params, nil
}

// ParseChallenge parses a WWW-Authenticate value.
func ParseChallenge(v string) (Challenge, error) {
	params, err := parseDigestParams(v)
	if err != nil {
		return Challenge{}, err
	}
	c := Challenge{Realm: params["realm"], Nonce: params["nonce"]}
	if c.Realm == "" || c.Nonce == "" {
		return Challenge{}, fmt.Errorf("sip: digest challenge missing realm or nonce: %q", v)
	}
	return c, nil
}

// ParseCredentials parses an Authorization value.
func ParseCredentials(v string) (Credentials, error) {
	params, err := parseDigestParams(v)
	if err != nil {
		return Credentials{}, err
	}
	c := Credentials{
		Username: params["username"],
		Realm:    params["realm"],
		Nonce:    params["nonce"],
		URI:      params["uri"],
		Response: params["response"],
	}
	var missing []string
	for _, kv := range []struct{ k, v string }{
		{"username", c.Username}, {"realm", c.Realm}, {"nonce", c.Nonce}, {"response", c.Response},
	} {
		if kv.v == "" {
			missing = append(missing, kv.k)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		return Credentials{}, fmt.Errorf("sip: digest credentials missing %s", strings.Join(missing, ", "))
	}
	return c, nil
}

func md5hex(s string) string {
	sum := md5.Sum([]byte(s))
	return hex.EncodeToString(sum[:])
}

// DigestResponse computes the RFC 2617 MD5 digest response
// (no qop, as classic SIP digest without auth-int).
func DigestResponse(username, realm, password, nonce string, method Method, uri string) string {
	ha1 := md5hex(username + ":" + realm + ":" + password)
	ha2 := md5hex(string(method) + ":" + uri)
	return md5hex(ha1 + ":" + nonce + ":" + ha2)
}

// VerifyCredentials checks creds against the expected password for the
// request method. It returns false for nonce mismatch or wrong response.
func VerifyCredentials(creds Credentials, password, expectedNonce string, method Method) bool {
	if creds.Nonce != expectedNonce {
		return false
	}
	want := DigestResponse(creds.Username, creds.Realm, password, creds.Nonce, method, creds.URI)
	return creds.Response == want
}
