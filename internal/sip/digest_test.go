package sip

import (
	"strings"
	"testing"
)

func TestChallengeRoundTrip(t *testing.T) {
	c := Challenge{Realm: "scidive.test", Nonce: "abc123"}
	got, err := ParseChallenge(c.String())
	if err != nil {
		t.Fatalf("ParseChallenge: %v", err)
	}
	if got != c {
		t.Errorf("got %+v, want %+v", got, c)
	}
}

func TestCredentialsRoundTrip(t *testing.T) {
	c := Credentials{
		Username: "alice", Realm: "scidive.test", Nonce: "n1",
		URI: "sip:proxy", Response: "deadbeef",
	}
	got, err := ParseCredentials(c.String())
	if err != nil {
		t.Fatalf("ParseCredentials: %v", err)
	}
	if got != c {
		t.Errorf("got %+v, want %+v", got, c)
	}
}

func TestParseDigestErrors(t *testing.T) {
	tests := []struct {
		name string
		in   string
		fn   func(string) error
	}{
		{"challenge not digest", "Basic realm=x", func(s string) error { _, err := ParseChallenge(s); return err }},
		{"challenge missing nonce", `Digest realm="r"`, func(s string) error { _, err := ParseChallenge(s); return err }},
		{"challenge bad param", `Digest realm`, func(s string) error { _, err := ParseChallenge(s); return err }},
		{"creds missing response", `Digest username="u", realm="r", nonce="n"`, func(s string) error { _, err := ParseCredentials(s); return err }},
		{"creds not digest", `Bearer token`, func(s string) error { _, err := ParseCredentials(s); return err }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.fn(tt.in); err == nil {
				t.Errorf("accepted %q", tt.in)
			}
		})
	}
}

func TestDigestResponseKnownVector(t *testing.T) {
	// RFC 2617 section 3.5 example, adapted: verify the algorithm shape by
	// computing both sides identically and checking determinism plus
	// sensitivity to each input.
	base := DigestResponse("alice", "realm", "secret", "nonce1", MethodRegister, "sip:proxy")
	if len(base) != 32 || strings.ToLower(base) != base {
		t.Errorf("digest %q is not lowercase 32-hex", base)
	}
	if again := DigestResponse("alice", "realm", "secret", "nonce1", MethodRegister, "sip:proxy"); again != base {
		t.Error("digest not deterministic")
	}
	variants := []string{
		DigestResponse("bob", "realm", "secret", "nonce1", MethodRegister, "sip:proxy"),
		DigestResponse("alice", "other", "secret", "nonce1", MethodRegister, "sip:proxy"),
		DigestResponse("alice", "realm", "wrong", "nonce1", MethodRegister, "sip:proxy"),
		DigestResponse("alice", "realm", "secret", "nonce2", MethodRegister, "sip:proxy"),
		DigestResponse("alice", "realm", "secret", "nonce1", MethodInvite, "sip:proxy"),
		DigestResponse("alice", "realm", "secret", "nonce1", MethodRegister, "sip:other"),
	}
	for i, v := range variants {
		if v == base {
			t.Errorf("variant %d did not change the digest", i)
		}
	}
}

func TestVerifyCredentials(t *testing.T) {
	const (
		user, realm, pass = "alice", "scidive.test", "wonderland"
		nonce             = "server-nonce"
		uri               = "sip:registrar"
	)
	good := Credentials{
		Username: user, Realm: realm, Nonce: nonce, URI: uri,
		Response: DigestResponse(user, realm, pass, nonce, MethodRegister, uri),
	}
	if !VerifyCredentials(good, pass, nonce, MethodRegister) {
		t.Error("valid credentials rejected")
	}
	if VerifyCredentials(good, "wrongpass", nonce, MethodRegister) {
		t.Error("wrong password accepted")
	}
	if VerifyCredentials(good, pass, "stale-nonce", MethodRegister) {
		t.Error("stale nonce accepted")
	}
	bad := good
	bad.Response = strings.Repeat("0", 32)
	if VerifyCredentials(bad, pass, nonce, MethodRegister) {
		t.Error("forged response accepted")
	}
}
