// Package sip implements the subset of the Session Initiation Protocol
// (RFC 3261) that the SCIDIVE reproduction needs: message parsing and
// serialization (including compact header forms), SIP URIs and name-addr
// headers, digest authentication, client/server transaction matching with
// retransmission, and dialog state tracking.
//
// Both the simulated VoIP system (endpoints, proxy, registrar) and the
// IDS's SIP footprint decoder are built on this package.
package sip
