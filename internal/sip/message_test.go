package sip

import (
	"bytes"
	"strings"
	"testing"
)

// sampleInvite builds a well-formed INVITE for tests.
func sampleInvite() *Message {
	from, _ := ParseAddress(`"Alice" <sip:alice@10.0.0.1>;tag=fromtag`)
	to, _ := ParseAddress(`<sip:bob@10.0.0.2>`)
	contact, _ := ParseAddress(`<sip:alice@10.0.0.1:5060>`)
	return NewRequest(RequestSpec{
		Method:     MethodInvite,
		RequestURI: "sip:bob@10.0.0.2",
		From:       from,
		To:         to,
		CallID:     "abc123@10.0.0.1",
		CSeq:       CSeq{Seq: 1, Method: MethodInvite},
		Via:        Via{Transport: "UDP", SentBy: "10.0.0.1:5060", Params: map[string]string{"branch": MagicBranchPrefix + "deadbeef"}},
		Contact:    &contact,
		Body:       []byte("v=0\r\n"),
		BodyType:   "application/sdp",
	})
}

func TestRequestMarshalParseRoundTrip(t *testing.T) {
	req := sampleInvite()
	raw := req.Marshal()
	got, err := ParseMessage(raw)
	if err != nil {
		t.Fatalf("ParseMessage: %v", err)
	}
	if !got.IsRequest() || got.Method != MethodInvite || got.RequestURI != "sip:bob@10.0.0.2" {
		t.Errorf("start line: %+v", got)
	}
	if got.CallID() != "abc123@10.0.0.1" {
		t.Errorf("Call-ID = %q", got.CallID())
	}
	cseq, err := got.CSeq()
	if err != nil || cseq.Seq != 1 || cseq.Method != MethodInvite {
		t.Errorf("CSeq = %+v err=%v", cseq, err)
	}
	via, err := got.TopVia()
	if err != nil || via.Branch() != MagicBranchPrefix+"deadbeef" {
		t.Errorf("Via = %+v err=%v", via, err)
	}
	from, err := got.From()
	if err != nil || from.Tag() != "fromtag" || from.Display != "Alice" {
		t.Errorf("From = %+v err=%v", from, err)
	}
	if !bytes.Equal(got.Body, []byte("v=0\r\n")) {
		t.Errorf("Body = %q", got.Body)
	}
	if got.Headers.Get(HdrContentType) != "application/sdp" {
		t.Errorf("Content-Type = %q", got.Headers.Get(HdrContentType))
	}
}

func TestResponseMarshalParseRoundTrip(t *testing.T) {
	req := sampleInvite()
	resp := NewResponse(req, StatusOK, "totag99")
	raw := resp.Marshal()
	got, err := ParseMessage(raw)
	if err != nil {
		t.Fatalf("ParseMessage: %v", err)
	}
	if !got.IsResponse() || got.StatusCode != StatusOK || got.ReasonPhrase != "OK" {
		t.Errorf("status line: %+v", got)
	}
	to, err := got.To()
	if err != nil || to.Tag() != "totag99" {
		t.Errorf("To = %+v err=%v", to, err)
	}
	if got.CallID() != req.CallID() {
		t.Errorf("Call-ID not copied: %q", got.CallID())
	}
	// Via must be copied verbatim for routing back.
	if got.Headers.Get(HdrVia) != req.Headers.Get(HdrVia) {
		t.Error("Via not copied to response")
	}
}

func TestNewResponsePreservesExistingToTag(t *testing.T) {
	req := sampleInvite()
	to, _ := req.To()
	req.Headers.Set(HdrTo, to.WithTag("already").String())
	resp := NewResponse(req, StatusOK, "newtag")
	gotTo, err := resp.To()
	if err != nil {
		t.Fatal(err)
	}
	if gotTo.Tag() != "already" {
		t.Errorf("To tag = %q, want preserved %q", gotTo.Tag(), "already")
	}
}

func TestParseCompactHeaders(t *testing.T) {
	raw := "MESSAGE sip:a@b SIP/2.0\r\n" +
		"v: SIP/2.0/UDP 10.0.0.9:5060;branch=z9hG4bKzz\r\n" +
		"f: <sip:mallory@10.0.0.9>;tag=m1\r\n" +
		"t: <sip:a@b>\r\n" +
		"i: compact@test\r\n" +
		"CSeq: 7 MESSAGE\r\n" +
		"c: text/plain\r\n" +
		"l: 5\r\n" +
		"\r\n" +
		"hello"
	m, err := ParseMessage([]byte(raw))
	if err != nil {
		t.Fatalf("ParseMessage: %v", err)
	}
	if m.CallID() != "compact@test" {
		t.Errorf("Call-ID = %q", m.CallID())
	}
	if got := m.Headers.Get(HdrContentType); got != "text/plain" {
		t.Errorf("Content-Type = %q", got)
	}
	if string(m.Body) != "hello" {
		t.Errorf("Body = %q", m.Body)
	}
}

func TestParseFoldedHeader(t *testing.T) {
	raw := "OPTIONS sip:a@b SIP/2.0\r\n" +
		"Via: SIP/2.0/UDP 10.0.0.1\r\n" +
		"From: <sip:x@y>;\r\n\ttag=folded\r\n" +
		"To: <sip:a@b>\r\n" +
		"Call-ID: f@x\r\n" +
		"CSeq: 1 OPTIONS\r\n\r\n"
	m, err := ParseMessage([]byte(raw))
	if err != nil {
		t.Fatalf("ParseMessage: %v", err)
	}
	from, err := m.From()
	if err != nil || from.Tag() != "folded" {
		t.Errorf("From = %+v err=%v", from, err)
	}
}

func TestContentLengthTruncatesBody(t *testing.T) {
	raw := "MESSAGE sip:a@b SIP/2.0\r\n" +
		"Via: SIP/2.0/UDP h\r\nFrom: <sip:x@y>\r\nTo: <sip:a@b>\r\n" +
		"Call-ID: cl@x\r\nCSeq: 1 MESSAGE\r\n" +
		"Content-Length: 3\r\n\r\nabcdef"
	m, err := ParseMessage([]byte(raw))
	if err != nil {
		t.Fatalf("ParseMessage: %v", err)
	}
	if string(m.Body) != "abc" {
		t.Errorf("Body = %q, want %q", m.Body, "abc")
	}
}

func TestParseErrors(t *testing.T) {
	base := "Via: SIP/2.0/UDP h\r\nFrom: <sip:x@y>\r\nTo: <sip:a@b>\r\nCall-ID: e@x\r\nCSeq: 1 INVITE\r\n"
	tests := []struct {
		name string
		raw  string
	}{
		{"empty", ""},
		{"garbage start line", "NOT A SIP LINE\r\n" + base + "\r\n"},
		{"bad status code", "SIP/2.0 xyz Bad\r\n" + base + "\r\n"},
		{"status out of range", "SIP/2.0 99 Low\r\n" + base + "\r\n"},
		{"missing call-id", "INVITE sip:a@b SIP/2.0\r\nVia: SIP/2.0/UDP h\r\nFrom: <sip:x@y>\r\nTo: <sip:a@b>\r\nCSeq: 1 INVITE\r\n\r\n"},
		{"cseq method mismatch", "BYE sip:a@b SIP/2.0\r\n" + base + "\r\n"},
		{"bad content-length", "INVITE sip:a@b SIP/2.0\r\n" + base + "Content-Length: kk\r\n\r\n"},
		{"content-length beyond body", "INVITE sip:a@b SIP/2.0\r\n" + base + "Content-Length: 99\r\n\r\nxx"},
		{"header without colon", "INVITE sip:a@b SIP/2.0\r\nViaNoColon\r\n" + base + "\r\n"},
		{"continuation without header", "INVITE sip:a@b SIP/2.0\r\n continuation\r\n" + base + "\r\n"},
		{"bad request uri", "INVITE http://x SIP/2.0\r\n" + base + "\r\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ParseMessage([]byte(tt.raw)); err == nil {
				t.Errorf("ParseMessage accepted %q", tt.raw)
			}
		})
	}
}

func TestHeadersOperations(t *testing.T) {
	var h Headers
	h.Add("via", "first")
	h.Add("VIA", "second")
	h.Add("From", "f")
	if got := h.Values(HdrVia); len(got) != 2 || got[0] != "first" {
		t.Errorf("Values(Via) = %v", got)
	}
	h.PrependVia("zeroth")
	if got := h.Values(HdrVia); len(got) != 3 || got[0] != "zeroth" {
		t.Errorf("after PrependVia: %v", got)
	}
	h.RemoveFirstVia()
	if got := h.Get(HdrVia); got != "first" {
		t.Errorf("after RemoveFirstVia: Get = %q", got)
	}
	h.Set(HdrVia, "only")
	if got := h.Values(HdrVia); len(got) != 1 || got[0] != "only" {
		t.Errorf("after Set: %v", got)
	}
	h.Del(HdrVia)
	if h.Get(HdrVia) != "" {
		t.Error("Del left a Via behind")
	}
	clone := h.Clone()
	clone.Set("From", "changed")
	if h.Get("From") != "f" {
		t.Error("Clone is not independent")
	}
}

func TestPrependViaOnEmptyHeaders(t *testing.T) {
	var h Headers
	h.Add(HdrFrom, "f")
	h.PrependVia("v1")
	if got := h.Get(HdrVia); got != "v1" {
		t.Errorf("Get(Via) = %q", got)
	}
}

func TestCanonicalHeaderName(t *testing.T) {
	tests := []struct{ in, want string }{
		{"call-id", "Call-ID"},
		{"CALL-ID", "Call-ID"},
		{"i", "Call-ID"},
		{"cseq", "CSeq"},
		{"www-authenticate", "WWW-Authenticate"},
		{"content-length", "Content-Length"},
		{"l", "Content-Length"},
		{"x-custom-header", "X-Custom-Header"},
	}
	for _, tt := range tests {
		if got := CanonicalHeaderName(tt.in); got != tt.want {
			t.Errorf("CanonicalHeaderName(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestMarshalSetsContentLength(t *testing.T) {
	req := sampleInvite()
	raw := string(req.Marshal())
	if !strings.Contains(raw, "Content-Length: 5\r\n") {
		t.Errorf("marshaled message missing correct Content-Length:\n%s", raw)
	}
}

func TestViaParse(t *testing.T) {
	v, err := ParseVia("SIP/2.0/UDP 10.0.0.1:5060;branch=z9hG4bKx;received=10.0.0.9")
	if err != nil {
		t.Fatalf("ParseVia: %v", err)
	}
	if v.Transport != "UDP" || v.SentBy != "10.0.0.1:5060" {
		t.Errorf("Via = %+v", v)
	}
	if v.Params["received"] != "10.0.0.9" {
		t.Errorf("received = %q", v.Params["received"])
	}
	for _, bad := range []string{"", "SIP/2.0/UDP", "HTTP/1.1/TCP host", "SIP/1.0/UDP host"} {
		if _, err := ParseVia(bad); err == nil {
			t.Errorf("ParseVia(%q): want error", bad)
		}
	}
}

func TestReasonFor(t *testing.T) {
	if got := ReasonFor(StatusRinging); got != "Ringing" {
		t.Errorf("ReasonFor(180) = %q", got)
	}
	if got := ReasonFor(299); got != "Unknown" {
		t.Errorf("ReasonFor(299) = %q", got)
	}
}
