package sip

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
)

// crlf is the SIP line terminator; bare LF is tolerated on input.
var crlf = []byte("\r\n")

// ParseMessage parses a SIP request or response from raw bytes. Header
// line folding (continuation lines beginning with space or tab) is
// unfolded. When Content-Length is present the body is truncated or
// validated against it; when absent the remainder of the buffer is the
// body.
func ParseMessage(raw []byte) (*Message, error) {
	headerEnd := bytes.Index(raw, []byte("\r\n\r\n"))
	sepLen := 4
	if headerEnd < 0 {
		headerEnd = bytes.Index(raw, []byte("\n\n"))
		sepLen = 2
	}
	var head, body []byte
	if headerEnd < 0 {
		head = raw
	} else {
		head = raw[:headerEnd]
		body = raw[headerEnd+sepLen:]
	}
	lines := splitLines(head)
	if len(lines) == 0 || len(bytes.TrimSpace(lines[0])) == 0 {
		return nil, fmt.Errorf("sip: empty message")
	}
	m := &Message{}
	if err := parseStartLine(m, string(lines[0])); err != nil {
		return nil, err
	}
	if err := parseHeaders(&m.Headers, lines[1:]); err != nil {
		return nil, err
	}
	if clv := m.Headers.Get(HdrContentLength); clv != "" {
		cl, err := strconv.Atoi(strings.TrimSpace(clv))
		if err != nil || cl < 0 {
			return nil, fmt.Errorf("sip: bad Content-Length %q", clv)
		}
		if cl > len(body) {
			return nil, fmt.Errorf("sip: Content-Length %d exceeds body of %d bytes", cl, len(body))
		}
		body = body[:cl]
	}
	m.Body = body
	if err := validateMandatory(m); err != nil {
		return nil, err
	}
	return m, nil
}

// splitLines splits on CRLF or LF.
func splitLines(b []byte) [][]byte {
	var lines [][]byte
	for len(b) > 0 {
		i := bytes.IndexByte(b, '\n')
		if i < 0 {
			lines = append(lines, b)
			break
		}
		line := b[:i]
		line = bytes.TrimSuffix(line, []byte("\r"))
		lines = append(lines, line)
		b = b[i+1:]
	}
	return lines
}

func parseStartLine(m *Message, line string) error {
	if strings.HasPrefix(line, "SIP/2.0 ") {
		rest := line[len("SIP/2.0 "):]
		sp := strings.IndexByte(rest, ' ')
		codeStr, reason := rest, ""
		if sp >= 0 {
			codeStr, reason = rest[:sp], rest[sp+1:]
		}
		code, err := strconv.Atoi(codeStr)
		if err != nil || code < 100 || code > 699 {
			return fmt.Errorf("sip: bad status code %q", codeStr)
		}
		m.StatusCode = code
		m.ReasonPhrase = reason
		return nil
	}
	f := strings.SplitN(line, " ", 3)
	if len(f) != 3 || f[2] != "SIP/2.0" {
		return fmt.Errorf("sip: bad start line %q", line)
	}
	if f[0] == "" || f[1] == "" {
		return fmt.Errorf("sip: bad start line %q", line)
	}
	if !isToken(f[0]) {
		return fmt.Errorf("sip: method %q is not a valid token", f[0])
	}
	m.Method = Method(f[0])
	m.RequestURI = f[1]
	return nil
}

// isToken reports whether s is a valid RFC 3261 token (the charset for
// methods and similar fields).
func isToken(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case strings.IndexByte("-.!%*_+`'~", c) >= 0:
		default:
			return false
		}
	}
	return true
}

func parseHeaders(h *Headers, lines [][]byte) error {
	var name, value string
	flush := func() {
		if name != "" {
			h.Add(name, strings.TrimSpace(value))
		}
		name, value = "", ""
	}
	for _, raw := range lines {
		line := string(raw)
		if line == "" {
			continue
		}
		if line[0] == ' ' || line[0] == '\t' {
			if name == "" {
				return fmt.Errorf("sip: continuation line %q without preceding header", line)
			}
			value += " " + strings.TrimSpace(line)
			continue
		}
		flush()
		colon := strings.IndexByte(line, ':')
		if colon <= 0 {
			return fmt.Errorf("sip: malformed header line %q", line)
		}
		name = line[:colon]
		value = line[colon+1:]
	}
	flush()
	return nil
}

// validateMandatory checks the headers every SIP message must carry
// (RFC 3261 section 8.1.1). Messages failing this check are what the
// paper's "incorrectly formatted SIP message" event refers to.
func validateMandatory(m *Message) error {
	var missing []string
	for _, hdr := range []string{HdrVia, HdrFrom, HdrTo, HdrCallID, HdrCSeq} {
		if m.Headers.Get(hdr) == "" {
			missing = append(missing, hdr)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("sip: missing mandatory headers: %s", strings.Join(missing, ", "))
	}
	if _, err := m.CSeq(); err != nil {
		return err
	}
	if _, err := m.TopVia(); err != nil {
		return err
	}
	if m.IsRequest() {
		cseq, _ := m.CSeq()
		if cseq.Method != m.Method {
			return fmt.Errorf("sip: CSeq method %s does not match request method %s", cseq.Method, m.Method)
		}
		if _, err := ParseURI(m.RequestURI); err != nil {
			return fmt.Errorf("sip: bad request URI: %w", err)
		}
	}
	return nil
}
