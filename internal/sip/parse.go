package sip

import (
	"fmt"
	"strings"
)

// crlf is the SIP line terminator; bare LF is tolerated on input.
var crlf = []byte("\r\n")

// ParseMessage parses a SIP request or response from raw bytes. Header
// line folding (continuation lines beginning with space or tab) is
// unfolded. When Content-Length is present the body is truncated or
// validated against it; when absent the remainder of the buffer is the
// body. Nothing in the returned Message aliases raw (the body is
// copied), so the caller may recycle raw immediately.
//
// ParseMessage borrows a pooled Parser; callers parsing in a loop should
// hold their own Parser (see Parser) to keep its intern table warm.
func ParseMessage(raw []byte) (*Message, error) {
	p := AcquireParser()
	defer ReleaseParser(p)
	return p.Parse(raw)
}

// isToken reports whether s is a valid RFC 3261 token (the charset for
// methods and similar fields).
func isToken(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case strings.IndexByte("-.!%*_+`'~", c) >= 0:
		default:
			return false
		}
	}
	return true
}

// validateMandatory checks the headers every SIP message must carry
// (RFC 3261 section 8.1.1). Messages failing this check are what the
// paper's "incorrectly formatted SIP message" event refers to.
func validateMandatory(m *Message) error {
	var missing []string
	for _, hdr := range []string{HdrVia, HdrFrom, HdrTo, HdrCallID, HdrCSeq} {
		if m.Headers.Get(hdr) == "" {
			missing = append(missing, hdr)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("sip: missing mandatory headers: %s", strings.Join(missing, ", "))
	}
	if _, err := m.CSeq(); err != nil {
		return err
	}
	if _, err := m.TopVia(); err != nil {
		return err
	}
	if m.IsRequest() {
		cseq, _ := m.CSeq()
		if cseq.Method != m.Method {
			return fmt.Errorf("sip: CSeq method %s does not match request method %s", cseq.Method, m.Method)
		}
		if _, err := ParseURI(m.RequestURI); err != nil {
			return fmt.Errorf("sip: bad request URI: %w", err)
		}
	}
	return nil
}
