package sip

import (
	"fmt"
	"strconv"
	"strings"
)

// Method is a SIP request method.
type Method string

// Methods used in this codebase (RFC 3261 plus MESSAGE from RFC 3428).
const (
	MethodRegister Method = "REGISTER"
	MethodInvite   Method = "INVITE"
	MethodAck      Method = "ACK"
	MethodBye      Method = "BYE"
	MethodCancel   Method = "CANCEL"
	MethodOptions  Method = "OPTIONS"
	MethodMessage  Method = "MESSAGE"
)

// Common status codes.
const (
	StatusTrying             = 100
	StatusRinging            = 180
	StatusOK                 = 200
	StatusBadRequest         = 400
	StatusUnauthorized       = 401
	StatusForbidden          = 403
	StatusNotFound           = 404
	StatusProxyAuthRequired  = 407
	StatusRequestTimeout     = 408
	StatusBusyHere           = 486
	StatusRequestTerminated  = 487
	StatusServerError        = 500
	StatusNotImplemented     = 501
	StatusServiceUnavailable = 503
	StatusDeclined           = 603
)

var reasonPhrases = map[int]string{
	StatusTrying:             "Trying",
	StatusRinging:            "Ringing",
	StatusOK:                 "OK",
	StatusBadRequest:         "Bad Request",
	StatusUnauthorized:       "Unauthorized",
	StatusForbidden:          "Forbidden",
	StatusNotFound:           "Not Found",
	StatusProxyAuthRequired:  "Proxy Authentication Required",
	StatusRequestTimeout:     "Request Timeout",
	StatusBusyHere:           "Busy Here",
	StatusRequestTerminated:  "Request Terminated",
	StatusServerError:        "Server Internal Error",
	StatusNotImplemented:     "Not Implemented",
	StatusServiceUnavailable: "Service Unavailable",
	StatusDeclined:           "Decline",
}

// ReasonFor returns the standard reason phrase for a status code.
func ReasonFor(code int) string {
	if r, ok := reasonPhrases[code]; ok {
		return r
	}
	return "Unknown"
}

// Standard header names (canonical capitalization) used throughout.
const (
	HdrVia           = "Via"
	HdrFrom          = "From"
	HdrTo            = "To"
	HdrCallID        = "Call-ID"
	HdrCSeq          = "CSeq"
	HdrContact       = "Contact"
	HdrMaxForwards   = "Max-Forwards"
	HdrContentType   = "Content-Type"
	HdrContentLength = "Content-Length"
	HdrExpires       = "Expires"
	HdrWWWAuth       = "WWW-Authenticate"
	HdrAuthorization = "Authorization"
	HdrRoute         = "Route"
	HdrRecordRoute   = "Record-Route"
	HdrUserAgent     = "User-Agent"
)

// compactForms maps RFC 3261 compact header names to canonical names.
var compactForms = map[string]string{
	"v": HdrVia,
	"f": HdrFrom,
	"t": HdrTo,
	"i": HdrCallID,
	"m": HdrContact,
	"c": HdrContentType,
	"l": HdrContentLength,
	"s": "Subject",
	"k": "Supported",
	"e": "Content-Encoding",
}

// canonNames resolves the header-name spellings seen in practice
// (canonical, all-lowercase, and compact forms) without allocating; every
// Headers accessor canonicalizes, so this lookup keeps Get/Add off the
// heap on the hot path. Unlisted spellings fall back to the folding code.
var canonNames = map[string]string{}

func init() {
	for _, n := range []string{
		HdrVia, HdrFrom, HdrTo, HdrCallID, HdrCSeq, HdrContact,
		HdrMaxForwards, HdrContentType, HdrContentLength, HdrExpires,
		HdrWWWAuth, HdrAuthorization, HdrRoute, HdrRecordRoute,
		HdrUserAgent, "Subject", "Supported", "Content-Encoding",
	} {
		canonNames[n] = n
		canonNames[strings.ToLower(n)] = n
	}
	for c, full := range compactForms {
		canonNames[c] = full
		canonNames[strings.ToUpper(c)] = full
	}
}

// CanonicalHeaderName normalizes a header name: compact forms expand and
// case is folded to the usual SIP capitalization.
func CanonicalHeaderName(name string) string {
	if full, ok := canonNames[name]; ok {
		return full
	}
	lower := strings.ToLower(strings.TrimSpace(name))
	if full, ok := compactForms[lower]; ok {
		return full
	}
	// Special cases whose canonical form is not Title-Case-By-Dash.
	switch lower {
	case "call-id":
		return HdrCallID
	case "cseq":
		return HdrCSeq
	case "www-authenticate":
		return HdrWWWAuth
	}
	parts := strings.Split(lower, "-")
	for i, p := range parts {
		if p == "" {
			continue
		}
		parts[i] = strings.ToUpper(p[:1]) + p[1:]
	}
	return strings.Join(parts, "-")
}

// headerField is one header line.
type headerField struct {
	name  string // canonical
	value string
}

// Headers is an ordered collection of SIP header fields. The zero value
// is an empty header set ready for use.
type Headers struct {
	fields []headerField
}

// Add appends a header field.
func (h *Headers) Add(name, value string) {
	h.fields = append(h.fields, headerField{name: CanonicalHeaderName(name), value: value})
}

// Set replaces all fields with the given name by a single field.
func (h *Headers) Set(name, value string) {
	h.Del(name)
	h.Add(name, value)
}

// Del removes all fields with the given name.
func (h *Headers) Del(name string) {
	name = CanonicalHeaderName(name)
	out := h.fields[:0]
	for _, f := range h.fields {
		if f.name != name {
			out = append(out, f)
		}
	}
	h.fields = out
}

// Get returns the first value of the named header, or "".
func (h *Headers) Get(name string) string {
	name = CanonicalHeaderName(name)
	for _, f := range h.fields {
		if f.name == name {
			return f.value
		}
	}
	return ""
}

// Values returns all values of the named header in order.
func (h *Headers) Values(name string) []string {
	name = CanonicalHeaderName(name)
	var vals []string
	for _, f := range h.fields {
		if f.name == name {
			vals = append(vals, f.value)
		}
	}
	return vals
}

// Count returns how many fields carry the given name, without
// materializing their values (the allocation-free form of len(Values)).
func (h *Headers) Count(name string) int {
	name = CanonicalHeaderName(name)
	n := 0
	for _, f := range h.fields {
		if f.name == name {
			n++
		}
	}
	return n
}

// Has reports whether at least one field with the given name exists.
func (h *Headers) Has(name string) bool { return h.Get(name) != "" || len(h.Values(name)) > 0 }

// Len returns the number of header fields.
func (h *Headers) Len() int { return len(h.fields) }

// Clone returns a deep copy.
func (h *Headers) Clone() Headers {
	return Headers{fields: append([]headerField(nil), h.fields...)}
}

// Each calls fn for every field in order.
func (h *Headers) Each(fn func(name, value string)) {
	for _, f := range h.fields {
		fn(f.name, f.value)
	}
}

// PrependVia inserts a Via value before existing Via fields (proxy
// behavior when forwarding a request).
func (h *Headers) PrependVia(value string) {
	fields := make([]headerField, 0, len(h.fields)+1)
	inserted := false
	for _, f := range h.fields {
		if !inserted && f.name == HdrVia {
			fields = append(fields, headerField{name: HdrVia, value: value})
			inserted = true
		}
		fields = append(fields, f)
	}
	if !inserted {
		fields = append([]headerField{{name: HdrVia, value: value}}, fields...)
	}
	h.fields = fields
}

// RemoveFirstVia deletes the topmost Via field (proxy behavior when
// forwarding a response).
func (h *Headers) RemoveFirstVia() {
	for i, f := range h.fields {
		if f.name == HdrVia {
			h.fields = append(h.fields[:i], h.fields[i+1:]...)
			return
		}
	}
}

// Message is a SIP request or response. A request has Method set; a
// response has StatusCode set.
type Message struct {
	// Request start line.
	Method     Method
	RequestURI string

	// Response start line.
	StatusCode   int
	ReasonPhrase string

	Headers Headers
	Body    []byte
}

// IsRequest reports whether m is a request.
func (m *Message) IsRequest() bool { return m.Method != "" && m.StatusCode == 0 }

// IsResponse reports whether m is a response.
func (m *Message) IsResponse() bool { return m.StatusCode != 0 }

// CallID returns the Call-ID header value.
func (m *Message) CallID() string { return m.Headers.Get(HdrCallID) }

// From returns the parsed From header.
func (m *Message) From() (Address, error) { return ParseAddress(m.Headers.Get(HdrFrom)) }

// To returns the parsed To header.
func (m *Message) To() (Address, error) { return ParseAddress(m.Headers.Get(HdrTo)) }

// Contact returns the parsed first Contact header.
func (m *Message) Contact() (Address, error) { return ParseAddress(m.Headers.Get(HdrContact)) }

// CSeq is a parsed CSeq header.
type CSeq struct {
	Seq    uint32
	Method Method
}

// String serializes the CSeq value.
func (c CSeq) String() string { return fmt.Sprintf("%d %s", c.Seq, c.Method) }

// CSeq returns the parsed CSeq header.
func (m *Message) CSeq() (CSeq, error) {
	return ParseCSeq(m.Headers.Get(HdrCSeq))
}

// ParseCSeq parses a CSeq header value.
func ParseCSeq(v string) (CSeq, error) {
	f := strings.Fields(v)
	if len(f) != 2 {
		return CSeq{}, fmt.Errorf("sip: bad CSeq %q", v)
	}
	n, err := strconv.ParseUint(f[0], 10, 32)
	if err != nil {
		return CSeq{}, fmt.Errorf("sip: bad CSeq number %q", f[0])
	}
	return CSeq{Seq: uint32(n), Method: Method(f[1])}, nil
}

// Via is a parsed Via header value.
type Via struct {
	Transport string // "UDP"
	SentBy    string // host[:port]
	Params    map[string]string
}

// ParseVia parses one Via header value, e.g.
// "SIP/2.0/UDP 10.0.0.1:5060;branch=z9hG4bK776asdhds".
func ParseVia(v string) (Via, error) {
	parts := strings.SplitN(strings.TrimSpace(v), " ", 2)
	if len(parts) != 2 {
		return Via{}, fmt.Errorf("sip: bad Via %q", v)
	}
	proto := strings.Split(parts[0], "/")
	if len(proto) != 3 || proto[0] != "SIP" || proto[1] != "2.0" {
		return Via{}, fmt.Errorf("sip: bad Via protocol %q", parts[0])
	}
	rest := strings.TrimSpace(parts[1])
	sentBy := rest
	var params map[string]string
	if semi := strings.IndexByte(rest, ';'); semi >= 0 {
		sentBy = rest[:semi]
		var err error
		params, err = parseParams(rest[semi+1:])
		if err != nil {
			return Via{}, fmt.Errorf("sip: bad Via params in %q: %w", v, err)
		}
	}
	return Via{Transport: proto[2], SentBy: sentBy, Params: params}, nil
}

// String serializes the Via value.
func (v Via) String() string {
	return "SIP/2.0/" + v.Transport + " " + v.SentBy + formatParams(v.Params)
}

// Branch returns the branch parameter, or "".
func (v Via) Branch() string { return v.Params["branch"] }

// TopVia returns the parsed first Via header of the message.
func (m *Message) TopVia() (Via, error) {
	return ParseVia(m.Headers.Get(HdrVia))
}

// Marshal serializes the message with a correct Content-Length.
func (m *Message) Marshal() []byte {
	var b strings.Builder
	if m.IsRequest() {
		fmt.Fprintf(&b, "%s %s SIP/2.0\r\n", m.Method, m.RequestURI)
	} else {
		reason := m.ReasonPhrase
		if reason == "" {
			reason = ReasonFor(m.StatusCode)
		}
		fmt.Fprintf(&b, "SIP/2.0 %d %s\r\n", m.StatusCode, reason)
	}
	wroteCL := false
	m.Headers.Each(func(name, value string) {
		if name == HdrContentLength {
			if wroteCL {
				return
			}
			wroteCL = true
			fmt.Fprintf(&b, "%s: %d\r\n", HdrContentLength, len(m.Body))
			return
		}
		fmt.Fprintf(&b, "%s: %s\r\n", name, value)
	})
	if !wroteCL {
		fmt.Fprintf(&b, "%s: %d\r\n", HdrContentLength, len(m.Body))
	}
	b.WriteString("\r\n")
	b.Write(m.Body)
	return []byte(b.String())
}

// String returns a compact one-line description for logs.
func (m *Message) String() string {
	if m.IsRequest() {
		return fmt.Sprintf("%s %s (Call-ID %s)", m.Method, m.RequestURI, m.CallID())
	}
	return fmt.Sprintf("%d %s (Call-ID %s)", m.StatusCode, m.ReasonPhrase, m.CallID())
}
