package sip

import "testing"

func BenchmarkParseMessage(b *testing.B) {
	raw := sampleInvite().Marshal()
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseMessage(raw); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMarshalMessage(b *testing.B) {
	m := sampleInvite()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if buf := m.Marshal(); len(buf) == 0 {
			b.Fatal("empty marshal")
		}
	}
}

func BenchmarkParseAddress(b *testing.B) {
	const addr = `"Alice Wonder" <sip:alice@10.0.0.1:5070;transport=udp>;tag=88sja8x`
	for i := 0; i < b.N; i++ {
		if _, err := ParseAddress(addr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDigestResponse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		DigestResponse("alice", "realm", "secret", "nonce", MethodRegister, "sip:proxy")
	}
}
