package sip

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

func frameAll(f *StreamFramer, data []byte) [][]byte {
	var out [][]byte
	f.Push(data, func(m []byte) { out = append(out, append([]byte(nil), m...)) })
	return out
}

func framerMsg(callID string, body string) string {
	return "INVITE sip:bob@example.com SIP/2.0\r\n" +
		"Via: SIP/2.0/TCP 10.0.0.1:5060\r\n" +
		"From: <sip:alice@example.com>;tag=1\r\n" +
		"To: <sip:bob@example.com>\r\n" +
		"Call-ID: " + callID + "\r\n" +
		"CSeq: 1 INVITE\r\n" +
		fmt.Sprintf("Content-Length: %d\r\n", len(body)) +
		"\r\n" + body
}

func TestFramerWholeMessage(t *testing.T) {
	var f StreamFramer
	msg := framerMsg("one@test", "v=0\r\n")
	got := frameAll(&f, []byte(msg))
	if len(got) != 1 || string(got[0]) != msg {
		t.Fatalf("framed %d messages; first %q", len(got), got)
	}
	if f.PendingBytes() != 0 {
		t.Errorf("PendingBytes = %d", f.PendingBytes())
	}
}

func TestFramerSplitAtEveryByte(t *testing.T) {
	msgs := []string{
		framerMsg("a@test", "v=0\r\nm=audio 4000 RTP/AVP 0\r\n"),
		framerMsg("b@test", ""),
		framerMsg("c@test", "binary\r\n\r\nwith separator inside"),
	}
	stream := []byte(strings.Join(msgs, ""))
	for cut := 1; cut < len(stream); cut++ {
		var f StreamFramer
		var got [][]byte
		emit := func(m []byte) { got = append(got, append([]byte(nil), m...)) }
		f.Push(stream[:cut], emit)
		f.Push(stream[cut:], emit)
		if len(got) != len(msgs) {
			t.Fatalf("cut %d: framed %d messages, want %d", cut, len(got), len(msgs))
		}
		for i := range msgs {
			if string(got[i]) != msgs[i] {
				t.Fatalf("cut %d: message %d mismatch:\n%q\nwant\n%q", cut, i, got[i], msgs[i])
			}
		}
	}
}

func TestFramerCoalescedMessages(t *testing.T) {
	msgs := []string{
		framerMsg("x@test", "abc"),
		framerMsg("y@test", ""),
		framerMsg("z@test", "0123456789"),
	}
	var f StreamFramer
	got := frameAll(&f, []byte(strings.Join(msgs, "")))
	if len(got) != 3 {
		t.Fatalf("framed %d messages, want 3", len(got))
	}
	for i := range msgs {
		if string(got[i]) != msgs[i] {
			t.Errorf("message %d mismatch", i)
		}
	}
}

func TestFramerKeepAliveCRLF(t *testing.T) {
	msg := framerMsg("ka@test", "x")
	var f StreamFramer
	got := frameAll(&f, []byte("\r\n\r\n"+msg+"\r\n"))
	if len(got) != 1 || string(got[0]) != msg {
		t.Fatalf("keep-alive handling framed %d messages", len(got))
	}
}

func TestFramerNoContentLength(t *testing.T) {
	// Absent Content-Length frames a zero-length body (stream transports
	// cannot rely on "rest of datagram"). Trailing bytes belong to the
	// next message.
	msg := "OPTIONS sip:a@b SIP/2.0\r\nVia: SIP/2.0/TCP h\r\nFrom: <sip:x@y>;tag=9\r\nTo: <sip:a@b>\r\nCall-ID: nc@t\r\nCSeq: 1 OPTIONS\r\n\r\n"
	var f StreamFramer
	got := frameAll(&f, []byte(msg))
	if len(got) != 1 || string(got[0]) != msg {
		t.Fatalf("framed %v", got)
	}
}

func TestFramerCompactContentLength(t *testing.T) {
	msg := "MESSAGE sip:a@b SIP/2.0\r\nVia: SIP/2.0/TCP h\r\nFrom: <sip:x@y>;tag=2\r\nTo: <sip:a@b>\r\nCall-ID: cc@t\r\nCSeq: 1 MESSAGE\r\nl: 5\r\n\r\nhello"
	var f StreamFramer
	got := frameAll(&f, []byte(msg))
	if len(got) != 1 || string(got[0]) != msg {
		t.Fatalf("compact form framed %v", got)
	}
}

func TestFramerBadContentLengthResyncs(t *testing.T) {
	bad := "INVITE sip:a@b SIP/2.0\r\nContent-Length: huge\r\n\r\n"
	good := framerMsg("ok@test", "yes")
	var f StreamFramer
	got := frameAll(&f, []byte(bad+good))
	if len(got) != 1 || string(got[0]) != good {
		t.Fatalf("resync framed %d messages", len(got))
	}
	if f.Dropped() != 1 {
		t.Errorf("Dropped = %d, want 1", f.Dropped())
	}
}

func TestFramerHeaderOverflowDrops(t *testing.T) {
	var f StreamFramer
	junk := bytes.Repeat([]byte("x"), framerMaxHeader+100)
	got := frameAll(&f, junk)
	if len(got) != 0 {
		t.Fatalf("junk framed %d messages", len(got))
	}
	if f.Dropped() != 1 {
		t.Errorf("Dropped = %d, want 1", f.Dropped())
	}
	if f.PendingBytes() != 0 {
		t.Errorf("PendingBytes = %d after overflow drop", f.PendingBytes())
	}
}

func TestFramerStateRoundTrip(t *testing.T) {
	msg := framerMsg("st@test", "body-bytes")
	cut := len(msg) / 2
	var f1 StreamFramer
	if got := frameAll(&f1, []byte(msg[:cut])); len(got) != 0 {
		t.Fatalf("half a message framed %d messages", len(got))
	}
	var f2 StreamFramer
	f2.SetState(f1.State())
	got := frameAll(&f2, []byte(msg[cut:]))
	if len(got) != 1 || string(got[0]) != msg {
		t.Fatalf("restored framer produced %v", got)
	}
}

// FuzzSIPStreamFramer checks split-invariance: a stream of well-formed
// messages framed at arbitrary split points yields exactly the original
// messages, byte for byte, regardless of where the cuts fall.
func FuzzSIPStreamFramer(f *testing.F) {
	f.Add([]byte("abc"), uint16(10), uint16(40))
	f.Add([]byte("v=0\r\n"), uint16(1), uint16(3))
	f.Add([]byte(""), uint16(0), uint16(999))
	f.Fuzz(func(t *testing.T, body []byte, cut1, cut2 uint16) {
		if len(body) > 1024 {
			body = body[:1024]
		}
		msgs := []string{
			framerMsg("f1@test", string(body)),
			framerMsg("f2@test", ""),
			framerMsg("f3@test", string(body)+"tail"),
		}
		stream := []byte(strings.Join(msgs, ""))
		a, b := int(cut1)%(len(stream)+1), int(cut2)%(len(stream)+1)
		if a > b {
			a, b = b, a
		}
		var fr StreamFramer
		var got [][]byte
		emit := func(m []byte) { got = append(got, append([]byte(nil), m...)) }
		fr.Push(stream[:a], emit)
		fr.Push(stream[a:b], emit)
		fr.Push(stream[b:], emit)
		if len(got) != len(msgs) {
			t.Fatalf("framed %d messages, want %d (cuts %d,%d)", len(got), len(msgs), a, b)
		}
		for i := range msgs {
			if string(got[i]) != msgs[i] {
				t.Fatalf("message %d differs at cuts %d,%d", i, a, b)
			}
		}
	})
}
