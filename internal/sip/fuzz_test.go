package sip

import (
	"bytes"
	"reflect"
	"testing"
)

// Native fuzz targets. Under plain `go test` these run their seed corpus;
// use `go test -fuzz=FuzzParseMessage ./internal/sip` for exploration.

func FuzzParseMessage(f *testing.F) {
	f.Add([]byte("INVITE sip:bob@example.com SIP/2.0\r\nVia: SIP/2.0/UDP h;branch=z9hG4bK1\r\nFrom: <sip:a@x>;tag=1\r\nTo: <sip:b@y>\r\nCall-ID: fz@x\r\nCSeq: 1 INVITE\r\n\r\n"))
	f.Add([]byte("SIP/2.0 200 OK\r\nVia: SIP/2.0/UDP h\r\nFrom: <sip:a@x>\r\nTo: <sip:b@y>;tag=2\r\nCall-ID: fz@x\r\nCSeq: 1 INVITE\r\n\r\n"))
	f.Add(sampleInvite().Marshal())
	f.Add([]byte("\r\n\r\n"))
	f.Add([]byte("REGISTER sip:r SIP/2.0\r\nl: 999999\r\n\r\n"))
	f.Fuzz(func(t *testing.T, raw []byte) {
		m, err := ParseMessage(raw)
		if err != nil {
			return
		}
		// Any message that parses must re-marshal and re-parse cleanly.
		again, err := ParseMessage(m.Marshal())
		if err != nil {
			t.Fatalf("re-parse of marshaled message failed: %v\noriginal: %q", err, raw)
		}
		if again.IsRequest() != m.IsRequest() {
			t.Fatalf("request/response flipped on round trip")
		}
		if !bytes.Equal(again.Body, m.Body) {
			t.Fatalf("body changed on round trip: %q vs %q", m.Body, again.Body)
		}
	})
}

// FuzzParserReuse proves a recycled Parser never leaks state between
// messages: one long-lived parser (its intern table and fold buffer
// accumulating across every fuzz input) must produce exactly the result
// a fresh parser does — same error text, same Message — and ParseInto
// into a reused Message must match field for field.
func FuzzParserReuse(f *testing.F) {
	f.Add([]byte("INVITE sip:bob@example.com SIP/2.0\r\nVia: SIP/2.0/UDP h;branch=z9hG4bK1\r\nFrom: <sip:a@x>;tag=1\r\nTo: <sip:b@y>\r\nCall-ID: fz@x\r\nCSeq: 1 INVITE\r\n\r\nbody"))
	f.Add([]byte("SIP/2.0 401 Unauthorized\r\nVia: SIP/2.0/UDP h\r\nFrom: <sip:a@x>\r\nTo: <sip:b@y>;tag=2\r\nCall-ID: fz@x\r\nCSeq: 1 REGISTER\r\nWWW-Authenticate: Digest realm=\"r\", nonce=\"n\"\r\n\r\n"))
	f.Add(sampleInvite().Marshal())
	f.Add([]byte("OPTIONS sip:x SIP/2.0\r\nSubject: folded\r\n continuation\r\nCall-ID: c\r\n\r\n"))
	f.Add([]byte("\r\n\r\n"))
	recycled := NewParser()
	var into Message
	f.Fuzz(func(t *testing.T, raw []byte) {
		fresh := NewParser()
		want, wantErr := fresh.Parse(raw)
		got, gotErr := recycled.Parse(raw)
		switch {
		case (wantErr == nil) != (gotErr == nil):
			t.Fatalf("recycled parser error mismatch: fresh=%v recycled=%v\ninput: %q", wantErr, gotErr, raw)
		case wantErr != nil:
			if wantErr.Error() != gotErr.Error() {
				t.Fatalf("recycled parser error text drifted: fresh=%q recycled=%q\ninput: %q", wantErr, gotErr, raw)
			}
			return
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("recycled parser result drifted from fresh parse\ninput: %q\nfresh:    %+v\nrecycled: %+v", raw, want, got)
		}
		// ParseInto reuses both the parser and the message; everything but
		// the (raw-aliasing) body must match the fresh parse exactly.
		if err := recycled.ParseInto(raw, &into); err != nil {
			t.Fatalf("ParseInto failed where Parse succeeded: %v\ninput: %q", err, raw)
		}
		if !bytes.Equal(into.Body, want.Body) {
			t.Fatalf("ParseInto body mismatch: %q vs %q", into.Body, want.Body)
		}
		into.Body = want.Body
		if !reflect.DeepEqual(&into, want) {
			t.Fatalf("ParseInto result drifted from fresh parse\ninput: %q\nfresh:     %+v\nparse-into: %+v", raw, want, &into)
		}
	})
}

func FuzzParseURI(f *testing.F) {
	for _, seed := range []string{
		"sip:alice@10.0.0.1:5070;transport=udp",
		"sip:b", "sip:@", "sip:a@b:99999", "http://x",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		u, err := ParseURI(s)
		if err != nil {
			return
		}
		if _, err := ParseURI(u.String()); err != nil {
			t.Fatalf("canonical form %q of %q does not re-parse: %v", u.String(), s, err)
		}
	})
}

func FuzzParseAddress(f *testing.F) {
	for _, seed := range []string{
		`"Alice" <sip:alice@a.com>;tag=1`, "sip:bob@b.com;tag=x", "<<>>",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		a, err := ParseAddress(s)
		if err != nil {
			return
		}
		if _, err := ParseAddress(a.String()); err != nil {
			t.Fatalf("canonical form %q of %q does not re-parse: %v", a.String(), s, err)
		}
	})
}
