package sip

import (
	"bytes"
	"testing"
)

// Native fuzz targets. Under plain `go test` these run their seed corpus;
// use `go test -fuzz=FuzzParseMessage ./internal/sip` for exploration.

func FuzzParseMessage(f *testing.F) {
	f.Add([]byte("INVITE sip:bob@example.com SIP/2.0\r\nVia: SIP/2.0/UDP h;branch=z9hG4bK1\r\nFrom: <sip:a@x>;tag=1\r\nTo: <sip:b@y>\r\nCall-ID: fz@x\r\nCSeq: 1 INVITE\r\n\r\n"))
	f.Add([]byte("SIP/2.0 200 OK\r\nVia: SIP/2.0/UDP h\r\nFrom: <sip:a@x>\r\nTo: <sip:b@y>;tag=2\r\nCall-ID: fz@x\r\nCSeq: 1 INVITE\r\n\r\n"))
	f.Add(sampleInvite().Marshal())
	f.Add([]byte("\r\n\r\n"))
	f.Add([]byte("REGISTER sip:r SIP/2.0\r\nl: 999999\r\n\r\n"))
	f.Fuzz(func(t *testing.T, raw []byte) {
		m, err := ParseMessage(raw)
		if err != nil {
			return
		}
		// Any message that parses must re-marshal and re-parse cleanly.
		again, err := ParseMessage(m.Marshal())
		if err != nil {
			t.Fatalf("re-parse of marshaled message failed: %v\noriginal: %q", err, raw)
		}
		if again.IsRequest() != m.IsRequest() {
			t.Fatalf("request/response flipped on round trip")
		}
		if !bytes.Equal(again.Body, m.Body) {
			t.Fatalf("body changed on round trip: %q vs %q", m.Body, again.Body)
		}
	})
}

func FuzzParseURI(f *testing.F) {
	for _, seed := range []string{
		"sip:alice@10.0.0.1:5070;transport=udp",
		"sip:b", "sip:@", "sip:a@b:99999", "http://x",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		u, err := ParseURI(s)
		if err != nil {
			return
		}
		if _, err := ParseURI(u.String()); err != nil {
			t.Fatalf("canonical form %q of %q does not re-parse: %v", u.String(), s, err)
		}
	})
}

func FuzzParseAddress(f *testing.F) {
	for _, seed := range []string{
		`"Alice" <sip:alice@a.com>;tag=1`, "sip:bob@b.com;tag=x", "<<>>",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		a, err := ParseAddress(s)
		if err != nil {
			return
		}
		if _, err := ParseAddress(a.String()); err != nil {
			t.Fatalf("canonical form %q of %q does not re-parse: %v", a.String(), s, err)
		}
	})
}
