// Package proxy implements the SIP proxy/registrar of the simulated VoIP
// system, standing in for the SIP Express Router used in the SCIDIVE
// paper's testbed. It is a stateful forwarding proxy with digest
// authentication of REGISTER, a location service, Record-Route loose
// routing so in-dialog requests pass back through it, and call accounting
// hooks that feed the billing substrate of the Section 3.2 scenario.
//
// The proxy deliberately does not authenticate INVITEs or verify that a
// request's From URI matches its network source: that is the
// vulnerability the billing-fraud attack exploits, and it matches how the
// 2004-era testbed proxy behaved.
package proxy

import (
	"fmt"
	"net/netip"
	"strconv"
	"strings"
	"time"

	"scidive/internal/accounting"
	"scidive/internal/netsim"
	"scidive/internal/sip"
)

// DefaultExpires is the registration lifetime when the client sends none.
const DefaultExpires = 3600 * time.Second

// Binding is one location-service entry.
type Binding struct {
	AOR     string
	Contact sip.URI
	Source  netip.AddrPort // network source the REGISTER came from
	Expires time.Duration  // absolute virtual time
}

// Stats counts proxy activity.
type Stats struct {
	Registers    int // successful registrations
	Challenges   int // 401s sent
	AuthFailures int // REGISTERs with bad credentials
	Forwarded    int // requests forwarded
	Responses    int // responses forwarded
	NotFound     int // 404s for unknown targets
}

// Config configures a Server.
type Config struct {
	Host  *netsim.Host
	Port  uint16 // default sip.DefaultPort
	Realm string
	// Users maps username to password for REGISTER digest auth.
	Users map[string]string
	// RequireAuth challenges REGISTER with 401 when true.
	RequireAuth bool
	// Accounting, when set, receives call START/STOP transactions.
	Accounting *accounting.Client
}

// pendingForward links a forwarded request's new branch back to the
// transaction it arrived on.
type pendingForward struct {
	serverTx *sip.ServerTx
	invite   *sip.Message
	src      netip.AddrPort
}

// callState tracks accounting-relevant call progress.
type callState struct {
	callID  string
	from    string
	to      string
	fromIP  netip.Addr
	started bool
}

// Server is the SIP proxy/registrar.
type Server struct {
	cfg      Config
	port     uint16
	tx       *sip.TxLayer
	idgen    *sip.IDGen
	bindings map[string]*Binding
	nonces   map[string]string // AOR -> outstanding nonce
	forwards map[string]*pendingForward
	calls    map[string]*callState
	stats    Stats
}

// New binds a proxy to cfg.Host.
func New(cfg Config) (*Server, error) {
	if cfg.Host == nil {
		return nil, fmt.Errorf("proxy: nil host")
	}
	port := cfg.Port
	if port == 0 {
		port = sip.DefaultPort
	}
	s := &Server{
		cfg:      cfg,
		port:     port,
		idgen:    sip.NewIDGen(cfg.Host.Sim().Rand()),
		bindings: make(map[string]*Binding),
		nonces:   make(map[string]string),
		forwards: make(map[string]*pendingForward),
		calls:    make(map[string]*callState),
	}
	s.tx = sip.NewTxLayer(cfg.Host.Sim(), func(dst netip.AddrPort, m *sip.Message) {
		_ = cfg.Host.SendUDP(s.port, dst, m.Marshal())
	})
	s.tx.OnRequest(s.handleRequest)
	if err := cfg.Host.BindUDP(port, s.handlePacket); err != nil {
		return nil, fmt.Errorf("proxy: %w", err)
	}
	return s, nil
}

// Stats returns a snapshot of the proxy counters.
func (s *Server) Stats() Stats { return s.stats }

// Addr returns the proxy's SIP listening address.
func (s *Server) Addr() netip.AddrPort {
	return netip.AddrPortFrom(s.cfg.Host.IP(), s.port)
}

// URI returns the proxy's SIP URI.
func (s *Server) URI() sip.URI {
	return sip.URI{Host: s.cfg.Host.IP().String(), Port: s.port}
}

// BindingFor returns the current location binding for an AOR, or nil.
func (s *Server) BindingFor(aor string) *Binding {
	b, ok := s.bindings[aor]
	if !ok {
		return nil
	}
	if s.cfg.Host.Sim().Now() >= b.Expires {
		delete(s.bindings, aor)
		return nil
	}
	return b
}

func (s *Server) handlePacket(src netip.AddrPort, payload []byte) {
	m, err := sip.ParseMessage(payload)
	if err != nil {
		return // undecodable traffic is dropped, as SER would
	}
	if m.IsResponse() {
		s.forwardResponse(src, m)
		return
	}
	s.tx.HandleMessage(src, m)
}

func (s *Server) handleRequest(tx *sip.ServerTx, req *sip.Message) {
	switch {
	case req.Method == sip.MethodRegister:
		s.handleRegister(tx, req)
	case req.Method == sip.MethodAck:
		s.forwardAck(tx.Src, req)
	default:
		s.forwardRequest(tx, req)
	}
}

// handleRegister implements the registrar with digest challenge.
func (s *Server) handleRegister(tx *sip.ServerTx, req *sip.Message) {
	to, err := req.To()
	if err != nil {
		tx.Respond(sip.NewResponse(req, sip.StatusBadRequest, s.idgen.Tag()))
		return
	}
	aor := to.URI.AOR()
	if s.cfg.RequireAuth {
		authz := req.Headers.Get(sip.HdrAuthorization)
		if authz == "" {
			s.challenge(tx, req, aor)
			return
		}
		creds, err := sip.ParseCredentials(authz)
		if err != nil {
			s.stats.AuthFailures++
			s.challenge(tx, req, aor)
			return
		}
		password, ok := s.cfg.Users[creds.Username]
		if !ok || !sip.VerifyCredentials(creds, password, s.nonces[aor], sip.MethodRegister) {
			s.stats.AuthFailures++
			s.challenge(tx, req, aor)
			return
		}
	}
	contact, err := req.Contact()
	if err != nil {
		tx.Respond(sip.NewResponse(req, sip.StatusBadRequest, s.idgen.Tag()))
		return
	}
	expires := DefaultExpires
	if ev := req.Headers.Get(sip.HdrExpires); ev != "" {
		if secs, err := strconv.Atoi(ev); err == nil && secs >= 0 {
			expires = time.Duration(secs) * time.Second
		}
	}
	now := s.cfg.Host.Sim().Now()
	if expires == 0 {
		delete(s.bindings, aor) // de-registration
	} else {
		s.bindings[aor] = &Binding{
			AOR:     aor,
			Contact: contact.URI,
			Source:  tx.Src,
			Expires: now + expires,
		}
	}
	s.stats.Registers++
	resp := sip.NewResponse(req, sip.StatusOK, s.idgen.Tag())
	resp.Headers.Add(sip.HdrContact, contact.String())
	resp.Headers.Add(sip.HdrExpires, strconv.Itoa(int(expires/time.Second)))
	tx.Respond(resp)
}

func (s *Server) challenge(tx *sip.ServerTx, req *sip.Message, aor string) {
	nonce := s.idgen.Nonce()
	s.nonces[aor] = nonce
	s.stats.Challenges++
	resp := sip.NewResponse(req, sip.StatusUnauthorized, s.idgen.Tag())
	resp.Headers.Add(sip.HdrWWWAuth, sip.Challenge{Realm: s.cfg.Realm, Nonce: nonce}.String())
	tx.Respond(resp)
}

// routeDestination decides where to send a request: a Route header
// pointing at this proxy means loose-routed in-dialog traffic (forward to
// the Request-URI), otherwise the location service resolves the AOR.
func (s *Server) routeDestination(req *sip.Message) (netip.AddrPort, string, error) {
	if route := req.Headers.Get(sip.HdrRoute); route != "" {
		addr, err := sip.ParseAddress(route)
		if err == nil && addr.URI.Host == s.cfg.Host.IP().String() {
			req.Headers.Del(sip.HdrRoute)
			target, err := sip.ParseURI(req.RequestURI)
			if err != nil {
				return netip.AddrPort{}, "", fmt.Errorf("bad loose-route target: %w", err)
			}
			ip, err := netip.ParseAddr(target.Host)
			if err != nil {
				return netip.AddrPort{}, "", fmt.Errorf("loose-route target %q is not an IP", target.Host)
			}
			return netip.AddrPortFrom(ip, target.EffectivePort()), req.RequestURI, nil
		}
	}
	target, err := sip.ParseURI(req.RequestURI)
	if err != nil {
		return netip.AddrPort{}, "", err
	}
	b := s.BindingFor(target.AOR())
	if b == nil {
		return netip.AddrPort{}, "", errNotFound
	}
	return b.Source, b.Contact.String(), nil
}

var errNotFound = fmt.Errorf("proxy: no binding")

// forwardRequest forwards an out-of-dialog or loose-routed request.
func (s *Server) forwardRequest(tx *sip.ServerTx, req *sip.Message) {
	if mf := req.Headers.Get(sip.HdrMaxForwards); mf != "" {
		n, err := strconv.Atoi(mf)
		if err != nil || n <= 0 {
			tx.Respond(sip.NewResponse(req, sip.StatusBadRequest, s.idgen.Tag()))
			return
		}
	}
	dst, newURI, err := s.routeDestination(req)
	if err != nil {
		s.stats.NotFound++
		tx.Respond(sip.NewResponse(req, sip.StatusNotFound, s.idgen.Tag()))
		return
	}
	fwd := &sip.Message{
		Method:     req.Method,
		RequestURI: newURI,
		Headers:    req.Headers.Clone(),
		Body:       req.Body,
	}
	if mf := fwd.Headers.Get(sip.HdrMaxForwards); mf != "" {
		if n, err := strconv.Atoi(mf); err == nil {
			fwd.Headers.Set(sip.HdrMaxForwards, strconv.Itoa(n-1))
		}
	}
	branch := s.idgen.Branch()
	via := sip.Via{
		Transport: "UDP",
		SentBy:    fmt.Sprintf("%s:%d", s.cfg.Host.IP(), s.port),
		Params:    map[string]string{"branch": branch},
	}
	fwd.Headers.PrependVia(via.String())
	if req.Method == sip.MethodInvite {
		rr := sip.Address{URI: sip.URI{Host: s.cfg.Host.IP().String(), Port: s.port, Params: map[string]string{"lr": ""}}}
		fwd.Headers.Add(sip.HdrRecordRoute, rr.String())
	}
	s.forwards[branch] = &pendingForward{serverTx: tx, invite: req, src: tx.Src}
	// Bound the pending-forward table: if no final response ever comes back
	// (dead callee), drop the entry after the transaction lifetime.
	s.cfg.Host.Sim().Schedule(64*sip.TimerT1, func() {
		if _, live := s.forwards[branch]; live {
			delete(s.forwards, branch)
			tx.Respond(sip.NewResponse(req, sip.StatusRequestTimeout, s.idgen.Tag()))
		}
	})
	s.stats.Forwarded++
	s.noteRequestForAccounting(req, tx.Src)
	_ = s.cfg.Host.SendUDP(s.port, dst, fwd.Marshal())
}

// forwardAck forwards a loose-routed ACK without transaction state.
func (s *Server) forwardAck(src netip.AddrPort, req *sip.Message) {
	dst, newURI, err := s.routeDestination(req)
	if err != nil {
		return
	}
	fwd := &sip.Message{
		Method:     sip.MethodAck,
		RequestURI: newURI,
		Headers:    req.Headers.Clone(),
		Body:       req.Body,
	}
	via := sip.Via{
		Transport: "UDP",
		SentBy:    fmt.Sprintf("%s:%d", s.cfg.Host.IP(), s.port),
		Params:    map[string]string{"branch": s.idgen.Branch()},
	}
	fwd.Headers.PrependVia(via.String())
	s.stats.Forwarded++
	_ = s.cfg.Host.SendUDP(s.port, dst, fwd.Marshal())
}

// forwardResponse routes a response per its Via stack.
func (s *Server) forwardResponse(_ netip.AddrPort, m *sip.Message) {
	via, err := m.TopVia()
	if err != nil || !strings.HasPrefix(via.SentBy, s.cfg.Host.IP().String()) {
		return // not ours
	}
	pf, ok := s.forwards[via.Branch()]
	if !ok {
		return
	}
	fwd := &sip.Message{
		StatusCode:   m.StatusCode,
		ReasonPhrase: m.ReasonPhrase,
		Headers:      m.Headers.Clone(),
		Body:         m.Body,
	}
	fwd.Headers.RemoveFirstVia()
	s.stats.Responses++
	s.noteResponseForAccounting(m)
	if m.StatusCode >= 200 {
		delete(s.forwards, via.Branch())
		pf.serverTx.Respond(fwd)
	} else {
		_ = s.cfg.Host.SendUDP(s.port, pf.src, fwd.Marshal())
	}
}

// noteRequestForAccounting records INVITE/BYE sightings for billing.
func (s *Server) noteRequestForAccounting(req *sip.Message, src netip.AddrPort) {
	if s.cfg.Accounting == nil {
		return
	}
	switch req.Method {
	case sip.MethodInvite:
		from, err1 := req.From()
		to, err2 := req.To()
		if err1 != nil || err2 != nil {
			return
		}
		if _, tracked := s.calls[req.CallID()]; tracked {
			return // re-INVITE: already billed
		}
		s.calls[req.CallID()] = &callState{
			callID: req.CallID(),
			from:   from.URI.AOR(),
			to:     to.URI.AOR(),
			fromIP: src.Addr(),
		}
	case sip.MethodBye:
		if cs, ok := s.calls[req.CallID()]; ok && cs.started {
			_ = s.cfg.Accounting.Report(accounting.Txn{Kind: accounting.TxnStop, CallID: cs.callID})
			delete(s.calls, req.CallID())
		}
	}
}

// noteResponseForAccounting emits START when a call is answered.
func (s *Server) noteResponseForAccounting(m *sip.Message) {
	if s.cfg.Accounting == nil || m.StatusCode != sip.StatusOK {
		return
	}
	cseq, err := m.CSeq()
	if err != nil || cseq.Method != sip.MethodInvite {
		return
	}
	cs, ok := s.calls[m.CallID()]
	if !ok || cs.started {
		return
	}
	cs.started = true
	_ = s.cfg.Accounting.Report(accounting.Txn{
		Kind: accounting.TxnStart, CallID: cs.callID,
		From: cs.from, To: cs.to, FromIP: cs.fromIP,
	})
}
