package proxy_test

import (
	"net/netip"
	"testing"
	"time"

	"scidive/internal/endpoint"
	"scidive/internal/netsim"
	"scidive/internal/packet"
	"scidive/internal/proxy"
	"scidive/internal/sip"
)

type fixture struct {
	sim       *netsim.Simulator
	net       *netsim.Network
	prx       *proxy.Server
	extra     *netsim.Host // unregistered host for raw sends
	responses []*sip.Message
}

func newFixture(t *testing.T, requireAuth bool) *fixture {
	t.Helper()
	sim := netsim.NewSimulator(1)
	n := netsim.NewNetwork(sim)
	hostP := n.MustAddHost("proxy", netip.MustParseAddr("10.0.0.10"))
	extra := n.MustAddHost("raw", netip.MustParseAddr("10.0.0.99"))
	prx, err := proxy.New(proxy.Config{
		Host:        hostP,
		Realm:       "test",
		Users:       map[string]string{"alice": "pw"},
		RequireAuth: requireAuth,
	})
	if err != nil {
		t.Fatal(err)
	}
	f := &fixture{sim: sim, net: n, prx: prx, extra: extra}
	if err := extra.BindUDP(5060, func(_ netip.AddrPort, payload []byte) {
		m, err := sip.ParseMessage(payload)
		if err == nil && m.IsResponse() {
			f.responses = append(f.responses, m)
		}
	}); err != nil {
		t.Fatal(err)
	}
	return f
}

// rawRequest sends a request from the raw host and returns the responses
// it drew.
func (f *fixture) rawRequest(t *testing.T, req *sip.Message) []*sip.Message {
	t.Helper()
	f.responses = nil
	if err := f.extra.SendUDP(5060, f.prx.Addr(), req.Marshal()); err != nil {
		t.Fatal(err)
	}
	f.sim.RunUntil(f.sim.Now() + time.Second)
	return f.responses
}

func registerReq(user, hostIP string, cseq uint32, expires string) *sip.Message {
	me := sip.Address{URI: sip.URI{User: user, Host: "10.0.0.10"}}
	contact := sip.Address{URI: sip.URI{User: user, Host: hostIP, Port: 5060}}
	req := sip.NewRequest(sip.RequestSpec{
		Method:     sip.MethodRegister,
		RequestURI: "sip:10.0.0.10:5060",
		From:       me.WithTag("ft"),
		To:         me,
		CallID:     "reg-" + user + "@" + hostIP,
		CSeq:       sip.CSeq{Seq: cseq, Method: sip.MethodRegister},
		Via: sip.Via{Transport: "UDP", SentBy: hostIP + ":5060",
			Params: map[string]string{"branch": sip.MagicBranchPrefix + "t" + expires + user}},
		Contact: &contact,
	})
	if expires != "" {
		req.Headers.Add(sip.HdrExpires, expires)
	}
	return req
}

func TestRegisterWithoutAuthWhenDisabled(t *testing.T) {
	f := newFixture(t, false)
	resps := f.rawRequest(t, registerReq("alice", "10.0.0.99", 1, "600"))
	if len(resps) != 1 || resps[0].StatusCode != sip.StatusOK {
		t.Fatalf("responses = %v", resps)
	}
	b := f.prx.BindingFor("alice@10.0.0.10")
	if b == nil {
		t.Fatal("no binding")
	}
	if b.Source.Addr() != netip.MustParseAddr("10.0.0.99") {
		t.Errorf("binding source = %v", b.Source)
	}
}

func TestBindingExpiry(t *testing.T) {
	f := newFixture(t, false)
	f.rawRequest(t, registerReq("alice", "10.0.0.99", 1, "2"))
	if f.prx.BindingFor("alice@10.0.0.10") == nil {
		t.Fatal("binding missing right after registration")
	}
	f.sim.RunUntil(f.sim.Now() + 3*time.Second)
	if f.prx.BindingFor("alice@10.0.0.10") != nil {
		t.Error("binding survived past its Expires")
	}
}

func TestDeregistrationWithExpiresZero(t *testing.T) {
	f := newFixture(t, false)
	f.rawRequest(t, registerReq("alice", "10.0.0.99", 1, "600"))
	if f.prx.BindingFor("alice@10.0.0.10") == nil {
		t.Fatal("registration failed")
	}
	f.rawRequest(t, registerReq("alice", "10.0.0.99", 2, "0"))
	if f.prx.BindingFor("alice@10.0.0.10") != nil {
		t.Error("Expires: 0 did not remove the binding")
	}
}

func TestRegisterChallengeFlow(t *testing.T) {
	f := newFixture(t, true)
	resps := f.rawRequest(t, registerReq("alice", "10.0.0.99", 1, "600"))
	if len(resps) != 1 || resps[0].StatusCode != sip.StatusUnauthorized {
		t.Fatalf("responses = %v", resps)
	}
	if resps[0].Headers.Get(sip.HdrWWWAuth) == "" {
		t.Error("401 without a challenge")
	}
	if f.prx.Stats().Challenges != 1 {
		t.Errorf("Challenges = %d", f.prx.Stats().Challenges)
	}
}

func TestInviteToUnknownUserGets404(t *testing.T) {
	f := newFixture(t, false)
	from := sip.Address{URI: sip.URI{User: "x", Host: "10.0.0.10"}}
	to := sip.Address{URI: sip.URI{User: "ghost", Host: "10.0.0.10"}}
	req := sip.NewRequest(sip.RequestSpec{
		Method:     sip.MethodInvite,
		RequestURI: "sip:ghost@10.0.0.10",
		From:       from.WithTag("t1"),
		To:         to,
		CallID:     "inv@raw",
		CSeq:       sip.CSeq{Seq: 1, Method: sip.MethodInvite},
		Via: sip.Via{Transport: "UDP", SentBy: "10.0.0.99:5060",
			Params: map[string]string{"branch": sip.MagicBranchPrefix + "inv1"}},
	})
	resps := f.rawRequest(t, req)
	if len(resps) != 1 || resps[0].StatusCode != sip.StatusNotFound {
		t.Fatalf("responses = %v", resps)
	}
	if f.prx.Stats().NotFound != 1 {
		t.Errorf("NotFound = %d", f.prx.Stats().NotFound)
	}
}

func TestMaxForwardsZeroRejected(t *testing.T) {
	f := newFixture(t, false)
	f.rawRequest(t, registerReq("alice", "10.0.0.99", 1, "600"))
	from := sip.Address{URI: sip.URI{User: "x", Host: "10.0.0.10"}}
	to := sip.Address{URI: sip.URI{User: "alice", Host: "10.0.0.10"}}
	req := sip.NewRequest(sip.RequestSpec{
		Method:     sip.MethodInvite,
		RequestURI: "sip:alice@10.0.0.10",
		From:       from.WithTag("t2"),
		To:         to,
		CallID:     "mf@raw",
		CSeq:       sip.CSeq{Seq: 1, Method: sip.MethodInvite},
		Via: sip.Via{Transport: "UDP", SentBy: "10.0.0.99:5060",
			Params: map[string]string{"branch": sip.MagicBranchPrefix + "mf0"}},
	})
	req.Headers.Set(sip.HdrMaxForwards, "0")
	resps := f.rawRequest(t, req)
	if len(resps) != 1 || resps[0].StatusCode != sip.StatusBadRequest {
		t.Fatalf("responses = %v", resps)
	}
}

func TestProxyForwardingDetails(t *testing.T) {
	// A full call through the proxy: verify the forwarded INVITE has a
	// decremented Max-Forwards, a prepended proxy Via, and a Record-Route.
	sim := netsim.NewSimulator(2)
	n := netsim.NewNetwork(sim)
	hostP := n.MustAddHost("proxy", netip.MustParseAddr("10.0.0.10"))
	hostA := n.MustAddHost("a", netip.MustParseAddr("10.0.0.1"))
	hostB := n.MustAddHost("b", netip.MustParseAddr("10.0.0.2"))
	prx, err := proxy.New(proxy.Config{Host: hostP, Realm: "t", Users: map[string]string{"a": "x", "b": "y"}})
	if err != nil {
		t.Fatal(err)
	}
	a, err := endpoint.New(endpoint.Config{Host: hostA, Username: "a", Password: "x", Proxy: prx.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	bPhone, err := endpoint.New(endpoint.Config{Host: hostB, Username: "b", Password: "y", Proxy: prx.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	var forwarded *sip.Message
	n.AddTap(func(_ time.Duration, frame []byte) {
		m := sipFromFrame(frame)
		if m == nil || !m.IsRequest() || m.Method != sip.MethodInvite {
			return
		}
		if via, err := m.TopVia(); err == nil && via.SentBy == "10.0.0.10:5060" {
			forwarded = m
		}
	})
	a.Register(nil)
	bPhone.Register(nil)
	sim.RunUntil(sim.Now() + time.Second)
	a.Call("b", nil)
	sim.RunUntil(sim.Now() + 2*time.Second)
	if forwarded == nil {
		t.Fatal("proxy never forwarded the INVITE")
	}
	if got := forwarded.Headers.Get(sip.HdrMaxForwards); got != "69" {
		t.Errorf("forwarded Max-Forwards = %q, want 69", got)
	}
	if vias := forwarded.Headers.Values(sip.HdrVia); len(vias) != 2 {
		t.Errorf("forwarded Via count = %d, want 2", len(vias))
	}
	if rr := forwarded.Headers.Get(sip.HdrRecordRoute); rr == "" {
		t.Error("forwarded INVITE lacks Record-Route")
	}
}

// sipFromFrame decodes a SIP message from an Ethernet frame, or nil.
func sipFromFrame(frame []byte) *sip.Message {
	ef, err := packet.UnmarshalEthernet(frame)
	if err != nil || ef.Type != packet.EtherTypeIPv4 {
		return nil
	}
	iph, ipp, err := packet.UnmarshalIPv4(ef.Payload)
	if err != nil || iph.Protocol != packet.ProtoUDP {
		return nil
	}
	uh, up, err := packet.UnmarshalUDP(iph.Src, iph.Dst, ipp)
	if err != nil || (uh.SrcPort != sip.DefaultPort && uh.DstPort != sip.DefaultPort) {
		return nil
	}
	m, err := sip.ParseMessage(up)
	if err != nil {
		return nil
	}
	return m
}

func TestForwardTimeoutReturns408(t *testing.T) {
	f := newFixture(t, false)
	// Register a binding whose contact never answers SIP (the raw host has
	// no transaction layer; it records responses only).
	f.rawRequest(t, registerReq("alice", "10.0.0.99", 1, "600"))
	// A second raw host places the call so we can watch its responses.
	caller := f.net.MustAddHost("caller", netip.MustParseAddr("10.0.0.98"))
	var responses []*sip.Message
	if err := caller.BindUDP(5060, func(_ netip.AddrPort, payload []byte) {
		if m, err := sip.ParseMessage(payload); err == nil && m.IsResponse() {
			responses = append(responses, m)
		}
	}); err != nil {
		t.Fatal(err)
	}
	from := sip.Address{URI: sip.URI{User: "x", Host: "10.0.0.10"}}
	to := sip.Address{URI: sip.URI{User: "alice", Host: "10.0.0.10"}}
	invite := sip.NewRequest(sip.RequestSpec{
		Method:     sip.MethodInvite,
		RequestURI: "sip:alice@10.0.0.10",
		From:       from.WithTag("t9"),
		To:         to,
		CallID:     "dead@raw",
		CSeq:       sip.CSeq{Seq: 1, Method: sip.MethodInvite},
		Via: sip.Via{Transport: "UDP", SentBy: "10.0.0.98:5060",
			Params: map[string]string{"branch": sip.MagicBranchPrefix + "dead"}},
	})
	if err := caller.SendUDP(5060, f.prx.Addr(), invite.Marshal()); err != nil {
		t.Fatal(err)
	}
	f.sim.RunUntil(f.sim.Now() + 40*time.Second) // past 64*T1 = 32s
	var got408 bool
	for _, r := range responses {
		if r.StatusCode == sip.StatusRequestTimeout {
			got408 = true
		}
	}
	if !got408 {
		t.Errorf("no 408 after unresponsive callee; responses = %v", responses)
	}
}
