package scenario_test

import (
	"testing"
	"time"

	"scidive/internal/netsim"
	"scidive/internal/scenario"
)

func TestNewBuildsStandardTopology(t *testing.T) {
	tb, err := scenario.New(scenario.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, addr := range []struct {
		name string
		ip   interface{ String() string }
	}{
		{"client-a", scenario.AddrClientA},
		{"client-b", scenario.AddrClientB},
		{"proxy", scenario.AddrProxy},
		{"accounting", scenario.AddrAcct},
		{"attacker", scenario.AddrAttacker},
	} {
		h := tb.Net.HostByIP(scenario.AddrClientA)
		if h == nil {
			t.Fatalf("host %s missing", addr.name)
		}
	}
	if tb.Proxy == nil || tb.Acct == nil || tb.Alice == nil || tb.Bob == nil ||
		tb.Attacker == nil || tb.Sniffer == nil {
		t.Fatal("testbed component missing")
	}
}

func TestRegisterAllAndEstablishCall(t *testing.T) {
	tb, err := scenario.New(scenario.Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.RegisterAll(); err != nil {
		t.Fatal(err)
	}
	call, err := tb.EstablishCall()
	if err != nil {
		t.Fatal(err)
	}
	if !call.Established() {
		t.Error("call not established")
	}
	tb.Run(time.Second)
	if call.RTPSent == 0 {
		t.Error("no media flowed after EstablishCall + Run")
	}
}

func TestCustomLinkApplied(t *testing.T) {
	link := netsim.Link{Delay: netsim.Deterministic{D: 7 * time.Millisecond}}
	tb, err := scenario.New(scenario.Config{Seed: 3, Link: &link})
	if err != nil {
		t.Fatal(err)
	}
	hostA := tb.Net.HostByIP(scenario.AddrClientA)
	if hostA.Link().Delay.Mean() != 7*time.Millisecond {
		t.Errorf("client link delay = %v", hostA.Link().Delay.Mean())
	}
	// Proxy keeps the default LAN link.
	hostP := tb.Net.HostByIP(scenario.AddrProxy)
	if hostP.Link().Delay.Mean() == 7*time.Millisecond {
		t.Error("proxy link was overridden too")
	}
	// Registration still works over the slower links.
	if err := tb.RegisterAll(); err != nil {
		t.Fatal(err)
	}
}

func TestAnswerDelayApplied(t *testing.T) {
	tb, err := scenario.New(scenario.Config{Seed: 4, AnswerDelay: 1500 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.RegisterAll(); err != nil {
		t.Fatal(err)
	}
	start := tb.Sim.Now()
	call, err := tb.EstablishCall()
	if err != nil {
		t.Fatal(err)
	}
	_ = call
	// The call can only establish after the configured ring time.
	if est := tb.Sim.Now() - start; est < 1500*time.Millisecond {
		t.Errorf("call established after %v, want >= 1.5s ring", est)
	}
}
