// Package scenario assembles the SCIDIVE paper's testbed (Figure 4): SIP
// clients, a proxy/registrar, an accounting service, and an attacker, all
// attached to a hub-based simulated LAN. Experiments, examples, and
// benchmarks compose their runs from these pieces.
package scenario

import (
	"fmt"
	"net/netip"
	"time"

	"scidive/internal/accounting"
	"scidive/internal/attack"
	"scidive/internal/endpoint"
	"scidive/internal/netsim"
	"scidive/internal/proxy"
)

// Standard topology addresses (mirroring the paper's hub diagram).
var (
	AddrClientA  = netip.MustParseAddr("10.0.0.1")
	AddrClientB  = netip.MustParseAddr("10.0.0.2")
	AddrProxy    = netip.MustParseAddr("10.0.0.10")
	AddrAcct     = netip.MustParseAddr("10.0.0.20")
	AddrAttacker = netip.MustParseAddr("10.0.0.66")
)

// Users known to the proxy.
var Users = map[string]string{
	"alice": "wonderland",
	"bob":   "builder",
}

// Config tunes testbed construction.
type Config struct {
	Seed int64
	// Link, when non-nil, replaces the default LAN link on the client
	// hosts (for delay/loss experiments).
	Link *netsim.Link
	// CrashOnCorrupt makes client A emulate X-Lite (dies on garbage RTP).
	CrashOnCorrupt bool
	// AnswerDelay overrides the callee's ring time.
	AnswerDelay time.Duration
	// MTU overrides the network MTU (0 = packet.DefaultMTU). Small values
	// force IP fragmentation of SIP messages on the wire.
	MTU int
}

// Testbed is an assembled simulation.
type Testbed struct {
	Sim      *netsim.Simulator
	Net      *netsim.Network
	Proxy    *proxy.Server
	Acct     *accounting.Service
	Alice    *endpoint.Phone
	Bob      *endpoint.Phone
	Attacker *attack.Attacker
	Sniffer  *attack.Sniffer
}

// New builds the standard testbed.
func New(cfg Config) (*Testbed, error) {
	sim := netsim.NewSimulator(cfg.Seed)
	var netOpts []netsim.NetworkOption
	if cfg.MTU > 0 {
		netOpts = append(netOpts, netsim.WithMTU(cfg.MTU))
	}
	n := netsim.NewNetwork(sim, netOpts...)
	hostA, err := n.AddHost("client-a", AddrClientA)
	if err != nil {
		return nil, err
	}
	hostB, err := n.AddHost("client-b", AddrClientB)
	if err != nil {
		return nil, err
	}
	hostP, err := n.AddHost("proxy", AddrProxy)
	if err != nil {
		return nil, err
	}
	hostAcct, err := n.AddHost("accounting", AddrAcct)
	if err != nil {
		return nil, err
	}
	hostAtk, err := n.AddHost("attacker", AddrAttacker)
	if err != nil {
		return nil, err
	}
	if cfg.Link != nil {
		hostA.SetLink(*cfg.Link)
		hostB.SetLink(*cfg.Link)
	}

	acct, err := accounting.NewService(hostAcct, 0)
	if err != nil {
		return nil, err
	}
	prx, err := proxy.New(proxy.Config{
		Host:        hostP,
		Realm:       "scidive.test",
		Users:       Users,
		RequireAuth: true,
		Accounting:  accounting.NewClient(hostP, netip.AddrPortFrom(AddrAcct, accounting.DefaultPort), 7010),
	})
	if err != nil {
		return nil, err
	}
	alice, err := endpoint.New(endpoint.Config{
		Host: hostA, Username: "alice", Password: Users["alice"], Proxy: prx.Addr(),
		CrashOnCorrupt: cfg.CrashOnCorrupt, AnswerDelay: cfg.AnswerDelay,
	})
	if err != nil {
		return nil, err
	}
	bob, err := endpoint.New(endpoint.Config{
		Host: hostB, Username: "bob", Password: Users["bob"], Proxy: prx.Addr(),
		AnswerDelay: cfg.AnswerDelay,
	})
	if err != nil {
		return nil, err
	}
	atk, err := attack.NewAttacker(hostAtk, n)
	if err != nil {
		return nil, err
	}
	return &Testbed{
		Sim:      sim,
		Net:      n,
		Proxy:    prx,
		Acct:     acct,
		Alice:    alice,
		Bob:      bob,
		Attacker: atk,
		Sniffer:  attack.NewSniffer(n),
	}, nil
}

// RegisterAll registers both phones and advances the simulation until
// they succeed.
func (tb *Testbed) RegisterAll() error {
	tb.Alice.Register(nil)
	tb.Bob.Register(nil)
	tb.Sim.RunUntil(tb.Sim.Now() + 2*time.Second)
	if !tb.Alice.Registered() || !tb.Bob.Registered() {
		return fmt.Errorf("scenario: registration failed (alice=%v bob=%v)",
			tb.Alice.Registered(), tb.Bob.Registered())
	}
	return nil
}

// EstablishCall places a call from alice to bob and advances the
// simulation until it is confirmed on both ends.
func (tb *Testbed) EstablishCall() (*endpoint.Call, error) {
	var call *endpoint.Call
	var callErr error
	tb.Sim.Schedule(0, func() {
		tb.Alice.Call("bob", func(c *endpoint.Call, err error) { call, callErr = c, err })
	})
	tb.Sim.RunUntil(tb.Sim.Now() + 3*time.Second)
	if callErr != nil {
		return nil, fmt.Errorf("scenario: call failed: %w", callErr)
	}
	if call == nil || !call.Established() {
		return nil, fmt.Errorf("scenario: call not established")
	}
	if tb.Bob.ActiveCall() == nil {
		return nil, fmt.Errorf("scenario: callee has no active call")
	}
	return call, nil
}

// Run advances the simulation by d.
func (tb *Testbed) Run(d time.Duration) {
	tb.Sim.RunUntil(tb.Sim.Now() + d)
}
