// Package eval implements the Section 4.3 performance model of the
// SCIDIVE paper for the BYE and call-hijacking rules: the detection delay
// D, the probability of missed alarm Pm, and the probability of false
// alarm Pf, both in closed form (where the paper gives one) and by Monte
// Carlo simulation over configurable delay distributions.
//
// Model recap (paper Section 4.3.1, timeline measured at the victim):
//
//   - RTP packets leave the sender every RTPPeriod (20 ms in the paper).
//   - The attacker generates the fake BYE/REINVITE at offset Gsip after
//     the previous RTP packet left; the message reaches the victim after
//     network delay Nsip, at Tsip = Gsip + Nsip.
//   - The k-th subsequent RTP packet leaves at k*RTPPeriod and arrives at
//     k*RTPPeriod + Nrtp(k).
//   - The IDS monitors for m after Tsip; detection happens at the first
//     RTP arrival inside (Tsip, Tsip+m], giving D = arrival − Tsip.
//
// With one packet in flight, D = RTPPeriod + Nrtp − Gsip − Nsip; under
// Gsip ~ U(0, RTPPeriod) and iid network delays this gives E[D] =
// RTPPeriod/2 = 10 ms, the paper's headline number. (The paper's Pm
// expression prints the equivalent inequality with a sign typo on Nsip;
// we use the derivation above.)
package eval

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"scidive/internal/netsim"
)

// Model parameterizes the Section 4.3 evaluation.
type Model struct {
	// RTPPeriod is the media packetization interval (default 20 ms).
	RTPPeriod time.Duration
	// Gsip is the distribution of the attack-message generation offset
	// within an RTP period (paper baseline: Uniform(0, RTPPeriod)).
	Gsip netsim.Dist
	// Nrtp and Nsip are per-packet network delay distributions.
	Nrtp netsim.Dist
	// Nsip is the network delay of the SIP message.
	Nsip netsim.Dist
	// Window is the monitoring interval m.
	Window time.Duration
	// Loss is the per-RTP-packet loss probability.
	Loss float64
	// MaxPackets bounds how many subsequent RTP packets the orphan sender
	// emits (the sender eventually notices silence); default 64.
	MaxPackets int
}

// withDefaults fills zero fields with the paper's baselines.
func (m Model) withDefaults() Model {
	if m.RTPPeriod == 0 {
		m.RTPPeriod = 20 * time.Millisecond
	}
	if m.Gsip == nil {
		m.Gsip = netsim.Uniform{Min: 0, Max: m.RTPPeriod}
	}
	if m.Nrtp == nil {
		m.Nrtp = netsim.Deterministic{}
	}
	if m.Nsip == nil {
		m.Nsip = netsim.Deterministic{}
	}
	if m.Window == 0 {
		m.Window = time.Second
	}
	if m.MaxPackets == 0 {
		m.MaxPackets = 64
	}
	return m
}

// ExpectedDelayAnalytic returns the closed-form expected detection delay
// for the one-packet-in-flight case ignoring loss and windowing:
// E[D] = RTPPeriod + E[Nrtp] − E[Gsip] − E[Nsip].
func (m Model) ExpectedDelayAnalytic() time.Duration {
	m = m.withDefaults()
	return m.RTPPeriod + m.Nrtp.Mean() - m.Gsip.Mean() - m.Nsip.Mean()
}

// Result summarizes a Monte Carlo run.
type Result struct {
	Trials    int
	Detected  int
	Missed    int
	MeanDelay time.Duration // over detected trials
	P50Delay  time.Duration
	P95Delay  time.Duration
	Pm        float64 // Missed / Trials
}

// String formats the result as a report row.
func (r Result) String() string {
	return fmt.Sprintf("trials=%d detected=%d missed=%d E[D]=%.2fms p50=%.2fms p95=%.2fms Pm=%.4f",
		r.Trials, r.Detected, r.Missed,
		r.MeanDelay.Seconds()*1000, r.P50Delay.Seconds()*1000, r.P95Delay.Seconds()*1000, r.Pm)
}

// SimulateDetection runs n Monte Carlo trials of the attack timeline and
// returns delay statistics and the missed-alarm probability.
func (m Model) SimulateDetection(rng *rand.Rand, n int) Result {
	m = m.withDefaults()
	res := Result{Trials: n}
	delays := make([]time.Duration, 0, n)
	for i := 0; i < n; i++ {
		d, ok := m.trial(rng)
		if !ok {
			res.Missed++
			continue
		}
		res.Detected++
		delays = append(delays, d)
	}
	res.Pm = float64(res.Missed) / float64(n)
	if len(delays) > 0 {
		var sum time.Duration
		for _, d := range delays {
			sum += d
		}
		res.MeanDelay = sum / time.Duration(len(delays))
		sort.Slice(delays, func(i, j int) bool { return delays[i] < delays[j] })
		res.P50Delay = delays[len(delays)/2]
		res.P95Delay = delays[len(delays)*95/100]
	}
	return res
}

// trial simulates one attack: returns the detection delay and whether the
// orphan flow was seen within the window.
func (m Model) trial(rng *rand.Rand) (time.Duration, bool) {
	tsip := m.Gsip.Sample(rng) + m.Nsip.Sample(rng)
	deadline := tsip + m.Window
	for k := 1; k <= m.MaxPackets; k++ {
		if m.Loss > 0 && rng.Float64() < m.Loss {
			continue
		}
		arrival := time.Duration(k)*m.RTPPeriod + m.Nrtp.Sample(rng)
		if arrival <= tsip {
			continue // overtaken by the SIP message; not an orphan sighting
		}
		if arrival > deadline {
			return 0, false
		}
		return arrival - tsip, true
	}
	return 0, false
}

// SimulateFalseAlarm estimates Pf for a legitimate teardown: the sender
// emits the valid BYE immediately after its last RTP packet; a false
// alarm occurs when the BYE overtakes that packet in the network and the
// packet then lands inside the monitoring window. With iid continuous
// delays and an ample window this converges to Pr{Nsip < Nrtp} = 1/2.
func (m Model) SimulateFalseAlarm(rng *rand.Rand, n int) float64 {
	m = m.withDefaults()
	false_ := 0
	for i := 0; i < n; i++ {
		nrtp := m.Nrtp.Sample(rng)
		nsip := m.Nsip.Sample(rng)
		if nsip < nrtp && nrtp-nsip <= m.Window {
			false_++
		}
	}
	return float64(false_) / float64(n)
}

// FalseAlarmAnalyticIID is the closed-form Pf for iid continuous
// identically distributed delays and an unbounded window:
// Pf = ∫ F_N(t) f_N(t) dt = 1/2.
const FalseAlarmAnalyticIID = 0.5
