package eval

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"scidive/internal/netsim"
)

func rng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestAnalyticExpectedDelayPaperBaseline(t *testing.T) {
	// The paper's headline: uniform Gsip over (0, 20ms) and identical
	// network delays give E[D] = 10 ms.
	m := Model{} // all defaults
	got := m.ExpectedDelayAnalytic()
	if got != 10*time.Millisecond {
		t.Errorf("E[D] = %v, want 10ms", got)
	}
}

func TestAnalyticDelayWithAsymmetricDelays(t *testing.T) {
	m := Model{
		Nrtp: netsim.Deterministic{D: 5 * time.Millisecond},
		Nsip: netsim.Deterministic{D: 2 * time.Millisecond},
	}
	// 20 + 5 − 10 − 2 = 13 ms.
	if got := m.ExpectedDelayAnalytic(); got != 13*time.Millisecond {
		t.Errorf("E[D] = %v, want 13ms", got)
	}
}

func TestMonteCarloMatchesAnalytic(t *testing.T) {
	tests := []struct {
		name string
		m    Model
	}{
		{"paper baseline", Model{}},
		{"uniform delays", Model{
			Nrtp: netsim.Uniform{Min: time.Millisecond, Max: 5 * time.Millisecond},
			Nsip: netsim.Uniform{Min: time.Millisecond, Max: 5 * time.Millisecond},
		}},
		{"exponential delays", Model{
			Nrtp: netsim.Exponential{MeanD: 3 * time.Millisecond},
			Nsip: netsim.Exponential{MeanD: 3 * time.Millisecond},
		}},
	}
	for i, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			res := tt.m.SimulateDetection(rng(1), 100000)
			if res.Missed != 0 {
				t.Errorf("missed %d with ample window", res.Missed)
			}
			want := tt.m.ExpectedDelayAnalytic()
			diff := math.Abs(float64(res.MeanDelay - want))
			if i == 0 {
				// Deterministic network delays: the closed form is exact.
				if diff > float64(300*time.Microsecond) {
					t.Errorf("Monte Carlo E[D] = %v, analytic %v", res.MeanDelay, want)
				}
				return
			}
			// Stochastic delays: the closed form ignores that the SIP message
			// can overtake the first packet, so the true delay is biased
			// upward but stays close.
			if res.MeanDelay < want {
				t.Errorf("Monte Carlo E[D] = %v below analytic lower bound %v", res.MeanDelay, want)
			}
			if diff > 0.25*float64(want) {
				t.Errorf("Monte Carlo E[D] = %v deviates more than 25%% from analytic %v", res.MeanDelay, want)
			}
		})
	}
}

func TestDelayPercentilesOrdered(t *testing.T) {
	m := Model{Nrtp: netsim.Exponential{MeanD: 5 * time.Millisecond}}
	res := m.SimulateDetection(rng(2), 20000)
	if res.P50Delay > res.P95Delay {
		t.Errorf("p50 %v > p95 %v", res.P50Delay, res.P95Delay)
	}
	if res.MeanDelay <= 0 {
		t.Error("non-positive mean delay")
	}
}

func TestMissProbabilityGrowsWithLoss(t *testing.T) {
	base := Model{Window: 30 * time.Millisecond, MaxPackets: 1}
	var prev float64 = -1
	for _, loss := range []float64{0, 0.2, 0.5, 0.8} {
		m := base
		m.Loss = loss
		res := m.SimulateDetection(rng(3), 50000)
		if res.Pm < prev {
			t.Errorf("Pm(%v) = %v decreased below %v", loss, res.Pm, prev)
		}
		// With exactly one packet and no delays, Pm ≈ loss.
		if math.Abs(res.Pm-loss) > 0.02 {
			t.Errorf("Pm = %v, want ≈%v", res.Pm, loss)
		}
		prev = res.Pm
	}
}

func TestMissProbabilityShrinksWithWindow(t *testing.T) {
	// Heavy-tailed RTP delay: small windows miss, large windows catch.
	var prev float64 = 2
	for _, w := range []time.Duration{5 * time.Millisecond, 20 * time.Millisecond, 100 * time.Millisecond, time.Second} {
		m := Model{
			Nrtp:   netsim.Exponential{MeanD: 30 * time.Millisecond},
			Window: w,
		}
		res := m.SimulateDetection(rng(4), 20000)
		if res.Pm > prev {
			t.Errorf("Pm(window=%v) = %v increased above %v", w, res.Pm, prev)
		}
		prev = res.Pm
	}
	if prev > 0.01 {
		t.Errorf("Pm with 1s window = %v, want ≈0", prev)
	}
}

func TestFalseAlarmIIDConvergesToHalf(t *testing.T) {
	m := Model{
		Nrtp: netsim.Exponential{MeanD: 5 * time.Millisecond},
		Nsip: netsim.Exponential{MeanD: 5 * time.Millisecond},
	}
	pf := m.SimulateFalseAlarm(rng(5), 200000)
	if math.Abs(pf-FalseAlarmAnalyticIID) > 0.01 {
		t.Errorf("Pf = %v, want ≈%v for iid delays", pf, FalseAlarmAnalyticIID)
	}
}

func TestFalseAlarmZeroForDeterministicDelays(t *testing.T) {
	// Identical deterministic delays: the BYE can never overtake the last
	// RTP packet, so no false alarms.
	m := Model{
		Nrtp: netsim.Deterministic{D: 2 * time.Millisecond},
		Nsip: netsim.Deterministic{D: 2 * time.Millisecond},
	}
	if pf := m.SimulateFalseAlarm(rng(6), 10000); pf != 0 {
		t.Errorf("Pf = %v, want 0", pf)
	}
}

func TestFalseAlarmDropsWhenSIPSlower(t *testing.T) {
	// SIP via a slow path (e.g. proxy detour): overtaking becomes rare.
	m := Model{
		Nrtp: netsim.Deterministic{D: 2 * time.Millisecond},
		Nsip: netsim.Shifted{Base: netsim.Exponential{MeanD: time.Millisecond}, Offset: 5 * time.Millisecond},
	}
	if pf := m.SimulateFalseAlarm(rng(7), 50000); pf > 0.01 {
		t.Errorf("Pf = %v, want ≈0 when SIP is strictly slower", pf)
	}
}

func TestResultString(t *testing.T) {
	res := Model{}.SimulateDetection(rng(8), 100)
	if s := res.String(); s == "" {
		t.Error("empty result string")
	}
}

func TestTrialOvertakenPacketNotOrphan(t *testing.T) {
	// If the SIP message arrives after an RTP packet, that packet must not
	// count as the orphan (it predates the teardown at the victim).
	m := Model{
		Gsip: netsim.Deterministic{D: 19 * time.Millisecond},
		Nsip: netsim.Deterministic{D: 10 * time.Millisecond}, // Tsip = 29ms
		Nrtp: netsim.Deterministic{D: 1 * time.Millisecond},  // k=1 at 21ms (before), k=2 at 41ms
	}
	res := m.SimulateDetection(rng(9), 1000)
	want := 12 * time.Millisecond // 41 − 29
	if res.MeanDelay != want {
		t.Errorf("delay = %v, want %v (first packet overtaken)", res.MeanDelay, want)
	}
}
