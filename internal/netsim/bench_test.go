package netsim

import (
	"net/netip"
	"testing"
	"time"
)

func BenchmarkSimulatorScheduleRun(b *testing.B) {
	s := NewSimulator(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Schedule(time.Duration(i%1000)*time.Microsecond, func() {})
		if i%1024 == 1023 {
			s.Run()
		}
	}
	s.Run()
}

func BenchmarkUDPDeliveryThroughHub(b *testing.B) {
	sim := NewSimulator(1)
	n := NewNetwork(sim)
	src := n.MustAddHost("src", netip.MustParseAddr("10.0.0.1"))
	dst := n.MustAddHost("dst", netip.MustParseAddr("10.0.0.2"))
	n.MustAddHost("bystander", netip.MustParseAddr("10.0.0.3"))
	delivered := 0
	if err := dst.BindUDP(9, func(netip.AddrPort, []byte) { delivered++ }); err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 172)
	target := netip.AddrPortFrom(dst.IP(), 9)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := src.SendUDP(9, target, payload); err != nil {
			b.Fatal(err)
		}
		if i%256 == 255 {
			sim.Run()
		}
	}
	sim.Run()
	if delivered != b.N {
		b.Fatalf("delivered %d of %d", delivered, b.N)
	}
}
