package netsim

import (
	"testing"
	"time"
)

func TestSimulatorOrdering(t *testing.T) {
	s := NewSimulator(1)
	var order []int
	s.Schedule(30*time.Millisecond, func() { order = append(order, 3) })
	s.Schedule(10*time.Millisecond, func() { order = append(order, 1) })
	s.Schedule(20*time.Millisecond, func() { order = append(order, 2) })
	if n := s.Run(); n != 3 {
		t.Fatalf("Run() executed %d events, want 3", n)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("execution order %v, want %v", order, want)
		}
	}
	if s.Now() != 30*time.Millisecond {
		t.Errorf("Now() = %v, want 30ms", s.Now())
	}
}

func TestSimulatorFIFOAtSameTime(t *testing.T) {
	s := NewSimulator(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(5*time.Millisecond, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-timestamp events ran out of order: %v", order)
		}
	}
}

func TestSimulatorNestedScheduling(t *testing.T) {
	s := NewSimulator(1)
	var fired []time.Duration
	s.Schedule(time.Millisecond, func() {
		fired = append(fired, s.Now())
		s.Schedule(time.Millisecond, func() {
			fired = append(fired, s.Now())
		})
	})
	s.Run()
	if len(fired) != 2 || fired[0] != time.Millisecond || fired[1] != 2*time.Millisecond {
		t.Errorf("fired at %v, want [1ms 2ms]", fired)
	}
}

func TestSimulatorRunUntil(t *testing.T) {
	s := NewSimulator(1)
	ran := 0
	for i := 1; i <= 5; i++ {
		s.Schedule(time.Duration(i)*time.Second, func() { ran++ })
	}
	if n := s.RunUntil(3 * time.Second); n != 3 {
		t.Errorf("RunUntil executed %d events, want 3", n)
	}
	if s.Now() != 3*time.Second {
		t.Errorf("Now() = %v, want 3s", s.Now())
	}
	if s.Pending() != 2 {
		t.Errorf("Pending() = %d, want 2", s.Pending())
	}
	// RunUntil past the queue advances the clock to the deadline.
	s.RunUntil(10 * time.Second)
	if s.Now() != 10*time.Second || ran != 5 {
		t.Errorf("Now()=%v ran=%d, want 10s and 5", s.Now(), ran)
	}
}

func TestSimulatorStopResume(t *testing.T) {
	s := NewSimulator(1)
	ran := 0
	s.Schedule(time.Millisecond, func() { ran++; s.Stop() })
	s.Schedule(2*time.Millisecond, func() { ran++ })
	s.Run()
	if ran != 1 {
		t.Fatalf("ran %d events before stop, want 1", ran)
	}
	s.Resume()
	s.Run()
	if ran != 2 {
		t.Fatalf("ran %d events total, want 2", ran)
	}
}

func TestSimulatorEvery(t *testing.T) {
	s := NewSimulator(1)
	ticks := 0
	s.Every(0, 20*time.Millisecond, func() bool {
		ticks++
		return ticks < 5
	})
	s.Run()
	if ticks != 5 {
		t.Errorf("ticks = %d, want 5", ticks)
	}
	if s.Now() != 80*time.Millisecond {
		t.Errorf("Now() = %v, want 80ms", s.Now())
	}
}

func TestSimulatorPastScheduleClamps(t *testing.T) {
	s := NewSimulator(1)
	s.Schedule(10*time.Millisecond, func() {
		s.ScheduleAt(0, func() {
			if s.Now() != 10*time.Millisecond {
				t.Errorf("past-scheduled event ran at %v, want clamped to 10ms", s.Now())
			}
		})
	})
	s.Run()
}

func TestDistributions(t *testing.T) {
	s := NewSimulator(7)
	rng := s.Rand()
	tests := []struct {
		name    string
		d       Dist
		wantMin time.Duration
		wantMax time.Duration
	}{
		{"deterministic", Deterministic{D: 3 * time.Millisecond}, 3 * time.Millisecond, 3 * time.Millisecond},
		{"uniform", Uniform{Min: time.Millisecond, Max: 5 * time.Millisecond}, time.Millisecond, 5 * time.Millisecond},
		{"exponential capped", Exponential{MeanD: time.Millisecond, Cap: 10 * time.Millisecond}, 0, 10 * time.Millisecond},
		{"shifted", Shifted{Base: Uniform{Max: time.Millisecond}, Offset: 2 * time.Millisecond}, 2 * time.Millisecond, 3 * time.Millisecond},
		{"normal nonneg", Normal{MeanD: time.Millisecond, Std: 2 * time.Millisecond}, 0, time.Hour},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			for i := 0; i < 1000; i++ {
				v := tt.d.Sample(rng)
				if v < tt.wantMin || v > tt.wantMax {
					t.Fatalf("sample %v outside [%v, %v]", v, tt.wantMin, tt.wantMax)
				}
			}
		})
	}
}

func TestUniformMeanConvergence(t *testing.T) {
	s := NewSimulator(3)
	u := Uniform{Min: 0, Max: 20 * time.Millisecond}
	got := EstimateMean(u, s.Rand(), 200000)
	want := 10 * time.Millisecond
	if diff := got - want; diff < -200*time.Microsecond || diff > 200*time.Microsecond {
		t.Errorf("estimated mean %v, want %v ± 0.2ms", got, want)
	}
}

func TestExponentialMeanConvergence(t *testing.T) {
	s := NewSimulator(3)
	e := Exponential{MeanD: 5 * time.Millisecond}
	got := EstimateMean(e, s.Rand(), 200000)
	want := 5 * time.Millisecond
	if diff := got - want; diff < -200*time.Microsecond || diff > 200*time.Microsecond {
		t.Errorf("estimated mean %v, want %v ± 0.2ms", got, want)
	}
}
