package netsim

import (
	"fmt"

	"scidive/internal/packet"
)

// TCPFlow scripts the wire image of one TCP connection between two hosts.
// The simulator has no TCP stack — hosts ignore TCP segments on receive —
// so the flow fabricates exactly what an established connection would put
// on the hub: SYN, data segments with advancing sequence numbers, FIN and
// RST. That is all a hub-tapped IDS observes; acknowledgment,
// retransmission and flow control have no wire-visible effect in a
// lossless scripted exchange and are not modeled. Each side's sequence
// state advances with every send, so segments from either endpoint (or an
// attacker who learned the numbers, see Seq) land in-window at the IDS's
// stream reassembler.
type TCPFlow struct {
	net  *Network
	a, b *Host
	ends [2]tcpEnd
}

// tcpEnd is one direction's transmit state.
type tcpEnd struct {
	host *Host
	port uint16
	seq  uint32 // next sequence number to send
	open bool
}

// NewTCPFlow prepares a connection between a:aPort and b:bPort with
// deterministic initial sequence numbers drawn from the simulation RNG.
// Call Open to put the SYN exchange on the wire.
func NewTCPFlow(net *Network, a *Host, aPort uint16, b *Host, bPort uint16) *TCPFlow {
	rng := net.Sim().Rand()
	return &TCPFlow{
		net: net,
		a:   a, b: b,
		ends: [2]tcpEnd{
			{host: a, port: aPort, seq: rng.Uint32()},
			{host: b, port: bPort, seq: rng.Uint32()},
		},
	}
}

// end resolves which direction from transmits on.
func (f *TCPFlow) end(from *Host) *tcpEnd {
	switch from {
	case f.a:
		return &f.ends[0]
	case f.b:
		return &f.ends[1]
	default:
		panic(fmt.Sprintf("netsim: host %s is not an endpoint of this TCP flow", from.Name()))
	}
}

// peer returns the opposite direction's state.
func (f *TCPFlow) peer(e *tcpEnd) *tcpEnd {
	if e == &f.ends[0] {
		return &f.ends[1]
	}
	return &f.ends[0]
}

// Seq returns the sequence number from's next payload byte will carry.
// Attack tooling uses this to forge in-window segments.
func (f *TCPFlow) Seq(from *Host) uint32 { return f.end(from).seq }

// SkipSeq advances from's sequence state by n bytes without sending,
// accounting for payload injected by a third party (a spoofed segment)
// so the genuine endpoint's subsequent traffic stays in sequence.
func (f *TCPFlow) SkipSeq(from *Host, n int) { f.end(from).seq += uint32(n) }

// Open puts both directions' SYN segments on the wire. Reopening after a
// Reset starts fresh streams at new sequence numbers.
func (f *TCPFlow) Open() error {
	rng := f.net.Sim().Rand()
	for i := range f.ends {
		e := &f.ends[i]
		if e.open {
			continue
		}
		e.seq = rng.Uint32()
		if err := f.emit(e, packet.TCPFlagSYN, nil); err != nil {
			return err
		}
		e.seq++ // SYN consumes one sequence number
		e.open = true
	}
	return nil
}

// Send transmits payload from one endpoint as TCP segments (split at the
// network MTU if needed). Call it once per application message for
// one-message-per-segment traffic, with a concatenation of messages for a
// coalesced segment, or with pieces of one message for a split delivery.
func (f *TCPFlow) Send(from *Host, payload []byte) error {
	e := f.end(from)
	if !e.open {
		return fmt.Errorf("netsim: tcp flow from %s is not open", from.Name())
	}
	if err := f.emit(e, packet.TCPFlagACK|packet.TCPFlagPSH, payload); err != nil {
		return err
	}
	e.seq += uint32(len(payload))
	return nil
}

// Close sends from's FIN, ending that direction.
func (f *TCPFlow) Close(from *Host) error {
	e := f.end(from)
	if !e.open {
		return nil
	}
	if err := f.emit(e, packet.TCPFlagACK|packet.TCPFlagFIN, nil); err != nil {
		return err
	}
	e.seq++ // FIN consumes one sequence number
	e.open = false
	return nil
}

// Reset aborts the connection: from emits an RST and both directions are
// considered gone (a conforming peer discards all connection state).
func (f *TCPFlow) Reset(from *Host) error {
	e := f.end(from)
	if err := f.emit(e, packet.TCPFlagRST, nil); err != nil {
		return err
	}
	// The peer's direction dies silently with the connection; emit its RST
	// too so stream observers tear down both directions, as they would on
	// seeing the peer's own abort or timeout.
	p := f.peer(e)
	if p.open {
		if err := f.emit(p, packet.TCPFlagRST, nil); err != nil {
			return err
		}
	}
	e.open, p.open = false, false
	return nil
}

// emit frames one segment run and puts it on the wire.
func (f *TCPFlow) emit(e *tcpEnd, flags uint8, payload []byte) error {
	p := f.peer(e)
	dstMAC, ok := f.net.MACOf(p.host.IP())
	if !ok {
		return fmt.Errorf("netsim: tcp flow: no route to %v", p.host.IP())
	}
	frames, err := packet.BuildTCPFrames(packet.TCPFrameSpec{
		SrcMAC: e.host.MAC(), DstMAC: dstMAC,
		SrcIP: e.host.IP(), DstIP: p.host.IP(),
		SrcPort: e.port, DstPort: p.port,
		Seq: e.seq, Ack: p.seq,
		Flags:   flags,
		IPID:    e.host.NextIPID(),
		Payload: payload,
	}, f.net.MTU())
	if err != nil {
		return fmt.Errorf("netsim: tcp flow: %w", err)
	}
	e.host.SendRawFrames(frames...)
	return nil
}
