package netsim

import (
	"math"
	"math/rand"
	"time"
)

// Dist is a distribution of time durations, used for link delays and for
// the Section 4.3 evaluation model (attack-message generation offsets and
// per-packet network delays).
type Dist interface {
	// Sample draws one value using rng.
	Sample(rng *rand.Rand) time.Duration
	// Mean returns the distribution's expected value.
	Mean() time.Duration
}

// Deterministic is a point mass: every sample equals D.
type Deterministic struct{ D time.Duration }

// Sample implements Dist.
func (d Deterministic) Sample(*rand.Rand) time.Duration { return d.D }

// Mean implements Dist.
func (d Deterministic) Mean() time.Duration { return d.D }

// Uniform is the continuous uniform distribution on [Min, Max).
type Uniform struct{ Min, Max time.Duration }

// Sample implements Dist.
func (u Uniform) Sample(rng *rand.Rand) time.Duration {
	if u.Max <= u.Min {
		return u.Min
	}
	return u.Min + time.Duration(rng.Int63n(int64(u.Max-u.Min)))
}

// Mean implements Dist.
func (u Uniform) Mean() time.Duration { return (u.Min + u.Max) / 2 }

// Exponential is the exponential distribution with the given mean,
// truncated at Cap when Cap > 0 (resampling would bias the mean, so
// samples are clamped; pick Cap many multiples of the mean to keep the
// bias negligible).
type Exponential struct {
	MeanD time.Duration
	Cap   time.Duration
}

// Sample implements Dist.
func (e Exponential) Sample(rng *rand.Rand) time.Duration {
	d := time.Duration(float64(e.MeanD) * rng.ExpFloat64())
	if e.Cap > 0 && d > e.Cap {
		d = e.Cap
	}
	return d
}

// Mean implements Dist.
func (e Exponential) Mean() time.Duration { return e.MeanD }

// Shifted adds a fixed Offset to every sample of Base, modelling a
// propagation floor plus a random queueing component.
type Shifted struct {
	Base   Dist
	Offset time.Duration
}

// Sample implements Dist.
func (s Shifted) Sample(rng *rand.Rand) time.Duration { return s.Offset + s.Base.Sample(rng) }

// Mean implements Dist.
func (s Shifted) Mean() time.Duration { return s.Offset + s.Base.Mean() }

// Normal is the normal distribution with the given mean and standard
// deviation, truncated below at zero (delays cannot be negative).
type Normal struct {
	MeanD time.Duration
	Std   time.Duration
}

// Sample implements Dist.
func (n Normal) Sample(rng *rand.Rand) time.Duration {
	d := time.Duration(float64(n.MeanD) + float64(n.Std)*rng.NormFloat64())
	if d < 0 {
		d = 0
	}
	return d
}

// Mean implements Dist. For small Std relative to MeanD the truncation
// bias is negligible; the nominal mean is returned.
func (n Normal) Mean() time.Duration { return n.MeanD }

// Quantile estimators and moments used by the evaluation harness.

// EstimateMean draws n samples from d and returns their average.
func EstimateMean(d Dist, rng *rand.Rand, n int) time.Duration {
	if n <= 0 {
		return 0
	}
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(d.Sample(rng))
	}
	return time.Duration(math.Round(sum / float64(n)))
}

var (
	_ Dist = Deterministic{}
	_ Dist = Uniform{}
	_ Dist = Exponential{}
	_ Dist = Shifted{}
	_ Dist = Normal{}
)
