package netsim

import (
	"fmt"
	"net/netip"
	"time"

	"scidive/internal/packet"
)

// Link models one host's attachment to the hub: a delay distribution, a
// loss probability, and a duplication probability, applied independently
// in each direction and for each traversal.
type Link struct {
	Delay Dist
	Loss  float64 // probability in [0,1] that a traversal drops the frame
	// Duplicate is the probability a delivered frame arrives twice (the
	// second copy with an independently sampled delay).
	Duplicate float64
}

// DefaultLink is a fast LAN link: 0.5 ms deterministic delay, no loss.
var DefaultLink = Link{Delay: Deterministic{D: 500 * time.Microsecond}}

// Tap observes every frame that reaches the hub, timestamped with hub
// arrival time. This models the IDS machine plugged into the hub
// (paper Figure 4).
type Tap func(at time.Duration, frame []byte)

// Stats counts network activity.
type Stats struct {
	FramesSent       int // frames handed to the hub by hosts
	FramesDelivered  int // frame deliveries to host NICs (one per receiver)
	FramesLost       int // traversals dropped by the loss model
	FramesFiltered   int // deliveries discarded by NIC destination filtering
	FramesDuplicated int // extra deliveries injected by the duplication model
}

// Network is a hub-based LAN of simulated hosts.
type Network struct {
	sim    *Simulator
	mtu    int
	hosts  []*Host
	byIP   map[netip.Addr]*Host
	taps   []Tap
	stats  Stats
	nextID byte
}

// NetworkOption configures a Network.
type NetworkOption func(*Network)

// WithMTU sets the Ethernet payload MTU (default packet.DefaultMTU).
func WithMTU(mtu int) NetworkOption {
	return func(n *Network) { n.mtu = mtu }
}

// NewNetwork creates an empty hub-based network driven by sim.
func NewNetwork(sim *Simulator, opts ...NetworkOption) *Network {
	n := &Network{
		sim:  sim,
		mtu:  packet.DefaultMTU,
		byIP: make(map[netip.Addr]*Host),
	}
	for _, o := range opts {
		o(n)
	}
	return n
}

// Sim returns the driving simulator.
func (n *Network) Sim() *Simulator { return n.sim }

// MTU returns the network's Ethernet payload MTU.
func (n *Network) MTU() int { return n.mtu }

// Stats returns a snapshot of the network counters.
func (n *Network) Stats() Stats { return n.stats }

// AddHost attaches a host with the given name and IPv4 address using
// DefaultLink. The MAC address is assigned automatically.
func (n *Network) AddHost(name string, ip netip.Addr) (*Host, error) {
	if !ip.Is4() {
		return nil, fmt.Errorf("netsim: host %q: address %v is not IPv4", name, ip)
	}
	if _, dup := n.byIP[ip]; dup {
		return nil, fmt.Errorf("netsim: duplicate host address %v", ip)
	}
	n.nextID++
	h := &Host{
		name:     name,
		ip:       ip,
		mac:      packet.MAC{0x02, 0, 0, 0, 0, n.nextID},
		link:     DefaultLink,
		net:      n,
		handlers: make(map[uint16]UDPHandler),
		reasm:    packet.NewReassembler(0),
	}
	n.hosts = append(n.hosts, h)
	n.byIP[ip] = h
	return h, nil
}

// MustAddHost is AddHost that panics on error, for test and scenario setup.
func (n *Network) MustAddHost(name string, ip netip.Addr) *Host {
	h, err := n.AddHost(name, ip)
	if err != nil {
		panic(err)
	}
	return h
}

// HostByIP returns the host bound to ip, or nil.
func (n *Network) HostByIP(ip netip.Addr) *Host { return n.byIP[ip] }

// MACOf resolves the MAC address for an IP on this LAN (a static ARP
// table; the simulation does not model ARP traffic).
func (n *Network) MACOf(ip netip.Addr) (packet.MAC, bool) {
	h, ok := n.byIP[ip]
	if !ok {
		return packet.MAC{}, false
	}
	return h.mac, true
}

// AddTap registers a promiscuous observer of all hub traffic.
func (n *Network) AddTap(t Tap) { n.taps = append(n.taps, t) }

// transmit carries a frame from src across its uplink to the hub, then
// fans it out to every other host across their downlinks. Taps observe
// the frame at hub arrival time.
func (n *Network) transmit(src *Host, frame []byte) {
	n.stats.FramesSent++
	if src.txTap != nil {
		src.txTap(frame)
	}
	if n.drop(src.link) {
		n.stats.FramesLost++
		return
	}
	up := src.link.Delay.Sample(n.sim.rng)
	n.sim.Schedule(up, func() {
		at := n.sim.Now()
		for _, t := range n.taps {
			t(at, frame)
		}
		for _, dst := range n.hosts {
			if dst == src {
				continue
			}
			if n.drop(dst.link) {
				n.stats.FramesLost++
				continue
			}
			dst := dst
			n.sim.Schedule(dst.link.Delay.Sample(n.sim.rng), func() {
				n.stats.FramesDelivered++
				dst.receive(frame)
			})
			if dst.link.Duplicate > 0 && n.sim.rng.Float64() < dst.link.Duplicate {
				n.stats.FramesDuplicated++
				n.sim.Schedule(dst.link.Delay.Sample(n.sim.rng), func() {
					n.stats.FramesDelivered++
					dst.receive(frame)
				})
			}
		}
	})
}

// drop samples the loss model of a link traversal.
func (n *Network) drop(l Link) bool {
	return l.Loss > 0 && n.sim.rng.Float64() < l.Loss
}
