package netsim

import (
	"container/heap"
	"math/rand"
	"time"
)

// event is one scheduled callback.
type event struct {
	at  time.Duration
	seq uint64 // tie-break: FIFO among equal timestamps
	fn  func()
}

// eventHeap is a min-heap of events ordered by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Simulator is a single-threaded discrete-event scheduler with a virtual
// clock. It is not safe for concurrent use; all simulated components run
// inside its event loop.
type Simulator struct {
	now     time.Duration
	queue   eventHeap
	seq     uint64
	rng     *rand.Rand
	stopped bool
}

// NewSimulator returns a simulator whose randomness is derived from seed.
func NewSimulator(seed int64) *Simulator {
	return &Simulator{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time (zero at simulation start).
func (s *Simulator) Now() time.Duration { return s.now }

// Rand returns the simulation's deterministic random source.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// Schedule runs fn after delay of virtual time. A negative delay is
// treated as zero.
func (s *Simulator) Schedule(delay time.Duration, fn func()) {
	if delay < 0 {
		delay = 0
	}
	s.ScheduleAt(s.now+delay, fn)
}

// ScheduleAt runs fn at absolute virtual time at. Times in the past are
// clamped to now.
func (s *Simulator) ScheduleAt(at time.Duration, fn func()) {
	if at < s.now {
		at = s.now
	}
	s.seq++
	heap.Push(&s.queue, &event{at: at, seq: s.seq, fn: fn})
}

// Every runs fn at start and then every period until fn returns false.
func (s *Simulator) Every(start, period time.Duration, fn func() bool) {
	var tick func()
	tick = func() {
		if fn() {
			s.Schedule(period, tick)
		}
	}
	s.Schedule(start, tick)
}

// Step executes the next pending event, advancing the clock to its
// timestamp. It reports whether an event was executed.
func (s *Simulator) Step() bool {
	if len(s.queue) == 0 || s.stopped {
		return false
	}
	e := heap.Pop(&s.queue).(*event)
	s.now = e.at
	e.fn()
	return true
}

// Run executes events until the queue drains or Stop is called, returning
// the number of events executed.
func (s *Simulator) Run() int {
	n := 0
	for s.Step() {
		n++
	}
	return n
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to the deadline. It returns the number of events executed.
func (s *Simulator) RunUntil(deadline time.Duration) int {
	n := 0
	for len(s.queue) > 0 && !s.stopped && s.queue[0].at <= deadline {
		s.Step()
		n++
	}
	if !s.stopped && s.now < deadline {
		s.now = deadline
	}
	return n
}

// Stop halts Run/RunUntil after the current event. Further Step calls do
// nothing until Resume.
func (s *Simulator) Stop() { s.stopped = true }

// Resume clears a Stop.
func (s *Simulator) Resume() { s.stopped = false }

// Pending returns the number of queued events.
func (s *Simulator) Pending() int { return len(s.queue) }
