// Package netsim provides a deterministic discrete-event network
// simulator that stands in for the hub-based LAN testbed of the SCIDIVE
// paper (Figure 4). Hosts attach to a shared hub through links with
// configurable delay distributions and loss probabilities; every frame
// that crosses the hub is mirrored to registered taps, which is how the
// end-point IDS observes traffic exactly as it would on a real hub.
//
// Time is virtual: all activity is driven by a single event queue ordered
// by timestamp (FIFO among equal timestamps), and randomness comes from a
// seeded generator, so simulations are exactly reproducible.
package netsim
