package netsim

import (
	"bytes"
	"net/netip"
	"testing"
	"time"

	"scidive/internal/packet"
)

func twoHosts(t *testing.T, seed int64) (*Simulator, *Network, *Host, *Host) {
	t.Helper()
	sim := NewSimulator(seed)
	n := NewNetwork(sim)
	a := n.MustAddHost("a", netip.MustParseAddr("10.0.0.1"))
	b := n.MustAddHost("b", netip.MustParseAddr("10.0.0.2"))
	return sim, n, a, b
}

func TestUDPDelivery(t *testing.T) {
	sim, _, a, b := twoHosts(t, 1)
	var got []byte
	var from netip.AddrPort
	var at time.Duration
	if err := b.BindUDP(5060, func(src netip.AddrPort, p []byte) {
		from = src
		got = append([]byte(nil), p...)
		at = sim.Now()
	}); err != nil {
		t.Fatalf("BindUDP: %v", err)
	}
	if err := a.SendUDP(5060, netip.AddrPortFrom(b.IP(), 5060), []byte("hello voip")); err != nil {
		t.Fatalf("SendUDP: %v", err)
	}
	sim.Run()
	if !bytes.Equal(got, []byte("hello voip")) {
		t.Fatalf("payload = %q, want %q", got, "hello voip")
	}
	if from.Addr() != a.IP() || from.Port() != 5060 {
		t.Errorf("from = %v, want %v:5060", from, a.IP())
	}
	// Two DefaultLink traversals at 0.5 ms each.
	if at != time.Millisecond {
		t.Errorf("delivery time = %v, want 1ms", at)
	}
}

func TestUDPFragmentedDelivery(t *testing.T) {
	sim, _, a, b := twoHosts(t, 1)
	payload := bytes.Repeat([]byte("0123456789"), 500) // 5000 bytes → 4 fragments
	var got []byte
	if err := b.BindUDP(4000, func(_ netip.AddrPort, p []byte) {
		got = append([]byte(nil), p...)
	}); err != nil {
		t.Fatalf("BindUDP: %v", err)
	}
	if err := a.SendUDP(4000, netip.AddrPortFrom(b.IP(), 4000), payload); err != nil {
		t.Fatalf("SendUDP: %v", err)
	}
	sim.Run()
	if !bytes.Equal(got, payload) {
		t.Fatalf("fragmented payload not reassembled: got %d bytes, want %d", len(got), len(payload))
	}
}

func TestNICFiltering(t *testing.T) {
	sim, n, a, b := twoHosts(t, 1)
	c := n.MustAddHost("c", netip.MustParseAddr("10.0.0.3"))
	delivered := map[string]bool{}
	for _, h := range []*Host{b, c} {
		h := h
		if err := h.BindUDP(9, func(netip.AddrPort, []byte) { delivered[h.Name()] = true }); err != nil {
			t.Fatalf("BindUDP: %v", err)
		}
	}
	if err := a.SendUDP(9, netip.AddrPortFrom(b.IP(), 9), []byte("x")); err != nil {
		t.Fatalf("SendUDP: %v", err)
	}
	sim.Run()
	if !delivered["b"] || delivered["c"] {
		t.Errorf("delivered = %v, want only b", delivered)
	}
	if n.Stats().FramesFiltered == 0 {
		t.Error("expected NIC filtering at host c on a hub network")
	}
}

func TestHubTapSeesAllTraffic(t *testing.T) {
	sim, n, a, b := twoHosts(t, 1)
	var tapped int
	n.AddTap(func(at time.Duration, frame []byte) {
		tapped++
		if _, err := packet.UnmarshalEthernet(frame); err != nil {
			t.Errorf("tap got undecodable frame: %v", err)
		}
	})
	_ = b.BindUDP(7, func(netip.AddrPort, []byte) {})
	for i := 0; i < 5; i++ {
		if err := a.SendUDP(7, netip.AddrPortFrom(b.IP(), 7), []byte("ping")); err != nil {
			t.Fatalf("SendUDP: %v", err)
		}
	}
	sim.Run()
	if tapped != 5 {
		t.Errorf("tap saw %d frames, want 5", tapped)
	}
}

func TestLinkLossDropsFrames(t *testing.T) {
	sim, n, a, b := twoHosts(t, 42)
	a.SetLink(Link{Delay: Deterministic{D: time.Millisecond}, Loss: 0.5})
	received := 0
	_ = b.BindUDP(7, func(netip.AddrPort, []byte) { received++ })
	const sent = 1000
	for i := 0; i < sent; i++ {
		if err := a.SendUDP(7, netip.AddrPortFrom(b.IP(), 7), []byte("p")); err != nil {
			t.Fatalf("SendUDP: %v", err)
		}
	}
	sim.Run()
	if received < 350 || received > 650 {
		t.Errorf("received %d/%d with 50%% uplink loss, want ≈500", received, sent)
	}
	if n.Stats().FramesLost != sent-received {
		t.Errorf("FramesLost = %d, want %d", n.Stats().FramesLost, sent-received)
	}
}

func TestSpoofedRawFrames(t *testing.T) {
	sim, n, a, b := twoHosts(t, 1)
	atk := n.MustAddHost("attacker", netip.MustParseAddr("10.0.0.66"))
	var from netip.AddrPort
	_ = b.BindUDP(5060, func(src netip.AddrPort, _ []byte) { from = src })
	bMAC, _ := n.MACOf(b.IP())
	frames, err := packet.BuildUDPFrames(packet.UDPFrameSpec{
		SrcMAC: atk.MAC(), DstMAC: bMAC,
		SrcIP: a.IP(), DstIP: b.IP(), // spoofed source: pretend to be a
		SrcPort: 5060, DstPort: 5060,
		IPID:    atk.NextIPID(),
		Payload: []byte("BYE sip:b SIP/2.0\r\n"),
	}, n.MTU())
	if err != nil {
		t.Fatalf("BuildUDPFrames: %v", err)
	}
	atk.SendRawFrames(frames...)
	sim.Run()
	if from.Addr() != a.IP() {
		t.Errorf("victim saw source %v, want spoofed %v", from.Addr(), a.IP())
	}
}

func TestDuplicateHostAndPortErrors(t *testing.T) {
	_, n, a, _ := twoHosts(t, 1)
	if _, err := n.AddHost("dup", netip.MustParseAddr("10.0.0.1")); err == nil {
		t.Error("AddHost with duplicate IP: want error")
	}
	if _, err := n.AddHost("v6", netip.MustParseAddr("::1")); err == nil {
		t.Error("AddHost with IPv6: want error")
	}
	if err := a.BindUDP(5060, func(netip.AddrPort, []byte) {}); err != nil {
		t.Fatalf("BindUDP: %v", err)
	}
	if err := a.BindUDP(5060, func(netip.AddrPort, []byte) {}); err == nil {
		t.Error("double BindUDP: want error")
	}
	if err := a.SendUDP(1, netip.MustParseAddrPort("10.9.9.9:1"), nil); err == nil {
		t.Error("SendUDP to unknown host: want error")
	}
}

func TestPromiscuousMode(t *testing.T) {
	sim, n, a, b := twoHosts(t, 1)
	ids := n.MustAddHost("ids", netip.MustParseAddr("10.0.0.100"))
	seen := 0
	ids.SetPromiscuous(func([]byte) { seen++ })
	_ = b.BindUDP(7, func(netip.AddrPort, []byte) {})
	_ = a.SendUDP(7, netip.AddrPortFrom(b.IP(), 7), []byte("x"))
	sim.Run()
	if seen != 1 {
		t.Errorf("promiscuous host saw %d frames, want 1", seen)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() ([]time.Duration, Stats) {
		sim, n, a, b := twoHosts(t, 99)
		a.SetLink(Link{Delay: Uniform{Min: time.Millisecond, Max: 10 * time.Millisecond}, Loss: 0.2})
		var times []time.Duration
		_ = b.BindUDP(7, func(netip.AddrPort, []byte) { times = append(times, sim.Now()) })
		for i := 0; i < 50; i++ {
			_ = a.SendUDP(7, netip.AddrPortFrom(b.IP(), 7), []byte("d"))
		}
		sim.Run()
		return times, n.Stats()
	}
	t1, s1 := run()
	t2, s2 := run()
	if len(t1) != len(t2) || s1 != s2 {
		t.Fatalf("replay diverged: %d/%d deliveries, stats %+v vs %+v", len(t1), len(t2), s1, s2)
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("delivery %d at %v vs %v", i, t1[i], t2[i])
		}
	}
}

func TestTransmitTapSeesOutgoingFrames(t *testing.T) {
	sim, _, a, b := twoHosts(t, 1)
	var txFrames, rxFrames int
	a.SetTransmitTap(func([]byte) { txFrames++ })
	a.SetPromiscuous(func([]byte) { rxFrames++ })
	_ = b.BindUDP(7, func(netip.AddrPort, []byte) {})
	_ = a.SendUDP(7, netip.AddrPortFrom(b.IP(), 7), []byte("out"))
	_ = b.SendUDP(7, netip.AddrPortFrom(a.IP(), 7), []byte("in"))
	sim.Run()
	if txFrames != 1 {
		t.Errorf("tx tap saw %d frames, want 1 (own transmission)", txFrames)
	}
	// The promiscuous receive path sees only the inbound frame: hosts never
	// hear their own transmissions echoed from the hub.
	if rxFrames != 1 {
		t.Errorf("rx tap saw %d frames, want 1 (inbound only)", rxFrames)
	}
}

func TestDuplicationModel(t *testing.T) {
	sim, n, a, b := twoHosts(t, 5)
	b.SetLink(Link{Delay: Deterministic{D: time.Millisecond}, Duplicate: 1.0})
	received := 0
	_ = b.BindUDP(7, func(netip.AddrPort, []byte) { received++ })
	for i := 0; i < 10; i++ {
		_ = a.SendUDP(7, netip.AddrPortFrom(b.IP(), 7), []byte("d"))
	}
	sim.Run()
	if received != 20 {
		t.Errorf("received %d datagrams with 100%% duplication, want 20", received)
	}
	if n.Stats().FramesDuplicated != 10 {
		t.Errorf("FramesDuplicated = %d, want 10", n.Stats().FramesDuplicated)
	}
}
