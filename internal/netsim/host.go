package netsim

import (
	"fmt"
	"net/netip"

	"scidive/internal/packet"
)

// UDPHandler receives the payload of a UDP datagram addressed to a bound
// port. src is the (possibly spoofed) source of the datagram as it
// appeared on the wire. The payload aliases the frame buffer; handlers
// that retain it must copy.
type UDPHandler func(src netip.AddrPort, payload []byte)

// Host is a simulated machine on the LAN: one NIC, an IPv4 stack with
// fragment reassembly, and a UDP port table.
type Host struct {
	name     string
	ip       netip.Addr
	mac      packet.MAC
	link     Link
	net      *Network
	handlers map[uint16]UDPHandler
	reasm    *packet.Reassembler
	ipid     uint16
	promisc  func(frame []byte)
	txTap    func(frame []byte)

	// RxFrames counts frames accepted by the NIC filter.
	RxFrames int
}

// Name returns the host's configured name.
func (h *Host) Name() string { return h.name }

// IP returns the host's IPv4 address.
func (h *Host) IP() netip.Addr { return h.ip }

// MAC returns the host's hardware address.
func (h *Host) MAC() packet.MAC { return h.mac }

// SetLink replaces the host's link characteristics.
func (h *Host) SetLink(l Link) {
	if l.Delay == nil {
		l.Delay = DefaultLink.Delay
	}
	h.link = l
}

// Link returns the host's current link characteristics.
func (h *Host) Link() Link { return h.link }

// Sim returns the simulator driving this host's network.
func (h *Host) Sim() *Simulator { return h.net.sim }

// BindUDP registers fn as the handler for datagrams to the given port.
func (h *Host) BindUDP(port uint16, fn UDPHandler) error {
	if _, dup := h.handlers[port]; dup {
		return fmt.Errorf("netsim: host %s: port %d already bound", h.name, port)
	}
	h.handlers[port] = fn
	return nil
}

// UnbindUDP removes the handler for port, if any.
func (h *Host) UnbindUDP(port uint16) { delete(h.handlers, port) }

// SetPromiscuous installs a callback for every frame the NIC sees,
// regardless of destination filtering (nil disables). Used by host-local
// IDS deployments. Note that a host never receives its own transmissions
// back from the hub; use SetTransmitTap to observe outgoing frames.
func (h *Host) SetPromiscuous(fn func(frame []byte)) { h.promisc = fn }

// SetTransmitTap installs a callback invoked for every frame this host
// puts on the wire (nil disables). Together with SetPromiscuous this
// gives a host-resident IDS the full bidirectional view a real NIC
// capture provides.
func (h *Host) SetTransmitTap(fn func(frame []byte)) { h.txTap = fn }

// SendUDP sends payload from srcPort to dst, performing framing and IP
// fragmentation as needed.
func (h *Host) SendUDP(srcPort uint16, dst netip.AddrPort, payload []byte) error {
	dstMAC, ok := h.net.MACOf(dst.Addr())
	if !ok {
		return fmt.Errorf("netsim: host %s: no route to %v", h.name, dst.Addr())
	}
	h.ipid++
	frames, err := packet.BuildUDPFrames(packet.UDPFrameSpec{
		SrcMAC: h.mac, DstMAC: dstMAC,
		SrcIP: h.ip, DstIP: dst.Addr(),
		SrcPort: srcPort, DstPort: dst.Port(),
		IPID:    h.ipid,
		Payload: payload,
	}, h.net.mtu)
	if err != nil {
		return fmt.Errorf("netsim: host %s send: %w", h.name, err)
	}
	for _, f := range frames {
		h.net.transmit(h, f)
	}
	return nil
}

// SendRawFrames injects pre-built Ethernet frames onto the wire verbatim.
// Attack tooling uses this to emit frames with forged source addresses.
func (h *Host) SendRawFrames(frames ...[]byte) {
	for _, f := range frames {
		h.net.transmit(h, f)
	}
}

// NextIPID returns a fresh IP identification value from this host's
// counter, for callers that build frames manually.
func (h *Host) NextIPID() uint16 {
	h.ipid++
	return h.ipid
}

// receive processes one frame arriving at the NIC.
func (h *Host) receive(frame []byte) {
	if h.promisc != nil {
		h.promisc(frame)
	}
	ef, err := packet.UnmarshalEthernet(frame)
	if err != nil {
		return
	}
	if ef.Dst != h.mac && !ef.Dst.IsBroadcast() {
		h.net.stats.FramesFiltered++
		return
	}
	h.RxFrames++
	if ef.Type != packet.EtherTypeIPv4 {
		return
	}
	iph, ipp, err := packet.UnmarshalIPv4(ef.Payload)
	if err != nil {
		return
	}
	if iph.Dst != h.ip {
		return
	}
	full, payload, done, err := h.reasm.Insert(iph, ipp, h.net.sim.Now())
	if err != nil || !done {
		return
	}
	if full.Protocol != packet.ProtoUDP {
		return
	}
	uh, up, err := packet.UnmarshalUDP(full.Src, full.Dst, payload)
	if err != nil {
		return
	}
	fn, ok := h.handlers[uh.DstPort]
	if !ok {
		return
	}
	fn(netip.AddrPortFrom(full.Src, uh.SrcPort), up)
}
