package core_test

// Cross-geometry resume differential: portable (v3) checkpoints are keyed
// by session, not by shard, so a checkpoint written at one engine
// geometry must resume at ANY other — serial or sharded, narrower or
// wider, with or without parallel ingest — and the resumed run must be
// byte-identical (under the Footprint-free keys) to an uninterrupted run.
// This is the elastic-operations proof: growing 8 shards to 32 is
// checkpoint → restart wider → resume, and these tests hold every
// capture × resume geometry pair to the uninterrupted baseline.

import (
	"fmt"
	"testing"

	"scidive/internal/core"
	"scidive/internal/experiments"
)

// geometry is one engine shape: shards == 0 runs the serial Engine
// (ingest is meaningless there); shards >= 1 runs the ShardedEngine with
// that many ingest routers (1 = the synchronous router).
type geometry struct {
	shards, ingest int
}

func (g geometry) String() string {
	if g.shards == 0 {
		return "serial"
	}
	return fmt.Sprintf("shards%d/ingest%d", g.shards, g.ingest)
}

// captureGeometries are the shapes checkpoints are written at, and
// resumeGeometries the shapes they are resumed at. The two sets
// deliberately share almost nothing: every pair crosses engine kind,
// shard count, or ingest width.
var (
	captureGeometries = []geometry{
		{shards: 0},
		{shards: 1, ingest: 1},
		{shards: 8, ingest: 1},
		{shards: 8, ingest: 2},
	}
	resumeGeometries = []geometry{
		{shards: 0},
		{shards: 1, ingest: 1},
		{shards: 2, ingest: 1},
		{shards: 2, ingest: 4},
		{shards: 32, ingest: 1},
		{shards: 32, ingest: 4},
	}
	// shortCaptureGeometries/shortResumeGeometries keep -short mode to the
	// extremes: serial ↔ widest, narrow ↔ wide with parallel ingest.
	shortCaptureGeometries = []geometry{{shards: 0}, {shards: 8, ingest: 2}}
	shortResumeGeometries  = []geometry{{shards: 0}, {shards: 2, ingest: 1}, {shards: 32, ingest: 4}}
)

// checkpointAt feeds frames[:k] through an engine of the given geometry
// and returns its checkpoint bytes.
func checkpointAt(t *testing.T, frames []rec, k int, g geometry, cfg core.Config) []byte {
	t.Helper()
	if g.shards == 0 {
		eng := core.NewEngine(cfg, core.WithEventLog())
		for _, r := range frames[:k] {
			eng.HandleFrame(r.at, r.frame)
		}
		snap, err := eng.Snapshot()
		if err != nil {
			t.Fatalf("%v snapshot at frame %d: %v", g, k, err)
		}
		return snap
	}
	gcfg := cfg
	gcfg.IngestRouters = g.ingest
	eng := core.NewShardedEngine(gcfg, g.shards, core.WithEventLog())
	defer eng.Close()
	for _, r := range frames[:k] {
		eng.HandleFrame(r.at, r.frame)
	}
	snap, err := eng.Snapshot()
	if err != nil {
		t.Fatalf("%v snapshot at frame %d: %v", g, k, err)
	}
	return snap
}

// resumeAt restores a checkpoint into a fresh engine of the given
// geometry, feeds it frames[k:], and returns the final outputs.
func resumeAt(t *testing.T, snap []byte, frames []rec, k int, g geometry, cfg core.Config) ([]core.Alert, []core.Event, core.EngineStats) {
	t.Helper()
	if g.shards == 0 {
		eng := core.NewEngine(cfg, core.WithEventLog())
		if err := eng.RestoreSnapshot(snap); err != nil {
			t.Fatalf("%v restore: %v", g, err)
		}
		for _, r := range frames[k:] {
			eng.HandleFrame(r.at, r.frame)
		}
		return eng.Alerts(), eng.Events(), eng.Stats()
	}
	gcfg := cfg
	gcfg.IngestRouters = g.ingest
	eng := core.NewShardedEngine(gcfg, g.shards, core.WithEventLog())
	defer eng.Close()
	if err := eng.RestoreSnapshot(snap); err != nil {
		t.Fatalf("%v restore: %v", g, err)
	}
	for _, r := range frames[k:] {
		eng.HandleFrame(r.at, r.frame)
	}
	eng.Flush()
	for _, h := range eng.ShardHealth() {
		if h.FramesRouted != h.FramesProcessed+h.FramesShed {
			t.Errorf("%v shard %d ledger does not reconcile after cross-geometry restore: routed=%d processed=%d shed=%d",
				g, h.Shard, h.FramesRouted, h.FramesProcessed, h.FramesShed)
		}
	}
	return eng.Alerts(), eng.Events(), eng.Stats()
}

// TestCrossGeometryResumeDifferential checkpoints mid-scenario at every
// capture geometry and resumes each checkpoint at every resume geometry;
// all pairs must reproduce the uninterrupted serial run exactly.
func TestCrossGeometryResumeDifferential(t *testing.T) {
	captures, resumes := captureGeometries, resumeGeometries
	if testing.Short() {
		captures, resumes = shortCaptureGeometries, shortResumeGeometries
	}
	for _, name := range experiments.ScenarioNames() {
		if testing.Short() && !shortKillScenarios[name] {
			continue
		}
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			frames := scenarioFrames(t, name, 7)
			k := len(frames) / 2
			wantAlerts, wantEvents, wantStats := runSerialCfg(frames, core.Config{})
			for _, cg := range captures {
				snap := checkpointAt(t, frames, k, cg, core.Config{})
				for _, rg := range resumes {
					gotAlerts, gotEvents, gotStats := resumeAt(t, snap, frames, k, rg, core.Config{})
					compareToBaseline(t, fmt.Sprintf("%s: %v ckpt → %v resume", name, cg, rg),
						gotAlerts, gotEvents, gotStats, wantAlerts, wantEvents, wantStats)
					if t.Failed() {
						return
					}
				}
			}
		})
	}
}

// TestCrossGeometrySnapshotBytes pins the stronger property the portable
// format was built around: the checkpoint BYTES of the same logical state
// are identical no matter which geometry serialized them, because every
// writer works from a session-keyed global view with deterministic
// ordering. Capture geometry is recorded in the header purely as
// provenance — its fields (engine kind at offset 5, shard and ingest
// widths at 6..13) and the trailing checksum that covers them are the
// only bytes allowed to differ.
func TestCrossGeometrySnapshotBytes(t *testing.T) {
	const geoEnd, checksumLen = 14, 8
	frames := scenarioFrames(t, "bye", 7)
	k := len(frames) / 2
	want := checkpointAt(t, frames, k, geometry{shards: 0}, core.Config{})
	for _, g := range []geometry{{shards: 1, ingest: 1}, {shards: 2, ingest: 1}, {shards: 8, ingest: 2}} {
		got := checkpointAt(t, frames, k, g, core.Config{})
		if len(got) != len(want) {
			t.Errorf("%v checkpoint is %d bytes, serial is %d", g, len(got), len(want))
			continue
		}
		for i := geoEnd; i < len(want)-checksumLen; i++ {
			if got[i] != want[i] {
				t.Errorf("%v checkpoint differs from serial at offset %d (outside the header's provenance fields)", g, i)
				break
			}
		}
	}
}
