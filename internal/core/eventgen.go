package core

import (
	"fmt"
	"net/netip"
	"time"

	"scidive/internal/accounting"
	"scidive/internal/rtp"
	"scidive/internal/sip"
)

// GenConfig tunes the Event Generator's stateful checks.
type GenConfig struct {
	// MonitorWindow is "m": how long after a BYE/REINVITE the orphan-flow
	// monitor stays armed (Section 4.3). Default 1s.
	MonitorWindow time.Duration
	// ReinviteGrace delays the REINVITE orphan monitor: a legitimately
	// migrating phone keeps transmitting from its old socket until its
	// re-INVITE transaction completes, so media from the old address is
	// only suspicious after this grace period. Default 250ms.
	ReinviteGrace time.Duration
	// SeqJumpThreshold is the paper's empirically chosen sequence-number
	// discontinuity bound. Default 100.
	SeqJumpThreshold int
	// AuthFloodThreshold is how many 401s one session may draw before the
	// DoS event fires. Default 5.
	AuthFloodThreshold int
	// GuessThreshold is how many distinct challenge responses one session
	// may try before the password-guessing event fires. Default 3.
	GuessThreshold int
	// IMPeriod is how long a sender's source IP is expected to stay
	// stable (the rule's mobility allowance). Default 60s.
	IMPeriod time.Duration
}

// withDefaults fills zero fields.
func (c GenConfig) withDefaults() GenConfig {
	if c.MonitorWindow == 0 {
		c.MonitorWindow = time.Second
	}
	if c.ReinviteGrace == 0 {
		c.ReinviteGrace = 250 * time.Millisecond
	}
	if c.SeqJumpThreshold == 0 {
		c.SeqJumpThreshold = 100
	}
	if c.AuthFloodThreshold == 0 {
		c.AuthFloodThreshold = 5
	}
	if c.GuessThreshold == 0 {
		c.GuessThreshold = 3
	}
	if c.IMPeriod == 0 {
		c.IMPeriod = 60 * time.Second
	}
	return c
}

// sessionState is the per-call state the generator accumulates.
type sessionState struct {
	callID      string
	lastSeen    time.Duration
	established bool

	callerAOR   string
	calleeAOR   string
	callerTag   string
	calleeTag   string
	callerMedia netip.AddrPort
	calleeMedia netip.AddrPort
	inviteSrcIP netip.Addr // network source of the first INVITE sighting

	byeSeen      bool
	byeAt        time.Duration
	byeFromMedia netip.AddrPort // media of the purported BYE sender

	lastReinviteSeq  uint32
	reinviteSeen     bool
	reinviteAt       time.Duration
	reinviteOldMedia netip.AddrPort // media the "moved" party used before

	badFormat     bool
	acctStart     bool
	unmatchedOnce bool

	// RTCP BYE correlation (three-protocol chain: SIP state, RTP media,
	// RTCP control).
	rtcpByeAt      time.Duration
	rtcpByePending bool
	rtcpByeFired   bool

	// Registration-session state (Section 3.3).
	isRegistration bool
	challenges     int
	floodFired     bool
	guessResponses map[string]struct{}
	guessFired     bool
}

// imRecord tracks the last source of instant messages per claimed sender.
type imRecord struct {
	ip netip.Addr
	at time.Duration
}

// seqTrack tracks RTP sequence continuity per destination media endpoint.
type seqTrack struct {
	last   uint16
	primed bool
}

// EventGenerator folds footprints into events, keeping per-session state
// across packets and protocols. It is deliberately "hard-coded and
// seamlessly coupled with internal structures for best possible
// performance" (paper Section 3.1).
type EventGenerator struct {
	cfg    GenConfig
	trails *TrailStore

	sessions   map[string]*sessionState
	bindings   map[string]netip.Addr // AOR -> registered contact IP
	ims        map[string]imRecord   // "AOR|dstIP" -> last IM source on that delivery path
	seqs       map[netip.AddrPort]*seqTrack
	pendingReg map[string]string // Call-ID -> AOR awaiting 200
}

// NewEventGenerator returns a generator storing footprints into trails.
func NewEventGenerator(cfg GenConfig, trails *TrailStore) *EventGenerator {
	return &EventGenerator{
		cfg:        cfg.withDefaults(),
		trails:     trails,
		sessions:   make(map[string]*sessionState),
		bindings:   make(map[string]netip.Addr),
		ims:        make(map[string]imRecord),
		seqs:       make(map[netip.AddrPort]*seqTrack),
		pendingReg: make(map[string]string),
	}
}

// Bindings returns the registration bindings learned from traffic.
func (g *EventGenerator) Bindings() map[string]netip.Addr {
	out := make(map[string]netip.Addr, len(g.bindings))
	for k, v := range g.bindings {
		out[k] = v
	}
	return out
}

// session returns the state for a Call-ID, creating it if needed.
func (g *EventGenerator) session(callID string) *sessionState {
	st, ok := g.sessions[callID]
	if !ok {
		st = &sessionState{callID: callID, guessResponses: make(map[string]struct{})}
		g.sessions[callID] = st
	}
	return st
}

// touch records session activity for expiry bookkeeping.
func (g *EventGenerator) touch(session string, at time.Duration) {
	if st, ok := g.sessions[session]; ok {
		st.lastSeen = at
	}
}

// ExpireSessions drops per-session state (and the session's trails) for
// sessions idle longer than timeout as of now. It returns how many
// sessions were evicted. Registration bindings and IM histories have
// their own windows and are kept.
func (g *EventGenerator) ExpireSessions(now, timeout time.Duration) int {
	evicted := 0
	for id, st := range g.sessions {
		if now-st.lastSeen > timeout {
			delete(g.sessions, id)
			g.trails.Drop(id)
			evicted++
		}
	}
	if evicted > 0 {
		// Sequence trackers for media endpoints of dead sessions would leak
		// too; they are keyed by endpoint, so sweep any tracker not
		// refreshed within the timeout by rebuilding lazily: cheapest is to
		// clear when the sessions map empties.
		if len(g.sessions) == 0 {
			g.seqs = make(map[netip.AddrPort]*seqTrack)
		}
	}
	return evicted
}

// Process folds one footprint into the trails and state, returning any
// events it completes.
func (g *EventGenerator) Process(f Footprint) []Event {
	switch fp := f.(type) {
	case *SIPFootprint:
		g.trails.Get(fp.Msg.CallID(), ProtoSIP).Append(fp)
		defer g.touch(fp.Msg.CallID(), fp.At)
		return g.processSIP(fp)
	case *RTPFootprint:
		session := g.sessionForFlow(fp.Src, fp.Dst)
		if session == "" {
			session = "rtp:" + fp.Dst.String()
		}
		g.trails.Get(session, ProtoRTP).Append(fp)
		defer g.touch(session, fp.At)
		return g.processRTP(fp, session)
	case *RTCPFootprint:
		session := g.sessionForRTCPFlow(fp.Src, fp.Dst)
		if session == "" {
			session = "rtcp:" + fp.Dst.String()
		}
		g.trails.Get(session, ProtoRTCP).Append(fp)
		defer g.touch(session, fp.At)
		return g.processRTCP(fp, session)
	case *AcctFootprint:
		g.trails.Get(fp.Txn.CallID, ProtoAccounting).Append(fp)
		return g.processAcct(fp)
	case *RawFootprint:
		session := "raw:" + fp.Dst.String()
		g.trails.Get(session, ProtoOther).Append(fp)
		if fp.OnPort == ProtoRTP {
			// Garbage on a media port: the Figure 8 attack signature.
			if s := g.sessionForMediaDst(fp.Dst); s != "" {
				session = s
			}
			return []Event{{
				At: fp.At, Type: EvRTPGarbage, Session: session,
				Detail:    fmt.Sprintf("undecodable %d bytes on RTP port from %v: %s", fp.Len, fp.Src, fp.Reason),
				Footprint: fp,
			}}
		}
		return nil
	default:
		return nil
	}
}

// sessionForFlow maps a media flow to the SIP session that negotiated
// either endpoint. Sessions whose media is still unknown (zero-valued)
// never match. Consecutive calls frequently renegotiate the same media
// ports, so among candidates the live (not torn down), most recently
// active session wins; ties break on the session id for determinism.
func (g *EventGenerator) sessionForFlow(src, dst netip.AddrPort) string {
	match := func(negotiated, ep netip.AddrPort) bool {
		return negotiated.IsValid() && ep.IsValid() && negotiated == ep
	}
	var bestID string
	var best *sessionState
	for id, st := range g.sessions {
		if !(match(st.callerMedia, dst) || match(st.calleeMedia, dst) ||
			match(st.callerMedia, src) || match(st.calleeMedia, src)) {
			continue
		}
		if best == nil || flowSessionLess(best, bestID, st, id) {
			best, bestID = st, id
		}
	}
	return bestID
}

// flowSessionLess reports whether candidate (b, bID) should replace the
// current best (a, aID) when attributing a media flow.
func flowSessionLess(a *sessionState, aID string, b *sessionState, bID string) bool {
	// Live sessions outrank torn-down ones: an old call's BYE must not
	// capture the media of the call that replaced it (it still matches
	// within its own monitoring window via lastSeen recency below).
	aLive, bLive := !a.byeSeen, !b.byeSeen
	if aLive != bLive {
		return bLive
	}
	if a.lastSeen != b.lastSeen {
		return b.lastSeen > a.lastSeen
	}
	return bID > aID
}

// sessionForRTCPFlow maps an RTCP flow (media port + 1 by convention) to
// its session.
func (g *EventGenerator) sessionForRTCPFlow(src, dst netip.AddrPort) string {
	down := func(ap netip.AddrPort) netip.AddrPort {
		if !ap.IsValid() || ap.Port() == 0 {
			return ap
		}
		return netip.AddrPortFrom(ap.Addr(), ap.Port()-1)
	}
	return g.sessionForFlow(down(src), down(dst))
}

// sessionForMediaDst maps a destination media endpoint to its session.
func (g *EventGenerator) sessionForMediaDst(dst netip.AddrPort) string {
	if !dst.IsValid() {
		return ""
	}
	for id, st := range g.sessions {
		if st.callerMedia == dst || st.calleeMedia == dst {
			return id
		}
	}
	return ""
}

// --- SIP ---

func (g *EventGenerator) processSIP(fp *SIPFootprint) []Event {
	var events []Event
	m := fp.Msg
	callID := m.CallID()
	st := g.session(callID)

	if len(fp.Malformed) > 0 && !st.badFormat {
		st.badFormat = true
		events = append(events, Event{
			At: fp.At, Type: EvSIPBadFormat, Session: callID,
			Detail: fmt.Sprintf("%v", fp.Malformed), Footprint: fp,
		})
	}
	if m.IsRequest() {
		events = append(events, g.processSIPRequest(fp, st)...)
	} else {
		events = append(events, g.processSIPResponse(fp, st)...)
	}
	return events
}

func (g *EventGenerator) processSIPRequest(fp *SIPFootprint, st *sessionState) []Event {
	var events []Event
	m := fp.Msg
	from, errF := m.From()
	to, errT := m.To()
	if errF != nil || errT != nil {
		return events
	}
	switch m.Method {
	case sip.MethodRegister:
		st.isRegistration = true
		g.pendingReg[st.callID] = to.URI.AOR()
		events = append(events, Event{At: fp.At, Type: EvSIPRegister, Session: st.callID,
			Detail: to.URI.AOR(), Footprint: fp})
		if authz := m.Headers.Get(sip.HdrAuthorization); authz != "" {
			if creds, err := sip.ParseCredentials(authz); err == nil {
				st.guessResponses[creds.Response] = struct{}{}
				if len(st.guessResponses) >= g.cfg.GuessThreshold && !st.guessFired {
					st.guessFired = true
					events = append(events, Event{
						At: fp.At, Type: EvPasswordGuessing, Session: st.callID,
						Detail: fmt.Sprintf("%d distinct challenge responses for %s from %v",
							len(st.guessResponses), to.URI.AOR(), fp.Src),
						Footprint: fp,
					})
				}
			}
		}
	case sip.MethodInvite:
		if to.Tag() == "" {
			// Dialog-forming INVITE.
			if st.callerAOR == "" {
				st.callerAOR = from.URI.AOR()
				st.calleeAOR = to.URI.AOR()
				st.callerTag = from.Tag()
				st.inviteSrcIP = fp.Src.Addr()
				if media, ok := mediaFromBody(m); ok {
					st.callerMedia = media
				}
				events = append(events, Event{At: fp.At, Type: EvSIPInvite, Session: st.callID,
					Detail: st.callerAOR + " -> " + st.calleeAOR, Footprint: fp})
			}
			return events
		}
		// Re-INVITE: someone claims to be moving their media.
		cseq, err := m.CSeq()
		if err != nil || cseq.Seq <= st.lastReinviteSeq {
			return events // duplicate sighting (e.g. the proxy-relayed copy)
		}
		st.lastReinviteSeq = cseq.Seq
		var oldMedia netip.AddrPort
		mover := from.URI.AOR()
		if from.Tag() == st.callerTag {
			oldMedia = st.callerMedia
			if media, ok := mediaFromBody(m); ok {
				st.callerMedia = media
			}
		} else {
			oldMedia = st.calleeMedia
			if media, ok := mediaFromBody(m); ok {
				st.calleeMedia = media
			}
		}
		st.reinviteSeen = true
		st.reinviteAt = fp.At
		st.reinviteOldMedia = oldMedia
		events = append(events, Event{At: fp.At, Type: EvSIPReinvite, Session: st.callID,
			Detail: fmt.Sprintf("%s moving media from %v", mover, oldMedia), Footprint: fp})
	case sip.MethodBye:
		if st.byeSeen {
			return events // duplicate sighting
		}
		st.byeSeen = true
		st.byeAt = fp.At
		// Which party claims to be hanging up? Match by tag, falling back
		// to AOR for dialogs whose caller tag we never learned.
		switch {
		case from.Tag() != "" && from.Tag() == st.callerTag, from.URI.AOR() == st.callerAOR:
			st.byeFromMedia = st.callerMedia
		default:
			st.byeFromMedia = st.calleeMedia
		}
		events = append(events, Event{At: fp.At, Type: EvSIPBye, Session: st.callID,
			Detail: from.URI.AOR() + " hangs up", Footprint: fp})
	case sip.MethodMessage:
		events = append(events, g.processIM(fp, from)...)
	}
	return events
}

// processIM applies the fake-IM source-stability rule (Figure 6). The
// source history is keyed by (claimed sender, delivery destination): on a
// hub tap each proxy relay leg is a distinct delivery path with its own
// stable source, matching what the paper's per-endpoint IDS would see.
func (g *EventGenerator) processIM(fp *SIPFootprint, from sip.Address) []Event {
	var events []Event
	aor := from.URI.AOR()
	session := "im:" + aor
	histKey := aor + "|" + fp.Dst.Addr().String()
	events = append(events, Event{At: fp.At, Type: EvSIPInstantMessage, Session: session,
		Detail: fmt.Sprintf("from %s via %v", aor, fp.Src.Addr()), Footprint: fp})
	rec, seen := g.ims[histKey]
	switch {
	case !seen || fp.At-rec.at > g.cfg.IMPeriod:
		// First sighting, or beyond the mobility allowance: accept and
		// remember the source.
		g.ims[histKey] = imRecord{ip: fp.Src.Addr(), at: fp.At}
	case rec.ip != fp.Src.Addr():
		events = append(events, Event{
			At: fp.At, Type: EvIMSourceMismatch, Session: session,
			Detail: fmt.Sprintf("IM claiming %s came from %v; recent messages to %v came from %v",
				aor, fp.Src.Addr(), fp.Dst.Addr(), rec.ip),
			Footprint: fp,
		})
	default:
		g.ims[histKey] = imRecord{ip: fp.Src.Addr(), at: fp.At}
	}
	return events
}

func (g *EventGenerator) processSIPResponse(fp *SIPFootprint, st *sessionState) []Event {
	var events []Event
	m := fp.Msg
	cseq, err := m.CSeq()
	if err != nil {
		return events
	}
	switch {
	case m.StatusCode == sip.StatusUnauthorized:
		st.challenges++
		events = append(events, Event{At: fp.At, Type: EvSIPAuthChallenge, Session: st.callID,
			Detail: fmt.Sprintf("challenge #%d", st.challenges), Footprint: fp})
		if st.challenges >= g.cfg.AuthFloodThreshold && !st.floodFired {
			st.floodFired = true
			events = append(events, Event{
				At: fp.At, Type: EvAuthFlood, Session: st.callID,
				Detail:    fmt.Sprintf("%d unauthorized replies in one session", st.challenges),
				Footprint: fp,
			})
		}
	case m.StatusCode == sip.StatusOK && cseq.Method == sip.MethodRegister:
		if aor, ok := g.pendingReg[st.callID]; ok {
			if contact, err := m.Contact(); err == nil {
				if ip, err2 := netip.ParseAddr(contact.URI.Host); err2 == nil {
					g.bindings[aor] = ip
				}
			}
			events = append(events, Event{At: fp.At, Type: EvSIPRegisterOK, Session: st.callID,
				Detail: aor, Footprint: fp})
		}
	case m.StatusCode == sip.StatusOK && cseq.Method == sip.MethodInvite:
		if to, err := m.To(); err == nil && st.calleeTag == "" {
			st.calleeTag = to.Tag()
		}
		if media, ok := mediaFromBody(m); ok && !st.established {
			st.calleeMedia = media
		}
		if !st.established && st.callerAOR != "" {
			st.established = true
			// A fresh media session begins at these endpoints: RTP sequence
			// numbers restart at a random value, so stale continuity
			// trackers from earlier calls must not carry over.
			delete(g.seqs, st.callerMedia)
			delete(g.seqs, st.calleeMedia)
			events = append(events, Event{At: fp.At, Type: EvSIPCallEstablished, Session: st.callID,
				Detail:    fmt.Sprintf("%s <-> %s media %v/%v", st.callerAOR, st.calleeAOR, st.callerMedia, st.calleeMedia),
				Footprint: fp})
			events = append(events, g.checkUnmatchedMedia(fp, st)...)
		}
	}
	return events
}

// checkUnmatchedMedia verifies the negotiated caller media address against
// the caller's registered location — the third condition of the billing
// fraud rule (Section 3.2).
func (g *EventGenerator) checkUnmatchedMedia(fp *SIPFootprint, st *sessionState) []Event {
	binding, ok := g.bindings[st.callerAOR]
	if !ok || !st.callerMedia.IsValid() {
		return nil
	}
	if st.callerMedia.Addr() == binding {
		return nil
	}
	return []Event{{
		At: fp.At, Type: EvRTPUnmatchedMedia, Session: st.callID,
		Detail: fmt.Sprintf("caller %s registered at %v but negotiated media at %v",
			st.callerAOR, binding, st.callerMedia),
		Footprint: fp,
	}}
}

// --- RTP ---

func (g *EventGenerator) processRTP(fp *RTPFootprint, session string) []Event {
	var events []Event
	// Sequence continuity per destination endpoint (paper Section 4.2.4).
	tr, ok := g.seqs[fp.Dst]
	if !ok {
		tr = &seqTrack{}
		g.seqs[fp.Dst] = tr
		events = append(events, Event{At: fp.At, Type: EvRTPNewFlow, Session: session,
			Detail: fmt.Sprintf("%v -> %v ssrc=%08x", fp.Src, fp.Dst, fp.Header.SSRC), Footprint: fp})
	}
	if tr.primed {
		if d := rtp.SeqDiff(tr.last, fp.Header.Seq); d > g.cfg.SeqJumpThreshold || d < -g.cfg.SeqJumpThreshold {
			events = append(events, Event{
				At: fp.At, Type: EvRTPSeqJump, Session: session,
				Detail: fmt.Sprintf("seq %d -> %d (|Δ|=%d > %d) at %v",
					tr.last, fp.Header.Seq, abs(d), g.cfg.SeqJumpThreshold, fp.Dst),
				Footprint: fp,
			})
		}
	}
	tr.primed = true
	tr.last = fp.Header.Seq

	st, known := g.sessions[session]
	if !known {
		return events
	}
	events = append(events, g.checkSessionRTP(fp, st)...)
	return events
}

// checkSessionRTP applies the stateful cross-protocol checks for media
// belonging to a known SIP session.
func (g *EventGenerator) checkSessionRTP(fp *RTPFootprint, st *sessionState) []Event {
	events := g.checkPendingRTCPBye(st, fp.At, fp)
	// Orphan flow after BYE (Figure 5 rule).
	if st.byeSeen && fp.Src == st.byeFromMedia &&
		fp.At > st.byeAt && fp.At-st.byeAt <= g.cfg.MonitorWindow {
		events = append(events, Event{
			At: fp.At, Type: EvRTPAfterBye, Session: st.callID,
			Detail:    fmt.Sprintf("RTP from %v %.1fms after its BYE", fp.Src, (fp.At-st.byeAt).Seconds()*1000),
			Footprint: fp,
		})
	}
	// Orphan flow after REINVITE (Figure 7 rule): traffic still arriving
	// from the address the "moved" party supposedly left, once the
	// migration transaction has had time to complete.
	if st.reinviteSeen && fp.Src == st.reinviteOldMedia &&
		fp.At-st.reinviteAt > g.cfg.ReinviteGrace &&
		fp.At-st.reinviteAt <= g.cfg.ReinviteGrace+g.cfg.MonitorWindow {
		events = append(events, Event{
			At: fp.At, Type: EvRTPAfterReinvite, Session: st.callID,
			Detail: fmt.Sprintf("RTP still arriving from old media address %v %.1fms after REINVITE",
				fp.Src, (fp.At-st.reinviteAt).Seconds()*1000),
			Footprint: fp,
		})
	}
	// Source legitimacy (Figure 8 rule): media to a negotiated endpoint
	// must come from the other negotiated endpoint.
	if !st.byeSeen {
		var expected netip.AddrPort
		switch fp.Dst {
		case st.callerMedia:
			expected = st.calleeMedia
		case st.calleeMedia:
			expected = st.callerMedia
		}
		if expected.IsValid() && fp.Src.Addr() != expected.Addr() {
			events = append(events, Event{
				At: fp.At, Type: EvRTPBadSource, Session: st.callID,
				Detail:    fmt.Sprintf("media to %v from %v; session negotiated %v", fp.Dst, fp.Src, expected),
				Footprint: fp,
			})
		}
	}
	return events
}

// --- RTCP ---

// processRTCP watches for BYE packets that lack a corresponding SIP BYE:
// during legitimate teardown the SIP BYE travels alongside the RTCP BYE,
// so an RTCP BYE still unmatched after a grace period is forged. The
// evaluation is driven by subsequent traffic (the surviving party's media
// keeps flowing), keeping the engine purely packet-driven.
func (g *EventGenerator) processRTCP(fp *RTCPFootprint, session string) []Event {
	st, known := g.sessions[session]
	if !known {
		return nil
	}
	events := g.checkPendingRTCPBye(st, fp.At, fp)
	for _, pkt := range fp.Packets {
		if _, isBye := pkt.(*rtp.Bye); isBye && !st.byeSeen && !st.rtcpByePending && !st.rtcpByeFired {
			st.rtcpByePending = true
			st.rtcpByeAt = fp.At
		}
	}
	return events
}

// checkPendingRTCPBye fires the spoofed-RTCP-BYE event once the grace
// period elapses without a SIP BYE appearing.
func (g *EventGenerator) checkPendingRTCPBye(st *sessionState, now time.Duration, fp Footprint) []Event {
	if !st.rtcpByePending || st.rtcpByeFired {
		return nil
	}
	if st.byeSeen {
		st.rtcpByePending = false // legitimate teardown caught up
		return nil
	}
	if now-st.rtcpByeAt <= g.cfg.ReinviteGrace {
		return nil
	}
	st.rtcpByePending = false
	st.rtcpByeFired = true
	return []Event{{
		At: now, Type: EvRTCPSpoofedBye, Session: st.callID,
		Detail: fmt.Sprintf("RTCP BYE at %v with no SIP BYE after %v; media control and call signaling disagree",
			st.rtcpByeAt, g.cfg.ReinviteGrace),
		Footprint: fp,
	}}
}

// --- Accounting ---

func (g *EventGenerator) processAcct(fp *AcctFootprint) []Event {
	var events []Event
	txn := fp.Txn
	switch txn.Kind {
	case accounting.TxnStart:
		st := g.session(txn.CallID)
		st.acctStart = true
		events = append(events, Event{At: fp.At, Type: EvAcctStart, Session: txn.CallID,
			Detail: fmt.Sprintf("%s -> %s from %v", txn.From, txn.To, txn.FromIP), Footprint: fp})
		// The Section 3.2 check: the billed caller must have initiated the
		// call from their registered location.
		binding, registered := g.bindings[txn.From]
		switch {
		case !registered, !st.established && st.callerAOR == "":
			events = append(events, g.unmatchedAcct(fp, st,
				fmt.Sprintf("billing START for %s with no matching registration/call setup", txn.From))...)
		case txn.FromIP != binding:
			events = append(events, g.unmatchedAcct(fp, st,
				fmt.Sprintf("billing START for %s from %v but %s is registered at %v",
					txn.From, txn.FromIP, txn.From, binding))...)
		case st.inviteSrcIP.IsValid() && st.inviteSrcIP != binding:
			events = append(events, g.unmatchedAcct(fp, st,
				fmt.Sprintf("INVITE for billed call came from %v, not %s's registered %v",
					st.inviteSrcIP, txn.From, binding))...)
		}
	case accounting.TxnStop:
		events = append(events, Event{At: fp.At, Type: EvAcctStop, Session: txn.CallID, Footprint: fp})
	}
	return events
}

func (g *EventGenerator) unmatchedAcct(fp *AcctFootprint, st *sessionState, detail string) []Event {
	if st.unmatchedOnce {
		return nil
	}
	st.unmatchedOnce = true
	return []Event{{At: fp.At, Type: EvAcctUnmatched, Session: st.callID, Detail: detail, Footprint: fp}}
}

// mediaFromBody extracts the audio endpoint from a message's SDP body.
func mediaFromBody(m *sip.Message) (netip.AddrPort, bool) {
	if len(m.Body) == 0 {
		return netip.AddrPort{}, false
	}
	sess, err := parseSDP(m.Body)
	if err != nil {
		return netip.AddrPort{}, false
	}
	return sess.MediaEndpoint("audio")
}

func abs(d int) int {
	if d < 0 {
		return -d
	}
	return d
}
