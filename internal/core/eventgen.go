package core

import (
	"fmt"
	"net/netip"
	"time"

	"scidive/internal/accounting"
	"scidive/internal/rtp"
	"scidive/internal/sip"
)

// GenConfig tunes the Event Generator's stateful checks.
type GenConfig struct {
	// MonitorWindow is "m": how long after a BYE/REINVITE the orphan-flow
	// monitor stays armed (Section 4.3). Default 1s.
	MonitorWindow time.Duration
	// ReinviteGrace delays the REINVITE orphan monitor: a legitimately
	// migrating phone keeps transmitting from its old socket until its
	// re-INVITE transaction completes, so media from the old address is
	// only suspicious after this grace period. Default 250ms.
	ReinviteGrace time.Duration
	// SeqJumpThreshold is the paper's empirically chosen sequence-number
	// discontinuity bound. Default 100.
	SeqJumpThreshold int
	// AuthFloodThreshold is how many 401s one session may draw before the
	// DoS event fires. Default 5.
	AuthFloodThreshold int
	// GuessThreshold is how many distinct challenge responses one session
	// may try before the password-guessing event fires. Default 3.
	GuessThreshold int
	// IMPeriod is how long a sender's source IP is expected to stay
	// stable (the rule's mobility allowance). Default 60s.
	IMPeriod time.Duration
}

// withDefaults fills zero fields.
func (c GenConfig) withDefaults() GenConfig {
	if c.MonitorWindow == 0 {
		c.MonitorWindow = time.Second
	}
	if c.ReinviteGrace == 0 {
		c.ReinviteGrace = 250 * time.Millisecond
	}
	if c.SeqJumpThreshold == 0 {
		c.SeqJumpThreshold = 100
	}
	if c.AuthFloodThreshold == 0 {
		c.AuthFloodThreshold = 5
	}
	if c.GuessThreshold == 0 {
		c.GuessThreshold = 3
	}
	if c.IMPeriod == 0 {
		c.IMPeriod = 60 * time.Second
	}
	return c
}

// imRecord tracks the last source of instant messages per claimed sender.
type imRecord struct {
	ip netip.Addr
	at time.Duration
}

// seqTrack tracks RTP sequence continuity per destination media endpoint.
type seqTrack struct {
	last   uint16
	primed bool
	at     time.Duration // last packet toward this endpoint (LRU eviction)
}

// evictStalestIM removes the least-recently-seen IM history entry (ties
// broken by the smaller key) and returns its key, or "" when empty. The
// serial generator and the sharded router both call this so capped IM
// state evicts identical victims.
func evictStalestIM(ims map[string]imRecord) string {
	var vk string
	found := false
	for k, r := range ims {
		if !found || r.at < ims[vk].at || (r.at == ims[vk].at && k < vk) {
			vk, found = k, true
		}
	}
	if found {
		delete(ims, vk)
	}
	return vk
}

// evictStalestSeq removes the sequence tracker with the oldest last
// packet (ties broken by endpoint address, then port) and reports whether
// one was removed. Shared by the serial generator and the sharded router.
func evictStalestSeq(seqs map[netip.AddrPort]*seqTrack) bool {
	var vk netip.AddrPort
	found := false
	for k, tr := range seqs {
		if !found || tr.at < seqs[vk].at || (tr.at == seqs[vk].at && seqLess(k, vk)) {
			vk, found = k, true
		}
	}
	if found {
		delete(seqs, vk)
	}
	return found
}

func seqLess(a, b netip.AddrPort) bool {
	if c := a.Addr().Compare(b.Addr()); c != 0 {
		return c < 0
	}
	return a.Port() < b.Port()
}

// EventGenerator folds footprints into events, keeping per-session state
// across packets and protocols. It is deliberately "hard-coded and
// seamlessly coupled with internal structures for best possible
// performance" (paper Section 3.1).
//
// Per-session state lives in the sessionIndex (shared machinery with the
// sharded router); cross-session state (bindings, IM histories, sequence
// trackers) lives here and is either consulted directly (serial engine)
// or superseded by RouteHints (sharded engine).
type EventGenerator struct {
	cfg    GenConfig
	trails *TrailStore
	idx    *sessionIndex

	// sessions and pendingReg alias the maps inside idx; they are kept as
	// fields so state is inspectable without going through the index.
	sessions   map[string]*sessionState
	pendingReg map[string]string // Call-ID -> AOR awaiting 200

	bindings map[string]netip.Addr // AOR -> registered contact IP
	ims      map[string]imRecord   // "AOR|dstIP" -> last IM source on that delivery path
	seqs     map[netip.AddrPort]*seqTrack

	// limits caps the maps above; the counters account every eviction.
	limits          Limits
	evictedSessions int
	evictedIMs      int
	evictedSeqs     int
	evictedBindings int
	// bindingAge orders bindings for LRU eviction without changing the
	// shape of the bindings map itself; entries missing from it rank
	// oldest. bindingClock advances on every set/refresh.
	bindingAge   map[string]int
	bindingClock int
}

// NewEventGenerator returns a generator storing footprints into trails.
func NewEventGenerator(cfg GenConfig, trails *TrailStore) *EventGenerator {
	idx := newSessionIndex(false)
	return &EventGenerator{
		cfg:        cfg.withDefaults(),
		trails:     trails,
		idx:        idx,
		sessions:   idx.sessions,
		pendingReg: idx.pendingReg,
		bindings:   make(map[string]netip.Addr),
		ims:        make(map[string]imRecord),
		seqs:       make(map[netip.AddrPort]*seqTrack),
		bindingAge: make(map[string]int),
	}
}

// SetLimits installs the generator's share of the state budget. Must be
// called before traffic flows (NewEngine does).
func (g *EventGenerator) SetLimits(l Limits) {
	g.limits = l
	g.idx.maxSessions = l.MaxSessions
	g.idx.onCapEvict = func(id string) {
		g.trails.Drop(id)
		g.evictedSessions++
	}
}

// EvictSession drops one session's dialog state, pending registration,
// and trails, reporting whether it existed. The sharded engine broadcasts
// router-side capacity evictions to shards through this.
func (g *EventGenerator) EvictSession(id string) bool {
	st, ok := g.sessions[id]
	if !ok {
		return false
	}
	g.idx.dropSession(id, st)
	g.trails.Drop(id)
	return true
}

// Bindings returns the registration bindings learned from traffic.
func (g *EventGenerator) Bindings() map[string]netip.Addr {
	out := make(map[string]netip.Addr, len(g.bindings))
	for k, v := range g.bindings {
		out[k] = v
	}
	return out
}

// ApplyBinding installs a registration binding learned elsewhere. The
// sharded router replicates each observed binding to every shard so that
// cross-session checks (billing fraud's registered-location comparison)
// see a consistent directory regardless of which shard learned it.
func (g *EventGenerator) ApplyBinding(aor string, ip netip.Addr) {
	g.setBinding(aor, ip)
}

// setBinding installs or refreshes a binding, evicting the least-recently
// refreshed one (ties: smaller AOR; entries predating age tracking rank
// oldest) when MaxBindings would be exceeded.
func (g *EventGenerator) setBinding(aor string, ip netip.Addr) {
	if _, exists := g.bindings[aor]; !exists &&
		g.limits.MaxBindings > 0 && len(g.bindings) >= g.limits.MaxBindings {
		var vk string
		found := false
		for k := range g.bindings {
			if !found || g.bindingAge[k] < g.bindingAge[vk] ||
				(g.bindingAge[k] == g.bindingAge[vk] && k < vk) {
				vk, found = k, true
			}
		}
		if found {
			delete(g.bindings, vk)
			delete(g.bindingAge, vk)
			g.evictedBindings++
		}
	}
	g.bindings[aor] = ip
	g.bindingClock++
	g.bindingAge[aor] = g.bindingClock
}

// session returns the state for a Call-ID, creating it if needed.
func (g *EventGenerator) session(callID string) *sessionState {
	return g.idx.core(callID)
}

// touch records session activity for expiry bookkeeping.
func (g *EventGenerator) touch(session string, at time.Duration) {
	g.idx.touch(session, at)
}

// ExpireSessions drops per-session state (and the session's trails) for
// sessions idle longer than timeout as of now. It returns how many
// sessions were evicted. Registration bindings and IM histories have
// their own windows and are kept.
func (g *EventGenerator) ExpireSessions(now, timeout time.Duration) int {
	evicted := g.idx.expire(now, timeout, func(id string) { g.trails.Drop(id) })
	if evicted > 0 {
		// Sequence trackers for media endpoints of dead sessions would leak
		// too; they are keyed by endpoint, so sweep any tracker not
		// refreshed within the timeout by rebuilding lazily: cheapest is to
		// clear when the sessions map empties.
		if len(g.sessions) == 0 {
			g.seqs = make(map[netip.AddrPort]*seqTrack)
		}
	}
	return evicted
}

// Process folds one footprint into the trails and state, returning any
// events it completes.
func (g *EventGenerator) Process(f Footprint) []Event {
	return g.ProcessHinted(f, RouteHints{})
}

// ProcessHinted is Process with router-supplied hints. A zero RouteHints
// reproduces the serial engine exactly; non-zero hints replace the local
// cross-session lookups with verdicts the sharded router computed in
// global frame order.
func (g *EventGenerator) ProcessHinted(f Footprint, h RouteHints) []Event {
	switch fp := f.(type) {
	case *SIPFootprint:
		g.trails.Get(fp.Msg.CallID(), ProtoSIP).Append(fp)
		defer g.touch(fp.Msg.CallID(), fp.At)
		return g.processSIP(fp, h)
	case *RTPFootprint:
		session := h.Session
		if session == "" {
			session = g.idx.SessionKey(f)
		}
		g.trails.Get(session, ProtoRTP).Append(fp)
		defer g.touch(session, fp.At)
		return g.processRTP(fp, session, h)
	case *RTCPFootprint:
		session := h.Session
		if session == "" {
			session = g.idx.SessionKey(f)
		}
		g.trails.Get(session, ProtoRTCP).Append(fp)
		defer g.touch(session, fp.At)
		return g.processRTCP(fp, session)
	case *AcctFootprint:
		g.trails.Get(fp.Txn.CallID, ProtoAccounting).Append(fp)
		return g.processAcct(fp)
	case *RawFootprint:
		session := "raw:" + fp.Dst.String()
		g.trails.Get(session, ProtoOther).Append(fp)
		if fp.OnPort == ProtoRTP {
			// Garbage on a media port: the Figure 8 attack signature.
			eventSession := h.Session
			if eventSession == "" {
				eventSession = session
				if s := g.idx.mediaDstSession(fp.Dst); s != "" {
					eventSession = s
				}
			}
			return []Event{{
				At: fp.At, Type: EvRTPGarbage, Session: eventSession,
				Detail:    fmt.Sprintf("undecodable %d bytes on RTP port from %v: %s", fp.Len, fp.Src, fp.Reason),
				Footprint: fp,
			}}
		}
		return nil
	default:
		return nil
	}
}

// sessionForFlow maps a media flow to the SIP session that negotiated
// either endpoint (see sessionIndex.flowSession).
func (g *EventGenerator) sessionForFlow(src, dst netip.AddrPort) string {
	return g.idx.flowSession(src, dst)
}

// sessionForRTCPFlow maps an RTCP flow (media port + 1 by convention) to
// its session.
func (g *EventGenerator) sessionForRTCPFlow(src, dst netip.AddrPort) string {
	return g.idx.rtcpFlowSession(src, dst)
}

// sessionForMediaDst maps a destination media endpoint to its session.
func (g *EventGenerator) sessionForMediaDst(dst netip.AddrPort) string {
	return g.idx.mediaDstSession(dst)
}

// --- SIP ---

func (g *EventGenerator) processSIP(fp *SIPFootprint, h RouteHints) []Event {
	var events []Event
	m := fp.Msg
	st, out := g.idx.applySIP(m, fp.At, fp.Src)

	if len(fp.Malformed) > 0 && !st.badFormat {
		st.badFormat = true
		events = append(events, Event{
			At: fp.At, Type: EvSIPBadFormat, Session: st.callID,
			Detail: fmt.Sprintf("%v", fp.Malformed), Footprint: fp,
		})
	}
	if m.IsRequest() {
		events = append(events, g.requestEvents(fp, st, out, h)...)
	} else {
		events = append(events, g.responseEvents(fp, st, out)...)
	}
	return events
}

func (g *EventGenerator) requestEvents(fp *SIPFootprint, st *sessionState, out sipOutcome, h RouteHints) []Event {
	var events []Event
	if !out.fromToOK {
		return events
	}
	m := fp.Msg
	switch m.Method {
	case sip.MethodRegister:
		events = append(events, Event{At: fp.At, Type: EvSIPRegister, Session: st.callID,
			Detail: out.to.URI.AOR(), Footprint: fp})
		if authz := m.Headers.Get(sip.HdrAuthorization); authz != "" {
			if creds, err := sip.ParseCredentials(authz); err == nil {
				st.guessResponses[creds.Response] = struct{}{}
				if len(st.guessResponses) >= g.cfg.GuessThreshold && !st.guessFired {
					st.guessFired = true
					events = append(events, Event{
						At: fp.At, Type: EvPasswordGuessing, Session: st.callID,
						Detail: fmt.Sprintf("%d distinct challenge responses for %s from %v",
							len(st.guessResponses), out.to.URI.AOR(), fp.Src),
						Footprint: fp,
					})
				}
			}
		}
	case sip.MethodInvite:
		if out.firstInvite {
			events = append(events, Event{At: fp.At, Type: EvSIPInvite, Session: st.callID,
				Detail: st.callerAOR + " -> " + st.calleeAOR, Footprint: fp})
		}
		if out.reinvite {
			events = append(events, Event{At: fp.At, Type: EvSIPReinvite, Session: st.callID,
				Detail: fmt.Sprintf("%s moving media from %v", out.reinviteMover, out.reinviteOld), Footprint: fp})
		}
	case sip.MethodBye:
		if out.firstBye {
			events = append(events, Event{At: fp.At, Type: EvSIPBye, Session: st.callID,
				Detail: out.from.URI.AOR() + " hangs up", Footprint: fp})
		}
	case sip.MethodMessage:
		events = append(events, g.processIM(fp, out.from, h)...)
	}
	return events
}

// processIM applies the fake-IM source-stability rule (Figure 6). The
// source history is keyed by (claimed sender, delivery destination): on a
// hub tap each proxy relay leg is a distinct delivery path with its own
// stable source, matching what the paper's per-endpoint IDS would see.
func (g *EventGenerator) processIM(fp *SIPFootprint, from sip.Address, h RouteHints) []Event {
	var events []Event
	aor := from.URI.AOR()
	session := "im:" + aor
	events = append(events, Event{At: fp.At, Type: EvSIPInstantMessage, Session: session,
		Detail: fmt.Sprintf("from %s via %v", aor, fp.Src.Addr()), Footprint: fp})
	if h.HasIM {
		// The router already judged this MESSAGE against the global source
		// history; the local map stays untouched.
		if h.IM.Mismatch {
			events = append(events, Event{
				At: fp.At, Type: EvIMSourceMismatch, Session: session,
				Detail: fmt.Sprintf("IM claiming %s came from %v; recent messages to %v came from %v",
					aor, fp.Src.Addr(), fp.Dst.Addr(), h.IM.PrevIP),
				Footprint: fp,
			})
		}
		return events
	}
	histKey := aor + "|" + fp.Dst.Addr().String()
	rec, seen := g.ims[histKey]
	switch {
	case !seen || fp.At-rec.at > g.cfg.IMPeriod:
		// First sighting, or beyond the mobility allowance: accept and
		// remember the source.
		if !seen && g.limits.MaxIMHistories > 0 && len(g.ims) >= g.limits.MaxIMHistories {
			if evictStalestIM(g.ims) != "" {
				g.evictedIMs++
			}
		}
		g.ims[histKey] = imRecord{ip: fp.Src.Addr(), at: fp.At}
	case rec.ip != fp.Src.Addr():
		events = append(events, Event{
			At: fp.At, Type: EvIMSourceMismatch, Session: session,
			Detail: fmt.Sprintf("IM claiming %s came from %v; recent messages to %v came from %v",
				aor, fp.Src.Addr(), fp.Dst.Addr(), rec.ip),
			Footprint: fp,
		})
	default:
		g.ims[histKey] = imRecord{ip: fp.Src.Addr(), at: fp.At}
	}
	return events
}

func (g *EventGenerator) responseEvents(fp *SIPFootprint, st *sessionState, out sipOutcome) []Event {
	var events []Event
	if !out.cseqOK {
		return events
	}
	m := fp.Msg
	switch {
	case m.StatusCode == sip.StatusUnauthorized:
		st.challenges++
		events = append(events, Event{At: fp.At, Type: EvSIPAuthChallenge, Session: st.callID,
			Detail: fmt.Sprintf("challenge #%d", st.challenges), Footprint: fp})
		if st.challenges >= g.cfg.AuthFloodThreshold && !st.floodFired {
			st.floodFired = true
			events = append(events, Event{
				At: fp.At, Type: EvAuthFlood, Session: st.callID,
				Detail:    fmt.Sprintf("%d unauthorized replies in one session", st.challenges),
				Footprint: fp,
			})
		}
	case out.regOK:
		if out.bindingIP.IsValid() {
			g.setBinding(out.regAOR, out.bindingIP)
		}
		events = append(events, Event{At: fp.At, Type: EvSIPRegisterOK, Session: st.callID,
			Detail: out.regAOR, Footprint: fp})
	case out.established:
		// A fresh media session begins at these endpoints: RTP sequence
		// numbers restart at a random value, so stale continuity
		// trackers from earlier calls must not carry over.
		delete(g.seqs, st.callerMedia)
		delete(g.seqs, st.calleeMedia)
		events = append(events, Event{At: fp.At, Type: EvSIPCallEstablished, Session: st.callID,
			Detail:    fmt.Sprintf("%s <-> %s media %v/%v", st.callerAOR, st.calleeAOR, st.callerMedia, st.calleeMedia),
			Footprint: fp})
		events = append(events, g.checkUnmatchedMedia(fp, st)...)
	}
	return events
}

// checkUnmatchedMedia verifies the negotiated caller media address against
// the caller's registered location — the third condition of the billing
// fraud rule (Section 3.2).
func (g *EventGenerator) checkUnmatchedMedia(fp *SIPFootprint, st *sessionState) []Event {
	binding, ok := g.bindings[st.callerAOR]
	if !ok || !st.callerMedia.IsValid() {
		return nil
	}
	if st.callerMedia.Addr() == binding {
		return nil
	}
	return []Event{{
		At: fp.At, Type: EvRTPUnmatchedMedia, Session: st.callID,
		Detail: fmt.Sprintf("caller %s registered at %v but negotiated media at %v",
			st.callerAOR, binding, st.callerMedia),
		Footprint: fp,
	}}
}

// --- RTP ---

func (g *EventGenerator) processRTP(fp *RTPFootprint, session string, h RouteHints) []Event {
	var events []Event
	// Sequence continuity per destination endpoint (paper Section 4.2.4).
	if h.HasSeq {
		// The router tracks continuity across all shards in global frame
		// order; the local map stays untouched.
		if h.Seq.NewFlow {
			events = append(events, Event{At: fp.At, Type: EvRTPNewFlow, Session: session,
				Detail: fmt.Sprintf("%v -> %v ssrc=%08x", fp.Src, fp.Dst, fp.Header.SSRC), Footprint: fp})
		}
		if h.Seq.Jump {
			d := rtp.SeqDiff(h.Seq.Prev, fp.Header.Seq)
			events = append(events, Event{
				At: fp.At, Type: EvRTPSeqJump, Session: session,
				Detail: fmt.Sprintf("seq %d -> %d (|Δ|=%d > %d) at %v",
					h.Seq.Prev, fp.Header.Seq, abs(d), g.cfg.SeqJumpThreshold, fp.Dst),
				Footprint: fp,
			})
		}
	} else {
		tr, ok := g.seqs[fp.Dst]
		if !ok {
			if g.limits.MaxSeqTrackers > 0 && len(g.seqs) >= g.limits.MaxSeqTrackers {
				if evictStalestSeq(g.seqs) {
					g.evictedSeqs++
				}
			}
			tr = &seqTrack{}
			g.seqs[fp.Dst] = tr
			events = append(events, Event{At: fp.At, Type: EvRTPNewFlow, Session: session,
				Detail: fmt.Sprintf("%v -> %v ssrc=%08x", fp.Src, fp.Dst, fp.Header.SSRC), Footprint: fp})
		}
		if tr.primed {
			if d := rtp.SeqDiff(tr.last, fp.Header.Seq); d > g.cfg.SeqJumpThreshold || d < -g.cfg.SeqJumpThreshold {
				events = append(events, Event{
					At: fp.At, Type: EvRTPSeqJump, Session: session,
					Detail: fmt.Sprintf("seq %d -> %d (|Δ|=%d > %d) at %v",
						tr.last, fp.Header.Seq, abs(d), g.cfg.SeqJumpThreshold, fp.Dst),
					Footprint: fp,
				})
			}
		}
		tr.primed = true
		tr.last = fp.Header.Seq
		tr.at = fp.At
	}

	st, known := g.sessions[session]
	if !known {
		return events
	}
	events = append(events, g.checkSessionRTP(fp, st)...)
	return events
}

// checkSessionRTP applies the stateful cross-protocol checks for media
// belonging to a known SIP session.
func (g *EventGenerator) checkSessionRTP(fp *RTPFootprint, st *sessionState) []Event {
	events := g.checkPendingRTCPBye(st, fp.At, fp)
	// Orphan flow after BYE (Figure 5 rule).
	if st.byeSeen && fp.Src == st.byeFromMedia &&
		fp.At > st.byeAt && fp.At-st.byeAt <= g.cfg.MonitorWindow {
		events = append(events, Event{
			At: fp.At, Type: EvRTPAfterBye, Session: st.callID,
			Detail:    fmt.Sprintf("RTP from %v %.1fms after its BYE", fp.Src, (fp.At-st.byeAt).Seconds()*1000),
			Footprint: fp,
		})
	}
	// Orphan flow after REINVITE (Figure 7 rule): traffic still arriving
	// from the address the "moved" party supposedly left, once the
	// migration transaction has had time to complete.
	if st.reinviteSeen && fp.Src == st.reinviteOldMedia &&
		fp.At-st.reinviteAt > g.cfg.ReinviteGrace &&
		fp.At-st.reinviteAt <= g.cfg.ReinviteGrace+g.cfg.MonitorWindow {
		events = append(events, Event{
			At: fp.At, Type: EvRTPAfterReinvite, Session: st.callID,
			Detail: fmt.Sprintf("RTP still arriving from old media address %v %.1fms after REINVITE",
				fp.Src, (fp.At-st.reinviteAt).Seconds()*1000),
			Footprint: fp,
		})
	}
	// Source legitimacy (Figure 8 rule): media to a negotiated endpoint
	// must come from the other negotiated endpoint.
	if !st.byeSeen {
		var expected netip.AddrPort
		switch fp.Dst {
		case st.callerMedia:
			expected = st.calleeMedia
		case st.calleeMedia:
			expected = st.callerMedia
		}
		if expected.IsValid() && fp.Src.Addr() != expected.Addr() {
			events = append(events, Event{
				At: fp.At, Type: EvRTPBadSource, Session: st.callID,
				Detail:    fmt.Sprintf("media to %v from %v; session negotiated %v", fp.Dst, fp.Src, expected),
				Footprint: fp,
			})
		}
	}
	return events
}

// --- RTCP ---

// processRTCP watches for BYE packets that lack a corresponding SIP BYE:
// during legitimate teardown the SIP BYE travels alongside the RTCP BYE,
// so an RTCP BYE still unmatched after a grace period is forged. The
// evaluation is driven by subsequent traffic (the surviving party's media
// keeps flowing), keeping the engine purely packet-driven.
func (g *EventGenerator) processRTCP(fp *RTCPFootprint, session string) []Event {
	st, known := g.sessions[session]
	if !known {
		return nil
	}
	events := g.checkPendingRTCPBye(st, fp.At, fp)
	for _, pkt := range fp.Packets {
		if _, isBye := pkt.(*rtp.Bye); isBye && !st.byeSeen && !st.rtcpByePending && !st.rtcpByeFired {
			st.rtcpByePending = true
			st.rtcpByeAt = fp.At
		}
	}
	return events
}

// checkPendingRTCPBye fires the spoofed-RTCP-BYE event once the grace
// period elapses without a SIP BYE appearing.
func (g *EventGenerator) checkPendingRTCPBye(st *sessionState, now time.Duration, fp Footprint) []Event {
	if !st.rtcpByePending || st.rtcpByeFired {
		return nil
	}
	if st.byeSeen {
		st.rtcpByePending = false // legitimate teardown caught up
		return nil
	}
	if now-st.rtcpByeAt <= g.cfg.ReinviteGrace {
		return nil
	}
	st.rtcpByePending = false
	st.rtcpByeFired = true
	return []Event{{
		At: now, Type: EvRTCPSpoofedBye, Session: st.callID,
		Detail: fmt.Sprintf("RTCP BYE at %v with no SIP BYE after %v; media control and call signaling disagree",
			st.rtcpByeAt, g.cfg.ReinviteGrace),
		Footprint: fp,
	}}
}

// --- Accounting ---

func (g *EventGenerator) processAcct(fp *AcctFootprint) []Event {
	var events []Event
	txn := fp.Txn
	switch txn.Kind {
	case accounting.TxnStart:
		st := g.session(txn.CallID)
		st.acctStart = true
		events = append(events, Event{At: fp.At, Type: EvAcctStart, Session: txn.CallID,
			Detail: fmt.Sprintf("%s -> %s from %v", txn.From, txn.To, txn.FromIP), Footprint: fp})
		// The Section 3.2 check: the billed caller must have initiated the
		// call from their registered location.
		binding, registered := g.bindings[txn.From]
		switch {
		case !registered, !st.established && st.callerAOR == "":
			events = append(events, g.unmatchedAcct(fp, st,
				fmt.Sprintf("billing START for %s with no matching registration/call setup", txn.From))...)
		case txn.FromIP != binding:
			events = append(events, g.unmatchedAcct(fp, st,
				fmt.Sprintf("billing START for %s from %v but %s is registered at %v",
					txn.From, txn.FromIP, txn.From, binding))...)
		case st.inviteSrcIP.IsValid() && st.inviteSrcIP != binding:
			events = append(events, g.unmatchedAcct(fp, st,
				fmt.Sprintf("INVITE for billed call came from %v, not %s's registered %v",
					st.inviteSrcIP, txn.From, binding))...)
		}
	case accounting.TxnStop:
		events = append(events, Event{At: fp.At, Type: EvAcctStop, Session: txn.CallID, Footprint: fp})
	}
	return events
}

func (g *EventGenerator) unmatchedAcct(fp *AcctFootprint, st *sessionState, detail string) []Event {
	if st.unmatchedOnce {
		return nil
	}
	st.unmatchedOnce = true
	return []Event{{At: fp.At, Type: EvAcctUnmatched, Session: st.callID, Detail: detail, Footprint: fp}}
}

// mediaFromBody extracts the audio endpoint from a message's SDP body.
func mediaFromBody(m *sip.Message) (netip.AddrPort, bool) {
	if len(m.Body) == 0 {
		return netip.AddrPort{}, false
	}
	sess, err := parseSDP(m.Body)
	if err != nil {
		return netip.AddrPort{}, false
	}
	return sess.MediaEndpoint("audio")
}

func abs(d int) int {
	if d < 0 {
		return -d
	}
	return d
}
