package core

import (
	"scidive/internal/rtp"
)

// This file implements content-confirmed protocol classification: the
// layer between port claims and protocol decoding that catches traffic
// whose content contradicts its port. Port claims still pick the
// candidate protocol (paper Section 3.1); when the candidate's decoder
// rejects the payload, the reclassification ladder below asks each
// correlator that can recognize its protocol's wire shape (the
// contentConfirmer capability) whether the bytes look like *its*
// traffic, in registry order, skipping the protocol the port claimed.
// The first confirming protocol whose full decoder also accepts the
// payload wins, and the resulting view is flagged with the port's
// expected protocol (FrameView.PortProto) so the evasion correlator can
// raise protocol-mismatch / evasion-suspect self-alerts. If no step
// confirms, the frame falls through to the raw footprint path exactly
// as before — the ladder never changes the fate of traffic that decodes
// under its port's protocol, which is what keeps the pre-existing
// scenario goldens byte-identical.

// contentConfirmer correlators can recognize their protocol's wire
// shape from payload bytes alone, independent of ports. confirmContent
// must be cheap, allocation-free, and conservative: a confirmation only
// nominates the protocol for full decoding, so false positives waste a
// decode attempt but false negatives hide evasion. The distiller, the
// sharded router, and the parallel-ingest lanes all build their ladder
// from the same registry, so every classification site reclassifies
// identically.
type contentConfirmer interface {
	// contentProto is the protocol the confirmer recognizes.
	contentProto() Protocol
	// confirmContent reports whether the payload plausibly carries the
	// protocol. Must not retain or mutate the payload.
	confirmContent(payload []byte) bool
}

// ladderStep is one rung of the reclassification ladder.
type ladderStep struct {
	proto   Protocol
	confirm func(payload []byte) bool
}

// classifyLadder is the ordered reclassification ladder: the
// contentConfirmer correlators of a registry, in registry order.
type classifyLadder []ladderStep

// ladderOf builds the ladder for a correlator set. Registry order is
// part of the engine's observable behavior (a payload that confirms as
// both SIP and RTP reclassifies to whichever correlator registers
// first), matching how port claims already resolve ties.
func ladderOf(correlators []Correlator) classifyLadder {
	var ladder classifyLadder
	for _, c := range correlators {
		if cc, ok := c.(contentConfirmer); ok {
			ladder = append(ladder, ladderStep{proto: cc.contentProto(), confirm: cc.confirmContent})
		}
	}
	return ladder
}

// sniffLineMax bounds the start-line scan: a SIP start line longer than
// this is not worth reclassifying toward.
const sniffLineMax = 256

// sniffSIPStart reports whether the buffer begins with a plausible SIP
// start line: either a status line ("SIP/2.0 ...") or a request line
// (token method, a space, and a line ending in " SIP/2.0"). Zero
// allocation; rejects binary payloads on the first non-token byte.
func sniffSIPStart(b []byte) bool {
	if len(b) >= 8 && string(b[:8]) == "SIP/2.0 " {
		return true
	}
	// Request line: Method SP Request-URI SP SIP/2.0 CRLF.
	i := 0
	for i < len(b) && i < sniffLineMax && isSIPTokenByte(b[i]) {
		i++
	}
	if i == 0 || i >= len(b) || b[i] != ' ' {
		return false
	}
	j := i + 1
	for j < len(b) && j < sniffLineMax && b[j] != '\r' && b[j] != '\n' {
		j++
	}
	if j >= len(b) || j >= sniffLineMax {
		return false
	}
	const ver = " SIP/2.0"
	if j < i+1+len(ver) {
		return false
	}
	return string(b[j-len(ver):j]) == ver
}

// isSIPTokenByte reports whether c is an RFC 3261 token character (the
// alphabet of method names).
func isSIPTokenByte(c byte) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		return true
	}
	switch c {
	case '-', '.', '!', '%', '*', '_', '+', '`', '\'', '~':
		return true
	}
	return false
}

// RTP payload types 72-76 collide with the RTCP packet-type range
// (200-204 with the marker bit folded in, RFC 3550 Section 5.1); a
// "header" carrying one is an RTCP packet misread as RTP, so content
// confirmation rejects it.
const (
	rtcpConflictPTLo = 72
	rtcpConflictPTHi = 76
)

// confirmRTPContent reports whether the payload plausibly is an RTP
// packet: the peek decoder accepts it, the payload type avoids the RTCP
// conflict range, and the SSRC is nonzero (every real stream in this
// simulation — and almost every real implementation — picks a random
// nonzero SSRC, while zeroed garbage trivially passes the version
// check). Stack-local scratch; never allocates.
func confirmRTPContent(payload []byte) bool {
	var hv rtp.HeaderView
	if rtp.PeekHeader(payload, &hv) != nil {
		return false
	}
	if hv.PayloadType >= rtcpConflictPTLo && hv.PayloadType <= rtcpConflictPTHi {
		return false
	}
	return hv.SSRC != 0
}

// confirmRTCPContent reports whether the payload is a well-formed RTCP
// compound: the peek decoder's validation (version, known packet types,
// lengths tiling the buffer exactly) is already a strong content check.
func confirmRTCPContent(payload []byte) bool {
	var cv rtp.CompoundView
	return rtp.PeekCompound(payload, &cv) == nil
}

// rtpPayloadHasSIP reports whether a successfully decoded RTP packet's
// media payload begins with a SIP start line — the SIP-smuggled-in-RTP
// evasion. hv must be the PeekHeader result for payload. Extension
// headers are not modeled by the decoder, so packets flagged with one
// are not inspected.
func rtpPayloadHasSIP(payload []byte, hv *rtp.HeaderView) bool {
	if hv.Extension || hv.PayloadLen == 0 {
		return false
	}
	off := rtp.HeaderLen + 4*hv.CSRCCount
	if off+hv.PayloadLen > len(payload) {
		return false
	}
	return sniffSIPStart(payload[off : off+hv.PayloadLen])
}

// tunnelSniff is the stream-arm analogue of the ladder: given a chunk
// of reassembled TCP bytes on a SIP-claimed stream with no partial SIP
// message pending, it reports whether the chunk is a media packet
// tunneled over the trunk (RTP or RTCP content confirmation). The SIP
// rung is skipped — SIP is what the stream is *supposed* to carry.
func (l classifyLadder) tunnelSniff(b []byte) (Protocol, bool) {
	for _, step := range l {
		if step.proto != ProtoRTP && step.proto != ProtoRTCP {
			continue
		}
		if step.confirm(b) {
			return step.proto, true
		}
	}
	return ProtoOther, false
}
