package core

import (
	"fmt"
	"testing"
	"time"
)

// TestEventStringMatchesFmt holds the builder-based Event.String to the
// historical fmt.Sprintf rendering, byte for byte, across edge cases:
// zero/negative/large timestamps, short and overlong type names, empty
// sessions and details, and multi-byte session text (fmt pads %-Ns by
// runes).
func TestEventStringMatchesFmt(t *testing.T) {
	cases := []Event{
		{},
		{At: 0, Type: EvSIPInvite, Session: "call-1", Detail: "alice -> bob"},
		{At: 1500 * time.Millisecond, Type: EvRTPSeqJump, Session: "s", Detail: "seq 1 -> 900"},
		{At: -2 * time.Second, Type: EvSIPBye, Session: "call-1", Detail: "alice hangs up"},
		{At: 123456789 * time.Millisecond, Type: EventType(9999), Session: "", Detail: ""},
		{At: time.Microsecond, Type: EvRTPUnmatchedMedia, Session: "日本語セッション", Detail: "πφ"},
		{At: 999999 * time.Hour, Type: EvSIPCallEstablished, Session: "x", Detail: "y <-> z"},
	}
	for _, ev := range cases {
		want := fmt.Sprintf("[%8.3fs] %-20s session=%s %s",
			ev.At.Seconds(), ev.Type, ev.Session, ev.Detail)
		if got := ev.String(); got != want {
			t.Errorf("Event.String mismatch:\n got %q\nwant %q", got, want)
		}
	}
}

// TestAlertStringMatchesFmt does the same for Alert.String, including
// the repeat-count suffix.
func TestAlertStringMatchesFmt(t *testing.T) {
	cases := []Alert{
		{},
		{At: time.Second, Rule: RuleByeAttack, Severity: SeverityCritical, Session: "call-1", Detail: "orphan media", Count: 1},
		{At: 42 * time.Millisecond, Rule: "a-rather-long-rule-name-over-16", Severity: SeverityWarning, Session: "s", Detail: "d", Count: 2},
		{At: -time.Second, Rule: "r", Severity: SeverityInfo, Session: "", Detail: "", Count: 1000000},
		{At: 3 * time.Hour, Rule: "règle", Severity: Severity(42), Session: "日本", Detail: "πφ", Count: 0},
	}
	for _, a := range cases {
		want := fmt.Sprintf("[%8.3fs] %-8s %-16s session=%s %s",
			a.At.Seconds(), a.Severity, a.Rule, a.Session, a.Detail)
		if a.Count > 1 {
			want += fmt.Sprintf(" (x%d)", a.Count)
		}
		if got := a.String(); got != want {
			t.Errorf("Alert.String mismatch:\n got %q\nwant %q", got, want)
		}
	}
}
