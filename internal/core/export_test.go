package core

// Test-only accessors for the external core_test package.

// StreamMuxBuffered reports whether the serial engine's stream mux is
// holding a partially framed SIP message (bytes delivered by the
// reassembler that do not yet form a complete message). The kill/restore
// differential uses it to place checkpoints between the TCP segments of
// one message, the exact state snapshot format v4 exists to carry.
func (e *Engine) StreamMuxBuffered() bool {
	m := e.distiller.streams
	if m == nil {
		return false
	}
	for _, fr := range m.framers {
		if len(fr.State()) > 0 {
			return true
		}
	}
	return false
}
