// Package core implements the SCIDIVE intrusion detection architecture:
// the Distiller that turns raw network frames into protocol-dependent
// Footprints, the Trails that group footprints per session and protocol,
// the stateful Event Generator that concentrates footprints into Events,
// and the Rule Matching Engine that raises Alerts from event sequences —
// including cross-protocol sequences spanning SIP, RTP, and accounting
// traffic.
package core

import (
	"fmt"
	"net/netip"
	"time"

	"scidive/internal/accounting"
	"scidive/internal/rtp"
	"scidive/internal/sip"
)

// Protocol identifies the protocol a footprint was distilled from.
type Protocol int

// Protocols the Distiller classifies.
const (
	ProtoSIP Protocol = iota + 1
	ProtoRTP
	ProtoRTCP
	ProtoAccounting
	ProtoOther
	// ProtoControl is the IDS's own probe→aggregator digest traffic
	// (core/digest.go). It sits after ProtoOther on purpose: the
	// generator's dispatch tables are sized by ProtoOther, and the
	// control correlator claims the digest port without subscribing to
	// any dispatch protocol, so control frames are classified (and
	// dropped as IDS-internal) rather than tripping the content
	// classifier's mismatch alerts.
	ProtoControl
)

// String returns the protocol name.
func (p Protocol) String() string {
	switch p {
	case ProtoSIP:
		return "SIP"
	case ProtoRTP:
		return "RTP"
	case ProtoRTCP:
		return "RTCP"
	case ProtoAccounting:
		return "ACCT"
	case ProtoOther:
		return "OTHER"
	case ProtoControl:
		return "CTRL"
	default:
		return "UNKNOWN"
	}
}

// Footprint is a protocol-dependent information unit distilled from one
// packet (paper Section 3.1).
type Footprint interface {
	// Proto returns the protocol this footprint belongs to.
	Proto() Protocol
	// Time returns when the packet was observed.
	Time() time.Duration
	// Flow returns the transport-level source and destination.
	Flow() (src, dst netip.AddrPort)
}

// FootprintBase carries the fields common to all footprints. PortProto
// is nonzero only on reclassified footprints: the protocol the port
// claimed before content confirmation overrode it (see classify.go).
type FootprintBase struct {
	At        time.Duration
	Src       netip.AddrPort
	Dst       netip.AddrPort
	PortProto Protocol
}

// Time implements Footprint.
func (b FootprintBase) Time() time.Duration { return b.At }

// Flow implements Footprint.
func (b FootprintBase) Flow() (netip.AddrPort, netip.AddrPort) { return b.Src, b.Dst }

// SIPFootprint is a decoded SIP message observation. Malformed holds
// format violations the IDS's strict checker found even when the message
// was parseable enough to process (e.g. duplicate From headers).
type SIPFootprint struct {
	FootprintBase
	Msg       *sip.Message
	Malformed []string
}

// Proto implements Footprint.
func (*SIPFootprint) Proto() Protocol { return ProtoSIP }

// String summarizes the footprint for logs.
func (f *SIPFootprint) String() string {
	return fmt.Sprintf("SIP %s %v->%v", f.Msg, f.Src, f.Dst)
}

// RTPFootprint is one observed RTP packet (header only; payload is
// dropped after distillation to bound memory). EmbeddedSIP flags a
// media payload that begins with a SIP start line — the
// SIP-smuggled-in-RTP evasion.
type RTPFootprint struct {
	FootprintBase
	Header      rtp.Header
	PayloadLen  int
	EmbeddedSIP bool
}

// Proto implements Footprint.
func (*RTPFootprint) Proto() Protocol { return ProtoRTP }

// RTCPFootprint is one observed RTCP compound packet.
type RTCPFootprint struct {
	FootprintBase
	Packets []rtp.RTCPPacket
}

// Proto implements Footprint.
func (*RTCPFootprint) Proto() Protocol { return ProtoRTCP }

// AcctFootprint is one observed accounting transaction.
type AcctFootprint struct {
	FootprintBase
	Txn accounting.Txn
}

// Proto implements Footprint.
func (*AcctFootprint) Proto() Protocol { return ProtoAccounting }

// RawFootprint is a packet on a monitored VoIP port that decoded as none
// of the expected protocols — e.g. the garbage bytes of the RTP attack.
type RawFootprint struct {
	FootprintBase
	OnPort Protocol // the protocol expected on this port
	Reason string   // why decoding failed
	Len    int
}

// Proto implements Footprint.
func (*RawFootprint) Proto() Protocol { return ProtoOther }

// Compile-time interface checks.
var (
	_ Footprint = (*SIPFootprint)(nil)
	_ Footprint = (*RTPFootprint)(nil)
	_ Footprint = (*RTCPFootprint)(nil)
	_ Footprint = (*AcctFootprint)(nil)
	_ Footprint = (*RawFootprint)(nil)
)
