package core

import (
	"fmt"
	"net/netip"
	"sort"
	"time"

	"scidive/internal/sip"
)

// Thresholds are local to this module by design: the worked example of
// adding a correlator must not widen GenConfig or touch any other file's
// configuration surface.
const (
	// optionsScanThreshold is how many distinct dialogs one source may
	// probe with OPTIONS inside the window before the scan event fires.
	optionsScanThreshold = 5
	// optionsScanWindow bounds the sweep: the per-source dialog count
	// resets when probes pause longer than this.
	optionsScanWindow = 10 * time.Second
)

// optionsScanCorrelator detects cross-dialog SIP OPTIONS sweeps: one
// source probing many dialogs in a short window is enumerating the
// proxy's extensions or harvesting capability banners, the VoIP analogue
// of a port scan. Each probe arrives on its own Call-ID, so the state is
// per source, not per session — which makes this module the worked
// example for correlators with cross-dialog state: it pins every OPTIONS
// dialog to the prober's shard via sipRouteKey ("scan:" + source IP), so
// shard-local counting remains serial-equivalent with no router-side
// hint machinery.
//
// This module was added to the registry without editing any existing
// correlator — the extensibility proof for the pluggable architecture
// (see README.md for the walkthrough).
type optionsScanCorrelator struct {
	sources map[netip.Addr]*optionsScanRecord
}

// optionsScanRecord counts distinct probed dialogs per source window.
type optionsScanRecord struct {
	start   time.Duration
	last    time.Duration
	dialogs map[string]struct{}
	fired   bool
}

func newOptionsScanCorrelator() *optionsScanCorrelator {
	return &optionsScanCorrelator{sources: make(map[netip.Addr]*optionsScanRecord)}
}

func (c *optionsScanCorrelator) Name() string          { return "options-scan" }
func (c *optionsScanCorrelator) Protocols() []Protocol { return []Protocol{ProtoSIP} }

// sipRouteKey pins OPTIONS dialogs to the probing source so the
// per-source sweep state colocates on one shard across Call-IDs.
func (c *optionsScanCorrelator) sipRouteKey(m *sip.Message, out sipOutcome, src netip.AddrPort) (string, bool) {
	if !m.IsRequest() || m.Method != sip.MethodOptions {
		return "", false
	}
	return "scan:" + src.Addr().String(), true
}

// onExpire prunes sources whose window lapsed; Process would reset them
// on their next probe anyway, so pruning never changes the event stream.
func (c *optionsScanCorrelator) onExpire(now time.Duration, sessionsRemaining int) {
	for src, r := range c.sources {
		if now-r.last > optionsScanWindow {
			delete(c.sources, src)
		}
	}
}

// snapshotState serializes the per-source sweep windows in source order,
// each with its probed dialog set sorted.
func (c *optionsScanCorrelator) snapshotState(w *snapWriter) {
	writeScanSources(w, c.sources)
}

// decodeState decodes sweep windows; the returned closure installs them.
func (c *optionsScanCorrelator) decodeState(r *snapReader) (func(), error) {
	recs := readScanSources(r)
	if r.err != nil {
		return nil, r.err
	}
	return func() {
		clear(c.sources)
		for src, rec := range recs {
			c.sources[src] = rec
		}
	}, nil
}

// writeScanSources serializes a source → sweep-record map in source order,
// each record's probed dialog set sorted.
func writeScanSources(w *snapWriter, sources map[netip.Addr]*optionsScanRecord) {
	srcs := make([]netip.Addr, 0, len(sources))
	for src := range sources {
		srcs = append(srcs, src)
	}
	sort.Slice(srcs, func(i, j int) bool { return srcs[i].Compare(srcs[j]) < 0 })
	w.u32(uint32(len(srcs)))
	for _, src := range srcs {
		r := sources[src]
		w.addr(src)
		w.dur(r.start)
		w.dur(r.last)
		w.bool(r.fired)
		dialogs := make([]string, 0, len(r.dialogs))
		for d := range r.dialogs {
			dialogs = append(dialogs, d)
		}
		sort.Strings(dialogs)
		w.u32(uint32(len(dialogs)))
		for _, d := range dialogs {
			w.str(d)
		}
	}
}

// readScanSources decodes the writeScanSources layout (errors stick to r).
func readScanSources(r *snapReader) map[netip.Addr]*optionsScanRecord {
	n := r.count()
	recs := make(map[netip.Addr]*optionsScanRecord, min(n, 4096))
	for i := 0; i < n && r.err == nil; i++ {
		src := r.addrv()
		rec := &optionsScanRecord{
			start:   r.dur(),
			last:    r.dur(),
			fired:   r.boolv(),
			dialogs: make(map[string]struct{}),
		}
		nd := r.count()
		for j := 0; j < nd && r.err == nil; j++ {
			rec.dialogs[r.strv()] = struct{}{}
		}
		recs[src] = rec
	}
	return recs
}

// mergeState folds shard-local sweep blobs into one global blob
// (stateSharder). Route pinning keeps each source on one shard, so the
// maps are disjoint in a healthy capture; overlaps — possible after a
// degraded capture — union conservatively.
func (c *optionsScanCorrelator) mergeState(blobs [][]byte) ([]byte, error) {
	merged := make(map[netip.Addr]*optionsScanRecord)
	for _, blob := range blobs {
		r := &snapReader{buf: blob}
		recs := readScanSources(r)
		if r.err == nil && !r.done() {
			r.fail("core: snapshot corrupt (%d trailing bytes in options-scan state)", r.remaining())
		}
		if r.err != nil {
			return nil, r.err
		}
		for src, rec := range recs {
			ex, ok := merged[src]
			if !ok {
				merged[src] = rec
				continue
			}
			if rec.start < ex.start {
				ex.start = rec.start
			}
			if rec.last > ex.last {
				ex.last = rec.last
			}
			ex.fired = ex.fired || rec.fired
			for d := range rec.dialogs {
				ex.dialogs[d] = struct{}{}
			}
		}
	}
	var w snapWriter
	writeScanSources(&w, merged)
	return w.buf, nil
}

// filterState keeps only the sources whose routing key ("scan:" + source
// IP — the key sipRouteKey pins) passes keep (stateSharder).
func (c *optionsScanCorrelator) filterState(blob []byte, keep func(routeKey string) bool) ([]byte, error) {
	r := &snapReader{buf: blob}
	recs := readScanSources(r)
	if r.err == nil && !r.done() {
		r.fail("core: snapshot corrupt (%d trailing bytes in options-scan state)", r.remaining())
	}
	if r.err != nil {
		return nil, r.err
	}
	for src := range recs {
		if !keep("scan:" + src.String()) {
			delete(recs, src)
		}
	}
	var w snapWriter
	writeScanSources(&w, recs)
	return w.buf, nil
}

func (c *optionsScanCorrelator) Process(v *FrameView, h RouteHints, ctx *SessionContext, evs *[]Event) {
	if v.Proto != ProtoSIP || !v.Msg.IsRequest() || v.Msg.Method != sip.MethodOptions {
		return
	}
	src := v.Src.Addr()
	r := c.sources[src]
	if r == nil || v.At-r.start > optionsScanWindow {
		r = &optionsScanRecord{start: v.At, dialogs: make(map[string]struct{})}
		c.sources[src] = r
	}
	r.dialogs[v.Msg.CallID()] = struct{}{}
	r.last = v.At
	if r.fired || len(r.dialogs) < optionsScanThreshold {
		return
	}
	r.fired = true
	*evs = append(*evs, Event{
		At: v.At, Type: EvOptionsScan, Session: "scan:" + src.String(),
		Detail: fmt.Sprintf("%d distinct dialogs probed by OPTIONS from %v within %v",
			len(r.dialogs), src, v.At-r.start),
		Footprint: ctx.Observation(),
	})
}
