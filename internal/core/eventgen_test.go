package core

import (
	"net/netip"
	"testing"
	"time"

	"scidive/internal/accounting"
	"scidive/internal/rtp"
	"scidive/internal/sip"
)

// Synthetic footprint-level tests of the Event Generator, independent of
// the network simulator.

var (
	egCaller = netip.MustParseAddrPort("10.0.0.1:5060")
	egCallee = netip.MustParseAddrPort("10.0.0.2:5060")
	egCMedia = netip.MustParseAddrPort("10.0.0.1:40000")
	egBMedia = netip.MustParseAddrPort("10.0.0.2:40000")
	egEvil   = netip.MustParseAddrPort("10.0.0.66:40666")
)

func newGen() *EventGenerator {
	return NewEventGenerator(GenConfig{}, NewTrailStore(0))
}

// sipFp builds a SIP footprint.
func sipFp(t *testing.T, at time.Duration, src, dst netip.AddrPort, m *sip.Message) *SIPFootprint {
	t.Helper()
	// Round-trip for realism (and Content-Length correctness).
	parsed, err := sip.ParseMessage(m.Marshal())
	if err != nil {
		t.Fatalf("synthetic message invalid: %v", err)
	}
	return &SIPFootprint{
		FootprintBase: FootprintBase{At: at, Src: src, Dst: dst},
		Msg:           parsed,
		Malformed:     CheckSIPFormat(parsed),
	}
}

// egInvite builds a dialog-forming INVITE with SDP at callerMedia.
func egInvite(t *testing.T, callID string) *sip.Message {
	t.Helper()
	from, _ := sip.ParseAddress(`<sip:alice@10.0.0.10>;tag=a1`)
	to, _ := sip.ParseAddress(`<sip:bob@10.0.0.10>`)
	contact, _ := sip.ParseAddress(`<sip:alice@10.0.0.1:5060>`)
	return sip.NewRequest(sip.RequestSpec{
		Method: sip.MethodInvite, RequestURI: "sip:bob@10.0.0.10",
		From: from, To: to, CallID: callID,
		CSeq:    sip.CSeq{Seq: 1, Method: sip.MethodInvite},
		Via:     sip.Via{Transport: "UDP", SentBy: "10.0.0.1:5060", Params: map[string]string{"branch": sip.MagicBranchPrefix + "eg1"}},
		Contact: &contact,
		Body: []byte("v=0\r\no=alice 1 1 IN IP4 10.0.0.1\r\ns=-\r\nc=IN IP4 10.0.0.1\r\nt=0 0\r\n" +
			"m=audio 40000 RTP/AVP 0\r\n"),
		BodyType: "application/sdp",
	})
}

// eg200 answers the INVITE with SDP at calleeMedia.
func eg200(t *testing.T, invite *sip.Message) *sip.Message {
	t.Helper()
	resp := sip.NewResponse(invite, sip.StatusOK, "b1")
	contact, _ := sip.ParseAddress(`<sip:bob@10.0.0.2:5060>`)
	resp.Headers.Add(sip.HdrContact, contact.String())
	resp.Headers.Add(sip.HdrContentType, "application/sdp")
	resp.Body = []byte("v=0\r\no=bob 1 1 IN IP4 10.0.0.2\r\ns=-\r\nc=IN IP4 10.0.0.2\r\nt=0 0\r\n" +
		"m=audio 40000 RTP/AVP 0\r\n")
	return resp
}

// establish drives a generator to an established call and returns it.
func establish(t *testing.T, g *EventGenerator, callID string) {
	t.Helper()
	inv := egInvite(t, callID)
	g.Process(sipFp(t, 0, egCaller, egCallee, inv))
	events := g.Process(sipFp(t, 10*time.Millisecond, egCallee, egCaller, eg200(t, inv)))
	found := false
	for _, e := range events {
		if e.Type == EvSIPCallEstablished {
			found = true
		}
	}
	if !found {
		t.Fatalf("call not established; events = %v", events)
	}
}

// rtpAt builds an RTP footprint.
func rtpAt(at time.Duration, src, dst netip.AddrPort, seq uint16) *RTPFootprint {
	return &RTPFootprint{
		FootprintBase: FootprintBase{At: at, Src: src, Dst: dst},
		Header:        rtp.Header{Seq: seq, SSRC: 7},
		PayloadLen:    160,
	}
}

func eventsOf(events []Event, typ EventType) []Event {
	var out []Event
	for _, e := range events {
		if e.Type == typ {
			out = append(out, e)
		}
	}
	return out
}

func TestGenEstablishmentEvents(t *testing.T) {
	g := newGen()
	inv := egInvite(t, "c1")
	ev1 := g.Process(sipFp(t, 0, egCaller, egCallee, inv))
	if len(eventsOf(ev1, EvSIPInvite)) != 1 {
		t.Errorf("INVITE events = %v", ev1)
	}
	ev2 := g.Process(sipFp(t, time.Millisecond, egCallee, egCaller, eg200(t, inv)))
	if len(eventsOf(ev2, EvSIPCallEstablished)) != 1 {
		t.Errorf("200 events = %v", ev2)
	}
}

func TestGenOrphanAfterByeWindow(t *testing.T) {
	g := newGen()
	establish(t, g, "c1")
	// Media flows normally.
	if ev := g.Process(rtpAt(100*time.Millisecond, egBMedia, egCMedia, 1)); len(eventsOf(ev, EvRTPAfterBye)) != 0 {
		t.Errorf("benign RTP flagged: %v", ev)
	}
	// BYE from bob (callee).
	bye := sip.NewRequest(sip.RequestSpec{
		Method: sip.MethodBye, RequestURI: "sip:alice@10.0.0.10",
		From: mustAddr2(t, "<sip:bob@10.0.0.10>;tag=b1"), To: mustAddr2(t, "<sip:alice@10.0.0.10>;tag=a1"),
		CallID: "c1", CSeq: sip.CSeq{Seq: 2, Method: sip.MethodBye},
		Via: sip.Via{Transport: "UDP", SentBy: "10.0.0.2:5060", Params: map[string]string{"branch": sip.MagicBranchPrefix + "bye"}},
	})
	ev := g.Process(sipFp(t, 200*time.Millisecond, egCallee, egCaller, bye))
	if len(eventsOf(ev, EvSIPBye)) != 1 {
		t.Fatalf("BYE events = %v", ev)
	}
	// Orphan RTP from bob inside the window.
	ev = g.Process(rtpAt(250*time.Millisecond, egBMedia, egCMedia, 2))
	if len(eventsOf(ev, EvRTPAfterBye)) != 1 {
		t.Errorf("orphan not flagged: %v", ev)
	}
	// RTP from alice's side is not the orphan.
	ev = g.Process(rtpAt(260*time.Millisecond, egCMedia, egBMedia, 50))
	if len(eventsOf(ev, EvRTPAfterBye)) != 0 {
		t.Errorf("wrong side flagged: %v", ev)
	}
	// Past the (default 1s) window: silence.
	ev = g.Process(rtpAt(1500*time.Millisecond, egBMedia, egCMedia, 3))
	if len(eventsOf(ev, EvRTPAfterBye)) != 0 {
		t.Errorf("orphan flagged outside window: %v", ev)
	}
}

func TestGenSeqJumpThreshold(t *testing.T) {
	g := NewEventGenerator(GenConfig{SeqJumpThreshold: 100}, NewTrailStore(0))
	establish(t, g, "c1")
	g.Process(rtpAt(100*time.Millisecond, egBMedia, egCMedia, 1000))
	// Delta 100 = threshold: not flagged (must exceed).
	if ev := g.Process(rtpAt(120*time.Millisecond, egBMedia, egCMedia, 1100)); len(eventsOf(ev, EvRTPSeqJump)) != 0 {
		t.Errorf("delta==threshold flagged: %v", ev)
	}
	// Delta 101: flagged.
	if ev := g.Process(rtpAt(140*time.Millisecond, egBMedia, egCMedia, 1201)); len(eventsOf(ev, EvRTPSeqJump)) != 1 {
		t.Errorf("delta>threshold not flagged: %v", ev)
	}
}

func TestGenBadSourceOnlyForNegotiatedDst(t *testing.T) {
	g := newGen()
	establish(t, g, "c1")
	// Packet to alice's media from a third party.
	ev := g.Process(rtpAt(100*time.Millisecond, egEvil, egCMedia, 5))
	if len(eventsOf(ev, EvRTPBadSource)) != 1 {
		t.Errorf("bad source not flagged: %v", ev)
	}
	// Packet between unrelated endpoints: no session, no event.
	other := netip.MustParseAddrPort("10.0.0.9:45000")
	ev = g.Process(rtpAt(110*time.Millisecond, egEvil, other, 5))
	if len(eventsOf(ev, EvRTPBadSource)) != 0 {
		t.Errorf("unrelated flow flagged: %v", ev)
	}
}

func TestGenAcctUnmatchedVariants(t *testing.T) {
	reg := func(g *EventGenerator) {
		// Teach the generator alice's binding via a REGISTER 200.
		regReq := sip.NewRequest(sip.RequestSpec{
			Method: sip.MethodRegister, RequestURI: "sip:10.0.0.10",
			From:   mustAddr2(t, "<sip:alice@10.0.0.10>;tag=r1"),
			To:     mustAddr2(t, "<sip:alice@10.0.0.10>"),
			CallID: "reg1", CSeq: sip.CSeq{Seq: 1, Method: sip.MethodRegister},
			Via: sip.Via{Transport: "UDP", SentBy: "10.0.0.1:5060", Params: map[string]string{"branch": sip.MagicBranchPrefix + "rg"}},
		})
		contact, _ := sip.ParseAddress("<sip:alice@10.0.0.1:5060>")
		regReq.Headers.Add(sip.HdrContact, contact.String())
		g.Process(sipFp(t, 0, egCaller, egCallee, regReq))
		ok := sip.NewResponse(regReq, sip.StatusOK, "")
		ok.Headers.Add(sip.HdrContact, contact.String())
		g.Process(sipFp(t, time.Millisecond, egCallee, egCaller, ok))
	}
	acct := func(g *EventGenerator, callID string, ip netip.Addr) []Event {
		return g.Process(&AcctFootprint{
			FootprintBase: FootprintBase{At: time.Second, Src: egCallee, Dst: netip.MustParseAddrPort("10.0.0.20:7009")},
			Txn: accounting.Txn{
				Kind: accounting.TxnStart, CallID: callID,
				From: "alice@10.0.0.10", To: "bob@10.0.0.10", FromIP: ip,
			},
		})
	}

	t.Run("matching binding clean", func(t *testing.T) {
		g := newGen()
		reg(g)
		establish(t, g, "c1")
		ev := acct(g, "c1", netip.MustParseAddr("10.0.0.1"))
		if len(eventsOf(ev, EvAcctUnmatched)) != 0 {
			t.Errorf("legit accounting flagged: %v", ev)
		}
	})
	t.Run("wrong source ip", func(t *testing.T) {
		g := newGen()
		reg(g)
		establish(t, g, "c1")
		ev := acct(g, "c1", netip.MustParseAddr("10.0.0.66"))
		if len(eventsOf(ev, EvAcctUnmatched)) != 1 {
			t.Errorf("fraudulent accounting not flagged: %v", ev)
		}
	})
	t.Run("no call setup at all", func(t *testing.T) {
		g := newGen()
		reg(g)
		ev := acct(g, "ghost-call", netip.MustParseAddr("10.0.0.1"))
		if len(eventsOf(ev, EvAcctUnmatched)) != 1 {
			t.Errorf("ghost accounting not flagged: %v", ev)
		}
	})
	t.Run("unregistered caller", func(t *testing.T) {
		g := newGen()
		establish(t, g, "c1")
		ev := acct(g, "c1", netip.MustParseAddr("10.0.0.1"))
		if len(eventsOf(ev, EvAcctUnmatched)) != 1 {
			t.Errorf("unregistered-caller accounting not flagged: %v", ev)
		}
	})
}

func TestGenDuplicateByeDoesNotRearm(t *testing.T) {
	g := newGen()
	establish(t, g, "c1")
	bye := sip.NewRequest(sip.RequestSpec{
		Method: sip.MethodBye, RequestURI: "sip:alice@10.0.0.10",
		From: mustAddr2(t, "<sip:bob@10.0.0.10>;tag=b1"), To: mustAddr2(t, "<sip:alice@10.0.0.10>;tag=a1"),
		CallID: "c1", CSeq: sip.CSeq{Seq: 2, Method: sip.MethodBye},
		Via: sip.Via{Transport: "UDP", SentBy: "10.0.0.2:5060", Params: map[string]string{"branch": sip.MagicBranchPrefix + "byd"}},
	})
	ev1 := g.Process(sipFp(t, 100*time.Millisecond, egCallee, egCaller, bye))
	// The relayed copy 1ms later must not produce a second EvSIPBye nor
	// move the monitoring window.
	ev2 := g.Process(sipFp(t, 101*time.Millisecond, egCallee, egCaller, bye))
	if len(eventsOf(ev1, EvSIPBye)) != 1 || len(eventsOf(ev2, EvSIPBye)) != 0 {
		t.Errorf("duplicate BYE handling: %v / %v", ev1, ev2)
	}
}

func mustAddr2(t *testing.T, s string) sip.Address {
	t.Helper()
	a, err := sip.ParseAddress(s)
	if err != nil {
		t.Fatal(err)
	}
	return a
}
