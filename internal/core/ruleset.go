package core

import "time"

// Rule names used by the default ruleset (and referenced by experiments).
const (
	RuleByeAttack     = "bye-attack"
	RuleCallHijack    = "call-hijack"
	RuleFakeIM        = "fake-im"
	RuleRTPSeqJump    = "rtp-attack-seq"
	RuleRTPBadSource  = "rtp-attack-source"
	RuleRTPGarbage    = "rtp-attack-garbage"
	RuleRegisterFlood = "register-flood"
	RulePasswordGuess = "password-guess"
	RuleBillingFraud  = "billing-fraud"
	RuleRTCPByeSpoof  = "rtcp-bye-spoof"
	RuleOptionsScan   = "sip-options-scan"
	// RuleProtocolMismatch fires when content-confirmed classification
	// reclassified a frame away from its port's protocol (classify.go).
	RuleProtocolMismatch = "protocol-mismatch"
	// RuleEvasionSuspect fires when the contradiction matches a known
	// evasion shape: RTP tunneled on signaling ports, SIP smuggled inside
	// RTP payloads, or signaling found on media ports.
	RuleEvasionSuspect = "evasion-suspect"
)

// Self-monitoring alert names raised by the sharded engine about its own
// health, so degradation under overload or shard failure is itself a
// detectable event rather than a silent gap in coverage.
const (
	// RuleIDSOverload fires when the router sheds frames because a shard
	// queue stayed full past ShedAfter or the shard was quarantined.
	RuleIDSOverload = "ids-overload"
	// RuleShardFailure fires when a shard worker panics or the watchdog
	// finds it stalled past StallTimeout.
	RuleShardFailure = "shard-failure"
	// RuleShardStateLoss fires when RestartFailedShards restarts a shard
	// with empty detection state because no checkpoint was available (or
	// the cached one failed to decode): the shard is contained but blind —
	// in-flight rule progress for its sessions is gone. A warm restart
	// from a checkpoint does not raise it.
	RuleShardStateLoss = "shard-state-loss"
	// RuleRuleReload fires when a live ruleset reload (SIGHUP /
	// ReloadRules) drops in-flight partial matches because their rules
	// were removed or edited: losing multi-step progress is a visible
	// event, never a silent reset. Reloading an unchanged ruleset raises
	// nothing.
	RuleRuleReload = "rule-reload"
)

// DefaultRuleset returns the rules for the paper's four demonstrated
// attacks (Table 1) plus the Section 3.2/3.3 synthetic scenarios.
func DefaultRuleset() []Rule {
	return []Rule{
		{
			Name:          RuleByeAttack,
			Description:   "No RTP traffic should be seen from a user agent after its SIP BYE (Figure 5)",
			Severity:      SeverityCritical,
			Steps:         []Step{{Type: EvSIPBye}, {Type: EvRTPAfterBye}},
			CrossProtocol: true,
			Stateful:      true,
		},
		{
			Name:          RuleCallHijack,
			Description:   "No RTP traffic should be seen from the old address after a media-moving REINVITE (Figure 7)",
			Severity:      SeverityCritical,
			Steps:         []Step{{Type: EvSIPReinvite}, {Type: EvRTPAfterReinvite}},
			CrossProtocol: true,
			Stateful:      true,
		},
		{
			Name:          RuleFakeIM,
			Description:   "Instant messages from one user should keep a stable source IP within a period (Figure 6)",
			Severity:      SeverityWarning,
			Steps:         []Step{{Type: EvIMSourceMismatch}},
			CrossProtocol: true, // correlates SIP-layer identity with IP-layer source
		},
		{
			Name:          RuleRTPSeqJump,
			Description:   "RTP sequence numbers in consecutive packets should increase regularly (Figure 8)",
			Severity:      SeverityWarning,
			Steps:         []Step{{Type: EvRTPSeqJump}},
			CrossProtocol: true, // RTP payload field plus IP-level flow identity
			Stateful:      true,
		},
		{
			Name:          RuleRTPBadSource,
			Description:   "RTP packets must come from the address the session negotiated (Figure 8)",
			Severity:      SeverityWarning,
			Steps:         []Step{{Type: EvRTPBadSource}},
			CrossProtocol: true,
			Stateful:      true,
		},
		{
			Name:        RuleRTPGarbage,
			Description: "Undecodable packets on a negotiated media port (Figure 8)",
			Severity:    SeverityWarning,
			Steps:       []Step{{Type: EvRTPGarbage}},
		},
		{
			Name:        RuleRegisterFlood,
			Description: "Continuous alternating requests and 4XX errors within one session (Section 3.3 DoS)",
			Severity:    SeverityWarning,
			Steps:       []Step{{Type: EvAuthFlood}},
			Stateful:    true,
		},
		{
			Name:        RulePasswordGuess,
			Description: "Alternating requests with differing challenge responses and 401 errors (Section 3.3)",
			Severity:    SeverityCritical,
			Steps:       []Step{{Type: EvPasswordGuessing}},
			Stateful:    true,
		},
		{
			Name:          RuleRTCPByeSpoof,
			Description:   "An RTCP BYE must be accompanied by a SIP BYE: media control and call signaling in disagreement indicates a forged RTCP teardown",
			Severity:      SeverityCritical,
			Steps:         []Step{{Type: EvRTCPSpoofedBye}},
			CrossProtocol: true, // SIP dialog state vs RTCP control vs RTP media
			Stateful:      true,
		},
		{
			Name:        RuleBillingFraud,
			Description: "Malformed call setup + unmatched accounting transaction + media away from the caller's registered location (Section 3.2)",
			Severity:    SeverityCritical,
			Steps: []Step{
				{Type: EvSIPBadFormat},
				{Type: EvAcctUnmatched},
				{Type: EvRTPUnmatchedMedia},
			},
			Unordered:     true,
			CrossProtocol: true,
			Stateful:      true,
		},
		{
			Name:        RuleOptionsScan,
			Description: "One source probing many dialogs with OPTIONS in a short window is sweeping the proxy for capabilities",
			Severity:    SeverityWarning,
			Steps:       []Step{{Type: EvOptionsScan}},
			Stateful:    true, // per-source dialog counting across Call-IDs
		},
		{
			Name:          RuleProtocolMismatch,
			Description:   "Payload content contradicts the protocol its port claims: the traffic decodes cleanly, just not as what the port promised",
			Severity:      SeverityWarning,
			Steps:         []Step{{Type: EvProtocolMismatch}},
			CrossProtocol: true, // port-layer claim vs payload-layer content
		},
		{
			Name:          RuleEvasionSuspect,
			Description:   "Port/content contradiction in a known evasion shape: RTP tunneled over signaling ports, SIP smuggled in RTP payloads, or signaling on media ports",
			Severity:      SeverityCritical,
			Steps:         []Step{{Type: EvEvasionSuspect}},
			CrossProtocol: true,
		},
	}
}

// Observation-point names used by the cross-point ruleset and the
// cooperative scenarios: the edge proxy tap, the media gateway tap, and
// the two access-network endpoint taps. Points are free-form strings —
// these constants just keep the rules, scenarios and docs in agreement.
const (
	PointEdge    = "edge"
	PointGateway = "gateway"
	PointAccessA = "access-a"
	PointAccessB = "access-b"
)

// Rule names used by the cross-point (aggregator) ruleset.
const (
	// RuleByeTeardownSplit is the paper's BYE attack split across
	// vantages: the edge proxy saw the BYE, yet the media gateway keeps
	// reporting RTP activity for the same call afterwards. Neither probe
	// alone can tell — the edge tap never sees media, the gateway tap
	// never sees the forged signaling.
	RuleByeTeardownSplit = "bye-teardown-split"
	// RuleRegisterHijackSplit fires when the same AOR registers
	// successfully from both access networks within a short window: a
	// registration hijack racing the legitimate binding. Correlated by
	// Detail (the AOR) because each vantage sees a different Call-ID.
	RuleRegisterHijackSplit = "register-hijack-split"
)

// CrossPointRuleset returns the aggregator's cross-point rules: patterns
// over the merged multi-probe event stream that qualify steps by
// observation point, so they can express "seen at A but not (or also) at
// B" — invisible to any single probe. Canonical DSL rendering lives in
// rules/crosspoint.rules.
func CrossPointRuleset() []Rule {
	return []Rule{
		{
			Name:        RuleByeTeardownSplit,
			Description: "A BYE at the edge proxy must tear the call's media down at the gateway: two media-activity heartbeats after the BYE prove the teardown never happened",
			Severity:    SeverityCritical,
			Steps: []Step{
				{Type: EvSIPBye, Point: PointEdge},
				{Type: EvRTPActivity, Point: PointGateway},
				{Type: EvRTPActivity, Point: PointGateway},
			},
			Window:        5 * time.Second,
			CrossProtocol: true,
			Stateful:      true,
		},
		{
			Name:        RuleRegisterHijackSplit,
			Description: "One AOR successfully registering from both access networks within a short window is a registration hijack racing the legitimate binding",
			Severity:    SeverityCritical,
			Steps: []Step{
				{Type: EvSIPRegisterOK, Point: PointAccessA},
				{Type: EvSIPRegisterOK, Point: PointAccessB},
			},
			Unordered: true,
			Window:    30 * time.Second,
			KeyBy:     KeyByDetail,
			Stateful:  true,
		},
	}
}

// RuleByName returns the rule with the given name from a ruleset.
func RuleByName(rules []Rule, name string) (Rule, bool) {
	for _, r := range rules {
		if r.Name == name {
			return r, true
		}
	}
	return Rule{}, false
}
