package core_test

// Kill/restore coverage for the parallel ingest front end: a checkpoint
// taken while capture is partitioned across N ingest lanes must resume
// byte-identically, and the deployment-style chaoscore.KillAt flow must
// carry the ingest width through the checkpoint header.

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"scidive/internal/chaoscore"
	"scidive/internal/core"
)

// TestKillRestoreParallelIngest sweeps kill points over stateful
// scenarios with ingesters ∈ {2,4} × shards ∈ {2,8}. The baseline is
// the SERIAL uninterrupted run, so the test simultaneously proves the
// resumed engine equals the parallel run and that the parallel run
// never diverged from the synchronous router in the first place.
func TestKillRestoreParallelIngest(t *testing.T) {
	scenarios := []string{"bye", "rtcpbye", "fragflood", "optionsscan"}
	if testing.Short() {
		scenarios = []string{"bye", "fragflood"}
	}
	for _, name := range scenarios {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			frames := scenarioFrames(t, name, 7)
			points := killPoints(len(frames), shortKillFractions)
			wantAlerts, wantEvents, wantStats := runSerialCfg(frames, core.Config{})
			for _, ing := range []int{2, 4} {
				for _, shards := range []int{2, 8} {
					cfg := core.Config{IngestRouters: ing}
					for _, k := range points {
						gotA, gotE, gotS := runShardedKillRestore(t, frames, shards, k, cfg)
						compareToBaseline(t,
							fmt.Sprintf("%s ingesters=%d shards=%d kill@%d/%d", name, ing, shards, k, len(frames)),
							gotA, gotE, gotS, wantAlerts, wantEvents, wantStats)
					}
				}
			}
		})
	}
}

// TestKillAtCheckpointResumeParallelIngest runs the deployment flow
// with a partitioned front end: the chaoscore kill tap fires mid-trace,
// the checkpoint that lands on disk names its ingest width, and the
// restarted process (same width) resumes to the uninterrupted output.
func TestKillAtCheckpointResumeParallelIngest(t *testing.T) {
	frames := scenarioFrames(t, "bye", 7)
	cfg := core.Config{IngestRouters: 4}
	wantAlerts, wantEvents, wantStats := runSerialCfg(frames, core.Config{})

	path := filepath.Join(t.TempDir(), "scidive.ckpt")
	eng := core.NewShardedEngine(cfg, 2, core.WithEventLog())
	tap := chaoscore.KillAt(len(frames)/2, func() {
		snap, err := eng.Snapshot()
		if err != nil {
			t.Errorf("snapshot at kill: %v", err)
			return
		}
		if err := core.WriteCheckpoint(path, snap); err != nil {
			t.Errorf("write checkpoint: %v", err)
		}
	}, eng.HandleFrame)
	for _, r := range frames {
		tap(r.at, r.frame)
	}
	eng.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read checkpoint: %v", err)
	}
	info, err := core.PeekSnapshotInfo(data)
	if err != nil {
		t.Fatalf("peek checkpoint: %v", err)
	}
	if !info.Sharded || info.Shards != 2 || info.Ingesters != 4 {
		t.Fatalf("peek = %+v, want a 2-shard checkpoint with 4 ingest routers", info)
	}
	if info.Frames != uint64(len(frames)/2) {
		t.Fatalf("checkpoint covers %d frames, kill was at %d", info.Frames, len(frames)/2)
	}

	resumed := core.NewShardedEngine(cfg, 2, core.WithEventLog())
	defer resumed.Close()
	if err := resumed.RestoreSnapshot(data); err != nil {
		t.Fatalf("restore: %v", err)
	}
	for _, r := range frames[info.Frames:] {
		resumed.HandleFrame(r.at, r.frame)
	}
	resumed.Flush()
	compareToBaseline(t, "parallel-ingest kill-at resume", resumed.Alerts(), resumed.Events(), resumed.Stats(),
		wantAlerts, wantEvents, wantStats)
}
