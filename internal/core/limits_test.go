package core

import (
	"net/netip"
	"testing"
	"time"
)

// These tests pin the eviction policy of every state budget in Limits:
// which victim goes, in what order, with what accounting. The diff
// harness proves serial and sharded engines agree under caps; these
// prove the caps themselves do what Limits documents.

func TestSessionCapEvictsLRU(t *testing.T) {
	trails := NewTrailStore(0)
	g := NewEventGenerator(GenConfig{}, trails)
	g.SetLimits(Limits{MaxSessions: 3})
	for i, id := range []string{"a@x", "b@x", "c@x"} {
		g.session(id).lastSeen = time.Duration(i+1) * time.Second
		trails.Get(id, ProtoSIP).Append(&RTPFootprint{})
	}
	g.session("d@x") // at cap: must evict a@x, the least recently touched
	if _, ok := g.sessions["a@x"]; ok {
		t.Error("LRU session survived the cap")
	}
	for _, id := range []string{"b@x", "c@x", "d@x"} {
		if _, ok := g.sessions[id]; !ok {
			t.Errorf("session %s evicted, want only the LRU gone", id)
		}
	}
	if g.ctx.evictedSessions != 1 {
		t.Errorf("evictedSessions = %d, want 1", g.ctx.evictedSessions)
	}
	if trails.Lookup("a@x", ProtoSIP) != nil {
		t.Error("evicted session's trails survived")
	}
}

func TestSessionCapTieBreaksOnCallID(t *testing.T) {
	g := NewEventGenerator(GenConfig{}, NewTrailStore(0))
	g.SetLimits(Limits{MaxSessions: 3})
	// All equally stale: the smaller Call-ID must go, regardless of
	// creation or map iteration order.
	for _, id := range []string{"b@x", "c@x", "a@x"} {
		g.session(id).lastSeen = 0
	}
	g.session("d@x")
	if _, ok := g.sessions["a@x"]; ok {
		t.Error("tie-break kept the smaller Call-ID")
	}
	if _, ok := g.sessions["b@x"]; !ok {
		t.Error("tie-break evicted more than the smallest Call-ID")
	}
}

func TestSessionCapDropsPendingRegistration(t *testing.T) {
	g := NewEventGenerator(GenConfig{}, NewTrailStore(0))
	g.SetLimits(Limits{MaxSessions: 1})
	g.session("reg@x").lastSeen = 0
	g.pendingReg["reg@x"] = "alice@d"
	g.session("new@x")
	if _, ok := g.pendingReg["reg@x"]; ok {
		t.Error("evicted session left its pending registration dangling")
	}
}

func TestEvictStalestIM(t *testing.T) {
	ims := map[string]imRecord{
		"bob@d|10.0.0.2":   {at: 2 * time.Second},
		"alice@d|10.0.0.1": {at: time.Second},
		"carol@d|10.0.0.3": {at: 3 * time.Second},
	}
	if vk := evictStalestIM(ims); vk != "alice@d|10.0.0.1" {
		t.Errorf("evicted %q, want the stalest entry", vk)
	}
	// Tie on age: smaller key goes.
	ims["aaa@d|10.0.0.9"] = imRecord{at: 2 * time.Second}
	if vk := evictStalestIM(ims); vk != "aaa@d|10.0.0.9" {
		t.Errorf("tie-break evicted %q, want the smaller key", vk)
	}
	evictStalestIM(ims)
	evictStalestIM(ims)
	if vk := evictStalestIM(ims); vk != "" {
		t.Errorf("empty map eviction returned %q, want \"\"", vk)
	}
}

func TestEvictStalestSeq(t *testing.T) {
	ep := func(s string) netip.AddrPort { return netip.MustParseAddrPort(s) }
	seqs := map[netip.AddrPort]*seqTrack{
		ep("10.0.0.2:10000"): {at: 2 * time.Second},
		ep("10.0.0.1:10000"): {at: time.Second},
	}
	if !evictStalestSeq(seqs) {
		t.Fatal("eviction reported nothing removed")
	}
	if _, ok := seqs[ep("10.0.0.1:10000")]; ok {
		t.Error("stalest tracker survived")
	}
	// Tie on age: address order, then port order.
	seqs[ep("10.0.0.2:9000")] = &seqTrack{at: 2 * time.Second}
	evictStalestSeq(seqs)
	if _, ok := seqs[ep("10.0.0.2:9000")]; ok {
		t.Error("tie-break kept the smaller endpoint")
	}
	evictStalestSeq(seqs)
	if evictStalestSeq(seqs) {
		t.Error("empty map eviction reported a removal")
	}
}

func TestBindingCapEvictsLeastRecentlyRefreshed(t *testing.T) {
	g := NewEventGenerator(GenConfig{}, NewTrailStore(0))
	g.SetLimits(Limits{MaxBindings: 2})
	ip := netip.MustParseAddr("10.0.0.9")
	g.ApplyBinding("alice@d", ip)
	g.ApplyBinding("bob@d", ip)
	g.ApplyBinding("alice@d", ip) // refresh: alice is now newer than bob
	g.ApplyBinding("carol@d", ip)
	b := g.Bindings()
	if _, ok := b["bob@d"]; ok {
		t.Error("least-recently-refreshed binding survived")
	}
	if _, ok := b["alice@d"]; !ok {
		t.Error("refreshed binding was evicted")
	}
	if g.ctx.evictedBindings != 1 {
		t.Errorf("evictedBindings = %d, want 1", g.ctx.evictedBindings)
	}
}

func TestBindingCapRanksUntrackedOldest(t *testing.T) {
	g := NewEventGenerator(GenConfig{}, NewTrailStore(0))
	g.SetLimits(Limits{MaxBindings: 2})
	// Entries written before age tracking (direct map writes, as older
	// tests do) have no bindingAge entry and must rank oldest; ties on
	// the missing age break to the smaller AOR.
	g.bindings["zeta@d"] = testSrcAddr()
	g.bindings["alpha@d"] = testSrcAddr()
	g.ApplyBinding("new@d", testSrcAddr())
	b := g.Bindings()
	if _, ok := b["alpha@d"]; ok {
		t.Error("tie-break kept the smaller AOR")
	}
	if _, ok := b["zeta@d"]; !ok {
		t.Error("tie-break evicted more than the smallest untracked AOR")
	}
}

func TestRuleEngineAlertCap(t *testing.T) {
	re := NewRuleEngine([]Rule{{
		Name:     "jump",
		Severity: SeverityWarning,
		Steps:    []Step{{Type: EvRTPSeqJump}},
	}})
	re.maxAlerts = 2
	fire := func(sess string, at time.Duration) { re.Feed(Event{At: at, Type: EvRTPSeqJump, Session: sess}) }

	fire("s1", 1*time.Second)
	fire("s2", 2*time.Second)
	fire("s3", 3*time.Second) // evicts the s1 alert
	alerts := re.Alerts()
	if len(alerts) != 2 || alerts[0].Session != "s2" || alerts[1].Session != "s3" {
		t.Fatalf("alerts after eviction = %v, want oldest dropped", alerts)
	}
	if re.evicted != 1 {
		t.Errorf("evicted = %d, want 1", re.evicted)
	}

	// The dedup index must have been rewritten: a repeat for s2 bumps the
	// surviving s2 alert, not whatever now occupies its old slot.
	fire("s2", 4*time.Second)
	alerts = re.Alerts()
	if alerts[0].Count != 2 || alerts[1].Count != 1 {
		t.Errorf("repeat after eviction bumped the wrong alert: %v", alerts)
	}

	// The evicted alert's suppression is forgotten with it: s1 re-fires
	// as a fresh alert (evicting s2, now the oldest).
	fire("s1", 5*time.Second)
	alerts = re.Alerts()
	if len(alerts) != 2 || alerts[0].Session != "s3" || alerts[1].Session != "s1" {
		t.Fatalf("re-fire after eviction = %v, want s1 back as newest", alerts)
	}
	if alerts[1].Count != 1 {
		t.Errorf("re-fired alert Count = %d, want a fresh 1", alerts[1].Count)
	}
	if re.evicted != 2 {
		t.Errorf("evicted = %d, want 2", re.evicted)
	}
}

func TestAlertEvictionKeepsDedupAligned(t *testing.T) {
	re := NewRuleEngine([]Rule{{
		Name:     "jump",
		Severity: SeverityWarning,
		Steps:    []Step{{Type: EvRTPSeqJump}},
	}})
	re.maxAlerts = 3
	fire := func(sess string, at time.Duration) { re.Feed(Event{At: at, Type: EvRTPSeqJump, Session: sess}) }

	// Fill the cap, then push it over repeatedly: every new session past
	// the third evicts the oldest survivor.
	for i, sess := range []string{"s1", "s2", "s3", "s4", "s5", "s6"} {
		fire(sess, time.Duration(i)*time.Second)
	}
	alerts := re.Alerts()
	if len(alerts) != 3 || alerts[0].Session != "s4" || alerts[2].Session != "s6" {
		t.Fatalf("alerts after 3 evictions = %v, want s4..s6", alerts)
	}
	if re.evicted != 3 {
		t.Fatalf("evicted = %d, want 3", re.evicted)
	}

	// After repeated evictions every surviving dedup entry must still
	// point at its own alert: a repeat for each survivor bumps exactly
	// that survivor's Count, never a neighbor's.
	for _, sess := range []string{"s5", "s6", "s6", "s4"} {
		fire(sess, 10*time.Second)
	}
	alerts = re.Alerts()
	want := map[string]int{"s4": 2, "s5": 2, "s6": 3}
	for _, a := range alerts {
		if a.Count != want[a.Session] {
			t.Errorf("session %s Count = %d, want %d", a.Session, a.Count, want[a.Session])
		}
	}

	// Survivor bumps must not have disturbed eviction accounting, and a
	// fresh session must still evict the current oldest (s4).
	fire("s7", 11*time.Second)
	alerts = re.Alerts()
	if len(alerts) != 3 || alerts[0].Session != "s5" || alerts[2].Session != "s7" {
		t.Fatalf("alerts after fresh fire = %v, want s5, s6, s7", alerts)
	}
	if re.evicted != 4 {
		t.Errorf("evicted = %d, want 4", re.evicted)
	}
}

func TestEngineEventLogCap(t *testing.T) {
	e := NewEngine(Config{Limits: Limits{MaxRetainedEvents: 3}}, WithEventLog())
	for i := 0; i < 5; i++ {
		e.logEvent(Event{At: time.Duration(i) * time.Second, Type: EvRTPNewFlow, Session: "s"})
	}
	evs := e.Events()
	if len(evs) != 3 {
		t.Fatalf("retained %d events, want 3", len(evs))
	}
	if evs[0].At != 2*time.Second || evs[2].At != 4*time.Second {
		t.Errorf("retained window = [%v..%v], want the newest three", evs[0].At, evs[2].At)
	}
	if got := e.Stats().EventsEvicted; got != 2 {
		t.Errorf("EventsEvicted = %d, want 2", got)
	}
}

func TestEngineEventLogUncapped(t *testing.T) {
	e := NewEngine(Config{}, WithEventLog())
	for i := 0; i < 100; i++ {
		e.logEvent(Event{At: time.Duration(i), Type: EvRTPNewFlow, Session: "s"})
	}
	if len(e.Events()) != 100 {
		t.Errorf("uncapped log retained %d events, want all 100", len(e.Events()))
	}
	if got := e.Stats().EventsEvicted; got != 0 {
		t.Errorf("EventsEvicted = %d without a cap, want 0", got)
	}
}
