package core

import (
	"net/netip"
	"strings"
	"testing"
	"time"

	"scidive/internal/accounting"
	"scidive/internal/packet"
	"scidive/internal/rtp"
	"scidive/internal/sip"
)

var (
	dSrcIP = netip.MustParseAddr("10.0.0.1")
	dDstIP = netip.MustParseAddr("10.0.0.2")
)

// frameFor wraps a UDP payload in Ethernet/IP framing for distiller tests.
func frameFor(t *testing.T, srcPort, dstPort uint16, payload []byte, mtu int) [][]byte {
	t.Helper()
	frames, err := packet.BuildUDPFrames(packet.UDPFrameSpec{
		SrcMAC: packet.MAC{2, 0, 0, 0, 0, 1}, DstMAC: packet.MAC{2, 0, 0, 0, 0, 2},
		SrcIP: dSrcIP, DstIP: dDstIP,
		SrcPort: srcPort, DstPort: dstPort,
		IPID: 99, Payload: payload,
	}, mtu)
	if err != nil {
		t.Fatalf("BuildUDPFrames: %v", err)
	}
	return frames
}

func sipBytes(t *testing.T) []byte {
	t.Helper()
	from, _ := sip.ParseAddress("<sip:alice@10.0.0.1>;tag=t1")
	to, _ := sip.ParseAddress("<sip:bob@10.0.0.2>")
	req := sip.NewRequest(sip.RequestSpec{
		Method: sip.MethodInvite, RequestURI: "sip:bob@10.0.0.2",
		From: from, To: to, CallID: "dist@test",
		CSeq: sip.CSeq{Seq: 1, Method: sip.MethodInvite},
		Via:  sip.Via{Transport: "UDP", SentBy: "10.0.0.1:5060", Params: map[string]string{"branch": "z9hG4bKd"}},
	})
	return req.Marshal()
}

func TestDistillSIP(t *testing.T) {
	d := NewDistiller()
	frames := frameFor(t, 5060, 5060, sipBytes(t), 0)
	fp := d.Distill(time.Second, frames[0])
	sf, ok := fp.(*SIPFootprint)
	if !ok {
		t.Fatalf("footprint = %T", fp)
	}
	if sf.Msg.CallID() != "dist@test" {
		t.Errorf("Call-ID = %q", sf.Msg.CallID())
	}
	if len(sf.Malformed) != 0 {
		t.Errorf("clean message flagged: %v", sf.Malformed)
	}
	src, dst := sf.Flow()
	if src.Port() != 5060 || dst.Port() != 5060 || src.Addr() != dSrcIP {
		t.Errorf("flow = %v -> %v", src, dst)
	}
	if d.Stats().SIP != 1 {
		t.Errorf("stats = %+v", d.Stats())
	}
}

func TestDistillFragmentedSIP(t *testing.T) {
	// A SIP message bigger than the MTU arrives as IP fragments; the
	// distiller must reassemble before parsing (a stated Distiller duty).
	d := NewDistiller()
	big := sipBytes(t)
	// Pad the body to exceed a tiny MTU.
	m, err := sip.ParseMessage(big)
	if err != nil {
		t.Fatal(err)
	}
	m.Body = []byte(strings.Repeat("x", 2000))
	m.Headers.Set(sip.HdrContentType, "text/plain")
	frames := frameFor(t, 5060, 5060, m.Marshal(), 576)
	if len(frames) < 2 {
		t.Fatalf("expected fragmentation, got %d frame(s)", len(frames))
	}
	var got Footprint
	for i, fr := range frames {
		fp := d.Distill(time.Duration(i)*time.Millisecond, fr)
		if fp != nil {
			got = fp
		}
	}
	sf, ok := got.(*SIPFootprint)
	if !ok {
		t.Fatalf("reassembled footprint = %T", got)
	}
	if len(sf.Msg.Body) != 2000 {
		t.Errorf("body = %d bytes", len(sf.Msg.Body))
	}
	if d.Stats().Fragments == 0 {
		t.Error("no fragments counted")
	}
}

func TestDistillRTPAndRTCP(t *testing.T) {
	d := NewDistiller()
	pkt := rtp.Packet{Header: rtp.Header{Seq: 7, SSRC: 9}, Payload: make([]byte, 160)}
	buf, _ := pkt.Marshal()
	fp := d.Distill(0, frameFor(t, 40000, 40000, buf, 0)[0])
	rf, ok := fp.(*RTPFootprint)
	if !ok {
		t.Fatalf("footprint = %T", fp)
	}
	if rf.Header.Seq != 7 || rf.PayloadLen != 160 {
		t.Errorf("rtp footprint = %+v", rf)
	}

	rtcpBuf, _ := rtp.MarshalCompound([]rtp.RTCPPacket{&rtp.ReceiverReport{SSRC: 9}})
	fp = d.Distill(0, frameFor(t, 40001, 40001, rtcpBuf, 0)[0])
	cf, ok := fp.(*RTCPFootprint)
	if !ok {
		t.Fatalf("rtcp footprint = %T", fp)
	}
	if len(cf.Packets) != 1 {
		t.Errorf("rtcp packets = %d", len(cf.Packets))
	}
}

func TestDistillGarbageOnRTPPort(t *testing.T) {
	d := NewDistiller()
	garbage := []byte{0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b}
	fp := d.Distill(0, frameFor(t, 40666, 40000, garbage, 0)[0])
	raw, ok := fp.(*RawFootprint)
	if !ok {
		t.Fatalf("footprint = %T", fp)
	}
	if raw.OnPort != ProtoRTP {
		t.Errorf("OnPort = %v", raw.OnPort)
	}
	if raw.Len != len(garbage) {
		t.Errorf("Len = %d", raw.Len)
	}
}

func TestDistillAccounting(t *testing.T) {
	d := NewDistiller()
	txn := accounting.Txn{Kind: accounting.TxnStart, CallID: "c1", From: "a@d", To: "b@d", FromIP: dSrcIP}
	fp := d.Distill(0, frameFor(t, 7010, accounting.DefaultPort, txn.Marshal(), 0)[0])
	af, ok := fp.(*AcctFootprint)
	if !ok {
		t.Fatalf("footprint = %T", fp)
	}
	if af.Txn.CallID != "c1" || af.Txn.Kind != accounting.TxnStart {
		t.Errorf("txn = %+v", af.Txn)
	}
}

func TestDistillIgnoresUnmonitoredPorts(t *testing.T) {
	d := NewDistiller()
	if fp := d.Distill(0, frameFor(t, 1234, 80, []byte("GET / HTTP/1.1"), 0)[0]); fp != nil {
		t.Errorf("footprint = %v for web traffic", fp)
	}
	if d.Stats().Ignored != 1 {
		t.Errorf("Ignored = %d", d.Stats().Ignored)
	}
}

func TestDistillUndecodableFrames(t *testing.T) {
	d := NewDistiller()
	if fp := d.Distill(0, []byte{1, 2, 3}); fp != nil {
		t.Error("footprint from 3-byte frame")
	}
	if d.Stats().DecodeError != 1 {
		t.Errorf("DecodeError = %d", d.Stats().DecodeError)
	}
}

func TestCheckSIPFormat(t *testing.T) {
	clean, err := sip.ParseMessage(sipBytes(t))
	if err != nil {
		t.Fatal(err)
	}
	if v := CheckSIPFormat(clean); len(v) != 0 {
		t.Errorf("clean message: %v", v)
	}

	dup, _ := sip.ParseMessage(sipBytes(t))
	dup.Headers.Add(sip.HdrFrom, "<sip:evil@10.0.0.66>;tag=x")
	if v := CheckSIPFormat(dup); len(v) != 1 || !strings.Contains(v[0], "duplicate From") {
		t.Errorf("duplicate From: %v", v)
	}

	badMF, _ := sip.ParseMessage(sipBytes(t))
	badMF.Headers.Set(sip.HdrMaxForwards, "lots")
	if v := CheckSIPFormat(badMF); len(v) != 1 || !strings.Contains(v[0], "Max-Forwards") {
		t.Errorf("bad Max-Forwards: %v", v)
	}

	badFrom, _ := sip.ParseMessage(sipBytes(t))
	badFrom.Headers.Set(sip.HdrFrom, ">>>not an address<<<")
	if v := CheckSIPFormat(badFrom); len(v) == 0 {
		t.Error("unparseable From not flagged")
	}
}
