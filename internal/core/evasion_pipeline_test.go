package core_test

// Full-pipeline hostile-input suite: the evasion scenarios and the
// torture corpus replayed through the serial and sharded engines must
// never panic, must account every frame in the distiller's terminal
// ledger, and must classify identically at every shard count.

import (
	"testing"
	"time"

	"scidive/internal/chaoscore"
	"scidive/internal/core"
)

// engineLedger checks the distiller's never-silently-dropped invariant:
// every frame and every stream-extracted message lands in exactly one
// terminal counter.
func engineLedger(t *testing.T, label string, st core.DistillerStats) {
	t.Helper()
	terminal := st.DecodeError + st.Fragments + st.Ignored + st.Streamed +
		st.SIP + st.RTP + st.RTCP + st.Acct + st.Raw + st.Mismatched
	if terminal != st.Frames+st.StreamMsgs {
		t.Errorf("%s: ledger broken: terminal counters sum to %d, inputs %d (%+v)",
			label, terminal, st.Frames+st.StreamMsgs, st)
	}
}

// TestStreamArmLedger pins the stream-arm accounting fix: TCP segments
// accepted into the stream arm count as Streamed (terminal for the
// segment) and each extracted message as a StreamMsgs input — without
// either, stream traffic vanishes from the ledger.
func TestStreamArmLedger(t *testing.T) {
	frames := scenarioFrames(t, "tcptrunk", 7)
	eng := core.NewEngine(core.Config{})
	for _, r := range frames {
		eng.HandleFrame(r.at, r.frame)
	}
	st := eng.DistillerStats()
	if st.Streamed == 0 {
		t.Error("TCP trunk scenario accepted no segments into the stream arm")
	}
	if st.StreamMsgs == 0 {
		t.Error("TCP trunk scenario extracted no stream messages")
	}
	engineLedger(t, "tcptrunk", st)
}

// TestTortureReplayPipeline replays the torture scenarios — the RFC
// 4475-style corpus fired at both the signaling path and the media port,
// over UDP datagrams and the TCP trunk — through the full pipeline. The
// serial engine's ledger must balance exactly, and every shard count must
// classify shipped traffic identically to the serial engine.
func TestTortureReplayPipeline(t *testing.T) {
	for _, name := range []string{"evasion-torture", "evasion-torture-tcp"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			frames := scenarioFrames(t, name, 7)

			serial := core.NewEngine(core.Config{})
			for _, r := range frames {
				serial.HandleFrame(r.at, r.frame)
			}
			ss := serial.DistillerStats()
			engineLedger(t, name+" serial", ss)
			if ss.Mismatched == 0 {
				t.Errorf("%s: no frames reclassified; the corpus never hit the ladder", name)
			}
			if ss.Raw == 0 {
				t.Errorf("%s: no raw footprints; the broken corpus entries vanished", name)
			}

			for _, shards := range diffShardCounts {
				eng := core.NewShardedEngine(core.Config{}, shards)
				for _, r := range frames {
					eng.HandleFrame(r.at, r.frame)
				}
				eng.Flush()
				gs := eng.DistillerStats()
				eng.Close()
				// The router drops unclaimed and undecodable traffic before
				// shard distillers see it, so only the classification counters
				// are serial-comparable — and those must match exactly.
				if gs.SIP != ss.SIP || gs.RTP != ss.RTP || gs.RTCP != ss.RTCP ||
					gs.Acct != ss.Acct || gs.Raw != ss.Raw || gs.Mismatched != ss.Mismatched {
					t.Errorf("%s shards=%d: classification diverged:\nsharded %+v\nserial  %+v",
						name, shards, gs, ss)
				}
			}
		})
	}
}

// TestEvasionScenarioDifferentials holds every evasion scenario to the
// serial engine's exact alerts, events, and stats at each shard count —
// the self-alert streams the goldens pin must survive sharding.
func TestEvasionScenarioDifferentials(t *testing.T) {
	for _, name := range []string{
		"evasion-rtptunnel", "evasion-rtptunnel-tcp",
		"evasion-sipinrtp", "evasion-sipinrtp-tcp",
		"evasion-torture", "evasion-torture-tcp",
	} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			diffRuns(t, name, scenarioFrames(t, name, 7))
		})
	}
}

// TestHostileReplayChaos replays the evasion scenarios through the
// corrupting tap: hostile traffic with random byte flips on top must
// still never crash either engine, must keep serial and sharded
// byte-equal, and must keep the serial ledger balanced.
func TestHostileReplayChaos(t *testing.T) {
	for _, name := range []string{
		"evasion-rtptunnel", "evasion-sipinrtp", "evasion-torture", "evasion-torture-tcp",
	} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			frames := scenarioFrames(t, name, 7)
			var corrupted []rec
			tap := chaoscore.CorruptingTap(42, 3, func(at time.Duration, frame []byte) {
				corrupted = append(corrupted, rec{at: at, frame: frame})
			})
			for _, r := range frames {
				tap(r.at, r.frame)
			}
			diffRuns(t, "corrupted "+name, corrupted)

			eng := core.NewEngine(core.Config{})
			for _, r := range corrupted {
				eng.HandleFrame(r.at, r.frame)
			}
			engineLedger(t, "corrupted "+name, eng.DistillerStats())
		})
	}
}
