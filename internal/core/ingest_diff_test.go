package core_test

// Differential harness for the parallel ingest front end: a sharded
// engine with N ingest routers must stay byte-identical to the serial
// engine — same alerts, same events, same stats, in the same order — at
// every (ingesters × shards) point. The decode lanes race each other
// freely; the sequencer's strict rotation is what these tests hold to
// account.

import (
	"fmt"
	"testing"
	"time"

	"scidive/internal/core"
	"scidive/internal/experiments"
)

var (
	diffIngestCounts       = []int{1, 2, 4}
	diffIngestShardCounts  = []int{1, 2, 8}
	diffIngestRandomCounts = []int{2, 4} // ingesters=1 is the synchronous router, covered by sharded_diff_test.go
)

// diffIngestRunsCfg compares the serial engine against every
// (ingesters × shards) combination on one frame stream.
func diffIngestRunsCfg(t *testing.T, label string, frames []rec, cfg core.Config, ingCounts, shardCounts []int) {
	t.Helper()
	wantAlerts, wantEvents, wantStats := runSerialCfg(frames, cfg)
	for _, ing := range ingCounts {
		for _, shards := range shardCounts {
			icfg := cfg
			icfg.IngestRouters = ing
			gotAlerts, gotEvents, gotStats := runShardedCfg(frames, shards, icfg)
			tag := fmt.Sprintf("%s ingesters=%d shards=%d", label, ing, shards)
			if len(gotEvents) != len(wantEvents) {
				t.Errorf("%s: %d events, serial has %d", tag, len(gotEvents), len(wantEvents))
			} else {
				for i := range wantEvents {
					if eventKey(gotEvents[i]) != eventKey(wantEvents[i]) {
						t.Errorf("%s: event %d = %s, want %s", tag, i, eventKey(gotEvents[i]), eventKey(wantEvents[i]))
						break
					}
				}
			}
			if len(gotAlerts) != len(wantAlerts) {
				t.Errorf("%s: %d alerts, serial has %d\n got: %v\nwant: %v",
					tag, len(gotAlerts), len(wantAlerts), alertKeys(gotAlerts), alertKeys(wantAlerts))
			} else {
				for i := range wantAlerts {
					if alertKey(gotAlerts[i]) != alertKey(wantAlerts[i]) {
						t.Errorf("%s: alert %d = %s, want %s", tag, i, alertKey(gotAlerts[i]), alertKey(wantAlerts[i]))
						break
					}
				}
			}
			if gotStats != wantStats {
				t.Errorf("%s: stats %+v, serial %+v", tag, gotStats, wantStats)
			}
		}
	}
}

// TestIngestDiffScenarios replays every scenario through the parallel
// ingest front end at ingesters {1,2,4} × shards {1,2,8}.
func TestIngestDiffScenarios(t *testing.T) {
	for _, name := range experiments.ScenarioNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			diffIngestRunsCfg(t, name, scenarioFrames(t, name, 7), core.Config{},
				diffIngestCounts, diffIngestShardCounts)
		})
	}
}

// TestIngestDiffRandomInterleavings drives the parallel front end with
// the seeded random workloads of sharded_diff_test.go: overlapping
// calls, media port reuse, attacks, IP fragmentation (exercising the
// sequencer's full-replay fragment path) and junk.
func TestIngestDiffRandomInterleavings(t *testing.T) {
	seeds := 150
	if testing.Short() {
		seeds = 25
	}
	workers := 8
	jobs := make(chan int64, seeds)
	for s := 0; s < seeds; s++ {
		jobs <- int64(s)
	}
	close(jobs)
	for w := 0; w < workers; w++ {
		t.Run(fmt.Sprintf("worker%d", w), func(t *testing.T) {
			t.Parallel()
			for seed := range jobs {
				frames := synthFrames(seed)
				diffIngestRunsCfg(t, fmt.Sprintf("seed %d", seed), frames, core.Config{},
					diffIngestRandomCounts, []int{2, 8})
				if t.Failed() {
					return
				}
			}
		})
	}
}

// TestIngestDiffFragmentFloodWithLimits: the reassembly-exhaustion flood
// under tight state budgets, through the ingest tier. Fragment digests
// replay the full synchronous path, and the clock-advance digests must
// expire the same fragment groups at the same stream positions.
func TestIngestDiffFragmentFloodWithLimits(t *testing.T) {
	frames := scenarioFrames(t, "fragflood", 7)
	cfg := core.Config{Limits: core.Limits{
		MaxSessions:    32,
		MaxFragGroups:  8,
		MaxIMHistories: 4,
		MaxSeqTrackers: 8,
		MaxBindings:    4,
	}}
	diffIngestRunsCfg(t, "fragflood+limits", frames, cfg, diffIngestRandomCounts, []int{2, 8})
}

// TestIngestDiffExpiryInterleaved pins the sequencer's session-expiry
// cadence: the gcEvery sweep must run at exactly the frame positions the
// synchronous router would run it at, even though frames now arrive in
// 64-frame batches.
func TestIngestDiffExpiryInterleaved(t *testing.T) {
	cfg := core.Config{SessionTimeout: 2 * time.Second}
	frames := expiryFrames(3)
	diffIngestRunsCfg(t, "expiry seed 3", frames, cfg, diffIngestRandomCounts, []int{2})
	_, _, stats := runSerialCfg(frames, cfg)
	if stats.SessionsEvicted == 0 {
		t.Fatalf("no sessions expired (frames=%d); the test exercises nothing", len(frames))
	}
}

// TestIngestLedgerReconciles checks the per-ingester ledger: after a
// Flush every frame dealt to a lane has been decoded and sequenced, the
// lane totals sum to the engine's frame count, and the downstream
// per-shard routed == processed + shed ledger still balances.
func TestIngestLedgerReconciles(t *testing.T) {
	frames := scenarioFrames(t, "bye", 7)
	for _, ing := range diffIngestRandomCounts {
		eng := core.NewShardedEngine(core.Config{IngestRouters: ing}, 8, core.WithEventLog())
		for _, r := range frames {
			eng.HandleFrame(r.at, r.frame)
		}
		eng.Flush()
		health := eng.IngestHealth()
		if len(health) != ing {
			t.Fatalf("ingesters=%d: IngestHealth has %d lanes", ing, len(health))
		}
		var fed uint64
		for _, h := range health {
			if h.FramesFed != h.FramesDecoded || h.FramesFed != h.FramesSequenced {
				t.Errorf("ingesters=%d lane %d: ledger fed=%d decoded=%d sequenced=%d does not reconcile",
					ing, h.Ingester, h.FramesFed, h.FramesDecoded, h.FramesSequenced)
			}
			fed += h.FramesFed
		}
		st := eng.Stats()
		if fed != uint64(st.Frames) {
			t.Errorf("ingesters=%d: lanes fed %d frames, engine counted %d", ing, fed, st.Frames)
		}
		for _, sh := range eng.ShardHealth() {
			if sh.FramesRouted != sh.FramesProcessed+sh.FramesShed {
				t.Errorf("ingesters=%d shard %d: routed %d != processed %d + shed %d",
					ing, sh.Shard, sh.FramesRouted, sh.FramesProcessed, sh.FramesShed)
			}
		}
		eng.Close()
		if got := eng.IngestHealth(); len(got) != ing {
			t.Errorf("ingesters=%d: IngestHealth unreadable after Close", ing)
		}
	}
	// The synchronous router reports no ingest lanes.
	eng := core.NewShardedEngine(core.Config{}, 2)
	defer eng.Close()
	if h := eng.IngestHealth(); h != nil {
		t.Errorf("synchronous router reports ingest lanes: %v", h)
	}
}
