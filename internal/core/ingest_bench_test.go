package core_test

// go test -bench . grid for the parallel ingest front end, over the
// same mixed-call workload the benchreport scaling gate replays. The
// authoritative regression gate is `benchreport -exp sharded` (it
// verifies alert output and enforces the scaling-aware speedup floor);
// these benchmarks exist for quick -benchmem iteration on the handoff.

import (
	"fmt"
	"testing"

	"scidive/internal/core"
	"scidive/internal/experiments"
)

func BenchmarkSerialEngine(b *testing.B) {
	recs := experiments.MixedCallWorkload(64, 8, 1)
	b.SetBytes(int64(len(recs)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := core.NewEngine(core.Config{})
		for _, r := range recs {
			eng.HandleFrame(r.Time, r.Frame)
		}
	}
}

func BenchmarkParallelIngest(b *testing.B) {
	recs := experiments.MixedCallWorkload(64, 8, 1)
	for _, ing := range []int{1, 2, 4} {
		for _, shards := range []int{2, 8} {
			b.Run(fmt.Sprintf("ingest=%d/shards=%d", ing, shards), func(b *testing.B) {
				b.SetBytes(int64(len(recs)))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					eng := core.NewShardedEngine(core.Config{IngestRouters: ing}, shards)
					for _, r := range recs {
						eng.HandleFrame(r.Time, r.Frame)
					}
					eng.Close()
				}
			})
		}
	}
}
