package core

import (
	"fmt"
	"net/netip"
	"testing"
	"time"

	"scidive/internal/packet"
	"scidive/internal/rtp"
	"scidive/internal/sdp"
	"scidive/internal/sip"
)

// sipSteadyStateAllocBudget is the documented per-frame allocation
// budget for steady-state SIP traffic (a retransmitted in-dialog
// INVITE; measures 17 as of this writing). SIP cannot be zero-alloc:
// the parsed Message outlives the frame (it is retained by the session
// trail), so each frame pays for the Message box, its header storage,
// the body copy, and the address parses applySIP performs per sighting.
// The pooled parser's interning keeps the header strings themselves
// amortized-free. Raising this number is a hot-path regression;
// lowering it is a win — update the comment either way.
const sipSteadyStateAllocBudget = 20

// allocFrame builds one UDP frame carrying payload between fixed hosts.
func allocFrame(t testing.TB, srcPort, dstPort uint16, payload []byte) []byte {
	t.Helper()
	frames, err := packet.BuildUDPFrames(packet.UDPFrameSpec{
		SrcMAC: packet.MAC{2, 0, 0, 0, 0, 1}, DstMAC: packet.MAC{2, 0, 0, 0, 0, 2},
		SrcIP: netip.MustParseAddr("10.0.0.1"), DstIP: netip.MustParseAddr("10.0.0.2"),
		SrcPort: srcPort, DstPort: dstPort, IPID: 1, Payload: payload,
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	return frames[0]
}

// allocRTPFrame builds one representative media frame (fixed seq: a
// constant frame replayed forever is a well-behaved stream, so the
// pipeline reaches true steady state).
func allocRTPFrame(t testing.TB) []byte {
	t.Helper()
	pkt := rtp.Packet{
		Header:  rtp.Header{PayloadType: rtp.PayloadTypePCMU, Seq: 100, Timestamp: 16000, SSRC: 7},
		Payload: make([]byte, 160),
	}
	buf, err := pkt.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return allocFrame(t, 40000, 40000, buf)
}

// allocRTCPFrame builds one receiver-report frame (no BYE, so replaying
// it generates no events).
func allocRTCPFrame(t testing.TB) []byte {
	t.Helper()
	buf, err := rtp.MarshalCompound([]rtp.RTCPPacket{
		&rtp.ReceiverReport{SSRC: 7, Reports: []rtp.ReportBlock{{SSRC: 9}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return allocFrame(t, 40001, 40001, buf)
}

// allocSIPFrame builds a dialog-forming INVITE; replayed, every sighting
// after the first is a retransmission that changes no dialog state and
// fires no events.
func allocSIPFrame(t testing.TB) []byte {
	t.Helper()
	from, err := sip.ParseAddress("<sip:alice@10.0.0.1>;tag=t1")
	if err != nil {
		t.Fatal(err)
	}
	to, err := sip.ParseAddress("<sip:bob@10.0.0.2>")
	if err != nil {
		t.Fatal(err)
	}
	m := sip.NewRequest(sip.RequestSpec{
		Method:     sip.MethodInvite,
		RequestURI: "sip:bob@10.0.0.2",
		From:       from, To: to,
		CallID:   "steady@test",
		CSeq:     sip.CSeq{Seq: 1, Method: sip.MethodInvite},
		Via:      sip.Via{Transport: "UDP", SentBy: "10.0.0.1:5060", Params: map[string]string{"branch": "z9hG4bKa"}},
		Body:     sdp.NewAudioSession("alice", netip.MustParseAddr("10.0.0.1"), 40000).Marshal(),
		BodyType: "application/sdp",
	})
	return allocFrame(t, 5060, 5060, m.Marshal())
}

// steadyAllocs warms the pipeline with warmup frames (filling trails,
// session tables, interners and pools), then measures allocations per
// frame. testing.AllocsPerRun floors the average, so amortized costs
// (pool boxes, rare map growth) that stay well under one per frame
// report as zero — which is the contract: nothing on the per-frame path
// may allocate.
func steadyAllocs(feed func(at time.Duration, frame []byte), frame []byte, warmup int) float64 {
	at := time.Duration(0)
	step := 20 * time.Millisecond
	for i := 0; i < warmup; i++ {
		feed(at, frame)
		at += step
	}
	return testing.AllocsPerRun(400, func() {
		feed(at, frame)
		at += step
	})
}

// TestSteadyStateAllocs is the tentpole's enforcement: steady-state
// media processing performs zero heap allocations per frame, serial and
// sharded, and SIP stays within its documented budget. The warmup
// saturates the trail ring (MaxTrailLen entries) so appends overwrite in
// place.
func TestSteadyStateAllocs(t *testing.T) {
	rtpFrame := allocRTPFrame(t)
	rtcpFrame := allocRTCPFrame(t)
	sipFrame := allocSIPFrame(t)
	// Past the 4096-entry trail bound, so the ring is saturated.
	const warmup = 5000

	t.Run("serial", func(t *testing.T) {
		for _, tc := range []struct {
			name   string
			frame  []byte
			budget float64
		}{
			{"rtp", rtpFrame, 0},
			{"rtcp", rtcpFrame, 0},
			{"sip", sipFrame, sipSteadyStateAllocBudget},
		} {
			t.Run(tc.name, func(t *testing.T) {
				eng := NewEngine(Config{})
				got := steadyAllocs(eng.HandleFrame, tc.frame, warmup)
				t.Logf("steady-state %s frame: %.1f allocs/op (budget %.0f)", tc.name, got, tc.budget)
				if got > tc.budget {
					t.Errorf("steady-state %s frame: %.1f allocs/op, budget %.0f", tc.name, got, tc.budget)
				}
			})
		}
	})

	t.Run("sharded", func(t *testing.T) {
		// The router retains shipped frames, so feeders normally must not
		// reuse buffers; replaying one immutable frame is safe because its
		// bytes never change. IngestRouters > 1 adds the partitioned front
		// end: decode lanes, digest batches and the sequencer must all run
		// off their fixed pools. AllocsPerRun is process-wide, so a single
		// allocating goroutine anywhere in the tier fails the zero budget.
		for _, ing := range []int{1, 2, 4} {
			for _, tc := range []struct {
				name  string
				frame []byte
			}{
				{"rtp", rtpFrame},
				{"rtcp", rtcpFrame},
			} {
				t.Run(fmt.Sprintf("ingesters=%d/%s", ing, tc.name), func(t *testing.T) {
					eng := NewShardedEngine(Config{IngestRouters: ing}, 2)
					defer eng.Close()
					got := steadyAllocs(eng.HandleFrame, tc.frame, warmup)
					if got > 0 {
						t.Errorf("steady-state sharded %s frame (ingesters=%d): %.1f allocs/op, want 0", tc.name, ing, got)
					}
				})
			}
		}
	})
}
