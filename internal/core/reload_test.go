package core_test

// Live ruleset hot-reload tests. The contract under test: ReloadRules
// re-parses and swaps the ruleset at a frame boundary without losing a
// frame; rules present in BOTH rulesets with identical definitions carry
// their in-flight partial matches forward; removed or edited rules drop
// theirs and the drop is surfaced as a rule-reload self-alert; and a
// reload of an UNCHANGED ruleset is a perfect no-op (the reload-vs-static
// differential). The SIGHUP storm variant runs under -race in CI.

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"scidive/internal/core"
	"scidive/internal/experiments"
)

// reloadPoints spreads reload positions across a trace.
func reloadPoints(n int) []int {
	return killPoints(n, []float64{1.0 / 4, 1.0 / 2, 3.0 / 4})
}

// TestReloadUnchangedSerialDifferential reloads the identical ruleset at
// several frame boundaries of every scenario; the serial run must stay
// byte-identical to a never-reloaded run, with zero partials dropped.
func TestReloadUnchangedSerialDifferential(t *testing.T) {
	for _, name := range experiments.ScenarioNames() {
		if testing.Short() && !shortKillScenarios[name] {
			continue
		}
		frames := scenarioFrames(t, name, 7)
		wantAlerts, wantEvents, wantStats := runSerialCfg(frames, core.Config{})
		eng := core.NewEngine(core.Config{}, core.WithEventLog())
		points := reloadPoints(len(frames))
		next := 0
		for i, r := range frames {
			if next < len(points) && i == points[next] {
				next++
				dropped, err := eng.ReloadRules(core.DefaultRuleset())
				if err != nil {
					t.Fatalf("%s: reload at frame %d: %v", name, i, err)
				}
				if dropped != 0 {
					t.Errorf("%s: unchanged reload at frame %d dropped %d partials", name, i, dropped)
				}
			}
			eng.HandleFrame(r.at, r.frame)
		}
		compareToBaseline(t, name+" serial reload-vs-static", eng.Alerts(), eng.Events(), eng.Stats(),
			wantAlerts, wantEvents, wantStats)
	}
}

// TestReloadUnchangedShardedDifferential is the sharded analogue at 2 and
// 8 shards, with and without parallel ingest: mid-stream reloads of the
// unchanged ruleset must leave the output identical to the serial
// never-reloaded baseline, and every shard ledger must reconcile.
func TestReloadUnchangedShardedDifferential(t *testing.T) {
	frames := scenarioFrames(t, "bye", 7)
	wantAlerts, wantEvents, wantStats := runSerialCfg(frames, core.Config{})
	for _, geo := range []struct{ shards, ingest int }{{2, 1}, {8, 1}, {8, 2}} {
		eng := core.NewShardedEngine(core.Config{IngestRouters: geo.ingest}, geo.shards, core.WithEventLog())
		points := reloadPoints(len(frames))
		next := 0
		for i, r := range frames {
			if next < len(points) && i == points[next] {
				next++
				dropped, err := eng.ReloadRules(core.DefaultRuleset())
				if err != nil {
					t.Fatalf("shards=%d ingest=%d: reload at frame %d: %v", geo.shards, geo.ingest, i, err)
				}
				if dropped != 0 {
					t.Errorf("shards=%d ingest=%d: unchanged reload at frame %d dropped %d partials",
						geo.shards, geo.ingest, i, dropped)
				}
			}
			eng.HandleFrame(r.at, r.frame)
		}
		eng.Flush()
		for _, h := range eng.ShardHealth() {
			if h.FramesRouted != h.FramesProcessed+h.FramesShed {
				t.Errorf("shards=%d ingest=%d: shard %d ledger does not reconcile after reloads: routed=%d processed=%d shed=%d",
					geo.shards, geo.ingest, h.Shard, h.FramesRouted, h.FramesProcessed, h.FramesShed)
			}
		}
		compareToBaseline(t, fmt.Sprintf("shards=%d ingest=%d reload-vs-static", geo.shards, geo.ingest),
			eng.Alerts(), eng.Events(), eng.Stats(), wantAlerts, wantEvents, wantStats)
		eng.Close()
	}
}

// withoutRule returns the ruleset minus the named rule.
func withoutRule(rules []core.Rule, name string) []core.Rule {
	out := make([]core.Rule, 0, len(rules))
	for _, r := range rules {
		if r.Name != name {
			out = append(out, r)
		}
	}
	return out
}

// TestReloadDropsPartialsOfRemovedRule removes the bye-attack rule at
// every frame boundary (one fresh run per boundary): wherever a partial
// match was in flight the reload must report it dropped and raise the
// rule-reload self-alert, the bye attack must no longer fire, and serial
// and sharded engines must agree on all of it at every boundary.
func TestReloadDropsPartialsOfRemovedRule(t *testing.T) {
	frames, _ := byeCallSession(t)
	edited := withoutRule(core.DefaultRuleset(), core.RuleByeAttack)
	sawDrop := false
	for k := 1; k < len(frames); k++ {
		serial := core.NewEngine(core.Config{}, core.WithEventLog())
		for _, r := range frames[:k] {
			serial.HandleFrame(r.at, r.frame)
		}
		sDropped, err := serial.ReloadRules(edited)
		if err != nil {
			t.Fatalf("serial reload at frame %d: %v", k, err)
		}
		for _, r := range frames[k:] {
			serial.HandleFrame(r.at, r.frame)
		}

		sharded := core.NewShardedEngine(core.Config{}, 2, core.WithEventLog())
		for _, r := range frames[:k] {
			sharded.HandleFrame(r.at, r.frame)
		}
		shDropped, err := sharded.ReloadRules(edited)
		if err != nil {
			sharded.Close()
			t.Fatalf("sharded reload at frame %d: %v", k, err)
		}
		for _, r := range frames[k:] {
			sharded.HandleFrame(r.at, r.frame)
		}
		sharded.Flush()

		if sDropped != shDropped {
			t.Errorf("reload at frame %d: serial dropped %d partials, sharded dropped %d", k, sDropped, shDropped)
		}
		for _, run := range []struct {
			label   string
			dropped int
			alerts  []core.Alert
		}{{"serial", sDropped, serial.Alerts()}, {"sharded", shDropped, sharded.Alerts()}} {
			if _, ok := findAlert(run.alerts, core.RuleByeAttack); ok && run.dropped > 0 {
				t.Errorf("%s reload at frame %d: bye-attack fired after its rule was removed", run.label, k)
			}
			reloadAlert, ok := findAlert(run.alerts, core.RuleRuleReload)
			if run.dropped > 0 {
				sawDrop = true
				if !ok {
					t.Errorf("%s reload at frame %d dropped %d partials but raised no rule-reload alert", run.label, k, run.dropped)
				} else {
					if reloadAlert.Session != "rules" {
						t.Errorf("%s rule-reload alert session = %q, want \"rules\"", run.label, reloadAlert.Session)
					}
					if !strings.Contains(reloadAlert.Detail, fmt.Sprintf("%d in-flight", run.dropped)) {
						t.Errorf("%s rule-reload alert detail %q does not carry the drop count %d",
							run.label, reloadAlert.Detail, run.dropped)
					}
				}
			} else if ok {
				t.Errorf("%s reload at frame %d dropped nothing but raised a rule-reload alert", run.label, k)
			}
		}
		sharded.Close()
		if t.Failed() {
			return
		}
	}
	if !sawDrop {
		t.Error("no reload boundary had a bye-attack partial in flight; the drop path went unexercised")
	}
}

// TestReloadAddsRuleMidStream starts with a ruleset that cannot see the
// bye attack and hot-adds the full default ruleset mid-dialog: the
// detection fires if (and only if) the rule arrives before the attack
// sequence begins — rules added mid-stream start matching from their
// arrival, they do not rewrite history.
func TestReloadAddsRuleMidStream(t *testing.T) {
	frames, _ := byeCallSession(t)
	reduced := withoutRule(core.DefaultRuleset(), core.RuleByeAttack)

	eng := core.NewEngine(core.Config{Rules: reduced}, core.WithEventLog())
	if _, err := eng.ReloadRules(core.DefaultRuleset()); err != nil {
		t.Fatalf("reload: %v", err)
	}
	for _, r := range frames {
		eng.HandleFrame(r.at, r.frame)
	}
	if _, ok := findAlert(eng.Alerts(), core.RuleByeAttack); !ok {
		t.Errorf("bye-attack rule added before any traffic never fired: %v", alertKeys(eng.Alerts()))
	}

	late := core.NewEngine(core.Config{Rules: reduced}, core.WithEventLog())
	for _, r := range frames {
		late.HandleFrame(r.at, r.frame)
	}
	if _, ok := findAlert(late.Alerts(), core.RuleByeAttack); ok {
		t.Error("bye-attack fired without its rule ever being loaded")
	}
}

// TestRuleReloadHammer is the reload race storm: 100+ reloads (alternating
// the unchanged default ruleset with an edited one) concurrent with
// multi-goroutine feeding, flushing, and stats reads on an 8-shard engine
// with 4 ingest lanes. Run under -race in CI. Afterwards every delivered
// frame must be accounted for — routed == processed + shed on every shard
// and zero shed with no shed budget configured: reloads never lose a
// frame.
func TestRuleReloadHammer(t *testing.T) {
	reloads := 100
	if testing.Short() {
		reloads = 25
	}
	var corpus [][]rec
	for _, name := range []string{"benign", "bye", "rtp"} {
		corpus = append(corpus, scenarioFrames(t, name, 11))
	}
	eng := core.NewShardedEngine(core.Config{IngestRouters: 4}, 8, core.WithEventLog())
	defer eng.Close()

	edited := withoutRule(core.DefaultRuleset(), core.RuleByeAttack)
	total := 0
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for f := 0; f < 3; f++ {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			for round := 0; round < 4; round++ {
				for _, r := range corpus[(f+round)%len(corpus)] {
					eng.HandleFrame(r.at, r.frame)
				}
			}
		}(f)
		for round := 0; round < 4; round++ {
			total += len(corpus[(f+round)%len(corpus)])
		}
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			eng.Flush()
			_ = eng.Stats()
			_ = eng.Alerts()
		}
	}()
	for i := 0; i < reloads; i++ {
		rules := core.DefaultRuleset()
		if i%2 == 1 {
			rules = edited
		}
		if _, err := eng.ReloadRules(rules); err != nil {
			t.Fatalf("reload %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
	eng.Flush()

	st := eng.Stats()
	if st.Frames != total {
		t.Errorf("engine processed %d frames, %d were delivered: the reload storm lost frames", st.Frames, total)
	}
	if st.FramesShed != 0 || st.BatchesShed != 0 {
		t.Errorf("frames shed with no shed budget configured: %+v", st)
	}
	for _, h := range eng.ShardHealth() {
		if h.FramesRouted != h.FramesProcessed+h.FramesShed {
			t.Errorf("shard %d ledger does not reconcile after the reload storm: routed=%d processed=%d shed=%d",
				h.Shard, h.FramesRouted, h.FramesProcessed, h.FramesShed)
		}
	}
}

// FuzzRulesetReload feeds arbitrary bytes through the rules DSL and, when
// they parse, hot-reloads the result into engines mid-stream: no rules
// file — however malformed or adversarial — may ever panic the parser or
// the reload path.
func FuzzRulesetReload(f *testing.F) {
	f.Add(core.FormatRules(core.DefaultRuleset()))
	f.Add("rule custom-bye critical cross stateful {\n    seq sip-bye, rtp-after-bye\n}\n")
	f.Add("")
	f.Add("rule broken nope {\n    seq sip-bye\n")
	f.Add("rule a info sip stateless {\n    on sip-bye\n}\nrule a info sip stateless {\n    on sip-bye\n}\n")

	var frames []rec
	f.Fuzz(func(t *testing.T, text string) {
		rules, err := core.ParseRules(text)
		if err != nil {
			return // a rejected ruleset is the parser doing its job
		}
		if frames == nil {
			frames = scenarioFrames(t, "bye", 7)
		}
		k := len(frames) / 2
		eng := core.NewEngine(core.Config{}, core.WithEventLog())
		for _, r := range frames[:k] {
			eng.HandleFrame(r.at, r.frame)
		}
		if _, err := eng.ReloadRules(rules); err != nil {
			t.Fatalf("serial reload of parsed ruleset: %v", err)
		}
		for _, r := range frames[k:] {
			eng.HandleFrame(r.at, r.frame)
		}
		sh := core.NewShardedEngine(core.Config{}, 2, core.WithEventLog())
		defer sh.Close()
		for _, r := range frames[:k] {
			sh.HandleFrame(r.at, r.frame)
		}
		if _, err := sh.ReloadRules(rules); err != nil {
			t.Fatalf("sharded reload of parsed ruleset: %v", err)
		}
		for _, r := range frames[k:] {
			sh.HandleFrame(r.at, r.frame)
		}
		sh.Flush()
	})
}
