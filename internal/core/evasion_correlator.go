package core

import "fmt"

// evasionCorrelator raises the self-alerts of content-confirmed
// classification (classify.go): protocol-mismatch whenever a frame's
// content contradicted its port's claim, and evasion-suspect when the
// contradiction matches a known evasion shape — RTP/RTCP tunneled over
// signaling ports, SIP smuggled inside RTP payloads, or signaling on
// media ports. It is stateless (every verdict is carried on the view by
// the distiller), claims no ports, and registers last so its
// meta-alerts follow the substantive events a reclassified frame may
// still produce.
type evasionCorrelator struct{}

func newEvasionCorrelator() *evasionCorrelator { return &evasionCorrelator{} }

func (c *evasionCorrelator) Name() string { return "evasion" }
func (c *evasionCorrelator) Protocols() []Protocol {
	return []Protocol{ProtoSIP, ProtoRTP, ProtoRTCP}
}

func (c *evasionCorrelator) Process(v *FrameView, h RouteHints, ctx *SessionContext, evs *[]Event) {
	embedded := v.Proto == ProtoRTP && v.EmbeddedSIP
	if v.PortProto == 0 && !embedded {
		return
	}
	if v.PortProto != 0 {
		*evs = append(*evs, Event{
			At: v.At, Type: EvProtocolMismatch, Session: ctx.Session(),
			Detail: fmt.Sprintf("%s content on a %s-claimed port (%v->%v)",
				v.Proto, v.PortProto, v.Src, v.Dst),
			Footprint: ctx.Observation(),
		})
	}
	var shape string
	switch {
	case embedded:
		shape = "SIP start line smuggled inside an RTP media payload"
	case v.PortProto == ProtoSIP && (v.Proto == ProtoRTP || v.Proto == ProtoRTCP):
		shape = fmt.Sprintf("%s tunneled over a signaling port", v.Proto)
	case (v.PortProto == ProtoRTP || v.PortProto == ProtoRTCP) && v.Proto == ProtoSIP:
		shape = "SIP signaling on a media port"
	default:
		return
	}
	*evs = append(*evs, Event{
		At: v.At, Type: EvEvasionSuspect, Session: ctx.Session(),
		Detail:    fmt.Sprintf("%s (%v->%v)", shape, v.Src, v.Dst),
		Footprint: ctx.Observation(),
	})
}
