package core_test

import (
	"testing"
	"time"

	"scidive/internal/core"
	"scidive/internal/scenario"
)

func TestCancelledCallNoAlerts(t *testing.T) {
	tb, eng := deploy(t, scenario.Config{Seed: 400}, core.Config{})
	if err := tb.RegisterAll(); err != nil {
		t.Fatal(err)
	}
	tb.Sim.Schedule(0, func() {
		tb.Alice.Call("bob", nil)
	})
	tb.Sim.Schedule(200*time.Millisecond, func() {
		for _, c := range tb.Alice.Calls() {
			_ = tb.Alice.Cancel(c)
		}
	})
	tb.Run(3 * time.Second)
	mustNoAlerts(t, eng)
}

func TestSoakManyCallsWithSessionEviction(t *testing.T) {
	// A long benign workload: 20 calls back to back over ~14 simulated
	// minutes, with an aggressive session timeout so the engine's GC runs.
	tb, eng := deploy(t, scenario.Config{Seed: 401},
		core.Config{SessionTimeout: time.Minute})
	if err := tb.RegisterAll(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		call, err := tb.EstablishCall()
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		tb.Run(30 * time.Second)
		tb.Sim.Schedule(0, func() { _ = tb.Alice.Hangup(call) })
		tb.Run(10 * time.Second)
	}
	mustNoAlerts(t, eng)
	st := eng.Stats()
	if st.SessionsEvicted == 0 {
		t.Errorf("no sessions evicted across a 13-minute workload: %+v", st)
	}
	// The trail store stays bounded: far fewer live sessions than the 20+
	// the workload created.
	if live := eng.Trails().Sessions(); live >= 20 {
		t.Errorf("trail store holds %d sessions; eviction is not bounding memory", live)
	}
	if st.Footprints < 50000 {
		t.Errorf("soak processed only %d footprints", st.Footprints)
	}
}

func TestSoakWithPeriodicAttacks(t *testing.T) {
	// Alternating benign calls and BYE attacks: every attack is caught,
	// every benign call is clean, alert sessions never repeat.
	tb, eng := deploy(t, scenario.Config{Seed: 402}, core.Config{})
	if err := tb.RegisterAll(); err != nil {
		t.Fatal(err)
	}
	attacked := 0
	for i := 0; i < 6; i++ {
		call, err := tb.EstablishCall()
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		tb.Run(3 * time.Second)
		if i%2 == 1 {
			d := tb.Sniffer.DialogFor(call.CallID)
			if d == nil || !d.Confirmed {
				t.Fatalf("call %d: no sniffed dialog", i)
			}
			tb.Sim.Schedule(0, func() { _ = tb.Attacker.ForgedBye(d, true) })
			attacked++
			tb.Run(2 * time.Second)
			// Quiesce: bob eventually gives up...; force cleanup by hanging
			// up bob's side so the next call starts clean.
			if bc := tb.Bob.ActiveCall(); bc != nil {
				tb.Sim.Schedule(0, func() { _ = tb.Bob.Hangup(bc) })
			}
			tb.Run(2 * time.Second)
		} else {
			tb.Run(5 * time.Second)
			tb.Sim.Schedule(0, func() { _ = tb.Alice.Hangup(call) })
			tb.Run(2 * time.Second)
		}
	}
	alerts := eng.AlertsFor(core.RuleByeAttack)
	if len(alerts) != attacked {
		t.Fatalf("bye-attack alerts = %d, want %d (one per attacked call)", len(alerts), attacked)
	}
	sessions := map[string]bool{}
	for _, a := range alerts {
		if sessions[a.Session] {
			t.Errorf("duplicate alert session %s", a.Session)
		}
		sessions[a.Session] = true
	}
}
