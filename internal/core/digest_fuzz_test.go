package core

import (
	"testing"
	"time"
)

// FuzzDigestDecode hammers the cooperative layer's control-plane
// decoders with hostile bytes. Both are all-or-nothing: any mutation
// must yield an error and no partial digest — and a frame that does
// decode must survive a re-encode/re-decode round trip, since the
// aggregator's retransmission path re-reads what probes re-send.
func FuzzDigestDecode(f *testing.F) {
	valid := EncodeDigest(&Digest{
		Point: "edge", Seq: 3, Dropped: 1,
		Events: []Event{
			{At: time.Second, Type: EvSIPBye, Session: "call-1", Detail: "alice hangs up"},
			{At: 2 * time.Second, Type: EvRTPActivity, Session: "call-1", Detail: "media flowing", Point: "gateway"},
		},
	})
	f.Add(valid)
	f.Add(EncodeDigest(&Digest{Point: "gw", Seq: 1}))
	f.Add(EncodeDigestAck("edge", 7))
	f.Add(valid[:len(valid)-5])
	f.Add([]byte("SCDG"))
	f.Add([]byte{})
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped)
	f.Fuzz(func(t *testing.T, data []byte) {
		if d, err := DecodeDigest(data); err == nil {
			if d.Seq == 0 {
				t.Fatalf("decoded digest with sequence 0")
			}
			rd, rerr := DecodeDigest(EncodeDigest(d))
			if rerr != nil {
				t.Fatalf("re-encode of decoded digest does not decode: %v", rerr)
			}
			if rd.Point != d.Point || rd.Seq != d.Seq || rd.Dropped != d.Dropped || len(rd.Events) != len(d.Events) {
				t.Fatalf("round trip drifted: %+v vs %+v", rd, d)
			}
		}
		if point, seq, err := DecodeDigestAck(data); err == nil {
			back := EncodeDigestAck(point, seq)
			if p2, s2, err2 := DecodeDigestAck(back); err2 != nil || p2 != point || s2 != seq {
				t.Fatalf("ack round trip drifted: %q/%d -> %q/%d (%v)", point, seq, p2, s2, err2)
			}
		}
	})
}
