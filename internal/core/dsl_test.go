package core

import (
	"strings"
	"testing"
	"time"
)

const sampleRules = `
# BYE attack (Figure 5)
rule bye-attack critical cross stateful {
    describe No RTP traffic after a SIP BYE from that agent
    seq sip-bye, rtp-after-bye
    window 5s
}

rule billing-fraud critical cross stateful {
    all sip-bad-format, acct-unmatched, rtp-unmatched-media
}

rule noisy-garbage warning {
    seq rtp-garbage
}
`

func TestParseRules(t *testing.T) {
	rules, err := ParseRules(sampleRules)
	if err != nil {
		t.Fatalf("ParseRules: %v", err)
	}
	if len(rules) != 3 {
		t.Fatalf("rules = %d, want 3", len(rules))
	}
	bye := rules[0]
	if bye.Name != "bye-attack" || bye.Severity != SeverityCritical ||
		!bye.CrossProtocol || !bye.Stateful || bye.Unordered {
		t.Errorf("bye rule = %+v", bye)
	}
	if bye.Window != 5*time.Second {
		t.Errorf("window = %v", bye.Window)
	}
	if len(bye.Steps) != 2 || bye.Steps[0].Type != EvSIPBye || bye.Steps[1].Type != EvRTPAfterBye {
		t.Errorf("steps = %+v", bye.Steps)
	}
	if !strings.Contains(bye.Description, "No RTP traffic") {
		t.Errorf("description = %q", bye.Description)
	}
	fraud := rules[1]
	if !fraud.Unordered || len(fraud.Steps) != 3 {
		t.Errorf("fraud rule = %+v", fraud)
	}
	garbage := rules[2]
	if garbage.Severity != SeverityWarning || garbage.CrossProtocol || garbage.Stateful {
		t.Errorf("garbage rule = %+v", garbage)
	}
}

func TestParsedRulesActuallyMatch(t *testing.T) {
	rules, err := ParseRules(sampleRules)
	if err != nil {
		t.Fatal(err)
	}
	re := NewRuleEngine(rules)
	re.Feed(Event{At: time.Second, Type: EvSIPBye, Session: "s"})
	got := re.Feed(Event{At: 2 * time.Second, Type: EvRTPAfterBye, Session: "s"})
	if len(got) != 1 || got[0].Rule != "bye-attack" {
		t.Errorf("alerts = %v", got)
	}
}

func TestParseRulesErrors(t *testing.T) {
	tests := []struct {
		name string
		text string
	}{
		{"empty", ""},
		{"comment only", "# nothing\n"},
		{"bad severity", "rule x nope {\nseq sip-bye\n}\n"},
		{"unknown flag", "rule x critical sideways {\nseq sip-bye\n}\n"},
		{"unknown event", "rule x critical {\nseq not-an-event\n}\n"},
		{"no pattern", "rule x critical {\ndescribe hi\n}\n"},
		{"double pattern", "rule x critical {\nseq sip-bye\nall rtp-garbage\n}\n"},
		{"unclosed rule", "rule x critical {\nseq sip-bye\n"},
		{"stray close", "}\n"},
		{"statement outside rule", "seq sip-bye\n"},
		{"missing brace", "rule x critical\nseq sip-bye\n}\n"},
		{"bad window", "rule x critical {\nseq sip-bye\nwindow soon\n}\n"},
		{"duplicate name", "rule x critical {\nseq sip-bye\n}\nrule x critical {\nseq sip-bye\n}\n"},
		{"nested rule", "rule x critical {\nrule y critical {\n}\n}\n"},
		{"unknown statement", "rule x critical {\nfrobnicate\n}\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ParseRules(tt.text); err == nil {
				t.Errorf("accepted:\n%s", tt.text)
			}
		})
	}
}

func TestFormatParsedRoundTrip(t *testing.T) {
	rules, err := ParseRules(sampleRules)
	if err != nil {
		t.Fatal(err)
	}
	again, err := ParseRules(FormatRules(rules))
	if err != nil {
		t.Fatalf("re-parse formatted rules: %v", err)
	}
	if len(again) != len(rules) {
		t.Fatalf("round trip lost rules: %d vs %d", len(again), len(rules))
	}
	for i := range rules {
		a, b := rules[i], again[i]
		if a.Name != b.Name || a.Severity != b.Severity || a.Unordered != b.Unordered ||
			a.Window != b.Window || len(a.Steps) != len(b.Steps) {
			t.Errorf("rule %d differs: %+v vs %+v", i, a, b)
		}
	}
}

func TestDefaultRulesetRoundTripsThroughDSL(t *testing.T) {
	// The built-in ruleset is expressible in the DSL (it uses no
	// predicates), so exporting and re-parsing must preserve behaviour.
	text := FormatRules(DefaultRuleset())
	rules, err := ParseRules(text)
	if err != nil {
		t.Fatalf("default ruleset does not round-trip: %v\n%s", err, text)
	}
	if len(rules) != len(DefaultRuleset()) {
		t.Errorf("rules = %d, want %d", len(rules), len(DefaultRuleset()))
	}
}

func TestEventTypeByName(t *testing.T) {
	if _, ok := EventTypeByName("sip-bye"); !ok {
		t.Error("sip-bye unknown")
	}
	if _, ok := EventTypeByName("bogus"); ok {
		t.Error("bogus resolved")
	}
}
