package core

import (
	"strconv"
	"strings"
	"time"
	"unicode/utf8"
)

// This file is the alert/event text-formatting path, rebuilt on
// strings.Builder so a String call costs exactly one allocation (the
// returned string). Nothing on the frame hot path calls these: text is
// produced only when a sink retains it (log printing, reports, test
// output), so stats-only runs never format at all. The output is
// byte-identical to the historical nested fmt.Sprintf forms — the
// differential test in format_test.go holds both String methods to the
// fmt rendering across edge cases.

// appendStamp writes "[%8.3fs] " for at (fmt right-aligns the 3-decimal
// seconds value in an 8-column field).
func appendStamp(b *strings.Builder, at time.Duration) {
	var tmp [24]byte
	num := strconv.AppendFloat(tmp[:0], at.Seconds(), 'f', 3, 64)
	b.WriteByte('[')
	for n := len(num); n < 8; n++ {
		b.WriteByte(' ')
	}
	b.Write(num)
	b.WriteString("s] ")
}

// padRight writes s left-justified in a width-column field ("%-*s");
// like fmt, width counts runes, not bytes.
func padRight(b *strings.Builder, s string, width int) {
	b.WriteString(s)
	for n := utf8.RuneCountInString(s); n < width; n++ {
		b.WriteByte(' ')
	}
}
