package core

import (
	"fmt"
	"strings"
	"time"
)

// EventType classifies events produced by the Event Generator.
type EventType int

// Event types. Informational events describe normal protocol progress;
// suspicious events are the concentrated, stateful observations the
// paper's rules match on.
const (
	// Informational SIP progress events.
	EvSIPRegister EventType = iota + 1
	EvSIPAuthChallenge
	EvSIPRegisterOK
	EvSIPInvite
	EvSIPCallEstablished
	EvSIPBye
	EvSIPReinvite
	EvSIPInstantMessage

	// Informational media/accounting events.
	EvRTPNewFlow
	EvAcctStart
	EvAcctStop

	// Suspicious events.
	EvSIPBadFormat      // strict format checker violation
	EvIMSourceMismatch  // IM claims a sender whose recent source IP differs
	EvRTPAfterBye       // orphan media after a BYE (cross-protocol, stateful)
	EvRTPAfterReinvite  // orphan media from a "moved" party (cross-protocol, stateful)
	EvRTPSeqJump        // sequence discontinuity beyond threshold
	EvRTPBadSource      // media from an address the session never negotiated
	EvRTPGarbage        // undecodable bytes on a media port
	EvAuthFlood         // repeated unauthenticated requests ignoring 401s
	EvPasswordGuessing  // repeated requests with varying challenge responses
	EvAcctUnmatched     // accounting transaction without matching call setup
	EvRTPUnmatchedMedia // session media negotiated away from the caller's registered location
	EvRTCPSpoofedBye    // RTCP BYE with no corresponding SIP BYE (three-protocol chain)
	EvOptionsScan       // one source probing many dialogs with OPTIONS (cross-dialog sweep)
	EvProtocolMismatch  // payload content contradicted the port's claimed protocol (classify.go)
	EvEvasionSuspect    // the contradiction matches a known evasion shape (tunneling/smuggling)

	// Informational media liveness heartbeat (GenConfig.RTPActivityEvery;
	// off by default so existing event streams are untouched). Emitted at
	// most once per interval per session, it is the positive evidence the
	// cross-point BYE-teardown rule needs: media still flowing at the
	// gateway after the edge saw a BYE.
	EvRTPActivity
)

// String returns the event type name.
func (t EventType) String() string {
	switch t {
	case EvSIPRegister:
		return "sip-register"
	case EvSIPAuthChallenge:
		return "sip-auth-challenge"
	case EvSIPRegisterOK:
		return "sip-register-ok"
	case EvSIPInvite:
		return "sip-invite"
	case EvSIPCallEstablished:
		return "sip-call-established"
	case EvSIPBye:
		return "sip-bye"
	case EvSIPReinvite:
		return "sip-reinvite"
	case EvSIPInstantMessage:
		return "sip-instant-message"
	case EvRTPNewFlow:
		return "rtp-new-flow"
	case EvAcctStart:
		return "acct-start"
	case EvAcctStop:
		return "acct-stop"
	case EvSIPBadFormat:
		return "sip-bad-format"
	case EvIMSourceMismatch:
		return "im-source-mismatch"
	case EvRTPAfterBye:
		return "rtp-after-bye"
	case EvRTPAfterReinvite:
		return "rtp-after-reinvite"
	case EvRTPSeqJump:
		return "rtp-seq-jump"
	case EvRTPBadSource:
		return "rtp-bad-source"
	case EvRTPGarbage:
		return "rtp-garbage"
	case EvAuthFlood:
		return "auth-flood"
	case EvPasswordGuessing:
		return "password-guessing"
	case EvAcctUnmatched:
		return "acct-unmatched"
	case EvRTPUnmatchedMedia:
		return "rtp-unmatched-media"
	case EvRTCPSpoofedBye:
		return "rtcp-spoofed-bye"
	case EvOptionsScan:
		return "sip-options-scan"
	case EvProtocolMismatch:
		return "protocol-mismatch"
	case EvEvasionSuspect:
		return "evasion-suspect"
	case EvRTPActivity:
		return "rtp-activity"
	default:
		return fmt.Sprintf("event-type-%d", int(t))
	}
}

// Event is one Event Generator output: a concentrated observation that
// may encapsulate state accumulated from many footprints.
type Event struct {
	At      time.Duration
	Type    EventType
	Session string // correlation key: Call-ID for calls, "im:<aor>" for IM, flow string otherwise
	Detail  string
	// Point names the capture point (probe) that observed the event.
	// Empty for a single-tap engine; stamped by the cooperative layer
	// (coop.Probe / digest decode) so cross-point rules can require a
	// specific vantage (the DSL's "@point" qualifier). Not part of the
	// log format: String() and the golden event streams ignore it.
	Point string
	// Footprint is the observation that completed the event (may be nil
	// for purely state-derived events).
	Footprint Footprint
}

// String formats the event for logs: "[%8.3fs] %-20s session=%s %s",
// built without nested Sprintf so the only allocation is the returned
// string.
func (e Event) String() string {
	var b strings.Builder
	b.Grow(32 + len(e.Session) + len(e.Detail))
	appendStamp(&b, e.At)
	padRight(&b, e.Type.String(), 20)
	b.WriteString(" session=")
	b.WriteString(e.Session)
	b.WriteByte(' ')
	b.WriteString(e.Detail)
	return b.String()
}
