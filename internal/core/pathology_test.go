package core_test

import (
	"testing"
	"time"

	"scidive/internal/core"
	"scidive/internal/netsim"
	"scidive/internal/scenario"
)

// The IDS must stay sane on unhealthy networks: jittery links, packet
// duplication, and loss neither crash detection nor cause false alarms.

// pathologicalLink is a jittery, duplicating, slightly lossy WAN-ish link.
func pathologicalLink() *netsim.Link {
	return &netsim.Link{
		Delay:     netsim.Shifted{Base: netsim.Exponential{MeanD: 2 * time.Millisecond, Cap: 30 * time.Millisecond}, Offset: time.Millisecond},
		Loss:      0.01,
		Duplicate: 0.05,
	}
}

func TestBenignCallOverPathologicalNetwork(t *testing.T) {
	tb, eng := deploy(t, scenario.Config{Seed: 200, Link: pathologicalLink()}, core.Config{})
	if err := tb.RegisterAll(); err != nil {
		t.Fatal(err)
	}
	call, err := tb.EstablishCall()
	if err != nil {
		t.Fatal(err)
	}
	tb.Run(20 * time.Second)
	// Duplicated SIP requests exercise transaction-layer dedup; duplicated
	// and reordered RTP exercises the jitter buffer. None of it is an
	// attack.
	mustNoAlerts(t, eng)
	if tb.Net.Stats().FramesDuplicated == 0 {
		t.Fatal("pathology model produced no duplicates — test is vacuous")
	}
	bobCall := tb.Bob.ActiveCall()
	if bobCall == nil {
		t.Fatal("call did not survive the pathological network")
	}
	st := bobCall.BufferStats()
	if st.Duplicates == 0 {
		t.Error("no duplicate RTP reached the jitter buffer")
	}
	if st.Played < 700 {
		t.Errorf("playout degraded badly: %+v", st)
	}
	tb.Sim.Schedule(0, func() { _ = tb.Alice.Hangup(call) })
	tb.Run(3 * time.Second)
	mustNoAlerts(t, eng)
}

func TestByeAttackDetectedOverPathologicalNetwork(t *testing.T) {
	tb, eng := deploy(t, scenario.Config{Seed: 201, Link: pathologicalLink()}, core.Config{})
	if err := tb.RegisterAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.EstablishCall(); err != nil {
		t.Fatal(err)
	}
	tb.Run(3 * time.Second)
	d := tb.Sniffer.ConfirmedDialog()
	if d == nil {
		t.Fatal("no sniffed dialog")
	}
	tb.Sim.Schedule(0, func() { _ = tb.Attacker.ForgedBye(d, true) })
	tb.Run(3 * time.Second)
	alerts := eng.AlertsFor(core.RuleByeAttack)
	if len(alerts) != 1 {
		t.Fatalf("bye-attack alerts = %d over pathological network: %v", len(alerts), eng.Alerts())
	}
}

func TestDuplicatedRegistrationNoFalseFloodAlarm(t *testing.T) {
	// Heavy duplication of the registration exchange multiplies 401
	// sightings at the hub; the IDS counts challenges per session, so the
	// duplicates must not be mistaken for a flood. (The flood threshold is
	// 5; a single registration duplicated at 50% produces at most a few
	// duplicate 401 sightings.)
	link := &netsim.Link{Delay: netsim.Deterministic{D: time.Millisecond}, Duplicate: 0.5}
	tb, eng := deploy(t, scenario.Config{Seed: 202, Link: link}, core.Config{})
	for i := 0; i < 3; i++ {
		tb.Alice.Register(nil)
		tb.Bob.Register(nil)
		tb.Run(2 * time.Second)
	}
	if !tb.Alice.Registered() || !tb.Bob.Registered() {
		t.Fatal("registration failed under duplication")
	}
	mustNoAlerts(t, eng)
}
