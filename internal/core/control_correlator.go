package core

// The control correlator is the cooperative layer's port claim: it marks
// the probe→aggregator digest port (GenConfig.DigestPort, default
// DefaultDigestPort) as IDS-internal control traffic so a monitored link
// that carries it raises nothing. It registers FIRST in
// DefaultCorrelators so its claim outranks every protocol claimer — in
// particular the RTP correlator's even-port media range, which would
// otherwise nominate ProtoRTP for a digest port configured inside it and
// send binary digests through the content classifier's mismatch ladder.
//
// It subscribes to no dispatch protocol: ProtoControl sits past
// ProtoOther, outside the generator's dispatch tables, so claimed
// control frames are counted by the distiller as ignored and never reach
// a correlator. The module is pure classification — no state, no events.
type controlCorrelator struct {
	port uint16
}

func newControlCorrelator() *controlCorrelator { return &controlCorrelator{} }

// Name implements Correlator.
func (c *controlCorrelator) Name() string { return "control" }

// Protocols implements Correlator: the control plane feeds no events.
func (c *controlCorrelator) Protocols() []Protocol { return nil }

// Process implements Correlator; never called (no subscribed protocols).
func (c *controlCorrelator) Process(v *FrameView, h RouteHints, ctx *SessionContext, evs *[]Event) {
}

// configure implements configurable: the claim follows GenConfig.
func (c *controlCorrelator) configure(cfg GenConfig) { c.port = cfg.DigestPort }

// claimPort implements portClaimer: either endpoint on the digest port
// marks the datagram as control traffic (digests flow probe→aggregator,
// acks flow back).
func (c *controlCorrelator) claimPort(srcPort, dstPort uint16) (Protocol, bool) {
	if c.port != 0 && (srcPort == c.port || dstPort == c.port) {
		return ProtoControl, true
	}
	return ProtoOther, false
}
