package core

import (
	"net/netip"
	"time"

	"scidive/internal/accounting"
	"scidive/internal/rtp"
	"scidive/internal/sip"
)

// FrameView is the value-typed union of all footprint kinds, the hot
// path's replacement for the interface-typed Footprint. One FrameView per
// pipeline (engine, shard worker) is reused for every frame: the
// Distiller fills it in place (DistillView), the Event Generator
// dispatches on Proto/OnPort (ProcessView), correlators read the fields
// of their protocol, and trails retain a value copy in a contiguous
// slab. No per-frame boxing allocation ever happens unless an event
// actually fires and needs a Footprint attached (see SessionContext's
// lazy Observation).
//
// Field validity follows Proto: Msg/Malformed for ProtoSIP, RTP for
// ProtoRTP, RTCP for ProtoRTCP, Txn for ProtoAccounting, and
// OnPort/Reason/RawLen for ProtoOther (a raw footprint: undecodable
// bytes on a claimed port).
type FrameView struct {
	Proto Protocol
	At    time.Duration
	Src   netip.AddrPort
	Dst   netip.AddrPort

	// ProtoSIP
	Msg       *sip.Message
	Malformed []string

	// ProtoRTP
	RTP rtp.HeaderView

	// ProtoRTCP
	RTCP rtp.CompoundView

	// ProtoAccounting
	Txn accounting.Txn

	// ProtoOther (raw): the protocol expected on the port, why decoding
	// failed, and the payload length.
	OnPort Protocol
	Reason string
	RawLen int

	// StreamKey is set on stream-carried messages (SIP over TCP): the
	// flow's canonical routing key. Dialogs first sighted on a stream pin
	// their sticky routing key to it — flow affinity wins over Call-ID so
	// a stream's messages stay shard-affine (see streamFlowKey).
	StreamKey string

	// PortProto is nonzero on reclassified frames: the protocol the port
	// claimed before content confirmation overrode it (classify.go). The
	// view's decoded fields belong to Proto; PortProto records the
	// contradiction for the evasion correlator's self-alerts.
	PortProto Protocol

	// EmbeddedSIP is set on RTP views whose media payload begins with a
	// SIP start line — the SIP-smuggled-in-RTP evasion.
	EmbeddedSIP bool
}

// reset clears the view for the next frame.
func (v *FrameView) reset() { *v = FrameView{} }

// dispatchProto is the protocol the view dispatches under: the declared
// protocol, except raw views dispatch under the protocol expected on
// their port (so e.g. the RTP correlator sees garbage on RTP ports).
func (v *FrameView) dispatchProto() Protocol {
	if v.Proto == ProtoOther {
		return v.OnPort
	}
	return v.Proto
}

// box materializes the boxed Footprint equivalent of the view. This is
// the slow path — only taken when an event fires or a legacy accessor
// (Trail.Footprints, Trail.Last) rereads a trail. RTCP packet bodies are
// not retained by views, so a boxed RTCPFootprint reports the compound's
// packet count through a nil Packets slice; nothing downstream of
// distillation rereads the bodies.
func (v *FrameView) box() Footprint {
	base := FootprintBase{At: v.At, Src: v.Src, Dst: v.Dst, PortProto: v.PortProto}
	switch v.Proto {
	case ProtoSIP:
		return &SIPFootprint{FootprintBase: base, Msg: v.Msg, Malformed: v.Malformed}
	case ProtoRTP:
		return &RTPFootprint{
			FootprintBase: base,
			Header: rtp.Header{
				Padding:     v.RTP.Padding,
				Extension:   v.RTP.Extension,
				Marker:      v.RTP.Marker,
				PayloadType: v.RTP.PayloadType,
				Seq:         v.RTP.Seq,
				Timestamp:   v.RTP.Timestamp,
				SSRC:        v.RTP.SSRC,
			},
			PayloadLen:  v.RTP.PayloadLen,
			EmbeddedSIP: v.EmbeddedSIP,
		}
	case ProtoRTCP:
		return &RTCPFootprint{FootprintBase: base}
	case ProtoAccounting:
		return &AcctFootprint{FootprintBase: base, Txn: v.Txn}
	case ProtoOther:
		return &RawFootprint{FootprintBase: base, OnPort: v.OnPort, Reason: v.Reason, Len: v.RawLen}
	default:
		return nil
	}
}

// viewOf projects a boxed footprint into v, for the compat wrappers that
// still accept Footprint values (tests, the direct-matching ablation).
// It reports false for footprint types the union does not model.
func viewOf(f Footprint, v *FrameView) bool {
	v.reset()
	switch fp := f.(type) {
	case *SIPFootprint:
		v.Proto, v.At, v.Src, v.Dst = ProtoSIP, fp.At, fp.Src, fp.Dst
		v.PortProto = fp.PortProto
		v.Msg, v.Malformed = fp.Msg, fp.Malformed
	case *RTPFootprint:
		v.Proto, v.At, v.Src, v.Dst = ProtoRTP, fp.At, fp.Src, fp.Dst
		v.PortProto, v.EmbeddedSIP = fp.PortProto, fp.EmbeddedSIP
		v.RTP = rtp.HeaderView{
			Padding:     fp.Header.Padding,
			Extension:   fp.Header.Extension,
			Marker:      fp.Header.Marker,
			PayloadType: fp.Header.PayloadType,
			Seq:         fp.Header.Seq,
			Timestamp:   fp.Header.Timestamp,
			SSRC:        fp.Header.SSRC,
			CSRCCount:   len(fp.Header.CSRC),
			PayloadLen:  fp.PayloadLen,
		}
	case *RTCPFootprint:
		v.Proto, v.At, v.Src, v.Dst = ProtoRTCP, fp.At, fp.Src, fp.Dst
		v.PortProto = fp.PortProto
		v.RTCP.Packets = len(fp.Packets)
		for _, pkt := range fp.Packets {
			if _, ok := pkt.(*rtp.Bye); ok {
				v.RTCP.HasBye = true
				break
			}
		}
	case *AcctFootprint:
		v.Proto, v.At, v.Src, v.Dst = ProtoAccounting, fp.At, fp.Src, fp.Dst
		v.Txn = fp.Txn
	case *RawFootprint:
		v.Proto, v.At, v.Src, v.Dst = ProtoOther, fp.At, fp.Src, fp.Dst
		v.OnPort, v.Reason, v.RawLen = fp.OnPort, fp.Reason, fp.Len
	default:
		return false
	}
	return true
}
