package core

import (
	"testing"
	"time"

	"scidive/internal/rtp"
	"scidive/internal/sip"
)

// ledgerSum folds the terminal counters of the distiller's
// never-silently-dropped ledger (see DistillerStats).
func ledgerSum(st DistillerStats) int {
	return st.DecodeError + st.Fragments + st.Ignored + st.Streamed +
		st.SIP + st.RTP + st.RTCP + st.Acct + st.Raw + st.Mismatched
}

func checkLedger(t *testing.T, st DistillerStats) {
	t.Helper()
	if got, want := ledgerSum(st), st.Frames+st.StreamMsgs; got != want {
		t.Errorf("ledger broken: terminal counters sum to %d, inputs %d (%+v)", got, want, st)
	}
}

// rtpBytes returns a well-formed RTP packet that passes content
// confirmation (plausible payload type, nonzero SSRC).
func rtpBytes(t *testing.T) []byte {
	t.Helper()
	p := rtp.Packet{
		Header:  rtp.Header{PayloadType: rtp.PayloadTypePCMU, Seq: 42, Timestamp: 4200, SSRC: 0xC0FFEE01},
		Payload: make([]byte, 32),
	}
	buf, err := p.Marshal()
	if err != nil {
		t.Fatalf("rtp marshal: %v", err)
	}
	return buf
}

// rtcpBytes is a minimal valid RTCP sender report compound.
func rtcpBytes(t *testing.T) []byte {
	t.Helper()
	buf, err := rtp.MarshalCompound([]rtp.RTCPPacket{&rtp.SenderReport{SSRC: 0xC0FFEE02, PacketCount: 5, OctetCount: 800}})
	if err != nil {
		t.Fatalf("rtcp marshal: %v", err)
	}
	return buf
}

// TestClassifyCounterPinning pins the exact classification counters for a
// crafted frame set covering every terminal bucket, including the
// content-confirmation reclassifications. Both distiller forms (boxed and
// view) must account identically.
func TestClassifyCounterPinning(t *testing.T) {
	cases := []struct {
		name             string
		srcPort, dstPort uint16
		payload          []byte
	}{
		{"sip-on-sip-port", 5060, 5060, sipBytes(t)},
		{"rtp-on-sip-port", 5060, 5060, rtpBytes(t)},   // reclassifies SIP→RTP
		{"rtcp-on-sip-port", 5060, 5060, rtcpBytes(t)}, // reclassifies SIP→RTCP
		{"sip-on-rtp-port", 40666, 40000, sipBytes(t)}, // reclassifies RTP→SIP
		{"garbage-on-rtp-port", 40666, 40000, []byte{0x01}},
		{"http-ignored", 1234, 80, []byte("GET / HTTP/1.1\r\n")},
	}
	// Reclassified frames land in Mismatched, not the per-protocol
	// counters: SIP counts only the claimed-and-parsed message.
	want := DistillerStats{
		Frames: 7, SIP: 1, Raw: 1, Ignored: 1, DecodeError: 1, Mismatched: 3,
	}

	run := func(t *testing.T, distill func(d *Distiller, at time.Duration, frame []byte)) DistillerStats {
		d := NewDistiller()
		for i, c := range cases {
			for _, frame := range frameFor(t, c.srcPort, c.dstPort, c.payload, 0) {
				distill(d, time.Duration(i)*time.Millisecond, frame)
			}
		}
		distill(d, time.Second, []byte{0x01, 0x02}) // decode error
		return d.Stats()
	}

	boxed := run(t, func(d *Distiller, at time.Duration, frame []byte) { d.Distill(at, frame) })
	var v FrameView
	viewed := run(t, func(d *Distiller, at time.Duration, frame []byte) { d.DistillView(at, frame, &v) })

	if boxed != want {
		t.Errorf("boxed stats = %+v, want %+v", boxed, want)
	}
	if viewed != boxed {
		t.Errorf("view stats = %+v, boxed %+v", viewed, boxed)
	}
	checkLedger(t, boxed)
}

// TestReclassifiedFootprintShape pins what a reclassified frame looks
// like downstream: the footprint carries the content protocol's decoded
// fields with PortProto recording the contradicted port claim.
func TestReclassifiedFootprintShape(t *testing.T) {
	d := NewDistiller()
	fp := d.Distill(time.Second, frameFor(t, 5060, 5060, rtpBytes(t), 0)[0])
	rf, ok := fp.(*RTPFootprint)
	if !ok {
		t.Fatalf("footprint = %T, want *RTPFootprint", fp)
	}
	if rf.PortProto != ProtoSIP {
		t.Errorf("PortProto = %v, want ProtoSIP", rf.PortProto)
	}
	if rf.Header.SSRC != 0xC0FFEE01 {
		t.Errorf("SSRC = %#x; reclassified decode lost the header", rf.Header.SSRC)
	}

	fp = d.Distill(2*time.Second, frameFor(t, 40666, 40000, sipBytes(t), 0)[0])
	sf, ok := fp.(*SIPFootprint)
	if !ok {
		t.Fatalf("footprint = %T, want *SIPFootprint", fp)
	}
	if sf.PortProto != ProtoRTP {
		t.Errorf("PortProto = %v, want ProtoRTP", sf.PortProto)
	}
	if sf.Msg.CallID() != "dist@test" {
		t.Errorf("Call-ID = %q; reclassified parse lost the message", sf.Msg.CallID())
	}
}

// TestReclassifySkipsClaimedProtocol: a payload whose claimed decoder
// rejects it must not be "reclassified" back to the same protocol — it
// falls through the ladder to the raw path.
func TestReclassifySkipsClaimedProtocol(t *testing.T) {
	d := NewDistiller()
	// A SIP start line that sniffs as SIP but does not parse (no headers):
	// on the SIP port the ladder must skip the SIP rung, find no other
	// protocol, and account the frame Raw.
	broken := []byte("INVITE sip:x@y SIP/2.0\r\n")
	fp := d.Distill(time.Second, frameFor(t, 5060, 5060, broken, 0)[0])
	if _, ok := fp.(*RawFootprint); !ok {
		t.Fatalf("footprint = %T, want *RawFootprint", fp)
	}
	st := d.Stats()
	if st.Raw != 1 || st.Mismatched != 0 {
		t.Errorf("stats = %+v, want Raw=1 Mismatched=0", st)
	}
	checkLedger(t, st)
}

// TestTortureCorpusLedger feeds the full RFC 4475-style torture corpus to
// the distiller on both the signaling and a media port: no panics, and
// every message lands in exactly one terminal counter.
func TestTortureCorpusLedger(t *testing.T) {
	corpus := sip.TortureCorpus()
	d := NewDistiller()
	frames := 0
	for i, e := range corpus {
		for _, ports := range []struct{ src, dst uint16 }{{5060, 5060}, {40666, 40000}} {
			for _, frame := range frameFor(t, ports.src, ports.dst, e.Raw, 0) {
				d.Distill(time.Duration(i)*time.Millisecond, frame)
				frames++
			}
		}
	}
	st := d.Stats()
	if st.Frames != frames {
		t.Errorf("Frames = %d, fed %d", st.Frames, frames)
	}
	checkLedger(t, st)
	// Every legal corpus entry parses on the SIP port; on the media port it
	// reclassifies RTP→SIP (mismatched). Broken entries go Raw on both.
	legal := 0
	for _, e := range corpus {
		if e.Legal {
			legal++
		}
	}
	if st.SIP != legal {
		t.Errorf("SIP = %d, want %d (legal corpus entries on the SIP port)", st.SIP, legal)
	}
	if st.Mismatched != legal {
		t.Errorf("Mismatched = %d, want %d (legal entries reclassified on the media port)", st.Mismatched, legal)
	}
	if wantRaw := 2 * (len(corpus) - legal); st.Raw != wantRaw {
		t.Errorf("Raw = %d, want %d (broken entries on both ports)", st.Raw, wantRaw)
	}
}
