package core

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"scidive/internal/packet"
	"scidive/internal/sip"
)

// This file implements deterministic checkpoint/restore for the stateful
// detection pipeline. A snapshot is a versioned, self-describing byte
// stream: a header binding the snapshot to the exact configuration that
// produced it (config hash, ruleset hash, correlator list), a body holding
// every piece of accumulated detection state, and a trailing checksum.
// Encoding is hand-rolled fixed-width big-endian with every map walked in
// sorted key order, so the same engine state always produces the same
// bytes (the snapshot-format golden test pins this; gob was rejected
// because map iteration order leaks into its output).
//
// Format v4 extends v3 with the stream-transport section (TCP reassembly
// buffers plus per-direction SIP framing prefixes) so a checkpoint taken
// mid-message resumes byte-identically; it is otherwise the v3 layout.
//
// Format v3 is portable across engine geometry: the body is keyed by
// session, not by shard. Both engine kinds write the same global layout —
// one folded stats block, one session index, one rule-engine section, one
// merged alert/event stream, plus the routing directory (sticky session →
// route key pins) and buffered in-progress fragment groups — and restore
// re-routes every session through the restoring engine's own router
// config. A checkpoint captured serial or at 8 shards × 2 ingesters
// resumes at any shards × ingest combination, in either engine kind; the
// engine kind, shard count and ingest width recorded in the header are
// informational only.
//
// Restore is strictly decode-validate-install: the entire body is decoded
// into intermediate structures (correlator state included, via the
// snapshotter capability's two-phase decode) and only if every section
// decodes cleanly is any engine state mutated. A corrupt, truncated or
// mismatched checkpoint therefore returns an error and leaves the engine
// exactly as it was — never partially restored (FuzzSnapshotDecode holds
// the decoder to this).

// Format v6 extends v5 with the cooperative layer: events carry their
// capture point, and the rule-engine section adds the absence machinery
// (pending graced alerts plus the absent-event lookback table) so an
// aggregator checkpoint taken mid-grace matures or cancels identically
// after restore.

const (
	snapMagic   = "SCDV"
	snapVersion = 6

	snapKindSerial  = 0
	snapKindSharded = 1
)

// --- deterministic writer/reader ---

// snapWriter appends fixed-width big-endian fields to a buffer.
type snapWriter struct {
	buf []byte
}

func (w *snapWriter) u8(v uint8)   { w.buf = append(w.buf, v) }
func (w *snapWriter) u16(v uint16) { w.buf = binary.BigEndian.AppendUint16(w.buf, v) }
func (w *snapWriter) u32(v uint32) { w.buf = binary.BigEndian.AppendUint32(w.buf, v) }
func (w *snapWriter) u64(v uint64) { w.buf = binary.BigEndian.AppendUint64(w.buf, v) }
func (w *snapWriter) vint(v int)   { w.u64(uint64(int64(v))) }
func (w *snapWriter) dur(d time.Duration) {
	w.u64(uint64(int64(d)))
}

func (w *snapWriter) bool(v bool) {
	if v {
		w.u8(1)
	} else {
		w.u8(0)
	}
}

func (w *snapWriter) bytes(b []byte) {
	w.u32(uint32(len(b)))
	w.buf = append(w.buf, b...)
}

func (w *snapWriter) str(s string) {
	w.u32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}

func (w *snapWriter) bools(b []bool) {
	w.u32(uint32(len(b)))
	for _, v := range b {
		w.bool(v)
	}
}

func (w *snapWriter) addr(a netip.Addr) {
	b, _ := a.MarshalBinary()
	w.bytes(b)
}

func (w *snapWriter) addrPort(ap netip.AddrPort) {
	b, _ := ap.MarshalBinary()
	w.bytes(b)
}

// snapReader consumes a snapWriter's output with bounds checking. The
// first failure sticks: every subsequent read returns a zero value, so
// decoders can be written straight-line and check err once per section.
type snapReader struct {
	buf []byte
	off int
	err error
}

func (r *snapReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

func (r *snapReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.buf) {
		r.fail("core: snapshot truncated (need %d bytes at offset %d of %d)", n, r.off, len(r.buf))
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *snapReader) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *snapReader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

func (r *snapReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (r *snapReader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (r *snapReader) vint() int          { return int(int64(r.u64())) }
func (r *snapReader) dur() time.Duration { return time.Duration(int64(r.u64())) }
func (r *snapReader) boolv() bool        { return r.u8() != 0 }
func (r *snapReader) remaining() int     { return len(r.buf) - r.off }
func (r *snapReader) done() bool         { return r.err == nil && r.off == len(r.buf) }

// count reads a u32 element count and rejects counts that could not fit in
// the remaining bytes, so a hostile length prefix cannot drive huge
// allocations or long loops.
func (r *snapReader) count() int {
	n := int(r.u32())
	if r.err == nil && n > r.remaining() {
		r.fail("core: snapshot corrupt (count %d exceeds %d remaining bytes)", n, r.remaining())
		return 0
	}
	return n
}

func (r *snapReader) bytesv() []byte {
	n := r.count()
	b := r.take(n)
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}

func (r *snapReader) strv() string {
	n := r.count()
	b := r.take(n)
	return string(b)
}

func (r *snapReader) boolsv() []bool {
	n := r.count()
	if r.err != nil {
		return nil
	}
	out := make([]bool, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		out = append(out, r.boolv())
	}
	return out
}

func (r *snapReader) addrv() netip.Addr {
	b := r.bytesv()
	if r.err != nil {
		return netip.Addr{}
	}
	var a netip.Addr
	if err := a.UnmarshalBinary(b); err != nil {
		r.fail("core: snapshot corrupt (bad address: %v)", err)
	}
	return a
}

func (r *snapReader) addrPortv() netip.AddrPort {
	b := r.bytesv()
	if r.err != nil {
		return netip.AddrPort{}
	}
	var ap netip.AddrPort
	if err := ap.UnmarshalBinary(b); err != nil {
		r.fail("core: snapshot corrupt (bad address:port: %v)", err)
	}
	return ap
}

// --- hashing ---

// fnv64 is FNV-1a over a byte string.
func fnv64(data []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, b := range data {
		h = (h ^ uint64(b)) * 1099511628211
	}
	return h
}

func fnv64String(s string) uint64 { return fnv64([]byte(s)) }

// configFingerprint hashes every configuration knob that shapes detection
// state, so a checkpoint can only be restored into an engine configured
// exactly like the one that wrote it. The correlator selection and the
// ruleset are bound separately (by name list and by rules hash) so their
// mismatch errors can be specific.
func configFingerprint(cfg Config, keepLog bool) uint64 {
	g := cfg.Gen.withDefaults()
	l := cfg.Limits
	s := fmt.Sprintf(
		"gen=%v/%v/%d/%d/%d/%v/%d/%v trail=%d timeout=%v limits=%d/%d/%d/%d/%d/%d/%d/%d/%d shed=%v stall=%v restart=%v keeplog=%v",
		g.MonitorWindow, g.ReinviteGrace, g.SeqJumpThreshold, g.AuthFloodThreshold, g.GuessThreshold, g.IMPeriod,
		g.DigestPort, g.RTPActivityEvery,
		cfg.MaxTrailLen, cfg.SessionTimeout,
		l.MaxSessions, l.MaxFragGroups, l.MaxStreams, l.MaxIMHistories, l.MaxSeqTrackers, l.MaxBindings,
		l.MaxRetainedAlerts, l.MaxRetainedEvents, l.MaxDigestEvents,
		l.ShedAfter, l.StallTimeout, l.RestartFailedShards, keepLog)
	return fnv64String(s)
}

// rulesFingerprint hashes the canonical textual rendering of a ruleset.
// Editing rules/default.rules (or passing a different -rules file) changes
// this hash, which makes a stale checkpoint fail loudly at resume.
func rulesFingerprint(rules []Rule) uint64 {
	return fnv64String(FormatRules(rules))
}

func correlatorNames(correlators []Correlator) []string {
	names := make([]string, len(correlators))
	for i, c := range correlators {
		names[i] = c.Name()
	}
	return names
}

// --- header ---

// snapHeader binds a snapshot to the producing engine's identity.
type snapHeader struct {
	engineKind  uint8
	shards      int
	ingesters   int
	frames      uint64
	configHash  uint64
	rulesHash   uint64
	correlators []string
}

func writeSnapHeader(w *snapWriter, h snapHeader) {
	w.buf = append(w.buf, snapMagic...)
	w.u8(snapVersion)
	w.u8(h.engineKind)
	w.u32(uint32(h.shards))
	w.u32(uint32(h.ingesters))
	w.u64(h.frames)
	w.u64(h.configHash)
	w.u64(h.rulesHash)
	w.u32(uint32(len(h.correlators)))
	for _, name := range h.correlators {
		w.str(name)
	}
}

func readSnapHeader(r *snapReader) snapHeader {
	var h snapHeader
	magic := r.take(len(snapMagic))
	if r.err != nil {
		return h
	}
	if string(magic) != snapMagic {
		r.fail("core: not a SCIDIVE checkpoint (bad magic %q)", magic)
		return h
	}
	if v := r.u8(); r.err == nil && v != snapVersion {
		if v == 2 {
			r.fail("core: checkpoint is format v2 (fixed-geometry, pre-portable); this build reads only v6 checkpoints — re-capture a checkpoint with this build")
		} else if v == 3 {
			r.fail("core: checkpoint is format v3 (pre-stream-transport); this build reads only v6 checkpoints — re-capture a checkpoint with this build")
		} else if v == 4 {
			r.fail("core: checkpoint is format v4 (pre-classification-ledger); this build reads only v6 checkpoints — re-capture a checkpoint with this build")
		} else if v == 5 {
			r.fail("core: checkpoint is format v5 (pre-cooperative); this build reads only v6 checkpoints — re-capture a checkpoint with this build")
		} else {
			r.fail("core: unsupported checkpoint format version %d (this build reads version %d); re-capture a checkpoint with this build", v, snapVersion)
		}
		return h
	}
	h.engineKind = r.u8()
	h.shards = int(r.u32())
	h.ingesters = int(r.u32())
	h.frames = r.u64()
	h.configHash = r.u64()
	h.rulesHash = r.u64()
	n := r.count()
	for i := 0; i < n && r.err == nil; i++ {
		h.correlators = append(h.correlators, r.strv())
	}
	return h
}

// openSnapshot verifies the checksum and header framing of a snapshot and
// returns the parsed header plus a reader positioned at the body.
func openSnapshot(data []byte) (snapHeader, *snapReader, error) {
	if len(data) < len(snapMagic)+8 {
		return snapHeader{}, nil, fmt.Errorf("core: checkpoint truncated (%d bytes)", len(data))
	}
	sum := binary.BigEndian.Uint64(data[len(data)-8:])
	if got := fnv64(data[:len(data)-8]); got != sum {
		return snapHeader{}, nil, fmt.Errorf("core: checkpoint corrupt (checksum %016x, computed %016x)", sum, got)
	}
	r := &snapReader{buf: data[:len(data)-8]}
	h := readSnapHeader(r)
	if r.err != nil {
		return snapHeader{}, nil, r.err
	}
	return h, r, nil
}

// validateSnapHeader checks a decoded header against the restoring
// engine's identity. Engine kind, shard count and ingest width are NOT
// validated: a portable (v3) body is keyed by session, so any geometry can
// restore it. Every remaining mismatch is a descriptive error naming both
// sides and saying how to proceed, so a resume against the wrong
// configuration fails loudly and actionably.
func validateSnapHeader(h, want snapHeader) error {
	if len(h.correlators) != len(want.correlators) || strings.Join(h.correlators, ",") != strings.Join(want.correlators, ",") {
		return fmt.Errorf("core: checkpoint correlator set [%s] does not match engine correlator set [%s]; resume with -correlators matching the capture, or re-capture a checkpoint under the new set",
			strings.Join(h.correlators, ", "), strings.Join(want.correlators, ", "))
	}
	if h.rulesHash != want.rulesHash {
		return fmt.Errorf("core: checkpoint ruleset hash %016x does not match engine ruleset hash %016x (rules changed since the checkpoint); resume with the capture-time rules file and hot-reload the new ruleset (SIGHUP or -reload-rules), or re-capture",
			h.rulesHash, want.rulesHash)
	}
	if h.configHash != want.configHash {
		return fmt.Errorf("core: checkpoint config hash %016x does not match engine config hash %016x (GenConfig, Limits, trail or timeout settings differ); resume with the capture-time settings, or re-capture a checkpoint under the new ones",
			h.configHash, want.configHash)
	}
	return nil
}

// SnapshotInfo is the peekable identity of a checkpoint, read without
// decoding (or validating) the body. The writing geometry is recorded for
// operators but does not constrain restore: a portable checkpoint resumes
// at any shards × ingest combination, in either engine kind.
type SnapshotInfo struct {
	// Sharded reports which engine kind wrote the checkpoint
	// (informational only).
	Sharded bool
	// Shards is the writing engine's shard count (1 for serial;
	// informational only).
	Shards int
	// Ingesters is the writing engine's parallel ingest-router count
	// (1 for serial or a synchronous-router sharded engine;
	// informational only).
	Ingesters int
	// Frames is how many frames the engine had processed at the
	// checkpoint; a resuming replay skips this many frames.
	Frames uint64
}

// PeekSnapshotInfo reads a checkpoint's header, verifying framing and
// checksum but not configuration compatibility.
func PeekSnapshotInfo(data []byte) (SnapshotInfo, error) {
	h, _, err := openSnapshot(data)
	if err != nil {
		return SnapshotInfo{}, err
	}
	return SnapshotInfo{Sharded: h.engineKind == snapKindSharded, Shards: h.shards, Ingesters: h.ingesters, Frames: h.frames}, nil
}

// WriteCheckpoint atomically writes a snapshot to path: the bytes land in
// a temporary file in the same directory, which is fsynced and renamed
// over the target, so a crash mid-write can never leave a torn
// checkpoint.
func WriteCheckpoint(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("core: checkpoint: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("core: checkpoint: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("core: checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("core: checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("core: checkpoint: %w", err)
	}
	return nil
}

// --- shared field codecs ---

func writeEvent(w *snapWriter, ev Event) {
	w.dur(ev.At)
	w.vint(int(ev.Type))
	w.str(ev.Session)
	w.str(ev.Detail)
	w.str(ev.Point)
}

// readEvent decodes an event. The triggering footprint is deliberately
// not checkpointed (it aliases decoded packet memory); restored events
// carry a nil Footprint, which nothing downstream of the rule engine
// reads.
func readEvent(r *snapReader) Event {
	return Event{At: r.dur(), Type: EventType(r.vint()), Session: r.strv(), Detail: r.strv(), Point: r.strv()}
}

func writeEvents(w *snapWriter, evs []Event) {
	w.u32(uint32(len(evs)))
	for _, ev := range evs {
		writeEvent(w, ev)
	}
}

func readEvents(r *snapReader) []Event {
	n := r.count()
	out := make([]Event, 0, min(n, 4096))
	for i := 0; i < n && r.err == nil; i++ {
		out = append(out, readEvent(r))
	}
	return out
}

func writeAlert(w *snapWriter, a Alert) {
	w.dur(a.At)
	w.str(a.Rule)
	w.vint(int(a.Severity))
	w.str(a.Session)
	w.str(a.Detail)
	w.vint(a.Count)
	writeEvents(w, a.Events)
}

func readAlert(r *snapReader) Alert {
	return Alert{
		At:       r.dur(),
		Rule:     r.strv(),
		Severity: Severity(r.vint()),
		Session:  r.strv(),
		Detail:   r.strv(),
		Count:    r.vint(),
		Events:   readEvents(r),
	}
}

func writeAlerts(w *snapWriter, alerts []Alert) {
	w.u32(uint32(len(alerts)))
	for _, a := range alerts {
		writeAlert(w, a)
	}
}

func readAlerts(r *snapReader) []Alert {
	n := r.count()
	out := make([]Alert, 0, min(n, 4096))
	for i := 0; i < n && r.err == nil; i++ {
		out = append(out, readAlert(r))
	}
	return out
}

func writeEngineStats(w *snapWriter, st EngineStats) {
	for _, v := range []int{
		st.Frames, st.Footprints, st.Events, st.Alerts, st.SessionsEvicted,
		st.FramesAfterClose, st.FramesShed, st.BatchesShed,
		st.SessionsCapEvicted, st.FragGroupsEvicted, st.StreamsEvicted,
		st.IMHistoriesEvicted,
		st.SeqTrackersEvicted, st.BindingsEvicted, st.AlertsEvicted,
		st.EventsEvicted, st.ShardsFailed, st.ShardsRestarted,
	} {
		w.vint(v)
	}
}

func readEngineStats(r *snapReader) EngineStats {
	var st EngineStats
	for _, p := range []*int{
		&st.Frames, &st.Footprints, &st.Events, &st.Alerts, &st.SessionsEvicted,
		&st.FramesAfterClose, &st.FramesShed, &st.BatchesShed,
		&st.SessionsCapEvicted, &st.FragGroupsEvicted, &st.StreamsEvicted,
		&st.IMHistoriesEvicted,
		&st.SeqTrackersEvicted, &st.BindingsEvicted, &st.AlertsEvicted,
		&st.EventsEvicted, &st.ShardsFailed, &st.ShardsRestarted,
	} {
		*p = r.vint()
	}
	return st
}

func writeDistillerStats(w *snapWriter, st DistillerStats) {
	for _, v := range []int{st.Frames, st.Fragments, st.DecodeError, st.SIP, st.RTP, st.RTCP, st.Acct, st.Raw, st.Ignored, st.Mismatched, st.Streamed, st.StreamMsgs} {
		w.vint(v)
	}
}

func readDistillerStats(r *snapReader) DistillerStats {
	var st DistillerStats
	for _, p := range []*int{&st.Frames, &st.Fragments, &st.DecodeError, &st.SIP, &st.RTP, &st.RTCP, &st.Acct, &st.Raw, &st.Ignored, &st.Mismatched, &st.Streamed, &st.StreamMsgs} {
		*p = r.vint()
	}
	return st
}

// --- session index ---

// sessionSnap is the decoded form of one sessionState.
type sessionSnap struct {
	st             sessionState
	guessResponses []string
}

type indexSnap struct {
	sessions   []sessionSnap
	pendingReg [][2]string
}

func writeSessionIndex(w *snapWriter, x *sessionIndex) {
	ids := make([]string, 0, len(x.sessions))
	for id := range x.sessions {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	w.u32(uint32(len(ids)))
	for _, id := range ids {
		st := x.sessions[id]
		w.str(st.callID)
		w.dur(st.lastSeen)
		w.bool(st.established)
		w.str(st.callerAOR)
		w.str(st.calleeAOR)
		w.str(st.callerTag)
		w.str(st.calleeTag)
		w.addrPort(st.callerMedia)
		w.addrPort(st.calleeMedia)
		w.addr(st.inviteSrcIP)
		w.bool(st.byeSeen)
		w.dur(st.byeAt)
		w.addrPort(st.byeFromMedia)
		w.u32(st.lastReinviteSeq)
		w.bool(st.reinviteSeen)
		w.dur(st.reinviteAt)
		w.addrPort(st.reinviteOldMedia)
		w.bool(st.badFormat)
		w.bool(st.acctStart)
		w.bool(st.unmatchedOnce)
		w.dur(st.rtcpByeAt)
		w.bool(st.rtcpByePending)
		w.bool(st.rtcpByeFired)
		w.bool(st.isRegistration)
		w.vint(st.challenges)
		w.bool(st.floodFired)
		guesses := make([]string, 0, len(st.guessResponses))
		for g := range st.guessResponses {
			guesses = append(guesses, g)
		}
		sort.Strings(guesses)
		w.u32(uint32(len(guesses)))
		for _, g := range guesses {
			w.str(g)
		}
		w.bool(st.guessFired)
	}
	regs := make([]string, 0, len(x.pendingReg))
	for id := range x.pendingReg {
		regs = append(regs, id)
	}
	sort.Strings(regs)
	w.u32(uint32(len(regs)))
	for _, id := range regs {
		w.str(id)
		w.str(x.pendingReg[id])
	}
}

func readSessionIndex(r *snapReader) indexSnap {
	var snap indexSnap
	n := r.count()
	for i := 0; i < n && r.err == nil; i++ {
		var s sessionSnap
		s.st.callID = r.strv()
		s.st.lastSeen = r.dur()
		s.st.established = r.boolv()
		s.st.callerAOR = r.strv()
		s.st.calleeAOR = r.strv()
		s.st.callerTag = r.strv()
		s.st.calleeTag = r.strv()
		s.st.callerMedia = r.addrPortv()
		s.st.calleeMedia = r.addrPortv()
		s.st.inviteSrcIP = r.addrv()
		s.st.byeSeen = r.boolv()
		s.st.byeAt = r.dur()
		s.st.byeFromMedia = r.addrPortv()
		s.st.lastReinviteSeq = r.u32()
		s.st.reinviteSeen = r.boolv()
		s.st.reinviteAt = r.dur()
		s.st.reinviteOldMedia = r.addrPortv()
		s.st.badFormat = r.boolv()
		s.st.acctStart = r.boolv()
		s.st.unmatchedOnce = r.boolv()
		s.st.rtcpByeAt = r.dur()
		s.st.rtcpByePending = r.boolv()
		s.st.rtcpByeFired = r.boolv()
		s.st.isRegistration = r.boolv()
		s.st.challenges = r.vint()
		s.st.floodFired = r.boolv()
		ng := r.count()
		for j := 0; j < ng && r.err == nil; j++ {
			s.guessResponses = append(s.guessResponses, r.strv())
		}
		s.st.guessFired = r.boolv()
		snap.sessions = append(snap.sessions, s)
	}
	nr := r.count()
	for i := 0; i < nr && r.err == nil; i++ {
		id := r.strv()
		aor := r.strv()
		snap.pendingReg = append(snap.pendingReg, [2]string{id, aor})
	}
	return snap
}

// installSessionIndex replaces the index's contents in place (the maps are
// aliased by the generator) and rebuilds the reverse media index when the
// index maintains one.
func installSessionIndex(x *sessionIndex, snap indexSnap) {
	clear(x.sessions)
	clear(x.pendingReg)
	if x.byMedia != nil {
		clear(x.byMedia)
	}
	for _, s := range snap.sessions {
		st := new(sessionState)
		*st = s.st
		st.guessResponses = make(map[string]struct{}, len(s.guessResponses))
		for _, g := range s.guessResponses {
			st.guessResponses[g] = struct{}{}
		}
		x.sessions[st.callID] = st
		x.indexMedia(st, st.callerMedia)
		x.indexMedia(st, st.calleeMedia)
	}
	for _, reg := range snap.pendingReg {
		x.pendingReg[reg[0]] = reg[1]
	}
}

// --- reassembler ---

func writeReassembly(w *snapWriter, reasm *packet.Reassembler) {
	streams := reasm.ExportStreams()
	w.u32(uint32(len(streams)))
	for _, s := range streams {
		w.addr(s.ID.Src)
		w.addr(s.ID.Dst)
		w.u8(s.ID.Proto)
		w.u16(s.ID.ID)
		w.bytes(s.Data)
		w.bools(s.Have)
		w.vint(s.TotalLen)
		w.dur(s.First)
	}
	w.vint(reasm.CapacityEvicted())
}

func readReassembly(r *snapReader) ([]packet.FragStream, int) {
	n := r.count()
	var streams []packet.FragStream
	for i := 0; i < n && r.err == nil; i++ {
		streams = append(streams, packet.FragStream{
			ID: packet.FragID{
				Src:   r.addrv(),
				Dst:   r.addrv(),
				Proto: r.u8(),
				ID:    r.u16(),
			},
			Data:     r.bytesv(),
			Have:     r.boolsv(),
			TotalLen: r.vint(),
			First:    r.dur(),
		})
	}
	return streams, r.vint()
}

// --- rule engine ---

type partialSnap struct {
	rule      string
	session   string
	startedAt time.Duration
	events    []Event
	next      int
	matched   []bool
	remaining int
}

type pendingSnap struct {
	key         string // ruleName|corrKey
	completedAt time.Duration
	deadline    time.Duration
	alert       Alert
}

type ruleSnap struct {
	partials   []partialSnap
	alerts     []Alert
	dedupKeys  []string
	dedupIdx   []int
	dedupBase  int
	evicted    int
	version    int
	eventsSeen int
	pendings   []pendingSnap
	lastKeys   []string // absent-lookback keys, sorted
	lastAt     []time.Duration
}

func writeRuleEngine(w *snapWriter, re *RuleEngine) {
	keys := make([]string, 0, len(re.partials))
	for k, parts := range re.partials {
		if len(parts) > 0 {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	w.u32(uint32(len(keys)))
	for _, k := range keys {
		rule, session, _ := strings.Cut(k, "|")
		w.str(rule)
		w.str(session)
		parts := re.partials[k]
		w.u32(uint32(len(parts)))
		for _, p := range parts {
			w.dur(p.startedAt)
			writeEvents(w, p.events)
			w.vint(p.next)
			w.bools(p.matched)
			w.vint(p.remaining)
		}
	}
	writeAlerts(w, re.alerts)
	dk := make([]string, 0, len(re.dedup))
	for k := range re.dedup {
		dk = append(dk, k)
	}
	sort.Strings(dk)
	w.u32(uint32(len(dk)))
	for _, k := range dk {
		w.str(k)
		w.vint(re.dedup[k])
	}
	w.vint(re.dedupBase)
	w.vint(re.evicted)
	w.vint(re.version)
	w.vint(re.EventsSeen)
	writeAbsentState(w, re)
}

// writeAbsentState serializes the absence machinery (v6): pending graced
// alerts grouped by rule|key, then the absent-event lookback table.
func writeAbsentState(w *snapWriter, re *RuleEngine) {
	pk := make([]string, 0, len(re.pendings))
	for k, pend := range re.pendings {
		if len(pend) > 0 {
			pk = append(pk, k)
		}
	}
	sort.Strings(pk)
	w.u32(uint32(len(pk)))
	for _, k := range pk {
		w.str(k)
		pend := re.pendings[k]
		w.u32(uint32(len(pend)))
		for _, p := range pend {
			w.dur(p.completedAt)
			w.dur(p.deadline)
			writeAlert(w, p.alert)
		}
	}
	lk := make([]string, 0, len(re.lastAbsent))
	for k := range re.lastAbsent {
		lk = append(lk, k)
	}
	sort.Strings(lk)
	w.u32(uint32(len(lk)))
	for _, k := range lk {
		w.str(k)
		w.dur(re.lastAbsent[k])
	}
}

// readRuleEngine decodes rule-matching state. With a non-nil ruleset,
// partial-match shapes are validated against it so a decoded snapshot can
// never index out of a rule's step list; with rules nil (the sharded
// writer mining its own workers' trusted blobs) shape validation is
// skipped because the blobs never crossed a process boundary.
func readRuleEngine(r *snapReader, rules []Rule) ruleSnap {
	var snap ruleSnap
	nk := r.count()
	for i := 0; i < nk && r.err == nil; i++ {
		rule := r.strv()
		session := r.strv()
		var target Rule
		if rules != nil {
			var known bool
			target, known = RuleByName(rules, rule)
			if r.err == nil && !known {
				r.fail("core: snapshot references unknown rule %q (ruleset hash should have caught this)", rule)
				break
			}
		}
		np := r.count()
		for j := 0; j < np && r.err == nil; j++ {
			p := partialSnap{
				rule:      rule,
				session:   session,
				startedAt: r.dur(),
				events:    readEvents(r),
				next:      r.vint(),
				matched:   r.boolsv(),
				remaining: r.vint(),
			}
			if r.err != nil {
				break
			}
			if rules == nil {
				snap.partials = append(snap.partials, p)
				continue
			}
			steps := len(target.Steps)
			if target.Unordered {
				if len(p.matched) != steps || p.remaining < 1 || p.remaining > steps {
					r.fail("core: snapshot corrupt (partial for rule %q has %d matched flags, remaining %d; rule has %d steps)",
						rule, len(p.matched), p.remaining, steps)
					break
				}
			} else if p.next < 1 || p.next >= steps {
				r.fail("core: snapshot corrupt (partial for rule %q at step %d of %d)", rule, p.next, steps)
				break
			}
			if len(p.events) > steps {
				r.fail("core: snapshot corrupt (partial for rule %q holds %d events for %d steps)", rule, len(p.events), steps)
				break
			}
			snap.partials = append(snap.partials, p)
		}
	}
	snap.alerts = readAlerts(r)
	nd := r.count()
	for i := 0; i < nd && r.err == nil; i++ {
		snap.dedupKeys = append(snap.dedupKeys, r.strv())
		snap.dedupIdx = append(snap.dedupIdx, r.vint())
	}
	snap.dedupBase = r.vint()
	snap.evicted = r.vint()
	snap.version = r.vint()
	snap.eventsSeen = r.vint()
	np := r.count()
	for i := 0; i < np && r.err == nil; i++ {
		key := r.strv()
		if rules != nil && r.err == nil {
			name, _, _ := strings.Cut(key, "|")
			target, known := RuleByName(rules, name)
			if !known {
				r.fail("core: snapshot references unknown rule %q (ruleset hash should have caught this)", name)
				break
			}
			if len(target.Absent) == 0 {
				r.fail("core: snapshot corrupt (pending absence alert for rule %q, which has no absent clause)", name)
				break
			}
		}
		nn := r.count()
		for j := 0; j < nn && r.err == nil; j++ {
			ps := pendingSnap{key: key, completedAt: r.dur(), deadline: r.dur(), alert: readAlert(r)}
			if r.err == nil && ps.deadline < ps.completedAt {
				r.fail("core: snapshot corrupt (pending absence alert for %q matures before it completed)", key)
				break
			}
			snap.pendings = append(snap.pendings, ps)
		}
	}
	nl := r.count()
	for i := 0; i < nl && r.err == nil; i++ {
		snap.lastKeys = append(snap.lastKeys, r.strv())
		snap.lastAt = append(snap.lastAt, r.dur())
	}
	if r.err == nil {
		for i, k := range snap.dedupKeys {
			idx := snap.dedupIdx[i] - snap.dedupBase
			if idx < 0 || idx >= len(snap.alerts) {
				r.fail("core: snapshot corrupt (dedup entry %q points at alert %d of %d)", k, idx, len(snap.alerts))
				return snap
			}
			a := snap.alerts[idx]
			if a.Rule+"|"+a.Session != k {
				r.fail("core: snapshot corrupt (dedup entry %q points at alert for %q)", k, a.Rule+"|"+a.Session)
				return snap
			}
		}
	}
	return snap
}

// installRuleEngine replaces rule-matching state. With outputs false only
// the in-progress partial matches are restored (warm shard restart: the
// failed engine's published alerts were already folded into the worker's
// base, so restoring them here would double-count).
func installRuleEngine(re *RuleEngine, snap ruleSnap, outputs bool) {
	re.partials = make(map[string][]*partial)
	for _, ps := range snap.partials {
		key := ps.rule + "|" + ps.session
		p := &partial{
			startedAt: ps.startedAt,
			events:    ps.events,
			next:      ps.next,
			matched:   ps.matched,
			remaining: ps.remaining,
		}
		re.partials[key] = append(re.partials[key], p)
	}
	// The absence machinery is in-flight state like the partials, so it
	// installs on the warm-restart path too.
	re.pendings = make(map[string][]*pendingAlert)
	for _, ps := range snap.pendings {
		re.pendings[ps.key] = append(re.pendings[ps.key], &pendingAlert{
			completedAt: ps.completedAt,
			deadline:    ps.deadline,
			alert:       ps.alert,
		})
	}
	re.lastAbsent = make(map[string]time.Duration, len(snap.lastKeys))
	for i, k := range snap.lastKeys {
		re.lastAbsent[k] = snap.lastAt[i]
	}
	if !outputs {
		return
	}
	re.alerts = snap.alerts
	re.dedup = make(map[string]int, len(snap.dedupKeys))
	for i, k := range snap.dedupKeys {
		re.dedup[k] = snap.dedupIdx[i]
	}
	re.dedupBase = snap.dedupBase
	re.evicted = snap.evicted
	re.version = snap.version
	re.EventsSeen = snap.eventsSeen
}

// --- engine body ---

type trailSnap struct {
	session string
	proto   Protocol
	length  int
}

// corrBlob is one correlator's private state in serialized form, not yet
// bound to a correlator instance.
type corrBlob struct {
	name string
	blob []byte
}

// rawEngineBody is a fully decoded engine body with correlator state still
// in blob form. Nothing in it aliases any engine, so it can be split,
// merged and re-serialized freely — the portable-snapshot writer folds
// per-shard bodies into one global body through this type, and restore
// splits a global body back into per-shard bodies.
type rawEngineBody struct {
	stats           EngineStats
	dstats          DistillerStats
	streams         []packet.FragStream
	reasmEvicted    int
	trails          []trailSnap
	index           indexSnap
	bindings        []string
	bindingIPs      []netip.Addr
	bindingAges     []int
	bindingClock    int
	evictedSessions int
	evictedBindings int
	corrs           []corrBlob
	rules           ruleSnap
	events          []Event
}

// engineSnap is a rawEngineBody whose correlator blobs have been decoded
// against a concrete engine's correlator instances: ready to install.
type engineSnap struct {
	rawEngineBody
	corrInstalls []func()
}

// snapshotterNames lists the correlators that carry checkpointable private
// state, in registry order.
func snapshotters(correlators []Correlator) []Correlator {
	var out []Correlator
	for _, c := range correlators {
		if _, ok := c.(snapshotter); ok {
			out = append(out, c)
		}
	}
	return out
}

// writeCorrelators serializes every snapshotter correlator's private state
// as a named, length-prefixed blob.
func writeCorrelators(w *snapWriter, correlators []Correlator) {
	snaps := snapshotters(correlators)
	w.u32(uint32(len(snaps)))
	for _, c := range snaps {
		w.str(c.Name())
		var cw snapWriter
		c.(snapshotter).snapshotState(&cw)
		w.bytes(cw.buf)
	}
}

// readCorrelatorBlobs reads the named correlator-state blobs without
// binding them to correlator instances.
func readCorrelatorBlobs(r *snapReader) []corrBlob {
	n := r.count()
	out := make([]corrBlob, 0, min(n, 64))
	for i := 0; i < n && r.err == nil; i++ {
		out = append(out, corrBlob{name: r.strv(), blob: r.bytesv()})
	}
	return out
}

// writeCorrBlobs re-serializes already-serialized correlator state.
func writeCorrBlobs(w *snapWriter, blobs []corrBlob) {
	w.u32(uint32(len(blobs)))
	for _, cb := range blobs {
		w.str(cb.name)
		w.bytes(cb.blob)
	}
}

// decodeCorrBlob decodes one correlator blob against one correlator
// instance, returning the two-phase install closure.
func decodeCorrBlob(c Correlator, blob []byte) (func(), error) {
	cr := &snapReader{buf: blob}
	install, err := c.(snapshotter).decodeState(cr)
	if err != nil {
		return nil, fmt.Errorf("core: snapshot corrupt (correlator %s: %v)", c.Name(), err)
	}
	if !cr.done() {
		return nil, fmt.Errorf("core: snapshot corrupt (correlator %s: %d trailing bytes)", c.Name(), cr.remaining())
	}
	return install, nil
}

// buildCorrInstalls decodes correlator blobs against the target correlator
// set, returning install closures (two-phase: nothing mutates until every
// section of the snapshot has decoded).
func buildCorrInstalls(correlators []Correlator, blobs []corrBlob) ([]func(), error) {
	snaps := snapshotters(correlators)
	if len(blobs) != len(snaps) {
		return nil, fmt.Errorf("core: snapshot holds %d correlator states; engine has %d stateful correlators", len(blobs), len(snaps))
	}
	var installs []func()
	for i, cb := range blobs {
		if cb.name != snaps[i].Name() {
			return nil, fmt.Errorf("core: snapshot correlator state %q does not match engine correlator %q", cb.name, snaps[i].Name())
		}
		install, err := decodeCorrBlob(snaps[i], cb.blob)
		if err != nil {
			return nil, err
		}
		installs = append(installs, install)
	}
	return installs, nil
}

// writeSnapBody serializes the serial engine's full pipeline state with
// its raw (engine-local) stats block. The sharded engine reuses this per
// shard for warm-restart blobs and as the mining source for the global
// portable body.
func (e *Engine) writeSnapBody(w *snapWriter) {
	e.writeSnapBodyWithStats(w, e.stats)
}

// writeSnapBodyWithStats serializes the engine body with an explicit stats
// block: the portable checkpoint writes the folded Stats() view (so the
// block means the same thing whichever engine kind wrote it), while warm
// shard blobs keep the raw per-shard counters.
func (e *Engine) writeSnapBodyWithStats(w *snapWriter, st EngineStats) {
	writeEngineStats(w, st)
	writeDistillerStats(w, e.distiller.stats)
	writeReassembly(w, e.distiller.reasm)
	keys := make([]trailKey, 0, len(e.trails.trails))
	for k := range e.trails.trails {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].session != keys[j].session {
			return keys[i].session < keys[j].session
		}
		return keys[i].proto < keys[j].proto
	})
	w.u32(uint32(len(keys)))
	for _, k := range keys {
		w.str(k.session)
		w.vint(int(k.proto))
		w.vint(e.trails.trails[k].Len())
	}
	writeSessionIndex(w, e.gen.idx)
	ctx := e.gen.ctx
	aors := make([]string, 0, len(ctx.bindings))
	for aor := range ctx.bindings {
		aors = append(aors, aor)
	}
	sort.Strings(aors)
	canon := canonicalBindingAges(aors, func(aor string) int { return ctx.bindingAge[aor] })
	w.u32(uint32(len(aors)))
	for _, aor := range aors {
		w.str(aor)
		w.addr(ctx.bindings[aor])
		w.vint(canon[aor])
	}
	w.vint(len(aors))
	w.vint(ctx.evictedSessions)
	w.vint(ctx.evictedBindings)
	writeCorrelators(w, e.gen.correlators)
	writeRuleEngine(w, e.rules)
	writeEvents(w, e.events)
}

// parseEngineBody decodes an engine body into a rawEngineBody without
// binding it to any engine: correlator state stays in blob form. With a
// non-nil ruleset the rule-engine section is shape-validated against it.
func parseEngineBody(r *snapReader, rules []Rule) rawEngineBody {
	var body rawEngineBody
	body.stats = readEngineStats(r)
	body.dstats = readDistillerStats(r)
	body.streams, body.reasmEvicted = readReassembly(r)
	nt := r.count()
	for i := 0; i < nt && r.err == nil; i++ {
		body.trails = append(body.trails, trailSnap{
			session: r.strv(),
			proto:   Protocol(r.vint()),
			length:  r.vint(),
		})
	}
	body.index = readSessionIndex(r)
	nb := r.count()
	for i := 0; i < nb && r.err == nil; i++ {
		body.bindings = append(body.bindings, r.strv())
		body.bindingIPs = append(body.bindingIPs, r.addrv())
		body.bindingAges = append(body.bindingAges, r.vint())
	}
	body.bindingClock = r.vint()
	body.evictedSessions = r.vint()
	body.evictedBindings = r.vint()
	body.corrs = readCorrelatorBlobs(r)
	body.rules = readRuleEngine(r, rules)
	body.events = readEvents(r)
	return body
}

// parseEngineBodyBytes decodes a standalone engine-body blob into its raw
// form, requiring every byte to be consumed.
func parseEngineBodyBytes(blob []byte, rules []Rule) (rawEngineBody, error) {
	r := &snapReader{buf: blob}
	body := parseEngineBody(r, rules)
	if r.err != nil {
		return rawEngineBody{}, r.err
	}
	if !r.done() {
		return rawEngineBody{}, fmt.Errorf("core: snapshot corrupt (%d trailing bytes in engine body)", r.remaining())
	}
	return body, nil
}

// decodeSnapBody decodes an engine body into an engineSnap without
// mutating the engine. The engine is consulted only for its correlator
// instances and ruleset (shape validation and install-closure targets).
func (e *Engine) decodeSnapBody(r *snapReader) (*engineSnap, error) {
	body := parseEngineBody(r, e.rules.rules)
	if r.err != nil {
		return nil, r.err
	}
	installs, err := buildCorrInstalls(e.gen.correlators, body.corrs)
	if err != nil {
		return nil, err
	}
	return &engineSnap{rawEngineBody: body, corrInstalls: installs}, nil
}

// decodeSnapBodyBytes decodes a standalone engine-body blob (warm shard
// restarts keep these in memory between checkpoints).
func (e *Engine) decodeSnapBodyBytes(blob []byte) (*engineSnap, error) {
	r := &snapReader{buf: blob}
	snap, err := e.decodeSnapBody(r)
	if err != nil {
		return nil, err
	}
	if !r.done() {
		return nil, fmt.Errorf("core: snapshot corrupt (%d trailing bytes in engine body)", r.remaining())
	}
	return snap, nil
}

// --- neutral body writer (portable checkpoints) ---

// canonicalBindingAges renumbers media-binding LRU ages to 1..n in
// relative-order (age, then AOR) so the checkpoint carries only the LRU
// ORDER, never the raw clock values — those are geometry-dependent (each
// shard worker stamps with its own clock), and only the order matters
// for eviction. The accompanying clock is written as n, so post-restore
// insertions always age past every restored binding. This is what keeps
// checkpoints of the same logical state byte-identical across engine
// geometries.
func canonicalBindingAges(aors []string, age func(aor string) int) map[string]int {
	order := append([]string(nil), aors...)
	sort.Slice(order, func(i, j int) bool {
		ai, aj := age(order[i]), age(order[j])
		if ai != aj {
			return ai < aj
		}
		return order[i] < order[j]
	})
	canon := make(map[string]int, len(order))
	for i, aor := range order {
		canon[aor] = i + 1
	}
	return canon
}

// writeEngineBody serializes an already-decoded rawEngineBody in exactly
// the layout writeSnapBody produces from a live engine. The sharded
// writer uses it to emit the folded global body; determinism comes from
// sorting every keyed section here rather than trusting input order.
func writeEngineBody(w *snapWriter, body *rawEngineBody) {
	writeEngineStats(w, body.stats)
	writeDistillerStats(w, body.dstats)
	writeFragStreams(w, body.streams, body.reasmEvicted)
	trails := append([]trailSnap(nil), body.trails...)
	sort.Slice(trails, func(i, j int) bool {
		if trails[i].session != trails[j].session {
			return trails[i].session < trails[j].session
		}
		return trails[i].proto < trails[j].proto
	})
	w.u32(uint32(len(trails)))
	for _, t := range trails {
		w.str(t.session)
		w.vint(int(t.proto))
		w.vint(t.length)
	}
	writeIndexSnap(w, body.index)
	type binding struct {
		aor string
		ip  netip.Addr
		age int
	}
	binds := make([]binding, len(body.bindings))
	ages := make(map[string]int, len(body.bindings))
	aors := make([]string, len(body.bindings))
	for i, aor := range body.bindings {
		binds[i] = binding{aor: aor, ip: body.bindingIPs[i], age: body.bindingAges[i]}
		ages[aor] = body.bindingAges[i]
		aors[i] = aor
	}
	canon := canonicalBindingAges(aors, func(aor string) int { return ages[aor] })
	sort.Slice(binds, func(i, j int) bool { return binds[i].aor < binds[j].aor })
	w.u32(uint32(len(binds)))
	for _, b := range binds {
		w.str(b.aor)
		w.addr(b.ip)
		w.vint(canon[b.aor])
	}
	w.vint(len(binds))
	w.vint(body.evictedSessions)
	w.vint(body.evictedBindings)
	writeCorrBlobs(w, body.corrs)
	writeRuleSnap(w, body.rules)
	writeEvents(w, body.events)
}

// writeFragStreams serializes reassembly streams in the writeReassembly
// layout from their exported form.
func writeFragStreams(w *snapWriter, streams []packet.FragStream, evicted int) {
	w.u32(uint32(len(streams)))
	for _, s := range streams {
		w.addr(s.ID.Src)
		w.addr(s.ID.Dst)
		w.u8(s.ID.Proto)
		w.u16(s.ID.ID)
		w.bytes(s.Data)
		w.bools(s.Have)
		w.vint(s.TotalLen)
		w.dur(s.First)
	}
	w.vint(evicted)
}

// writeIndexSnap serializes a decoded session index in the
// writeSessionIndex layout, sorted by Call-ID.
func writeIndexSnap(w *snapWriter, snap indexSnap) {
	sessions := append([]sessionSnap(nil), snap.sessions...)
	sort.Slice(sessions, func(i, j int) bool { return sessions[i].st.callID < sessions[j].st.callID })
	w.u32(uint32(len(sessions)))
	for _, s := range sessions {
		st := &s.st
		w.str(st.callID)
		w.dur(st.lastSeen)
		w.bool(st.established)
		w.str(st.callerAOR)
		w.str(st.calleeAOR)
		w.str(st.callerTag)
		w.str(st.calleeTag)
		w.addrPort(st.callerMedia)
		w.addrPort(st.calleeMedia)
		w.addr(st.inviteSrcIP)
		w.bool(st.byeSeen)
		w.dur(st.byeAt)
		w.addrPort(st.byeFromMedia)
		w.u32(st.lastReinviteSeq)
		w.bool(st.reinviteSeen)
		w.dur(st.reinviteAt)
		w.addrPort(st.reinviteOldMedia)
		w.bool(st.badFormat)
		w.bool(st.acctStart)
		w.bool(st.unmatchedOnce)
		w.dur(st.rtcpByeAt)
		w.bool(st.rtcpByePending)
		w.bool(st.rtcpByeFired)
		w.bool(st.isRegistration)
		w.vint(st.challenges)
		w.bool(st.floodFired)
		guesses := append([]string(nil), s.guessResponses...)
		sort.Strings(guesses)
		w.u32(uint32(len(guesses)))
		for _, g := range guesses {
			w.str(g)
		}
		w.bool(st.guessFired)
	}
	regs := append([][2]string(nil), snap.pendingReg...)
	sort.Slice(regs, func(i, j int) bool { return regs[i][0] < regs[j][0] })
	w.u32(uint32(len(regs)))
	for _, reg := range regs {
		w.str(reg[0])
		w.str(reg[1])
	}
}

// writeRuleSnap serializes decoded rule-engine state in the
// writeRuleEngine layout: partials grouped by rule|session key with keys
// sorted and within-key insertion order preserved.
func writeRuleSnap(w *snapWriter, snap ruleSnap) {
	byKey := make(map[string][]partialSnap)
	keys := make([]string, 0, len(snap.partials))
	for _, ps := range snap.partials {
		k := ps.rule + "|" + ps.session
		if _, seen := byKey[k]; !seen {
			keys = append(keys, k)
		}
		byKey[k] = append(byKey[k], ps)
	}
	sort.Strings(keys)
	w.u32(uint32(len(keys)))
	for _, k := range keys {
		parts := byKey[k]
		w.str(parts[0].rule)
		w.str(parts[0].session)
		w.u32(uint32(len(parts)))
		for _, p := range parts {
			w.dur(p.startedAt)
			writeEvents(w, p.events)
			w.vint(p.next)
			w.bools(p.matched)
			w.vint(p.remaining)
		}
	}
	writeAlerts(w, snap.alerts)
	type dedupEntry struct {
		key string
		idx int
	}
	dd := make([]dedupEntry, len(snap.dedupKeys))
	for i, k := range snap.dedupKeys {
		dd[i] = dedupEntry{key: k, idx: snap.dedupIdx[i]}
	}
	sort.Slice(dd, func(i, j int) bool { return dd[i].key < dd[j].key })
	w.u32(uint32(len(dd)))
	for _, d := range dd {
		w.str(d.key)
		w.vint(d.idx)
	}
	w.vint(snap.dedupBase)
	w.vint(snap.evicted)
	w.vint(snap.version)
	w.vint(snap.eventsSeen)
	// Absence machinery, writeAbsentState layout: pendings grouped by key
	// (keys sorted, within-key order preserved), then the lookback table.
	type pendGroup struct {
		key  string
		pend []pendingSnap
	}
	pendIdx := make(map[string]int)
	var groups []pendGroup
	for _, ps := range snap.pendings {
		i, seen := pendIdx[ps.key]
		if !seen {
			i = len(groups)
			pendIdx[ps.key] = i
			groups = append(groups, pendGroup{key: ps.key})
		}
		groups[i].pend = append(groups[i].pend, ps)
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i].key < groups[j].key })
	w.u32(uint32(len(groups)))
	for _, g := range groups {
		w.str(g.key)
		w.u32(uint32(len(g.pend)))
		for _, p := range g.pend {
			w.dur(p.completedAt)
			w.dur(p.deadline)
			writeAlert(w, p.alert)
		}
	}
	type lastEntry struct {
		key string
		at  time.Duration
	}
	la := make([]lastEntry, len(snap.lastKeys))
	for i, k := range snap.lastKeys {
		la[i] = lastEntry{key: k, at: snap.lastAt[i]}
	}
	sort.Slice(la, func(i, j int) bool { return la[i].key < la[j].key })
	w.u32(uint32(len(la)))
	for _, e := range la {
		w.str(e.key)
		w.dur(e.at)
	}
}

// --- routing directory and fragment-buffer codecs ---

// writeSticky serializes the session → route-key pins that make routing
// reproducible across a restore: any geometry can re-derive every live
// dialog's shard from these.
func writeSticky(w *snapWriter, sticky map[string]string) {
	ids := make([]string, 0, len(sticky))
	for id := range sticky {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	w.u32(uint32(len(ids)))
	for _, id := range ids {
		w.str(id)
		w.str(sticky[id])
	}
}

func readSticky(r *snapReader) (keys, vals []string) {
	n := r.count()
	for i := 0; i < n && r.err == nil; i++ {
		keys = append(keys, r.strv())
		vals = append(vals, r.strv())
	}
	return keys, vals
}

// writeFragGroups serializes the buffered frames of in-progress IP
// fragment groups, so a restoring router can ship each completed group to
// its shard exactly as an uninterrupted run would have.
func writeFragGroups(w *snapWriter, frags map[fragIdent]*fragGroup) {
	idents := make([]fragIdent, 0, len(frags))
	for id := range frags {
		idents = append(idents, id)
	}
	sort.Slice(idents, func(i, j int) bool {
		a, b := idents[i], idents[j]
		if c := a.src.Compare(b.src); c != 0 {
			return c < 0
		}
		if c := a.dst.Compare(b.dst); c != 0 {
			return c < 0
		}
		if a.proto != b.proto {
			return a.proto < b.proto
		}
		return a.id < b.id
	})
	w.u32(uint32(len(idents)))
	for _, id := range idents {
		grp := frags[id]
		w.addr(id.src)
		w.addr(id.dst)
		w.u8(id.proto)
		w.u16(id.id)
		w.dur(grp.first)
		w.u32(uint32(len(grp.frames)))
		for _, f := range grp.frames {
			w.dur(f.at)
			w.bytes(f.frame)
		}
	}
}

func readFragGroups(r *snapReader) (idents []fragIdent, firsts []time.Duration, frames [][]routedFrame) {
	n := r.count()
	for i := 0; i < n && r.err == nil; i++ {
		idents = append(idents, fragIdent{
			src:   r.addrv(),
			dst:   r.addrv(),
			proto: r.u8(),
			id:    r.u16(),
		})
		firsts = append(firsts, r.dur())
		nf := r.count()
		var fs []routedFrame
		for j := 0; j < nf && r.err == nil; j++ {
			fs = append(fs, routedFrame{at: r.dur(), frame: r.bytesv()})
		}
		frames = append(frames, fs)
	}
	return idents, firsts, frames
}

// writeStreamMux serializes the stream-transport demux (serial distiller
// or sharded router — shards hold no stream state): every tracked TCP
// stream direction's reassembly state (delivery cursor, FIN bookkeeping,
// buffered out-of-order segments), that direction's SIP framing buffer
// (the incomplete message prefix), and the capacity-eviction counter.
// ExportStreams sorts by stream identity, so the encoding is
// deterministic. A nil mux (shard-local engine) writes an empty section.
func writeStreamMux(w *snapWriter, m *streamMux) {
	if m == nil {
		w.u32(0)
		w.vint(0)
		return
	}
	streams := m.reasm.ExportStreams()
	w.u32(uint32(len(streams)))
	for _, st := range streams {
		w.addrPort(st.ID.Src)
		w.addrPort(st.ID.Dst)
		w.u32(st.Next)
		w.bool(st.Fin)
		w.u32(st.FinSeq)
		w.dur(st.First)
		w.dur(st.Last)
		w.u32(uint32(len(st.Segs)))
		for _, sg := range st.Segs {
			w.u32(sg.Seq)
			w.bytes(sg.Data)
		}
		if fr := m.framers[st.ID]; fr != nil {
			w.bytes(fr.State())
		} else {
			w.bytes(nil)
		}
	}
	w.vint(m.reasm.CapacityEvicted())
}

func readStreamMux(r *snapReader) (streams []packet.TCPStreamState, framerBufs [][]byte, evicted int) {
	n := r.count()
	for i := 0; i < n && r.err == nil; i++ {
		st := packet.TCPStreamState{
			ID: packet.StreamID{Src: r.addrPortv(), Dst: r.addrPortv()},
		}
		st.Next = r.u32()
		st.Fin = r.boolv()
		st.FinSeq = r.u32()
		st.First = r.dur()
		st.Last = r.dur()
		ns := r.count()
		for j := 0; j < ns && r.err == nil; j++ {
			st.Segs = append(st.Segs, packet.TCPStreamSeg{Seq: r.u32(), Data: r.bytesv()})
		}
		streams = append(streams, st)
		framerBufs = append(framerBufs, r.bytesv())
	}
	evicted = r.vint()
	return streams, framerBufs, evicted
}

// install replaces the mux's state with a decoded checkpoint section. The
// pending-message queue is always empty at snapshot time (both engines
// drain extracted messages before the next frame), so only reassembly and
// framing state carry over.
func (m *streamMux) install(streams []packet.TCPStreamState, framerBufs [][]byte, evicted int) {
	m.reasm.ImportStreams(streams, evicted)
	clear(m.framers)
	for i, st := range streams {
		fr := new(sip.StreamFramer)
		fr.SetState(framerBufs[i])
		m.framers[st.ID] = fr
	}
	m.queue, m.qhead = m.queue[:0], 0
}

// installSnap installs a fully decoded body. With outputs true everything
// is restored (process resume); with outputs false only detection state is
// restored — stats, retained alerts/events, dedup suppression and the
// rule-engine version stay fresh, which is what a warm shard restart needs
// because the failed engine's outputs were already folded into the
// worker's base.
func (e *Engine) installSnap(snap *engineSnap, outputs bool) {
	if outputs {
		e.stats = snap.stats
		e.distiller.stats = snap.dstats
		e.distiller.reasm.ImportStreams(snap.streams, snap.reasmEvicted)
	} else {
		e.distiller.reasm.ImportStreams(snap.streams, 0)
	}
	clear(e.trails.trails)
	for _, t := range snap.trails {
		e.trails.trails[trailKey{session: t.session, proto: t.proto}] = &Trail{
			Session:  t.session,
			Protocol: t.proto,
			maxLen:   e.trails.MaxTrailLen,
			restored: t.length,
		}
	}
	installSessionIndex(e.gen.idx, snap.index)
	ctx := e.gen.ctx
	clear(ctx.bindings)
	clear(ctx.bindingAge)
	for i, aor := range snap.bindings {
		ctx.bindings[aor] = snap.bindingIPs[i]
		ctx.bindingAge[aor] = snap.bindingAges[i]
	}
	ctx.bindingClock = snap.bindingClock
	if outputs {
		ctx.evictedSessions = snap.evictedSessions
		ctx.evictedBindings = snap.evictedBindings
	}
	for _, install := range snap.corrInstalls {
		install()
	}
	installRuleEngine(e.rules, snap.rules, outputs)
	if outputs {
		e.events = snap.events
	}
}

// header returns the serial engine's snapshot identity.
func (e *Engine) header() snapHeader {
	return snapHeader{
		engineKind:  snapKindSerial,
		shards:      1,
		ingesters:   1,
		frames:      uint64(e.stats.Frames),
		configHash:  configFingerprint(e.cfg, e.keepLog),
		rulesHash:   rulesFingerprint(e.rules.rules),
		correlators: correlatorNames(e.gen.correlators),
	}
}

// Snapshot serializes the engine's complete detection state into a
// versioned, checksummed, geometry-portable checkpoint: the folded Stats()
// view as the stats block, the session-keyed body, the routing directory
// and the buffered fragment groups, so any shards × ingest geometry (or
// the serial engine) can restore it. The DirectTrailMatching ablation is
// not checkpointable: it re-reads raw trail contents, which snapshots
// deliberately drop.
func (e *Engine) Snapshot() ([]byte, error) {
	if e.cfg.DirectTrailMatching {
		return nil, fmt.Errorf("core: snapshot: the DirectTrailMatching ablation rereads raw trail contents and cannot be checkpointed")
	}
	var w snapWriter
	writeSnapHeader(&w, e.header())
	e.writeSnapBodyWithStats(&w, e.Stats())
	writeSticky(&w, e.gen.sticky)
	writeFragGroups(&w, e.distiller.frags)
	writeStreamMux(&w, e.distiller.streams)
	w.u64(fnv64(w.buf))
	return w.buf, nil
}

// RestoreSnapshot rebuilds the engine's state from a portable checkpoint
// written by either engine kind at any geometry. The engine must be fresh
// (no frames processed); correlator set, ruleset and config are validated
// against the header, each mismatch yielding a descriptive error that says
// how to proceed. On any error the engine is left untouched.
func (e *Engine) RestoreSnapshot(data []byte) error {
	if e.cfg.DirectTrailMatching {
		return fmt.Errorf("core: restore: the DirectTrailMatching ablation cannot be checkpointed")
	}
	if e.stats.Frames != 0 {
		return fmt.Errorf("core: restore requires a fresh engine (this one already processed %d frames)", e.stats.Frames)
	}
	h, r, err := openSnapshot(data)
	if err != nil {
		return err
	}
	if err := validateSnapHeader(h, e.header()); err != nil {
		return err
	}
	snap, err := e.decodeSnapBody(r)
	if err != nil {
		return err
	}
	stickyKeys, stickyVals := readSticky(r)
	fragIdents, fragFirsts, fragFrames := readFragGroups(r)
	tcpStreams, framerBufs, tcpEvicted := readStreamMux(r)
	if r.err != nil {
		return r.err
	}
	if !r.done() {
		return fmt.Errorf("core: snapshot corrupt (%d trailing bytes)", r.remaining())
	}
	e.installSnap(snap, true)
	// The portable stats block is the folded Stats() view, which already
	// contains the correlator-owned eviction counters; contributeStats
	// re-adds those from the restored correlator atomics, so zero them in
	// the base block to count each eviction once.
	e.stats.IMHistoriesEvicted = 0
	e.stats.SeqTrackersEvicted = 0
	clear(e.gen.sticky)
	for i, id := range stickyKeys {
		e.gen.sticky[id] = stickyVals[i]
	}
	clear(e.distiller.frags)
	for i, id := range fragIdents {
		e.distiller.frags[id] = &fragGroup{first: fragFirsts[i], frames: fragFrames[i]}
	}
	if e.distiller.streams != nil {
		e.distiller.streams.install(tcpStreams, framerBufs, tcpEvicted)
	}
	return nil
}
