package core

import (
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
	"time"
)

func TestExpireSessionsEvictsIdleState(t *testing.T) {
	trails := NewTrailStore(0)
	g := NewEventGenerator(GenConfig{}, trails)
	// Two sessions: one active recently, one long idle.
	for i, call := range []string{"old@x", "fresh@x"} {
		at := time.Duration(i) * time.Hour
		fp := &RTPFootprint{FootprintBase: FootprintBase{At: at}}
		g.Process(fp)
		// Force session state to exist by naming the session via SIP:
		st := g.session(call)
		st.lastSeen = at
		trails.Get(call, ProtoSIP).Append(fp)
	}
	if got := g.ExpireSessions(90*time.Minute, 45*time.Minute); got != 1 {
		t.Fatalf("evicted %d sessions, want 1", got)
	}
	if _, ok := g.sessions["old@x"]; ok {
		t.Error("idle session survived")
	}
	if _, ok := g.sessions["fresh@x"]; !ok {
		t.Error("fresh session evicted")
	}
	if trails.Lookup("old@x", ProtoSIP) != nil {
		t.Error("idle session's trails survived")
	}
	if trails.Lookup("fresh@x", ProtoSIP) == nil {
		t.Error("fresh session's trails evicted")
	}
}

func TestExpireSessionsIdempotent(t *testing.T) {
	g := NewEventGenerator(GenConfig{}, NewTrailStore(0))
	g.session("only@x").lastSeen = 0
	if got := g.ExpireSessions(time.Hour, time.Minute); got != 1 {
		t.Fatalf("first sweep evicted %d", got)
	}
	if got := g.ExpireSessions(2*time.Hour, time.Minute); got != 0 {
		t.Errorf("second sweep evicted %d", got)
	}
	// All sessions gone: the sequence trackers reset too.
	if len(g.seqs) != 0 {
		t.Errorf("seq trackers remain: %d", len(g.seqs))
	}
}

func TestExpireSessionsKeepsBindings(t *testing.T) {
	g := NewEventGenerator(GenConfig{}, NewTrailStore(0))
	g.bindings["alice@d"] = testSrcAddr()
	g.session("call@x").lastSeen = 0
	g.ExpireSessions(time.Hour, time.Minute)
	if len(g.Bindings()) != 1 {
		t.Error("registration binding evicted with session state")
	}
}

func TestGCPropertyNeverEvictsFresh(t *testing.T) {
	f := func(idleSecs, timeoutSecs uint8) bool {
		g := NewEventGenerator(GenConfig{}, NewTrailStore(0))
		idle := time.Duration(idleSecs) * time.Second
		timeout := time.Duration(timeoutSecs)*time.Second + time.Second
		now := 24 * time.Hour
		g.session("s").lastSeen = now - idle
		evicted := g.ExpireSessions(now, timeout)
		if idle > timeout {
			return evicted == 1
		}
		return evicted == 0
	}
	cfg := &quick.Config{Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// testSrcAddr returns a fixture address.
func testSrcAddr() netip.Addr { return netip.MustParseAddr("10.0.0.1") }
