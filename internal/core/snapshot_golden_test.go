package core_test

// Snapshot-format golden tests: the exact checkpoint bytes a fixed
// engine state serializes to, pinned under testdata/golden_snapshots.
// The format is an on-disk contract — an operator's checkpoint written
// before an upgrade must either restore cleanly or be refused loudly —
// so an accidental encoding change must fail here first, not corrupt a
// deployed checkpoint. Two properties are pinned per engine kind:
//
//  1. byte-identity: serializing the fixed state reproduces the golden
//     file exactly (the deterministic sorted-key encoding is load-bearing);
//  2. restorability: the committed golden file still restores into a
//     freshly configured engine and resuming it reproduces the
//     uninterrupted run.
//
// A deliberate format change bumps snapVersion and regenerates with:
//
//	go test ./internal/core -run TestSnapshotGolden -update
//
// and the diff is reviewed like any other behavior change.

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"scidive/internal/core"
)

// goldenSnapshotSpecs fixes the states being pinned: the bye scenario at
// the golden seed, checkpointed mid-dialog (rule partials, dialog
// machines, media bindings and RTP trackers all live), through the
// serial engine and a 2-shard engine.
const goldenSnapshotScenario = "bye"

func goldenSnapshotPath(kind string) string {
	return filepath.Join("testdata", "golden_snapshots", goldenSnapshotScenario+"_"+kind+".ckpt")
}

func goldenSnapshotState(t *testing.T) ([]rec, int) {
	t.Helper()
	frames := scenarioFrames(t, goldenSnapshotScenario, goldenSeed)
	return frames, len(frames) / 2
}

// firstDiff returns the offset of the first differing byte.
func firstDiff(a, b []byte) int {
	n := min(len(a), len(b))
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

func checkGolden(t *testing.T, kind string, got []byte) {
	t.Helper()
	path := goldenSnapshotPath(kind)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("no golden snapshot for %s (run with -update to record): %v", kind, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s checkpoint encoding changed: %d bytes (golden %d), first difference at offset %d\n"+
			"a deliberate format change must bump snapVersion and regenerate with -update",
			kind, len(got), len(want), firstDiff(got, want))
	}
}

// TestSnapshotGoldenSerial pins the serial-engine checkpoint format.
func TestSnapshotGoldenSerial(t *testing.T) {
	frames, k := goldenSnapshotState(t)
	eng := core.NewEngine(core.Config{}, core.WithEventLog())
	for _, r := range frames[:k] {
		eng.HandleFrame(r.at, r.frame)
	}
	snap, err := eng.Snapshot()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	checkGolden(t, "serial", snap)
}

// TestSnapshotGoldenSharded pins the 2-shard checkpoint format.
func TestSnapshotGoldenSharded(t *testing.T) {
	frames, k := goldenSnapshotState(t)
	eng := core.NewShardedEngine(core.Config{}, 2, core.WithEventLog())
	for _, r := range frames[:k] {
		eng.HandleFrame(r.at, r.frame)
	}
	snap, err := eng.Snapshot()
	eng.Close()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	checkGolden(t, "sharded2", snap)
}

// TestSnapshotGoldenRestores proves the committed golden files — stand-ins
// for checkpoints on an operator's disk — still restore and resume to the
// uninterrupted run's exact output. Breaking this without a version bump
// is the corruption scenario the golden files exist to prevent.
func TestSnapshotGoldenRestores(t *testing.T) {
	if *updateGolden {
		t.Skip("regenerating goldens")
	}
	frames, k := goldenSnapshotState(t)

	serialData, err := os.ReadFile(goldenSnapshotPath("serial"))
	if err != nil {
		t.Fatalf("no serial golden (run with -update to record): %v", err)
	}
	wantAlerts, wantEvents, wantStats := runSerialCfg(frames, core.Config{})
	eng := core.NewEngine(core.Config{}, core.WithEventLog())
	if err := eng.RestoreSnapshot(serialData); err != nil {
		t.Fatalf("committed serial golden no longer restores: %v", err)
	}
	for _, r := range frames[k:] {
		eng.HandleFrame(r.at, r.frame)
	}
	compareToBaseline(t, "serial golden resume", eng.Alerts(), eng.Events(), eng.Stats(),
		wantAlerts, wantEvents, wantStats)

	shardedData, err := os.ReadFile(goldenSnapshotPath("sharded2"))
	if err != nil {
		t.Fatalf("no sharded golden (run with -update to record): %v", err)
	}
	wantA, wantE, wantS := runShardedCfg(frames, 2, core.Config{})
	sh := core.NewShardedEngine(core.Config{}, 2, core.WithEventLog())
	defer sh.Close()
	if err := sh.RestoreSnapshot(shardedData); err != nil {
		t.Fatalf("committed sharded golden no longer restores: %v", err)
	}
	for _, r := range frames[k:] {
		sh.HandleFrame(r.at, r.frame)
	}
	sh.Flush()
	compareToBaseline(t, "sharded golden resume", sh.Alerts(), sh.Events(), sh.Stats(),
		wantA, wantE, wantS)
}

// TestSnapshotGoldenHeader pins the literal framing constants a reader of
// any version must agree on: magic and version byte.
func TestSnapshotGoldenHeader(t *testing.T) {
	if *updateGolden {
		t.Skip("regenerating goldens")
	}
	for _, kind := range []string{"serial", "sharded2"} {
		data, err := os.ReadFile(goldenSnapshotPath(kind))
		if err != nil {
			t.Fatalf("no %s golden: %v", kind, err)
		}
		if len(data) < 5 || string(data[:4]) != "SCDV" {
			t.Errorf("%s golden does not start with the SCDV magic", kind)
			continue
		}
		if data[4] != 6 {
			t.Errorf("%s golden has version %d; goldens must be regenerated when snapVersion bumps", kind, data[4])
		}
	}
}
