package core

import (
	"strconv"
	"strings"
	"time"
)

// Severity grades alerts.
type Severity int

// Severities.
const (
	SeverityInfo Severity = iota + 1
	SeverityWarning
	SeverityCritical
)

// String returns the severity name.
func (s Severity) String() string {
	switch s {
	case SeverityInfo:
		return "info"
	case SeverityWarning:
		return "warning"
	case SeverityCritical:
		return "critical"
	default:
		return "unknown"
	}
}

// Step is one element of a rule's event pattern.
type Step struct {
	// Type is the event type this step matches.
	Type EventType
	// Where, when non-nil, further constrains the event.
	Where func(e Event) bool
}

// Rule is a detection rule: a pattern of events within one session. Rules
// with one step are simple triggers; multi-step rules express the paper's
// stateful, cross-protocol sequences (e.g. billing fraud's three events).
type Rule struct {
	Name        string
	Description string
	Severity    Severity
	// Steps is the event pattern. With Unordered false the events must
	// arrive in order; with true, in any order (one event per step).
	Steps     []Step
	Unordered bool
	// Window bounds the time from the first matched event to the last
	// (0 = unbounded).
	Window time.Duration
	// CrossProtocol and Stateful document the rule's Table 1
	// classification.
	CrossProtocol bool
	Stateful      bool
}

// Alert is a rule match.
type Alert struct {
	At       time.Duration
	Rule     string
	Severity Severity
	Session  string
	Detail   string
	Events   []Event
	// Count is how many times this (rule, session) pair has fired; repeats
	// update the count instead of appending new alerts.
	Count int
}

// String formats the alert for output: "[%8.3fs] %-8s %-16s
// session=%s %s" plus " (x%d)" for repeats, built without nested
// Sprintf so the only allocation is the returned string.
func (a Alert) String() string {
	var b strings.Builder
	b.Grow(48 + len(a.Session) + len(a.Detail))
	appendStamp(&b, a.At)
	padRight(&b, a.Severity.String(), 8)
	b.WriteByte(' ')
	padRight(&b, a.Rule, 16)
	b.WriteString(" session=")
	b.WriteString(a.Session)
	b.WriteByte(' ')
	b.WriteString(a.Detail)
	if a.Count > 1 {
		b.WriteString(" (x")
		b.WriteString(strconv.Itoa(a.Count))
		b.WriteByte(')')
	}
	return b.String()
}

// partial is an in-progress multi-step match.
type partial struct {
	startedAt time.Duration
	events    []Event
	next      int    // ordered rules: index of the next step
	matched   []bool // unordered rules: which steps have matched
	remaining int
}

// RuleEngine matches events against a ruleset, tracking partial matches
// per (rule, session).
type RuleEngine struct {
	rules    []Rule
	partials map[string][]*partial // key: ruleName|session
	alerts   []Alert
	dedup    map[string]int // ruleName|session -> dedupBase-relative index into alerts
	// dedupBase is added to every physical alerts index before it is
	// stored in dedup, and subtracted on lookup. Evicting the oldest alert
	// then only bumps the base instead of rewriting the whole map.
	dedupBase int
	onAlert   func(Alert)

	// byType lists, per event type, the indices of rules with at least one
	// step of that type; Feed consults it instead of scanning every rule.
	// Rules a given event type can never advance are skipped entirely —
	// including their partial-expiry pass, which is safe because a stale
	// partial is always expired before the next event that could touch it.
	byType map[EventType][]int

	// maxAlerts caps the retained alert list (0 = unbounded); evicted
	// counts alerts dropped to respect it. Evicting an alert forgets its
	// dedup suppression, so the same (rule, session) may re-fire later.
	maxAlerts int
	evicted   int
	// version increments on every raise, including suppressed repeats
	// that only bump a Count; snapshot publishers use it to detect any
	// change to the alert list.
	version int

	// EventsSeen counts events fed to the engine.
	EventsSeen int
}

// NewRuleEngine returns an engine for the given ruleset.
func NewRuleEngine(rules []Rule) *RuleEngine {
	return &RuleEngine{
		rules:    rules,
		partials: make(map[string][]*partial),
		dedup:    make(map[string]int),
		byType:   buildByType(rules),
	}
}

// buildByType indexes a ruleset by the event types that can advance each
// rule (see the byType field doc).
func buildByType(rules []Rule) map[EventType][]int {
	byType := make(map[EventType][]int)
	for i := range rules {
		seen := make(map[EventType]bool, len(rules[i].Steps))
		for _, st := range rules[i].Steps {
			if !seen[st.Type] {
				seen[st.Type] = true
				byType[st.Type] = append(byType[st.Type], i)
			}
		}
	}
	return byType
}

// reload swaps the active ruleset at a quiescent point (between Feed
// calls). In-flight partial matches are carried forward for rules that
// exist in both rulesets with identical canonical text (FormatRules on
// the single rule — Where predicates are not representable in the DSL and
// so not part of the comparison) and dropped for removed or edited rules.
// Raised alerts, dedup suppression and the eviction offsets are
// untouched: detections that already fired survive a reload, exactly as
// they survive a checkpoint restore. Returns how many partials were
// dropped.
func (re *RuleEngine) reload(newRules []Rule) int {
	oldByName := make(map[string]string, len(re.rules))
	for i := range re.rules {
		oldByName[re.rules[i].Name] = FormatRules(re.rules[i : i+1])
	}
	keep := make(map[string]bool, len(newRules))
	for i := range newRules {
		if old, ok := oldByName[newRules[i].Name]; ok && old == FormatRules(newRules[i:i+1]) {
			keep[newRules[i].Name] = true
		}
	}
	dropped := 0
	for key, parts := range re.partials {
		name, _, _ := strings.Cut(key, "|")
		if keep[name] {
			continue
		}
		dropped += len(parts)
		delete(re.partials, key)
	}
	re.rules = newRules
	re.byType = buildByType(newRules)
	return dropped
}

// raiseSynthetic records an engine-generated alert (rule-reload and
// friends) through the same dedup, retention-cap and callback machinery
// as rule matches, so downstream consumers cannot tell the two apart.
func (re *RuleEngine) raiseSynthetic(a Alert) {
	re.version++
	key := a.Rule + "|" + a.Session
	if idx, seen := re.dedup[key]; seen {
		re.alerts[idx-re.dedupBase].Count++
		return
	}
	if re.maxAlerts > 0 && len(re.alerts) >= re.maxAlerts {
		re.evictOldestAlert()
	}
	re.dedup[key] = len(re.alerts) + re.dedupBase
	re.alerts = append(re.alerts, a)
	if re.onAlert != nil {
		re.onAlert(a)
	}
}

// OnAlert registers a callback invoked for each new alert (not for
// suppressed repeats).
func (re *RuleEngine) OnAlert(fn func(Alert)) { re.onAlert = fn }

// Rules returns the ruleset.
func (re *RuleEngine) Rules() []Rule { return re.rules }

// Alerts returns all alerts raised so far.
func (re *RuleEngine) Alerts() []Alert {
	out := make([]Alert, len(re.alerts))
	copy(out, re.alerts)
	return out
}

// AlertsFor returns the alerts raised by one rule.
func (re *RuleEngine) AlertsFor(rule string) []Alert {
	var out []Alert
	for _, a := range re.alerts {
		if a.Rule == rule {
			out = append(out, a)
		}
	}
	return out
}

// Feed matches one event, returning any alerts it completes.
func (re *RuleEngine) Feed(e Event) []Alert {
	re.EventsSeen++
	var fired []Alert
	for _, i := range re.byType[e.Type] {
		if a, ok := re.feedRule(&re.rules[i], e); ok {
			fired = append(fired, a)
		}
	}
	return fired
}

func (re *RuleEngine) feedRule(r *Rule, e Event) (Alert, bool) {
	key := r.Name + "|" + e.Session
	parts := re.partials[key]
	// Expire stale partials.
	if r.Window > 0 {
		live := parts[:0]
		for _, p := range parts {
			if e.At-p.startedAt <= r.Window {
				live = append(live, p)
			}
		}
		parts = live
	}
	var completed *partial
	if r.Unordered {
		completed = re.advanceUnordered(r, e, &parts)
	} else {
		completed = re.advanceOrdered(r, e, &parts)
	}
	re.partials[key] = parts
	if completed == nil {
		return Alert{}, false
	}
	return re.raise(r, e, completed), true
}

func (re *RuleEngine) advanceOrdered(r *Rule, e Event, parts *[]*partial) *partial {
	// Advance existing partials first.
	for _, p := range *parts {
		step := r.Steps[p.next]
		if step.Type != e.Type || (step.Where != nil && !step.Where(e)) {
			continue
		}
		p.events = append(p.events, e)
		p.next++
		if p.next == len(r.Steps) {
			*parts = removePartial(*parts, p)
			return p
		}
		return nil // one partial consumes the event
	}
	// Start a new partial if the event matches step 0.
	step := r.Steps[0]
	if step.Type != e.Type || (step.Where != nil && !step.Where(e)) {
		return nil
	}
	p := &partial{startedAt: e.At, events: []Event{e}, next: 1}
	if p.next == len(r.Steps) {
		return p
	}
	*parts = append(*parts, p)
	return nil
}

func (re *RuleEngine) advanceUnordered(r *Rule, e Event, parts *[]*partial) *partial {
	match := func(p *partial) bool {
		for i, step := range r.Steps {
			if p.matched[i] || step.Type != e.Type {
				continue
			}
			if step.Where != nil && !step.Where(e) {
				continue
			}
			p.matched[i] = true
			p.remaining--
			p.events = append(p.events, e)
			return true
		}
		return false
	}
	for _, p := range *parts {
		if match(p) {
			if p.remaining == 0 {
				*parts = removePartial(*parts, p)
				return p
			}
			return nil
		}
	}
	p := &partial{startedAt: e.At, matched: make([]bool, len(r.Steps)), remaining: len(r.Steps)}
	if !match(p) {
		return nil
	}
	if p.remaining == 0 {
		return p
	}
	*parts = append(*parts, p)
	return nil
}

func removePartial(parts []*partial, target *partial) []*partial {
	for i, p := range parts {
		if p == target {
			return append(parts[:i], parts[i+1:]...)
		}
	}
	return parts
}

// raise records an alert, suppressing repeats per (rule, session).
func (re *RuleEngine) raise(r *Rule, e Event, p *partial) Alert {
	re.version++
	key := r.Name + "|" + e.Session
	if idx, seen := re.dedup[key]; seen {
		re.alerts[idx-re.dedupBase].Count++
		return re.alerts[idx-re.dedupBase]
	}
	if re.maxAlerts > 0 && len(re.alerts) >= re.maxAlerts {
		re.evictOldestAlert()
	}
	a := Alert{
		At:       e.At,
		Rule:     r.Name,
		Severity: r.Severity,
		Session:  e.Session,
		Detail:   e.Detail,
		Events:   append([]Event(nil), p.events...),
		Count:    1,
	}
	re.dedup[key] = len(re.alerts) + re.dedupBase
	re.alerts = append(re.alerts, a)
	if re.onAlert != nil {
		re.onAlert(a)
	}
	return a
}

// evictOldestAlert drops the front (oldest) retained alert in O(1):
// surviving dedup entries stay valid because they are stored relative to
// dedupBase, which advances by one per eviction.
func (re *RuleEngine) evictOldestAlert() {
	victim := re.alerts[0]
	re.alerts = append(re.alerts[:0], re.alerts[1:]...)
	re.evicted++
	re.dedupBase++
	delete(re.dedup, victim.Rule+"|"+victim.Session)
}
