package core

import (
	"sort"
	"strconv"
	"strings"
	"time"
)

// Severity grades alerts.
type Severity int

// Severities.
const (
	SeverityInfo Severity = iota + 1
	SeverityWarning
	SeverityCritical
)

// String returns the severity name.
func (s Severity) String() string {
	switch s {
	case SeverityInfo:
		return "info"
	case SeverityWarning:
		return "warning"
	case SeverityCritical:
		return "critical"
	default:
		return "unknown"
	}
}

// Step is one element of a rule's event pattern.
type Step struct {
	// Type is the event type this step matches.
	Type EventType
	// Point, when non-empty, requires the event to carry this capture
	// point (Event.Point) — the DSL's "@point" qualifier. Cross-point
	// rules use it to demand evidence from a specific vantage.
	Point string
	// Where, when non-nil, further constrains the event.
	Where func(e Event) bool
}

// stepMatches reports whether one event satisfies one step.
func stepMatches(step Step, e Event) bool {
	if step.Type != e.Type {
		return false
	}
	if step.Point != "" && step.Point != e.Point {
		return false
	}
	return step.Where == nil || step.Where(e)
}

// KeyByDetail is the Rule.KeyBy value that correlates on Event.Detail
// instead of Event.Session (the DSL's "keyby detail"). Cross-point rules
// use it when the shared identity lives in the detail — e.g. the AOR of
// a REGISTER 200, whose Call-ID differs per vantage.
const KeyByDetail = "detail"

// Rule is a detection rule: a pattern of events within one session. Rules
// with one step are simple triggers; multi-step rules express the paper's
// stateful, cross-protocol sequences (e.g. billing fraud's three events).
type Rule struct {
	Name        string
	Description string
	Severity    Severity
	// Steps is the event pattern. With Unordered false the events must
	// arrive in order; with true, in any order (one event per step).
	Steps     []Step
	Unordered bool
	// Window bounds the time from the first matched event to the last
	// (0 = unbounded).
	Window time.Duration
	// CrossProtocol and Stateful document the rule's Table 1
	// classification.
	CrossProtocol bool
	Stateful      bool
	// Absent, when non-empty, inverts the rule's tail: completing Steps
	// does not fire immediately but holds a pending alert, which an event
	// matching any Absent step (same correlation key) within AbsentGrace
	// of the completion cancels. The pending alert fires once the
	// engine's clock (any fed event, or an explicit Flush) passes the
	// grace deadline — "A happened here AND NOT B happened there". The
	// cancellation window is symmetric (|Δt| < AbsentGrace), so the
	// outcome does not depend on whether the cancelling event was merged
	// before or after the completion.
	Absent []Step
	// AbsentGrace bounds how far from the pattern's completion an Absent
	// event may land and still cancel. Required (>0) when Absent is set.
	AbsentGrace time.Duration
	// KeyBy selects the correlation key events are matched under:
	// "" = Event.Session (the default), KeyByDetail = Event.Detail.
	KeyBy string
}

// Alert is a rule match.
type Alert struct {
	At       time.Duration
	Rule     string
	Severity Severity
	Session  string
	Detail   string
	Events   []Event
	// Count is how many times this (rule, session) pair has fired; repeats
	// update the count instead of appending new alerts.
	Count int
}

// String formats the alert for output: "[%8.3fs] %-8s %-16s
// session=%s %s" plus " (x%d)" for repeats, built without nested
// Sprintf so the only allocation is the returned string.
func (a Alert) String() string {
	var b strings.Builder
	b.Grow(48 + len(a.Session) + len(a.Detail))
	appendStamp(&b, a.At)
	padRight(&b, a.Severity.String(), 8)
	b.WriteByte(' ')
	padRight(&b, a.Rule, 16)
	b.WriteString(" session=")
	b.WriteString(a.Session)
	b.WriteByte(' ')
	b.WriteString(a.Detail)
	if a.Count > 1 {
		b.WriteString(" (x")
		b.WriteString(strconv.Itoa(a.Count))
		b.WriteByte(')')
	}
	return b.String()
}

// partial is an in-progress multi-step match.
type partial struct {
	startedAt time.Duration
	events    []Event
	next      int    // ordered rules: index of the next step
	matched   []bool // unordered rules: which steps have matched
	remaining int
}

// pendingAlert is an absence rule whose positive pattern completed and
// is now waiting out its grace period: cancelled by a matching Absent
// event, raised when the clock passes deadline.
type pendingAlert struct {
	completedAt time.Duration
	deadline    time.Duration // completedAt + AbsentGrace
	alert       Alert         // prebuilt at completion so maturing is a plain raise
}

// RuleEngine matches events against a ruleset, tracking partial matches
// per (rule, session).
type RuleEngine struct {
	rules    []Rule
	partials map[string][]*partial // key: ruleName|session
	alerts   []Alert
	dedup    map[string]int // ruleName|session -> dedupBase-relative index into alerts
	// dedupBase is added to every physical alerts index before it is
	// stored in dedup, and subtracted on lookup. Evicting the oldest alert
	// then only bumps the base instead of rewriting the whole map.
	dedupBase int
	onAlert   func(Alert)

	// byType lists, per event type, the indices of rules with at least one
	// step of that type; Feed consults it instead of scanning every rule.
	// Rules a given event type can never advance are skipped entirely —
	// including their partial-expiry pass, which is safe because a stale
	// partial is always expired before the next event that could touch it.
	byType map[EventType][]int
	// byAbsent is byType's mirror for Absent steps: per event type, the
	// rules whose pending alerts that type can cancel.
	byAbsent map[EventType][]int

	// pendings holds completed-but-graced absence matches per
	// ruleName|corrKey; lastAbsent remembers the latest Absent-matching
	// event time per the same key, so a cancelling event that was merged
	// BEFORE the completion still cancels (the symmetric window).
	// lastAbsent is not bounded by Limits: only absence rules populate
	// it, and their correlation keys are the same session/AOR universe
	// the partial table already holds.
	pendings   map[string][]*pendingAlert
	lastAbsent map[string]time.Duration

	// maxAlerts caps the retained alert list (0 = unbounded); evicted
	// counts alerts dropped to respect it. Evicting an alert forgets its
	// dedup suppression, so the same (rule, session) may re-fire later.
	maxAlerts int
	evicted   int
	// version increments on every raise, including suppressed repeats
	// that only bump a Count; snapshot publishers use it to detect any
	// change to the alert list.
	version int

	// EventsSeen counts events fed to the engine.
	EventsSeen int
}

// NewRuleEngine returns an engine for the given ruleset.
func NewRuleEngine(rules []Rule) *RuleEngine {
	return &RuleEngine{
		rules:      rules,
		partials:   make(map[string][]*partial),
		dedup:      make(map[string]int),
		byType:     buildByType(rules),
		byAbsent:   buildByAbsent(rules),
		pendings:   make(map[string][]*pendingAlert),
		lastAbsent: make(map[string]time.Duration),
	}
}

// buildByType indexes a ruleset by the event types that can advance each
// rule (see the byType field doc).
func buildByType(rules []Rule) map[EventType][]int {
	byType := make(map[EventType][]int)
	for i := range rules {
		seen := make(map[EventType]bool, len(rules[i].Steps))
		for _, st := range rules[i].Steps {
			if !seen[st.Type] {
				seen[st.Type] = true
				byType[st.Type] = append(byType[st.Type], i)
			}
		}
	}
	return byType
}

// buildByAbsent indexes a ruleset by the event types that can cancel each
// rule's pending alerts (see the byAbsent field doc).
func buildByAbsent(rules []Rule) map[EventType][]int {
	byAbsent := make(map[EventType][]int)
	for i := range rules {
		seen := make(map[EventType]bool, len(rules[i].Absent))
		for _, st := range rules[i].Absent {
			if !seen[st.Type] {
				seen[st.Type] = true
				byAbsent[st.Type] = append(byAbsent[st.Type], i)
			}
		}
	}
	return byAbsent
}

// corrKey returns the correlation key the rule files state under.
func corrKey(r *Rule, e Event) string {
	if r.KeyBy == KeyByDetail {
		return e.Detail
	}
	return e.Session
}

// reload swaps the active ruleset at a quiescent point (between Feed
// calls). In-flight partial matches are carried forward for rules that
// exist in both rulesets with identical canonical text (FormatRules on
// the single rule — Where predicates are not representable in the DSL and
// so not part of the comparison) and dropped for removed or edited rules.
// Raised alerts, dedup suppression and the eviction offsets are
// untouched: detections that already fired survive a reload, exactly as
// they survive a checkpoint restore. Returns how many partials were
// dropped.
func (re *RuleEngine) reload(newRules []Rule) int {
	oldByName := make(map[string]string, len(re.rules))
	for i := range re.rules {
		oldByName[re.rules[i].Name] = FormatRules(re.rules[i : i+1])
	}
	keep := make(map[string]bool, len(newRules))
	for i := range newRules {
		if old, ok := oldByName[newRules[i].Name]; ok && old == FormatRules(newRules[i:i+1]) {
			keep[newRules[i].Name] = true
		}
	}
	dropped := 0
	for key, parts := range re.partials {
		name, _, _ := strings.Cut(key, "|")
		if keep[name] {
			continue
		}
		dropped += len(parts)
		delete(re.partials, key)
	}
	// Pending absence alerts are in-flight state too: a removed or edited
	// rule's pendings drop with its partials (the absent lookback table
	// is only consulted through a live rule, so stale entries are inert).
	for key, pend := range re.pendings {
		name, _, _ := strings.Cut(key, "|")
		if keep[name] {
			continue
		}
		dropped += len(pend)
		delete(re.pendings, key)
	}
	re.rules = newRules
	re.byType = buildByType(newRules)
	re.byAbsent = buildByAbsent(newRules)
	return dropped
}

// raiseSynthetic records an engine-generated alert (rule-reload and
// friends) through the same dedup, retention-cap and callback machinery
// as rule matches, so downstream consumers cannot tell the two apart.
func (re *RuleEngine) raiseSynthetic(a Alert) { re.raiseAlert(a) }

// RaiseSynthetic records an externally generated self-alert — the
// cooperative aggregator's digest-gap reports — through the same dedup,
// retention-cap and callback machinery as rule matches, returning the
// retained (possibly Count-bumped) entry.
func (re *RuleEngine) RaiseSynthetic(a Alert) Alert { return re.raiseAlert(a) }

// raiseAlert records one alert through the shared dedup, retention-cap
// and callback machinery, returning the retained (possibly Count-bumped)
// entry. All three raise paths — rule matches, matured absence pendings
// and synthetic self-alerts — funnel through here.
func (re *RuleEngine) raiseAlert(a Alert) Alert {
	re.version++
	key := a.Rule + "|" + a.Session
	if idx, seen := re.dedup[key]; seen {
		re.alerts[idx-re.dedupBase].Count++
		return re.alerts[idx-re.dedupBase]
	}
	if re.maxAlerts > 0 && len(re.alerts) >= re.maxAlerts {
		re.evictOldestAlert()
	}
	re.dedup[key] = len(re.alerts) + re.dedupBase
	re.alerts = append(re.alerts, a)
	if re.onAlert != nil {
		re.onAlert(a)
	}
	return a
}

// OnAlert registers a callback invoked for each new alert (not for
// suppressed repeats).
func (re *RuleEngine) OnAlert(fn func(Alert)) { re.onAlert = fn }

// Rules returns the ruleset.
func (re *RuleEngine) Rules() []Rule { return re.rules }

// Alerts returns all alerts raised so far.
func (re *RuleEngine) Alerts() []Alert {
	out := make([]Alert, len(re.alerts))
	copy(out, re.alerts)
	return out
}

// AlertsFor returns the alerts raised by one rule.
func (re *RuleEngine) AlertsFor(rule string) []Alert {
	var out []Alert
	for _, a := range re.alerts {
		if a.Rule == rule {
			out = append(out, a)
		}
	}
	return out
}

// Feed matches one event, returning any alerts it completes (including
// pending absence alerts the event's timestamp matures).
func (re *RuleEngine) Feed(e Event) []Alert {
	re.EventsSeen++
	var fired []Alert
	re.matureAbsent(e.At, &fired)
	re.observeAbsent(e)
	for _, i := range re.byType[e.Type] {
		if a, ok := re.feedRule(&re.rules[i], e); ok {
			fired = append(fired, a)
		}
	}
	return fired
}

// Flush matures pending absence alerts whose grace deadline has passed
// as of now, returning any alerts raised. Feeding an event matures
// implicitly; owners with quiet periods (the cooperative aggregator's
// merge boundary, end of a replay) call this to drain the tail.
func (re *RuleEngine) Flush(now time.Duration) []Alert {
	var fired []Alert
	re.matureAbsent(now, &fired)
	return fired
}

func (re *RuleEngine) feedRule(r *Rule, e Event) (Alert, bool) {
	key := r.Name + "|" + corrKey(r, e)
	parts := re.partials[key]
	// Expire stale partials.
	if r.Window > 0 {
		live := parts[:0]
		for _, p := range parts {
			if e.At-p.startedAt <= r.Window {
				live = append(live, p)
			}
		}
		parts = live
	}
	var completed *partial
	if r.Unordered {
		completed = re.advanceUnordered(r, e, &parts)
	} else {
		completed = re.advanceOrdered(r, e, &parts)
	}
	re.partials[key] = parts
	if completed == nil {
		return Alert{}, false
	}
	if len(r.Absent) > 0 {
		re.holdPending(r, e, completed, key)
		return Alert{}, false
	}
	return re.raise(r, e, completed), true
}

// holdPending files a completed absence match for its grace period —
// unless the lookback table shows a cancelling event already inside the
// symmetric window, in which case the match dies silently.
func (re *RuleEngine) holdPending(r *Rule, e Event, p *partial, key string) {
	if t, ok := re.lastAbsent[key]; ok && absDur(e.At-t) < r.AbsentGrace {
		return
	}
	re.pendings[key] = append(re.pendings[key], &pendingAlert{
		completedAt: e.At,
		deadline:    e.At + r.AbsentGrace,
		alert: Alert{
			At:       e.At,
			Rule:     r.Name,
			Severity: r.Severity,
			Session:  corrKey(r, e),
			Detail:   e.Detail + "; no " + absentDesc(r) + " within " + r.AbsentGrace.String(),
			Events:   append([]Event(nil), p.events...),
			Count:    1,
		},
	})
}

// absentDesc names a rule's absent pattern for alert details.
func absentDesc(r *Rule) string {
	var b strings.Builder
	for i, st := range r.Absent {
		if i > 0 {
			b.WriteByte('/')
		}
		b.WriteString(st.Type.String())
		if st.Point != "" {
			b.WriteByte('@')
			b.WriteString(st.Point)
		}
	}
	return b.String()
}

// observeAbsent runs one event against every rule whose Absent steps it
// could satisfy: it records the lookback timestamp and cancels pendings
// inside the symmetric grace window.
func (re *RuleEngine) observeAbsent(e Event) {
	for _, i := range re.byAbsent[e.Type] {
		r := &re.rules[i]
		matched := false
		for _, st := range r.Absent {
			if stepMatches(st, e) {
				matched = true
				break
			}
		}
		if !matched {
			continue
		}
		key := r.Name + "|" + corrKey(r, e)
		if t, ok := re.lastAbsent[key]; !ok || e.At > t {
			re.lastAbsent[key] = e.At
		}
		pend, ok := re.pendings[key]
		if !ok {
			continue
		}
		live := pend[:0]
		for _, p := range pend {
			if absDur(e.At-p.completedAt) < r.AbsentGrace {
				continue // cancelled: the absent evidence arrived
			}
			live = append(live, p)
		}
		if len(live) == 0 {
			delete(re.pendings, key)
		} else {
			re.pendings[key] = live
		}
	}
}

// matureAbsent raises every pending alert whose grace deadline has
// passed, in deterministic (deadline, rule, key) order.
func (re *RuleEngine) matureAbsent(now time.Duration, fired *[]Alert) {
	if len(re.pendings) == 0 {
		return
	}
	var due []*pendingAlert
	for key, pend := range re.pendings {
		live := pend[:0]
		for _, p := range pend {
			if p.deadline <= now {
				due = append(due, p)
			} else {
				live = append(live, p)
			}
		}
		if len(live) == 0 {
			delete(re.pendings, key)
		} else {
			re.pendings[key] = live
		}
	}
	if len(due) == 0 {
		return
	}
	sort.Slice(due, func(i, j int) bool {
		if due[i].deadline != due[j].deadline {
			return due[i].deadline < due[j].deadline
		}
		if due[i].alert.Rule != due[j].alert.Rule {
			return due[i].alert.Rule < due[j].alert.Rule
		}
		if due[i].alert.Session != due[j].alert.Session {
			return due[i].alert.Session < due[j].alert.Session
		}
		return due[i].completedAt < due[j].completedAt
	})
	for _, p := range due {
		*fired = append(*fired, re.raiseAlert(p.alert))
	}
}

// absDur is |d| for durations.
func absDur(d time.Duration) time.Duration {
	if d < 0 {
		return -d
	}
	return d
}

func (re *RuleEngine) advanceOrdered(r *Rule, e Event, parts *[]*partial) *partial {
	// Advance existing partials first.
	for _, p := range *parts {
		if !stepMatches(r.Steps[p.next], e) {
			continue
		}
		p.events = append(p.events, e)
		p.next++
		if p.next == len(r.Steps) {
			*parts = removePartial(*parts, p)
			return p
		}
		return nil // one partial consumes the event
	}
	// Start a new partial if the event matches step 0.
	if !stepMatches(r.Steps[0], e) {
		return nil
	}
	p := &partial{startedAt: e.At, events: []Event{e}, next: 1}
	if p.next == len(r.Steps) {
		return p
	}
	*parts = append(*parts, p)
	return nil
}

func (re *RuleEngine) advanceUnordered(r *Rule, e Event, parts *[]*partial) *partial {
	match := func(p *partial) bool {
		for i, step := range r.Steps {
			if p.matched[i] || !stepMatches(step, e) {
				continue
			}
			p.matched[i] = true
			p.remaining--
			p.events = append(p.events, e)
			return true
		}
		return false
	}
	for _, p := range *parts {
		if match(p) {
			if p.remaining == 0 {
				*parts = removePartial(*parts, p)
				return p
			}
			return nil
		}
	}
	p := &partial{startedAt: e.At, matched: make([]bool, len(r.Steps)), remaining: len(r.Steps)}
	if !match(p) {
		return nil
	}
	if p.remaining == 0 {
		return p
	}
	*parts = append(*parts, p)
	return nil
}

func removePartial(parts []*partial, target *partial) []*partial {
	for i, p := range parts {
		if p == target {
			return append(parts[:i], parts[i+1:]...)
		}
	}
	return parts
}

// raise records an alert, suppressing repeats per (rule, correlation
// key). The dedup check runs before the alert is materialized so a
// suppressed repeat never copies the partial's event list.
func (re *RuleEngine) raise(r *Rule, e Event, p *partial) Alert {
	key := r.Name + "|" + corrKey(r, e)
	if idx, seen := re.dedup[key]; seen {
		re.version++
		re.alerts[idx-re.dedupBase].Count++
		return re.alerts[idx-re.dedupBase]
	}
	return re.raiseAlert(Alert{
		At:       e.At,
		Rule:     r.Name,
		Severity: r.Severity,
		Session:  corrKey(r, e),
		Detail:   e.Detail,
		Events:   append([]Event(nil), p.events...),
		Count:    1,
	})
}

// evictOldestAlert drops the front (oldest) retained alert in O(1):
// surviving dedup entries stay valid because they are stored relative to
// dedupBase, which advances by one per eviction.
func (re *RuleEngine) evictOldestAlert() {
	victim := re.alerts[0]
	re.alerts = append(re.alerts[:0], re.alerts[1:]...)
	re.evicted++
	re.dedupBase++
	delete(re.dedup, victim.Rule+"|"+victim.Session)
}
