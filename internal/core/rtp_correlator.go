package core

import (
	"fmt"
	"net/netip"
	"sort"
	"sync/atomic"
	"time"

	"scidive/internal/rtp"
)

// rtpCorrelator correlates media traffic: sequence-number continuity per
// destination endpoint (paper Section 4.2.4), garbage on media ports
// (the Figure 8 attack signature), and the stateful cross-protocol checks
// for media belonging to a known SIP session — orphan flows after BYE
// (Figure 5) or REINVITE (Figure 7), and source legitimacy (Figure 8).
//
// The continuity trackers span sessions (they are keyed by endpoint), so
// in sharded mode they are router-owned: the router's instance computes
// the verdict in global frame order (rtpHint) and the shard instances
// consume it from RouteHints, leaving their own maps untouched.
type rtpCorrelator struct {
	cfg    GenConfig
	limits Limits
	seqs   map[netip.AddrPort]*seqTrack
	// evicted is atomic: the sharded router reads it for lock-free stats
	// while the routing lock is held elsewhere.
	evicted atomic.Uint64
}

func newRTPCorrelator() *rtpCorrelator {
	return &rtpCorrelator{seqs: make(map[netip.AddrPort]*seqTrack)}
}

func (c *rtpCorrelator) Name() string            { return "rtp" }
func (c *rtpCorrelator) Protocols() []Protocol   { return []Protocol{ProtoRTP} }
func (c *rtpCorrelator) configure(cfg GenConfig) { c.cfg = cfg }

// claimPort claims even media ports (RTP by convention).
func (c *rtpCorrelator) claimPort(srcPort, dstPort uint16) (Protocol, bool) {
	if dstPort >= defaultMediaPortFloor && dstPort%2 == 0 {
		return ProtoRTP, true
	}
	return ProtoOther, false
}

// contentConfirmer: RTP's wire shape (version bits, payload type outside
// the RTCP conflict range, nonzero SSRC) nominates payloads tunneled over
// non-media ports for reclassification (classify.go).
func (c *rtpCorrelator) contentProto() Protocol             { return ProtoRTP }
func (c *rtpCorrelator) confirmContent(payload []byte) bool { return confirmRTPContent(payload) }

func (c *rtpCorrelator) setLimits(l Limits)         { c.limits = l }
func (c *rtpCorrelator) shardLocalLimits(l *Limits) { l.MaxSeqTrackers = 0 }
func (c *rtpCorrelator) contributeStats(st *EngineStats) {
	st.SeqTrackersEvicted += int(c.evicted.Load())
}

// seqTrackers exposes the tracker map so the generator can alias it for
// state inspection.
func (c *rtpCorrelator) seqTrackers() map[netip.AddrPort]*seqTrack { return c.seqs }

// onEstablished clears continuity trackers for a freshly negotiated
// session's endpoints: RTP sequence numbers restart at a random value, so
// stale trackers from earlier calls must not carry over.
func (c *rtpCorrelator) onEstablished(st *sessionState) {
	delete(c.seqs, st.callerMedia)
	delete(c.seqs, st.calleeMedia)
}

// onExpire sweeps trackers for media endpoints of dead sessions. They are
// keyed by endpoint, not session, so the cheapest exact sweep is clearing
// when the session table empties. The map is cleared in place — the
// generator aliases it.
func (c *rtpCorrelator) onExpire(now time.Duration, sessionsRemaining int) {
	if sessionsRemaining == 0 {
		clear(c.seqs)
	}
}

// track folds one packet into the continuity tracker for its destination,
// returning the verdict. The serial correlator and the sharded router's
// instance (via rtpHint) run exactly this, so verdicts and evictions
// match packet for packet.
func (c *rtpCorrelator) track(at time.Duration, dst netip.AddrPort, seq uint16) SeqVerdict {
	var v SeqVerdict
	tr, ok := c.seqs[dst]
	if !ok {
		if c.limits.MaxSeqTrackers > 0 && len(c.seqs) >= c.limits.MaxSeqTrackers {
			if evictStalestSeq(c.seqs) {
				c.evicted.Add(1)
			}
		}
		tr = &seqTrack{}
		c.seqs[dst] = tr
		v.NewFlow = true
	}
	if tr.primed {
		v.Prev = tr.last
		if d := rtp.SeqDiff(tr.last, seq); d > c.cfg.SeqJumpThreshold || d < -c.cfg.SeqJumpThreshold {
			v.Jump = true
		}
	}
	if every := c.cfg.RTPActivityEvery; every > 0 {
		if v.NewFlow || at-tr.lastAct >= every {
			v.Activity = true
			tr.lastAct = at
		}
	}
	tr.primed = true
	tr.last = seq
	tr.at = at
	return v
}

// rtpHint computes the continuity verdict at the router, in global frame
// order, against the router-owned trackers.
func (c *rtpCorrelator) rtpHint(at time.Duration, dst netip.AddrPort, seq uint16, h *RouteHints) {
	h.Seq = c.track(at, dst, seq)
	h.HasSeq = true
}

func (c *rtpCorrelator) Process(v *FrameView, h RouteHints, ctx *SessionContext, evs *[]Event) {
	switch v.Proto {
	case ProtoOther:
		c.garbageEvent(v, h, ctx, evs)
	case ProtoRTP:
		c.processRTP(v, h, ctx, evs)
	}
}

// garbageEvent reports undecodable traffic on an RTP port, attributed to
// the session that negotiated the destination endpoint when one has.
func (c *rtpCorrelator) garbageEvent(v *FrameView, h RouteHints, ctx *SessionContext, evs *[]Event) {
	eventSession := h.Session
	if eventSession == "" {
		eventSession = ctx.Session()
		if s := ctx.MediaDstSession(v.Dst); s != "" {
			eventSession = s
		}
	}
	*evs = append(*evs, Event{
		At: v.At, Type: EvRTPGarbage, Session: eventSession,
		Detail:    fmt.Sprintf("undecodable %d bytes on RTP port from %v: %s", v.RawLen, v.Src, v.Reason),
		Footprint: ctx.Observation(),
	})
}

func (c *rtpCorrelator) processRTP(v *FrameView, h RouteHints, ctx *SessionContext, evs *[]Event) {
	session := ctx.Session()
	sv := h.Seq
	if !h.HasSeq {
		sv = c.track(v.At, v.Dst, v.RTP.Seq)
	}
	if sv.NewFlow {
		*evs = append(*evs, Event{At: v.At, Type: EvRTPNewFlow, Session: session,
			Detail: fmt.Sprintf("%v -> %v ssrc=%08x", v.Src, v.Dst, v.RTP.SSRC), Footprint: ctx.Observation()})
	}
	if sv.Jump {
		d := rtp.SeqDiff(sv.Prev, v.RTP.Seq)
		*evs = append(*evs, Event{
			At: v.At, Type: EvRTPSeqJump, Session: session,
			Detail: fmt.Sprintf("seq %d -> %d (|Δ|=%d > %d) at %v",
				sv.Prev, v.RTP.Seq, abs(d), c.cfg.SeqJumpThreshold, v.Dst),
			Footprint: ctx.Observation(),
		})
	}
	st, known := ctx.LookupSession(session)
	// Media-liveness heartbeat for cross-point rules (see GenConfig.
	// RTPActivityEvery): at most one event per interval per endpoint, so a
	// remote aggregator can prove media kept flowing without shipping
	// per-packet evidence. Suppressed once this tap has seen the session's
	// BYE — post-teardown media is orphan evidence (EvRTPAfterBye), not
	// liveness, and a vantage that witnessed a legitimate hangup must not
	// report the last in-flight packets as the call still being up.
	if sv.Activity && !(known && st.byeSeen) {
		*evs = append(*evs, Event{At: v.At, Type: EvRTPActivity, Session: session,
			Detail: fmt.Sprintf("media flowing to %v", v.Dst), Footprint: ctx.Observation()})
	}
	if !known {
		return
	}
	c.checkSessionRTP(v, st, ctx, evs)
}

// checkSessionRTP applies the stateful cross-protocol checks for media
// belonging to a known SIP session. The pending-RTCP-BYE check runs
// first: its event predates this packet's own findings.
func (c *rtpCorrelator) checkSessionRTP(v *FrameView, st *sessionState, ctx *SessionContext, evs *[]Event) {
	ctx.CheckPendingRTCPBye(st, v.At, evs)
	// Orphan flow after BYE (Figure 5 rule).
	if st.byeSeen && v.Src == st.byeFromMedia &&
		v.At > st.byeAt && v.At-st.byeAt <= c.cfg.MonitorWindow {
		*evs = append(*evs, Event{
			At: v.At, Type: EvRTPAfterBye, Session: st.callID,
			Detail:    fmt.Sprintf("RTP from %v %.1fms after its BYE", v.Src, (v.At-st.byeAt).Seconds()*1000),
			Footprint: ctx.Observation(),
		})
	}
	// Orphan flow after REINVITE (Figure 7 rule): traffic still arriving
	// from the address the "moved" party supposedly left, once the
	// migration transaction has had time to complete.
	if st.reinviteSeen && v.Src == st.reinviteOldMedia &&
		v.At-st.reinviteAt > c.cfg.ReinviteGrace &&
		v.At-st.reinviteAt <= c.cfg.ReinviteGrace+c.cfg.MonitorWindow {
		*evs = append(*evs, Event{
			At: v.At, Type: EvRTPAfterReinvite, Session: st.callID,
			Detail: fmt.Sprintf("RTP still arriving from old media address %v %.1fms after REINVITE",
				v.Src, (v.At-st.reinviteAt).Seconds()*1000),
			Footprint: ctx.Observation(),
		})
	}
	// Source legitimacy (Figure 8 rule): media to a negotiated endpoint
	// must come from the other negotiated endpoint.
	if !st.byeSeen {
		var expected netip.AddrPort
		switch v.Dst {
		case st.callerMedia:
			expected = st.calleeMedia
		case st.calleeMedia:
			expected = st.callerMedia
		}
		if expected.IsValid() && v.Src.Addr() != expected.Addr() {
			*evs = append(*evs, Event{
				At: v.At, Type: EvRTPBadSource, Session: st.callID,
				Detail:    fmt.Sprintf("media to %v from %v; session negotiated %v", v.Dst, v.Src, expected),
				Footprint: ctx.Observation(),
			})
		}
	}
}

// seqTrack tracks RTP sequence continuity per destination media endpoint.
type seqTrack struct {
	last    uint16
	primed  bool
	at      time.Duration // last packet toward this endpoint (LRU eviction)
	lastAct time.Duration // last activity heartbeat (RTPActivityEvery cadence)
}

// snapshotState serializes the continuity trackers in endpoint order.
func (c *rtpCorrelator) snapshotState(w *snapWriter) {
	keys := make([]netip.AddrPort, 0, len(c.seqs))
	for k := range c.seqs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return seqLess(keys[i], keys[j]) })
	w.u32(uint32(len(keys)))
	for _, k := range keys {
		tr := c.seqs[k]
		w.addrPort(k)
		w.u16(tr.last)
		w.bool(tr.primed)
		w.dur(tr.at)
		w.dur(tr.lastAct)
	}
	w.u64(c.evicted.Load())
}

// decodeState decodes trackers without touching the live map; the returned
// closure refills it in place (the generator aliases it via seqTrackers).
func (c *rtpCorrelator) decodeState(r *snapReader) (func(), error) {
	type entry struct {
		key netip.AddrPort
		tr  seqTrack
	}
	n := r.count()
	entries := make([]entry, 0, min(n, 4096))
	for i := 0; i < n && r.err == nil; i++ {
		entries = append(entries, entry{
			key: r.addrPortv(),
			tr:  seqTrack{last: r.u16(), primed: r.boolv(), at: r.dur(), lastAct: r.dur()},
		})
	}
	evicted := r.u64()
	if r.err != nil {
		return nil, r.err
	}
	return func() {
		clear(c.seqs)
		for _, e := range entries {
			tr := new(seqTrack)
			*tr = e.tr
			c.seqs[e.key] = tr
		}
		c.evicted.Store(evicted)
	}, nil
}

// evictStalestSeq removes the sequence tracker with the oldest last
// packet (ties broken by endpoint address, then port) and reports whether
// one was removed. Shared by the serial correlator and the sharded
// router's instance.
func evictStalestSeq(seqs map[netip.AddrPort]*seqTrack) bool {
	var vk netip.AddrPort
	found := false
	for k, tr := range seqs {
		if !found || tr.at < seqs[vk].at || (tr.at == seqs[vk].at && seqLess(k, vk)) {
			vk, found = k, true
		}
	}
	if found {
		delete(seqs, vk)
	}
	return found
}

func seqLess(a, b netip.AddrPort) bool {
	if c := a.Addr().Compare(b.Addr()); c != 0 {
		return c < 0
	}
	return a.Port() < b.Port()
}

func abs(d int) int {
	if d < 0 {
		return -d
	}
	return d
}
