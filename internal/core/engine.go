package core

import (
	"fmt"
	"net/netip"
	"time"

	"scidive/internal/capture"
	"scidive/internal/netsim"
	"scidive/internal/packet"
	"scidive/internal/sip"
)

// EngineStats counts end-to-end IDS activity. The overload and eviction
// counters make degradation under load observable: every frame shed and
// every entry evicted to respect a Limits cap is accounted here, never
// dropped silently.
type EngineStats struct {
	Frames          int
	Footprints      int
	Events          int
	Alerts          int
	SessionsEvicted int

	// FramesAfterClose counts HandleFrame calls arriving after Close
	// (sharded engine only; the serial engine has no Close).
	FramesAfterClose int
	// FramesShed and BatchesShed count work dropped by the sharded
	// router's load-shedding policy (ShedAfter) or dropped because the
	// owning shard was quarantined.
	FramesShed  int
	BatchesShed int
	// Per-category Limits evictions (see Limits for each cap's policy).
	SessionsCapEvicted int
	FragGroupsEvicted  int
	StreamsEvicted     int
	IMHistoriesEvicted int
	SeqTrackersEvicted int
	BindingsEvicted    int
	AlertsEvicted      int
	EventsEvicted      int
	// ShardsFailed counts shards quarantined after a panic or a watchdog
	// stall; ShardsRestarted counts fresh-state restarts of failed shards.
	ShardsFailed    int
	ShardsRestarted int
}

// Config configures an Engine.
type Config struct {
	// Gen tunes the Event Generator.
	Gen GenConfig
	// Correlators is the protocol-correlator registry, in dispatch order
	// (nil = DefaultCorrelators). Port classification, routing and event
	// generation all derive from it.
	Correlators []Registration
	// Rules is the ruleset (nil = DefaultRuleset).
	Rules []Rule
	// MaxTrailLen bounds per-trail memory (default 4096 footprints).
	MaxTrailLen int
	// SessionTimeout evicts per-session state and trails idle this long
	// (default 10 minutes; the paper notes memory is the practical bound
	// on how far apart correlated packets may be).
	SessionTimeout time.Duration
	// DirectTrailMatching is the ablation mode of DESIGN.md: bypass the
	// event layer and run rules as raw trail scans on every packet. Only
	// the BYE-attack rule is implemented in this mode; it exists to
	// measure what the event abstraction buys (paper Section 3.1).
	DirectTrailMatching bool
	// Limits is the state budget (zero value = unbounded, the historic
	// behavior).
	Limits Limits
	// IngestRouters is how many parallel ingest routers the sharded
	// engine fans capture decode across (<= 1 keeps the single
	// synchronous router; see ingest.go for the determinism argument).
	// The serial engine ignores it. Checkpoints record the width for
	// inspection only: the portable v3 format restores at any
	// shards x ingesters geometry.
	IngestRouters int
}

// Engine is a deployed SCIDIVE instance: Distiller -> Trails -> Event
// Generator -> Rule Matching Engine -> Alerts.
type Engine struct {
	cfg       Config
	distiller *Distiller
	trails    *TrailStore
	gen       *EventGenerator
	rules     *RuleEngine
	stats     EngineStats
	events    []Event
	keepLog   bool
	onEvent   func(Event)
	faults    FaultInjector

	// view and evScratch are the per-frame scratch of the hot path: the
	// frame is decoded into view in place and completed events accumulate
	// in evScratch, which is truncated (not freed) between frames. Both
	// are engine-owned, so a steady-state frame that completes no event
	// touches the heap zero times.
	view      FrameView
	evScratch []Event
}

// EngineOption customizes engine construction.
type EngineOption func(*Engine)

// WithEventLog makes the engine retain every generated event (for
// experiment reporting; costs memory on long runs).
func WithEventLog() EngineOption {
	return func(e *Engine) { e.keepLog = true }
}

// NewEngine builds an IDS instance.
func NewEngine(cfg Config, opts ...EngineOption) *Engine {
	if cfg.MaxTrailLen == 0 {
		cfg.MaxTrailLen = 4096
	}
	if cfg.SessionTimeout == 0 {
		cfg.SessionTimeout = 10 * time.Minute
	}
	rules := cfg.Rules
	if rules == nil {
		rules = DefaultRuleset()
	}
	trails := NewTrailStore(cfg.MaxTrailLen)
	// One correlator set serves the whole pipeline: the distiller asks it
	// for port claims, the generator dispatches footprints to it.
	correlators := buildCorrelators(cfg.Correlators, cfg.Gen.withDefaults())
	e := &Engine{
		cfg:       cfg,
		distiller: NewDistillerFor(correlators),
		trails:    trails,
		gen:       newEventGeneratorFrom(cfg.Gen, trails, correlators),
		rules:     NewRuleEngine(rules),
	}
	e.distiller.reasm.SetLimit(cfg.Limits.MaxFragGroups)
	e.gen.SetLimits(cfg.Limits)
	e.rules.maxAlerts = cfg.Limits.MaxRetainedAlerts
	// Router-state mirrors: the serial engine tracks the sticky routing
	// keys and in-progress fragment-group frames the sharded router would,
	// so its portable checkpoints restore at any shard count. Shard-local
	// engines (newShardEngine) nil both — the router owns that state.
	e.gen.sticky = make(map[string]string)
	e.distiller.frags = make(map[fragIdent]*fragGroup)
	e.distiller.reasm.OnEvict(func(id packet.FragID) {
		delete(e.distiller.frags, fragIdent{src: id.Src, dst: id.Dst, proto: id.Proto, id: id.ID})
	})
	// Stream-transport demux (serial engine only, like sticky/frags above:
	// the sharded router owns the only mux at shard counts > 0). Capacity
	// evictions lose mid-message reassembly state, so each raises an
	// ids-overload self-alert exactly as the sharded router does.
	e.distiller.streams = newStreamMux()
	e.distiller.streams.sniff = e.distiller.ladder.tunnelSniff
	e.distiller.streams.reasm.SetLimit(cfg.Limits.MaxStreams)
	e.distiller.streams.onEvict = func(id packet.StreamID, at time.Duration) {
		e.rules.raiseSynthetic(Alert{
			At: at, Rule: RuleIDSOverload, Severity: SeverityCritical, Session: "streams",
			Detail: "tcp stream reassembly state evicted to respect MaxStreams (possible mid-message loss)",
			Count:  1,
		})
	}
	for _, o := range opts {
		o(e)
	}
	return e
}

// ReloadRules swaps the active ruleset at a frame boundary (rules hot
// reload). In-flight partial matches are carried forward for rules whose
// canonical text is unchanged and dropped for removed or edited rules;
// the returned count is how many partials were dropped. nil installs
// DefaultRuleset. The error is always nil for the serial engine (the
// signature matches ShardedEngine.ReloadRules, which can fail after
// Close).
func (e *Engine) ReloadRules(rules []Rule) (int, error) {
	if rules == nil {
		rules = DefaultRuleset()
	}
	dropped := e.rules.reload(rules)
	e.cfg.Rules = rules
	if dropped > 0 {
		e.rules.raiseSynthetic(Alert{
			At: 0, Rule: RuleRuleReload, Severity: SeverityCritical, Session: "rules",
			Detail: fmt.Sprintf("ruleset reloaded: %d in-flight partial matches dropped (rules removed or edited)", dropped),
			Count:  1,
		})
	}
	return dropped, nil
}

// Stats returns a snapshot of the engine counters, folding in the
// eviction counts kept by the pipeline stages.
func (e *Engine) Stats() EngineStats {
	st := e.stats
	st.SessionsCapEvicted = e.gen.ctx.evictedSessions
	st.BindingsEvicted = e.gen.ctx.evictedBindings
	for _, c := range e.gen.correlators {
		if b, ok := c.(budgeted); ok {
			b.contributeStats(&st)
		}
	}
	st.FragGroupsEvicted = e.distiller.reasm.CapacityEvicted()
	if e.distiller.streams != nil {
		st.StreamsEvicted = e.distiller.streams.reasm.CapacityEvicted()
	}
	st.AlertsEvicted = e.rules.evicted
	return st
}

// DistillerStats returns the distiller's classification counters,
// including the Mismatched count of content-confirmed reclassifications
// (see DistillerStats for the conservation ledger they satisfy).
func (e *Engine) DistillerStats() DistillerStats { return e.distiller.stats }

// Trails exposes the trail store (read-mostly; used by reports and the
// direct-matching ablation).
func (e *Engine) Trails() *TrailStore { return e.trails }

// Generator exposes the event generator (for binding inspection).
func (e *Engine) Generator() *EventGenerator { return e.gen }

// Alerts returns all alerts raised so far.
func (e *Engine) Alerts() []Alert { return e.rules.Alerts() }

// AlertsFor returns alerts raised by one rule.
func (e *Engine) AlertsFor(rule string) []Alert { return e.rules.AlertsFor(rule) }

// OnAlert registers a callback for new alerts.
func (e *Engine) OnAlert(fn func(Alert)) { e.rules.OnAlert(fn) }

// OnEvent registers a callback invoked for every generated event, in
// emission order, after the event is logged and before rule matching.
// This is the cooperative layer's export surface: a probe attaches an
// Exporter here to select events for its aggregator. The callback runs
// on the frame-processing path — keep it cheap and non-blocking.
func (e *Engine) OnEvent(fn func(Event)) { e.onEvent = fn }

// FlushRules advances the rule engine's clock to now without feeding an
// event, maturing any absence-rule completions whose grace window has
// passed (see RuleEngine.Flush). Returns the alerts raised.
func (e *Engine) FlushRules(now time.Duration) []Alert {
	alerts := e.rules.Flush(now)
	e.stats.Alerts += len(alerts)
	return alerts
}

// Events returns the retained event log (empty unless WithEventLog).
func (e *Engine) Events() []Event { return append([]Event(nil), e.events...) }

// gcEvery is how many frames pass between session-expiry sweeps.
const gcEvery = 4096

// HandleFrame processes one observed frame. It is netsim.Tap compatible.
func (e *Engine) HandleFrame(at time.Duration, frame []byte) {
	e.stats.Frames++
	if e.stats.Frames%gcEvery == 0 {
		e.stats.SessionsEvicted += e.gen.ExpireSessions(at, e.cfg.SessionTimeout)
	}
	if e.distiller.DistillView(at, frame, &e.view) {
		e.processView()
	}
	// Stream-carried messages: a TCP frame produces no view above, but may
	// have completed any number of framed SIP messages; each is a
	// footprint of its own. The loop's guard is a cheap queue check, so
	// the datagram fast path stays allocation-free.
	for e.distiller.NextStreamMessage(&e.view) {
		e.processView()
	}
}

// processView runs the distilled view through matching — directly against
// trails in the ablation mode, through the event generator otherwise.
func (e *Engine) processView() {
	e.stats.Footprints++
	if e.cfg.DirectTrailMatching {
		e.handleDirect(&e.view)
		return
	}
	e.evScratch = e.evScratch[:0]
	e.gen.ProcessView(&e.view, RouteHints{}, &e.evScratch)
	for _, ev := range e.evScratch {
		e.stats.Events++
		e.logEvent(ev)
		if e.onEvent != nil {
			e.onEvent(ev)
		}
		alerts := e.rules.Feed(ev)
		e.stats.Alerts += len(alerts)
	}
}

// logEvent appends ev to the retained log (when WithEventLog is on),
// evicting the oldest entry to respect MaxRetainedEvents.
func (e *Engine) logEvent(ev Event) {
	if !e.keepLog {
		return
	}
	if max := e.cfg.Limits.MaxRetainedEvents; max > 0 && len(e.events) >= max {
		drop := len(e.events) - max + 1
		e.events = append(e.events[:0], e.events[drop:]...)
		e.stats.EventsEvicted += drop
	}
	e.events = append(e.events, ev)
}

// AttachTap subscribes the engine to all hub traffic of a network,
// mirroring the paper's Figure 4 deployment.
func (e *Engine) AttachTap(n *netsim.Network) {
	n.AddTap(e.HandleFrame)
}

// ReplayCapture feeds a recorded SCAP capture through the engine.
func (e *Engine) ReplayCapture(r *capture.Reader) error {
	if err := capture.Replay(r, e.HandleFrame); err != nil {
		return fmt.Errorf("core: replay: %w", err)
	}
	return nil
}

// --- Direct trail matching (ablation) ---

// handleDirect stores footprints into trails keyed without event-layer
// session intelligence and scans trails on every media packet. This is
// the expensive path the paper's Event Generator exists to avoid: "it
// helps performance by hiding some computationally expensive matching".
func (e *Engine) handleDirect(v *FrameView) {
	switch v.Proto {
	case ProtoSIP:
		e.trails.Get(v.Msg.CallID(), ProtoSIP).AppendView(v)
	case ProtoRTP:
		e.trails.Get("rtp:"+v.Dst.String(), ProtoRTP).AppendView(v)
		e.directByeScan(v)
	case ProtoAccounting:
		e.trails.Get(v.Txn.CallID, ProtoAccounting).AppendView(v)
	case ProtoRTCP:
		e.trails.Get("rtcp:"+v.Dst.String(), ProtoRTCP).AppendView(v)
	}
}

// directByeScan re-derives, from raw trails, whether this RTP packet is
// an orphan flow after a BYE: it walks every SIP trail, re-parses SDP
// bodies to find the session whose media endpoints match, and checks BYE
// timing. Equivalent detection to the event path, at per-packet scan
// cost.
func (e *Engine) directByeScan(v *FrameView) {
	window := e.cfg.Gen.withDefaults().MonitorWindow
	for _, trail := range e.allSIPTrails() {
		var callerMedia, calleeMedia netip.AddrPort
		var byeAt time.Duration
		var byeSeen bool
		var byeFromCaller bool
		var callerTag string
		trail.eachView(func(tv *FrameView) bool {
			if tv.Proto != ProtoSIP {
				return true
			}
			m := tv.Msg
			switch {
			case m.IsRequest() && m.Method == sip.MethodInvite:
				if from, err := m.From(); err == nil && callerTag == "" {
					callerTag = from.Tag()
				}
				if media, ok := mediaFromBody(m); ok && !callerMedia.IsValid() {
					callerMedia = media
				}
			case m.IsResponse() && m.StatusCode == sip.StatusOK:
				if cseq, err := m.CSeq(); err == nil && cseq.Method == sip.MethodInvite {
					if media, ok := mediaFromBody(m); ok && !calleeMedia.IsValid() {
						calleeMedia = media
					}
				}
			case m.IsRequest() && m.Method == sip.MethodBye:
				if !byeSeen {
					byeSeen = true
					byeAt = tv.At
					if from, err := m.From(); err == nil {
						byeFromCaller = from.Tag() == callerTag
					}
				}
			}
			return true
		})
		if !byeSeen {
			continue
		}
		byeMedia := calleeMedia
		if byeFromCaller {
			byeMedia = callerMedia
		}
		if v.Src == byeMedia && v.At > byeAt && v.At-byeAt <= window {
			e.stats.Events++
			ev := Event{
				At: v.At, Type: EvRTPAfterBye, Session: trail.Session,
				Detail:    fmt.Sprintf("direct scan: RTP from %v after BYE", v.Src),
				Footprint: v.box(),
			}
			// Feed both steps so the two-step rule completes.
			e.stats.Alerts += len(e.rules.Feed(Event{At: byeAt, Type: EvSIPBye, Session: trail.Session}))
			e.stats.Alerts += len(e.rules.Feed(ev))
		}
	}
}

// allSIPTrails returns every SIP trail in the store.
func (e *Engine) allSIPTrails() []*Trail {
	var out []*Trail
	for k, t := range e.trails.trails {
		if k.proto == ProtoSIP {
			out = append(out, t)
		}
	}
	return out
}
