package core

import "time"

// Fault is one injected failure: an artificial stall, a panic, or both
// (stall first, then panic).
type Fault struct {
	Panic bool
	Stall time.Duration
}

// FaultInjector decides, per shard and per frame ordinal within that
// shard, whether to inject a fault. Implementations must be safe for
// concurrent use: every shard worker consults the injector.
//
// Injection points sit inside the shard workers' frame processing, so
// the injector exercises the panic-containment and watchdog paths of the
// ShardedEngine; the serial Engine ignores it.
type FaultInjector interface {
	At(shard int, frame uint64) Fault
}

// WithFaultInjector wires a fault injector into the engine (chaos
// testing only).
func WithFaultInjector(fi FaultInjector) EngineOption {
	return func(e *Engine) { e.faults = fi }
}
