package core

import (
	"fmt"
	"time"
)

// Trail is an ordered list of related footprints — the per-session,
// per-protocol grouping of paper Section 3.1. Cross-protocol detection
// keeps multiple trails per session (a SIP trail, an RTP trail, an
// accounting trail) under the same session key.
type Trail struct {
	// Session is the correlation key shared by all trails of one session.
	Session string
	// Protocol is the single protocol this trail carries.
	Protocol Protocol

	footprints []Footprint
	maxLen     int
	// restored counts footprints that existed before a checkpoint restore.
	// Their bytes are deliberately not checkpointed (the event layer never
	// rereads trail contents); only the length survives, so Len and the
	// eviction bound behave as if they were still present.
	restored int
}

// Append adds a footprint, evicting the oldest when the trail exceeds its
// bound (memory is the practical limit the paper notes). Restored phantom
// entries are older than every real one, so they evict first.
func (t *Trail) Append(f Footprint) {
	t.footprints = append(t.footprints, f)
	if t.maxLen > 0 && t.restored+len(t.footprints) > t.maxLen {
		over := t.restored + len(t.footprints) - t.maxLen
		if drop := min(over, t.restored); drop > 0 {
			t.restored -= drop
			over -= drop
		}
		if over > 0 {
			n := copy(t.footprints, t.footprints[over:])
			t.footprints = t.footprints[:n]
		}
	}
}

// Len returns the number of retained footprints (including restored
// phantom entries whose bytes were dropped at the last checkpoint).
func (t *Trail) Len() int { return t.restored + len(t.footprints) }

// Footprints returns the retained footprints in arrival order. The
// returned slice is shared; callers must not mutate it.
func (t *Trail) Footprints() []Footprint { return t.footprints }

// Last returns the most recent footprint, or nil.
func (t *Trail) Last() Footprint {
	if len(t.footprints) == 0 {
		return nil
	}
	return t.footprints[len(t.footprints)-1]
}

// Since returns the footprints observed strictly after cutoff.
func (t *Trail) Since(cutoff time.Duration) []Footprint {
	// Footprints arrive in time order: binary search would do, but trails
	// are short-lived; scan from the back.
	i := len(t.footprints)
	for i > 0 && t.footprints[i-1].Time() > cutoff {
		i--
	}
	return t.footprints[i:]
}

// trailKey identifies one trail in the store.
type trailKey struct {
	session string
	proto   Protocol
}

// TrailStore holds all live trails indexed by session and protocol.
type TrailStore struct {
	trails map[trailKey]*Trail
	// MaxTrailLen bounds each trail's retained footprints (0 = unbounded).
	MaxTrailLen int
}

// NewTrailStore returns an empty store. maxTrailLen bounds per-trail
// memory (0 = unbounded).
func NewTrailStore(maxTrailLen int) *TrailStore {
	return &TrailStore{trails: make(map[trailKey]*Trail), MaxTrailLen: maxTrailLen}
}

// Get returns the trail for (session, proto), creating it if needed.
func (s *TrailStore) Get(session string, proto Protocol) *Trail {
	k := trailKey{session: session, proto: proto}
	t, ok := s.trails[k]
	if !ok {
		t = &Trail{Session: session, Protocol: proto, maxLen: s.MaxTrailLen}
		s.trails[k] = t
	}
	return t
}

// Lookup returns the trail for (session, proto) or nil, without creating.
func (s *TrailStore) Lookup(session string, proto Protocol) *Trail {
	return s.trails[trailKey{session: session, proto: proto}]
}

// SessionTrails returns every trail of a session (one per protocol seen).
func (s *TrailStore) SessionTrails(session string) []*Trail {
	var out []*Trail
	for _, proto := range []Protocol{ProtoSIP, ProtoRTP, ProtoRTCP, ProtoAccounting, ProtoOther} {
		if t := s.Lookup(session, proto); t != nil {
			out = append(out, t)
		}
	}
	return out
}

// Sessions returns the number of distinct sessions with live trails.
func (s *TrailStore) Sessions() int {
	seen := make(map[string]struct{}, len(s.trails))
	for k := range s.trails {
		seen[k.session] = struct{}{}
	}
	return len(seen)
}

// Trails returns the total number of live trails.
func (s *TrailStore) Trails() int { return len(s.trails) }

// Drop removes all trails of a session (e.g. long after teardown).
func (s *TrailStore) Drop(session string) {
	for _, proto := range []Protocol{ProtoSIP, ProtoRTP, ProtoRTCP, ProtoAccounting, ProtoOther} {
		delete(s.trails, trailKey{session: session, proto: proto})
	}
}

// String summarizes the store for logs.
func (s *TrailStore) String() string {
	return fmt.Sprintf("TrailStore{sessions=%d trails=%d}", s.Sessions(), s.Trails())
}
