package core

import (
	"fmt"
	"time"
)

// Trail is an ordered list of related footprints — the per-session,
// per-protocol grouping of paper Section 3.1. Cross-protocol detection
// keeps multiple trails per session (a SIP trail, an RTP trail, an
// accounting trail) under the same session key.
type Trail struct {
	// Session is the correlation key shared by all trails of one session.
	Session string
	// Protocol is the single protocol this trail carries.
	Protocol Protocol

	// entries is a contiguous slab of value-typed frame views. It grows
	// until the trail's bound, then becomes a ring: head indexes the
	// oldest entry and appends overwrite in place, so a saturated trail
	// (the steady state of a long media stream) retains footprints with
	// zero per-frame allocation and zero copying.
	entries []FrameView
	head    int
	maxLen  int
	// restored counts footprints that existed before a checkpoint restore.
	// Their bytes are deliberately not checkpointed (the event layer never
	// rereads trail contents); only the length survives, so Len and the
	// eviction bound behave as if they were still present.
	restored int
}

// AppendView adds a copy of the frame view, evicting the oldest entry
// when the trail exceeds its bound (memory is the practical limit the
// paper notes). Restored phantom entries are older than every real one,
// so they evict first.
func (t *Trail) AppendView(v *FrameView) {
	if t.maxLen <= 0 || t.restored+len(t.entries) < t.maxLen {
		t.entries = append(t.entries, *v)
		return
	}
	if t.restored > 0 {
		t.restored--
		t.entries = append(t.entries, *v)
		return
	}
	// Saturated: overwrite the oldest slot in place.
	t.entries[t.head] = *v
	t.head++
	if t.head == len(t.entries) {
		t.head = 0
	}
}

// Append adds a boxed footprint (compat path for tests and callers that
// still hold Footprint values). Footprint types outside the built-in set
// are dropped: trails store value-typed views.
func (t *Trail) Append(f Footprint) {
	var v FrameView
	if !viewOf(f, &v) {
		return
	}
	t.AppendView(&v)
}

// Len returns the number of retained footprints (including restored
// phantom entries whose bytes were dropped at the last checkpoint).
func (t *Trail) Len() int { return t.restored + len(t.entries) }

// eachView calls fn on every retained entry in arrival order, stopping
// early when fn returns false. This is the allocation-free read path; the
// Footprint-returning accessors below box on demand.
func (t *Trail) eachView(fn func(v *FrameView) bool) {
	n := len(t.entries)
	for i := 0; i < n; i++ {
		j := t.head + i
		if j >= n {
			j -= n
		}
		if !fn(&t.entries[j]) {
			return
		}
	}
}

// Footprints returns the retained footprints in arrival order, boxed.
// This is a materializing (slow-path) accessor for reports, tests and the
// direct-matching ablation; the detection hot path never calls it.
func (t *Trail) Footprints() []Footprint {
	if len(t.entries) == 0 {
		return nil
	}
	out := make([]Footprint, 0, len(t.entries))
	t.eachView(func(v *FrameView) bool {
		out = append(out, v.box())
		return true
	})
	return out
}

// Last returns the most recent footprint, boxed, or nil.
func (t *Trail) Last() Footprint {
	n := len(t.entries)
	if n == 0 {
		return nil
	}
	j := t.head - 1
	if j < 0 {
		j = n - 1
	}
	return t.entries[j].box()
}

// Since returns the footprints observed strictly after cutoff, boxed.
func (t *Trail) Since(cutoff time.Duration) []Footprint {
	// Entries arrive in time order: count the suffix newer than cutoff
	// from the back, then box it in order.
	n := len(t.entries)
	keep := 0
	for keep < n {
		j := t.head - 1 - keep
		if j < 0 {
			j += n
		}
		if t.entries[j].At <= cutoff {
			break
		}
		keep++
	}
	if keep == 0 {
		return nil
	}
	out := make([]Footprint, 0, keep)
	for i := keep; i > 0; i-- {
		j := t.head - i
		if j < 0 {
			j += n
		}
		out = append(out, t.entries[j].box())
	}
	return out
}

// trailKey identifies one trail in the store.
type trailKey struct {
	session string
	proto   Protocol
}

// TrailStore holds all live trails indexed by session and protocol.
type TrailStore struct {
	trails map[trailKey]*Trail
	// MaxTrailLen bounds each trail's retained footprints (0 = unbounded).
	MaxTrailLen int
}

// NewTrailStore returns an empty store. maxTrailLen bounds per-trail
// memory (0 = unbounded).
func NewTrailStore(maxTrailLen int) *TrailStore {
	return &TrailStore{trails: make(map[trailKey]*Trail), MaxTrailLen: maxTrailLen}
}

// Get returns the trail for (session, proto), creating it if needed.
func (s *TrailStore) Get(session string, proto Protocol) *Trail {
	k := trailKey{session: session, proto: proto}
	t, ok := s.trails[k]
	if !ok {
		t = &Trail{Session: session, Protocol: proto, maxLen: s.MaxTrailLen}
		s.trails[k] = t
	}
	return t
}

// Lookup returns the trail for (session, proto) or nil, without creating.
func (s *TrailStore) Lookup(session string, proto Protocol) *Trail {
	return s.trails[trailKey{session: session, proto: proto}]
}

// SessionTrails returns every trail of a session (one per protocol seen).
func (s *TrailStore) SessionTrails(session string) []*Trail {
	var out []*Trail
	for _, proto := range []Protocol{ProtoSIP, ProtoRTP, ProtoRTCP, ProtoAccounting, ProtoOther} {
		if t := s.Lookup(session, proto); t != nil {
			out = append(out, t)
		}
	}
	return out
}

// Sessions returns the number of distinct sessions with live trails.
func (s *TrailStore) Sessions() int {
	seen := make(map[string]struct{}, len(s.trails))
	for k := range s.trails {
		seen[k.session] = struct{}{}
	}
	return len(seen)
}

// Trails returns the total number of live trails.
func (s *TrailStore) Trails() int { return len(s.trails) }

// Drop removes all trails of a session (e.g. long after teardown).
func (s *TrailStore) Drop(session string) {
	for _, proto := range []Protocol{ProtoSIP, ProtoRTP, ProtoRTCP, ProtoAccounting, ProtoOther} {
		delete(s.trails, trailKey{session: session, proto: proto})
	}
}

// String summarizes the store for logs.
func (s *TrailStore) String() string {
	return fmt.Sprintf("TrailStore{sessions=%d trails=%d}", s.Sessions(), s.Trails())
}
