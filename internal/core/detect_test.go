package core_test

import (
	"net/netip"
	"testing"
	"time"

	"scidive/internal/attack"
	"scidive/internal/core"
	"scidive/internal/scenario"
	"scidive/internal/sip"
)

// deploy builds a testbed with a SCIDIVE engine tapped into the hub.
func deploy(t *testing.T, cfg scenario.Config, engineCfg core.Config) (*scenario.Testbed, *core.Engine) {
	t.Helper()
	tb, err := scenario.New(cfg)
	if err != nil {
		t.Fatalf("scenario.New: %v", err)
	}
	eng := core.NewEngine(engineCfg)
	eng.AttachTap(tb.Net)
	return tb, eng
}

// mustAlert asserts exactly-one live alert for a rule and returns it.
func mustAlert(t *testing.T, eng *core.Engine, rule string) core.Alert {
	t.Helper()
	alerts := eng.AlertsFor(rule)
	if len(alerts) != 1 {
		t.Fatalf("rule %q raised %d alerts, want 1: %v", rule, len(alerts), alerts)
	}
	return alerts[0]
}

// mustNoAlerts asserts the engine stayed silent.
func mustNoAlerts(t *testing.T, eng *core.Engine) {
	t.Helper()
	if alerts := eng.Alerts(); len(alerts) != 0 {
		t.Fatalf("expected no alerts, got %d: %v", len(alerts), alerts)
	}
}

func TestNormalCallRaisesNoAlerts(t *testing.T) {
	// The false-positive baseline: registration (including the normal
	// 401-challenge round), call setup, 30s of media, teardown.
	tb, eng := deploy(t, scenario.Config{Seed: 100}, core.Config{})
	if err := tb.RegisterAll(); err != nil {
		t.Fatal(err)
	}
	call, err := tb.EstablishCall()
	if err != nil {
		t.Fatal(err)
	}
	tb.Run(30 * time.Second)
	tb.Sim.Schedule(0, func() { _ = tb.Alice.Hangup(call) })
	tb.Run(3 * time.Second)
	mustNoAlerts(t, eng)
	st := eng.Stats()
	if st.Footprints < 3000 {
		t.Errorf("engine distilled only %d footprints from a 30s call", st.Footprints)
	}
}

func TestLegitimateMigrationRaisesNoAlerts(t *testing.T) {
	tb, eng := deploy(t, scenario.Config{Seed: 101}, core.Config{})
	if err := tb.RegisterAll(); err != nil {
		t.Fatal(err)
	}
	call, err := tb.EstablishCall()
	if err != nil {
		t.Fatal(err)
	}
	tb.Run(5 * time.Second)
	tb.Sim.Schedule(0, func() {
		if err := tb.Alice.Migrate(call, netip.AddrPortFrom(scenario.AddrClientA, 42000)); err != nil {
			t.Errorf("Migrate: %v", err)
		}
	})
	tb.Run(5 * time.Second)
	mustNoAlerts(t, eng)
}

func TestDetectsByeAttack(t *testing.T) {
	tb, eng := deploy(t, scenario.Config{Seed: 102}, core.Config{})
	if err := tb.RegisterAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.EstablishCall(); err != nil {
		t.Fatal(err)
	}
	tb.Run(2 * time.Second)
	d := tb.Sniffer.ConfirmedDialog()
	if d == nil {
		t.Fatal("no sniffed dialog")
	}
	var attackAt time.Duration
	tb.Sim.Schedule(0, func() {
		attackAt = tb.Sim.Now()
		if err := tb.Attacker.ForgedBye(d, true); err != nil {
			t.Errorf("ForgedBye: %v", err)
		}
	})
	tb.Run(2 * time.Second)
	a := mustAlert(t, eng, core.RuleByeAttack)
	if a.Severity != core.SeverityCritical {
		t.Errorf("severity = %v", a.Severity)
	}
	if len(a.Events) != 2 || a.Events[0].Type != core.EvSIPBye || a.Events[1].Type != core.EvRTPAfterBye {
		t.Errorf("alert events = %v", a.Events)
	}
	// Detection delay: bob's next RTP packet lands within ~tens of ms
	// (20ms period plus LAN delay).
	if delay := a.At - attackAt; delay > 100*time.Millisecond {
		t.Errorf("detection delay %v too large", delay)
	}
}

func TestDetectsFakeIM(t *testing.T) {
	tb, eng := deploy(t, scenario.Config{Seed: 103}, core.Config{})
	if err := tb.RegisterAll(); err != nil {
		t.Fatal(err)
	}
	// Legitimate IM establishes bob's expected source (the proxy relay).
	tb.Sim.Schedule(0, func() { tb.Bob.SendIM("alice", "really bob") })
	tb.Sim.Schedule(time.Second, func() {
		_ = tb.Attacker.FakeIM(
			netip.AddrPortFrom(scenario.AddrClientA, sip.DefaultPort),
			sip.URI{User: "bob", Host: scenario.AddrProxy.String()},
			"fake bob here",
		)
	})
	tb.Run(3 * time.Second)
	a := mustAlert(t, eng, core.RuleFakeIM)
	if a.Session != "im:bob@10.0.0.10" {
		t.Errorf("session = %q", a.Session)
	}
}

func TestDetectsCallHijack(t *testing.T) {
	tb, eng := deploy(t, scenario.Config{Seed: 104}, core.Config{})
	if err := tb.RegisterAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.EstablishCall(); err != nil {
		t.Fatal(err)
	}
	tb.Run(2 * time.Second)
	d := tb.Sniffer.ConfirmedDialog()
	if d == nil {
		t.Fatal("no sniffed dialog")
	}
	sink := netip.AddrPortFrom(scenario.AddrAttacker, 46000)
	tb.Sim.Schedule(0, func() {
		if err := tb.Attacker.Hijack(d, true, sink); err != nil {
			t.Errorf("Hijack: %v", err)
		}
	})
	tb.Run(2 * time.Second)
	a := mustAlert(t, eng, core.RuleCallHijack)
	if len(a.Events) != 2 || a.Events[0].Type != core.EvSIPReinvite {
		t.Errorf("alert events = %v", a.Events)
	}
}

func TestDetectsRTPAttack(t *testing.T) {
	tb, eng := deploy(t, scenario.Config{Seed: 105}, core.Config{})
	if err := tb.RegisterAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.EstablishCall(); err != nil {
		t.Fatal(err)
	}
	tb.Run(2 * time.Second)
	tb.Sim.Schedule(0, func() {
		_ = tb.Attacker.InjectGarbageRTP(tb.Alice.RTPAddr(), 20, 172)
	})
	tb.Run(2 * time.Second)
	// Garbage bytes: 3/4 fail RTP version decode (garbage rule), the rest
	// parse as RTP with random sequence numbers (seq-jump rule) from a
	// wrong source (bad-source rule). At least the garbage rule and one of
	// the others must fire on 20 random packets.
	garbage := eng.AlertsFor(core.RuleRTPGarbage)
	seq := eng.AlertsFor(core.RuleRTPSeqJump)
	src := eng.AlertsFor(core.RuleRTPBadSource)
	if len(garbage) == 0 {
		t.Error("garbage rule did not fire")
	}
	if len(seq)+len(src) == 0 {
		t.Error("neither seq-jump nor bad-source fired on parseable garbage")
	}
	// Dedup: repeated garbage updates Count rather than new alerts.
	if len(garbage) == 1 && garbage[0].Count < 2 {
		t.Errorf("garbage alert count = %d, want >= 2 for 20 packets", garbage[0].Count)
	}
}

func TestDetectsRegisterFlood(t *testing.T) {
	tb, eng := deploy(t, scenario.Config{Seed: 106}, core.Config{})
	aor := sip.URI{User: "mallory", Host: scenario.AddrProxy.String()}
	tb.Attacker.RegisterFlood(tb.Proxy.Addr(), aor, 20, attack.FixedInterval(100*time.Millisecond))
	tb.Run(5 * time.Second)
	a := mustAlert(t, eng, core.RuleRegisterFlood)
	if a.Severity != core.SeverityWarning {
		t.Errorf("severity = %v", a.Severity)
	}
	// And crucially: no password-guess alert (no Authorization headers).
	if got := eng.AlertsFor(core.RulePasswordGuess); len(got) != 0 {
		t.Errorf("flood misclassified as password guessing: %v", got)
	}
}

func TestDetectsPasswordGuessing(t *testing.T) {
	tb, eng := deploy(t, scenario.Config{Seed: 107}, core.Config{})
	aor := sip.URI{User: "alice", Host: scenario.AddrProxy.String()}
	guesses := []string{"a", "b", "c", "d", "e", "f"}
	tb.Attacker.PasswordGuess(tb.Proxy.Addr(), aor, "scidive.test", guesses, attack.FixedInterval(200*time.Millisecond))
	tb.Run(5 * time.Second)
	mustAlert(t, eng, core.RulePasswordGuess)
}

func TestNormalReregistrationNoFalseAlarm(t *testing.T) {
	// Section 3.3's false-alarm discussion: every normal registration
	// includes an unauthenticated attempt and a 401. Several phones
	// registering (and re-registering) must not trip the flood rule,
	// because SCIDIVE isolates sessions.
	tb, eng := deploy(t, scenario.Config{Seed: 108}, core.Config{})
	for i := 0; i < 4; i++ {
		tb.Alice.Register(nil)
		tb.Bob.Register(nil)
		tb.Run(2 * time.Second)
	}
	mustNoAlerts(t, eng)
}

func TestDetectsBillingFraud(t *testing.T) {
	tb, eng := deploy(t, scenario.Config{Seed: 109}, core.Config{})
	if err := tb.RegisterAll(); err != nil {
		t.Fatal(err)
	}
	fraud := attack.NewBillingFraud(
		tb.Attacker,
		tb.Proxy.Addr(),
		sip.URI{User: "alice", Host: scenario.AddrProxy.String()},
		sip.URI{User: "bob", Host: scenario.AddrProxy.String()},
		40600,
	)
	tb.Sim.Schedule(0, func() {
		if err := fraud.Launch(5 * time.Second); err != nil {
			t.Errorf("Launch: %v", err)
		}
	})
	tb.Run(8 * time.Second)
	if !fraud.Established {
		t.Fatal("fraud call did not establish")
	}
	a := mustAlert(t, eng, core.RuleBillingFraud)
	if len(a.Events) != 3 {
		t.Fatalf("billing fraud alert carries %d events, want 3: %v", len(a.Events), a.Events)
	}
	types := map[core.EventType]bool{}
	for _, ev := range a.Events {
		types[ev.Type] = true
	}
	for _, want := range []core.EventType{core.EvSIPBadFormat, core.EvAcctUnmatched, core.EvRTPUnmatchedMedia} {
		if !types[want] {
			t.Errorf("billing fraud alert missing event %v", want)
		}
	}
}

func TestDirectTrailMatchingDetectsByeAttack(t *testing.T) {
	// Ablation: the event layer off, rules scan raw trails. Detection
	// still works; the benchmark measures the cost difference.
	tb, eng := deploy(t, scenario.Config{Seed: 110}, core.Config{DirectTrailMatching: true})
	if err := tb.RegisterAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.EstablishCall(); err != nil {
		t.Fatal(err)
	}
	tb.Run(2 * time.Second)
	d := tb.Sniffer.ConfirmedDialog()
	if d == nil {
		t.Fatal("no sniffed dialog")
	}
	tb.Sim.Schedule(0, func() { _ = tb.Attacker.ForgedBye(d, true) })
	tb.Run(2 * time.Second)
	mustAlert(t, eng, core.RuleByeAttack)
}

func TestMonitorWindowBoundsDetection(t *testing.T) {
	// With a very small monitoring window m, the orphan flow arrives too
	// late and the attack is missed — the Pm trade-off of Section 4.3.
	tb, eng := deploy(t, scenario.Config{Seed: 111},
		core.Config{Gen: core.GenConfig{MonitorWindow: time.Microsecond}})
	if err := tb.RegisterAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.EstablishCall(); err != nil {
		t.Fatal(err)
	}
	tb.Run(2 * time.Second)
	d := tb.Sniffer.ConfirmedDialog()
	tb.Sim.Schedule(0, func() { _ = tb.Attacker.ForgedBye(d, true) })
	tb.Run(2 * time.Second)
	if got := eng.AlertsFor(core.RuleByeAttack); len(got) != 0 {
		t.Errorf("attack detected despite 1µs window: %v", got)
	}
}

func TestEngineSeesTrailsAndBindings(t *testing.T) {
	tb, eng := deploy(t, scenario.Config{Seed: 112}, core.Config{})
	if err := tb.RegisterAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.EstablishCall(); err != nil {
		t.Fatal(err)
	}
	tb.Run(2 * time.Second)
	bindings := eng.Generator().Bindings()
	if bindings["alice@10.0.0.10"] != scenario.AddrClientA {
		t.Errorf("alice binding = %v", bindings["alice@10.0.0.10"])
	}
	if bindings["bob@10.0.0.10"] != scenario.AddrClientB {
		t.Errorf("bob binding = %v", bindings["bob@10.0.0.10"])
	}
	if eng.Trails().Sessions() == 0 || eng.Trails().Trails() < 2 {
		t.Errorf("trail store = %v", eng.Trails())
	}
	// The call session should have both a SIP and an RTP trail — the
	// cross-protocol structure of Figure 2.
	var haveBoth bool
	for callID := range tb.Alice.Calls() {
		trails := eng.Trails().SessionTrails(callID)
		protos := map[core.Protocol]bool{}
		for _, tr := range trails {
			protos[tr.Protocol] = true
		}
		if protos[core.ProtoSIP] && protos[core.ProtoRTP] {
			haveBoth = true
		}
	}
	if !haveBoth {
		t.Error("call session lacks parallel SIP and RTP trails")
	}
}

func TestBenignIMExchangeNoFalseAlarm(t *testing.T) {
	// A hub-tapped IDS sees each relayed IM twice (client->proxy and
	// proxy->victim) with different source IPs; that must not trip the
	// fake-IM rule. Regression test for the per-delivery-path history.
	tb, eng := deploy(t, scenario.Config{Seed: 113}, core.Config{})
	if err := tb.RegisterAll(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		tb.Sim.Schedule(0, func() { tb.Bob.SendIM("alice", "ping") })
		tb.Run(2 * time.Second)
		tb.Sim.Schedule(0, func() { tb.Alice.SendIM("bob", "pong") })
		tb.Run(2 * time.Second)
	}
	mustNoAlerts(t, eng)
	if got := len(tb.Alice.Messages()); got != 5 {
		t.Errorf("alice received %d IMs, want 5", got)
	}
}

func TestDetectsSpoofedRTCPBye(t *testing.T) {
	tb, eng := deploy(t, scenario.Config{Seed: 114}, core.Config{})
	if err := tb.RegisterAll(); err != nil {
		t.Fatal(err)
	}
	aliceCall, err := tb.EstablishCall()
	if err != nil {
		t.Fatal(err)
	}
	tb.Run(2 * time.Second)
	d := tb.Sniffer.ConfirmedDialog()
	if d == nil {
		t.Fatal("no sniffed dialog")
	}
	if d.CalleeSSRC == 0 {
		t.Fatal("sniffer did not learn the callee SSRC")
	}
	// Forge an RTCP BYE to alice, claiming bob left the media session.
	tb.Sim.Schedule(0, func() {
		if err := tb.Attacker.SpoofedRTCPBye(d, true); err != nil {
			t.Errorf("SpoofedRTCPBye: %v", err)
		}
	})
	tb.Run(2 * time.Second)
	// Impact: alice stopped transmitting while the SIP dialog stays up.
	if !aliceCall.Established() {
		t.Error("SIP dialog should remain confirmed")
	}
	sent := aliceCall.RTPSent
	tb.Run(time.Second)
	if aliceCall.RTPSent != sent {
		t.Error("alice kept transmitting despite the RTCP BYE")
	}
	// Detection: the three-protocol rule fires exactly once.
	mustAlert(t, eng, core.RuleRTCPByeSpoof)
}

func TestLegitimateTeardownRTCPByeNoFalseAlarm(t *testing.T) {
	// A normal hangup emits an RTCP BYE alongside the SIP BYE; the IDS
	// must correlate the two and stay silent.
	tb, eng := deploy(t, scenario.Config{Seed: 115}, core.Config{})
	if err := tb.RegisterAll(); err != nil {
		t.Fatal(err)
	}
	call, err := tb.EstablishCall()
	if err != nil {
		t.Fatal(err)
	}
	tb.Run(5 * time.Second)
	tb.Sim.Schedule(0, func() { _ = tb.Alice.Hangup(call) })
	tb.Run(3 * time.Second)
	mustNoAlerts(t, eng)
}
