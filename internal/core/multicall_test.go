package core_test

import (
	"net/netip"
	"testing"
	"time"

	"scidive/internal/attack"
	"scidive/internal/core"
	"scidive/internal/endpoint"
	"scidive/internal/netsim"
	"scidive/internal/proxy"
)

// multiBed builds a four-phone testbed with two concurrent calls.
type multiBed struct {
	sim    *netsim.Simulator
	net    *netsim.Network
	eng    *core.Engine
	sniff  *attack.Sniffer
	atk    *attack.Attacker
	phones map[string]*endpoint.Phone
	calls  map[string]*endpoint.Call // by caller name
}

func newMultiBed(t *testing.T, seed int64) *multiBed {
	t.Helper()
	sim := netsim.NewSimulator(seed)
	n := netsim.NewNetwork(sim)
	users := map[string]string{"alice": "pw1", "bob": "pw2", "carol": "pw3", "dave": "pw4"}
	ips := map[string]string{
		"alice": "10.0.0.1", "bob": "10.0.0.2", "carol": "10.0.0.3", "dave": "10.0.0.4",
	}
	hostP := n.MustAddHost("proxy", netip.MustParseAddr("10.0.0.10"))
	prx, err := proxy.New(proxy.Config{Host: hostP, Realm: "t", Users: users, RequireAuth: true})
	if err != nil {
		t.Fatal(err)
	}
	mb := &multiBed{
		sim:    sim,
		net:    n,
		phones: make(map[string]*endpoint.Phone),
		calls:  make(map[string]*endpoint.Call),
	}
	for user, ip := range ips {
		h := n.MustAddHost(user, netip.MustParseAddr(ip))
		p, err := endpoint.New(endpoint.Config{
			Host: h, Username: user, Password: users[user], Proxy: prx.Addr(),
		})
		if err != nil {
			t.Fatal(err)
		}
		mb.phones[user] = p
	}
	atkHost := n.MustAddHost("attacker", netip.MustParseAddr("10.0.0.66"))
	mb.atk, err = attack.NewAttacker(atkHost, n)
	if err != nil {
		t.Fatal(err)
	}
	mb.sniff = attack.NewSniffer(n)
	mb.eng = core.NewEngine(core.Config{})
	mb.eng.AttachTap(n)

	for _, p := range mb.phones {
		p.Register(nil)
	}
	sim.RunUntil(2 * time.Second)
	for user, p := range mb.phones {
		if !p.Registered() {
			t.Fatalf("%s failed to register", user)
		}
	}
	// Two concurrent calls: alice->bob and carol->dave.
	for _, pair := range []struct{ from, to string }{{"alice", "bob"}, {"carol", "dave"}} {
		pair := pair
		sim.Schedule(0, func() {
			mb.phones[pair.from].Call(pair.to, func(c *endpoint.Call, err error) {
				if err != nil {
					t.Errorf("%s->%s: %v", pair.from, pair.to, err)
					return
				}
				mb.calls[pair.from] = c
			})
		})
	}
	sim.RunUntil(sim.Now() + 3*time.Second)
	if len(mb.calls) != 2 {
		t.Fatalf("established %d calls, want 2", len(mb.calls))
	}
	return mb
}

func TestConcurrentCallsNoAlerts(t *testing.T) {
	mb := newMultiBed(t, 1)
	mb.sim.RunUntil(mb.sim.Now() + 10*time.Second)
	if alerts := mb.eng.Alerts(); len(alerts) != 0 {
		t.Fatalf("alerts on two concurrent benign calls: %v", alerts)
	}
	// Both sessions have parallel SIP and RTP trails.
	if mb.eng.Trails().Sessions() < 2 {
		t.Errorf("sessions tracked = %d", mb.eng.Trails().Sessions())
	}
}

func TestAttackOnOneCallAlertsOnlyThatSession(t *testing.T) {
	mb := newMultiBed(t, 2)
	mb.sim.RunUntil(mb.sim.Now() + 2*time.Second)

	targetCallID := mb.calls["alice"].CallID
	dlg := mb.sniff.DialogFor(targetCallID)
	if dlg == nil || !dlg.Confirmed {
		t.Fatalf("sniffer has no confirmed dialog for %s", targetCallID)
	}
	mb.sim.Schedule(0, func() {
		if err := mb.atk.ForgedBye(dlg, true); err != nil {
			t.Errorf("ForgedBye: %v", err)
		}
	})
	mb.sim.RunUntil(mb.sim.Now() + 2*time.Second)

	alerts := mb.eng.AlertsFor(core.RuleByeAttack)
	if len(alerts) != 1 {
		t.Fatalf("bye-attack alerts = %d, want 1", len(alerts))
	}
	if alerts[0].Session != targetCallID {
		t.Errorf("alert session = %s, want %s", alerts[0].Session, targetCallID)
	}
	// The other call is untouched and generated no alerts.
	if !mb.calls["carol"].Established() {
		t.Error("carol's call was affected by the attack on alice")
	}
	for _, a := range mb.eng.Alerts() {
		if a.Session == mb.calls["carol"].CallID {
			t.Errorf("alert leaked onto carol's session: %v", a)
		}
	}
	// Alice's side is down, bob's orphan flow detected; carol/dave media
	// continues to flow.
	carolSent := mb.calls["carol"].RTPSent
	mb.sim.RunUntil(mb.sim.Now() + time.Second)
	if mb.calls["carol"].RTPSent <= carolSent {
		t.Error("carol's media stalled")
	}
}

func TestCrossCallRTPDoesNotConfuseSessions(t *testing.T) {
	// Garbage injected at carol's media port must alert carol's session,
	// not alice's.
	mb := newMultiBed(t, 3)
	mb.sim.RunUntil(mb.sim.Now() + time.Second)
	carolMedia := mb.phones["carol"].RTPAddr()
	mb.sim.Schedule(0, func() {
		_ = mb.atk.InjectGarbageRTP(carolMedia, 10, 172)
	})
	mb.sim.RunUntil(mb.sim.Now() + time.Second)
	garbage := mb.eng.AlertsFor(core.RuleRTPGarbage)
	if len(garbage) != 1 {
		t.Fatalf("garbage alerts = %d, want 1", len(garbage))
	}
	if garbage[0].Session != mb.calls["carol"].CallID {
		t.Errorf("garbage alert session = %s, want carol's %s",
			garbage[0].Session, mb.calls["carol"].CallID)
	}
}
