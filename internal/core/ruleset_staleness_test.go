package core

import (
	"os"
	"reflect"
	"testing"
)

// TestShippedRulesMatchDefaultRuleset pins the shipped rules/default.rules
// file to DefaultRuleset(): the file is the deployable form of the built-in
// rules, and the two must never drift. Anyone adding a rule to one side
// without the other lands here. (DeepEqual is sound because neither side
// carries Where predicates, which have no textual form.)
func TestShippedRulesMatchDefaultRuleset(t *testing.T) {
	checkShippedRules(t, "../../rules/default.rules", DefaultRuleset())
}

// TestShippedCrossPointRulesMatch pins rules/crosspoint.rules — the
// deployable form of the aggregator's cross-point ruleset — to
// CrossPointRuleset() the same way.
func TestShippedCrossPointRulesMatch(t *testing.T) {
	checkShippedRules(t, "../../rules/crosspoint.rules", CrossPointRuleset())
}

func checkShippedRules(t *testing.T, path string, builtin []Rule) {
	t.Helper()
	text, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("shipped ruleset unreadable: %v", err)
	}
	shipped, err := ParseRules(string(text))
	if err != nil {
		t.Fatalf("shipped ruleset does not parse: %v", err)
	}
	if len(shipped) != len(builtin) {
		shippedNames := make([]string, len(shipped))
		for i, r := range shipped {
			shippedNames[i] = r.Name
		}
		builtinNames := make([]string, len(builtin))
		for i, r := range builtin {
			builtinNames[i] = r.Name
		}
		t.Fatalf("rule count drifted: shipped %d %v, built-in %d %v",
			len(shipped), shippedNames, len(builtin), builtinNames)
	}
	for i := range builtin {
		if !reflect.DeepEqual(shipped[i], builtin[i]) {
			t.Errorf("rule %q drifted:\nshipped:  %+v\nbuilt-in: %+v",
				builtin[i].Name, shipped[i], builtin[i])
		}
	}
}
