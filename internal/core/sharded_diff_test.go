package core_test

// Differential harness: ShardedEngine must be alert- and event-equivalent
// to the serial Engine on every scenario the repo knows, plus a large
// corpus of seeded random interleavings that mix concurrent calls, media
// port reuse, attacks, fragmentation, and junk traffic.

import (
	"fmt"
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"scidive/internal/accounting"
	"scidive/internal/core"
	"scidive/internal/experiments"
	"scidive/internal/packet"
	"scidive/internal/rtp"
	"scidive/internal/sdp"
	"scidive/internal/sip"
)

var diffShardCounts = []int{1, 2, 8}

type rec struct {
	at    time.Duration
	frame []byte
}

// scenarioFrames records the hub traffic of one named scenario.
func scenarioFrames(t *testing.T, name string, seed int64) []rec {
	t.Helper()
	var frames []rec
	tap := func(at time.Duration, frame []byte) {
		frames = append(frames, rec{at: at, frame: append([]byte(nil), frame...)})
	}
	if _, err := experiments.RunScenario(name, seed, tap); err != nil {
		t.Fatalf("scenario %s: %v", name, err)
	}
	if len(frames) == 0 {
		t.Fatalf("scenario %s captured no frames", name)
	}
	return frames
}

func runSerial(frames []rec) ([]core.Alert, []core.Event, core.EngineStats) {
	return runSerialCfg(frames, core.Config{})
}

func runSerialCfg(frames []rec, cfg core.Config) ([]core.Alert, []core.Event, core.EngineStats) {
	eng := core.NewEngine(cfg, core.WithEventLog())
	for _, r := range frames {
		eng.HandleFrame(r.at, r.frame)
	}
	return eng.Alerts(), eng.Events(), eng.Stats()
}

func runSharded(frames []rec, shards int) ([]core.Alert, []core.Event, core.EngineStats) {
	return runShardedCfg(frames, shards, core.Config{})
}

func runShardedCfg(frames []rec, shards int, cfg core.Config) ([]core.Alert, []core.Event, core.EngineStats) {
	eng := core.NewShardedEngine(cfg, shards, core.WithEventLog())
	defer eng.Close()
	for _, r := range frames {
		eng.HandleFrame(r.at, r.frame)
	}
	eng.Flush()
	return eng.Alerts(), eng.Events(), eng.Stats()
}

// eventKey is the comparable identity of an event (the Footprint pointer
// necessarily differs between engines).
func eventKey(ev core.Event) string {
	return fmt.Sprintf("%v|%v|%s|%s", ev.At, ev.Type, ev.Session, ev.Detail)
}

// alertKey is the comparable identity of an alert, including how many
// times it fired and how many events witnessed it.
func alertKey(a core.Alert) string {
	return fmt.Sprintf("%v|%s|%v|%s|%s|n=%d|ev=%d", a.At, a.Rule, a.Severity, a.Session, a.Detail, a.Count, len(a.Events))
}

func diffRuns(t *testing.T, label string, frames []rec) {
	t.Helper()
	diffRunsCfg(t, label, frames, core.Config{})
}

// diffRunsCfg is diffRuns with a shared engine configuration. State
// budgets (MaxSessions, MaxFragGroups, ...) are designed to evict
// deterministically at identical stream positions in both engines and may
// be set here; the per-shard retention caps (MaxRetainedAlerts/Events)
// are intentionally not serial-equivalent and must stay zero.
func diffRunsCfg(t *testing.T, label string, frames []rec, cfg core.Config) {
	t.Helper()
	wantAlerts, wantEvents, wantStats := runSerialCfg(frames, cfg)
	for _, shards := range diffShardCounts {
		gotAlerts, gotEvents, gotStats := runShardedCfg(frames, shards, cfg)
		if len(gotEvents) != len(wantEvents) {
			t.Errorf("%s shards=%d: %d events, serial has %d", label, shards, len(gotEvents), len(wantEvents))
		} else {
			for i := range wantEvents {
				if eventKey(gotEvents[i]) != eventKey(wantEvents[i]) {
					t.Errorf("%s shards=%d: event %d = %s, want %s", label, shards, i, eventKey(gotEvents[i]), eventKey(wantEvents[i]))
					break
				}
			}
		}
		if len(gotAlerts) != len(wantAlerts) {
			t.Errorf("%s shards=%d: %d alerts, serial has %d\n got: %v\nwant: %v",
				label, shards, len(gotAlerts), len(wantAlerts), alertKeys(gotAlerts), alertKeys(wantAlerts))
		} else {
			for i := range wantAlerts {
				if alertKey(gotAlerts[i]) != alertKey(wantAlerts[i]) {
					t.Errorf("%s shards=%d: alert %d = %s, want %s", label, shards, i, alertKey(gotAlerts[i]), alertKey(wantAlerts[i]))
					break
				}
			}
		}
		if gotStats != wantStats {
			t.Errorf("%s shards=%d: stats %+v, serial %+v", label, shards, gotStats, wantStats)
		}
	}
}

func alertKeys(alerts []core.Alert) []string {
	out := make([]string, len(alerts))
	for i, a := range alerts {
		out[i] = alertKey(a)
	}
	return out
}

// TestShardedDiffScenarios replays every scenario in internal/scenario
// through both engines at 1, 2 and 8 shards.
func TestShardedDiffScenarios(t *testing.T) {
	for _, name := range experiments.ScenarioNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			diffRuns(t, name, scenarioFrames(t, name, 7))
		})
	}
}

// TestShardedDiffScenariosReseeded replays the scenarios under different
// simulation seeds (different timings and IDs).
func TestShardedDiffScenariosReseeded(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: primary scenario diff covers this")
	}
	for _, seed := range []int64{1, 99, 4242} {
		for _, name := range experiments.ScenarioNames() {
			name, seed := name, seed
			t.Run(fmt.Sprintf("%s/seed%d", name, seed), func(t *testing.T) {
				t.Parallel()
				diffRuns(t, name, scenarioFrames(t, name, seed))
			})
		}
	}
}

// TestShardedDiffRandomInterleavings drives both engines with seeded
// random workloads: overlapping calls that reuse media ports, BYE/
// re-INVITE attacks, IM spoofing, floods, junk, and IP fragmentation.
func TestShardedDiffRandomInterleavings(t *testing.T) {
	seeds := 1000
	if testing.Short() {
		seeds = 60
	}
	workers := 8
	type job struct {
		seed   int64
		frames []rec
	}
	jobs := make(chan int64, seeds)
	for s := 0; s < seeds; s++ {
		jobs <- int64(s)
	}
	close(jobs)
	_ = job{}
	for w := 0; w < workers; w++ {
		t.Run(fmt.Sprintf("worker%d", w), func(t *testing.T) {
			t.Parallel()
			for seed := range jobs {
				frames := synthFrames(seed)
				diffRuns(t, fmt.Sprintf("seed %d", seed), frames)
				if t.Failed() {
					return
				}
			}
		})
	}
}

// --- synthetic interleaved workload ---

type synthCall struct {
	id          string
	callerIP    netip.Addr
	calleeIP    netip.Addr
	callerAOR   string
	calleeAOR   string
	callerTag   string
	calleeTag   string
	callerMedia netip.AddrPort
	calleeMedia netip.AddrPort
	cseq        uint32
	seqA, seqB  uint16
	established bool
	byed        bool
}

type synthGen struct {
	rng    *rand.Rand
	now    time.Duration
	frames []rec
	ipid   uint16
	calls  []*synthCall
	nCalls int
	nIM    int
}

func synthFrames(seed int64) []rec {
	g := &synthGen{rng: rand.New(rand.NewSource(seed)), now: time.Duration(seed%7) * time.Millisecond}
	steps := 30 + g.rng.Intn(50)
	for i := 0; i < steps; i++ {
		g.now += time.Duration(g.rng.Intn(80)) * time.Millisecond
		switch p := g.rng.Intn(100); {
		case p < 22:
			g.startCall()
		case p < 50:
			g.rtpBurst()
		case p < 62:
			g.endCall()
		case p < 68:
			g.reinvite()
		case p < 74:
			g.instantMessage()
		case p < 80:
			g.registerish()
		case p < 86:
			g.rtcpTraffic()
		case p < 91:
			g.garbage()
		case p < 94:
			g.accounting()
		case p < 97:
			g.billingFraud()
		default:
			g.junk()
		}
	}
	return g.frames
}

func (g *synthGen) ip(n int) netip.Addr {
	return netip.AddrFrom4([4]byte{10, 0, 0, byte(1 + n%8)})
}

func (g *synthGen) tick() { g.now += time.Duration(1+g.rng.Intn(4)) * time.Millisecond }

// mediaPort draws from a small even-port pool so concurrent calls collide
// on ports, stressing flow attribution.
func (g *synthGen) mediaPort() uint16 { return uint16(10000 + 2*g.rng.Intn(6)) }

func (g *synthGen) emit(srcIP, dstIP netip.Addr, srcPort, dstPort uint16, payload []byte) {
	g.ipid++
	mtu := 0
	if len(payload) > 180 && g.rng.Intn(3) == 0 {
		mtu = 256 // force IP fragmentation
	}
	frames, err := packet.BuildUDPFrames(packet.UDPFrameSpec{
		SrcMAC: macFor(srcIP), DstMAC: macFor(dstIP),
		SrcIP: srcIP, DstIP: dstIP,
		SrcPort: srcPort, DstPort: dstPort,
		IPID: g.ipid, Payload: payload,
	}, mtu)
	if err != nil {
		panic(err)
	}
	if len(frames) > 1 && g.rng.Intn(2) == 0 {
		g.rng.Shuffle(len(frames), func(i, j int) { frames[i], frames[j] = frames[j], frames[i] })
	}
	for _, fr := range frames {
		g.frames = append(g.frames, rec{at: g.now, frame: fr})
		g.tick()
	}
}

func macFor(ip netip.Addr) packet.MAC {
	b := ip.As4()
	return packet.MAC{2, 0, 0, 0, 0, b[3]}
}

func (g *synthGen) emitSIP(srcIP, dstIP netip.Addr, m *sip.Message) {
	g.emit(srcIP, dstIP, sip.DefaultPort, sip.DefaultPort, m.Marshal())
}

func (g *synthGen) addr(user string, ip netip.Addr, tag string) sip.Address {
	a := sip.Address{URI: sip.URI{User: user, Host: ip.String()}}
	if tag != "" {
		a = a.WithTag(tag)
	}
	return a
}

func (g *synthGen) via(ip netip.Addr) sip.Via {
	return sip.Via{Transport: "UDP", SentBy: ip.String(), Params: map[string]string{"branch": fmt.Sprintf("z9hG4bK%08x", g.rng.Uint32())}}
}

func (g *synthGen) startCall() {
	g.nCalls++
	caller, callee := g.rng.Intn(8), g.rng.Intn(8)
	c := &synthCall{
		id:        fmt.Sprintf("call-%d-%08x@pbx", g.nCalls, g.rng.Uint32()),
		callerIP:  g.ip(caller),
		calleeIP:  g.ip(callee),
		callerAOR: fmt.Sprintf("user%d@pbx", caller),
		calleeAOR: fmt.Sprintf("user%d@pbx", callee),
		callerTag: fmt.Sprintf("t%08x", g.rng.Uint32()),
		cseq:      1,
		seqA:      uint16(g.rng.Intn(1 << 16)),
		seqB:      uint16(g.rng.Intn(1 << 16)),
	}
	c.callerMedia = netip.AddrPortFrom(c.callerIP, g.mediaPort())
	body := sdp.NewAudioSession("caller", c.callerMedia.Addr(), c.callerMedia.Port()).Marshal()
	inv := sip.NewRequest(sip.RequestSpec{
		Method:     sip.MethodInvite,
		RequestURI: "sip:" + c.calleeAOR,
		From:       g.addr("caller", c.callerIP, c.callerTag),
		To:         g.addr("callee", c.calleeIP, ""),
		CallID:     c.id,
		CSeq:       sip.CSeq{Seq: c.cseq, Method: sip.MethodInvite},
		Via:        g.via(c.callerIP),
		Body:       body,
		BodyType:   "application/sdp",
	})
	// Occasionally malform the setup (duplicate CSeq header) — the
	// billing-fraud rule's first condition.
	if g.rng.Intn(5) == 0 {
		inv.Headers.Add(sip.HdrCSeq, sip.CSeq{Seq: c.cseq, Method: sip.MethodInvite}.String())
	}
	g.emitSIP(c.callerIP, c.calleeIP, inv)
	if g.rng.Intn(4) == 0 {
		// Relayed duplicate sighting from another hop.
		g.emitSIP(g.ip(g.rng.Intn(8)), c.calleeIP, inv)
	}
	g.calls = append(g.calls, c)
	if g.rng.Intn(5) == 0 {
		return // half-open: no answer
	}
	g.tick()
	c.calleeTag = fmt.Sprintf("t%08x", g.rng.Uint32())
	c.calleeMedia = netip.AddrPortFrom(c.calleeIP, g.mediaPort())
	ok := sip.NewResponse(inv, sip.StatusOK, c.calleeTag)
	ok.Headers.Add(sip.HdrContentType, "application/sdp")
	ok.Body = sdp.NewAudioSession("callee", c.calleeMedia.Addr(), c.calleeMedia.Port()).Marshal()
	g.emitSIP(c.calleeIP, c.callerIP, ok)
	c.established = true
}

func (g *synthGen) pickCall() *synthCall {
	if len(g.calls) == 0 {
		return nil
	}
	return g.calls[g.rng.Intn(len(g.calls))]
}

func (g *synthGen) rtpPacket(seq uint16, ssrc uint32) []byte {
	p := rtp.Packet{
		Header:  rtp.Header{PayloadType: rtp.PayloadTypePCMU, Seq: seq, Timestamp: uint32(g.now / time.Millisecond), SSRC: ssrc},
		Payload: []byte("0123456789abcdef0123"),
	}
	buf, err := p.Marshal()
	if err != nil {
		panic(err)
	}
	return buf
}

func (g *synthGen) rtpBurst() {
	c := g.pickCall()
	if c == nil || !c.established {
		return
	}
	n := 1 + g.rng.Intn(4)
	for i := 0; i < n; i++ {
		srcIP := c.callerIP
		if g.rng.Intn(10) == 0 {
			srcIP = g.ip(g.rng.Intn(8)) // wrong-source media
		}
		jump := uint16(1 + g.rng.Intn(3))
		if g.rng.Intn(12) == 0 {
			jump = 500 // discontinuity
		}
		if g.rng.Intn(2) == 0 {
			c.seqA += jump
			g.emit(srcIP, c.calleeMedia.Addr(), c.callerMedia.Port(), c.calleeMedia.Port(), g.rtpPacket(c.seqA, 0xAAAA0000))
		} else {
			c.seqB += jump
			g.emit(c.calleeIP, c.callerMedia.Addr(), c.calleeMedia.Port(), c.callerMedia.Port(), g.rtpPacket(c.seqB, 0xBBBB0000))
		}
		g.tick()
	}
}

func (g *synthGen) endCall() {
	c := g.pickCall()
	if c == nil || c.byed {
		return
	}
	fromCaller := g.rng.Intn(2) == 0
	from, to := g.addr("caller", c.callerIP, c.callerTag), g.addr("callee", c.calleeIP, c.calleeTag)
	srcIP := c.callerIP
	if !fromCaller {
		from, to = to, from
		srcIP = c.calleeIP
	}
	c.cseq++
	bye := sip.NewRequest(sip.RequestSpec{
		Method:     sip.MethodBye,
		RequestURI: "sip:" + c.calleeAOR,
		From:       from, To: to,
		CallID: c.id,
		CSeq:   sip.CSeq{Seq: c.cseq, Method: sip.MethodBye},
		Via:    g.via(srcIP),
	})
	g.emitSIP(srcIP, c.calleeIP, bye)
	c.byed = true
	if g.rng.Intn(3) == 0 {
		g.tick()
		g.emitSIP(srcIP, c.calleeIP, bye) // duplicate BYE sighting
	}
	// Orphan media after BYE: the Figure 5 attack.
	if c.established && g.rng.Intn(2) == 0 {
		byeMedia := c.calleeMedia
		dst := c.callerMedia
		if fromCaller {
			byeMedia, dst = c.callerMedia, c.calleeMedia
		}
		for i := 0; i < 1+g.rng.Intn(3); i++ {
			g.tick()
			c.seqA++
			g.emit(byeMedia.Addr(), dst.Addr(), byeMedia.Port(), dst.Port(), g.rtpPacket(c.seqA, 0xCCCC0000))
		}
	}
}

func (g *synthGen) reinvite() {
	c := g.pickCall()
	if c == nil || !c.established || c.byed {
		return
	}
	c.cseq++
	newMedia := netip.AddrPortFrom(g.ip(g.rng.Intn(8)), g.mediaPort())
	oldMedia := c.callerMedia
	re := sip.NewRequest(sip.RequestSpec{
		Method:     sip.MethodInvite,
		RequestURI: "sip:" + c.calleeAOR,
		From:       g.addr("caller", c.callerIP, c.callerTag),
		To:         g.addr("callee", c.calleeIP, c.calleeTag),
		CallID:     c.id,
		CSeq:       sip.CSeq{Seq: c.cseq, Method: sip.MethodInvite},
		Via:        g.via(c.callerIP),
		Body:       sdp.NewAudioSession("caller", newMedia.Addr(), newMedia.Port()).Marshal(),
		BodyType:   "application/sdp",
	})
	g.emitSIP(c.callerIP, c.calleeIP, re)
	c.callerMedia = newMedia
	// Media still flowing from the abandoned address: the Figure 7 attack.
	if g.rng.Intn(2) == 0 {
		g.now += 300 * time.Millisecond // beyond the reinvite grace
		for i := 0; i < 1+g.rng.Intn(3); i++ {
			c.seqA++
			g.emit(oldMedia.Addr(), c.calleeMedia.Addr(), oldMedia.Port(), c.calleeMedia.Port(), g.rtpPacket(c.seqA, 0xDDDD0000))
			g.tick()
		}
	}
}

func (g *synthGen) instantMessage() {
	g.nIM++
	sender := g.rng.Intn(4)
	aor := fmt.Sprintf("user%d@pbx", sender)
	srcIP := g.ip(sender)
	if g.rng.Intn(3) == 0 {
		srcIP = g.ip(g.rng.Intn(8)) // spoofed sender source
	}
	dstIP := g.ip(g.rng.Intn(3))
	msg := sip.NewRequest(sip.RequestSpec{
		Method:     sip.MethodMessage,
		RequestURI: "sip:" + aor,
		From:       g.addr(fmt.Sprintf("user%d", sender), g.ip(sender), fmt.Sprintf("t%08x", g.rng.Uint32())),
		To:         g.addr("peer", dstIP, ""),
		CallID:     fmt.Sprintf("im-%d-%08x@pbx", g.nIM, g.rng.Uint32()),
		CSeq:       sip.CSeq{Seq: 1, Method: sip.MethodMessage},
		Via:        g.via(srcIP),
		Body:       []byte("hello there"),
		BodyType:   "text/plain",
	})
	// The From AOR must be stable per sender for the rule to correlate:
	// rebuild From with the sender's canonical identity.
	msg.Headers.Set(sip.HdrFrom, g.addr(fmt.Sprintf("user%d", sender), netip.AddrFrom4([4]byte{10, 0, 0, byte(100)}), "imtag").String())
	g.emitSIP(srcIP, dstIP, msg)
}

func (g *synthGen) registerish() {
	user := g.rng.Intn(4)
	aor := fmt.Sprintf("user%d@pbx", user)
	_ = aor
	ip := g.ip(user)
	callID := fmt.Sprintf("reg-%08x@pbx", g.rng.Uint32())
	contact := g.addr(fmt.Sprintf("user%d", user), ip, "")
	mk := func(seq uint32, withAuth bool) *sip.Message {
		m := sip.NewRequest(sip.RequestSpec{
			Method:     sip.MethodRegister,
			RequestURI: "sip:pbx",
			From:       g.addr(fmt.Sprintf("user%d", user), ip, "rtag"),
			To:         g.addr(fmt.Sprintf("user%d", user), ip, ""),
			CallID:     callID,
			CSeq:       sip.CSeq{Seq: seq, Method: sip.MethodRegister},
			Via:        g.via(ip),
			Contact:    &contact,
		})
		if withAuth {
			m.Headers.Add(sip.HdrAuthorization, sip.Credentials{
				Username: fmt.Sprintf("user%d", user), Realm: "pbx", Nonce: "n1",
				URI: "sip:pbx", Response: fmt.Sprintf("%08x", g.rng.Uint32()),
			}.String())
		}
		return m
	}
	switch g.rng.Intn(3) {
	case 0: // clean registration
		m := mk(1, false)
		g.emitSIP(ip, g.ip(0), m)
		g.tick()
		g.emitSIP(g.ip(0), ip, sip.NewResponse(m, sip.StatusOK, "srvtag"))
	case 1: // auth flood: challenges until the DoS event fires
		for i := 0; i < 6; i++ {
			m := mk(uint32(i+1), false)
			g.emitSIP(ip, g.ip(0), m)
			g.tick()
			g.emitSIP(g.ip(0), ip, sip.NewResponse(m, sip.StatusUnauthorized, "srvtag"))
			g.tick()
		}
	default: // password guessing: distinct digest responses
		for i := 0; i < 4; i++ {
			m := mk(uint32(i+1), true)
			g.emitSIP(ip, g.ip(0), m)
			g.tick()
		}
	}
}

func (g *synthGen) rtcpTraffic() {
	c := g.pickCall()
	if c == nil || !c.established {
		return
	}
	var pkts []rtp.RTCPPacket
	pkts = append(pkts, &rtp.SenderReport{SSRC: 0xAAAA0000, PacketCount: 10, OctetCount: 1600})
	if g.rng.Intn(2) == 0 {
		pkts = append(pkts, &rtp.Bye{SSRCs: []uint32{0xAAAA0000}, Reason: "done"})
	}
	buf, err := rtp.MarshalCompound(pkts)
	if err != nil {
		panic(err)
	}
	g.emit(c.callerIP, c.calleeMedia.Addr(), c.callerMedia.Port()+1, c.calleeMedia.Port()+1, buf)
	// Follow-on media so the packet-driven spoofed-BYE check evaluates.
	if g.rng.Intn(2) == 0 {
		g.now += 300 * time.Millisecond
		c.seqB++
		g.emit(c.calleeIP, c.callerMedia.Addr(), c.calleeMedia.Port(), c.callerMedia.Port(), g.rtpPacket(c.seqB, 0xBBBB0000))
	}
}

func (g *synthGen) garbage() {
	dst := netip.AddrPortFrom(g.ip(g.rng.Intn(8)), uint16(10000+2*g.rng.Intn(6)))
	if c := g.pickCall(); c != nil && c.established && g.rng.Intn(2) == 0 {
		dst = c.calleeMedia
	}
	junk := make([]byte, 4+g.rng.Intn(40))
	g.rng.Read(junk)
	junk[0] = 0x00 // wrong RTP version: guaranteed undecodable
	g.emit(g.ip(g.rng.Intn(8)), dst.Addr(), 40000, dst.Port(), junk)
}

func (g *synthGen) accounting() {
	kind := accounting.TxnStart
	if g.rng.Intn(3) == 0 {
		kind = accounting.TxnStop
	}
	callID := fmt.Sprintf("ghost-%08x@pbx", g.rng.Uint32())
	from := fmt.Sprintf("user%d@pbx", g.rng.Intn(4))
	fromIP := g.ip(g.rng.Intn(8))
	if c := g.pickCall(); c != nil && g.rng.Intn(2) == 0 {
		callID, from, fromIP = c.id, c.callerAOR, c.callerIP
	}
	txn := accounting.Txn{Kind: kind, CallID: callID, From: from, To: "user9@pbx", FromIP: fromIP}
	g.emit(fromIP, g.ip(0), 30000, accounting.DefaultPort, txn.Marshal())
}

// billingFraud builds the full Section 3.2 chain on one Call-ID: a user
// registers from one address, then a malformed INVITE negotiates media
// elsewhere and an accounting START arrives from a third address.
func (g *synthGen) billingFraud() {
	n := g.rng.Intn(4)
	fraudster := sip.Address{URI: sip.URI{User: fmt.Sprintf("fraud%d", n), Host: "pbx"}}
	aor := fraudster.URI.AOR()
	homeIP, awayIP := g.ip(n), g.ip((n+3)%8)
	proxy := g.ip(0)

	regContact := sip.Address{URI: sip.URI{User: fraudster.URI.User, Host: homeIP.String()}}
	reg := sip.NewRequest(sip.RequestSpec{
		Method:     sip.MethodRegister,
		RequestURI: "sip:pbx",
		From:       fraudster.WithTag("frtag"),
		To:         fraudster,
		CallID:     fmt.Sprintf("freg-%08x@pbx", g.rng.Uint32()),
		CSeq:       sip.CSeq{Seq: 1, Method: sip.MethodRegister},
		Via:        g.via(homeIP),
		Contact:    &regContact,
	})
	g.emitSIP(homeIP, proxy, reg)
	g.tick()
	regOK := sip.NewResponse(reg, sip.StatusOK, "srvtag")
	regOK.Headers.Add(sip.HdrContact, regContact.String())
	g.emitSIP(proxy, homeIP, regOK)
	g.tick()

	callID := fmt.Sprintf("fraudcall-%08x@pbx", g.rng.Uint32())
	media := netip.AddrPortFrom(awayIP, g.mediaPort())
	inv := sip.NewRequest(sip.RequestSpec{
		Method:     sip.MethodInvite,
		RequestURI: "sip:victim@pbx",
		From:       fraudster.WithTag("fctag"),
		To:         sip.Address{URI: sip.URI{User: "victim", Host: "pbx"}},
		CallID:     callID,
		CSeq:       sip.CSeq{Seq: 1, Method: sip.MethodInvite},
		Via:        g.via(awayIP),
		Body:       sdp.NewAudioSession("fraud", media.Addr(), media.Port()).Marshal(),
		BodyType:   "application/sdp",
	})
	inv.Headers.Add(sip.HdrCSeq, sip.CSeq{Seq: 1, Method: sip.MethodInvite}.String())
	g.emitSIP(awayIP, proxy, inv)
	g.tick()
	ok := sip.NewResponse(inv, sip.StatusOK, "vtag")
	ok.Headers.Add(sip.HdrContentType, "application/sdp")
	ok.Body = sdp.NewAudioSession("victim", proxy, g.mediaPort()).Marshal()
	g.emitSIP(proxy, awayIP, ok)
	g.tick()

	txn := accounting.Txn{Kind: accounting.TxnStart, CallID: callID, From: aor, To: "victim@pbx", FromIP: awayIP}
	g.emit(awayIP, proxy, 30000, accounting.DefaultPort, txn.Marshal())
	_ = aor
}

func (g *synthGen) junk() {
	switch g.rng.Intn(4) {
	case 0: // truncated ethernet
		b := make([]byte, g.rng.Intn(12))
		g.rng.Read(b)
		g.frames = append(g.frames, rec{at: g.now, frame: b})
	case 1: // unmonitored port
		g.emit(g.ip(1), g.ip(2), 9, 9, []byte("nothing to see"))
	case 2: // undecodable SIP on the SIP port
		g.emit(g.ip(1), g.ip(2), 5060, 5060, []byte("\x00\x01\x02 not sip\r\n"))
	default: // garbage on an RTCP (odd media) port
		junk := make([]byte, 6+g.rng.Intn(20))
		g.rng.Read(junk)
		junk[0] = 0x00
		g.emit(g.ip(3), g.ip(4), 40001, uint16(10001+2*g.rng.Intn(6)), junk)
	}
}

// TestShardedDiffFragmentFloodWithLimits replays the reassembly-
// exhaustion flood with tight state budgets: both engines must evict the
// same fragment groups (and sessions, histories, trackers) at the same
// stream positions and stay alert-, event- and stats-identical.
func TestShardedDiffFragmentFloodWithLimits(t *testing.T) {
	frames := scenarioFrames(t, "fragflood", 7)
	cfg := core.Config{Limits: core.Limits{
		MaxSessions:    32,
		MaxFragGroups:  8,
		MaxIMHistories: 4,
		MaxSeqTrackers: 8,
		MaxBindings:    4,
	}}
	diffRunsCfg(t, "fragflood+limits", frames, cfg)
	// The flood must actually exercise the fragment budget, or the test
	// proves nothing.
	_, _, stats := runSerialCfg(frames, cfg)
	if stats.FragGroupsEvicted == 0 {
		t.Fatalf("fragment flood evicted no fragment groups; stats %+v", stats)
	}
}

// TestShardedDiffFloodScenariosWithLimits replays the other flood
// scenarios under the same budgets.
func TestShardedDiffFloodScenariosWithLimits(t *testing.T) {
	cfg := core.Config{Limits: core.Limits{
		MaxSessions:    24,
		MaxFragGroups:  8,
		MaxIMHistories: 4,
		MaxSeqTrackers: 8,
	}}
	// Each flood must exhaust the budget it targets: inviteflood the
	// session directory, rtpblast the sequence trackers (spray RTP never
	// opens dialog state, so the session cap is not its pressure point).
	exercised := map[string]func(core.EngineStats) int{
		"inviteflood": func(s core.EngineStats) int { return s.SessionsCapEvicted },
		"rtpblast":    func(s core.EngineStats) int { return s.SeqTrackersEvicted },
	}
	for _, name := range []string{"inviteflood", "rtpblast"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			frames := scenarioFrames(t, name, 7)
			diffRunsCfg(t, name+"+limits", frames, cfg)
			_, _, stats := runSerialCfg(frames, cfg)
			if exercised[name](stats) == 0 {
				t.Fatalf("%s evicted nothing from its target budget; stats %+v", name, stats)
			}
		})
	}
}

// expiryFrames generates a long synthetic workload (over the engine's gc
// cadence) with periodic idle gaps, so ExpireSessions sweeps interleave
// with mid-dialog traffic: calls started before a gap expire while calls
// started after it keep exchanging SIP and RTP.
func expiryFrames(seed int64) []rec {
	g := &synthGen{rng: rand.New(rand.NewSource(seed))}
	// The sweep runs every gcEvery (4096) frames; generate comfortably
	// more so at least one sweep lands mid-workload.
	for i := 0; i < 3200; i++ {
		g.now += time.Duration(g.rng.Intn(40)) * time.Millisecond
		if i%100 == 99 {
			g.now += 5 * time.Second // idle gap: everything open goes stale
		}
		switch p := g.rng.Intn(100); {
		case p < 30:
			g.startCall()
		case p < 70:
			g.rtpBurst()
		case p < 85:
			g.endCall()
		case p < 92:
			g.reinvite()
		default:
			g.instantMessage()
		}
	}
	return g.frames
}

// TestShardedDiffExpiryInterleaved pins serial/sharded equivalence when
// the periodic session-expiry sweep interleaves with mid-dialog traffic:
// the broadcast sweep must evict shard tables at exactly the stream
// position the serial engine's sweep runs at.
func TestShardedDiffExpiryInterleaved(t *testing.T) {
	cfg := core.Config{SessionTimeout: 2 * time.Second}
	for _, seed := range []int64{3, 11} {
		frames := expiryFrames(seed)
		label := fmt.Sprintf("expiry seed %d", seed)
		diffRunsCfg(t, label, frames, cfg)
		_, _, stats := runSerialCfg(frames, cfg)
		if stats.SessionsEvicted == 0 {
			t.Fatalf("%s: no sessions expired (frames=%d); the test exercises nothing", label, len(frames))
		}
	}
}
