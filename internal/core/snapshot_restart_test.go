package core_test

// Restart-path tests for checkpoint/restore: warm shard restarts that
// rehydrate from the last checkpoint, cold restarts that must announce
// their state loss, and the full kill → checkpoint-on-disk → resume flow
// a deployment would run.

import (
	"net/netip"
	"os"
	"path/filepath"
	"testing"
	"time"

	"scidive/internal/chaoscore"
	"scidive/internal/core"
)

// TestShardRestartWarmFromCheckpoint: with RestartFailedShards on and a
// checkpoint taken mid-dialog, a shard that panics AFTER the checkpoint
// restarts warm — it rehydrates the dialog state and still catches the
// bye-attack whose INVITE it saw before the crash. No shard-state-loss
// alert fires, because nothing was lost beyond the panicking batch.
func TestShardRestartWarmFromCheckpoint(t *testing.T) {
	const shards = 2
	id1 := callIDForShard(0, shards)
	callerIP := netip.AddrFrom4([4]byte{10, 0, 0, 3})
	calleeIP := netip.AddrFrom4([4]byte{10, 0, 0, 4})
	g := &chaosGen{}
	g.byeAttackCall(id1, callerIP, calleeIP, 10004, 10006)
	all := g.frames
	// byeAttackCall layout: INVITE, 200, 8 RTP (frames 0-9), then BYE and
	// 3 orphan RTP (frames 10-13). The checkpoint lands after frame 9.
	preBye, rest := all[:10], all[10:]
	// A sacrificial in-dialog RTP frame carries the panic; it is ordinal
	// 10 on shard 0, and the batch it dies in contains nothing else.
	sac := &chaosGen{now: preBye[len(preBye)-1].at + 500*time.Microsecond}
	sac.rtp(callerIP, calleeIP, 10004, 10006, 150, 0xA0A0)

	inj := new(chaoscore.ScriptedInjector).PanicAt(0, 10)
	cfg := core.Config{Limits: core.Limits{RestartFailedShards: true}}
	eng := core.NewShardedEngine(cfg, shards, core.WithFaultInjector(inj), core.WithEventLog())
	for _, r := range preBye {
		eng.HandleFrame(r.at, r.frame)
	}
	if _, err := eng.Snapshot(); err != nil { // arms the warm-restart cache
		eng.Close()
		t.Fatalf("snapshot: %v", err)
	}
	for _, r := range sac.frames {
		eng.HandleFrame(r.at, r.frame)
	}
	eng.Flush() // batch boundary: the panic consumes only the sacrificial frame
	for _, r := range rest {
		eng.HandleFrame(r.at, r.frame)
	}
	eng.Close()
	settleHealth(t, eng)

	alerts := eng.Alerts()
	bye, ok := findAlert(alerts, core.RuleByeAttack)
	if !ok {
		t.Fatalf("warm-restarted shard missed the bye-attack it had checkpointed state for: %v", alertKeys(alerts))
	}
	if bye.Session != id1 {
		t.Errorf("bye-attack session = %q, want %q", bye.Session, id1)
	}
	if _, ok := findAlert(alerts, core.RuleShardFailure); !ok {
		t.Errorf("panic raised no shard-failure alert: %v", alertKeys(alerts))
	}
	if a, ok := findAlert(alerts, core.RuleShardStateLoss); ok {
		t.Errorf("warm restart wrongly raised shard-state-loss: %s", alertKey(a))
	}
	stats := eng.Stats()
	if stats.ShardsFailed != 1 || stats.ShardsRestarted != 1 {
		t.Errorf("ShardsFailed=%d ShardsRestarted=%d, want 1/1", stats.ShardsFailed, stats.ShardsRestarted)
	}
}

// TestShardRestartColdStateLoss is the same crash WITHOUT a checkpoint:
// the shard restarts blind, the dialog state is gone (so the bye-attack
// is missed — the restartloss experiment quantifies this), and the
// engine must say so via the shard-state-loss self-alert.
func TestShardRestartColdStateLoss(t *testing.T) {
	const shards = 2
	id1 := callIDForShard(0, shards)
	callerIP := netip.AddrFrom4([4]byte{10, 0, 0, 3})
	calleeIP := netip.AddrFrom4([4]byte{10, 0, 0, 4})
	g := &chaosGen{}
	g.byeAttackCall(id1, callerIP, calleeIP, 10004, 10006)
	all := g.frames
	preBye, rest := all[:10], all[10:]
	sac := &chaosGen{now: preBye[len(preBye)-1].at + 500*time.Microsecond}
	sac.rtp(callerIP, calleeIP, 10004, 10006, 150, 0xA0A0)

	inj := new(chaoscore.ScriptedInjector).PanicAt(0, 10)
	cfg := core.Config{Limits: core.Limits{RestartFailedShards: true}}
	eng := core.NewShardedEngine(cfg, shards, core.WithFaultInjector(inj), core.WithEventLog())
	for _, r := range preBye {
		eng.HandleFrame(r.at, r.frame)
	}
	// No Snapshot() here: the crash finds no checkpoint to warm from.
	for _, r := range sac.frames {
		eng.HandleFrame(r.at, r.frame)
	}
	eng.Flush()
	for _, r := range rest {
		eng.HandleFrame(r.at, r.frame)
	}
	eng.Close()
	settleHealth(t, eng)

	alerts := eng.Alerts()
	loss, ok := findAlert(alerts, core.RuleShardStateLoss)
	if !ok {
		t.Fatalf("cold restart raised no shard-state-loss alert: %v", alertKeys(alerts))
	}
	if loss.Session != "shard:0" {
		t.Errorf("shard-state-loss session = %q, want shard:0", loss.Session)
	}
	if bye, ok := findAlert(alerts, core.RuleByeAttack); ok && bye.Session == id1 {
		t.Errorf("bye-attack fired for %s despite the dialog state being lost — cold restart is not actually cold", id1)
	}
	stats := eng.Stats()
	if stats.ShardsRestarted != 1 {
		t.Errorf("ShardsRestarted = %d, want 1", stats.ShardsRestarted)
	}
}

// TestKillAtCheckpointResume runs the deployment flow end to end: the
// chaoscore kill tap SIGKILLs the feed mid-scenario, the dying engine's
// checkpoint lands on disk via the atomic writer, and a fresh process
// peeks the file to learn how many capture frames to skip before
// resuming. The result must equal the uninterrupted run.
func TestKillAtCheckpointResume(t *testing.T) {
	frames := scenarioFrames(t, "bye", 7)
	wantAlerts, wantEvents, wantStats := runShardedCfg(frames, 2, core.Config{})

	path := filepath.Join(t.TempDir(), "scidive.ckpt")
	eng := core.NewShardedEngine(core.Config{}, 2, core.WithEventLog())
	tap := chaoscore.KillAt(len(frames)/2, func() {
		snap, err := eng.Snapshot()
		if err != nil {
			t.Errorf("snapshot at kill: %v", err)
			return
		}
		if err := core.WriteCheckpoint(path, snap); err != nil {
			t.Errorf("write checkpoint: %v", err)
		}
	}, eng.HandleFrame)
	for _, r := range frames {
		tap(r.at, r.frame)
	}
	eng.Close() // the dead process

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read checkpoint: %v", err)
	}
	info, err := core.PeekSnapshotInfo(data)
	if err != nil {
		t.Fatalf("peek checkpoint: %v", err)
	}
	if !info.Sharded || info.Shards != 2 {
		t.Fatalf("peek = %+v, want a 2-shard checkpoint", info)
	}
	if info.Frames != uint64(len(frames)/2) {
		t.Fatalf("checkpoint covers %d frames, kill was at %d", info.Frames, len(frames)/2)
	}

	resumed := core.NewShardedEngine(core.Config{}, 2, core.WithEventLog())
	defer resumed.Close()
	if err := resumed.RestoreSnapshot(data); err != nil {
		t.Fatalf("restore: %v", err)
	}
	for _, r := range frames[info.Frames:] { // replay skips checkpointed frames
		resumed.HandleFrame(r.at, r.frame)
	}
	resumed.Flush()
	compareToBaseline(t, "kill-at resume", resumed.Alerts(), resumed.Events(), resumed.Stats(),
		wantAlerts, wantEvents, wantStats)
}

// TestWriteCheckpointAtomic: the temp-and-rename writer must replace an
// existing checkpoint completely and leave no temp files behind.
func TestWriteCheckpointAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ids.ckpt")
	if err := core.WriteCheckpoint(path, []byte("older, longer checkpoint contents")); err != nil {
		t.Fatalf("first write: %v", err)
	}
	if err := core.WriteCheckpoint(path, []byte("new")); err != nil {
		t.Fatalf("second write: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read back: %v", err)
	}
	if string(got) != "new" {
		t.Errorf("checkpoint contents = %q, want %q", got, "new")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("readdir: %v", err)
	}
	if len(entries) != 1 {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Errorf("leftover files after checkpoint writes: %v", names)
	}
}
