package core

import (
	"fmt"
	"net/netip"
	"testing"
	"time"

	"scidive/internal/packet"
	"scidive/internal/sip"
)

// FuzzDistill throws arbitrary frames at the distiller; it must never
// panic and must account every frame.
func FuzzDistill(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x02, 0, 0, 0, 0, 2, 0x02, 0, 0, 0, 0, 1, 0x08, 0x00})
	f.Add(make([]byte, 64))
	f.Fuzz(func(t *testing.T, frame []byte) {
		d := NewDistiller()
		_ = d.Distill(time.Millisecond, frame)
		if d.Stats().Frames != 1 {
			t.Fatal("frame not accounted")
		}
	})
}

// fuzzClassifyPorts are the port pairs FuzzDistillerClassify cycles
// through: each claimed protocol plus an unmonitored port, so the fuzzer
// exercises every arm of the reclassification ladder.
var fuzzClassifyPorts = []struct{ src, dst uint16 }{
	{5060, 5060},   // SIP claim
	{40666, 40000}, // RTP claim (even media port)
	{40666, 40001}, // RTCP claim (odd media port)
	{40666, 7009},  // accounting claim
	{1234, 80},     // unmonitored
}

// FuzzDistillerClassify throws hostile payloads at every port-claim arm
// of the content-confirmed classifier — seeded with the torture corpus
// and the evasion shapes (RTP on signaling ports, SIP smuggled in RTP
// payloads). The distiller must never panic, the boxed and view forms
// must account identically, and every frame must land in exactly one
// terminal ledger counter.
func FuzzDistillerClassify(f *testing.F) {
	for _, e := range sip.TortureCorpus() {
		f.Add(e.Raw, uint8(0))
		f.Add(e.Raw, uint8(1))
	}
	rtpPkt := []byte{0x80, 0, 0x23, 0x28, 0, 0, 0x10, 0, 0xde, 0xad, 0, 1, 'm', 'e', 'd', 'i', 'a'}
	f.Add(rtpPkt, uint8(0)) // RTP tunneled at the SIP port
	smuggled := append(append([]byte(nil), rtpPkt...), []byte("BYE sip:bob@pbx SIP/2.0\r\n\r\n")...)
	f.Add(smuggled, uint8(1)) // SIP smuggled inside an RTP payload
	f.Add([]byte{}, uint8(4))
	f.Fuzz(func(t *testing.T, payload []byte, portSel uint8) {
		ports := fuzzClassifyPorts[int(portSel)%len(fuzzClassifyPorts)]
		frames, err := packet.BuildUDPFrames(packet.UDPFrameSpec{
			SrcMAC: packet.MAC{2, 0, 0, 0, 0, 1}, DstMAC: packet.MAC{2, 0, 0, 0, 0, 2},
			SrcIP: netip.MustParseAddr("10.0.0.1"), DstIP: netip.MustParseAddr("10.0.0.2"),
			SrcPort: ports.src, DstPort: ports.dst, IPID: 3, Payload: payload,
		}, 0)
		if err != nil {
			t.Skip() // payload exceeds what UDP can carry
		}
		boxed, viewed := NewDistiller(), NewDistiller()
		var v FrameView
		for i, frame := range frames {
			_ = boxed.Distill(time.Duration(i)*time.Millisecond, frame)
			_ = viewed.DistillView(time.Duration(i)*time.Millisecond, frame, &v)
		}
		bs, vs := boxed.Stats(), viewed.Stats()
		if bs != vs {
			t.Fatalf("boxed and view forms diverged:\nboxed %+v\nview  %+v", bs, vs)
		}
		if bs.Frames != len(frames) {
			t.Fatalf("Frames = %d, fed %d", bs.Frames, len(frames))
		}
		terminal := bs.DecodeError + bs.Fragments + bs.Ignored + bs.Streamed +
			bs.SIP + bs.RTP + bs.RTCP + bs.Acct + bs.Raw + bs.Mismatched
		if terminal != bs.Frames+bs.StreamMsgs {
			t.Fatalf("ledger broken: terminal %d, inputs %d (%+v)", terminal, bs.Frames+bs.StreamMsgs, bs)
		}
	})
}

// FuzzEngineFrame drives the full pipeline with arbitrary frames.
func FuzzEngineFrame(f *testing.F) {
	f.Add([]byte{}, uint32(0))
	f.Add(make([]byte, 120), uint32(1000))
	f.Fuzz(func(t *testing.T, frame []byte, atMs uint32) {
		eng := NewEngine(Config{})
		eng.HandleFrame(time.Duration(atMs)*time.Millisecond, frame)
	})
}

// fuzzFrameStream chops fuzz input into a stream of pseudo-frames. The
// first byte of each chunk picks the chunk length so the fuzzer can
// explore frame boundaries; timestamps advance monotonically.
func fuzzFrameStream(data []byte) [][]byte {
	var frames [][]byte
	for len(data) > 0 && len(frames) < 64 {
		n := 14 + int(data[0])%120
		if n > len(data) {
			n = len(data)
		}
		frames = append(frames, data[:n])
		data = data[n:]
	}
	return frames
}

// fuzzSeedFrames returns valid on-the-wire traffic to seed the corpus so
// the fuzzer starts from decodable SIP/RTP rather than pure noise.
func fuzzSeedFrames(t testing.TB) [][]byte {
	src, dst := netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("10.0.0.2")
	inv := sip.NewRequest(sip.RequestSpec{
		Method:     sip.MethodInvite,
		RequestURI: "sip:bob@pbx",
		From:       sip.Address{URI: sip.URI{User: "alice", Host: "pbx"}}.WithTag("t1"),
		To:         sip.Address{URI: sip.URI{User: "bob", Host: "pbx"}},
		CallID:     "fuzzcall@pbx",
		CSeq:       sip.CSeq{Seq: 1, Method: sip.MethodInvite},
		Via:        sip.Via{Transport: "UDP", SentBy: "10.0.0.1"},
	})
	var out [][]byte
	for _, p := range []struct {
		sp, dp  uint16
		payload []byte
	}{
		{5060, 5060, inv.Marshal()},
		{10000, 10002, []byte{0x80, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 1, 'h', 'i'}},
		{10001, 10003, []byte{0x81, 0xc8, 0, 1, 0, 0, 0, 1}},
	} {
		frames, err := packet.BuildUDPFrames(packet.UDPFrameSpec{
			SrcMAC: packet.MAC{2, 0, 0, 0, 0, 1}, DstMAC: packet.MAC{2, 0, 0, 0, 0, 2},
			SrcIP: src, DstIP: dst, SrcPort: p.sp, DstPort: p.dp, IPID: 7, Payload: p.payload,
		}, 0)
		if err != nil {
			t.Fatalf("seed frame: %v", err)
		}
		out = append(out, frames...)
	}
	return out
}

// FuzzShardedDivergence routes fuzzed frame streams through both the
// serial Engine and a ShardedEngine and requires no panic and byte-equal
// alert/event/stat outcomes.
func FuzzShardedDivergence(f *testing.F) {
	var seed []byte
	for _, fr := range fuzzSeedFrames(f) {
		seed = append(seed, fr...)
	}
	f.Add(seed, uint8(3))
	f.Add([]byte{}, uint8(1))
	f.Add(make([]byte, 300), uint8(8))
	f.Fuzz(func(t *testing.T, data []byte, nshards uint8) {
		shards := 1 + int(nshards)%8
		frames := fuzzFrameStream(data)

		serial := NewEngine(Config{}, WithEventLog())
		sharded := NewShardedEngine(Config{}, shards, WithEventLog())
		defer sharded.Close()
		at := time.Millisecond
		for _, fr := range frames {
			serial.HandleFrame(at, fr)
			sharded.HandleFrame(at, fr)
			at += 3 * time.Millisecond
		}
		sharded.Flush()

		sEv, gEv := serial.Events(), sharded.Events()
		if len(sEv) != len(gEv) {
			t.Fatalf("event count diverged: serial %d, sharded %d", len(sEv), len(gEv))
		}
		for i := range sEv {
			a := fmt.Sprintf("%v|%v|%s|%s", sEv[i].At, sEv[i].Type, sEv[i].Session, sEv[i].Detail)
			b := fmt.Sprintf("%v|%v|%s|%s", gEv[i].At, gEv[i].Type, gEv[i].Session, gEv[i].Detail)
			if a != b {
				t.Fatalf("event %d diverged:\nserial  %s\nsharded %s", i, a, b)
			}
		}
		sAl, gAl := serial.Alerts(), sharded.Alerts()
		if len(sAl) != len(gAl) {
			t.Fatalf("alert count diverged: serial %d, sharded %d", len(sAl), len(gAl))
		}
		for i := range sAl {
			a := fmt.Sprintf("%v|%s|%s|%s|%d", sAl[i].At, sAl[i].Rule, sAl[i].Session, sAl[i].Detail, sAl[i].Count)
			b := fmt.Sprintf("%v|%s|%s|%s|%d", gAl[i].At, gAl[i].Rule, gAl[i].Session, gAl[i].Detail, gAl[i].Count)
			if a != b {
				t.Fatalf("alert %d diverged:\nserial  %s\nsharded %s", i, a, b)
			}
		}
		if ss, gs := serial.Stats(), sharded.Stats(); ss != gs {
			t.Fatalf("stats diverged: serial %+v, sharded %+v", ss, gs)
		}
	})
}

// FuzzIngestHandoff drives the parallel ingest front end with fuzzed
// frame streams at fuzzer-chosen (ingesters × shards) widths and holds
// it to the serial engine's exact output. The decode lanes race freely
// over arbitrary — often undecodable — bytes; the sequencer must still
// reproduce the synchronous router's alerts, events and stats.
func FuzzIngestHandoff(f *testing.F) {
	var seed []byte
	for _, fr := range fuzzSeedFrames(f) {
		seed = append(seed, fr...)
	}
	f.Add(seed, uint8(2), uint8(3))
	f.Add([]byte{}, uint8(4), uint8(1))
	f.Add(make([]byte, 300), uint8(3), uint8(8))
	f.Fuzz(func(t *testing.T, data []byte, ningest, nshards uint8) {
		ingesters := 2 + int(ningest)%3 // 2..4: width 1 is the synchronous router
		shards := 1 + int(nshards)%8
		frames := fuzzFrameStream(data)

		serial := NewEngine(Config{}, WithEventLog())
		parallel := NewShardedEngine(Config{IngestRouters: ingesters}, shards, WithEventLog())
		defer parallel.Close()
		at := time.Millisecond
		for _, fr := range frames {
			serial.HandleFrame(at, fr)
			parallel.HandleFrame(at, fr)
			at += 3 * time.Millisecond
		}
		parallel.Flush()

		sEv, gEv := serial.Events(), parallel.Events()
		if len(sEv) != len(gEv) {
			t.Fatalf("event count diverged: serial %d, parallel %d", len(sEv), len(gEv))
		}
		for i := range sEv {
			a := fmt.Sprintf("%v|%v|%s|%s", sEv[i].At, sEv[i].Type, sEv[i].Session, sEv[i].Detail)
			b := fmt.Sprintf("%v|%v|%s|%s", gEv[i].At, gEv[i].Type, gEv[i].Session, gEv[i].Detail)
			if a != b {
				t.Fatalf("event %d diverged:\nserial   %s\nparallel %s", i, a, b)
			}
		}
		sAl, gAl := serial.Alerts(), parallel.Alerts()
		if len(sAl) != len(gAl) {
			t.Fatalf("alert count diverged: serial %d, parallel %d", len(sAl), len(gAl))
		}
		for i := range sAl {
			a := fmt.Sprintf("%v|%s|%s|%s|%d", sAl[i].At, sAl[i].Rule, sAl[i].Session, sAl[i].Detail, sAl[i].Count)
			b := fmt.Sprintf("%v|%s|%s|%s|%d", gAl[i].At, gAl[i].Rule, gAl[i].Session, gAl[i].Detail, gAl[i].Count)
			if a != b {
				t.Fatalf("alert %d diverged:\nserial   %s\nparallel %s", i, a, b)
			}
		}
		if ss, gs := serial.Stats(), parallel.Stats(); ss != gs {
			t.Fatalf("stats diverged: serial %+v, parallel %+v", ss, gs)
		}
		for _, h := range parallel.IngestHealth() {
			if h.FramesFed != h.FramesSequenced {
				t.Fatalf("lane %d ledger broken after flush: fed %d, sequenced %d",
					h.Ingester, h.FramesFed, h.FramesSequenced)
			}
		}
	})
}

// fuzzSnapshotSeeds builds real checkpoints (serial and 2-shard) from
// seed traffic so the fuzzer mutates valid formats, not just noise.
func fuzzSnapshotSeeds(t testing.TB) [][]byte {
	frames := fuzzSeedFrames(t)
	serial := NewEngine(Config{}, WithEventLog())
	at := time.Millisecond
	for _, fr := range frames {
		serial.HandleFrame(at, fr)
		at += 3 * time.Millisecond
	}
	ss, err := serial.Snapshot()
	if err != nil {
		t.Fatalf("serial seed snapshot: %v", err)
	}
	sharded := NewShardedEngine(Config{}, 2, WithEventLog())
	defer sharded.Close()
	at = time.Millisecond
	for _, fr := range frames {
		sharded.HandleFrame(at, fr)
		at += 3 * time.Millisecond
	}
	hs, err := sharded.Snapshot()
	if err != nil {
		t.Fatalf("sharded seed snapshot: %v", err)
	}
	return [][]byte{ss, hs}
}

// FuzzSnapshotDecode feeds arbitrary bytes — seeded with genuine
// checkpoints for the mutator to corrupt, truncate and bit-flip — to
// both engines' restore paths. The contract under attack: decoding must
// never panic, never allocate absurdly, and never partially restore — a
// rejected checkpoint leaves the engine exactly as fresh as it was.
func FuzzSnapshotDecode(f *testing.F) {
	seeds := fuzzSnapshotSeeds(f)
	for _, s := range seeds {
		f.Add(s)
		f.Add(s[:len(s)/2]) // truncation
		f.Add(s[:len(s)-8]) // checksum sheared off
		flip := append([]byte(nil), s...)
		flip[len(flip)/3] ^= 0x10 // body bit-flip
		f.Add(flip)
	}
	f.Add([]byte{})
	f.Add([]byte("SCDV"))
	f.Fuzz(func(t *testing.T, data []byte) {
		serial := NewEngine(Config{}, WithEventLog())
		if err := serial.RestoreSnapshot(data); err != nil {
			if st := serial.Stats(); st != (EngineStats{}) {
				t.Fatalf("rejected checkpoint left serial state behind: %+v", st)
			}
			if len(serial.Alerts()) != 0 || len(serial.Events()) != 0 {
				t.Fatal("rejected checkpoint left alerts or events behind")
			}
		} else {
			// Whatever restores must snapshot again deterministically and
			// that snapshot must restore into another fresh engine.
			again, err := serial.Snapshot()
			if err != nil {
				t.Fatalf("restored engine cannot snapshot: %v", err)
			}
			second := NewEngine(Config{}, WithEventLog())
			if err := second.RestoreSnapshot(again); err != nil {
				t.Fatalf("re-snapshot does not restore: %v", err)
			}
		}
		// The engine stays usable either way.
		serial.HandleFrame(time.Second, fuzzSeedFrames(t)[0])

		sharded := NewShardedEngine(Config{}, 2, WithEventLog())
		defer sharded.Close()
		if err := sharded.RestoreSnapshot(data); err != nil {
			if st := sharded.Stats(); st != (EngineStats{}) {
				t.Fatalf("rejected checkpoint left sharded state behind: %+v", st)
			}
			if len(sharded.Alerts()) != 0 {
				t.Fatal("rejected checkpoint left sharded alerts behind")
			}
		}
		sharded.HandleFrame(time.Second, fuzzSeedFrames(t)[0])
		sharded.Flush()
	})
}

// FuzzParseRules exercises the rule DSL parser.
func FuzzParseRules(f *testing.F) {
	f.Add("rule x critical {\nseq sip-bye\n}\n")
	f.Add(sampleRules)
	f.Add("}{")
	f.Fuzz(func(t *testing.T, text string) {
		rules, err := ParseRules(text)
		if err != nil {
			return
		}
		// Whatever parses must format and re-parse equivalently.
		again, err := ParseRules(FormatRules(rules))
		if err != nil {
			t.Fatalf("formatted rules do not re-parse: %v", err)
		}
		if len(again) != len(rules) {
			t.Fatalf("rule count changed: %d vs %d", len(rules), len(again))
		}
	})
}
