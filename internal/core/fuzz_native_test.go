package core

import (
	"fmt"
	"net/netip"
	"testing"
	"time"

	"scidive/internal/packet"
	"scidive/internal/sip"
)

// FuzzDistill throws arbitrary frames at the distiller; it must never
// panic and must account every frame.
func FuzzDistill(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x02, 0, 0, 0, 0, 2, 0x02, 0, 0, 0, 0, 1, 0x08, 0x00})
	f.Add(make([]byte, 64))
	f.Fuzz(func(t *testing.T, frame []byte) {
		d := NewDistiller()
		_ = d.Distill(time.Millisecond, frame)
		if d.Stats().Frames != 1 {
			t.Fatal("frame not accounted")
		}
	})
}

// FuzzEngineFrame drives the full pipeline with arbitrary frames.
func FuzzEngineFrame(f *testing.F) {
	f.Add([]byte{}, uint32(0))
	f.Add(make([]byte, 120), uint32(1000))
	f.Fuzz(func(t *testing.T, frame []byte, atMs uint32) {
		eng := NewEngine(Config{})
		eng.HandleFrame(time.Duration(atMs)*time.Millisecond, frame)
	})
}

// fuzzFrameStream chops fuzz input into a stream of pseudo-frames. The
// first byte of each chunk picks the chunk length so the fuzzer can
// explore frame boundaries; timestamps advance monotonically.
func fuzzFrameStream(data []byte) [][]byte {
	var frames [][]byte
	for len(data) > 0 && len(frames) < 64 {
		n := 14 + int(data[0])%120
		if n > len(data) {
			n = len(data)
		}
		frames = append(frames, data[:n])
		data = data[n:]
	}
	return frames
}

// fuzzSeedFrames returns valid on-the-wire traffic to seed the corpus so
// the fuzzer starts from decodable SIP/RTP rather than pure noise.
func fuzzSeedFrames(t testing.TB) [][]byte {
	src, dst := netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("10.0.0.2")
	inv := sip.NewRequest(sip.RequestSpec{
		Method:     sip.MethodInvite,
		RequestURI: "sip:bob@pbx",
		From:       sip.Address{URI: sip.URI{User: "alice", Host: "pbx"}}.WithTag("t1"),
		To:         sip.Address{URI: sip.URI{User: "bob", Host: "pbx"}},
		CallID:     "fuzzcall@pbx",
		CSeq:       sip.CSeq{Seq: 1, Method: sip.MethodInvite},
		Via:        sip.Via{Transport: "UDP", SentBy: "10.0.0.1"},
	})
	var out [][]byte
	for _, p := range []struct {
		sp, dp  uint16
		payload []byte
	}{
		{5060, 5060, inv.Marshal()},
		{10000, 10002, []byte{0x80, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 1, 'h', 'i'}},
		{10001, 10003, []byte{0x81, 0xc8, 0, 1, 0, 0, 0, 1}},
	} {
		frames, err := packet.BuildUDPFrames(packet.UDPFrameSpec{
			SrcMAC: packet.MAC{2, 0, 0, 0, 0, 1}, DstMAC: packet.MAC{2, 0, 0, 0, 0, 2},
			SrcIP: src, DstIP: dst, SrcPort: p.sp, DstPort: p.dp, IPID: 7, Payload: p.payload,
		}, 0)
		if err != nil {
			t.Fatalf("seed frame: %v", err)
		}
		out = append(out, frames...)
	}
	return out
}

// FuzzShardedDivergence routes fuzzed frame streams through both the
// serial Engine and a ShardedEngine and requires no panic and byte-equal
// alert/event/stat outcomes.
func FuzzShardedDivergence(f *testing.F) {
	var seed []byte
	for _, fr := range fuzzSeedFrames(f) {
		seed = append(seed, fr...)
	}
	f.Add(seed, uint8(3))
	f.Add([]byte{}, uint8(1))
	f.Add(make([]byte, 300), uint8(8))
	f.Fuzz(func(t *testing.T, data []byte, nshards uint8) {
		shards := 1 + int(nshards)%8
		frames := fuzzFrameStream(data)

		serial := NewEngine(Config{}, WithEventLog())
		sharded := NewShardedEngine(Config{}, shards, WithEventLog())
		defer sharded.Close()
		at := time.Millisecond
		for _, fr := range frames {
			serial.HandleFrame(at, fr)
			sharded.HandleFrame(at, fr)
			at += 3 * time.Millisecond
		}
		sharded.Flush()

		sEv, gEv := serial.Events(), sharded.Events()
		if len(sEv) != len(gEv) {
			t.Fatalf("event count diverged: serial %d, sharded %d", len(sEv), len(gEv))
		}
		for i := range sEv {
			a := fmt.Sprintf("%v|%v|%s|%s", sEv[i].At, sEv[i].Type, sEv[i].Session, sEv[i].Detail)
			b := fmt.Sprintf("%v|%v|%s|%s", gEv[i].At, gEv[i].Type, gEv[i].Session, gEv[i].Detail)
			if a != b {
				t.Fatalf("event %d diverged:\nserial  %s\nsharded %s", i, a, b)
			}
		}
		sAl, gAl := serial.Alerts(), sharded.Alerts()
		if len(sAl) != len(gAl) {
			t.Fatalf("alert count diverged: serial %d, sharded %d", len(sAl), len(gAl))
		}
		for i := range sAl {
			a := fmt.Sprintf("%v|%s|%s|%s|%d", sAl[i].At, sAl[i].Rule, sAl[i].Session, sAl[i].Detail, sAl[i].Count)
			b := fmt.Sprintf("%v|%s|%s|%s|%d", gAl[i].At, gAl[i].Rule, gAl[i].Session, gAl[i].Detail, gAl[i].Count)
			if a != b {
				t.Fatalf("alert %d diverged:\nserial  %s\nsharded %s", i, a, b)
			}
		}
		if ss, gs := serial.Stats(), sharded.Stats(); ss != gs {
			t.Fatalf("stats diverged: serial %+v, sharded %+v", ss, gs)
		}
	})
}

// FuzzIngestHandoff drives the parallel ingest front end with fuzzed
// frame streams at fuzzer-chosen (ingesters × shards) widths and holds
// it to the serial engine's exact output. The decode lanes race freely
// over arbitrary — often undecodable — bytes; the sequencer must still
// reproduce the synchronous router's alerts, events and stats.
func FuzzIngestHandoff(f *testing.F) {
	var seed []byte
	for _, fr := range fuzzSeedFrames(f) {
		seed = append(seed, fr...)
	}
	f.Add(seed, uint8(2), uint8(3))
	f.Add([]byte{}, uint8(4), uint8(1))
	f.Add(make([]byte, 300), uint8(3), uint8(8))
	f.Fuzz(func(t *testing.T, data []byte, ningest, nshards uint8) {
		ingesters := 2 + int(ningest)%3 // 2..4: width 1 is the synchronous router
		shards := 1 + int(nshards)%8
		frames := fuzzFrameStream(data)

		serial := NewEngine(Config{}, WithEventLog())
		parallel := NewShardedEngine(Config{IngestRouters: ingesters}, shards, WithEventLog())
		defer parallel.Close()
		at := time.Millisecond
		for _, fr := range frames {
			serial.HandleFrame(at, fr)
			parallel.HandleFrame(at, fr)
			at += 3 * time.Millisecond
		}
		parallel.Flush()

		sEv, gEv := serial.Events(), parallel.Events()
		if len(sEv) != len(gEv) {
			t.Fatalf("event count diverged: serial %d, parallel %d", len(sEv), len(gEv))
		}
		for i := range sEv {
			a := fmt.Sprintf("%v|%v|%s|%s", sEv[i].At, sEv[i].Type, sEv[i].Session, sEv[i].Detail)
			b := fmt.Sprintf("%v|%v|%s|%s", gEv[i].At, gEv[i].Type, gEv[i].Session, gEv[i].Detail)
			if a != b {
				t.Fatalf("event %d diverged:\nserial   %s\nparallel %s", i, a, b)
			}
		}
		sAl, gAl := serial.Alerts(), parallel.Alerts()
		if len(sAl) != len(gAl) {
			t.Fatalf("alert count diverged: serial %d, parallel %d", len(sAl), len(gAl))
		}
		for i := range sAl {
			a := fmt.Sprintf("%v|%s|%s|%s|%d", sAl[i].At, sAl[i].Rule, sAl[i].Session, sAl[i].Detail, sAl[i].Count)
			b := fmt.Sprintf("%v|%s|%s|%s|%d", gAl[i].At, gAl[i].Rule, gAl[i].Session, gAl[i].Detail, gAl[i].Count)
			if a != b {
				t.Fatalf("alert %d diverged:\nserial   %s\nparallel %s", i, a, b)
			}
		}
		if ss, gs := serial.Stats(), parallel.Stats(); ss != gs {
			t.Fatalf("stats diverged: serial %+v, parallel %+v", ss, gs)
		}
		for _, h := range parallel.IngestHealth() {
			if h.FramesFed != h.FramesSequenced {
				t.Fatalf("lane %d ledger broken after flush: fed %d, sequenced %d",
					h.Ingester, h.FramesFed, h.FramesSequenced)
			}
		}
	})
}

// fuzzSnapshotSeeds builds real checkpoints (serial and 2-shard) from
// seed traffic so the fuzzer mutates valid formats, not just noise.
func fuzzSnapshotSeeds(t testing.TB) [][]byte {
	frames := fuzzSeedFrames(t)
	serial := NewEngine(Config{}, WithEventLog())
	at := time.Millisecond
	for _, fr := range frames {
		serial.HandleFrame(at, fr)
		at += 3 * time.Millisecond
	}
	ss, err := serial.Snapshot()
	if err != nil {
		t.Fatalf("serial seed snapshot: %v", err)
	}
	sharded := NewShardedEngine(Config{}, 2, WithEventLog())
	defer sharded.Close()
	at = time.Millisecond
	for _, fr := range frames {
		sharded.HandleFrame(at, fr)
		at += 3 * time.Millisecond
	}
	hs, err := sharded.Snapshot()
	if err != nil {
		t.Fatalf("sharded seed snapshot: %v", err)
	}
	return [][]byte{ss, hs}
}

// FuzzSnapshotDecode feeds arbitrary bytes — seeded with genuine
// checkpoints for the mutator to corrupt, truncate and bit-flip — to
// both engines' restore paths. The contract under attack: decoding must
// never panic, never allocate absurdly, and never partially restore — a
// rejected checkpoint leaves the engine exactly as fresh as it was.
func FuzzSnapshotDecode(f *testing.F) {
	seeds := fuzzSnapshotSeeds(f)
	for _, s := range seeds {
		f.Add(s)
		f.Add(s[:len(s)/2]) // truncation
		f.Add(s[:len(s)-8]) // checksum sheared off
		flip := append([]byte(nil), s...)
		flip[len(flip)/3] ^= 0x10 // body bit-flip
		f.Add(flip)
	}
	f.Add([]byte{})
	f.Add([]byte("SCDV"))
	f.Fuzz(func(t *testing.T, data []byte) {
		serial := NewEngine(Config{}, WithEventLog())
		if err := serial.RestoreSnapshot(data); err != nil {
			if st := serial.Stats(); st != (EngineStats{}) {
				t.Fatalf("rejected checkpoint left serial state behind: %+v", st)
			}
			if len(serial.Alerts()) != 0 || len(serial.Events()) != 0 {
				t.Fatal("rejected checkpoint left alerts or events behind")
			}
		} else {
			// Whatever restores must snapshot again deterministically and
			// that snapshot must restore into another fresh engine.
			again, err := serial.Snapshot()
			if err != nil {
				t.Fatalf("restored engine cannot snapshot: %v", err)
			}
			second := NewEngine(Config{}, WithEventLog())
			if err := second.RestoreSnapshot(again); err != nil {
				t.Fatalf("re-snapshot does not restore: %v", err)
			}
		}
		// The engine stays usable either way.
		serial.HandleFrame(time.Second, fuzzSeedFrames(t)[0])

		sharded := NewShardedEngine(Config{}, 2, WithEventLog())
		defer sharded.Close()
		if err := sharded.RestoreSnapshot(data); err != nil {
			if st := sharded.Stats(); st != (EngineStats{}) {
				t.Fatalf("rejected checkpoint left sharded state behind: %+v", st)
			}
			if len(sharded.Alerts()) != 0 {
				t.Fatal("rejected checkpoint left sharded alerts behind")
			}
		}
		sharded.HandleFrame(time.Second, fuzzSeedFrames(t)[0])
		sharded.Flush()
	})
}

// FuzzParseRules exercises the rule DSL parser.
func FuzzParseRules(f *testing.F) {
	f.Add("rule x critical {\nseq sip-bye\n}\n")
	f.Add(sampleRules)
	f.Add("}{")
	f.Fuzz(func(t *testing.T, text string) {
		rules, err := ParseRules(text)
		if err != nil {
			return
		}
		// Whatever parses must format and re-parse equivalently.
		again, err := ParseRules(FormatRules(rules))
		if err != nil {
			t.Fatalf("formatted rules do not re-parse: %v", err)
		}
		if len(again) != len(rules) {
			t.Fatalf("rule count changed: %d vs %d", len(rules), len(again))
		}
	})
}
