package core

import (
	"testing"
	"time"
)

// FuzzDistill throws arbitrary frames at the distiller; it must never
// panic and must account every frame.
func FuzzDistill(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x02, 0, 0, 0, 0, 2, 0x02, 0, 0, 0, 0, 1, 0x08, 0x00})
	f.Add(make([]byte, 64))
	f.Fuzz(func(t *testing.T, frame []byte) {
		d := NewDistiller()
		_ = d.Distill(time.Millisecond, frame)
		if d.Stats().Frames != 1 {
			t.Fatal("frame not accounted")
		}
	})
}

// FuzzEngineFrame drives the full pipeline with arbitrary frames.
func FuzzEngineFrame(f *testing.F) {
	f.Add([]byte{}, uint32(0))
	f.Add(make([]byte, 120), uint32(1000))
	f.Fuzz(func(t *testing.T, frame []byte, atMs uint32) {
		eng := NewEngine(Config{})
		eng.HandleFrame(time.Duration(atMs)*time.Millisecond, frame)
	})
}

// FuzzParseRules exercises the rule DSL parser.
func FuzzParseRules(f *testing.F) {
	f.Add("rule x critical {\nseq sip-bye\n}\n")
	f.Add(sampleRules)
	f.Add("}{")
	f.Fuzz(func(t *testing.T, text string) {
		rules, err := ParseRules(text)
		if err != nil {
			return
		}
		// Whatever parses must format and re-parse equivalently.
		again, err := ParseRules(FormatRules(rules))
		if err != nil {
			t.Fatalf("formatted rules do not re-parse: %v", err)
		}
		if len(again) != len(rules) {
			t.Fatalf("rule count changed: %d vs %d", len(rules), len(again))
		}
	})
}
