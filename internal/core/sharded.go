package core

import (
	"fmt"
	"net/netip"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"scidive/internal/accounting"
	"scidive/internal/capture"
	"scidive/internal/netsim"
	"scidive/internal/packet"
	"scidive/internal/rtp"
	"scidive/internal/sip"
)

// ShardedEngine runs the SCIDIVE pipeline across N worker shards, each
// owning a private Distiller, TrailStore, EventGenerator and RuleEngine.
// A single router stage peeks at every frame just deep enough to compute
// its session key — the same key the serial engine files trails under —
// and ships the frame to shard hash(key). Session affinity is the load-
// bearing invariant: a call's SIP dialog, its RTP media, its RTCP control
// and its accounting records all hash to one shard, so the stateful
// cross-protocol rules run unchanged inside each shard.
//
// State that spans sessions cannot live in a shard. The router therefore
// keeps its own session directory (a second sessionIndex fed by the same
// applySIP transitions the shards run) for media-flow attribution, owns
// its own instances of the protocol correlators — the hinter correlators
// (rtp's sequence-continuity trackers, im's source histories) judge every
// frame here in global arrival order and ship verdicts to the shards as
// RouteHints — and replicates registration bindings to every shard via
// ordered control messages. Port classification, sticky routing keys and
// shard-local budget zeroing all derive from the same correlator registry
// the shards dispatch through (see correlator.go).
//
// Alerts and events are tagged with (frame index, within-frame ordinal)
// on their shard and merged in that order, which reproduces the serial
// engine's output order exactly. The differential tests in
// sharded_diff_test.go hold the two engines to byte-identical alert and
// event streams.
//
// Failure containment: each worker is an actor that exclusively owns its
// pipeline and publishes results into a snapshot after every batch, so a
// panicking or stalled shard can never wedge readers. A panic quarantines
// the shard (its published alerts survive, subsequent frames are counted
// as shed, a shard-failure self-alert is raised) or, with
// Limits.RestartFailedShards, restarts it with fresh detection state.
// With Limits.ShedAfter set, a full shard queue sheds whole batches after
// a bounded wait instead of blocking the router, and with
// Limits.StallTimeout a watchdog quarantines shards that accept work but
// stop making progress. Every shed frame is accounted in Stats and
// ShardHealth and raises an ids-overload self-alert — degradation is a
// detectable event, never silent.
//
// HandleFrame may be called from multiple goroutines. The router retains
// a shipped frame until its shard has processed it, so feeders must not
// reuse frame buffers (netsim taps allocate per frame; ReplayCapture
// copies each frame because capture.Replay reuses one buffer — see the
// capture.FrameFunc aliasing contract). Call Close when done to stop the
// shard goroutines; Alerts, Events and Stats remain readable after
// Close.
type ShardedEngine struct {
	cfg     Config
	gen     GenConfig // normalized thresholds for router-side verdicts
	timeout time.Duration
	keepLog bool
	opts    []EngineOption // retained for shard restarts

	// liveRules is the active ruleset. ReloadRules swaps it atomically;
	// worker goroutines read it when building fresh shard engines (warm
	// and rolling restarts), so s.cfg stays immutable after construction.
	liveRules atomic.Pointer[[]Rule]

	// restoredStats/restoredDstats carry a restored portable checkpoint's
	// folded counters: Stats folds restoredStats in (with the fields that
	// live state re-counts zeroed — see RestoreSnapshot) and the next
	// Snapshot folds restoredDstats into the mined distiller stats.
	// Written only by RestoreSnapshot, which requires a fresh engine.
	restoredStats  EngineStats
	restoredDstats DistillerStats

	mu       sync.Mutex // router stage: directory, reassembly, pending batches
	closed   bool
	frameIdx uint64
	idx      *sessionIndex
	reasm    *packet.Reassembler
	frags    map[fragIdent]*fragGroup
	// streams is the router-owned stream-transport demux (TCP reassembly +
	// SIP framing). It is the ONLY stream state in the sharded engine:
	// shards receive already-extracted messages, so stream expiry and
	// eviction run once here, on the same push clock the serial distiller
	// uses, and can never diverge across shard counts.
	streams *streamMux
	// correlators are the router's own instances of the registry: port
	// claims, routing-key overrides, per-frame hints and router-owned
	// budget enforcement all run against these (their cross-session state
	// is mutated under mu; their eviction counters are atomics, read
	// lock-free by Stats).
	correlators []Correlator
	// ladder is the content-confirmation reclassification ladder derived
	// from the same correlator registry (classify.go): when a claimed
	// protocol's decode fails here, the router reclassifies exactly as the
	// shard's distiller will, so a reclassified frame still routes to the
	// session its content belongs to.
	ladder  classifyLadder
	sticky  map[string]string // Call-ID -> routing key (pinned on first sighting)
	pending [][]shardItem

	// Router-side decode scratch, used under mu: a pooled SIP parser with
	// one reusable message (classify never retains the message — only
	// interned strings flow into the directory) and peek views for
	// RTP/RTCP, so classification allocates nothing per frame.
	parser  *sip.Parser
	msg     sip.Message
	rtpHdr  rtp.HeaderView
	rtcpCmp rtp.CompoundView
	// hints is per-frame scratch for the hinter passes: taking the
	// address of a local RouteHints forces a heap escape through the
	// hinter interfaces, so classify reuses this field instead.
	hints RouteHints

	frames           atomic.Uint64
	framesAfterClose atomic.Uint64

	// Router-side Limits eviction counters (incremented under mu, read
	// lock-free by Stats).
	capSessions atomic.Uint64
	capFrags    atomic.Uint64
	capStreams  atomic.Uint64

	shardsFailed    atomic.Uint64
	shardsRestarted atomic.Uint64

	// Self-monitoring alerts (ids-overload, shard-failure). selfMu nests
	// inside mu (router-side sheds raise while routing) and is taken bare
	// by workers and the watchdog; nothing locks mu after selfMu.
	selfMu    sync.Mutex
	selfAlert []Alert
	selfTags  []mergeTag
	selfDedup map[string]int
	selfSeq   int

	watchStop chan struct{}

	// ing is the parallel ingest front end (Config.IngestRouters > 1):
	// decode lanes that peel the per-frame decode work off the routing
	// lock, plus a sequencer that replays their digests into the routing
	// path above in exact arrival order (see ingest.go). nil means the
	// historic fully synchronous router.
	ing       *ingestTier
	ingesters int

	workers []*shardWorker

	cbMu    sync.Mutex
	onAlert func(Alert)
	onEvent func(Event)
}

// fragIdent mirrors the reassembler's fragment-stream identity.
type fragIdent struct {
	src, dst netip.Addr
	proto    uint8
	id       uint16
}

// fragGroup buffers the original frames of one in-progress fragment
// stream so the whole datagram can ship to one shard once its session
// key is known. first mirrors the reassembler's eviction clock.
type fragGroup struct {
	frames []routedFrame
	first  time.Duration
}

// routedFrame is one raw frame with its capture time.
type routedFrame struct {
	at    time.Duration
	frame []byte
}

// shippedMsg is one stream-extracted SIP message (or tunneled media
// chunk, see streamKind) bound for a shard, with the router's
// per-message hints. The payload is copied at ship time: the router's
// framing buffers recycle on the flow's next segment, while the shard
// consumes the item asynchronously.
type shippedMsg struct {
	at       time.Duration
	src, dst netip.AddrPort
	payload  []byte
	hints    RouteHints
	kind     streamKind
}

// mergeTag orders shard output globally: frame index, then the event's
// ordinal within that frame. Frames are routed whole, so tags from
// different shards never collide. Self-monitoring alerts use a sub far
// above any per-frame ordinal so they sort after detections at the same
// frame.
type mergeTag struct {
	idx uint64
	sub int
}

const selfAlertSub = 1 << 30

type itemKind uint8

const (
	itemFrame itemKind = iota
	itemGroup
	itemStream
	itemBinding
	itemEvict
	itemExpire
	itemFlush
	itemInspect
	itemSnapshot
	itemRestore
	itemReload
	itemRestart
)

// shardItem is one unit of work on a shard's queue: a routed frame (or
// reassembled fragment group), a replicated binding, a capacity-eviction
// or expiry broadcast, or a flush/inspect marker.
type shardItem struct {
	kind    itemKind
	idx     uint64
	at      time.Duration
	frame   []byte
	group   []routedFrame
	msgs    []shippedMsg
	hints   RouteHints
	aor     string
	ip      netip.Addr
	session string
	ack     chan struct{}
	// snap receives the worker's serialized state (itemSnapshot); restore
	// carries decoded state to install (itemRestore). Both are checkpoint
	// markers, acked like flush/inspect.
	snap    *[]byte
	restore *workerRestore
	// rules and dropped carry a live ruleset reload (itemReload): the new
	// ruleset to install and the shared counter of dropped partial
	// matches. Acked like flush/inspect.
	rules   []Rule
	dropped *atomic.Int64
}

// Worker health states.
const (
	stateHealthy uint32 = iota
	statePanicked
	stateStalled
)

func stateName(s uint32) string {
	switch s {
	case statePanicked:
		return "panicked"
	case stateStalled:
		return "stalled"
	default:
		return "healthy"
	}
}

// shardResults is a worker's published snapshot. Readers see only this,
// never the worker's live pipeline, so a stuck worker cannot block them.
type shardResults struct {
	stats     EngineStats
	dstats    DistillerStats
	alerts    []Alert
	alertTags []mergeTag
	events    []Event
	eventTags []mergeTag
	trails    []trailKey
}

// shardWorker owns one shard. The pipeline fields below resMu are
// private to the worker goroutine (actor model); everyone else reads the
// published snapshot under resMu and the atomics.
type shardWorker struct {
	id    int
	owner *ShardedEngine
	ch    chan []shardItem
	done  chan struct{}

	// Worker-private pipeline state.
	eng       *Engine
	alertTags []mergeTag
	eventTags []mergeTag
	curTag    mergeTag
	sub       int
	faultSeq  uint64
	trimmedA  int // rule-engine alert evictions mirrored into alertTags
	trimmedE  int // event-log evictions mirrored into eventTags
	base      shardResults
	// lastEngineSnap is the engine-body blob from the most recent
	// checkpoint (taken or restored), kept for warm restarts: when
	// RestartFailedShards replaces a panicked engine, the fresh one is
	// rehydrated from this instead of starting blind. Worker-private.
	lastEngineSnap []byte
	pubVer         int // rules.version at last alert publish
	pubEvict       int // engine EventsEvicted mirrored into pub

	resMu sync.Mutex
	pub   shardResults

	state       atomic.Uint32
	beat        atomic.Int64 // wall-clock heartbeat (UnixNano)
	trackBeat   bool
	enqueuedB   atomic.Uint64
	completedB  atomic.Uint64
	routedF     atomic.Uint64
	processedF  atomic.Uint64
	shedFrames  atomic.Uint64
	shedBatches atomic.Uint64
}

const (
	// shardBatchSize frames are accumulated per shard before a channel
	// send, amortizing synchronization on the hot path.
	shardBatchSize = 64
	// shardQueueDepth bounds each shard's channel; a full queue blocks
	// the router (backpressure) or, with Limits.ShedAfter, sheds.
	shardQueueDepth = 8
)

// shardBatchPool recycles batch slices between the router (which fills
// them) and the consumer that finishes them — a worker, or the router's
// own shed path. Returned batches are zeroed first so no frame bytes or
// fragment groups are retained past processing.
var shardBatchPool = sync.Pool{
	New: func() any {
		b := make([]shardItem, 0, shardBatchSize)
		return &b
	},
}

// getBatch returns an empty batch with shardBatchSize capacity.
func getBatch() []shardItem {
	return (*shardBatchPool.Get().(*[]shardItem))[:0]
}

// putBatch zeroes a finished batch (dropping its frame and group
// references) and recycles it. Safe on batches that grew past
// shardBatchSize (markers appended by Flush/Close/TrailCounts).
func putBatch(b []shardItem) {
	clear(b)
	b = b[:0]
	shardBatchPool.Put(&b)
}

// NewShardedEngine builds a sharded IDS instance. shards <= 0 uses
// runtime.GOMAXPROCS(0). The configuration is shared by every shard.
// DirectTrailMatching is a single-store ablation and is not supported
// sharded.
func NewShardedEngine(cfg Config, shards int, opts ...EngineOption) *ShardedEngine {
	if cfg.DirectTrailMatching {
		panic("core: ShardedEngine does not support DirectTrailMatching; use Engine for the ablation")
	}
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxTrailLen == 0 {
		cfg.MaxTrailLen = 4096
	}
	if cfg.SessionTimeout == 0 {
		cfg.SessionTimeout = 10 * time.Minute
	}
	if cfg.Rules == nil {
		cfg.Rules = DefaultRuleset()
	}
	s := &ShardedEngine{
		cfg:         cfg,
		gen:         cfg.Gen.withDefaults(),
		timeout:     cfg.SessionTimeout,
		opts:        opts,
		idx:         newSessionIndex(true),
		reasm:       packet.NewReassembler(0),
		frags:       make(map[fragIdent]*fragGroup),
		correlators: buildCorrelators(cfg.Correlators, cfg.Gen.withDefaults()),
		parser:      sip.NewParser(),
		sticky:      make(map[string]string),
		selfDedup:   make(map[string]int),
		pending:     make([][]shardItem, shards),
		workers:     make([]*shardWorker, shards),
	}
	s.ladder = ladderOf(s.correlators)
	s.liveRules.Store(&s.cfg.Rules)
	// The router's correlator instances enforce the full (global) budget;
	// shard instances get those caps zeroed (see shardLocalLimits).
	for _, c := range s.correlators {
		if b, ok := c.(budgeted); ok {
			b.setLimits(cfg.Limits)
		}
	}
	// The router enforces the global caps itself; session evictions are
	// broadcast so shard tables drop the same victim at the same stream
	// position the serial generator would.
	s.idx.maxSessions = cfg.Limits.MaxSessions
	s.idx.onCapEvict = func(id string) {
		s.capSessions.Add(1)
		delete(s.sticky, id)
		for i := range s.workers {
			s.appendItemLocked(i, shardItem{kind: itemEvict, session: id})
		}
	}
	s.reasm.SetLimit(cfg.Limits.MaxFragGroups)
	s.reasm.OnEvict(func(id packet.FragID) {
		s.capFrags.Add(1)
		delete(s.frags, fragIdent{src: id.Src, dst: id.Dst, proto: id.Proto, id: id.ID})
	})
	s.streams = newStreamMux()
	s.streams.sniff = s.ladder.tunnelSniff
	s.streams.reasm.SetLimit(cfg.Limits.MaxStreams)
	s.streams.onEvict = func(id packet.StreamID, at time.Duration) {
		s.capStreams.Add(1)
		s.raiseSelf(RuleIDSOverload, "streams",
			"tcp stream reassembly state evicted to respect MaxStreams (possible mid-message loss)", at)
	}
	now := time.Now().UnixNano()
	for i := range s.workers {
		w := &shardWorker{
			id:        i,
			owner:     s,
			ch:        make(chan []shardItem, shardQueueDepth),
			done:      make(chan struct{}),
			eng:       s.newShardEngine(),
			trackBeat: cfg.Limits.StallTimeout > 0,
		}
		w.beat.Store(now)
		s.wireWorker(w)
		s.keepLog = w.eng.keepLog
		s.pending[i] = getBatch()
		s.workers[i] = w
		go w.run()
	}
	if cfg.Limits.StallTimeout > 0 {
		s.watchStop = make(chan struct{})
		go s.watchdog(cfg.Limits.StallTimeout)
	}
	s.ingesters = cfg.IngestRouters
	if s.ingesters < 1 {
		s.ingesters = 1
	}
	if s.ingesters > 1 {
		s.ing = newIngestTier(s, s.ingesters)
	}
	return s
}

// newShardEngine builds one shard's private engine, with the router-owned
// caps zeroed out (see shardLocalLimits).
func (s *ShardedEngine) newShardEngine() *Engine {
	wcfg := s.cfg
	wcfg.Rules = *s.liveRules.Load()
	wcfg.Limits = shardLocalLimits(s.correlators, wcfg.Limits)
	eng := NewEngine(wcfg, s.opts...)
	// Shard engines never own router-side routing state: the router keeps
	// the sticky routing keys, buffered fragment groups and the stream
	// mux, so the serial engine's mirrors stay nil here (nil-map deletes
	// in the eviction hooks are no-ops).
	eng.gen.sticky = nil
	eng.distiller.frags = nil
	eng.distiller.streams = nil
	return eng
}

// wireWorker hooks a (possibly fresh) shard engine's alert stream to the
// worker's merge tags and the user callback.
func (s *ShardedEngine) wireWorker(w *shardWorker) {
	w.eng.rules.OnAlert(func(a Alert) {
		w.alertTags = append(w.alertTags, w.curTag)
		s.cbMu.Lock()
		fn := s.onAlert
		s.cbMu.Unlock()
		if fn != nil {
			fn(a)
		}
	})
	w.eng.OnEvent(func(ev Event) {
		s.cbMu.Lock()
		fn := s.onEvent
		s.cbMu.Unlock()
		if fn != nil {
			fn(ev)
		}
	})
}

// Shards returns the number of worker shards.
func (s *ShardedEngine) Shards() int { return len(s.workers) }

// Ingesters returns the number of parallel ingest routers (1 means the
// single synchronous router).
func (s *ShardedEngine) Ingesters() int { return s.ingesters }

// ShardOf reports which shard the given routing key maps to with n
// shards. Exported so chaos tests and capacity planning can predict
// frame placement; for calls the routing key is the Call-ID, for IM
// sender sessions "im:" + AOR.
func ShardOf(key string, n int) int { return shardOf(key, n) }

// OnAlert registers a callback for new alerts. It fires from shard
// goroutines (and the router, for self-monitoring alerts) in shard-local
// order; use Alerts for the merged stream. The callback must not call
// back into the engine.
func (s *ShardedEngine) OnAlert(fn func(Alert)) {
	s.cbMu.Lock()
	s.onAlert = fn
	s.cbMu.Unlock()
}

// OnEvent registers a callback for generated events. Like OnAlert it
// fires from shard goroutines in shard-local order — the merged global
// order is only available from Events() after Flush. A cooperative
// exporter attached here must therefore tolerate inter-shard reordering
// (the aggregator's deterministic merge re-sorts by timestamp). The
// callback must be fast and must not call back into the engine.
func (s *ShardedEngine) OnEvent(fn func(Event)) {
	s.cbMu.Lock()
	s.onEvent = fn
	s.cbMu.Unlock()
}

// HandleFrame routes one observed frame. It is netsim.Tap compatible and
// safe for concurrent use. Frames arriving after Close are dropped and
// counted in Stats().FramesAfterClose.
func (s *ShardedEngine) HandleFrame(at time.Duration, frame []byte) {
	if s.ing != nil {
		s.ing.feed(at, frame)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		s.framesAfterClose.Add(1)
		return
	}
	s.frames.Add(1)
	s.frameIdx++
	if s.frameIdx%gcEvery == 0 {
		s.expireLocked(at)
	}
	s.routeLocked(s.frameIdx, at, frame)
}

// AttachTap subscribes the engine to all hub traffic of a network.
func (s *ShardedEngine) AttachTap(n *netsim.Network) {
	n.AddTap(s.HandleFrame)
}

// ReplayCapture feeds a recorded SCAP capture through the engine. Call
// Flush (or Alerts/Events, which flush) before reading results. Each
// frame is copied before routing: capture.Replay reuses one frame buffer
// and the router retains shipped frames until their shard processes
// them.
func (s *ShardedEngine) ReplayCapture(r *capture.Reader) error {
	err := capture.Replay(r, func(at time.Duration, frame []byte) {
		s.HandleFrame(at, append([]byte(nil), frame...))
	})
	if err != nil {
		return fmt.Errorf("core: replay: %w", err)
	}
	return nil
}

// expireLocked mirrors the serial engine's periodic session sweep: the
// router expires its own directory and broadcasts the sweep to every
// shard at the same position in the frame stream, so shard-local tables
// evict exactly when the serial table would.
func (s *ShardedEngine) expireLocked(at time.Duration) {
	evicted := s.idx.expire(at, s.timeout, func(id string) { delete(s.sticky, id) })
	if evicted > 0 {
		for _, c := range s.correlators {
			if ex, ok := c.(expirer); ok {
				ex.onExpire(at, len(s.idx.sessions))
			}
		}
	}
	for i := range s.workers {
		s.appendItemLocked(i, shardItem{kind: itemExpire, at: at})
	}
}

// routeLocked peeks at a frame, updates the routing directory, and ships
// the frame (with hints) to its shard. Every drop point below matches a
// path where the serial distiller produces no footprint, so dropped
// frames are exactly the frames no shard needs.
func (s *ShardedEngine) routeLocked(idx uint64, at time.Duration, frame []byte) {
	ef, err := packet.UnmarshalEthernet(frame)
	if err != nil || ef.Type != packet.EtherTypeIPv4 {
		return
	}
	iph, ipPayload, err := packet.UnmarshalIPv4(ef.Payload)
	if err != nil {
		return
	}
	// The reassembler expires stale fragment streams at every Insert;
	// prune the buffered frame groups on the same clock so the two can
	// never disagree about which stream a fragment belongs to. Capacity
	// evictions are mirrored through the OnEvict hook.
	s.pruneFragsLocked(at)
	fragmented := iph.FragOffset != 0 || iph.MoreFragments()
	full, payload, done, err := s.reasm.Insert(iph, ipPayload, at)
	key := fragIdent{src: iph.Src, dst: iph.Dst, proto: iph.Protocol, id: iph.ID}
	if err != nil {
		// The reassembler creates its buffer before the oversize check but
		// after the alignment check; mirror that so group lifetimes track
		// buffer lifetimes exactly. The frame itself contributed nothing.
		alignErr := iph.FragOffset != 0 && len(ipPayload)%8 != 0 && iph.MoreFragments()
		if fragmented && !alignErr {
			if s.frags[key] == nil {
				s.frags[key] = &fragGroup{first: at}
			}
		}
		return
	}
	if !done {
		grp := s.frags[key]
		if grp == nil {
			grp = &fragGroup{first: at}
			s.frags[key] = grp
		}
		grp.frames = append(grp.frames, routedFrame{at: at, frame: frame})
		return
	}
	var group []routedFrame
	if fragmented {
		if grp := s.frags[key]; grp != nil {
			group = grp.frames
			delete(s.frags, key)
		}
	}
	if full.Protocol != packet.ProtoUDP {
		if full.Protocol == packet.ProtoTCP {
			s.routeStreamLocked(idx, at, full.Src, full.Dst, payload)
		}
		return
	}
	uh, udpPayload, err := packet.PeekUDP(full.Src, full.Dst, payload)
	if err != nil {
		return
	}
	src := netip.AddrPortFrom(full.Src, uh.SrcPort)
	dst := netip.AddrPortFrom(full.Dst, uh.DstPort)
	routeKey, hints, ship := s.classifyLocked(at, src, dst, udpPayload)
	if !ship {
		return
	}
	shard := shardOf(s.resolveRouteLocked(routeKey), len(s.workers))
	if group == nil {
		s.appendItemLocked(shard, shardItem{kind: itemFrame, idx: idx, at: at, frame: frame, hints: hints})
		return
	}
	group = append(group, routedFrame{at: at, frame: frame})
	s.appendItemLocked(shard, shardItem{kind: itemGroup, idx: idx, group: group, hints: hints})
}

// pruneFragsLocked drops buffered fragment groups on the reassembler's
// eviction schedule.
func (s *ShardedEngine) pruneFragsLocked(now time.Duration) {
	for k, grp := range s.frags {
		if now-grp.first > packet.DefaultReassemblyTimeout {
			delete(s.frags, k)
		}
	}
}

// classifyLocked computes the routing key plus hints for a datagram. The
// protocol comes from the registered correlators' port claims — the same
// claims the shards' distillers consult, so router and shard can never
// disagree about a port's protocol. ship=false means no correlator
// claimed the port, so the serial engine would produce no footprint.
func (s *ShardedEngine) classifyLocked(at time.Duration, src, dst netip.AddrPort, udpPayload []byte) (string, RouteHints, bool) {
	proto, claimed := claimPortOf(s.correlators, src.Port(), dst.Port())
	if !claimed {
		return "", RouteHints{}, false
	}
	switch proto {
	case ProtoSIP:
		key, hints := s.classifySIPLocked(at, src, dst, udpPayload)
		return key, hints, true
	case ProtoAccounting:
		txn, err := accounting.ParseTxn(udpPayload)
		if err != nil {
			if key, hints, ok := s.ladderRouteLocked(ProtoAccounting, at, src, dst, udpPayload); ok {
				return key, hints, true
			}
		}
		return s.classifyAcctLocked(dst, txn.CallID, txn.Kind == accounting.TxnStart, err == nil), RouteHints{}, true
	case ProtoRTP:
		key, hints := s.classifyRTPLocked(at, src, dst, udpPayload)
		return key, hints, true
	case ProtoRTCP:
		key, hints := s.classifyRTCPLocked(at, src, dst, udpPayload)
		return key, hints, true
	default:
		return "", RouteHints{}, false
	}
}

// classifyAcctLocked is the stateful half of accounting classification.
// ok=false means the transaction did not parse and is filed raw.
func (s *ShardedEngine) classifyAcctLocked(dst netip.AddrPort, callID string, start, ok bool) string {
	if !ok {
		return s.idx.endpointKey('w', "raw:", dst)
	}
	if start {
		// The generator creates session state for billing STARTs.
		s.idx.core(callID)
	}
	return callID
}

func (s *ShardedEngine) classifySIPLocked(at time.Duration, src, dst netip.AddrPort, udpPayload []byte) (string, RouteHints) {
	// ParseInto reuses the router's message and aliases the frame's body;
	// neither outlives this call — applySIP and the hinters extract only
	// interned strings and scalar verdicts.
	m := &s.msg
	if err := s.parser.ParseInto(udpPayload, &s.msg); err != nil {
		if key, hints, ok := s.ladderRouteLocked(ProtoSIP, at, src, dst, udpPayload); ok {
			return key, hints
		}
		m = nil
	}
	return s.classifySIPMsgLocked(at, src, dst, m)
}

// ladderRouteLocked is the router's half of content-confirmed
// reclassification (classify.go): after the claimed protocol's decode
// failed, it walks the same ladder the shard's distiller will walk and,
// on the first protocol whose confirmation and full decode both accept
// the payload, runs that protocol's normal stateful classification — so
// a reclassified frame lands on the shard of the session its content
// belongs to, with the same hints a natively classified frame would
// carry. ok=false means no rung accepted and the caller falls through to
// its raw path, exactly as before the ladder existed.
func (s *ShardedEngine) ladderRouteLocked(claimed Protocol, at time.Duration, src, dst netip.AddrPort, udpPayload []byte) (string, RouteHints, bool) {
	for _, step := range s.ladder {
		if step.proto == claimed || !step.confirm(udpPayload) {
			continue
		}
		switch step.proto {
		case ProtoSIP:
			if s.parser.ParseInto(udpPayload, &s.msg) != nil {
				continue
			}
			key, hints := s.classifySIPMsgLocked(at, src, dst, &s.msg)
			return key, hints, true
		case ProtoRTP:
			if rtp.PeekHeader(udpPayload, &s.rtpHdr) != nil {
				continue
			}
			key, hints := s.classifyRTPSeqLocked(at, src, dst, s.rtpHdr.Seq, true)
			return key, hints, true
		case ProtoRTCP:
			if rtp.PeekCompound(udpPayload, &s.rtcpCmp) != nil {
				continue
			}
			key, hints := s.classifyRTCPFlowLocked(at, src, dst, true)
			return key, hints, true
		}
	}
	return "", RouteHints{}, false
}

// classifySIPMsgLocked is the stateful half of SIP classification: it
// takes an already-parsed message (nil for an unparseable datagram on a
// SIP port) and runs the directory transition, hinters, binding
// replication and sticky-key pinning. The synchronous router parses into
// its own scratch message; the ingest sequencer passes messages the
// ingest lanes parsed in parallel (see ingest.go).
func (s *ShardedEngine) classifySIPMsgLocked(at time.Duration, src, dst netip.AddrPort, m *sip.Message) (string, RouteHints) {
	if m == nil {
		return s.idx.endpointKey('w', "raw:", dst), RouteHints{}
	}
	st, out := s.idx.applySIP(m, at, src)
	// Hinter correlators judge the sighting against their router-owned
	// state here, in arrival order, exactly as the serial correlators
	// would (the im correlator's source-history verdict, for one).
	s.hints = RouteHints{}
	for _, c := range s.correlators {
		if sh, ok := c.(sipHinter); ok {
			sh.sipHint(at, src, dst, m, out, &s.hints)
		}
	}
	if out.regOK && out.bindingIP.IsValid() {
		// Replicate the binding to every shard, ordered with the frame
		// stream, so each shard's directory view matches the serial one.
		for i := range s.workers {
			s.appendItemLocked(i, shardItem{kind: itemBinding, aor: out.regAOR, ip: out.bindingIP})
		}
	}
	if out.established {
		for _, c := range s.correlators {
			if o, ok := c.(establishObserver); ok {
				o.onEstablished(st)
			}
		}
	}
	s.idx.touch(st.callID, at)
	// Pin the routing key on the dialog's first sighting. A correlator
	// with cross-dialog state overrides the default Call-ID key (the im
	// correlator routes MESSAGE dialogs by "im:" + sender AOR, the
	// options-scan correlator routes OPTIONS probes by source) so its
	// state colocates on one shard across Call-IDs.
	routeKey, ok := s.sticky[st.callID]
	if !ok {
		routeKey = st.callID
		for _, c := range s.correlators {
			if rk, isKeyer := c.(sipRouteKeyer); isKeyer {
				if k, claimed := rk.sipRouteKey(m, out, src); claimed {
					routeKey = k
					break
				}
			}
		}
		s.sticky[st.callID] = routeKey
	}
	return routeKey, s.hints
}

// routeStreamLocked is the stream-transport arm of the router: a TCP
// segment feeds the router-owned mux, and every SIP message it completes
// is classified here in arrival order, copied, and shipped to the flow's
// shard as ONE item — the messages' merge ordinals stay contiguous, so
// coalesced messages keep the serial engine's output order. TCP frames
// that complete no message (handshakes, partial messages, unclaimed
// ports) ship nothing, exactly the frames the serial engine produces no
// footprint for.
func (s *ShardedEngine) routeStreamLocked(idx uint64, at time.Duration, srcIP, dstIP netip.Addr, seg []byte) {
	th, payload, err := packet.PeekTCP(srcIP, dstIP, seg)
	if err != nil {
		return
	}
	if proto, claimed := claimPortOf(s.correlators, th.SrcPort, th.DstPort); !claimed || proto != ProtoSIP {
		return
	}
	src := netip.AddrPortFrom(srcIP, th.SrcPort)
	dst := netip.AddrPortFrom(dstIP, th.DstPort)
	s.streams.push(at, src, dst, th, payload)
	msgs := s.streams.drain()
	if len(msgs) == 0 {
		return
	}
	flowKey := streamFlowKey(src, dst)
	ship := make([]shippedMsg, len(msgs))
	for i, sm := range msgs {
		var hints RouteHints
		if sm.kind == streamKindTunnel {
			hints = s.classifyStreamTunnelLocked(sm.at, sm.src, sm.dst, sm.payload)
		} else {
			hints = s.classifyStreamSIPLocked(sm.at, sm.src, sm.dst, sm.payload, flowKey)
		}
		ship[i] = shippedMsg{at: sm.at, src: sm.src, dst: sm.dst,
			payload: append([]byte(nil), sm.payload...), hints: hints, kind: sm.kind}
	}
	s.appendItemLocked(shardOf(flowKey, len(s.workers)),
		shardItem{kind: itemStream, idx: idx, at: at, msgs: ship})
}

// classifyStreamSIPLocked runs the router's directory transition, hinter
// passes and binding replication for one stream-extracted SIP message,
// mirroring classifySIPMsgLocked with one difference: a dialog first
// sighted on a stream pins its sticky key to the flow's routing key
// (every message of the stream already routes there — flow affinity wins
// over the Call-ID and keyer overrides), so the dialog's media and
// accounting follow the stream's shard.
func (s *ShardedEngine) classifyStreamSIPLocked(at time.Duration, src, dst netip.AddrPort, payload []byte, flowKey string) RouteHints {
	if err := s.parser.ParseInto(payload, &s.msg); err != nil {
		return RouteHints{}
	}
	m := &s.msg
	st, out := s.idx.applySIP(m, at, src)
	s.hints = RouteHints{}
	for _, c := range s.correlators {
		if sh, ok := c.(sipHinter); ok {
			sh.sipHint(at, src, dst, m, out, &s.hints)
		}
	}
	if out.regOK && out.bindingIP.IsValid() {
		for i := range s.workers {
			s.appendItemLocked(i, shardItem{kind: itemBinding, aor: out.regAOR, ip: out.bindingIP})
		}
	}
	if out.established {
		for _, c := range s.correlators {
			if o, ok := c.(establishObserver); ok {
				o.onEstablished(st)
			}
		}
	}
	s.idx.touch(st.callID, at)
	if _, ok := s.sticky[st.callID]; !ok {
		s.sticky[st.callID] = flowKey
	}
	return s.hints
}

// classifyStreamTunnelLocked runs the stateful classification for a
// media chunk tunneled over a SIP-claimed TCP stream. The chunk still
// routes with its flow (stream order and the shipped payload's merge
// ordinal must hold), so only the hints matter here — but the directory
// transitions (session touch, rtp continuity hint) run exactly as they
// would for the equivalent datagram, in global arrival order. Mirrors
// the shard-side decode in distillStreamMessage's tunnel arm.
func (s *ShardedEngine) classifyStreamTunnelLocked(at time.Duration, src, dst netip.AddrPort, payload []byte) RouteHints {
	for _, step := range s.ladder {
		if step.proto == ProtoSIP || !step.confirm(payload) {
			continue
		}
		switch step.proto {
		case ProtoRTP:
			if rtp.PeekHeader(payload, &s.rtpHdr) != nil {
				continue
			}
			_, hints := s.classifyRTPSeqLocked(at, src, dst, s.rtpHdr.Seq, true)
			return hints
		case ProtoRTCP:
			if rtp.PeekCompound(payload, &s.rtcpCmp) != nil {
				continue
			}
			_, hints := s.classifyRTCPFlowLocked(at, src, dst, true)
			return hints
		}
	}
	return RouteHints{}
}

func (s *ShardedEngine) classifyRTPLocked(at time.Duration, src, dst netip.AddrPort, udpPayload []byte) (string, RouteHints) {
	ok := rtp.PeekHeader(udpPayload, &s.rtpHdr) == nil
	if !ok {
		if key, hints, lok := s.ladderRouteLocked(ProtoRTP, at, src, dst, udpPayload); lok {
			return key, hints
		}
	}
	return s.classifyRTPSeqLocked(at, src, dst, s.rtpHdr.Seq, ok)
}

// classifyRTPSeqLocked is the stateful half of RTP classification: only
// the peeked sequence number (and whether the peek succeeded) is needed
// from the datagram, so ingest lanes can do the header decode off the
// routing lock.
func (s *ShardedEngine) classifyRTPSeqLocked(at time.Duration, src, dst netip.AddrPort, seq uint16, ok bool) (string, RouteHints) {
	if !ok {
		// Garbage on a media port: the serial generator attributes the
		// event to the session negotiating this endpoint.
		sess := s.idx.mediaDstSession(dst)
		if sess == "" {
			sess = s.idx.endpointKey('w', "raw:", dst)
		}
		return sess, RouteHints{Session: sess}
	}
	session := s.idx.flowSession(src, dst)
	if session == "" {
		session = s.idx.endpointKey('r', "rtp:", dst)
	}
	// The rtp correlator's router instance tracks continuity across all
	// shards in global frame order and ships the verdict as a hint.
	s.hints = RouteHints{Session: session}
	for _, c := range s.correlators {
		if rh, isHinter := c.(rtpHinter); isHinter {
			rh.rtpHint(at, dst, seq, &s.hints)
		}
	}
	s.idx.touch(session, at)
	return session, s.hints
}

func (s *ShardedEngine) classifyRTCPLocked(at time.Duration, src, dst netip.AddrPort, udpPayload []byte) (string, RouteHints) {
	ok := rtp.PeekCompound(udpPayload, &s.rtcpCmp) == nil
	if !ok {
		if key, hints, lok := s.ladderRouteLocked(ProtoRTCP, at, src, dst, udpPayload); lok {
			return key, hints
		}
	}
	return s.classifyRTCPFlowLocked(at, src, dst, ok)
}

// classifyRTCPFlowLocked is the stateful half of RTCP classification:
// the compound peek only validates framing, so the lookup needs nothing
// but the verdict.
func (s *ShardedEngine) classifyRTCPFlowLocked(at time.Duration, src, dst netip.AddrPort, ok bool) (string, RouteHints) {
	if !ok {
		// Undecodable on an RTCP port: filed raw, no session attribution.
		return s.idx.endpointKey('w', "raw:", dst), RouteHints{}
	}
	session := s.idx.rtcpFlowSession(src, dst)
	if session == "" {
		session = s.idx.endpointKey('c', "rtcp:", dst)
	}
	s.idx.touch(session, at)
	return session, RouteHints{Session: session}
}

// appendItemLocked queues one item for a shard, flushing the batch when
// full.
func (s *ShardedEngine) appendItemLocked(shard int, it shardItem) {
	w := s.workers[shard]
	switch it.kind {
	case itemFrame, itemStream:
		w.routedF.Add(1)
	case itemGroup:
		w.routedF.Add(uint64(len(it.group)))
	}
	s.pending[shard] = append(s.pending[shard], it)
	if len(s.pending[shard]) >= shardBatchSize {
		s.flushShardLocked(shard)
	}
}

// flushShardLocked hands a shard its pending batch. Quarantined shards
// shed immediately; healthy shards get a non-blocking send, then either
// the historic blocking send (ShedAfter == 0) or a bounded wait that
// sheds the whole batch on expiry.
func (s *ShardedEngine) flushShardLocked(shard int) {
	if len(s.pending[shard]) == 0 {
		return
	}
	batch := s.pending[shard]
	s.pending[shard] = getBatch()
	w := s.workers[shard]
	if w.state.Load() != stateHealthy {
		s.shedBatchLocked(shard, batch)
		return
	}
	select {
	case w.ch <- batch:
		w.noteEnqueued()
		return
	default:
	}
	if s.cfg.Limits.ShedAfter <= 0 {
		w.ch <- batch // historic backpressure: block until the shard drains
		w.noteEnqueued()
		return
	}
	t := time.NewTimer(s.cfg.Limits.ShedAfter)
	defer t.Stop()
	select {
	case w.ch <- batch:
		w.noteEnqueued()
	case <-t.C:
		s.shedBatchLocked(shard, batch)
	}
}

// noteEnqueued accounts a successful batch send. It also refreshes the
// heartbeat: the stall clock for newly accepted work starts at enqueue,
// so an idle worker that simply hasn't been scheduled yet is not
// mistaken for a stalled one. A genuinely stuck shard stops accepting
// sends once its queue fills, after which the beat goes stale and the
// watchdog fires.
func (w *shardWorker) noteEnqueued() {
	w.enqueuedB.Add(1)
	if w.trackBeat {
		w.beat.Store(time.Now().UnixNano())
	}
}

// shedBatchLocked drops a whole batch: frames are counted as shed, flush
// and inspect markers are acked so no reader waits on dropped work, and
// an ids-overload self-alert records the loss. Control items (bindings,
// expiries, evictions) in a shed batch are lost too — acceptable
// degradation for an already-overloaded or failed shard.
func (s *ShardedEngine) shedBatchLocked(shard int, batch []shardItem) {
	w := s.workers[shard]
	n, at := shedItems(batch)
	w.shedBatches.Add(1)
	if n > 0 {
		w.shedFrames.Add(uint64(n))
		s.raiseSelf(RuleIDSOverload, fmt.Sprintf("shard:%d", shard),
			fmt.Sprintf("shed %d frames bound for shard %d (queue stalled or shard quarantined)", n, shard), at)
	}
	putBatch(batch)
}

// shedItems counts the frames in a run of items and acks its markers,
// returning the frame count and the timestamp of the last dropped frame.
func shedItems(items []shardItem) (frames int, at time.Duration) {
	for i := range items {
		switch items[i].kind {
		case itemFrame, itemStream:
			frames++
			at = items[i].at
		case itemGroup:
			frames += len(items[i].group)
			if n := len(items[i].group); n > 0 {
				at = items[i].group[n-1].at
			}
		case itemFlush, itemInspect, itemSnapshot, itemRestore, itemReload, itemRestart:
			close(items[i].ack)
		}
	}
	return frames, at
}

// raiseSelf records a self-monitoring alert, deduplicated per (rule,
// session) like RuleEngine.raise. Safe from the router (under mu), the
// watchdog, and shard workers.
func (s *ShardedEngine) raiseSelf(rule, session, detail string, at time.Duration) {
	s.selfMu.Lock()
	key := rule + "|" + session
	if i, ok := s.selfDedup[key]; ok {
		s.selfAlert[i].Count++
		s.selfMu.Unlock()
		return
	}
	a := Alert{At: at, Rule: rule, Severity: SeverityCritical, Session: session, Detail: detail, Count: 1}
	s.selfDedup[key] = len(s.selfAlert)
	s.selfAlert = append(s.selfAlert, a)
	s.selfTags = append(s.selfTags, mergeTag{idx: s.frames.Load(), sub: selfAlertSub + s.selfSeq})
	s.selfSeq++
	s.selfMu.Unlock()
	s.cbMu.Lock()
	fn := s.onAlert
	s.cbMu.Unlock()
	if fn != nil {
		fn(a)
	}
}

// noteShardPanic quarantine-accounts a worker panic.
func (s *ShardedEngine) noteShardPanic(w *shardWorker, at time.Duration, failure any) {
	s.shardsFailed.Add(1)
	s.raiseSelf(RuleShardFailure, fmt.Sprintf("shard:%d", w.id),
		fmt.Sprintf("worker panic: %v (published alerts retained, subsequent frames shed)", failure), at)
}

// watchdog quarantines shards that accepted work but stopped making
// progress for longer than timeout (wall clock). Detects stalls —
// infinite loops, blocking decoders — that recover() never sees.
func (s *ShardedEngine) watchdog(timeout time.Duration) {
	period := timeout / 4
	if period < time.Millisecond {
		period = time.Millisecond
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-s.watchStop:
			return
		case <-tick.C:
			now := time.Now().UnixNano()
			for _, w := range s.workers {
				if w.state.Load() != stateHealthy {
					continue
				}
				if w.enqueuedB.Load() <= w.completedB.Load() {
					continue
				}
				if now-w.beat.Load() > int64(timeout) {
					w.state.Store(stateStalled)
					s.shardsFailed.Add(1)
					s.raiseSelf(RuleShardFailure, fmt.Sprintf("shard:%d", w.id),
						fmt.Sprintf("no progress for %v with work queued; quarantined", timeout), 0)
				}
			}
		}
	}
}

// Flush delivers all queued work and blocks until every shard has
// processed (or shed) everything enqueued before the call. With a
// parallel ingest front end, the ingest lanes are drained first so every
// frame fed before the call has been sequenced into its shard queue.
// Shards the watchdog quarantined as stalled are not waited for.
func (s *ShardedEngine) Flush() {
	if s.ing != nil {
		s.ing.drain()
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	acks := make([]chan struct{}, len(s.workers))
	for i := range s.workers {
		ack := make(chan struct{})
		acks[i] = ack
		s.pending[i] = append(s.pending[i], shardItem{kind: itemFlush, ack: ack})
		s.flushShardLocked(i)
	}
	s.mu.Unlock()
	for i, ack := range acks {
		awaitAck(s.workers[i], ack)
	}
}

// ReloadRules swaps the active ruleset live, at one consistent frame
// boundary: the reload marker is enqueued on every shard under a single
// routing-lock hold, so no frame is ever processed under the old rules
// on one shard and the new rules on another, and no frame is lost. nil
// reloads the default ruleset. In-flight partial matches carry forward
// for rules whose canonical text is unchanged and are dropped for
// removed or edited rules; when any were dropped, a rule-reload
// self-alert records the loss (see RuleRuleReload). Returns the dropped
// count. Raised alerts and dedup suppression survive the reload, exactly
// as they survive a checkpoint restore.
func (s *ShardedEngine) ReloadRules(rules []Rule) (int, error) {
	if rules == nil {
		rules = DefaultRuleset()
	}
	if s.ing != nil {
		s.ing.drain()
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, fmt.Errorf("core: reload rules: engine is closed")
	}
	var dropped atomic.Int64
	acks := make([]chan struct{}, len(s.workers))
	for i := range s.workers {
		ack := make(chan struct{})
		acks[i] = ack
		s.pending[i] = append(s.pending[i], shardItem{kind: itemReload, rules: rules, dropped: &dropped, ack: ack})
		s.flushShardLocked(i)
	}
	s.liveRules.Store(&rules)
	s.mu.Unlock()
	for i, ack := range acks {
		awaitAck(s.workers[i], ack)
	}
	n := int(dropped.Load())
	if n > 0 {
		s.raiseSelf(RuleRuleReload, "rules",
			fmt.Sprintf("ruleset reloaded: %d in-flight partial matches dropped (rules removed or edited)", n), 0)
	}
	return n, nil
}

// RollingRestart restarts every healthy shard's engine one at a time,
// warm: each shard is drained to a quiescent point by a restart marker
// (everything routed to it before the marker is processed first), its
// detection state is serialized, and a fresh engine is rehydrated from
// that state before the next shard starts. Frames keep flowing to the
// other shards throughout, and the restarted shard's outputs are
// indistinguishable from an uninterrupted run. After each shard comes
// back its routed == processed + shed ledger is reconciled; shards that
// are quarantined, or that fail mid-drain, are skipped (the failure
// path accounts them). Restarts count in Stats().ShardsRestarted.
func (s *ShardedEngine) RollingRestart() error {
	if s.ing != nil {
		s.ing.drain()
	}
	for i := range s.workers {
		w := s.workers[i]
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return fmt.Errorf("core: rolling restart: engine is closed")
		}
		if w.state.Load() != stateHealthy {
			s.mu.Unlock()
			continue
		}
		routedBefore := w.routedF.Load()
		ack := make(chan struct{})
		s.pending[i] = append(s.pending[i], shardItem{kind: itemRestart, ack: ack})
		s.flushShardLocked(i)
		s.mu.Unlock()
		awaitAck(w, ack)
		if w.state.Load() != stateHealthy {
			continue // failed mid-drain: quarantined and accounted by the failure path
		}
		if got := w.processedF.Load() + w.shedFrames.Load(); got < routedBefore {
			return fmt.Errorf("core: rolling restart: shard %d ledger failed to reconcile (routed %d before restart, processed+shed %d after)",
				i, routedBefore, got)
		}
	}
	return nil
}

// awaitAck waits for a worker to ack a marker, giving up if the worker
// is quarantined as stalled (its marker may be stuck behind the stall).
func awaitAck(w *shardWorker, ack chan struct{}) {
	for {
		select {
		case <-ack:
			return
		case <-time.After(200 * time.Microsecond):
			if w.state.Load() == stateStalled {
				return
			}
		}
	}
}

// Close flushes remaining work and stops the shard goroutines. Results
// remain readable; subsequent HandleFrame calls are dropped and counted.
// Stalled shards are abandoned, not awaited (their goroutines exit when
// the stall clears, since the queue is closed).
func (s *ShardedEngine) Close() {
	if s.ing != nil {
		// Stop the ingest tier first: in-flight frames are sequenced into
		// the shard queues and further feeds are counted as after-close.
		s.ing.close()
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	if s.watchStop != nil {
		close(s.watchStop)
	}
	for i := range s.workers {
		s.flushShardLocked(i)
		close(s.workers[i].ch)
	}
	s.mu.Unlock()
	for _, w := range s.workers {
		if w.state.Load() == stateStalled {
			continue
		}
		<-w.done
	}
}

// Stats returns a snapshot of the merged engine counters. It is safe to
// call concurrently with HandleFrame and never blocks on a shard: it
// reads each worker's last published snapshot, so it reflects batches
// shards have completed, plus every frame the router has accepted.
func (s *ShardedEngine) Stats() EngineStats {
	st := EngineStats{
		Frames:             int(s.frames.Load()),
		FramesAfterClose:   int(s.framesAfterClose.Load()),
		SessionsCapEvicted: int(s.capSessions.Load()),
		FragGroupsEvicted:  int(s.capFrags.Load()),
		StreamsEvicted:     int(s.capStreams.Load()),
		ShardsFailed:       int(s.shardsFailed.Load()),
		ShardsRestarted:    int(s.shardsRestarted.Load()),
	}
	// Router-owned correlator caps (IM histories, sequence trackers, …)
	// are enforced against the router's instances; their counters are
	// atomics, so this read is lock-free.
	for _, c := range s.correlators {
		if b, ok := c.(budgeted); ok {
			b.contributeStats(&st)
		}
	}
	maxBind := 0
	for _, w := range s.workers {
		w.resMu.Lock()
		es := w.pub.stats
		w.resMu.Unlock()
		st.Footprints += es.Footprints
		st.Events += es.Events
		st.Alerts += es.Alerts
		st.SessionsEvicted += es.SessionsEvicted
		st.EventsEvicted += es.EventsEvicted
		st.AlertsEvicted += es.AlertsEvicted
		// Bindings are replicated to every shard and evicted identically
		// everywhere: the count is the max, not the sum.
		if es.BindingsEvicted > maxBind {
			maxBind = es.BindingsEvicted
		}
		st.FramesShed += int(w.shedFrames.Load())
		st.BatchesShed += int(w.shedBatches.Load())
	}
	st.BindingsEvicted = maxBind
	// Counters carried over from a restored portable checkpoint (fields
	// that live state re-counts arrive zeroed — see RestoreSnapshot).
	st = addStats(st, s.restoredStats)
	return st
}

// DistillerStats returns the summed classification counters of every
// shard's distiller (plus any restored checkpoint's folded history). The
// router drops traffic no correlator claims and frames that fail
// link/IP/UDP decode before any shard distiller sees them, so Ignored
// and DecodeError cover only shipped traffic here; the classification
// counters (SIP/RTP/RTCP/Acct/Raw/Mismatched) account every frame that
// reached a shard, matching the serial engine's counts for the same
// input. Like Stats, it reads published snapshots and never blocks on a
// shard.
func (s *ShardedEngine) DistillerStats() DistillerStats {
	var st DistillerStats
	for _, w := range s.workers {
		w.resMu.Lock()
		st = addDistillerStats(st, w.pub.dstats)
		w.resMu.Unlock()
	}
	return addDistillerStats(st, s.restoredDstats)
}

// ShardHealth reports per-shard liveness and drop accounting. After a
// Flush, FramesRouted == FramesProcessed + FramesShed for every shard
// that is not mid-stall.
type ShardHealth struct {
	Shard           int
	State           string // "healthy", "panicked", or "stalled"
	FramesRouted    uint64 // frames the router assigned to this shard
	FramesProcessed uint64 // frames fully processed by the worker
	FramesShed      uint64 // frames dropped (overload shed or failure)
	BatchesShed     uint64 // whole batches dropped
}

// ShardHealth returns the per-shard health and accounting snapshot.
func (s *ShardedEngine) ShardHealth() []ShardHealth {
	out := make([]ShardHealth, len(s.workers))
	for i, w := range s.workers {
		out[i] = ShardHealth{
			Shard:           i,
			State:           stateName(w.state.Load()),
			FramesRouted:    w.routedF.Load(),
			FramesProcessed: w.processedF.Load(),
			FramesShed:      w.shedFrames.Load(),
			BatchesShed:     w.shedBatches.Load(),
		}
	}
	return out
}

// IngestHealth is one ingest lane's ledger. After a Flush the three
// stages reconcile exactly: every frame dealt to a lane was decoded by
// it and sequenced into the routing path, so
// FramesFed == FramesDecoded == FramesSequenced per lane, and the lane
// totals sum to Stats().Frames. Downstream, ShardHealth's
// routed == processed + shed ledger is unchanged.
type IngestHealth struct {
	Ingester        int
	FramesFed       uint64 // frames dealt to this lane by HandleFrame
	FramesDecoded   uint64 // frames the lane finished decoding
	FramesSequenced uint64 // frames the sequencer replayed into routing
}

// IngestHealth returns the per-ingester ledger, or nil when the engine
// runs the single synchronous router.
func (s *ShardedEngine) IngestHealth() []IngestHealth {
	if s.ing == nil {
		return nil
	}
	out := make([]IngestHealth, len(s.ing.lanes))
	for i, l := range s.ing.lanes {
		out[i] = IngestHealth{
			Ingester:        i,
			FramesFed:       l.fed.Load(),
			FramesDecoded:   l.decoded.Load(),
			FramesSequenced: l.sequenced.Load(),
		}
	}
	return out
}

// TrailCounts returns the number of distinct sessions and trails across
// all shards (the sharded analogue of Trails().Sessions()/Trails()).
func (s *ShardedEngine) TrailCounts() (sessions, trails int) {
	if s.ing != nil {
		s.ing.drain()
	}
	s.mu.Lock()
	if !s.closed {
		acks := make([]chan struct{}, len(s.workers))
		for i := range s.workers {
			ack := make(chan struct{})
			acks[i] = ack
			s.pending[i] = append(s.pending[i], shardItem{kind: itemInspect, ack: ack})
			s.flushShardLocked(i)
		}
		s.mu.Unlock()
		for i, ack := range acks {
			awaitAck(s.workers[i], ack)
		}
	} else {
		s.mu.Unlock()
	}
	sessSet := make(map[string]struct{})
	trailSet := make(map[trailKey]struct{})
	for _, w := range s.workers {
		w.resMu.Lock()
		for _, k := range w.pub.trails {
			sessSet[k.session] = struct{}{}
			trailSet[k] = struct{}{}
		}
		w.resMu.Unlock()
	}
	return len(sessSet), len(trailSet)
}

// Alerts flushes and returns all alerts in the serial engine's order:
// first firing position in the frame stream. Alerts for one (rule,
// session) pair raised on multiple shards — possible only for sessions
// that span Call-IDs, like IM sender sessions — are merged with their
// counts summed. Self-monitoring alerts (ids-overload, shard-failure)
// are merged in at the frame position where they fired.
func (s *ShardedEngine) Alerts() []Alert {
	s.Flush()
	type tagged struct {
		tag mergeTag
		a   Alert
	}
	var all []tagged
	for _, w := range s.workers {
		w.resMu.Lock()
		for j, a := range w.pub.alerts {
			all = append(all, tagged{tag: w.pub.alertTags[j], a: a})
		}
		w.resMu.Unlock()
	}
	s.selfMu.Lock()
	for j, a := range s.selfAlert {
		all = append(all, tagged{tag: s.selfTags[j], a: a})
	}
	s.selfMu.Unlock()
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].tag.idx != all[j].tag.idx {
			return all[i].tag.idx < all[j].tag.idx
		}
		return all[i].tag.sub < all[j].tag.sub
	})
	out := make([]Alert, 0, len(all))
	index := make(map[string]int, len(all))
	for _, t := range all {
		k := t.a.Rule + "|" + t.a.Session
		if i, ok := index[k]; ok {
			out[i].Count += t.a.Count
			continue
		}
		index[k] = len(out)
		out = append(out, t.a)
	}
	return out
}

// AlertsFor returns merged alerts raised by one rule.
func (s *ShardedEngine) AlertsFor(rule string) []Alert {
	var out []Alert
	for _, a := range s.Alerts() {
		if a.Rule == rule {
			out = append(out, a)
		}
	}
	return out
}

// Events flushes and returns the merged event log in serial order (empty
// unless the engine was built WithEventLog).
func (s *ShardedEngine) Events() []Event {
	s.Flush()
	type tagged struct {
		tag mergeTag
		ev  Event
	}
	var all []tagged
	for _, w := range s.workers {
		w.resMu.Lock()
		for j, ev := range w.pub.events {
			all = append(all, tagged{tag: w.pub.eventTags[j], ev: ev})
		}
		w.resMu.Unlock()
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].tag.idx != all[j].tag.idx {
			return all[i].tag.idx < all[j].tag.idx
		}
		return all[i].tag.sub < all[j].tag.sub
	})
	out := make([]Event, len(all))
	for i, t := range all {
		out[i] = t.ev
	}
	return out
}

// resolveRouteLocked maps a route key through the dialog's pinned
// routing key. For datagram dialogs the pin is the Call-ID itself (or a
// keyer override, already applied by SIP classification), so resolution
// is the identity; for dialogs first sighted on a TCP stream the pin is
// the flow's routing key, and resolving here is what sends the dialog's
// media, RTCP and accounting traffic to the shard that holds the stream's
// dialog state. Mirrors shardFor in cross-geometry snapshot restore.
func (s *ShardedEngine) resolveRouteLocked(key string) string {
	if rk, ok := s.sticky[key]; ok {
		return rk
	}
	return key
}

// shardOf hashes a session key onto a shard (FNV-1a).
func shardOf(key string, n int) int {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * 16777619
	}
	return int(h % uint32(n))
}

// --- shard worker ---

func (w *shardWorker) run() {
	defer close(w.done)
	for batch := range w.ch {
		if w.state.Load() != stateHealthy {
			// Quarantined: drain the backlog, accounting every frame as
			// shed and acking markers so readers never wait on a dead
			// shard. Inspect markers still publish (the engine is
			// quiescent — "alerts flushed" outlives the failure).
			w.drainBatch(batch)
			putBatch(batch)
			w.completedB.Add(1)
			continue
		}
		pos, failure := w.runBatch(batch)
		if failure != nil {
			at := batch[pos].at
			if pos < len(batch) && batch[pos].kind == itemGroup && len(batch[pos].group) > 0 {
				at = batch[pos].group[0].at
			}
			w.owner.noteShardPanic(w, at, failure)
			w.publish()
			n, _ := shedItems(batch[pos:])
			if n > 0 {
				w.shedFrames.Add(uint64(n))
			}
			if w.eng.cfg.Limits.RestartFailedShards {
				w.restartEngine(at)
			} else {
				w.state.Store(statePanicked)
			}
		} else {
			w.publish()
		}
		putBatch(batch)
		w.completedB.Add(1)
		if w.trackBeat {
			w.beat.Store(time.Now().UnixNano())
		}
	}
	w.publish()
	w.publishTrails()
}

// runBatch processes one batch under recover. On panic it reports the
// index of the failing item; items before it completed normally.
func (w *shardWorker) runBatch(batch []shardItem) (pos int, failure any) {
	defer func() {
		if r := recover(); r != nil {
			failure = r
		}
	}()
	for pos = 0; pos < len(batch); pos++ {
		w.runItem(&batch[pos])
		if w.trackBeat {
			w.beat.Store(time.Now().UnixNano())
		}
	}
	return len(batch), nil
}

// drainBatch sheds a quarantined shard's backlog, answering inspect
// markers from the (quiescent) engine so trail counts stay available.
func (w *shardWorker) drainBatch(batch []shardItem) {
	for i := range batch {
		if batch[i].kind == itemInspect {
			w.publishTrails()
		}
	}
	n, at := shedItems(batch)
	w.shedBatches.Add(1)
	if n > 0 {
		w.shedFrames.Add(uint64(n))
		w.owner.raiseSelf(RuleIDSOverload, fmt.Sprintf("shard:%d", w.id),
			fmt.Sprintf("shed %d frames bound for shard %d (queue stalled or shard quarantined)", n, w.id), at)
	}
	if w.trackBeat {
		w.beat.Store(time.Now().UnixNano())
	}
}

func (w *shardWorker) runItem(it *shardItem) {
	e := w.eng
	switch it.kind {
	case itemFrame:
		w.injectFault()
		w.sub = 0
		w.processFrame(it.idx, it.at, it.frame, it.hints)
		w.processedF.Add(1)
	case itemGroup:
		w.injectFault()
		w.sub = 0
		for _, fr := range it.group {
			w.processFrame(it.idx, fr.at, fr.frame, it.hints)
		}
		w.processedF.Add(uint64(len(it.group)))
	case itemStream:
		w.injectFault()
		w.sub = 0
		for _, sm := range it.msgs {
			w.processStreamMessage(it.idx, sm)
		}
		w.processedF.Add(1)
	case itemBinding:
		e.gen.ApplyBinding(it.aor, it.ip)
	case itemEvict:
		e.gen.EvictSession(it.session)
	case itemExpire:
		e.stats.SessionsEvicted += e.gen.ExpireSessions(it.at, e.cfg.SessionTimeout)
	case itemFlush:
		w.publish()
		close(it.ack)
	case itemInspect:
		w.publish()
		w.publishTrails()
		close(it.ack)
	case itemSnapshot:
		w.publish()
		*it.snap = w.snapshotWorker()
		close(it.ack)
	case itemRestore:
		w.installRestore(it.restore)
		close(it.ack)
	case itemReload:
		// A warm-restart blob serialized under the old ruleset would
		// restore stale partial matches with old semantics; drop the
		// cached blob when the ruleset text actually changed.
		if FormatRules(e.rules.rules) != FormatRules(it.rules) {
			w.lastEngineSnap = nil
		}
		it.dropped.Add(int64(e.rules.reload(it.rules)))
		e.cfg.Rules = it.rules
		close(it.ack)
	case itemRestart:
		w.rollEngine()
		close(it.ack)
	}
}

// injectFault consults the configured fault injector (chaos tests) with
// this shard's frame-item ordinal.
func (w *shardWorker) injectFault() {
	if w.eng.faults == nil {
		return
	}
	n := w.faultSeq
	w.faultSeq++
	f := w.eng.faults.At(w.id, n)
	if f.Stall > 0 {
		time.Sleep(f.Stall)
	}
	if f.Panic {
		panic(fmt.Sprintf("chaoscore: injected panic (shard %d frame %d)", w.id, n))
	}
}

// processFrame is the shard-side pipeline: distill, generate (with the
// router's hints), and feed rules. Frame counting and expiry cadence are
// the router's job, so unlike Engine.HandleFrame neither happens here.
func (w *shardWorker) processFrame(idx uint64, at time.Duration, frame []byte, h RouteHints) {
	e := w.eng
	if !e.distiller.DistillView(at, frame, &e.view) {
		return
	}
	e.stats.Footprints++
	e.evScratch = e.evScratch[:0]
	e.gen.ProcessView(&e.view, h, &e.evScratch)
	for _, ev := range e.evScratch {
		e.stats.Events++
		w.curTag = mergeTag{idx: idx, sub: w.sub}
		if e.keepLog {
			e.logEvent(ev)
			w.eventTags = append(w.eventTags, w.curTag)
		}
		e.stats.Alerts += len(e.rules.Feed(ev))
		w.sub++
	}
}

// processStreamMessage runs one router-extracted SIP message through the
// shard pipeline. The shard holds no stream state: the message arrives
// already reassembled and framed, so this is processFrame minus the
// distillation prelude, with the same merge-tag accounting (w.sub runs
// continuously across the messages of one item, so coalesced messages
// keep the serial output order).
func (w *shardWorker) processStreamMessage(idx uint64, sm shippedMsg) {
	e := w.eng
	e.distiller.distillStreamMessage(sm.at, sm.src, sm.dst, sm.payload, sm.kind, &e.view)
	e.stats.Footprints++
	e.evScratch = e.evScratch[:0]
	e.gen.ProcessView(&e.view, sm.hints, &e.evScratch)
	for _, ev := range e.evScratch {
		e.stats.Events++
		w.curTag = mergeTag{idx: idx, sub: w.sub}
		if e.keepLog {
			e.logEvent(ev)
			w.eventTags = append(w.eventTags, w.curTag)
		}
		e.stats.Alerts += len(e.rules.Feed(ev))
		w.sub++
	}
}

// syncTags mirrors the engine's front-evictions (retention caps) into
// the worker's tag slices so tags stay index-aligned with the retained
// alerts and events.
func (w *shardWorker) syncTags() {
	e := w.eng
	if d := e.rules.evicted - w.trimmedA; d > 0 {
		w.alertTags = append(w.alertTags[:0], w.alertTags[d:]...)
		w.trimmedA = e.rules.evicted
	}
	if d := e.stats.EventsEvicted - w.trimmedE; d > 0 {
		w.eventTags = append(w.eventTags[:0], w.eventTags[d:]...)
		w.trimmedE = e.stats.EventsEvicted
	}
}

// publish snapshots the worker's pipeline into pub. Stats are rebuilt
// every time; alerts are rebuilt only when the rule engine's version
// moved (covering in-place Count bumps); events are maintained as a
// delta (evictions drop from the front, new events append at the back).
func (w *shardWorker) publish() {
	e := w.eng
	w.syncTags()
	w.resMu.Lock()
	defer w.resMu.Unlock()
	w.pub.stats = addStats(w.base.stats, e.Stats())
	w.pub.dstats = addDistillerStats(w.base.dstats, e.distiller.stats)
	if v := e.rules.version; v != w.pubVer {
		w.pubVer = v
		w.pub.alerts = append(append(w.pub.alerts[:0], w.base.alerts...), e.rules.alerts...)
		w.pub.alertTags = append(append(w.pub.alertTags[:0], w.base.alertTags...), w.alertTags...)
	}
	baseLen := len(w.base.events)
	if d := e.stats.EventsEvicted - w.pubEvict; d > 0 {
		w.pub.events = append(w.pub.events[:baseLen], w.pub.events[baseLen+d:]...)
		w.pub.eventTags = append(w.pub.eventTags[:baseLen], w.pub.eventTags[baseLen+d:]...)
		w.pubEvict = e.stats.EventsEvicted
	}
	if d := len(e.events) - (len(w.pub.events) - baseLen); d > 0 {
		w.pub.events = append(w.pub.events, e.events[len(e.events)-d:]...)
		w.pub.eventTags = append(w.pub.eventTags, w.eventTags[len(e.events)-d:]...)
	}
}

// publishTrails snapshots the trail keys (for TrailCounts).
func (w *shardWorker) publishTrails() {
	keys := make([]trailKey, 0, len(w.eng.trails.trails))
	for k := range w.eng.trails.trails {
		keys = append(keys, k)
	}
	w.resMu.Lock()
	w.pub.trails = keys
	w.resMu.Unlock()
}

// restartEngine folds the failed engine's published results into the
// worker's base and starts a fresh pipeline (Limits.RestartFailedShards).
// Prior detections survive. Detection state is rehydrated from the last
// checkpoint when one is cached (warm restart: trails, sessions,
// correlator state and partial-match progress as of the checkpoint — only
// frames since it are lost); without a checkpoint the restart is cold and
// a shard-state-loss self-alert records that the shard is running blind.
func (w *shardWorker) restartEngine(at time.Duration) {
	w.syncTags()
	e := w.eng
	w.base.stats = addStats(w.base.stats, e.Stats())
	w.base.dstats = addDistillerStats(w.base.dstats, e.distiller.stats)
	w.base.alerts = append(w.base.alerts, e.rules.alerts...)
	w.base.alertTags = append(w.base.alertTags, w.alertTags...)
	w.base.events = append(w.base.events, e.events...)
	w.base.eventTags = append(w.base.eventTags, w.eventTags...)
	w.alertTags, w.eventTags = nil, nil
	w.trimmedA, w.trimmedE = 0, 0
	w.eng = w.owner.newShardEngine()
	w.owner.wireWorker(w)
	w.owner.shardsRestarted.Add(1)
	warm := false
	if len(w.lastEngineSnap) > 0 {
		if snap, err := w.eng.decodeSnapBodyBytes(w.lastEngineSnap); err == nil {
			w.eng.installSnap(snap, false)
			warm = true
		}
	}
	if !warm {
		w.owner.raiseSelf(RuleShardStateLoss, fmt.Sprintf("shard:%d", w.id),
			fmt.Sprintf("shard %d restarted with empty detection state (no checkpoint available); in-flight rule progress for its sessions is lost", w.id), at)
	}
	w.resMu.Lock()
	w.pubVer = 0
	w.pubEvict = 0
	w.pub.stats = w.base.stats
	w.pub.alerts = append([]Alert(nil), w.base.alerts...)
	w.pub.alertTags = append([]mergeTag(nil), w.base.alertTags...)
	w.pub.events = append([]Event(nil), w.base.events...)
	w.pub.eventTags = append([]mergeTag(nil), w.base.eventTags...)
	w.pub.trails = nil
	w.resMu.Unlock()
}

// rollEngine restarts the worker's engine warm at a quiescent point
// (RollingRestart): the current engine body is serialized, a fresh
// engine is built against the live ruleset and rehydrated from it, and
// the pipelines are swapped with outputs intact — published results,
// merge tags and the fault-injection ordinal all carry over, so the
// shard's output stream is indistinguishable from an uninterrupted run.
// If the body fails to decode, the old engine keeps running: a rolling
// restart never trades a healthy shard for a cold one.
func (w *shardWorker) rollEngine() {
	var body snapWriter
	w.eng.writeSnapBody(&body)
	fresh := w.owner.newShardEngine()
	snap, err := fresh.decodeSnapBodyBytes(body.buf)
	if err != nil {
		return
	}
	w.eng = fresh
	w.owner.wireWorker(w)
	w.eng.installSnap(snap, true)
	w.lastEngineSnap = body.buf
	w.owner.shardsRestarted.Add(1)
}

// addStats sums two stat snapshots field by field.
func addStats(a, b EngineStats) EngineStats {
	a.Frames += b.Frames
	a.Footprints += b.Footprints
	a.Events += b.Events
	a.Alerts += b.Alerts
	a.SessionsEvicted += b.SessionsEvicted
	a.FramesAfterClose += b.FramesAfterClose
	a.FramesShed += b.FramesShed
	a.BatchesShed += b.BatchesShed
	a.SessionsCapEvicted += b.SessionsCapEvicted
	a.FragGroupsEvicted += b.FragGroupsEvicted
	a.IMHistoriesEvicted += b.IMHistoriesEvicted
	a.SeqTrackersEvicted += b.SeqTrackersEvicted
	a.BindingsEvicted += b.BindingsEvicted
	a.AlertsEvicted += b.AlertsEvicted
	a.EventsEvicted += b.EventsEvicted
	a.ShardsFailed += b.ShardsFailed
	a.ShardsRestarted += b.ShardsRestarted
	return a
}
