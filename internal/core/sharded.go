package core

import (
	"fmt"
	"net/netip"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"scidive/internal/accounting"
	"scidive/internal/capture"
	"scidive/internal/netsim"
	"scidive/internal/packet"
	"scidive/internal/rtp"
	"scidive/internal/sip"
)

// ShardedEngine runs the SCIDIVE pipeline across N worker shards, each
// owning a private Distiller, TrailStore, EventGenerator and RuleEngine.
// A single router stage peeks at every frame just deep enough to compute
// its session key — the same key the serial engine files trails under —
// and ships the frame to shard hash(key). Session affinity is the load-
// bearing invariant: a call's SIP dialog, its RTP media, its RTCP control
// and its accounting records all hash to one shard, so the stateful
// cross-protocol rules run unchanged inside each shard.
//
// State that spans sessions cannot live in a shard. The router therefore
// keeps its own session directory (a second sessionIndex fed by the same
// applySIP transitions the shards run) for media-flow attribution, owns
// the RTP sequence-continuity trackers and IM source histories outright
// (shipping per-frame verdicts to the shards as RouteHints, computed in
// global arrival order), and replicates registration bindings to every
// shard via ordered control messages.
//
// Alerts and events are tagged with (frame index, within-frame ordinal)
// on their shard and merged in that order, which reproduces the serial
// engine's output order exactly. The differential tests in
// sharded_diff_test.go hold the two engines to byte-identical alert and
// event streams.
//
// HandleFrame may be called from multiple goroutines. The router retains
// a shipped frame until its shard has processed it, so feeders must not
// reuse frame buffers (netsim taps and capture replay both allocate per
// frame). Call Close when done to stop the shard goroutines; Alerts,
// Events and Stats remain readable after Close.
type ShardedEngine struct {
	cfg     Config
	gen     GenConfig // normalized thresholds for router-side verdicts
	timeout time.Duration
	keepLog bool

	mu       sync.Mutex // router stage: directory, reassembly, pending batches
	closed   bool
	frameIdx uint64
	idx      *sessionIndex
	reasm    *packet.Reassembler
	frags    map[fragIdent]*fragGroup
	seqs     map[netip.AddrPort]*seqTrack
	ims      map[string]imRecord
	sticky   map[string]string // Call-ID -> routing key (pinned on first sighting)
	pending  [][]shardItem

	frames atomic.Uint64

	workers []*shardWorker

	cbMu    sync.Mutex
	onAlert func(Alert)
}

// fragIdent mirrors the reassembler's fragment-stream identity.
type fragIdent struct {
	src, dst netip.Addr
	proto    uint8
	id       uint16
}

// fragGroup buffers the original frames of one in-progress fragment
// stream so the whole datagram can ship to one shard once its session
// key is known. first mirrors the reassembler's eviction clock.
type fragGroup struct {
	frames []routedFrame
	first  time.Duration
}

// routedFrame is one raw frame with its capture time.
type routedFrame struct {
	at    time.Duration
	frame []byte
}

// mergeTag orders shard output globally: frame index, then the event's
// ordinal within that frame. Frames are routed whole, so tags from
// different shards never collide.
type mergeTag struct {
	idx uint64
	sub int
}

type itemKind uint8

const (
	itemFrame itemKind = iota
	itemGroup
	itemBinding
	itemExpire
	itemFlush
)

// shardItem is one unit of work on a shard's queue: a routed frame (or
// reassembled fragment group), a replicated binding, an expiry sweep, or
// a flush marker.
type shardItem struct {
	kind  itemKind
	idx   uint64
	at    time.Duration
	frame []byte
	group []routedFrame
	hints RouteHints
	aor   string
	ip    netip.Addr
	ack   chan struct{}
}

// shardWorker owns one shard: a full serial pipeline plus the merge tags
// aligned with its alert and event logs.
type shardWorker struct {
	ch   chan []shardItem
	done chan struct{}

	mu        sync.Mutex // guards eng and tags; held while processing a batch
	eng       *Engine
	alertTags []mergeTag
	eventTags []mergeTag
	curTag    mergeTag
	sub       int
}

const (
	// shardBatchSize frames are accumulated per shard before a channel
	// send, amortizing synchronization on the hot path.
	shardBatchSize = 64
	// shardQueueDepth bounds each shard's channel; a full queue blocks
	// the router (backpressure) rather than buffering without limit.
	shardQueueDepth = 8
)

// NewShardedEngine builds a sharded IDS instance. shards <= 0 uses
// runtime.GOMAXPROCS(0). The configuration is shared by every shard.
// DirectTrailMatching is a single-store ablation and is not supported
// sharded.
func NewShardedEngine(cfg Config, shards int, opts ...EngineOption) *ShardedEngine {
	if cfg.DirectTrailMatching {
		panic("core: ShardedEngine does not support DirectTrailMatching; use Engine for the ablation")
	}
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxTrailLen == 0 {
		cfg.MaxTrailLen = 4096
	}
	if cfg.SessionTimeout == 0 {
		cfg.SessionTimeout = 10 * time.Minute
	}
	if cfg.Rules == nil {
		cfg.Rules = DefaultRuleset()
	}
	s := &ShardedEngine{
		cfg:     cfg,
		gen:     cfg.Gen.withDefaults(),
		timeout: cfg.SessionTimeout,
		idx:     newSessionIndex(true),
		reasm:   packet.NewReassembler(0),
		frags:   make(map[fragIdent]*fragGroup),
		seqs:    make(map[netip.AddrPort]*seqTrack),
		ims:     make(map[string]imRecord),
		sticky:  make(map[string]string),
		pending: make([][]shardItem, shards),
		workers: make([]*shardWorker, shards),
	}
	for i := range s.workers {
		w := &shardWorker{
			ch:   make(chan []shardItem, shardQueueDepth),
			done: make(chan struct{}),
			eng:  NewEngine(cfg, opts...),
		}
		w.eng.rules.OnAlert(func(a Alert) {
			w.alertTags = append(w.alertTags, w.curTag)
			s.cbMu.Lock()
			fn := s.onAlert
			s.cbMu.Unlock()
			if fn != nil {
				fn(a)
			}
		})
		s.keepLog = w.eng.keepLog
		s.pending[i] = make([]shardItem, 0, shardBatchSize)
		s.workers[i] = w
		go w.run()
	}
	return s
}

// Shards returns the number of worker shards.
func (s *ShardedEngine) Shards() int { return len(s.workers) }

// OnAlert registers a callback for new alerts. It fires from shard
// goroutines in shard-local order; use Alerts for the merged stream.
func (s *ShardedEngine) OnAlert(fn func(Alert)) {
	s.cbMu.Lock()
	s.onAlert = fn
	s.cbMu.Unlock()
}

// HandleFrame routes one observed frame. It is netsim.Tap compatible and
// safe for concurrent use.
func (s *ShardedEngine) HandleFrame(at time.Duration, frame []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.frames.Add(1)
	s.frameIdx++
	if s.frameIdx%gcEvery == 0 {
		s.expireLocked(at)
	}
	s.routeLocked(s.frameIdx, at, frame)
}

// AttachTap subscribes the engine to all hub traffic of a network.
func (s *ShardedEngine) AttachTap(n *netsim.Network) {
	n.AddTap(s.HandleFrame)
}

// ReplayCapture feeds a recorded SCAP capture through the engine. Call
// Flush (or Alerts/Events, which flush) before reading results.
func (s *ShardedEngine) ReplayCapture(r *capture.Reader) error {
	if err := capture.Replay(r, s.HandleFrame); err != nil {
		return fmt.Errorf("core: replay: %w", err)
	}
	return nil
}

// expireLocked mirrors the serial engine's periodic session sweep: the
// router expires its own directory and broadcasts the sweep to every
// shard at the same position in the frame stream, so shard-local tables
// evict exactly when the serial table would.
func (s *ShardedEngine) expireLocked(at time.Duration) {
	evicted := s.idx.expire(at, s.timeout, func(id string) { delete(s.sticky, id) })
	if evicted > 0 && len(s.idx.sessions) == 0 {
		s.seqs = make(map[netip.AddrPort]*seqTrack)
	}
	for i := range s.workers {
		s.appendItemLocked(i, shardItem{kind: itemExpire, at: at})
	}
}

// routeLocked peeks at a frame, updates the routing directory, and ships
// the frame (with hints) to its shard. Every drop point below matches a
// path where the serial distiller produces no footprint, so dropped
// frames are exactly the frames no shard needs.
func (s *ShardedEngine) routeLocked(idx uint64, at time.Duration, frame []byte) {
	ef, err := packet.UnmarshalEthernet(frame)
	if err != nil || ef.Type != packet.EtherTypeIPv4 {
		return
	}
	iph, ipPayload, err := packet.UnmarshalIPv4(ef.Payload)
	if err != nil {
		return
	}
	// The reassembler expires stale fragment streams at every Insert;
	// prune the buffered frame groups on the same clock so the two can
	// never disagree about which stream a fragment belongs to.
	s.pruneFragsLocked(at)
	fragmented := iph.FragOffset != 0 || iph.MoreFragments()
	full, payload, done, err := s.reasm.Insert(iph, ipPayload, at)
	key := fragIdent{src: iph.Src, dst: iph.Dst, proto: iph.Protocol, id: iph.ID}
	if err != nil {
		// The reassembler creates its buffer before the oversize check but
		// after the alignment check; mirror that so group lifetimes track
		// buffer lifetimes exactly. The frame itself contributed nothing.
		alignErr := iph.FragOffset != 0 && len(ipPayload)%8 != 0 && iph.MoreFragments()
		if fragmented && !alignErr {
			if s.frags[key] == nil {
				s.frags[key] = &fragGroup{first: at}
			}
		}
		return
	}
	if !done {
		grp := s.frags[key]
		if grp == nil {
			grp = &fragGroup{first: at}
			s.frags[key] = grp
		}
		grp.frames = append(grp.frames, routedFrame{at: at, frame: frame})
		return
	}
	var group []routedFrame
	if fragmented {
		if grp := s.frags[key]; grp != nil {
			group = grp.frames
			delete(s.frags, key)
		}
	}
	if full.Protocol != packet.ProtoUDP {
		return
	}
	uh, udpPayload, err := packet.PeekUDP(full.Src, full.Dst, payload)
	if err != nil {
		return
	}
	src := netip.AddrPortFrom(full.Src, uh.SrcPort)
	dst := netip.AddrPortFrom(full.Dst, uh.DstPort)
	routeKey, hints, ship := s.classifyLocked(at, src, dst, udpPayload)
	if !ship {
		return
	}
	shard := shardOf(routeKey, len(s.workers))
	if group == nil {
		s.appendItemLocked(shard, shardItem{kind: itemFrame, idx: idx, at: at, frame: frame, hints: hints})
		return
	}
	group = append(group, routedFrame{at: at, frame: frame})
	s.appendItemLocked(shard, shardItem{kind: itemGroup, idx: idx, group: group, hints: hints})
}

// pruneFragsLocked drops buffered fragment groups on the reassembler's
// eviction schedule.
func (s *ShardedEngine) pruneFragsLocked(now time.Duration) {
	for k, grp := range s.frags {
		if now-grp.first > packet.DefaultReassemblyTimeout {
			delete(s.frags, k)
		}
	}
}

// classifyLocked mirrors the distiller's port classification and computes
// the routing key plus hints. ship=false means the serial engine would
// produce no footprint for this datagram's port class.
func (s *ShardedEngine) classifyLocked(at time.Duration, src, dst netip.AddrPort, udpPayload []byte) (string, RouteHints, bool) {
	srcPort, dstPort := src.Port(), dst.Port()
	switch {
	case dstPort == sip.DefaultPort || srcPort == sip.DefaultPort:
		key, hints := s.classifySIPLocked(at, src, dst, udpPayload)
		return key, hints, true
	case dstPort == accounting.DefaultPort:
		txn, err := accounting.ParseTxn(udpPayload)
		if err != nil {
			return "raw:" + dst.String(), RouteHints{}, true
		}
		if txn.Kind == accounting.TxnStart {
			// The generator creates session state for billing STARTs.
			s.idx.core(txn.CallID)
		}
		return txn.CallID, RouteHints{}, true
	case dstPort >= defaultMediaPortFloor:
		if dstPort%2 == 0 {
			key, hints := s.classifyRTPLocked(at, src, dst, udpPayload)
			return key, hints, true
		}
		key, hints := s.classifyRTCPLocked(at, src, dst, udpPayload)
		return key, hints, true
	default:
		return "", RouteHints{}, false
	}
}

func (s *ShardedEngine) classifySIPLocked(at time.Duration, src, dst netip.AddrPort, udpPayload []byte) (string, RouteHints) {
	m, err := sip.ParseMessage(udpPayload)
	if err != nil {
		return "raw:" + dst.String(), RouteHints{}
	}
	st, out := s.idx.applySIP(m, at, src)
	var h RouteHints
	isMessage := m.IsRequest() && out.fromToOK && m.Method == sip.MethodMessage
	if isMessage {
		// Judge the MESSAGE against the global source history here, in
		// arrival order, exactly as the serial generator would.
		aor := out.from.URI.AOR()
		histKey := aor + "|" + dst.Addr().String()
		rec, seen := s.ims[histKey]
		switch {
		case !seen || at-rec.at > s.gen.IMPeriod:
			s.ims[histKey] = imRecord{ip: src.Addr(), at: at}
		case rec.ip != src.Addr():
			h.IM = IMVerdict{Mismatch: true, PrevIP: rec.ip}
		default:
			s.ims[histKey] = imRecord{ip: src.Addr(), at: at}
		}
		h.HasIM = true
	}
	if out.regOK && out.bindingIP.IsValid() {
		// Replicate the binding to every shard, ordered with the frame
		// stream, so each shard's directory view matches the serial one.
		for i := range s.workers {
			s.appendItemLocked(i, shardItem{kind: itemBinding, aor: out.regAOR, ip: out.bindingIP})
		}
	}
	if out.established {
		delete(s.seqs, st.callerMedia)
		delete(s.seqs, st.calleeMedia)
	}
	s.idx.touch(st.callID, at)
	// Pin the routing key on the dialog's first sighting. MESSAGE dialogs
	// route by the sender's IM session ("im:" + AOR) so that fake-IM rule
	// state for one sender colocates across Call-IDs; everything else
	// routes by Call-ID.
	routeKey, ok := s.sticky[st.callID]
	if !ok {
		routeKey = st.callID
		if isMessage {
			routeKey = "im:" + out.from.URI.AOR()
		}
		s.sticky[st.callID] = routeKey
	}
	return routeKey, h
}

func (s *ShardedEngine) classifyRTPLocked(at time.Duration, src, dst netip.AddrPort, udpPayload []byte) (string, RouteHints) {
	pkt, err := rtp.Unmarshal(udpPayload)
	if err != nil {
		// Garbage on a media port: the serial generator attributes the
		// event to the session negotiating this endpoint.
		sess := s.idx.mediaDstSession(dst)
		if sess == "" {
			sess = "raw:" + dst.String()
		}
		return sess, RouteHints{Session: sess}
	}
	session := s.idx.flowSession(src, dst)
	if session == "" {
		session = "rtp:" + dst.String()
	}
	var v SeqVerdict
	tr, ok := s.seqs[dst]
	if !ok {
		tr = &seqTrack{}
		s.seqs[dst] = tr
		v.NewFlow = true
	}
	if tr.primed {
		v.Prev = tr.last
		if d := rtp.SeqDiff(tr.last, pkt.Header.Seq); d > s.gen.SeqJumpThreshold || d < -s.gen.SeqJumpThreshold {
			v.Jump = true
		}
	}
	tr.primed = true
	tr.last = pkt.Header.Seq
	s.idx.touch(session, at)
	return session, RouteHints{Session: session, HasSeq: true, Seq: v}
}

func (s *ShardedEngine) classifyRTCPLocked(at time.Duration, src, dst netip.AddrPort, udpPayload []byte) (string, RouteHints) {
	if _, err := rtp.UnmarshalCompound(udpPayload); err != nil {
		// Undecodable on an RTCP port: filed raw, no session attribution.
		return "raw:" + dst.String(), RouteHints{}
	}
	session := s.idx.rtcpFlowSession(src, dst)
	if session == "" {
		session = "rtcp:" + dst.String()
	}
	s.idx.touch(session, at)
	return session, RouteHints{Session: session}
}

// appendItemLocked queues one item for a shard, flushing the batch when
// full.
func (s *ShardedEngine) appendItemLocked(shard int, it shardItem) {
	s.pending[shard] = append(s.pending[shard], it)
	if len(s.pending[shard]) >= shardBatchSize {
		s.flushShardLocked(shard)
	}
}

func (s *ShardedEngine) flushShardLocked(shard int) {
	if len(s.pending[shard]) == 0 {
		return
	}
	batch := s.pending[shard]
	s.pending[shard] = make([]shardItem, 0, shardBatchSize)
	s.workers[shard].ch <- batch
}

// Flush delivers all queued work and blocks until every shard has
// processed everything enqueued before the call.
func (s *ShardedEngine) Flush() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	acks := make([]chan struct{}, len(s.workers))
	for i := range s.workers {
		ack := make(chan struct{})
		acks[i] = ack
		s.pending[i] = append(s.pending[i], shardItem{kind: itemFlush, ack: ack})
		s.flushShardLocked(i)
	}
	s.mu.Unlock()
	for _, ack := range acks {
		<-ack
	}
}

// Close flushes remaining work and stops the shard goroutines. Results
// remain readable; subsequent HandleFrame calls are dropped.
func (s *ShardedEngine) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	for i := range s.workers {
		s.flushShardLocked(i)
		close(s.workers[i].ch)
	}
	s.mu.Unlock()
	for _, w := range s.workers {
		<-w.done
	}
}

// Stats returns a snapshot of the merged engine counters. It is safe to
// call concurrently with HandleFrame; the snapshot reflects work shards
// have completed, plus every frame the router has accepted.
func (s *ShardedEngine) Stats() EngineStats {
	st := EngineStats{Frames: int(s.frames.Load())}
	for _, w := range s.workers {
		w.mu.Lock()
		es := w.eng.stats
		w.mu.Unlock()
		st.Footprints += es.Footprints
		st.Events += es.Events
		st.Alerts += es.Alerts
		st.SessionsEvicted += es.SessionsEvicted
	}
	return st
}

// TrailCounts returns the number of distinct sessions and trails across
// all shards (the sharded analogue of Trails().Sessions()/Trails()).
func (s *ShardedEngine) TrailCounts() (sessions, trails int) {
	s.Flush()
	sessSet := make(map[string]struct{})
	trailSet := make(map[trailKey]struct{})
	for _, w := range s.workers {
		w.mu.Lock()
		for k := range w.eng.trails.trails {
			sessSet[k.session] = struct{}{}
			trailSet[k] = struct{}{}
		}
		w.mu.Unlock()
	}
	return len(sessSet), len(trailSet)
}

// Alerts flushes and returns all alerts in the serial engine's order:
// first firing position in the frame stream. Alerts for one (rule,
// session) pair raised on multiple shards — possible only for sessions
// that span Call-IDs, like IM sender sessions — are merged with their
// counts summed.
func (s *ShardedEngine) Alerts() []Alert {
	s.Flush()
	type tagged struct {
		tag mergeTag
		a   Alert
	}
	var all []tagged
	for _, w := range s.workers {
		w.mu.Lock()
		alerts := w.eng.rules.Alerts()
		for j, a := range alerts {
			all = append(all, tagged{tag: w.alertTags[j], a: a})
		}
		w.mu.Unlock()
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].tag.idx != all[j].tag.idx {
			return all[i].tag.idx < all[j].tag.idx
		}
		return all[i].tag.sub < all[j].tag.sub
	})
	out := make([]Alert, 0, len(all))
	index := make(map[string]int, len(all))
	for _, t := range all {
		k := t.a.Rule + "|" + t.a.Session
		if i, ok := index[k]; ok {
			out[i].Count += t.a.Count
			continue
		}
		index[k] = len(out)
		out = append(out, t.a)
	}
	return out
}

// AlertsFor returns merged alerts raised by one rule.
func (s *ShardedEngine) AlertsFor(rule string) []Alert {
	var out []Alert
	for _, a := range s.Alerts() {
		if a.Rule == rule {
			out = append(out, a)
		}
	}
	return out
}

// Events flushes and returns the merged event log in serial order (empty
// unless the engine was built WithEventLog).
func (s *ShardedEngine) Events() []Event {
	s.Flush()
	type tagged struct {
		tag mergeTag
		ev  Event
	}
	var all []tagged
	for _, w := range s.workers {
		w.mu.Lock()
		for j, ev := range w.eng.events {
			all = append(all, tagged{tag: w.eventTags[j], ev: ev})
		}
		w.mu.Unlock()
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].tag.idx != all[j].tag.idx {
			return all[i].tag.idx < all[j].tag.idx
		}
		return all[i].tag.sub < all[j].tag.sub
	})
	out := make([]Event, len(all))
	for i, t := range all {
		out[i] = t.ev
	}
	return out
}

// shardOf hashes a session key onto a shard (FNV-1a).
func shardOf(key string, n int) int {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * 16777619
	}
	return int(h % uint32(n))
}

// --- shard worker ---

func (w *shardWorker) run() {
	defer close(w.done)
	for batch := range w.ch {
		w.mu.Lock()
		for i := range batch {
			w.runItem(&batch[i])
		}
		w.mu.Unlock()
	}
}

func (w *shardWorker) runItem(it *shardItem) {
	e := w.eng
	switch it.kind {
	case itemFrame:
		w.sub = 0
		w.processFrame(it.idx, it.at, it.frame, it.hints)
	case itemGroup:
		w.sub = 0
		for _, fr := range it.group {
			w.processFrame(it.idx, fr.at, fr.frame, it.hints)
		}
	case itemBinding:
		e.gen.ApplyBinding(it.aor, it.ip)
	case itemExpire:
		e.stats.SessionsEvicted += e.gen.ExpireSessions(it.at, e.cfg.SessionTimeout)
	case itemFlush:
		close(it.ack)
	}
}

// processFrame is the shard-side pipeline: distill, generate (with the
// router's hints), and feed rules. Frame counting and expiry cadence are
// the router's job, so unlike Engine.HandleFrame neither happens here.
func (w *shardWorker) processFrame(idx uint64, at time.Duration, frame []byte, h RouteHints) {
	e := w.eng
	fp := e.distiller.Distill(at, frame)
	if fp == nil {
		return
	}
	e.stats.Footprints++
	for _, ev := range e.gen.ProcessHinted(fp, h) {
		e.stats.Events++
		w.curTag = mergeTag{idx: idx, sub: w.sub}
		if e.keepLog {
			e.events = append(e.events, ev)
			w.eventTags = append(w.eventTags, w.curTag)
		}
		e.stats.Alerts += len(e.rules.Feed(ev))
		w.sub++
	}
}
