package core

import (
	"fmt"
	"net/netip"
	"sort"
	"sync/atomic"
	"time"

	"scidive/internal/sip"
)

// imCorrelator applies the fake-IM source-stability rule (Figure 6) to
// SIP MESSAGE requests. The source history is keyed by (claimed sender,
// delivery destination): on a hub tap each proxy relay leg is a distinct
// delivery path with its own stable source, matching what the paper's
// per-endpoint IDS would see.
//
// The history spans SIP dialogs, so in sharded mode it is router-owned:
// the router's instance judges every MESSAGE in global arrival order
// (sipHint) and pins each MESSAGE dialog to the sender's shard
// (sipRouteKey); the shard instances consume the verdict from RouteHints
// and leave their own maps untouched.
type imCorrelator struct {
	cfg    GenConfig
	limits Limits
	ims    map[string]imRecord // "AOR|dstIP" -> last IM source on that delivery path
	// evicted is atomic: the sharded router reads it for lock-free stats
	// while the routing lock is held elsewhere.
	evicted atomic.Uint64
}

func newIMCorrelator() *imCorrelator {
	return &imCorrelator{ims: make(map[string]imRecord)}
}

func (c *imCorrelator) Name() string            { return "im" }
func (c *imCorrelator) Protocols() []Protocol   { return []Protocol{ProtoSIP} }
func (c *imCorrelator) configure(cfg GenConfig) { c.cfg = cfg }

func (c *imCorrelator) setLimits(l Limits)         { c.limits = l }
func (c *imCorrelator) shardLocalLimits(l *Limits) { l.MaxIMHistories = 0 }
func (c *imCorrelator) contributeStats(st *EngineStats) {
	st.IMHistoriesEvicted += int(c.evicted.Load())
}

// isIM reports whether a sighting is a judgeable MESSAGE request.
func isIM(m *sip.Message, out sipOutcome) bool {
	return m.IsRequest() && out.fromToOK && m.Method == sip.MethodMessage
}

// sipRouteKey pins MESSAGE dialogs to the sender's IM session ("im:" +
// AOR) so that fake-IM rule state for one sender colocates across
// Call-IDs.
func (c *imCorrelator) sipRouteKey(m *sip.Message, out sipOutcome, src netip.AddrPort) (string, bool) {
	if !isIM(m, out) {
		return "", false
	}
	return "im:" + out.from.URI.AOR(), true
}

// sipHint judges a MESSAGE against the router-owned source history, in
// arrival order, exactly as the serial correlator would.
func (c *imCorrelator) sipHint(at time.Duration, src, dst netip.AddrPort, m *sip.Message, out sipOutcome, h *RouteHints) {
	if !isIM(m, out) {
		return
	}
	if mismatch, prev := c.judge(out.from.URI.AOR(), src.Addr(), dst.Addr(), at); mismatch {
		h.IM = IMVerdict{Mismatch: true, PrevIP: prev}
	}
	h.HasIM = true
}

// judge folds one MESSAGE sighting into the source history, reporting a
// source mismatch (and the previously seen source) when the claimed
// sender's source changed within the mobility allowance.
func (c *imCorrelator) judge(aor string, src, dst netip.Addr, at time.Duration) (mismatch bool, prev netip.Addr) {
	histKey := aor + "|" + dst.String()
	rec, seen := c.ims[histKey]
	switch {
	case !seen || at-rec.at > c.cfg.IMPeriod:
		// First sighting, or beyond the mobility allowance: accept and
		// remember the source.
		if !seen && c.limits.MaxIMHistories > 0 && len(c.ims) >= c.limits.MaxIMHistories {
			if evictStalestIM(c.ims) != "" {
				c.evicted.Add(1)
			}
		}
		c.ims[histKey] = imRecord{ip: src, at: at}
	case rec.ip != src:
		return true, rec.ip
	default:
		c.ims[histKey] = imRecord{ip: src, at: at}
	}
	return false, netip.Addr{}
}

func (c *imCorrelator) Process(v *FrameView, h RouteHints, ctx *SessionContext, evs *[]Event) {
	if v.Proto != ProtoSIP {
		return
	}
	_, out := ctx.SIP()
	if !isIM(v.Msg, out) {
		return
	}
	aor := out.from.URI.AOR()
	session := "im:" + aor
	*evs = append(*evs, Event{At: v.At, Type: EvSIPInstantMessage, Session: session,
		Detail: fmt.Sprintf("from %s via %v", aor, v.Src.Addr()), Footprint: ctx.Observation()})
	mismatch, prev := false, netip.Addr{}
	if h.HasIM {
		// The router already judged this MESSAGE against the global source
		// history; the local map stays untouched.
		mismatch, prev = h.IM.Mismatch, h.IM.PrevIP
	} else {
		mismatch, prev = c.judge(aor, v.Src.Addr(), v.Dst.Addr(), v.At)
	}
	if mismatch {
		*evs = append(*evs, Event{
			At: v.At, Type: EvIMSourceMismatch, Session: session,
			Detail: fmt.Sprintf("IM claiming %s came from %v; recent messages to %v came from %v",
				aor, v.Src.Addr(), v.Dst.Addr(), prev),
			Footprint: ctx.Observation(),
		})
	}
}

// imRecord tracks the last source of instant messages per claimed sender.
type imRecord struct {
	ip netip.Addr
	at time.Duration
}

// snapshotState serializes the source histories in sorted key order.
func (c *imCorrelator) snapshotState(w *snapWriter) {
	keys := make([]string, 0, len(c.ims))
	for k := range c.ims {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w.u32(uint32(len(keys)))
	for _, k := range keys {
		rec := c.ims[k]
		w.str(k)
		w.addr(rec.ip)
		w.dur(rec.at)
	}
	w.u64(c.evicted.Load())
}

// decodeState decodes histories without touching the live map; the
// returned closure installs them (in place — the map is shared).
func (c *imCorrelator) decodeState(r *snapReader) (func(), error) {
	n := r.count()
	recs := make(map[string]imRecord, min(n, 4096))
	for i := 0; i < n && r.err == nil; i++ {
		k := r.strv()
		recs[k] = imRecord{ip: r.addrv(), at: r.dur()}
	}
	evicted := r.u64()
	if r.err != nil {
		return nil, r.err
	}
	return func() {
		clear(c.ims)
		for k, rec := range recs {
			c.ims[k] = rec
		}
		c.evicted.Store(evicted)
	}, nil
}

// evictStalestIM removes the least-recently-seen IM history entry (ties
// broken by the smaller key) and returns its key, or "" when empty. The
// serial correlator and the sharded router's instance both call this so
// capped IM state evicts identical victims.
func evictStalestIM(ims map[string]imRecord) string {
	var vk string
	found := false
	for k, r := range ims {
		if !found || r.at < ims[vk].at || (r.at == ims[vk].at && k < vk) {
			vk, found = k, true
		}
	}
	if found {
		delete(ims, vk)
	}
	return vk
}
