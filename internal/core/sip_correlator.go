package core

import (
	"fmt"

	"scidive/internal/sip"
)

// sipCorrelator correlates SIP signaling: dialog lifecycle events
// (REGISTER/INVITE/BYE/establishment), malformed-message detection,
// authentication abuse (401 floods, password guessing), and — on
// establishment — the billing-fraud check that the negotiated caller
// media matches the caller's registered location. Instant-message
// correlation lives in the separate im correlator; the dialog state
// transitions themselves happen in applySIP (via the dispatcher) so they
// occur exactly once per sighting.
type sipCorrelator struct {
	cfg GenConfig
}

func newSIPCorrelator() *sipCorrelator { return &sipCorrelator{} }

func (c *sipCorrelator) Name() string            { return "sip" }
func (c *sipCorrelator) Protocols() []Protocol   { return []Protocol{ProtoSIP} }
func (c *sipCorrelator) configure(cfg GenConfig) { c.cfg = cfg }

// claimPort claims the SIP well-known port in either direction; signaling
// is recognized by source too, so proxy replies classify correctly.
func (c *sipCorrelator) claimPort(srcPort, dstPort uint16) (Protocol, bool) {
	if srcPort == sip.DefaultPort || dstPort == sip.DefaultPort {
		return ProtoSIP, true
	}
	return ProtoOther, false
}

func (c *sipCorrelator) Process(f Footprint, h RouteHints, ctx *SessionContext) []Event {
	fp, ok := f.(*SIPFootprint)
	if !ok {
		return nil
	}
	var events []Event
	m := fp.Msg
	st, out := ctx.SIP()

	if len(fp.Malformed) > 0 && !st.badFormat {
		st.badFormat = true
		events = append(events, Event{
			At: fp.At, Type: EvSIPBadFormat, Session: st.callID,
			Detail: fmt.Sprintf("%v", fp.Malformed), Footprint: fp,
		})
	}
	if m.IsRequest() {
		events = append(events, c.requestEvents(fp, st, out)...)
	} else {
		events = append(events, c.responseEvents(fp, st, out, ctx)...)
	}
	return events
}

func (c *sipCorrelator) requestEvents(fp *SIPFootprint, st *sessionState, out sipOutcome) []Event {
	var events []Event
	if !out.fromToOK {
		return events
	}
	m := fp.Msg
	switch m.Method {
	case sip.MethodRegister:
		events = append(events, Event{At: fp.At, Type: EvSIPRegister, Session: st.callID,
			Detail: out.to.URI.AOR(), Footprint: fp})
		if authz := m.Headers.Get(sip.HdrAuthorization); authz != "" {
			if creds, err := sip.ParseCredentials(authz); err == nil {
				st.guessResponses[creds.Response] = struct{}{}
				if len(st.guessResponses) >= c.cfg.GuessThreshold && !st.guessFired {
					st.guessFired = true
					events = append(events, Event{
						At: fp.At, Type: EvPasswordGuessing, Session: st.callID,
						Detail: fmt.Sprintf("%d distinct challenge responses for %s from %v",
							len(st.guessResponses), out.to.URI.AOR(), fp.Src),
						Footprint: fp,
					})
				}
			}
		}
	case sip.MethodInvite:
		if out.firstInvite {
			events = append(events, Event{At: fp.At, Type: EvSIPInvite, Session: st.callID,
				Detail: st.callerAOR + " -> " + st.calleeAOR, Footprint: fp})
		}
		if out.reinvite {
			events = append(events, Event{At: fp.At, Type: EvSIPReinvite, Session: st.callID,
				Detail: fmt.Sprintf("%s moving media from %v", out.reinviteMover, out.reinviteOld), Footprint: fp})
		}
	case sip.MethodBye:
		if out.firstBye {
			events = append(events, Event{At: fp.At, Type: EvSIPBye, Session: st.callID,
				Detail: out.from.URI.AOR() + " hangs up", Footprint: fp})
		}
	}
	return events
}

func (c *sipCorrelator) responseEvents(fp *SIPFootprint, st *sessionState, out sipOutcome, ctx *SessionContext) []Event {
	var events []Event
	if !out.cseqOK {
		return events
	}
	m := fp.Msg
	switch {
	case m.StatusCode == sip.StatusUnauthorized:
		st.challenges++
		events = append(events, Event{At: fp.At, Type: EvSIPAuthChallenge, Session: st.callID,
			Detail: fmt.Sprintf("challenge #%d", st.challenges), Footprint: fp})
		if st.challenges >= c.cfg.AuthFloodThreshold && !st.floodFired {
			st.floodFired = true
			events = append(events, Event{
				At: fp.At, Type: EvAuthFlood, Session: st.callID,
				Detail:    fmt.Sprintf("%d unauthorized replies in one session", st.challenges),
				Footprint: fp,
			})
		}
	case out.regOK:
		if out.bindingIP.IsValid() {
			ctx.SetBinding(out.regAOR, out.bindingIP)
		}
		events = append(events, Event{At: fp.At, Type: EvSIPRegisterOK, Session: st.callID,
			Detail: out.regAOR, Footprint: fp})
	case out.established:
		events = append(events, Event{At: fp.At, Type: EvSIPCallEstablished, Session: st.callID,
			Detail:    fmt.Sprintf("%s <-> %s media %v/%v", st.callerAOR, st.calleeAOR, st.callerMedia, st.calleeMedia),
			Footprint: fp})
		events = append(events, c.checkUnmatchedMedia(fp, st, ctx)...)
	}
	return events
}

// checkUnmatchedMedia verifies the negotiated caller media address against
// the caller's registered location — the third condition of the billing
// fraud rule (Section 3.2).
func (c *sipCorrelator) checkUnmatchedMedia(fp *SIPFootprint, st *sessionState, ctx *SessionContext) []Event {
	binding, ok := ctx.Binding(st.callerAOR)
	if !ok || !st.callerMedia.IsValid() {
		return nil
	}
	if st.callerMedia.Addr() == binding {
		return nil
	}
	return []Event{{
		At: fp.At, Type: EvRTPUnmatchedMedia, Session: st.callID,
		Detail: fmt.Sprintf("caller %s registered at %v but negotiated media at %v",
			st.callerAOR, binding, st.callerMedia),
		Footprint: fp,
	}}
}
