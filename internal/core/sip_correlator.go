package core

import (
	"fmt"

	"scidive/internal/sip"
)

// sipCorrelator correlates SIP signaling: dialog lifecycle events
// (REGISTER/INVITE/BYE/establishment), malformed-message detection,
// authentication abuse (401 floods, password guessing), and — on
// establishment — the billing-fraud check that the negotiated caller
// media matches the caller's registered location. Instant-message
// correlation lives in the separate im correlator; the dialog state
// transitions themselves happen in applySIP (via the dispatcher) so they
// occur exactly once per sighting.
type sipCorrelator struct {
	cfg GenConfig
}

func newSIPCorrelator() *sipCorrelator { return &sipCorrelator{} }

func (c *sipCorrelator) Name() string            { return "sip" }
func (c *sipCorrelator) Protocols() []Protocol   { return []Protocol{ProtoSIP} }
func (c *sipCorrelator) configure(cfg GenConfig) { c.cfg = cfg }

// claimPort claims the SIP well-known port in either direction; signaling
// is recognized by source too, so proxy replies classify correctly.
func (c *sipCorrelator) claimPort(srcPort, dstPort uint16) (Protocol, bool) {
	if srcPort == sip.DefaultPort || dstPort == sip.DefaultPort {
		return ProtoSIP, true
	}
	return ProtoOther, false
}

// contentConfirmer: a plausible SIP start line nominates the payload for
// reclassification off ports that claimed another protocol. The sniff is
// only the nomination — the reclassification ladder still requires a
// full parse before the frame counts as SIP (classify.go).
func (c *sipCorrelator) contentProto() Protocol             { return ProtoSIP }
func (c *sipCorrelator) confirmContent(payload []byte) bool { return sniffSIPStart(payload) }

func (c *sipCorrelator) Process(v *FrameView, h RouteHints, ctx *SessionContext, evs *[]Event) {
	if v.Proto != ProtoSIP {
		return
	}
	m := v.Msg
	st, out := ctx.SIP()

	if len(v.Malformed) > 0 && !st.badFormat {
		st.badFormat = true
		*evs = append(*evs, Event{
			At: v.At, Type: EvSIPBadFormat, Session: st.callID,
			Detail: fmt.Sprintf("%v", v.Malformed), Footprint: ctx.Observation(),
		})
	}
	if m.IsRequest() {
		c.requestEvents(v, st, out, ctx, evs)
	} else {
		c.responseEvents(v, st, out, ctx, evs)
	}
}

func (c *sipCorrelator) requestEvents(v *FrameView, st *sessionState, out sipOutcome, ctx *SessionContext, evs *[]Event) {
	if !out.fromToOK {
		return
	}
	m := v.Msg
	switch m.Method {
	case sip.MethodRegister:
		*evs = append(*evs, Event{At: v.At, Type: EvSIPRegister, Session: st.callID,
			Detail: out.to.URI.AOR(), Footprint: ctx.Observation()})
		if authz := m.Headers.Get(sip.HdrAuthorization); authz != "" {
			if creds, err := sip.ParseCredentials(authz); err == nil {
				st.guessResponses[creds.Response] = struct{}{}
				if len(st.guessResponses) >= c.cfg.GuessThreshold && !st.guessFired {
					st.guessFired = true
					*evs = append(*evs, Event{
						At: v.At, Type: EvPasswordGuessing, Session: st.callID,
						Detail: fmt.Sprintf("%d distinct challenge responses for %s from %v",
							len(st.guessResponses), out.to.URI.AOR(), v.Src),
						Footprint: ctx.Observation(),
					})
				}
			}
		}
	case sip.MethodInvite:
		if out.firstInvite {
			*evs = append(*evs, Event{At: v.At, Type: EvSIPInvite, Session: st.callID,
				Detail: st.callerAOR + " -> " + st.calleeAOR, Footprint: ctx.Observation()})
		}
		if out.reinvite {
			*evs = append(*evs, Event{At: v.At, Type: EvSIPReinvite, Session: st.callID,
				Detail: fmt.Sprintf("%s moving media from %v", out.reinviteMover, out.reinviteOld), Footprint: ctx.Observation()})
		}
	case sip.MethodBye:
		if out.firstBye {
			*evs = append(*evs, Event{At: v.At, Type: EvSIPBye, Session: st.callID,
				Detail: out.from.URI.AOR() + " hangs up", Footprint: ctx.Observation()})
		}
	}
}

func (c *sipCorrelator) responseEvents(v *FrameView, st *sessionState, out sipOutcome, ctx *SessionContext, evs *[]Event) {
	if !out.cseqOK {
		return
	}
	m := v.Msg
	switch {
	case m.StatusCode == sip.StatusUnauthorized:
		st.challenges++
		*evs = append(*evs, Event{At: v.At, Type: EvSIPAuthChallenge, Session: st.callID,
			Detail: fmt.Sprintf("challenge #%d", st.challenges), Footprint: ctx.Observation()})
		if st.challenges >= c.cfg.AuthFloodThreshold && !st.floodFired {
			st.floodFired = true
			*evs = append(*evs, Event{
				At: v.At, Type: EvAuthFlood, Session: st.callID,
				Detail:    fmt.Sprintf("%d unauthorized replies in one session", st.challenges),
				Footprint: ctx.Observation(),
			})
		}
	case out.regOK:
		if out.bindingIP.IsValid() {
			ctx.SetBinding(out.regAOR, out.bindingIP)
		}
		*evs = append(*evs, Event{At: v.At, Type: EvSIPRegisterOK, Session: st.callID,
			Detail: out.regAOR, Footprint: ctx.Observation()})
	case out.established:
		*evs = append(*evs, Event{At: v.At, Type: EvSIPCallEstablished, Session: st.callID,
			Detail:    fmt.Sprintf("%s <-> %s media %v/%v", st.callerAOR, st.calleeAOR, st.callerMedia, st.calleeMedia),
			Footprint: ctx.Observation()})
		c.checkUnmatchedMedia(v, st, ctx, evs)
	}
}

// checkUnmatchedMedia verifies the negotiated caller media address against
// the caller's registered location — the third condition of the billing
// fraud rule (Section 3.2).
func (c *sipCorrelator) checkUnmatchedMedia(v *FrameView, st *sessionState, ctx *SessionContext, evs *[]Event) {
	binding, ok := ctx.Binding(st.callerAOR)
	if !ok || !st.callerMedia.IsValid() {
		return
	}
	if st.callerMedia.Addr() == binding {
		return
	}
	*evs = append(*evs, Event{
		At: v.At, Type: EvRTPUnmatchedMedia, Session: st.callID,
		Detail: fmt.Sprintf("caller %s registered at %v but negotiated media at %v",
			st.callerAOR, binding, st.callerMedia),
		Footprint: ctx.Observation(),
	})
}
