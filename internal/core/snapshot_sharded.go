package core

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Sharded checkpoint/restore over the portable (v3) format. A sharded
// snapshot is a coordinated quiescent-point capture folded into the same
// session-keyed global layout the serial engine writes: a snapshot marker
// is enqueued to every shard behind all pending work (the consistent cut),
// each worker serializes its pipeline body, and the writer mines those
// bodies back into one global engine body — one folded stats block, the
// union of the per-shard session tables, trails and partial matches, the
// merged alert/event streams (in merge-tag order, exactly what Alerts()
// and Events() return), the merged or router-owned correlator state, plus
// the router's own routing directory (sticky pins) and buffered fragment
// groups. Because the body is keyed by session, restore re-routes every
// session through the restoring engine's router config: a checkpoint
// captured at one shards × ingest geometry resumes at any other, or on
// the serial engine, with identical outputs.
//
// Like Snapshot/RestoreSnapshot on the serial engine, neither may run
// concurrently with HandleFrame or Close.

// workerRestore is one shard's slice of a portable checkpoint, fully
// decoded against that shard's fresh engine and ready to install. It
// travels to the worker goroutine via an itemRestore marker (the channel
// send orders the install before any subsequent work).
type workerRestore struct {
	engine    *engineSnap
	alertTags []mergeTag
	eventTags []mergeTag
}

// isSelfRule reports whether an alert was raised by the sharded engine's
// self-monitoring (router-side) rather than a shard's rule engine; restore
// routes these back to the router's self-alert list instead of a shard.
func isSelfRule(name string) bool {
	switch name {
	case RuleIDSOverload, RuleShardFailure, RuleShardStateLoss, RuleRuleReload:
		return true
	}
	return false
}

// addDistillerStats sums two distiller stat snapshots field by field.
func addDistillerStats(a, b DistillerStats) DistillerStats {
	a.Frames += b.Frames
	a.Fragments += b.Fragments
	a.DecodeError += b.DecodeError
	a.SIP += b.SIP
	a.RTP += b.RTP
	a.RTCP += b.RTCP
	a.Acct += b.Acct
	a.Raw += b.Raw
	a.Ignored += b.Ignored
	a.Mismatched += b.Mismatched
	a.Streamed += b.Streamed
	a.StreamMsgs += b.StreamMsgs
	return a
}

// snapshotWorker serializes the worker's engine body (runs on the worker
// goroutine, after publish, at the marker's consistent cut). It also
// refreshes the warm-restart cache.
func (w *shardWorker) snapshotWorker() []byte {
	var eb snapWriter
	w.eng.writeSnapBody(&eb)
	w.lastEngineSnap = append([]byte(nil), eb.buf...)
	return eb.buf
}

// installRestore installs one shard's slice of a portable checkpoint
// (runs on the worker goroutine; the channel send that delivered it
// orders the install before any post-restore work). Decode already
// validated everything, so this cannot fail. The restored outputs carry
// position tags (frame 0, global ordinal) so the merged streams reproduce
// the capture-time order ahead of anything the resumed run appends.
func (w *shardWorker) installRestore(p *workerRestore) {
	w.eng.installSnap(p.engine, true)
	var eb snapWriter
	w.eng.writeSnapBody(&eb)
	w.lastEngineSnap = eb.buf
	w.alertTags = append(w.alertTags[:0], p.alertTags...)
	w.eventTags = append(w.eventTags[:0], p.eventTags...)
	w.trimmedA, w.trimmedE = 0, 0
	w.faultSeq = 0
	w.base = shardResults{}
	w.resMu.Lock()
	w.pubVer = -1 // force the alert rebuild on the publish below
	w.pubEvict = 0
	w.pub = shardResults{}
	w.resMu.Unlock()
	w.publish()
	w.publishTrails()
}

// header returns the sharded engine's snapshot identity. The geometry
// fields are informational only (see validateSnapHeader); the rules hash
// tracks the live (possibly hot-reloaded) ruleset.
func (s *ShardedEngine) header() snapHeader {
	return snapHeader{
		engineKind:  snapKindSharded,
		shards:      len(s.workers),
		ingesters:   s.ingesters,
		frames:      s.frames.Load(),
		configHash:  configFingerprint(s.cfg, s.keepLog),
		rulesHash:   rulesFingerprint(*s.liveRules.Load()),
		correlators: correlatorNames(s.correlators),
	}
}

// Snapshot captures the whole sharded pipeline at a quiescent point into
// a portable, session-keyed checkpoint. It flushes all queued work, takes
// the merged output views, enqueues a snapshot marker to every shard
// behind anything still pending (the consistent cut) while serializing
// the router's own state under the routing lock, then mines the per-shard
// bodies into one global engine body. Must not run concurrently with
// HandleFrame or Close.
//
// Shards quarantined as panicked or stalled ack the marker through their
// drain path without serializing: their published alerts, events and
// stats survive (they are part of the merged views) but their private
// detection state and distiller counters are not captured — a degraded
// but well-formed checkpoint, mirroring the quarantine's own data loss.
func (s *ShardedEngine) Snapshot() ([]byte, error) {
	// Merged output views first (each flushes). Snapshot never runs
	// concurrently with HandleFrame, so the pipeline cannot advance
	// between these reads and the markers below.
	alerts := s.Alerts()
	events := s.Events()
	folded := s.Stats()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, fmt.Errorf("core: snapshot: engine is closed")
	}
	blobs := make([]*[]byte, len(s.workers))
	acks := make([]chan struct{}, len(s.workers))
	for i := range s.workers {
		blobs[i] = new([]byte)
		acks[i] = make(chan struct{})
		s.pending[i] = append(s.pending[i], shardItem{kind: itemSnapshot, snap: blobs[i], ack: acks[i]})
		s.flushShardLocked(i)
	}
	var w snapWriter
	writeSnapHeader(&w, s.header())
	streams := s.reasm.ExportStreams()
	// Router correlator state, position-indexed over the snapshotters.
	// stateSharder correlators are worker-resident: their global blob is
	// the merge of the per-shard blobs (filled in below). The rest are
	// router-authoritative (their hinter state judges every frame here in
	// global order): the global blob is the router instance's state.
	snaps := snapshotters(s.correlators)
	routerCorrs := make([]corrBlob, len(snaps))
	for i, c := range snaps {
		routerCorrs[i] = corrBlob{name: c.Name()}
		if _, ok := c.(stateSharder); ok {
			continue
		}
		var cw snapWriter
		c.(snapshotter).snapshotState(&cw)
		routerCorrs[i].blob = cw.buf
	}
	var tail snapWriter
	writeSticky(&tail, s.sticky)
	writeFragGroups(&tail, s.frags)
	writeStreamMux(&tail, s.streams)
	s.mu.Unlock()
	for i, ack := range acks {
		awaitAck(s.workers[i], ack)
	}
	body := rawEngineBody{
		stats:           folded,
		dstats:          s.restoredDstats,
		streams:         streams,
		reasmEvicted:    folded.FragGroupsEvicted,
		evictedSessions: folded.SessionsCapEvicted,
		evictedBindings: folded.BindingsEvicted,
	}
	workerCorr := make(map[string][][]byte)
	lastSeen := make(map[string]time.Duration)
	bestClock := -1
	for i := range s.workers {
		blob := *blobs[i]
		if blob == nil {
			// Quarantined or stalled shard: degraded capture (see doc).
			continue
		}
		wb, err := parseEngineBodyBytes(blob, nil)
		if err != nil {
			return nil, fmt.Errorf("core: snapshot: shard %d state: %w", i, err)
		}
		body.dstats = addDistillerStats(body.dstats, wb.dstats)
		body.trails = append(body.trails, wb.trails...)
		body.index.sessions = append(body.index.sessions, wb.index.sessions...)
		body.index.pendingReg = append(body.index.pendingReg, wb.index.pendingReg...)
		body.rules.partials = append(body.rules.partials, wb.rules.partials...)
		body.rules.pendings = append(body.rules.pendings, wb.rules.pendings...)
		for li, k := range wb.rules.lastKeys {
			if at, seen := lastSeen[k]; !seen || wb.rules.lastAt[li] > at {
				lastSeen[k] = wb.rules.lastAt[li]
			}
		}
		// Bindings are replicated to every shard and age identically;
		// take the most advanced replica (highest binding clock).
		if wb.bindingClock > bestClock {
			bestClock = wb.bindingClock
			body.bindings = wb.bindings
			body.bindingIPs = wb.bindingIPs
			body.bindingAges = wb.bindingAges
			body.bindingClock = wb.bindingClock
		}
		for _, cb := range wb.corrs {
			workerCorr[cb.name] = append(workerCorr[cb.name], cb.blob)
		}
	}
	body.corrs = routerCorrs
	for i, c := range snaps {
		sh, ok := c.(stateSharder)
		if !ok {
			continue
		}
		merged, err := sh.mergeState(workerCorr[c.Name()])
		if err != nil {
			return nil, fmt.Errorf("core: snapshot: correlator %s: %w", c.Name(), err)
		}
		body.corrs[i].blob = merged
	}
	// The global rule-engine section: the merged alert stream (unique per
	// rule|session, counts summed) with a dedup entry per retained alert,
	// offset by the folded eviction count so the pointer validation and
	// O(1) eviction arithmetic hold after a serial restore. The version is
	// a deterministic function of the same counters (every raise bumps it
	// once, suppressed repeats included), so re-snapshotting an idle
	// restored engine reproduces it.
	body.rules.alerts = alerts
	body.rules.dedupBase = folded.AlertsEvicted
	body.rules.evicted = folded.AlertsEvicted
	body.rules.eventsSeen = folded.Events
	version := folded.AlertsEvicted
	for gi, a := range alerts {
		body.rules.dedupKeys = append(body.rules.dedupKeys, a.Rule+"|"+a.Session)
		body.rules.dedupIdx = append(body.rules.dedupIdx, gi+folded.AlertsEvicted)
		version += a.Count
	}
	body.rules.version = version
	lk := make([]string, 0, len(lastSeen))
	for k := range lastSeen {
		lk = append(lk, k)
	}
	sort.Strings(lk)
	for _, k := range lk {
		body.rules.lastKeys = append(body.rules.lastKeys, k)
		body.rules.lastAt = append(body.rules.lastAt, lastSeen[k])
	}
	body.events = events
	writeEngineBody(&w, &body)
	w.buf = append(w.buf, tail.buf...)
	w.u64(fnv64(w.buf))
	return w.buf, nil
}

// RestoreSnapshot rebuilds the whole sharded pipeline from a portable
// checkpoint written by either engine kind at any geometry. The engine
// must be fresh (no frames routed); correlator set, ruleset and config
// are validated against the header with descriptive errors — engine
// kind, shard count and ingest width are not, because the session-keyed
// body re-routes through this engine's own router: every session's
// trails, directory entries, partial matches, alerts and events are
// split across the current shards by the same sticky-pinned routing keys
// the router will use for the resumed traffic. The entire checkpoint is
// decoded and validated before anything installs, so a corrupt
// checkpoint leaves the engine untouched. Every shard comes back
// healthy.
func (s *ShardedEngine) RestoreSnapshot(data []byte) error {
	if n := s.frames.Load(); n != 0 {
		return fmt.Errorf("core: restore requires a fresh engine (this one already routed %d frames)", n)
	}
	h, r, err := openSnapshot(data)
	if err != nil {
		return err
	}
	if err := validateSnapHeader(h, s.header()); err != nil {
		return err
	}
	body := parseEngineBody(r, *s.liveRules.Load())
	stickyKeys, stickyVals := readSticky(r)
	fragIdents, fragFirsts, fragFrames := readFragGroups(r)
	tcpStreams, framerBufs, tcpEvicted := readStreamMux(r)
	if r.err != nil {
		return r.err
	}
	if !r.done() {
		return fmt.Errorf("core: snapshot corrupt (%d trailing bytes)", r.remaining())
	}
	n := len(s.workers)
	sticky := make(map[string]string, len(stickyKeys))
	for i, id := range stickyKeys {
		sticky[id] = stickyVals[i]
	}
	// shardFor re-routes a session through this engine's geometry: the
	// pinned routing key when the dialog has one, else the session key
	// itself (exactly what the router hashes for non-pinned traffic).
	shardFor := func(session string) int {
		if rk, ok := sticky[session]; ok {
			return shardOf(rk, n)
		}
		return shardOf(session, n)
	}
	shards := make([]rawEngineBody, n)
	for j := range shards {
		// Bindings are replicated in full to every shard, as the router
		// replicates live registrations. Stats and eviction counters stay
		// zero: the folded history lives in restoredStats below, and the
		// shards re-count only what happens after the resume.
		shards[j].bindings = body.bindings
		shards[j].bindingIPs = body.bindingIPs
		shards[j].bindingAges = body.bindingAges
		shards[j].bindingClock = body.bindingClock
	}
	for _, t := range body.trails {
		j := shardFor(t.session)
		shards[j].trails = append(shards[j].trails, t)
	}
	for _, sess := range body.index.sessions {
		j := shardFor(sess.st.callID)
		shards[j].index.sessions = append(shards[j].index.sessions, sess)
	}
	for _, reg := range body.index.pendingReg {
		j := shardFor(reg[0])
		shards[j].index.pendingReg = append(shards[j].index.pendingReg, reg)
	}
	for _, ps := range body.rules.partials {
		j := shardFor(ps.session)
		shards[j].rules.partials = append(shards[j].rules.partials, ps)
	}
	// Absence machinery travels with its correlation key (the part of
	// rule|key after the separator), exactly as partials travel with
	// their session.
	for _, ps := range body.rules.pendings {
		_, ck, _ := strings.Cut(ps.key, "|")
		j := shardFor(ck)
		shards[j].rules.pendings = append(shards[j].rules.pendings, ps)
	}
	for li, k := range body.rules.lastKeys {
		_, ck, _ := strings.Cut(k, "|")
		j := shardFor(ck)
		shards[j].rules.lastKeys = append(shards[j].rules.lastKeys, k)
		shards[j].rules.lastAt = append(shards[j].rules.lastAt, body.rules.lastAt[li])
	}
	// Split the merged output streams. Position tags (frame 0, global
	// ordinal) keep the merged order identical to the capture; self-
	// monitoring alerts return to the router's self-alert list.
	var selfAlerts []Alert
	var selfTags []mergeTag
	alertTags := make([][]mergeTag, n)
	for gi, a := range body.rules.alerts {
		if isSelfRule(a.Rule) {
			selfAlerts = append(selfAlerts, a)
			selfTags = append(selfTags, mergeTag{idx: 0, sub: gi})
			continue
		}
		j := shardFor(a.Session)
		shards[j].rules.alerts = append(shards[j].rules.alerts, a)
		alertTags[j] = append(alertTags[j], mergeTag{idx: 0, sub: gi})
	}
	for j := range shards {
		rs := &shards[j].rules
		for i, a := range rs.alerts {
			rs.dedupKeys = append(rs.dedupKeys, a.Rule+"|"+a.Session)
			rs.dedupIdx = append(rs.dedupIdx, i)
		}
		rs.version = len(rs.alerts)
	}
	eventTags := make([][]mergeTag, n)
	for gi, ev := range body.events {
		j := shardFor(ev.Session)
		shards[j].events = append(shards[j].events, ev)
		eventTags[j] = append(eventTags[j], mergeTag{idx: 0, sub: gi})
	}
	// Correlator state. stateSharder blobs are filtered down to each
	// shard's keep set (the same routing keys the router pins); the rest
	// install onto the router's instances, with each shard receiving a
	// freshly serialized empty state — worker instances of router-
	// authoritative correlators never accumulate state (verdicts arrive
	// as RouteHints), so empty is exactly what an uninterrupted run holds.
	snaps := snapshotters(s.correlators)
	if len(body.corrs) != len(snaps) {
		return fmt.Errorf("core: snapshot holds %d correlator states; engine has %d stateful correlators", len(body.corrs), len(snaps))
	}
	var routerInstalls []func()
	var emptySnaps []Correlator
	for ci, c := range snaps {
		cb := body.corrs[ci]
		if cb.name != c.Name() {
			return fmt.Errorf("core: snapshot correlator state %q does not match engine correlator %q", cb.name, c.Name())
		}
		if sh, ok := c.(stateSharder); ok {
			for j := range shards {
				keepShard := j
				filtered, err := sh.filterState(cb.blob, func(rk string) bool { return shardOf(rk, n) == keepShard })
				if err != nil {
					return fmt.Errorf("core: snapshot corrupt (correlator %s: %v)", c.Name(), err)
				}
				shards[j].corrs = append(shards[j].corrs, corrBlob{name: cb.name, blob: filtered})
			}
			continue
		}
		install, err := decodeCorrBlob(c, cb.blob)
		if err != nil {
			return err
		}
		routerInstalls = append(routerInstalls, install)
		if emptySnaps == nil {
			emptySnaps = snapshotters(buildCorrelators(s.cfg.Correlators, s.gen))
		}
		var ew snapWriter
		emptySnaps[ci].(snapshotter).snapshotState(&ew)
		for j := range shards {
			shards[j].corrs = append(shards[j].corrs, corrBlob{name: cb.name, blob: ew.buf})
		}
	}
	// Decode every shard's slice against its (fresh, quiescent) engine
	// before anything installs. The driver may touch the worker engines
	// here: restore requires a fresh engine and never runs concurrently
	// with HandleFrame, so the workers are idle.
	restores := make([]*workerRestore, n)
	for j := range shards {
		var bw snapWriter
		writeEngineBody(&bw, &shards[j])
		snap, err := s.workers[j].eng.decodeSnapBodyBytes(bw.buf)
		if err != nil {
			return fmt.Errorf("core: restore: shard %d: %w", j, err)
		}
		restores[j] = &workerRestore{engine: snap, alertTags: alertTags[j], eventTags: eventTags[j]}
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("core: restore: engine is closed")
	}
	s.frameIdx = h.frames
	s.frames.Store(h.frames)
	installSessionIndex(s.idx, body.index)
	s.reasm.ImportStreams(body.streams, body.reasmEvicted)
	clear(s.frags)
	for i, id := range fragIdents {
		s.frags[id] = &fragGroup{first: fragFirsts[i], frames: fragFrames[i]}
	}
	s.streams.install(tcpStreams, framerBufs, tcpEvicted)
	for _, install := range routerInstalls {
		install()
	}
	clear(s.sticky)
	for i, id := range stickyKeys {
		s.sticky[id] = stickyVals[i]
	}
	s.capSessions.Store(uint64(body.evictedSessions))
	s.capFrags.Store(uint64(body.reasmEvicted))
	s.capStreams.Store(uint64(tcpEvicted))
	s.shardsFailed.Store(uint64(body.stats.ShardsFailed))
	s.shardsRestarted.Store(uint64(body.stats.ShardsRestarted))
	s.selfMu.Lock()
	s.selfAlert = selfAlerts
	s.selfTags = selfTags
	s.selfDedup = make(map[string]int, len(selfAlerts))
	for i, a := range selfAlerts {
		s.selfDedup[a.Rule+"|"+a.Session] = i
	}
	s.selfSeq = len(selfAlerts)
	s.selfMu.Unlock()
	// restoredStats carries the folded history for the counters the live
	// pipeline will NOT re-count. Counters that live state re-derives —
	// the frame clock, the router-side cap atomics stored above, the
	// shard-failure atomics, and the correlator-owned eviction counters
	// contributeStats re-adds from the restored atomics — are zeroed so
	// each count happens exactly once.
	rst := body.stats
	rst.Frames = 0
	rst.SessionsCapEvicted = 0
	rst.FragGroupsEvicted = 0
	rst.StreamsEvicted = 0
	rst.ShardsFailed = 0
	rst.ShardsRestarted = 0
	rst.IMHistoriesEvicted = 0
	rst.SeqTrackersEvicted = 0
	s.restoredStats = rst
	s.restoredDstats = body.dstats
	acks := make([]chan struct{}, n)
	for j, wr := range restores {
		acks[j] = make(chan struct{})
		s.pending[j] = append(s.pending[j], shardItem{kind: itemRestore, restore: wr, ack: acks[j]})
		s.flushShardLocked(j)
	}
	s.mu.Unlock()
	for j, ack := range acks {
		awaitAck(s.workers[j], ack)
	}
	return nil
}
