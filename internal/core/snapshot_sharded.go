package core

import (
	"fmt"
	"sort"
	"time"

	"scidive/internal/packet"
)

// Sharded checkpoint/restore. A sharded snapshot is a coordinated
// quiescent-point capture: the router's state (directory, reassembly,
// buffered fragment groups, correlator instances, sticky routing keys,
// self-monitoring alerts) is serialized under the routing lock, and a
// snapshot marker is enqueued to every shard behind all pending work, so
// each worker serializes its pipeline at exactly the same cut in the
// frame stream. Per-shard routed/processed/shed ledgers are captured
// after every marker acks, so routed == processed + shed holds across a
// restore. Like Snapshot/RestoreSnapshot on the serial engine, neither
// may run concurrently with HandleFrame or Close.

// workerRestore is one shard's fully decoded snapshot section, ready to
// install. For healthy shards the engine state travels to the worker
// goroutine via an itemRestore marker (the channel send orders it before
// any subsequent work); failed shards get their published results
// installed directly, since their engines stay quiescent.
type workerRestore struct {
	state     uint32
	routed    uint64
	processed uint64
	shedF     uint64
	shedB     uint64

	// Healthy-shard payload.
	engineBlob []byte // raw engine body, cached for warm restarts
	engine     *engineSnap
	alertTags  []mergeTag
	eventTags  []mergeTag
	trimmedA   int
	trimmedE   int
	faultSeq   uint64
	base       shardResults

	// Failed-shard payload: the last published results, which become the
	// restored worker's base and publication.
	pub shardResults
}

// routerSnap is the decoded router-stage state.
type routerSnap struct {
	frameIdx        uint64
	idx             indexSnap
	streams         []packet.FragStream
	reasmEvicted    int
	fragKeys        []fragIdent
	fragFirsts      []int64
	fragFrames      [][]routedFrame
	corrInstalls    []func()
	stickyKeys      []string
	stickyVals      []string
	capSessions     uint64
	capFrags        uint64
	shardsFailed    uint64
	shardsRestarted uint64
	selfAlert       []Alert
	selfTags        []mergeTag
	selfDedupKeys   []string
	selfDedupIdx    []int
	selfSeq         int
}

func writeTags(w *snapWriter, tags []mergeTag) {
	w.u32(uint32(len(tags)))
	for _, t := range tags {
		w.u64(t.idx)
		w.vint(t.sub)
	}
}

func readTags(r *snapReader) []mergeTag {
	n := r.count()
	out := make([]mergeTag, 0, min(n, 4096))
	for i := 0; i < n && r.err == nil; i++ {
		out = append(out, mergeTag{idx: r.u64(), sub: r.vint()})
	}
	return out
}

func writeResults(w *snapWriter, res *shardResults) {
	writeEngineStats(w, res.stats)
	writeAlerts(w, res.alerts)
	writeTags(w, res.alertTags)
	writeEvents(w, res.events)
	writeTags(w, res.eventTags)
	w.u32(uint32(len(res.trails)))
	for _, k := range res.trails {
		w.str(k.session)
		w.vint(int(k.proto))
	}
}

func readResults(r *snapReader) shardResults {
	var res shardResults
	res.stats = readEngineStats(r)
	res.alerts = readAlerts(r)
	res.alertTags = readTags(r)
	res.events = readEvents(r)
	res.eventTags = readTags(r)
	nt := r.count()
	for i := 0; i < nt && r.err == nil; i++ {
		res.trails = append(res.trails, trailKey{session: r.strv(), proto: Protocol(r.vint())})
	}
	if r.err == nil && (len(res.alertTags) != len(res.alerts) || len(res.eventTags) != len(res.events)) {
		r.fail("core: snapshot corrupt (shard results: %d alert tags for %d alerts, %d event tags for %d events)",
			len(res.alertTags), len(res.alerts), len(res.eventTags), len(res.events))
	}
	return res
}

func copyResults(res shardResults) shardResults {
	return shardResults{
		stats:     res.stats,
		alerts:    append([]Alert(nil), res.alerts...),
		alertTags: append([]mergeTag(nil), res.alertTags...),
		events:    append([]Event(nil), res.events...),
		eventTags: append([]mergeTag(nil), res.eventTags...),
		trails:    append([]trailKey(nil), res.trails...),
	}
}

// snapshotWorker serializes the worker's pipeline (runs on the worker
// goroutine, after publish, so tags are synced and pub is current). It
// also refreshes the warm-restart cache.
func (w *shardWorker) snapshotWorker() []byte {
	var eb snapWriter
	w.eng.writeSnapBody(&eb)
	w.lastEngineSnap = append([]byte(nil), eb.buf...)
	var sw snapWriter
	sw.bytes(eb.buf)
	writeTags(&sw, w.alertTags)
	writeTags(&sw, w.eventTags)
	sw.vint(w.trimmedA)
	sw.vint(w.trimmedE)
	sw.u64(w.faultSeq)
	writeResults(&sw, &w.base)
	return sw.buf
}

// installRestore installs a decoded shard snapshot (runs on the worker
// goroutine; the channel send that delivered it orders the install before
// any post-restore work). Decode already validated everything, so this
// cannot fail.
func (w *shardWorker) installRestore(p *workerRestore) {
	w.eng.installSnap(p.engine, true)
	w.lastEngineSnap = p.engineBlob
	w.alertTags = append(w.alertTags[:0], p.alertTags...)
	w.eventTags = append(w.eventTags[:0], p.eventTags...)
	w.trimmedA, w.trimmedE = p.trimmedA, p.trimmedE
	w.faultSeq = p.faultSeq
	w.base = copyResults(p.base)
	w.resMu.Lock()
	w.pubVer = -1 // force the alert rebuild on the publish below
	w.pubEvict = w.eng.stats.EventsEvicted
	w.pub.stats = EngineStats{}
	w.pub.alerts = w.pub.alerts[:0]
	w.pub.alertTags = w.pub.alertTags[:0]
	w.pub.events = append(w.pub.events[:0], w.base.events...)
	w.pub.eventTags = append(w.pub.eventTags[:0], w.base.eventTags...)
	w.pub.trails = nil
	w.resMu.Unlock()
	w.publish()
	w.publishTrails()
}

// header returns the sharded engine's snapshot identity.
func (s *ShardedEngine) header() snapHeader {
	return snapHeader{
		engineKind:  snapKindSharded,
		shards:      len(s.workers),
		ingesters:   s.ingesters,
		frames:      s.frames.Load(),
		configHash:  configFingerprint(s.cfg, s.keepLog),
		rulesHash:   rulesFingerprint(s.cfg.Rules),
		correlators: correlatorNames(s.correlators),
	}
}

// Snapshot captures the whole sharded pipeline at a quiescent point. It
// flushes all queued work, serializes the router under the routing lock,
// enqueues a snapshot marker to every shard behind anything still
// pending (the consistent cut), and captures the per-shard ledgers once
// every marker has acked. Must not run concurrently with HandleFrame or
// Close. Shards quarantined as stalled are recorded from their last
// published results.
func (s *ShardedEngine) Snapshot() ([]byte, error) {
	s.Flush()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, fmt.Errorf("core: snapshot: engine is closed")
	}
	blobs := make([]*[]byte, len(s.workers))
	acks := make([]chan struct{}, len(s.workers))
	for i := range s.workers {
		blobs[i] = new([]byte)
		acks[i] = make(chan struct{})
		s.pending[i] = append(s.pending[i], shardItem{kind: itemSnapshot, snap: blobs[i], ack: acks[i]})
		s.flushShardLocked(i)
	}
	var w snapWriter
	writeSnapHeader(&w, s.header())
	s.writeRouterLocked(&w)
	s.mu.Unlock()
	for i, ack := range acks {
		awaitAck(s.workers[i], ack)
	}
	for i, wk := range s.workers {
		s.writeWorkerSection(&w, wk, *blobs[i])
	}
	w.u64(fnv64(w.buf))
	return w.buf, nil
}

func (s *ShardedEngine) writeRouterLocked(w *snapWriter) {
	w.u64(s.frameIdx)
	writeSessionIndex(w, s.idx)
	writeReassembly(w, s.reasm)
	keys := make([]fragIdent, 0, len(s.frags))
	for k := range s.frags {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if c := a.src.Compare(b.src); c != 0 {
			return c < 0
		}
		if c := a.dst.Compare(b.dst); c != 0 {
			return c < 0
		}
		if a.proto != b.proto {
			return a.proto < b.proto
		}
		return a.id < b.id
	})
	w.u32(uint32(len(keys)))
	for _, k := range keys {
		grp := s.frags[k]
		w.addr(k.src)
		w.addr(k.dst)
		w.u8(k.proto)
		w.u16(k.id)
		w.dur(grp.first)
		w.u32(uint32(len(grp.frames)))
		for _, fr := range grp.frames {
			w.dur(fr.at)
			w.bytes(fr.frame)
		}
	}
	writeCorrelators(w, s.correlators)
	ids := make([]string, 0, len(s.sticky))
	for id := range s.sticky {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	w.u32(uint32(len(ids)))
	for _, id := range ids {
		w.str(id)
		w.str(s.sticky[id])
	}
	w.u64(s.capSessions.Load())
	w.u64(s.capFrags.Load())
	w.u64(s.shardsFailed.Load())
	w.u64(s.shardsRestarted.Load())
	s.selfMu.Lock()
	writeAlerts(w, s.selfAlert)
	writeTags(w, s.selfTags)
	dk := make([]string, 0, len(s.selfDedup))
	for k := range s.selfDedup {
		dk = append(dk, k)
	}
	sort.Strings(dk)
	w.u32(uint32(len(dk)))
	for _, k := range dk {
		w.str(k)
		w.vint(s.selfDedup[k])
	}
	w.vint(s.selfSeq)
	s.selfMu.Unlock()
}

func (s *ShardedEngine) writeWorkerSection(w *snapWriter, wk *shardWorker, blob []byte) {
	// The watchdog's batch-progress pair (enqueuedB/completedB) is
	// deliberately not serialized: markers bump it, so it would make
	// back-to-back snapshots of an idle engine differ, and at any
	// quiescent point the pair is equal anyway — a fresh 0/0 restores
	// the same "idle" relation.
	w.u8(uint8(wk.state.Load()))
	w.u64(wk.routedF.Load())
	w.u64(wk.processedF.Load())
	w.u64(wk.shedFrames.Load())
	w.u64(wk.shedBatches.Load())
	if blob != nil {
		w.bool(true)
		w.bytes(blob)
		return
	}
	// Quarantined (or stalled) shard: the marker was acked by the drain
	// path without serializing, so record the last published results.
	w.bool(false)
	wk.resMu.Lock()
	res := copyResults(wk.pub)
	wk.resMu.Unlock()
	writeResults(w, &res)
}

func (s *ShardedEngine) decodeRouter(r *snapReader) *routerSnap {
	rs := &routerSnap{}
	rs.frameIdx = r.u64()
	rs.idx = readSessionIndex(r)
	rs.streams, rs.reasmEvicted = readReassembly(r)
	nf := r.count()
	for i := 0; i < nf && r.err == nil; i++ {
		key := fragIdent{src: r.addrv(), dst: r.addrv(), proto: r.u8(), id: r.u16()}
		first := r.dur()
		nfr := r.count()
		frames := make([]routedFrame, 0, min(nfr, 4096))
		for j := 0; j < nfr && r.err == nil; j++ {
			frames = append(frames, routedFrame{at: r.dur(), frame: r.bytesv()})
		}
		rs.fragKeys = append(rs.fragKeys, key)
		rs.fragFirsts = append(rs.fragFirsts, int64(first))
		rs.fragFrames = append(rs.fragFrames, frames)
	}
	rs.corrInstalls = readCorrelators(r, s.correlators)
	ns := r.count()
	for i := 0; i < ns && r.err == nil; i++ {
		rs.stickyKeys = append(rs.stickyKeys, r.strv())
		rs.stickyVals = append(rs.stickyVals, r.strv())
	}
	rs.capSessions = r.u64()
	rs.capFrags = r.u64()
	rs.shardsFailed = r.u64()
	rs.shardsRestarted = r.u64()
	rs.selfAlert = readAlerts(r)
	rs.selfTags = readTags(r)
	nd := r.count()
	for i := 0; i < nd && r.err == nil; i++ {
		rs.selfDedupKeys = append(rs.selfDedupKeys, r.strv())
		rs.selfDedupIdx = append(rs.selfDedupIdx, r.vint())
	}
	rs.selfSeq = r.vint()
	if r.err != nil {
		return rs
	}
	if len(rs.selfTags) != len(rs.selfAlert) {
		r.fail("core: snapshot corrupt (%d self-alert tags for %d self alerts)", len(rs.selfTags), len(rs.selfAlert))
		return rs
	}
	for i, k := range rs.selfDedupKeys {
		idx := rs.selfDedupIdx[i]
		if idx < 0 || idx >= len(rs.selfAlert) {
			r.fail("core: snapshot corrupt (self-alert dedup %q points at %d of %d)", k, idx, len(rs.selfAlert))
			return rs
		}
		a := rs.selfAlert[idx]
		if a.Rule+"|"+a.Session != k {
			r.fail("core: snapshot corrupt (self-alert dedup %q points at alert for %q)", k, a.Rule+"|"+a.Session)
			return rs
		}
	}
	return rs
}

func (s *ShardedEngine) installRouterLocked(rs *routerSnap) {
	s.frameIdx = rs.frameIdx
	s.frames.Store(rs.frameIdx)
	installSessionIndex(s.idx, rs.idx)
	s.reasm.ImportStreams(rs.streams, rs.reasmEvicted)
	clear(s.frags)
	for i, k := range rs.fragKeys {
		s.frags[k] = &fragGroup{frames: rs.fragFrames[i], first: time.Duration(rs.fragFirsts[i])}
	}
	for _, install := range rs.corrInstalls {
		install()
	}
	clear(s.sticky)
	for i, id := range rs.stickyKeys {
		s.sticky[id] = rs.stickyVals[i]
	}
	s.capSessions.Store(rs.capSessions)
	s.capFrags.Store(rs.capFrags)
	s.shardsFailed.Store(rs.shardsFailed)
	s.shardsRestarted.Store(rs.shardsRestarted)
	s.selfMu.Lock()
	s.selfAlert = rs.selfAlert
	s.selfTags = rs.selfTags
	s.selfDedup = make(map[string]int, len(rs.selfDedupKeys))
	for i, k := range rs.selfDedupKeys {
		s.selfDedup[k] = rs.selfDedupIdx[i]
	}
	s.selfSeq = rs.selfSeq
	s.selfMu.Unlock()
}

func (s *ShardedEngine) decodeWorker(r *snapReader, wk *shardWorker) *workerRestore {
	wr := &workerRestore{}
	wr.state = uint32(r.u8())
	if r.err == nil && wr.state > stateStalled {
		r.fail("core: snapshot corrupt (shard %d has unknown state %d)", wk.id, wr.state)
		return wr
	}
	wr.routed = r.u64()
	wr.processed = r.u64()
	wr.shedF = r.u64()
	wr.shedB = r.u64()
	hasBlob := r.boolv()
	if r.err != nil {
		return wr
	}
	if hasBlob != (wr.state == stateHealthy) {
		r.fail("core: snapshot corrupt (shard %d is %s but engine state present=%v)", wk.id, stateName(wr.state), hasBlob)
		return wr
	}
	if !hasBlob {
		wr.pub = readResults(r)
		return wr
	}
	blob := r.bytesv()
	if r.err != nil {
		return wr
	}
	br := &snapReader{buf: blob}
	engineBody := br.bytesv()
	if br.err != nil {
		r.fail("core: snapshot corrupt (shard %d: %v)", wk.id, br.err)
		return wr
	}
	snap, err := wk.eng.decodeSnapBodyBytes(engineBody)
	if err != nil {
		r.fail("core: snapshot corrupt (shard %d: %v)", wk.id, err)
		return wr
	}
	wr.engine = snap
	wr.engineBlob = engineBody
	wr.alertTags = readTags(br)
	wr.eventTags = readTags(br)
	wr.trimmedA = br.vint()
	wr.trimmedE = br.vint()
	wr.faultSeq = br.u64()
	wr.base = readResults(br)
	if br.err != nil {
		r.fail("core: snapshot corrupt (shard %d: %v)", wk.id, br.err)
		return wr
	}
	if !br.done() {
		r.fail("core: snapshot corrupt (shard %d: %d trailing bytes)", wk.id, br.remaining())
		return wr
	}
	if len(wr.alertTags) != len(snap.rules.alerts) || len(wr.eventTags) != len(snap.events) {
		r.fail("core: snapshot corrupt (shard %d: %d alert tags for %d alerts, %d event tags for %d events)",
			wk.id, len(wr.alertTags), len(snap.rules.alerts), len(wr.eventTags), len(snap.events))
	}
	return wr
}

// RestoreSnapshot rebuilds the whole sharded pipeline from a checkpoint
// written by Snapshot. The engine must be fresh (no frames routed) and
// configured exactly as the writer was — engine kind, shard count,
// correlator set, ruleset and config are validated against the header
// with descriptive errors. The entire checkpoint is decoded and
// validated before anything installs, so a corrupt checkpoint leaves the
// engine untouched. Shards recorded as healthy are rehydrated on their
// own goroutines (the restore marker orders the install before any
// subsequent work); shards recorded as failed come back quarantined with
// their published results intact.
func (s *ShardedEngine) RestoreSnapshot(data []byte) error {
	if s.frames.Load() != 0 {
		return fmt.Errorf("core: restore requires a fresh engine (this one already routed %d frames)", s.frames.Load())
	}
	h, r, err := openSnapshot(data)
	if err != nil {
		return err
	}
	if err := validateSnapHeader(h, s.header()); err != nil {
		return err
	}
	rs := s.decodeRouter(r)
	wrs := make([]*workerRestore, len(s.workers))
	for i := range s.workers {
		wrs[i] = s.decodeWorker(r, s.workers[i])
		if r.err != nil {
			return r.err
		}
	}
	if r.err != nil {
		return r.err
	}
	if !r.done() {
		return fmt.Errorf("core: snapshot corrupt (%d trailing bytes)", r.remaining())
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("core: restore: engine is closed")
	}
	s.installRouterLocked(rs)
	acks := make([]chan struct{}, len(s.workers))
	for i, wr := range wrs {
		wk := s.workers[i]
		wk.routedF.Store(wr.routed)
		wk.processedF.Store(wr.processed)
		wk.shedFrames.Store(wr.shedF)
		wk.shedBatches.Store(wr.shedB)
		if wr.state == stateHealthy {
			acks[i] = make(chan struct{})
			s.pending[i] = append(s.pending[i], shardItem{kind: itemRestore, restore: wr, ack: acks[i]})
			s.flushShardLocked(i)
			continue
		}
		// Failed shard: its engine is (and stays) quiescent; install the
		// published results directly and quarantine. The idle worker
		// goroutine synchronizes on resMu, and the state store makes it
		// drain anything that arrives later — exactly the behavior the
		// original quarantined shard had.
		wk.state.Store(wr.state)
		wk.resMu.Lock()
		wk.base = copyResults(wr.pub)
		wk.pubVer = 0
		wk.pubEvict = 0
		wk.pub = copyResults(wr.pub)
		wk.resMu.Unlock()
	}
	s.mu.Unlock()
	for i, ack := range acks {
		if ack != nil {
			awaitAck(s.workers[i], ack)
		}
	}
	return nil
}
