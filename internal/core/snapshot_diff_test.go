package core_test

// Kill/restore differential harness: a run that is interrupted at an
// arbitrary frame boundary, checkpointed, and resumed in a fresh process
// must produce the exact alert/event/stats stream of an uninterrupted
// run. This is the correctness proof for the checkpoint/restore
// subsystem (snapshot.go, snapshot_sharded.go) across every scenario the
// repo knows, for the serial engine and for 1/2/8-shard sharded engines,
// at a sweep of kill points.

import (
	"fmt"
	"testing"

	"scidive/internal/core"
	"scidive/internal/experiments"
)

// killFractions positions the kill point across the whole trace: early
// (registration/setup in flight), mid-dialog, and late (teardown and
// post-BYE media in flight).
var killFractions = []float64{1.0 / 6, 1.0 / 3, 1.0 / 2, 2.0 / 3, 5.0 / 6}

// shortKillFractions and shortKillScenarios gate the sweep in -short
// mode to the scenarios that exercise the most checkpoint surface:
// stateful cross-protocol dialogs (bye), pending RTCP-BYE state
// (rtcpbye), in-flight IP reassembly (fragflood), and cross-dialog
// correlator state (optionsscan).
var shortKillFractions = []float64{1.0 / 3, 2.0 / 3}

var shortKillScenarios = map[string]bool{
	"bye": true, "rtcpbye": true, "fragflood": true, "optionsscan": true,
}

// killPoints converts the fraction sweep into distinct frame indices in
// [1, n-1] so the resumed engine always has frames on both sides of the
// checkpoint.
func killPoints(n int, fractions []float64) []int {
	seen := make(map[int]bool)
	var pts []int
	for _, f := range fractions {
		k := int(f * float64(n))
		if k < 1 {
			k = 1
		}
		if k > n-1 {
			k = n - 1
		}
		if !seen[k] {
			seen[k] = true
			pts = append(pts, k)
		}
	}
	return pts
}

// runSerialKillRestore feeds frames[:k] into a serial engine, snapshots
// it, restores the snapshot into a brand-new engine (the "restarted
// process"), and feeds the rest there.
func runSerialKillRestore(t *testing.T, frames []rec, k int, cfg core.Config) ([]core.Alert, []core.Event, core.EngineStats) {
	t.Helper()
	a := core.NewEngine(cfg, core.WithEventLog())
	for _, r := range frames[:k] {
		a.HandleFrame(r.at, r.frame)
	}
	snap, err := a.Snapshot()
	if err != nil {
		t.Fatalf("serial snapshot at frame %d: %v", k, err)
	}
	b := core.NewEngine(cfg, core.WithEventLog())
	if err := b.RestoreSnapshot(snap); err != nil {
		t.Fatalf("serial restore at frame %d: %v", k, err)
	}
	for _, r := range frames[k:] {
		b.HandleFrame(r.at, r.frame)
	}
	return b.Alerts(), b.Events(), b.Stats()
}

// runShardedKillRestore is the sharded analogue: the first engine is
// Closed after the snapshot (the crash), and the resumed engine's
// per-shard ledgers must still reconcile at the end.
func runShardedKillRestore(t *testing.T, frames []rec, shards, k int, cfg core.Config) ([]core.Alert, []core.Event, core.EngineStats) {
	t.Helper()
	a := core.NewShardedEngine(cfg, shards, core.WithEventLog())
	for _, r := range frames[:k] {
		a.HandleFrame(r.at, r.frame)
	}
	snap, err := a.Snapshot()
	if err != nil {
		a.Close()
		t.Fatalf("sharded snapshot at frame %d: %v", k, err)
	}
	a.Close()
	b := core.NewShardedEngine(cfg, shards, core.WithEventLog())
	defer b.Close()
	if err := b.RestoreSnapshot(snap); err != nil {
		t.Fatalf("sharded restore at frame %d: %v", k, err)
	}
	for _, r := range frames[k:] {
		b.HandleFrame(r.at, r.frame)
	}
	b.Flush()
	for _, h := range b.ShardHealth() {
		if h.FramesRouted != h.FramesProcessed+h.FramesShed {
			t.Errorf("shard %d ledger does not reconcile after restore: routed=%d processed=%d shed=%d",
				h.Shard, h.FramesRouted, h.FramesProcessed, h.FramesShed)
		}
	}
	return b.Alerts(), b.Events(), b.Stats()
}

// compareToBaseline asserts a kill/restore run is byte-identical (under
// the Footprint-free keys) to the uninterrupted baseline.
func compareToBaseline(t *testing.T, label string,
	gotAlerts []core.Alert, gotEvents []core.Event, gotStats core.EngineStats,
	wantAlerts []core.Alert, wantEvents []core.Event, wantStats core.EngineStats) {
	t.Helper()
	if len(gotEvents) != len(wantEvents) {
		t.Errorf("%s: %d events, uninterrupted run has %d", label, len(gotEvents), len(wantEvents))
	} else {
		for i := range wantEvents {
			if eventKey(gotEvents[i]) != eventKey(wantEvents[i]) {
				t.Errorf("%s: event %d = %s, want %s", label, i, eventKey(gotEvents[i]), eventKey(wantEvents[i]))
				break
			}
		}
	}
	if len(gotAlerts) != len(wantAlerts) {
		t.Errorf("%s: %d alerts, uninterrupted run has %d\n got: %v\nwant: %v",
			label, len(gotAlerts), len(wantAlerts), alertKeys(gotAlerts), alertKeys(wantAlerts))
	} else {
		for i := range wantAlerts {
			if alertKey(gotAlerts[i]) != alertKey(wantAlerts[i]) {
				t.Errorf("%s: alert %d = %s, want %s", label, i, alertKey(gotAlerts[i]), alertKey(wantAlerts[i]))
				break
			}
		}
	}
	if gotStats != wantStats {
		t.Errorf("%s: stats %+v, uninterrupted %+v", label, gotStats, wantStats)
	}
}

// TestKillRestoreDifferential is the headline proof: every scenario ×
// {serial, 1, 2, 8 shards} × a sweep of kill points, crash → restore →
// resume must equal the uninterrupted run exactly.
func TestKillRestoreDifferential(t *testing.T) {
	fractions := killFractions
	if testing.Short() {
		fractions = shortKillFractions
	}
	for _, name := range experiments.ScenarioNames() {
		if testing.Short() && !shortKillScenarios[name] {
			continue
		}
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			frames := scenarioFrames(t, name, 7)
			points := killPoints(len(frames), fractions)

			wantAlerts, wantEvents, wantStats := runSerialCfg(frames, core.Config{})
			for _, k := range points {
				gotAlerts, gotEvents, gotStats := runSerialKillRestore(t, frames, k, core.Config{})
				compareToBaseline(t, fmt.Sprintf("%s serial kill@%d/%d", name, k, len(frames)),
					gotAlerts, gotEvents, gotStats, wantAlerts, wantEvents, wantStats)
			}

			for _, shards := range diffShardCounts {
				wantA, wantE, wantS := runShardedCfg(frames, shards, core.Config{})
				for _, k := range points {
					gotA, gotE, gotS := runShardedKillRestore(t, frames, shards, k, core.Config{})
					compareToBaseline(t, fmt.Sprintf("%s shards=%d kill@%d/%d", name, shards, k, len(frames)),
						gotA, gotE, gotS, wantA, wantE, wantS)
				}
			}
		})
	}
}

// TestKillRestoreMidStream pins the checkpoint between the two TCP
// segments of one SIP message: the tcptrunk-split scenario cuts every
// message mid-header across segments, so after the first segment the
// stream mux holds bytes that are not yet a message. A checkpoint taken
// there must carry the partial framing state (snapshot v4's stream
// section) for the resumed engine to complete the message — this is the
// state a fraction-sweep kill point is not guaranteed to land on, so
// every such index is exercised explicitly, serial and sharded.
func TestKillRestoreMidStream(t *testing.T) {
	frames := scenarioFrames(t, "tcptrunk-split", 7)

	// Locate every frame boundary where a partial message is buffered.
	probe := core.NewEngine(core.Config{})
	var points []int
	for i, r := range frames {
		probe.HandleFrame(r.at, r.frame)
		if i+1 < len(frames) && probe.StreamMuxBuffered() {
			points = append(points, i+1)
		}
	}
	if len(points) == 0 {
		t.Fatal("tcptrunk-split never left a partial message buffered; the scenario no longer splits messages")
	}

	wantAlerts, wantEvents, wantStats := runSerialCfg(frames, core.Config{})
	for _, k := range points {
		gotAlerts, gotEvents, gotStats := runSerialKillRestore(t, frames, k, core.Config{})
		compareToBaseline(t, fmt.Sprintf("mid-stream serial kill@%d/%d", k, len(frames)),
			gotAlerts, gotEvents, gotStats, wantAlerts, wantEvents, wantStats)
	}
	for _, shards := range diffShardCounts {
		wantA, wantE, wantS := runShardedCfg(frames, shards, core.Config{})
		for _, k := range points {
			gotA, gotE, gotS := runShardedKillRestore(t, frames, shards, k, core.Config{})
			compareToBaseline(t, fmt.Sprintf("mid-stream shards=%d kill@%d/%d", shards, k, len(frames)),
				gotA, gotE, gotS, wantA, wantE, wantS)
		}
	}
}

// TestKillRestoreSynthetic drives the kill/restore sweep over the
// seeded random workload (concurrent calls, port reuse, fragmentation,
// junk) so checkpoint coverage is not limited to the curated scenarios.
func TestKillRestoreSynthetic(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: scenario sweep covers the format")
	}
	frames := synthFrames(21)
	points := killPoints(len(frames), killFractions)
	wantAlerts, wantEvents, wantStats := runSerialCfg(frames, core.Config{})
	for _, k := range points {
		gotA, gotE, gotS := runSerialKillRestore(t, frames, k, core.Config{})
		compareToBaseline(t, fmt.Sprintf("synth serial kill@%d", k), gotA, gotE, gotS, wantAlerts, wantEvents, wantStats)
	}
	for _, shards := range diffShardCounts {
		wantA, wantE, wantS := runShardedCfg(frames, shards, core.Config{})
		for _, k := range points {
			gotA, gotE, gotS := runShardedKillRestore(t, frames, shards, k, core.Config{})
			compareToBaseline(t, fmt.Sprintf("synth shards=%d kill@%d", shards, k), gotA, gotE, gotS, wantA, wantE, wantS)
		}
	}
}

// TestKillRestoreWithLimits checkpoints an engine whose state budgets
// (session cap, binding cap, IM/RTP tracker caps, frag-group cap) are
// under pressure, so LRU order, eviction counters and phantom trail
// lengths all cross the snapshot boundary.
func TestKillRestoreWithLimits(t *testing.T) {
	cfg := core.Config{Limits: core.Limits{
		MaxSessions:    8,
		MaxBindings:    4,
		MaxIMHistories: 4,
		MaxSeqTrackers: 4,
		MaxFragGroups:  2,
	}}
	for _, name := range []string{"flood", "guess", "fragflood", "rtpblast", "inviteflood"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			frames := scenarioFrames(t, name, 7)
			points := killPoints(len(frames), shortKillFractions)
			wantAlerts, wantEvents, wantStats := runSerialCfg(frames, cfg)
			for _, k := range points {
				gotA, gotE, gotS := runSerialKillRestore(t, frames, k, cfg)
				compareToBaseline(t, fmt.Sprintf("%s limits serial kill@%d", name, k), gotA, gotE, gotS, wantAlerts, wantEvents, wantStats)
			}
			for _, shards := range diffShardCounts {
				wantA, wantE, wantS := runShardedCfg(frames, shards, cfg)
				for _, k := range points {
					gotA, gotE, gotS := runShardedKillRestore(t, frames, shards, k, cfg)
					compareToBaseline(t, fmt.Sprintf("%s limits shards=%d kill@%d", name, shards, k), gotA, gotE, gotS, wantA, wantE, wantS)
				}
			}
		})
	}
}

// TestKillRestoreExpiry crosses the checkpoint boundary with the
// session-expiry sweep active (gc counters, expirer state).
func TestKillRestoreExpiry(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	frames := expiryFrames(5)
	cfg := core.Config{SessionTimeout: 2 * 1e9} // 2s virtual
	points := killPoints(len(frames), killFractions)
	wantAlerts, wantEvents, wantStats := runSerialCfg(frames, cfg)
	for _, k := range points {
		gotA, gotE, gotS := runSerialKillRestore(t, frames, k, cfg)
		compareToBaseline(t, fmt.Sprintf("expiry serial kill@%d", k), gotA, gotE, gotS, wantAlerts, wantEvents, wantStats)
	}
	for _, shards := range diffShardCounts {
		wantA, wantE, wantS := runShardedCfg(frames, shards, cfg)
		for _, k := range points {
			gotA, gotE, gotS := runShardedKillRestore(t, frames, shards, k, cfg)
			compareToBaseline(t, fmt.Sprintf("expiry shards=%d kill@%d", shards, k), gotA, gotE, gotS, wantA, wantE, wantS)
		}
	}
}

// TestKillRestoreEveryFrame exhaustively kills one compact stateful
// scenario at EVERY frame boundary — the strongest single-scenario
// statement that no frame position leaves unserializable state behind.
func TestKillRestoreEveryFrame(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: fraction sweep covers this")
	}
	frames := scenarioFrames(t, "bye", 7)
	wantAlerts, wantEvents, wantStats := runSerialCfg(frames, core.Config{})
	for k := 1; k < len(frames); k++ {
		gotA, gotE, gotS := runSerialKillRestore(t, frames, k, core.Config{})
		compareToBaseline(t, fmt.Sprintf("bye serial kill@%d", k), gotA, gotE, gotS, wantAlerts, wantEvents, wantStats)
	}
	wantA, wantE, wantS := runShardedCfg(frames, 2, core.Config{})
	for k := 1; k < len(frames); k++ {
		gotA, gotE, gotS := runShardedKillRestore(t, frames, 2, k, core.Config{})
		compareToBaseline(t, fmt.Sprintf("bye shards=2 kill@%d", k), gotA, gotE, gotS, wantA, wantE, wantS)
	}
}

// TestSnapshotDoubleResume checkpoints twice — crash, resume, crash
// again, resume again — proving a restored engine is itself a valid
// checkpoint source.
func TestSnapshotDoubleResume(t *testing.T) {
	frames := scenarioFrames(t, "billing", 7)
	if len(frames) < 6 {
		t.Fatalf("scenario too short: %d frames", len(frames))
	}
	k1, k2 := len(frames)/3, 2*len(frames)/3

	wantAlerts, wantEvents, wantStats := runSerialCfg(frames, core.Config{})
	a := core.NewEngine(core.Config{}, core.WithEventLog())
	for _, r := range frames[:k1] {
		a.HandleFrame(r.at, r.frame)
	}
	snap1, err := a.Snapshot()
	if err != nil {
		t.Fatalf("first snapshot: %v", err)
	}
	b := core.NewEngine(core.Config{}, core.WithEventLog())
	if err := b.RestoreSnapshot(snap1); err != nil {
		t.Fatalf("first restore: %v", err)
	}
	for _, r := range frames[k1:k2] {
		b.HandleFrame(r.at, r.frame)
	}
	snap2, err := b.Snapshot()
	if err != nil {
		t.Fatalf("second snapshot: %v", err)
	}
	c := core.NewEngine(core.Config{}, core.WithEventLog())
	if err := c.RestoreSnapshot(snap2); err != nil {
		t.Fatalf("second restore: %v", err)
	}
	for _, r := range frames[k2:] {
		c.HandleFrame(r.at, r.frame)
	}
	compareToBaseline(t, "billing double-resume", c.Alerts(), c.Events(), c.Stats(), wantAlerts, wantEvents, wantStats)

	wantA, wantE, wantS := runShardedCfg(frames, 2, core.Config{})
	sa := core.NewShardedEngine(core.Config{}, 2, core.WithEventLog())
	for _, r := range frames[:k1] {
		sa.HandleFrame(r.at, r.frame)
	}
	ssnap1, err := sa.Snapshot()
	sa.Close()
	if err != nil {
		t.Fatalf("first sharded snapshot: %v", err)
	}
	sb := core.NewShardedEngine(core.Config{}, 2, core.WithEventLog())
	if err := sb.RestoreSnapshot(ssnap1); err != nil {
		sb.Close()
		t.Fatalf("first sharded restore: %v", err)
	}
	for _, r := range frames[k1:k2] {
		sb.HandleFrame(r.at, r.frame)
	}
	ssnap2, err := sb.Snapshot()
	sb.Close()
	if err != nil {
		t.Fatalf("second sharded snapshot: %v", err)
	}
	sc := core.NewShardedEngine(core.Config{}, 2, core.WithEventLog())
	defer sc.Close()
	if err := sc.RestoreSnapshot(ssnap2); err != nil {
		t.Fatalf("second sharded restore: %v", err)
	}
	for _, r := range frames[k2:] {
		sc.HandleFrame(r.at, r.frame)
	}
	sc.Flush()
	compareToBaseline(t, "billing sharded double-resume", sc.Alerts(), sc.Events(), sc.Stats(), wantA, wantE, wantS)
}

// TestSnapshotDeterministic: snapshotting the same engine state twice
// yields identical bytes — the property the format's sorted-key
// serialization exists to provide.
func TestSnapshotDeterministic(t *testing.T) {
	frames := scenarioFrames(t, "hijack", 7)
	k := len(frames) / 2
	eng := core.NewEngine(core.Config{}, core.WithEventLog())
	for _, r := range frames[:k] {
		eng.HandleFrame(r.at, r.frame)
	}
	s1, err := eng.Snapshot()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	s2, err := eng.Snapshot()
	if err != nil {
		t.Fatalf("second snapshot: %v", err)
	}
	if string(s1) != string(s2) {
		t.Fatalf("serial snapshot is not deterministic: %d vs %d bytes", len(s1), len(s2))
	}

	sh := core.NewShardedEngine(core.Config{}, 2, core.WithEventLog())
	defer sh.Close()
	for _, r := range frames[:k] {
		sh.HandleFrame(r.at, r.frame)
	}
	p1, err := sh.Snapshot()
	if err != nil {
		t.Fatalf("sharded snapshot: %v", err)
	}
	p2, err := sh.Snapshot()
	if err != nil {
		t.Fatalf("second sharded snapshot: %v", err)
	}
	if string(p1) != string(p2) {
		t.Fatalf("sharded snapshot is not deterministic: %d vs %d bytes", len(p1), len(p2))
	}
}

// TestPeekSnapshotInfo checks the header peek used by the CLI to decide
// how many frames to skip on -resume.
func TestPeekSnapshotInfo(t *testing.T) {
	frames := scenarioFrames(t, "bye", 7)
	k := len(frames) / 2

	eng := core.NewEngine(core.Config{}, core.WithEventLog())
	for _, r := range frames[:k] {
		eng.HandleFrame(r.at, r.frame)
	}
	snap, err := eng.Snapshot()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	info, err := core.PeekSnapshotInfo(snap)
	if err != nil {
		t.Fatalf("peek: %v", err)
	}
	if info.Sharded || info.Shards != 1 || info.Frames != uint64(k) {
		t.Fatalf("serial peek = %+v, want serial with %d frames", info, k)
	}

	sh := core.NewShardedEngine(core.Config{}, 4, core.WithEventLog())
	for _, r := range frames[:k] {
		sh.HandleFrame(r.at, r.frame)
	}
	ssnap, err := sh.Snapshot()
	sh.Close()
	if err != nil {
		t.Fatalf("sharded snapshot: %v", err)
	}
	sinfo, err := core.PeekSnapshotInfo(ssnap)
	if err != nil {
		t.Fatalf("sharded peek: %v", err)
	}
	if !sinfo.Sharded || sinfo.Shards != 4 || sinfo.Frames != uint64(k) {
		t.Fatalf("sharded peek = %+v, want sharded/4 with %d frames", sinfo, k)
	}
}
