package core

import (
	"net/netip"
	"time"

	"scidive/internal/packet"
	"scidive/internal/sip"
)

// streamKind distinguishes what a stream-extracted queue entry carries.
type streamKind uint8

const (
	// streamKindMsg is a complete framed SIP message.
	streamKindMsg streamKind = iota
	// streamKindTunnel is a reassembled chunk whose content confirmed as
	// a media packet (RTP/RTCP) tunneled over the SIP-claimed stream —
	// the chunk bypassed SIP framing entirely (see classifyLadder's
	// tunnelSniff).
	streamKindTunnel
)

// streamMsg is one complete SIP message (or tunneled media chunk)
// extracted from a TCP stream. The payload aliases the flow framer's (or
// reassembler's) internal buffer, so it is only valid until that flow's
// next Push — consumers that retain bytes (the sharded router shipping
// to a worker) must copy.
type streamMsg struct {
	at       time.Duration
	src, dst netip.AddrPort
	payload  []byte
	kind     streamKind
}

// streamMux is the stream-transport demux: a TCP stream reassembler plus
// one SIP message framer per stream direction. TCP segments go in; zero
// or more complete SIP messages come out on the queue, in stream order.
// The serial engine's distiller owns one, and the sharded engine's router
// owns one — shard-local engines hold none (TCP frames never reach a
// shard; the router ships extracted messages instead), which is what
// keeps stream expiry and eviction identical at every shard count.
type streamMux struct {
	reasm   *packet.StreamReassembler
	framers map[packet.StreamID]*sip.StreamFramer
	queue   []streamMsg
	qhead   int // consumed prefix of queue, reset when it empties

	// now is the current push's clock, captured so the reassembler's
	// eviction callback can stamp self-alerts with the eviction time.
	now     time.Duration
	onEvict func(id packet.StreamID, at time.Duration)

	// sniff, when set, inspects each reassembled chunk arriving while the
	// direction's framer holds no partial message: a chunk confirming as
	// media content (RTP/RTCP tunneled over the SIP stream) is queued as a
	// streamKindTunnel entry instead of being fed to the SIP framer, where
	// its binary bytes would only poison the framing buffer.
	sniff func(chunk []byte) (Protocol, bool)
}

func newStreamMux() *streamMux {
	m := &streamMux{
		reasm:   packet.NewStreamReassembler(0),
		framers: make(map[packet.StreamID]*sip.StreamFramer),
	}
	// Reassembler teardown (capacity eviction or idle expiry) discards the
	// direction's framing buffer too: a stream that lost reassembly state
	// mid-message can never complete that message.
	m.reasm.OnEvict(func(id packet.StreamID) {
		delete(m.framers, id)
		if m.onEvict != nil {
			m.onEvict(id, m.now)
		}
	})
	m.reasm.OnExpire(func(id packet.StreamID) {
		delete(m.framers, id)
	})
	return m
}

// push feeds one TCP segment through reassembly and framing. Extracted
// messages accumulate on the queue for drain.
func (m *streamMux) push(at time.Duration, src, dst netip.AddrPort, h packet.TCPHeader, payload []byte) {
	m.now = at
	if m.qhead == len(m.queue) {
		m.queue, m.qhead = m.queue[:0], 0
	}
	id := packet.StreamID{Src: src, Dst: dst}
	fr := m.framers[id]
	if fr == nil {
		fr = new(sip.StreamFramer)
		m.framers[id] = fr
	}
	closed := m.reasm.Push(id, h, payload, at, func(b []byte) {
		if m.sniff != nil && fr.PendingBytes() == 0 {
			if _, ok := m.sniff(b); ok {
				m.queue = append(m.queue, streamMsg{at: at, src: src, dst: dst, payload: b, kind: streamKindTunnel})
				return
			}
		}
		fr.Push(b, func(msg []byte) {
			m.queue = append(m.queue, streamMsg{at: at, src: src, dst: dst, payload: msg})
		})
	})
	if closed {
		delete(m.framers, id)
	}
}

// drain returns the extracted messages pending since the last drain. The
// returned slice (and each payload) is valid until the next push.
func (m *streamMux) drain() []streamMsg {
	out := m.queue[m.qhead:]
	m.qhead = len(m.queue)
	return out
}

// next pops the oldest pending message, reporting ok=false when none are
// pending. The message payload is valid until the flow's next push.
func (m *streamMux) next() (streamMsg, bool) {
	if m.qhead == len(m.queue) {
		return streamMsg{}, false
	}
	msg := m.queue[m.qhead]
	m.qhead++
	return msg, true
}

// streamFlowKey is the routing key for stream-carried SIP: the canonical
// (direction-independent) TCP 4-tuple. Routing by flow rather than by
// Call-ID keeps every segment — and therefore every extracted message —
// of one stream on one shard, so merge tags of coalesced messages stay
// ordered; the sticky table then pins each dialog's media to the same
// key.
func streamFlowKey(a, b netip.AddrPort) string {
	if addrPortLess(b, a) {
		a, b = b, a
	}
	return "tcp:" + a.String() + "|" + b.String()
}

func addrPortLess(a, b netip.AddrPort) bool {
	if c := a.Addr().Compare(b.Addr()); c != 0 {
		return c < 0
	}
	return a.Port() < b.Port()
}
