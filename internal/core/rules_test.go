package core

import (
	"testing"
	"time"
)

func ev(t EventType, session string, at time.Duration) Event {
	return Event{At: at, Type: t, Session: session}
}

func TestSingleStepRule(t *testing.T) {
	re := NewRuleEngine([]Rule{{
		Name: "r1", Severity: SeverityWarning,
		Steps: []Step{{Type: EvRTPSeqJump}},
	}})
	if got := re.Feed(ev(EvRTPNewFlow, "s", 0)); len(got) != 0 {
		t.Fatalf("non-matching event fired: %v", got)
	}
	got := re.Feed(ev(EvRTPSeqJump, "s", time.Second))
	if len(got) != 1 || got[0].Rule != "r1" {
		t.Fatalf("alerts = %v", got)
	}
}

func TestOrderedSequenceRule(t *testing.T) {
	re := NewRuleEngine([]Rule{{
		Name:  "seq",
		Steps: []Step{{Type: EvSIPBye}, {Type: EvRTPAfterBye}},
	}})
	// Out of order: the RTP event first must not fire or corrupt state.
	if got := re.Feed(ev(EvRTPAfterBye, "s", 0)); len(got) != 0 {
		t.Fatal("fired on out-of-order event")
	}
	if got := re.Feed(ev(EvSIPBye, "s", time.Second)); len(got) != 0 {
		t.Fatal("fired on first step alone")
	}
	got := re.Feed(ev(EvRTPAfterBye, "s", 2*time.Second))
	if len(got) != 1 {
		t.Fatalf("alerts = %v", got)
	}
	if n := len(got[0].Events); n != 2 {
		t.Errorf("alert carries %d events, want 2", n)
	}
}

func TestSessionIsolation(t *testing.T) {
	re := NewRuleEngine([]Rule{{
		Name:  "seq",
		Steps: []Step{{Type: EvSIPBye}, {Type: EvRTPAfterBye}},
	}})
	re.Feed(ev(EvSIPBye, "session-1", 0))
	// The completing event belongs to another session: no alert.
	if got := re.Feed(ev(EvRTPAfterBye, "session-2", time.Millisecond)); len(got) != 0 {
		t.Fatalf("cross-session match: %v", got)
	}
	if got := re.Feed(ev(EvRTPAfterBye, "session-1", time.Millisecond)); len(got) != 1 {
		t.Fatalf("same-session match missing: %v", got)
	}
}

func TestWindowExpiry(t *testing.T) {
	re := NewRuleEngine([]Rule{{
		Name:   "win",
		Steps:  []Step{{Type: EvSIPBye}, {Type: EvRTPAfterBye}},
		Window: time.Second,
	}})
	re.Feed(ev(EvSIPBye, "s", 0))
	if got := re.Feed(ev(EvRTPAfterBye, "s", 2*time.Second)); len(got) != 0 {
		t.Fatalf("fired outside window: %v", got)
	}
	// A fresh sequence still works.
	re.Feed(ev(EvSIPBye, "s", 3*time.Second))
	if got := re.Feed(ev(EvRTPAfterBye, "s", 3500*time.Millisecond)); len(got) != 1 {
		t.Fatalf("fresh in-window sequence missed: %v", got)
	}
}

func TestUnorderedRule(t *testing.T) {
	steps := []Step{{Type: EvSIPBadFormat}, {Type: EvAcctUnmatched}, {Type: EvRTPUnmatchedMedia}}
	permutations := [][]EventType{
		{EvSIPBadFormat, EvAcctUnmatched, EvRTPUnmatchedMedia},
		{EvRTPUnmatchedMedia, EvSIPBadFormat, EvAcctUnmatched},
		{EvAcctUnmatched, EvRTPUnmatchedMedia, EvSIPBadFormat},
	}
	for i, perm := range permutations {
		re := NewRuleEngine([]Rule{{Name: "u", Steps: steps, Unordered: true}})
		var fired int
		for j, et := range perm {
			got := re.Feed(ev(et, "s", time.Duration(j)*time.Millisecond))
			fired += len(got)
		}
		if fired != 1 {
			t.Errorf("permutation %d fired %d times, want 1", i, fired)
		}
	}
}

func TestUnorderedDoesNotDoubleCount(t *testing.T) {
	re := NewRuleEngine([]Rule{{
		Name: "u", Unordered: true,
		Steps: []Step{{Type: EvSIPBadFormat}, {Type: EvAcctUnmatched}},
	}})
	// Two bad-format events then one unmatched: the duplicate must not
	// satisfy the second step.
	re.Feed(ev(EvSIPBadFormat, "s", 0))
	if got := re.Feed(ev(EvSIPBadFormat, "s", 1)); len(got) != 0 {
		t.Fatal("duplicate event completed the rule")
	}
	if got := re.Feed(ev(EvAcctUnmatched, "s", 2)); len(got) != 1 {
		t.Fatal("rule did not complete")
	}
}

func TestAlertDedupCounts(t *testing.T) {
	re := NewRuleEngine([]Rule{{Name: "d", Steps: []Step{{Type: EvRTPGarbage}}}})
	for i := 0; i < 5; i++ {
		re.Feed(ev(EvRTPGarbage, "s", time.Duration(i)))
	}
	alerts := re.Alerts()
	if len(alerts) != 1 {
		t.Fatalf("alerts = %d, want 1 (deduped)", len(alerts))
	}
	if alerts[0].Count != 5 {
		t.Errorf("Count = %d, want 5", alerts[0].Count)
	}
	// Different session: separate alert.
	re.Feed(ev(EvRTPGarbage, "other", 0))
	if len(re.Alerts()) != 2 {
		t.Error("second session did not get its own alert")
	}
}

func TestStepPredicates(t *testing.T) {
	re := NewRuleEngine([]Rule{{
		Name: "p",
		Steps: []Step{{
			Type:  EvSIPBye,
			Where: func(e Event) bool { return e.Detail == "match-me" },
		}},
	}})
	if got := re.Feed(Event{Type: EvSIPBye, Session: "s", Detail: "nope"}); len(got) != 0 {
		t.Fatal("predicate ignored")
	}
	if got := re.Feed(Event{Type: EvSIPBye, Session: "s", Detail: "match-me"}); len(got) != 1 {
		t.Fatal("predicate match missed")
	}
}

func TestOnAlertCallback(t *testing.T) {
	re := NewRuleEngine([]Rule{{Name: "cb", Steps: []Step{{Type: EvRTPGarbage}}}})
	var calls int
	re.OnAlert(func(Alert) { calls++ })
	re.Feed(ev(EvRTPGarbage, "s", 0))
	re.Feed(ev(EvRTPGarbage, "s", 1)) // suppressed repeat
	if calls != 1 {
		t.Errorf("OnAlert called %d times, want 1 (repeats suppressed)", calls)
	}
}

func TestRuleByName(t *testing.T) {
	rules := DefaultRuleset()
	if _, ok := RuleByName(rules, RuleByeAttack); !ok {
		t.Error("bye-attack rule missing from default ruleset")
	}
	if _, ok := RuleByName(rules, "no-such-rule"); ok {
		t.Error("found a rule that should not exist")
	}
}

func TestDefaultRulesetClassification(t *testing.T) {
	// Table 1's classification: all four attack rules are cross-protocol;
	// BYE, hijack, and RTP rules are stateful; fake-IM is not stateful.
	rules := DefaultRuleset()
	checks := []struct {
		name          string
		crossProtocol bool
		stateful      bool
	}{
		{RuleByeAttack, true, true},
		{RuleCallHijack, true, true},
		{RuleFakeIM, true, false},
		{RuleRTPSeqJump, true, true},
		{RuleBillingFraud, true, true},
	}
	for _, c := range checks {
		r, ok := RuleByName(rules, c.name)
		if !ok {
			t.Errorf("rule %q missing", c.name)
			continue
		}
		if r.CrossProtocol != c.crossProtocol || r.Stateful != c.stateful {
			t.Errorf("%s: cross=%v stateful=%v, want %v/%v",
				c.name, r.CrossProtocol, r.Stateful, c.crossProtocol, c.stateful)
		}
	}
}

func TestSeverityAndEventTypeStrings(t *testing.T) {
	if SeverityCritical.String() != "critical" || Severity(0).String() != "unknown" {
		t.Error("Severity.String mismatch")
	}
	types := []EventType{
		EvSIPRegister, EvSIPAuthChallenge, EvSIPRegisterOK, EvSIPInvite,
		EvSIPCallEstablished, EvSIPBye, EvSIPReinvite, EvSIPInstantMessage,
		EvRTPNewFlow, EvAcctStart, EvAcctStop, EvSIPBadFormat,
		EvIMSourceMismatch, EvRTPAfterBye, EvRTPAfterReinvite, EvRTPSeqJump,
		EvRTPBadSource, EvRTPGarbage, EvAuthFlood, EvPasswordGuessing,
		EvAcctUnmatched, EvRTPUnmatchedMedia,
	}
	seen := map[string]bool{}
	for _, typ := range types {
		s := typ.String()
		if seen[s] {
			t.Errorf("duplicate event type name %q", s)
		}
		seen[s] = true
	}
}
