package core

import (
	"fmt"
	"net/netip"
	"strconv"
	"time"

	"scidive/internal/accounting"
	"scidive/internal/packet"
	"scidive/internal/rtp"
	"scidive/internal/sip"
)

// DistillerStats counts distillation activity.
type DistillerStats struct {
	Frames      int
	Fragments   int // IP fragments buffered toward reassembly
	DecodeError int // frames undecodable at the IP/UDP layer
	SIP         int
	RTP         int
	RTCP        int
	Acct        int
	Raw         int // VoIP-port traffic that failed protocol decode
	Ignored     int // traffic outside the monitored port set
}

// Distiller translates raw frames into Footprints: Ethernet and IPv4
// decoding, fragment reassembly, UDP demultiplexing, and protocol
// classification (paper Section 3.1).
type Distiller struct {
	reasm *packet.Reassembler
	stats DistillerStats

	// mediaPortFloor is the lowest UDP port treated as media traffic.
	mediaPortFloor uint16
}

// defaultMediaPortFloor is the lowest UDP port treated as media traffic.
// The sharded router's port classification must match the distiller's, so
// both read this constant.
const defaultMediaPortFloor = 10000

// NewDistiller returns a Distiller with a fresh reassembly buffer.
func NewDistiller() *Distiller {
	return &Distiller{
		reasm:          packet.NewReassembler(0),
		mediaPortFloor: defaultMediaPortFloor,
	}
}

// Stats returns a snapshot of the distiller counters.
func (d *Distiller) Stats() DistillerStats { return d.stats }

// Distill processes one frame observed at the given virtual time. It
// returns the footprint extracted from the frame, or nil when the frame
// is a non-final fragment, undecodable below UDP, or outside the
// monitored ports.
func (d *Distiller) Distill(at time.Duration, frame []byte) Footprint {
	d.stats.Frames++
	ef, err := packet.UnmarshalEthernet(frame)
	if err != nil || ef.Type != packet.EtherTypeIPv4 {
		d.stats.DecodeError++
		return nil
	}
	iph, ipPayload, err := packet.UnmarshalIPv4(ef.Payload)
	if err != nil {
		d.stats.DecodeError++
		return nil
	}
	full, payload, done, err := d.reasm.Insert(iph, ipPayload, at)
	if err != nil {
		d.stats.DecodeError++
		return nil
	}
	if !done {
		d.stats.Fragments++
		return nil
	}
	if full.Protocol != packet.ProtoUDP {
		d.stats.Ignored++
		return nil
	}
	uh, udpPayload, err := packet.UnmarshalUDP(full.Src, full.Dst, payload)
	if err != nil {
		d.stats.DecodeError++
		return nil
	}
	base := FootprintBase{
		At:  at,
		Src: netip.AddrPortFrom(full.Src, uh.SrcPort),
		Dst: netip.AddrPortFrom(full.Dst, uh.DstPort),
	}
	return d.classify(base, uh, udpPayload)
}

func (d *Distiller) classify(base FootprintBase, uh packet.UDPHeader, payload []byte) Footprint {
	switch {
	case uh.DstPort == sip.DefaultPort || uh.SrcPort == sip.DefaultPort:
		return d.distillSIP(base, payload)
	case uh.DstPort == accounting.DefaultPort:
		return d.distillAcct(base, payload)
	case uh.DstPort >= d.mediaPortFloor:
		if uh.DstPort%2 == 0 {
			return d.distillRTP(base, payload)
		}
		return d.distillRTCP(base, payload)
	default:
		d.stats.Ignored++
		return nil
	}
}

func (d *Distiller) distillSIP(base FootprintBase, payload []byte) Footprint {
	m, err := sip.ParseMessage(payload)
	if err != nil {
		d.stats.Raw++
		return &RawFootprint{FootprintBase: base, OnPort: ProtoSIP, Reason: err.Error(), Len: len(payload)}
	}
	d.stats.SIP++
	return &SIPFootprint{FootprintBase: base, Msg: m, Malformed: CheckSIPFormat(m)}
}

func (d *Distiller) distillAcct(base FootprintBase, payload []byte) Footprint {
	txn, err := accounting.ParseTxn(payload)
	if err != nil {
		d.stats.Raw++
		return &RawFootprint{FootprintBase: base, OnPort: ProtoAccounting, Reason: err.Error(), Len: len(payload)}
	}
	d.stats.Acct++
	return &AcctFootprint{FootprintBase: base, Txn: txn}
}

func (d *Distiller) distillRTP(base FootprintBase, payload []byte) Footprint {
	p, err := rtp.Unmarshal(payload)
	if err != nil {
		d.stats.Raw++
		return &RawFootprint{FootprintBase: base, OnPort: ProtoRTP, Reason: err.Error(), Len: len(payload)}
	}
	d.stats.RTP++
	return &RTPFootprint{FootprintBase: base, Header: p.Header, PayloadLen: len(p.Payload)}
}

func (d *Distiller) distillRTCP(base FootprintBase, payload []byte) Footprint {
	pkts, err := rtp.UnmarshalCompound(payload)
	if err != nil {
		d.stats.Raw++
		return &RawFootprint{FootprintBase: base, OnPort: ProtoRTCP, Reason: err.Error(), Len: len(payload)}
	}
	d.stats.RTCP++
	return &RTCPFootprint{FootprintBase: base, Packets: pkts}
}

// CheckSIPFormat applies the strict well-formedness checks the IDS uses
// beyond baseline parseability. It returns a list of violations; an empty
// list means the message is clean. These catch "carefully crafted"
// messages that lenient implementations (like the simulated proxy)
// process anyway — the Section 3.2 exploit vector.
func CheckSIPFormat(m *sip.Message) []string {
	var violations []string
	for _, hdr := range []string{sip.HdrFrom, sip.HdrTo, sip.HdrCallID, sip.HdrCSeq} {
		if n := len(m.Headers.Values(hdr)); n > 1 {
			violations = append(violations, fmt.Sprintf("duplicate %s header (%d occurrences)", hdr, n))
		}
	}
	if m.IsRequest() {
		if mf := m.Headers.Get(sip.HdrMaxForwards); mf != "" {
			if n, err := strconv.Atoi(mf); err != nil || n < 0 || n > 255 {
				violations = append(violations, fmt.Sprintf("invalid Max-Forwards %q", mf))
			}
		}
		if _, err := m.From(); err != nil {
			violations = append(violations, "unparseable From: "+err.Error())
		}
		if _, err := m.To(); err != nil {
			violations = append(violations, "unparseable To: "+err.Error())
		}
	}
	return violations
}
