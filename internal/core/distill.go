package core

import (
	"fmt"
	"net/netip"
	"strconv"
	"time"

	"scidive/internal/accounting"
	"scidive/internal/packet"
	"scidive/internal/rtp"
	"scidive/internal/sip"
)

// DistillerStats counts distillation activity.
type DistillerStats struct {
	Frames      int
	Fragments   int // IP fragments buffered toward reassembly
	DecodeError int // frames undecodable at the IP/UDP layer
	SIP         int
	RTP         int
	RTCP        int
	Acct        int
	Raw         int // VoIP-port traffic that failed protocol decode
	Ignored     int // traffic outside the monitored port set
}

// Distiller translates raw frames into Footprints: Ethernet and IPv4
// decoding, fragment reassembly, UDP demultiplexing, and protocol
// classification (paper Section 3.1).
type Distiller struct {
	reasm *packet.Reassembler
	stats DistillerStats

	// claimers is the correlator set whose port claims drive protocol
	// classification (first claim in registry order wins).
	claimers []Correlator
}

// defaultMediaPortFloor is the lowest UDP port treated as media traffic
// by the rtp and rtcp correlators' port claims.
const defaultMediaPortFloor = 10000

// NewDistiller returns a Distiller classifying ports against the default
// correlator registry.
func NewDistiller() *Distiller {
	return NewDistillerFor(buildCorrelators(nil, GenConfig{}.withDefaults()))
}

// NewDistillerFor returns a Distiller whose port classification derives
// from the given correlators' port claims. NewEngine shares one
// correlator set between its distiller and its generator so the two can
// never disagree about a port's protocol.
func NewDistillerFor(correlators []Correlator) *Distiller {
	return &Distiller{
		reasm:    packet.NewReassembler(0),
		claimers: correlators,
	}
}

// Stats returns a snapshot of the distiller counters.
func (d *Distiller) Stats() DistillerStats { return d.stats }

// Distill processes one frame observed at the given virtual time. It
// returns the footprint extracted from the frame, or nil when the frame
// is a non-final fragment, undecodable below UDP, or outside the
// monitored ports.
func (d *Distiller) Distill(at time.Duration, frame []byte) Footprint {
	d.stats.Frames++
	ef, err := packet.UnmarshalEthernet(frame)
	if err != nil || ef.Type != packet.EtherTypeIPv4 {
		d.stats.DecodeError++
		return nil
	}
	iph, ipPayload, err := packet.UnmarshalIPv4(ef.Payload)
	if err != nil {
		d.stats.DecodeError++
		return nil
	}
	full, payload, done, err := d.reasm.Insert(iph, ipPayload, at)
	if err != nil {
		d.stats.DecodeError++
		return nil
	}
	if !done {
		d.stats.Fragments++
		return nil
	}
	if full.Protocol != packet.ProtoUDP {
		d.stats.Ignored++
		return nil
	}
	uh, udpPayload, err := packet.UnmarshalUDP(full.Src, full.Dst, payload)
	if err != nil {
		d.stats.DecodeError++
		return nil
	}
	base := FootprintBase{
		At:  at,
		Src: netip.AddrPortFrom(full.Src, uh.SrcPort),
		Dst: netip.AddrPortFrom(full.Dst, uh.DstPort),
	}
	return d.classify(base, uh, udpPayload)
}

func (d *Distiller) classify(base FootprintBase, uh packet.UDPHeader, payload []byte) Footprint {
	proto, claimed := claimPortOf(d.claimers, uh.SrcPort, uh.DstPort)
	if !claimed {
		d.stats.Ignored++
		return nil
	}
	switch proto {
	case ProtoSIP:
		return d.distillSIP(base, payload)
	case ProtoAccounting:
		return d.distillAcct(base, payload)
	case ProtoRTP:
		return d.distillRTP(base, payload)
	case ProtoRTCP:
		return d.distillRTCP(base, payload)
	default:
		d.stats.Ignored++
		return nil
	}
}

func (d *Distiller) distillSIP(base FootprintBase, payload []byte) Footprint {
	m, err := sip.ParseMessage(payload)
	if err != nil {
		d.stats.Raw++
		return &RawFootprint{FootprintBase: base, OnPort: ProtoSIP, Reason: err.Error(), Len: len(payload)}
	}
	d.stats.SIP++
	return &SIPFootprint{FootprintBase: base, Msg: m, Malformed: CheckSIPFormat(m)}
}

func (d *Distiller) distillAcct(base FootprintBase, payload []byte) Footprint {
	txn, err := accounting.ParseTxn(payload)
	if err != nil {
		d.stats.Raw++
		return &RawFootprint{FootprintBase: base, OnPort: ProtoAccounting, Reason: err.Error(), Len: len(payload)}
	}
	d.stats.Acct++
	return &AcctFootprint{FootprintBase: base, Txn: txn}
}

func (d *Distiller) distillRTP(base FootprintBase, payload []byte) Footprint {
	p, err := rtp.Unmarshal(payload)
	if err != nil {
		d.stats.Raw++
		return &RawFootprint{FootprintBase: base, OnPort: ProtoRTP, Reason: err.Error(), Len: len(payload)}
	}
	d.stats.RTP++
	return &RTPFootprint{FootprintBase: base, Header: p.Header, PayloadLen: len(p.Payload)}
}

func (d *Distiller) distillRTCP(base FootprintBase, payload []byte) Footprint {
	pkts, err := rtp.UnmarshalCompound(payload)
	if err != nil {
		d.stats.Raw++
		return &RawFootprint{FootprintBase: base, OnPort: ProtoRTCP, Reason: err.Error(), Len: len(payload)}
	}
	d.stats.RTCP++
	return &RTCPFootprint{FootprintBase: base, Packets: pkts}
}

// CheckSIPFormat applies the strict well-formedness checks the IDS uses
// beyond baseline parseability. It returns a list of violations; an empty
// list means the message is clean. These catch "carefully crafted"
// messages that lenient implementations (like the simulated proxy)
// process anyway — the Section 3.2 exploit vector.
func CheckSIPFormat(m *sip.Message) []string {
	var violations []string
	for _, hdr := range []string{sip.HdrFrom, sip.HdrTo, sip.HdrCallID, sip.HdrCSeq} {
		if n := len(m.Headers.Values(hdr)); n > 1 {
			violations = append(violations, fmt.Sprintf("duplicate %s header (%d occurrences)", hdr, n))
		}
	}
	if m.IsRequest() {
		if mf := m.Headers.Get(sip.HdrMaxForwards); mf != "" {
			if n, err := strconv.Atoi(mf); err != nil || n < 0 || n > 255 {
				violations = append(violations, fmt.Sprintf("invalid Max-Forwards %q", mf))
			}
		}
		if _, err := m.From(); err != nil {
			violations = append(violations, "unparseable From: "+err.Error())
		}
		if _, err := m.To(); err != nil {
			violations = append(violations, "unparseable To: "+err.Error())
		}
	}
	return violations
}
