package core

import (
	"fmt"
	"net/netip"
	"strconv"
	"time"

	"scidive/internal/accounting"
	"scidive/internal/packet"
	"scidive/internal/rtp"
	"scidive/internal/sip"
)

// DistillerStats counts distillation activity. Every input — each frame
// plus each stream-extracted message — lands in exactly one terminal
// counter, the never-silently-dropped ledger the hostile-input tests
// check:
//
//	Frames + StreamMsgs == DecodeError + Fragments + Ignored + Streamed
//	                     + SIP + RTP + RTCP + Acct + Raw + Mismatched
type DistillerStats struct {
	Frames      int
	Fragments   int // IP fragments buffered toward reassembly
	DecodeError int // frames undecodable at the IP/UDP layer
	SIP         int
	RTP         int
	RTCP        int
	Acct        int
	Raw         int // VoIP-port traffic that failed protocol decode
	Ignored     int // traffic outside the monitored port set
	Mismatched  int // frames reclassified by content confirmation (classify.go)
	Streamed    int // TCP segments accepted into the stream arm (terminal for the segment)
	StreamMsgs  int // stream-extracted messages distilled (each lands in SIP/RTP/RTCP/Raw/Mismatched)
}

// Distiller translates raw frames into Footprints: Ethernet and IPv4
// decoding, fragment reassembly, UDP demultiplexing, and protocol
// classification (paper Section 3.1).
type Distiller struct {
	reasm *packet.Reassembler
	stats DistillerStats

	// claimers is the correlator set whose port claims drive protocol
	// classification (first claim in registry order wins).
	claimers []Correlator

	// parser is the distiller-owned SIP parser: one per pipeline keeps
	// its intern table warm across every message the pipeline sees.
	parser *sip.Parser

	// frags buffers the raw frames of in-progress fragment groups on the
	// same lifetime the sharded router keeps (sharded.go routeLocked), so
	// a serial-written portable checkpoint carries everything a sharded
	// restore needs to ship completed groups to their shards. nil on
	// standalone and shard-local distillers (only the serial engine's own
	// distiller mirrors; shards receive already-grouped frames).
	frags map[fragIdent]*fragGroup

	// streams is the stream-transport demux (TCP reassembly + SIP message
	// framing). Datagram transports yield one message per payload through
	// decodeUDP as always; stream transports land zero or more complete
	// messages per frame on the mux queue, drained by NextStreamMessage.
	// nil on shard-local distillers: the sharded router owns the only
	// stream state and ships extracted messages (see sharded.go).
	streams *streamMux

	// ladder is the content-confirmation reclassification ladder derived
	// from the same correlator set as the port claims (classify.go), run
	// when a claimed protocol's decoder rejects the payload.
	ladder classifyLadder
}

// defaultMediaPortFloor is the lowest UDP port treated as media traffic
// by the rtp and rtcp correlators' port claims.
const defaultMediaPortFloor = 10000

// NewDistiller returns a Distiller classifying ports against the default
// correlator registry.
func NewDistiller() *Distiller {
	return NewDistillerFor(buildCorrelators(nil, GenConfig{}.withDefaults()))
}

// NewDistillerFor returns a Distiller whose port classification derives
// from the given correlators' port claims. NewEngine shares one
// correlator set between its distiller and its generator so the two can
// never disagree about a port's protocol.
func NewDistillerFor(correlators []Correlator) *Distiller {
	return &Distiller{
		reasm:    packet.NewReassembler(0),
		claimers: correlators,
		parser:   sip.NewParser(),
		ladder:   ladderOf(correlators),
	}
}

// Stats returns a snapshot of the distiller counters.
func (d *Distiller) Stats() DistillerStats { return d.stats }

// pruneFrags drops mirrored fragment groups on the reassembler's expiry
// schedule (see the frags field doc).
func (d *Distiller) pruneFrags(now time.Duration) {
	for k, grp := range d.frags {
		if now-grp.first > packet.DefaultReassemblyTimeout {
			delete(d.frags, k)
		}
	}
}

// decodeUDP runs the protocol-independent prelude shared by Distill and
// DistillView: Ethernet, IPv4, reassembly, and zero-copy UDP validation.
// It returns ok=false (with stats counted) when the frame produces no
// footprint, and otherwise the claimed protocol and UDP payload.
func (d *Distiller) decodeUDP(at time.Duration, frame []byte) (proto Protocol, src, dst netip.AddrPort, payload []byte, ok bool) {
	d.stats.Frames++
	ef, err := packet.UnmarshalEthernet(frame)
	if err != nil || ef.Type != packet.EtherTypeIPv4 {
		d.stats.DecodeError++
		return 0, src, dst, nil, false
	}
	iph, ipPayload, err := packet.UnmarshalIPv4(ef.Payload)
	if err != nil {
		d.stats.DecodeError++
		return 0, src, dst, nil, false
	}
	// Frame-group mirror (serial engine only, d.frags != nil): keep the
	// raw frames of in-progress fragment streams on the reassembler's
	// lifetime, exactly as the sharded router does in routeLocked, so a
	// portable checkpoint written here restores losslessly at any shard
	// count. Prune on the reassembler's expiry clock before Insert so the
	// two can never disagree about which stream a fragment belongs to.
	var fragmented bool
	var fkey fragIdent
	if d.frags != nil {
		d.pruneFrags(at)
		fragmented = iph.FragOffset != 0 || iph.MoreFragments()
		fkey = fragIdent{src: iph.Src, dst: iph.Dst, proto: iph.Protocol, id: iph.ID}
	}
	full, ipBody, done, err := d.reasm.Insert(iph, ipPayload, at)
	if err != nil {
		if d.frags != nil {
			// The reassembler creates its buffer before the oversize check
			// but after the alignment check; mirror that so group lifetimes
			// track buffer lifetimes exactly.
			alignErr := iph.FragOffset != 0 && len(ipPayload)%8 != 0 && iph.MoreFragments()
			if fragmented && !alignErr && d.frags[fkey] == nil {
				d.frags[fkey] = &fragGroup{first: at}
			}
		}
		d.stats.DecodeError++
		return 0, src, dst, nil, false
	}
	if !done {
		if d.frags != nil {
			grp := d.frags[fkey]
			if grp == nil {
				grp = &fragGroup{first: at}
				d.frags[fkey] = grp
			}
			// Copy: capture.Replay (and other feeders) may reuse the frame
			// buffer after this call returns.
			grp.frames = append(grp.frames, routedFrame{at: at, frame: append([]byte(nil), frame...)})
		}
		d.stats.Fragments++
		return 0, src, dst, nil, false
	}
	if d.frags != nil && fragmented {
		delete(d.frags, fkey)
	}
	if full.Protocol == packet.ProtoTCP {
		d.streamFrame(at, full.Src, full.Dst, ipBody)
		return 0, src, dst, nil, false
	}
	if full.Protocol != packet.ProtoUDP {
		d.stats.Ignored++
		return 0, src, dst, nil, false
	}
	uh, udpPayload, err := packet.PeekUDP(full.Src, full.Dst, ipBody)
	if err != nil {
		d.stats.DecodeError++
		return 0, src, dst, nil, false
	}
	proto, claimed := claimPortOf(d.claimers, uh.SrcPort, uh.DstPort)
	if !claimed {
		d.stats.Ignored++
		return 0, src, dst, nil, false
	}
	src = netip.AddrPortFrom(full.Src, uh.SrcPort)
	dst = netip.AddrPortFrom(full.Dst, uh.DstPort)
	return proto, src, dst, udpPayload, true
}

// streamFrame is the stream-transport arm of the demux: it validates the
// TCP segment, checks the port claim (only SIP is carried over streams
// here), and feeds the segment through the mux. Complete messages land on
// the mux queue; the frame itself produces no immediate footprint.
func (d *Distiller) streamFrame(at time.Duration, srcIP, dstIP netip.Addr, seg []byte) {
	if d.streams == nil {
		d.stats.Ignored++
		return
	}
	th, payload, err := packet.PeekTCP(srcIP, dstIP, seg)
	if err != nil {
		d.stats.DecodeError++
		return
	}
	proto, claimed := claimPortOf(d.claimers, th.SrcPort, th.DstPort)
	if !claimed || proto != ProtoSIP {
		d.stats.Ignored++
		return
	}
	d.stats.Streamed++
	src := netip.AddrPortFrom(srcIP, th.SrcPort)
	dst := netip.AddrPortFrom(dstIP, th.DstPort)
	d.streams.push(at, src, dst, th, payload)
}

// NextStreamMessage pops the next stream-extracted SIP message into v,
// reporting false when none are pending. Parsing, validation and stats
// agree with the datagram SIP arm of DistillView bit for bit; the view
// additionally carries the flow's routing key (StreamKey) so the serial
// engine pins the same sticky key the sharded router would.
func (d *Distiller) NextStreamMessage(v *FrameView) bool {
	if d.streams == nil {
		return false
	}
	msg, ok := d.streams.next()
	if !ok {
		return false
	}
	d.distillStreamMessage(msg.at, msg.src, msg.dst, msg.payload, msg.kind, v)
	return true
}

// distillStreamMessage fills v from one stream-extracted message. Shared
// by the serial drain above and the shard-side processing of
// router-shipped messages (both must count stats exactly as the datagram
// path does). Framed SIP messages that fail to parse run the same
// content-confirmation ladder as datagrams; tunnel chunks (media content
// sniffed on the SIP-claimed stream) reuse the ladder with SIP as the
// contradicted claim.
func (d *Distiller) distillStreamMessage(at time.Duration, src, dst netip.AddrPort, payload []byte, kind streamKind, v *FrameView) {
	d.stats.StreamMsgs++
	v.reset()
	v.At, v.Src, v.Dst = at, src, dst
	v.StreamKey = streamFlowKey(src, dst)
	if kind == streamKindTunnel {
		if d.reclassifyView(ProtoSIP, payload, v) {
			return
		}
		// Unreachable when the queueing sniff and this decode see the
		// same bytes; kept so a divergence degrades to a raw footprint
		// instead of a dropped frame.
		d.stats.Raw++
		v.Proto, v.OnPort, v.Reason, v.RawLen = ProtoOther, ProtoSIP, "unclassifiable stream chunk", len(payload)
		return
	}
	m, err := d.parser.Parse(payload)
	if err != nil {
		if d.reclassifyView(ProtoSIP, payload, v) {
			return
		}
		d.stats.Raw++
		v.Proto, v.OnPort, v.Reason, v.RawLen = ProtoOther, ProtoSIP, err.Error(), len(payload)
		return
	}
	d.stats.SIP++
	v.Proto, v.Msg, v.Malformed = ProtoSIP, m, CheckSIPFormat(m)
}

// Distill processes one frame observed at the given virtual time. It
// returns the footprint extracted from the frame, or nil when the frame
// is a non-final fragment, undecodable below UDP, or outside the
// monitored ports. This is the boxed (allocating) form; the detection
// engines use DistillView.
func (d *Distiller) Distill(at time.Duration, frame []byte) Footprint {
	proto, src, dst, payload, ok := d.decodeUDP(at, frame)
	if !ok {
		return nil
	}
	base := FootprintBase{At: at, Src: src, Dst: dst}
	switch proto {
	case ProtoSIP:
		return d.distillSIP(base, payload)
	case ProtoAccounting:
		return d.distillAcct(base, payload)
	case ProtoRTP:
		return d.distillRTP(base, payload)
	case ProtoRTCP:
		return d.distillRTCP(base, payload)
	default:
		d.stats.Ignored++
		return nil
	}
}

// DistillView is Distill's zero-allocation form: it fills the
// caller-owned view in place and reports whether the frame produced a
// footprint. Media frames (RTP/RTCP) are projected through the rtp
// package's peek decoders and never materialize packet structs; SIP
// frames still allocate one Message (trails retain it — the documented
// per-SIP-frame budget). Classification, validation and stats agree with
// Distill bit for bit.
func (d *Distiller) DistillView(at time.Duration, frame []byte, v *FrameView) bool {
	v.reset()
	proto, src, dst, payload, ok := d.decodeUDP(at, frame)
	if !ok {
		return false
	}
	v.At, v.Src, v.Dst = at, src, dst
	switch proto {
	case ProtoSIP:
		m, err := d.parser.Parse(payload)
		if err != nil {
			if d.reclassifyView(ProtoSIP, payload, v) {
				return true
			}
			d.stats.Raw++
			v.Proto, v.OnPort, v.Reason, v.RawLen = ProtoOther, ProtoSIP, err.Error(), len(payload)
			return true
		}
		d.stats.SIP++
		v.Proto, v.Msg, v.Malformed = ProtoSIP, m, CheckSIPFormat(m)
		return true
	case ProtoAccounting:
		txn, err := accounting.ParseTxn(payload)
		if err != nil {
			if d.reclassifyView(ProtoAccounting, payload, v) {
				return true
			}
			d.stats.Raw++
			v.Proto, v.OnPort, v.Reason, v.RawLen = ProtoOther, ProtoAccounting, err.Error(), len(payload)
			return true
		}
		d.stats.Acct++
		v.Proto, v.Txn = ProtoAccounting, txn
		return true
	case ProtoRTP:
		if err := rtp.PeekHeader(payload, &v.RTP); err != nil {
			v.RTP = rtp.HeaderView{}
			if d.reclassifyView(ProtoRTP, payload, v) {
				return true
			}
			d.stats.Raw++
			v.Proto, v.OnPort, v.Reason, v.RawLen = ProtoOther, ProtoRTP, err.Error(), len(payload)
			return true
		}
		d.stats.RTP++
		v.Proto = ProtoRTP
		v.EmbeddedSIP = rtpPayloadHasSIP(payload, &v.RTP)
		return true
	case ProtoRTCP:
		if err := rtp.PeekCompound(payload, &v.RTCP); err != nil {
			v.RTCP = rtp.CompoundView{}
			if d.reclassifyView(ProtoRTCP, payload, v) {
				return true
			}
			d.stats.Raw++
			v.Proto, v.OnPort, v.Reason, v.RawLen = ProtoOther, ProtoRTCP, err.Error(), len(payload)
			return true
		}
		d.stats.RTCP++
		v.Proto = ProtoRTCP
		return true
	default:
		d.stats.Ignored++
		return false
	}
}

// reclassifyView runs the content-confirmation ladder after the claimed
// protocol's decoder rejected the payload. Ladder steps run in registry
// order, skipping the claimed protocol (its decoder already said no);
// the first step whose cheap confirmation AND full decode both accept
// the payload wins. On success the view carries the content protocol's
// decoded fields with PortProto recording the contradicted claim, and
// the frame counts as Mismatched. On failure the view is untouched and
// the caller falls through to the raw path — so traffic that reclassifies
// under no protocol is accounted exactly as before the ladder existed.
func (d *Distiller) reclassifyView(claimed Protocol, payload []byte, v *FrameView) bool {
	for _, step := range d.ladder {
		if step.proto == claimed || !step.confirm(payload) {
			continue
		}
		switch step.proto {
		case ProtoSIP:
			m, err := d.parser.Parse(payload)
			if err != nil {
				continue
			}
			d.stats.Mismatched++
			v.Proto, v.PortProto = ProtoSIP, claimed
			v.Msg, v.Malformed = m, CheckSIPFormat(m)
			return true
		case ProtoRTP:
			if rtp.PeekHeader(payload, &v.RTP) != nil {
				v.RTP = rtp.HeaderView{}
				continue
			}
			d.stats.Mismatched++
			v.Proto, v.PortProto = ProtoRTP, claimed
			v.EmbeddedSIP = rtpPayloadHasSIP(payload, &v.RTP)
			return true
		case ProtoRTCP:
			if rtp.PeekCompound(payload, &v.RTCP) != nil {
				v.RTCP = rtp.CompoundView{}
				continue
			}
			d.stats.Mismatched++
			v.Proto, v.PortProto = ProtoRTCP, claimed
			return true
		}
	}
	return false
}

func (d *Distiller) distillSIP(base FootprintBase, payload []byte) Footprint {
	m, err := d.parser.Parse(payload)
	if err != nil {
		if f, ok := d.reclassifyBoxed(base, ProtoSIP, payload); ok {
			return f
		}
		d.stats.Raw++
		return &RawFootprint{FootprintBase: base, OnPort: ProtoSIP, Reason: err.Error(), Len: len(payload)}
	}
	d.stats.SIP++
	return &SIPFootprint{FootprintBase: base, Msg: m, Malformed: CheckSIPFormat(m)}
}

func (d *Distiller) distillAcct(base FootprintBase, payload []byte) Footprint {
	txn, err := accounting.ParseTxn(payload)
	if err != nil {
		if f, ok := d.reclassifyBoxed(base, ProtoAccounting, payload); ok {
			return f
		}
		d.stats.Raw++
		return &RawFootprint{FootprintBase: base, OnPort: ProtoAccounting, Reason: err.Error(), Len: len(payload)}
	}
	d.stats.Acct++
	return &AcctFootprint{FootprintBase: base, Txn: txn}
}

func (d *Distiller) distillRTP(base FootprintBase, payload []byte) Footprint {
	p, err := rtp.Unmarshal(payload)
	if err != nil {
		if f, ok := d.reclassifyBoxed(base, ProtoRTP, payload); ok {
			return f
		}
		d.stats.Raw++
		return &RawFootprint{FootprintBase: base, OnPort: ProtoRTP, Reason: err.Error(), Len: len(payload)}
	}
	d.stats.RTP++
	embedded := !p.Header.Extension && len(p.Payload) > 0 && sniffSIPStart(p.Payload)
	return &RTPFootprint{FootprintBase: base, Header: p.Header, PayloadLen: len(p.Payload), EmbeddedSIP: embedded}
}

func (d *Distiller) distillRTCP(base FootprintBase, payload []byte) Footprint {
	pkts, err := rtp.UnmarshalCompound(payload)
	if err != nil {
		if f, ok := d.reclassifyBoxed(base, ProtoRTCP, payload); ok {
			return f
		}
		d.stats.Raw++
		return &RawFootprint{FootprintBase: base, OnPort: ProtoRTCP, Reason: err.Error(), Len: len(payload)}
	}
	d.stats.RTCP++
	return &RTCPFootprint{FootprintBase: base, Packets: pkts}
}

// reclassifyBoxed is reclassifyView's boxed-footprint form, used by the
// allocating Distill path so both forms classify — and count — every
// payload identically.
func (d *Distiller) reclassifyBoxed(base FootprintBase, claimed Protocol, payload []byte) (Footprint, bool) {
	var v FrameView
	if !d.reclassifyView(claimed, payload, &v) {
		return nil, false
	}
	v.At, v.Src, v.Dst = base.At, base.Src, base.Dst
	return v.box(), true
}

// CheckSIPFormat applies the strict well-formedness checks the IDS uses
// beyond baseline parseability. It returns a list of violations; an empty
// list means the message is clean. These catch "carefully crafted"
// messages that lenient implementations (like the simulated proxy)
// process anyway — the Section 3.2 exploit vector.
func CheckSIPFormat(m *sip.Message) []string {
	var violations []string
	for _, hdr := range []string{sip.HdrFrom, sip.HdrTo, sip.HdrCallID, sip.HdrCSeq} {
		if n := m.Headers.Count(hdr); n > 1 {
			violations = append(violations, fmt.Sprintf("duplicate %s header (%d occurrences)", hdr, n))
		}
	}
	if m.IsRequest() {
		if mf := m.Headers.Get(sip.HdrMaxForwards); mf != "" {
			if n, err := strconv.Atoi(mf); err != nil || n < 0 || n > 255 {
				violations = append(violations, fmt.Sprintf("invalid Max-Forwards %q", mf))
			}
		}
		if _, err := m.From(); err != nil {
			violations = append(violations, "unparseable From: "+err.Error())
		}
		if _, err := m.To(); err != nil {
			violations = append(violations, "unparseable To: "+err.Error())
		}
	}
	return violations
}
