package core

import (
	"fmt"
	"strings"
	"time"
)

// This file implements SCIDIVE's rule description language, a small
// Snort-style text format so deployments can author rules without
// recompiling:
//
//	# BYE attack (Figure 5)
//	rule bye-attack critical cross stateful {
//	    describe No RTP traffic after a SIP BYE from that agent
//	    seq sip-bye, rtp-after-bye
//	    window 5s
//	}
//
//	rule billing-fraud critical cross stateful {
//	    all sip-bad-format, acct-unmatched, rtp-unmatched-media
//	}
//
// `seq` matches events in order; `all` in any order. Event names are the
// EventType strings (sip-bye, rtp-after-bye, ...). Severities: info,
// warning, critical.

// eventTypeNames maps DSL event names to types.
var eventTypeNames = func() map[string]EventType {
	all := []EventType{
		EvSIPRegister, EvSIPAuthChallenge, EvSIPRegisterOK, EvSIPInvite,
		EvSIPCallEstablished, EvSIPBye, EvSIPReinvite, EvSIPInstantMessage,
		EvRTPNewFlow, EvAcctStart, EvAcctStop, EvSIPBadFormat,
		EvIMSourceMismatch, EvRTPAfterBye, EvRTPAfterReinvite, EvRTPSeqJump,
		EvRTPBadSource, EvRTPGarbage, EvAuthFlood, EvPasswordGuessing,
		EvAcctUnmatched, EvRTPUnmatchedMedia, EvRTCPSpoofedBye,
		EvOptionsScan, EvProtocolMismatch, EvEvasionSuspect,
	}
	m := make(map[string]EventType, len(all))
	for _, t := range all {
		m[t.String()] = t
	}
	return m
}()

// EventTypeByName resolves a DSL event name.
func EventTypeByName(name string) (EventType, bool) {
	t, ok := eventTypeNames[name]
	return t, ok
}

var severityNames = map[string]Severity{
	"info":     SeverityInfo,
	"warning":  SeverityWarning,
	"critical": SeverityCritical,
}

// ParseRules parses a ruleset in the rule description language.
func ParseRules(text string) ([]Rule, error) {
	var rules []Rule
	var cur *Rule
	seen := make(map[string]bool)
	for lineNo, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		errf := func(format string, args ...interface{}) error {
			return fmt.Errorf("rules: line %d: %s", lineNo+1, fmt.Sprintf(format, args...))
		}
		switch {
		case strings.HasPrefix(line, "rule "):
			if cur != nil {
				return nil, errf("rule %q not closed before new rule", cur.Name)
			}
			header := strings.TrimSuffix(strings.TrimSpace(strings.TrimPrefix(line, "rule ")), "{")
			fields := strings.Fields(header)
			if len(fields) < 2 {
				return nil, errf("rule header wants `rule <name> <severity> [cross] [stateful] {`")
			}
			if !strings.HasSuffix(line, "{") {
				return nil, errf("rule header must end with '{'")
			}
			name := fields[0]
			if seen[name] {
				return nil, errf("duplicate rule %q", name)
			}
			seen[name] = true
			sev, ok := severityNames[fields[1]]
			if !ok {
				return nil, errf("unknown severity %q", fields[1])
			}
			cur = &Rule{Name: name, Severity: sev}
			for _, flag := range fields[2:] {
				switch flag {
				case "cross":
					cur.CrossProtocol = true
				case "stateful":
					cur.Stateful = true
				default:
					return nil, errf("unknown rule flag %q", flag)
				}
			}
		case line == "}":
			if cur == nil {
				return nil, errf("'}' without open rule")
			}
			if len(cur.Steps) == 0 {
				return nil, errf("rule %q has no seq/all clause", cur.Name)
			}
			rules = append(rules, *cur)
			cur = nil
		case cur == nil:
			return nil, errf("statement outside a rule: %q", line)
		case strings.HasPrefix(line, "describe "):
			cur.Description = strings.TrimSpace(strings.TrimPrefix(line, "describe "))
		case strings.HasPrefix(line, "seq "), strings.HasPrefix(line, "all "):
			if len(cur.Steps) > 0 {
				return nil, errf("rule %q already has a pattern clause", cur.Name)
			}
			cur.Unordered = strings.HasPrefix(line, "all ")
			list := strings.TrimSpace(line[4:])
			for _, name := range strings.Split(list, ",") {
				name = strings.TrimSpace(name)
				t, ok := EventTypeByName(name)
				if !ok {
					return nil, errf("unknown event type %q", name)
				}
				cur.Steps = append(cur.Steps, Step{Type: t})
			}
		case strings.HasPrefix(line, "window "):
			d, err := time.ParseDuration(strings.TrimSpace(strings.TrimPrefix(line, "window ")))
			if err != nil {
				return nil, errf("bad window: %v", err)
			}
			cur.Window = d
		default:
			return nil, errf("unknown statement %q", line)
		}
	}
	if cur != nil {
		return nil, fmt.Errorf("rules: rule %q not closed at end of input", cur.Name)
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("rules: no rules defined")
	}
	return rules, nil
}

// FormatRules renders rules back into the rule description language
// (predicates, which have no textual form, are omitted).
func FormatRules(rules []Rule) string {
	var b strings.Builder
	for i, r := range rules {
		if i > 0 {
			b.WriteString("\n")
		}
		sev := "info"
		for name, s := range severityNames {
			if s == r.Severity {
				sev = name
			}
		}
		fmt.Fprintf(&b, "rule %s %s", r.Name, sev)
		if r.CrossProtocol {
			b.WriteString(" cross")
		}
		if r.Stateful {
			b.WriteString(" stateful")
		}
		b.WriteString(" {\n")
		if r.Description != "" {
			fmt.Fprintf(&b, "    describe %s\n", r.Description)
		}
		kw := "seq"
		if r.Unordered {
			kw = "all"
		}
		names := make([]string, len(r.Steps))
		for j, st := range r.Steps {
			names[j] = st.Type.String()
		}
		fmt.Fprintf(&b, "    %s %s\n", kw, strings.Join(names, ", "))
		if r.Window > 0 {
			fmt.Fprintf(&b, "    window %s\n", r.Window)
		}
		b.WriteString("}\n")
	}
	return b.String()
}
